package ppm

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/daemon"
	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/kernel"
	"ppm/internal/lpm"
	"ppm/internal/metrics"
	"ppm/internal/proc"
	"ppm/internal/profile"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/status"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// Facade errors.
var (
	ErrUnknownHost = errors.New("ppm: unknown host")
	ErrUnknownUser = errors.New("ppm: unknown user")
	ErrAttach      = errors.New("ppm: attach failed")
	ErrStalled     = errors.New("ppm: operation stalled (scheduler went idle)")
)

// HostType re-exports the 1986 machine models.
type HostType = calib.HostType

// The paper's three machine types.
const (
	VAX780 = calib.VAX780
	VAX750 = calib.VAX750
	SunII  = calib.SunII
)

// RetryPolicy re-exports the sibling-RPC retry knobs
// (lpm.RetryPolicy): set ClusterConfig.LPM.Retry to tune how many
// times a failed sibling request is retransmitted (MaxAttempts) and
// the capped exponential backoff between attempts (BaseBackoff, Cap).
type RetryPolicy = lpm.RetryPolicy

// HostSpec declares one host of the installation.
type HostSpec struct {
	Name string
	// Type selects the CPU model; the zero value is a VAX 11/780.
	Type HostType
}

// ClusterConfig describes a simulated installation.
type ClusterConfig struct {
	// Seed feeds the deterministic random source (default 1).
	Seed int64
	// Hosts of the installation.
	Hosts []HostSpec
	// Segments maps Ethernet segment names to member host names. A
	// host on two segments is a gateway. When empty, all hosts share
	// one segment.
	Segments map[string][]string
	// LPM tunes every LPM created in the cluster (TTL, handler pool,
	// broadcast dedup window, timeouts). Per-user recovery lists are
	// set with SetRecoveryList.
	LPM lpm.Config
	// StableStorage enables the pmd's stable-storage table (a paper
	// "not implemented" feature, implemented here).
	StableStorage bool
	// CCSNameServer installs an administrative name service that
	// coordinates CCS assignment (the paper's §5 alternative to
	// .recovery files): LPMs register CCS changes with it and consult
	// it when seeking a coordinator.
	CCSNameServer bool
	// BreakDetect is how long circuit endpoints take to notice a lost
	// peer (default 1s of virtual time).
	BreakDetect time.Duration
	// MaxSteps bounds each synchronous operation's event budget
	// (default 10 million).
	MaxSteps uint64
	// NoJournal disables the flight recorder entirely: no journal is
	// created and every instrumentation point degrades to a no-op (the
	// overhead-benchmark baseline).
	NoJournal bool
	// JournalCapacity bounds the journal ring (0 = the journal
	// package's default). Soak tests raise it so the retained stream
	// stays complete and all audit checks apply.
	JournalCapacity int
}

// Cluster is a simulated networked installation: hosts, kernels,
// network, daemons and user accounts, all driven by one virtual clock.
type Cluster struct {
	cfg   ClusterConfig
	sched *sim.Scheduler
	net   *simnet.Network
	kerns map[string]*kernel.Host
	dir   *auth.Directory
	trust *auth.Trust
	dmns  map[string]*daemon.Daemons
	lpms  map[string]*lpm.LPM // host + "/" + user
	rlist map[string][]string // user -> .recovery host list
	ns    *nameServer
	port  uint16
	reg   *metrics.Registry
	tr    *trace.Tracer
	jr    *journal.Journal
}

// nameServer is the administrative CCS registry of the paper's §5
// alternative ("the existence of name servers in the network could be
// used to aid in crash recovery"). It is modelled as an always
// available administrative service.
type nameServer struct {
	ccs map[string]string
}

// LocateCCS reports the registered CCS for a user.
func (n *nameServer) LocateCCS(user string, cb func(string, bool)) {
	h, ok := n.ccs[user]
	cb(h, ok)
}

// RegisterCCS records a CCS change.
func (n *nameServer) RegisterCCS(user, host string) {
	n.ccs[user] = host
}

// NewCluster builds the installation: hosts booted, daemons running,
// mutual trust established among all hosts.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("ppm: cluster needs at least one host")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 10_000_000
	}
	c := &Cluster{
		cfg:   cfg,
		sched: sim.NewScheduler(cfg.Seed),
		dir:   auth.NewDirectory(),
		trust: auth.NewTrust(),
		kerns: make(map[string]*kernel.Host),
		dmns:  make(map[string]*daemon.Daemons),
		lpms:  make(map[string]*lpm.LPM),
		rlist: make(map[string][]string),
		port:  2000,
	}
	c.net = simnet.New(c.sched, simnet.Options{BreakDetect: cfg.BreakDetect})
	// One registry per cluster, stamped with this cluster's virtual
	// clock: identical runs produce identical snapshots.
	c.reg = metrics.New(func() time.Duration { return c.sched.Now().Duration() })
	c.net.SetMetrics(c.reg)
	// One causal tracer per cluster, on the same virtual clock. It
	// starts disabled: untraced operations record nothing and carry no
	// trace context on the wire.
	c.tr = trace.New(func() time.Duration { return c.sched.Now().Duration() })
	c.net.SetTracer(c.tr)
	// One flight recorder per cluster, again on the virtual clock:
	// append order is scheduler order, so identical seeds produce
	// byte-identical journals. Records stamp themselves with the
	// tracer's active span, cross-linking the journal to trace trees.
	if !cfg.NoJournal {
		c.jr = journal.New(func() time.Duration { return c.sched.Now().Duration() })
		if cfg.JournalCapacity > 0 {
			c.jr.SetCapacity(cfg.JournalCapacity)
		}
		c.jr.SetSpanSource(func() (uint64, uint64) {
			a := c.tr.Active()
			return a.Trace, a.Span
		})
		c.net.SetJournal(c.jr)
	}
	if cfg.CCSNameServer {
		c.ns = &nameServer{ccs: make(map[string]string)}
	}
	var names []string
	for _, hs := range cfg.Hosts {
		if err := c.net.AddHost(hs.Name); err != nil {
			return nil, err
		}
		k := kernel.NewHost(c.sched, hs.Name, calib.Model(hs.Type))
		k.SetMetrics(c.reg)
		k.SetTracer(c.tr)
		k.SetJournal(c.jr)
		c.kerns[hs.Name] = k
		names = append(names, hs.Name)
	}
	if len(cfg.Segments) == 0 {
		if err := c.net.AddSegment("lan", names...); err != nil {
			return nil, err
		}
	} else {
		for seg, members := range cfg.Segments {
			if err := c.net.AddSegment(seg, members...); err != nil {
				return nil, err
			}
		}
	}
	c.trust.AllowAll(names...)
	for _, h := range names {
		if err := c.startDaemons(h); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// startDaemons boots inetd+pmd on a host with the LPM factory wired in.
func (c *Cluster) startDaemons(host string) error {
	factory := func(user string) (simnet.Addr, error) {
		u, err := c.dir.Lookup(user)
		if err != nil {
			return simnet.Addr{}, err
		}
		c.port++
		cfg := c.cfg.LPM
		cfg.Recovery.List = append([]string(nil), c.rlist[user]...)
		cfg.Recovery.User = user
		if c.ns != nil {
			cfg.Recovery.Locator = c.ns
		}
		l, err := lpm.New(c.kerns[host], c.net, c.dir, c.dmns[host], u, c.port, cfg)
		if err != nil {
			return simnet.Addr{}, err
		}
		c.lpms[host+"/"+user] = l
		// Default CCS assignment: the name server's registration if one
		// exists, else the top of the user's recovery list, else the
		// host where the mechanism was first invoked.
		if l.Recovery().CCS() == "" {
			assigned := false
			if c.ns != nil {
				if h, ok := c.ns.ccs[user]; ok {
					l.Recovery().SetCCS(h)
					assigned = true
				}
			}
			if !assigned {
				if list := c.rlist[user]; len(list) > 0 {
					l.Recovery().SetCCS(list[0])
				} else {
					l.Recovery().SetCCS(host)
				}
			}
		}
		return l.Accept(), nil
	}
	d, err := daemon.Start(c.kerns[host], c.net, c.dir, c.trust, factory,
		daemon.Options{StableStorage: c.cfg.StableStorage})
	if err != nil {
		return err
	}
	c.dmns[host] = d
	return nil
}

// AddUser registers an account, trusted for remote access from every
// host (consistent password files plus .rhosts entries, as the paper
// assumes of a cooperative administrative domain).
func (c *Cluster) AddUser(name string) {
	c.dir.AddUser(name)
	for h := range c.kerns {
		//ppmlint:allow errdrop AllowRHost only fails for unknown accounts; the user was added just above
		_ = c.dir.AllowRHost(name, h)
	}
}

// SetRecoveryList installs the user's .recovery file: hosts in
// decreasing priority order on which their CCS should reside. It must
// be set before the user's LPMs are created.
func (c *Cluster) SetRecoveryList(user string, hosts ...string) {
	c.rlist[user] = append([]string(nil), hosts...)
}

// --- clock control ---

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.sched.Now() }

// Hosts returns the installation's host names, sorted.
func (c *Cluster) Hosts() []string { return detord.Keys(c.kerns) }

// Advance runs the simulation for a stretch of virtual time.
func (c *Cluster) Advance(d time.Duration) error { return c.sched.RunFor(d) }

// Settle runs until no events remain (careful: perpetual background
// workloads never go idle; use Advance instead).
func (c *Cluster) Settle() error { return c.sched.RunUntilIdle(c.cfg.MaxSteps) }

// Scheduler exposes the discrete-event scheduler.
func (c *Cluster) Scheduler() *sim.Scheduler { return c.sched }

// Network exposes the simulated internetwork.
func (c *Cluster) Network() *simnet.Network { return c.net }

// Metrics exposes the installation-wide metrics registry: every layer
// (simnet, wire, kernel, daemon, lpm) feeds it as the simulation runs.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// MetricsSnapshot copies all metrics at the current virtual time,
// grouped by family and deterministically ordered.
func (c *Cluster) MetricsSnapshot() metrics.Snapshot { return c.reg.Snapshot() }

// MetricsReport renders the metrics as the operator-facing text block
// (the `ppmtrace --metrics` section).
func (c *Cluster) MetricsReport() string { return c.reg.Report() }

// JournalFilter selects journal records for JournalReport: by kind
// (prefix match, so e.g. "net" takes the whole family), host, and
// virtual-time window.
type JournalFilter = journal.Filter

// JournalKind names one category of journal record.
type JournalKind = journal.Kind

// Journal exposes the cluster's flight recorder: the bounded,
// deterministic stream of structured events every layer appends as the
// simulation runs. Nil when the cluster was built with NoJournal.
func (c *Cluster) Journal() *journal.Journal { return c.jr }

// JournalReport renders the retained journal records matching f as the
// operator-facing text block (the `ppmtrace --journal` section).
func (c *Cluster) JournalReport(f JournalFilter) string { return c.jr.Report(f) }

// JournalAudit replays the journal and checks the cross-layer protocol
// invariants (genealogy vs. snapshots, circuit lifecycle, flood dedup
// and coverage) plus the trace-consistency invariants (every span
// closed exactly once, children nested within parents, every journal
// cross-link naming a recorded span); it returns nil when the run is
// clean or recording was disabled.
func (c *Cluster) JournalAudit() []journal.Violation {
	return journal.AuditWithSpans(c.jr, c.tr.Spans(), c.tr.Dropped() == 0)
}

// HostStatus re-exports one host's live status report (status.Report).
type HostStatus = status.Report

// ClusterStatus re-exports the cluster-wide sweep result (status.Sweep):
// one report per reachable host plus the sorted unreachable-host list.
type ClusterStatus = status.Sweep

// StatusSweep gathers a live status report from the user's LPM on every
// host of the installation, originating at the user's LPM on origin
// (created on demand). The sweep rides the sibling-RPC retry engine;
// under a partition it completes with the reachable subset of hosts and
// an explicit unreachable list.
func (c *Cluster) StatusSweep(user, origin string) (ClusterStatus, error) {
	l, ok := c.ManagerOn(origin, user)
	if !ok {
		s, err := c.Attach(user, origin)
		if err != nil {
			return ClusterStatus{}, err
		}
		l = s.mgr
	}
	hosts := c.Hosts()
	var sw ClusterStatus
	var serr error
	done := false
	l.StatusSweep(hosts, func(s status.Sweep, err error) {
		sw, serr, done = s, err, true
	})
	if err := c.await(func() bool { return done }); err != nil {
		return ClusterStatus{}, err
	}
	return sw, serr
}

// StatusReport renders a cluster-wide sweep as the operator-facing
// dashboard: a virtual-time-stamped header, one sorted row per host
// (process table, load, timers, circuit table, reply-cache and
// retry-backoff occupancy, journal ring occupancy, per-op latency
// percentiles), and the unreachable-host list when the sweep is
// partial. Byte-identical across same-seed runs.
func (c *Cluster) StatusReport(user, origin string) (string, error) {
	sw, err := c.StatusSweep(user, origin)
	if err != nil {
		return "", err
	}
	return sw.Render(), nil
}

// TraceNetwork installs a bounded network trace collector (limit 0
// means 4096 events) and returns it; use it to assess message routing,
// as the paper's §7 plans.
func (c *Cluster) TraceNetwork(limit int) *simnet.TraceCollector {
	return c.net.Trace(limit)
}

// Tracer exposes the cluster-wide causal tracer (normally driven
// through Trace and TraceReport).
func (c *Cluster) Tracer() *trace.Tracer { return c.tr }

// Trace runs op with causal tracing enabled: every PPM operation
// started inside op records a trace tree of virtual-time spans across
// all hosts it touches (kernel events, dispatcher and handler
// occupancy, circuit establishment, per-hop network transit, remote
// handling). It returns the ID of the last trace started, for
// TraceReport. Tracing is disabled again when op returns, so
// surrounding traffic stays unrecorded.
func (c *Cluster) Trace(op func() error) (uint64, error) {
	c.tr.Enable()
	err := op()
	c.tr.Disable()
	return c.tr.LastTrace(), err
}

// Profile analyzes every trace recorded so far — phase attribution
// with the conservation invariant, critical paths, aggregation — and
// returns the analyzed run (see internal/profile). Journal records
// contribute the retry/timeout cross-links. Trace the traffic you care
// about (Trace, or Tracer().Enable) before profiling; an untraced run
// profiles to zero requests.
func (c *Cluster) Profile() *profile.Profile {
	return profile.Build(c.tr.Spans(), c.jr.Records())
}

// ProfileReport renders the aggregated virtual-time profile: the
// per-op-type phase attribution table plus per-host busy/queue-depth
// timelines. Byte-identical across same-seed runs.
func (c *Cluster) ProfileReport(o profile.Options) string {
	return c.Profile().Report(o)
}

// TraceReport renders one assembled trace tree as a virtual-time
// waterfall (milliseconds relative to the root span's start).
func (c *Cluster) TraceReport(traceID uint64) string { return c.tr.Report(traceID) }

// TraceReportAll renders every recorded trace in trace-ID order.
func (c *Cluster) TraceReportAll() string { return c.tr.ReportAll() }

// Kernel returns a host's simulated kernel.
func (c *Cluster) Kernel(host string) (*kernel.Host, error) {
	k, ok := c.kerns[host]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	return k, nil
}

// await drives the scheduler until done reports true.
func (c *Cluster) await(done func() bool) error {
	ok, err := c.sched.RunUntilDone(done, c.cfg.MaxSteps)
	if err != nil {
		return err
	}
	if !ok {
		return ErrStalled
	}
	return nil
}

// --- failure injection ---

// Crash takes a host down: kernel, daemons, LPMs, processes and network
// presence all vanish.
func (c *Cluster) Crash(host string) error {
	k, ok := c.kerns[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if err := c.net.Crash(host); err != nil {
		return err
	}
	k.Crash()
	if d, ok := c.dmns[host]; ok {
		d.Stop()
		delete(c.dmns, host)
	}
	for key := range c.lpms {
		if len(key) > len(host) && key[:len(host)] == host && key[len(host)] == '/' {
			delete(c.lpms, key)
		}
	}
	return nil
}

// Restart boots a crashed host: fresh kernel state, daemons restarted.
func (c *Cluster) Restart(host string) error {
	k, ok := c.kerns[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if err := c.net.Restart(host); err != nil {
		return err
	}
	k.Restart()
	return c.startDaemons(host)
}

// Partition splits the network into isolated groups; hosts not named
// stay in the default group.
func (c *Cluster) Partition(groups ...[]string) error {
	return c.net.Partition(groups...)
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// InjectLoss arranges for every Nth inter-host message to be lost
// (deterministically): datagrams vanish silently, circuit messages
// sever their circuit. The reliability layer's retry/redial machinery
// is exercised without any partition or crash. every <= 0 disables
// injection.
func (c *Cluster) InjectLoss(every int) { c.net.InjectLoss(every) }

// InjectLossDir arranges for every Nth message from -> to (that
// direction only) to be lost, on top of any symmetric plan — the
// half-broken-gateway case where requests arrive but replies vanish.
// every <= 0 clears the direction.
func (c *Cluster) InjectLossDir(from, to string, every int) {
	c.net.InjectLossDir(from, to, every)
}

// FlapLink schedules a deterministic flap of the a<->b link: after
// upFor of healthy operation the pair blacks out for downFor, then
// recovers, repeating for cycles rounds. Each boundary is journaled
// (net.flap.down / net.flap.up).
func (c *Cluster) FlapLink(a, b string, upFor, downFor time.Duration, cycles int) {
	c.net.FlapLink(a, b, upFor, downFor, cycles)
}

// --- load generation ---

// SpawnBackgroundLoad creates n CPU-bound background processes with the
// given duty cycle on a host, to drive its load average (the Table 1
// experiment's knob).
func (c *Cluster) SpawnBackgroundLoad(host, user string, n, dutyNum, dutyDen int) error {
	k, ok := c.kerns[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	for i := 0; i < n; i++ {
		if _, err := k.SpawnWorkload("hog", user, dutyNum, dutyDen); err != nil {
			return err
		}
	}
	return nil
}

// LoadAvg returns a host's current load average.
func (c *Cluster) LoadAvg(host string) (float64, error) {
	k, ok := c.kerns[host]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	return k.LoadAvg(), nil
}

// ManagerOn returns the user's LPM on a host if one currently exists
// (it does not create one).
func (c *Cluster) ManagerOn(host, user string) (*lpm.LPM, bool) {
	l, ok := c.lpms[host+"/"+user]
	if !ok || l.Exited() {
		return nil, false
	}
	return l, true
}

// Attach obtains a Session for the user on a home host, creating the
// LPM on demand through the Figure 2 inetd/pmd exchange. Re-attaching
// finds an existing LPM: the PPM outlives login sessions.
func (c *Cluster) Attach(user, host string) (*Session, error) {
	u, err := c.dir.Lookup(user)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, err)
	}
	if _, ok := c.kerns[host]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	var resp wire.LPMQueryResp
	var qerr error
	done := false
	daemon.QueryLPM(c.net, host, host, u, func(r wire.LPMQueryResp, err error) {
		resp, qerr, done = r, err, true
	})
	if err := c.await(func() bool { return done }); err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrAttach, qerr)
	}
	if !resp.OK {
		return nil, fmt.Errorf("%w: %s", ErrAttach, resp.Reason)
	}
	l, ok := c.lpms[host+"/"+user]
	if !ok {
		return nil, fmt.Errorf("%w: LPM not registered", ErrAttach)
	}
	return &Session{c: c, user: u, home: host, mgr: l}, nil
}

// Processes lists the user's processes currently in a host's kernel
// table (a direct kernel view, bypassing the PPM; useful in tests and
// examples).
func (c *Cluster) Processes(host, user string) ([]proc.Info, error) {
	k, ok := c.kerns[host]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	return k.ProcessesOf(user), nil
}
