package ppm_test

import (
	"fmt"
	"time"

	"ppm"
)

// ExampleSession_Snapshot builds a small distributed computation and
// renders its genealogy, the paper's Figure 1 display.
func ExampleSession_Snapshot() {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster.AddUser("felipe")
	sess, err := cluster.Attach("felipe", "vax1")
	if err != nil {
		fmt.Println(err)
		return
	}
	root, _ := sess.Run("vax1", "coordinator")
	_, _ = sess.RunChild("vax2", "worker", root)
	_ = cluster.Advance(time.Second)
	snap, _ := sess.Snapshot()
	fmt.Print(snap.Render())
	// Output:
	// <vax1,6> coordinator
	// └── <vax2,6> worker
}

// ExampleSession_Stop measures the paper's Table 2 result: stopping a
// process one hop away takes 199 virtual milliseconds.
func ExampleSession_Stop() {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster.AddUser("felipe")
	sess, _ := cluster.Attach("felipe", "vax1")
	worker, _ := sess.Run("vax2", "worker")
	_ = cluster.Advance(time.Second)
	d, _ := sess.Elapsed(func() error { return sess.Stop(worker) })
	fmt.Printf("one-hop stop: %dms\n", d.Milliseconds())
	// Output:
	// one-hop stop: 199ms
}

// ExampleSession_StopAll pauses an entire distributed computation with
// one broadcast software interrupt.
func ExampleSession_StopAll() {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster.AddUser("felipe")
	sess, _ := cluster.Attach("felipe", "a")
	root, _ := sess.Run("a", "root")
	_, _ = sess.RunChild("b", "w1", root)
	_, _ = sess.RunChild("c", "w2", root)
	n, _ := sess.StopAll()
	fmt.Printf("stopped %d processes\n", n)
	// Output:
	// stopped 3 processes
}

// ExampleSession_Launch instantiates a computation from the
// configuration language.
func ExampleSession_Launch() {
	cluster, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster.AddUser("felipe")
	sess, _ := cluster.Attach("felipe", "vax1")
	comp, err := sess.Launch(`
computation demo
proc boss   on vax1
proc minion on vax2 parent boss
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer comp.Close()
	_ = cluster.Advance(time.Second)
	snap, _ := sess.Snapshot()
	fmt.Print(snap.Render())
	// Output:
	// <vax1,6> boss
	// └── <vax2,6> minion
}
