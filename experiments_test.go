package ppm

import (
	"math"
	"testing"
	"time"
)

// The experiment harness must reproduce the *shape* of the paper's
// results: who wins, by roughly what factor, where the crossovers fall.
// EXPERIMENTS.md records the exact measured values.

func TestTable1ReproducesShape(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 (paper cells)", len(rows))
	}
	for _, r := range rows {
		if r.PaperMS == 0 {
			continue
		}
		rel := math.Abs(r.MeasuredMS-r.PaperMS) / r.PaperMS
		if rel > 0.30 {
			t.Errorf("%v %s: measured %.2f ms vs paper %.2f ms (%.0f%% off)",
				r.Host, r.LoadBucket, r.MeasuredMS, r.PaperMS, rel*100)
		}
	}
	// Monotone in load per host, and the Sun II worst at high load.
	byHost := map[HostType][]Table1Row{}
	for _, r := range rows {
		byHost[r.Host] = append(byHost[r.Host], r)
	}
	for ht, hr := range byHost {
		for i := 1; i < len(hr); i++ {
			if hr[i].MeasuredMS <= hr[i-1].MeasuredMS {
				t.Errorf("%v: latency not increasing with load: %+v", ht, hr)
			}
		}
	}
	sun := byHost[SunII]
	v750 := byHost[VAX750]
	if sun[3].MeasuredMS <= v750[3].MeasuredMS*1.5 {
		t.Errorf("Sun II at high load (%.1f) should be far worse than VAX 750 (%.1f)",
			sun[3].MeasuredMS, v750[3].MeasuredMS)
	}
}

func TestTable2ReproducesShape(t *testing.T) {
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	get := func(action string, dist int) Table2Row {
		for _, r := range rows {
			if r.Action == action && r.Distance == dist {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", action, dist)
		return Table2Row{}
	}
	within := func(r Table2Row, tol float64) {
		if r.PaperMS == 0 {
			return
		}
		rel := math.Abs(r.MeasuredMS-r.PaperMS) / r.PaperMS
		if rel > tol {
			t.Errorf("%s dist=%d: measured %.1f vs paper %.0f (%.0f%% off)",
				r.Action, r.Distance, r.MeasuredMS, r.PaperMS, rel*100)
		}
	}
	within(get("create", 0), 0.05)
	within(get("stop", 0), 0.05)
	within(get("stop", 1), 0.05)
	within(get("stop", 2), 0.05)
	within(get("terminate", 0), 0.05)
	within(get("terminate", 1), 0.05)
	within(get("terminate", 2), 0.05)
	// Remote ops cost ~6-7x local; the second hop adds only a little.
	if get("stop", 1).MeasuredMS < 5*get("stop", 0).MeasuredMS {
		t.Error("one-hop stop should cost several times a local stop")
	}
	extra := get("stop", 2).MeasuredMS - get("stop", 1).MeasuredMS
	if extra < 5 || extra > 25 {
		t.Errorf("second hop adds %.1f ms, paper adds ~11", extra)
	}
}

// TestTable2BreakdownSums: the traced decomposition must (a) have its
// columns sum to the total by construction, and (b) have that total
// land within 1 virtual ms of the corresponding unbroken Table 2 cell
// — tracing may add trailer bytes to the wire but must not reshape
// the operation it measures.
func TestTable2BreakdownSums(t *testing.T) {
	brows, err := RunTable2Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(brows) != len(rows) {
		t.Fatalf("breakdown has %d rows, Table 2 has %d", len(brows), len(rows))
	}
	unbroken := func(action string, dist int) float64 {
		for _, r := range rows {
			if r.Action == action && r.Distance == dist {
				return r.MeasuredMS
			}
		}
		t.Fatalf("missing Table 2 row %s/%d", action, dist)
		return 0
	}
	for _, br := range brows {
		sum := br.NetworkMS + br.DispatchMS + br.KernelMS + br.OtherMS
		if math.Abs(sum-br.TotalMS) > 0.001 {
			t.Errorf("%s dist=%d: columns sum to %.3f, total is %.3f",
				br.Action, br.Distance, sum, br.TotalMS)
		}
		if br.OtherMS < 0 {
			t.Errorf("%s dist=%d: negative residual %.3f ms (double-counted category?)",
				br.Action, br.Distance, br.OtherMS)
		}
		if cell := unbroken(br.Action, br.Distance); math.Abs(br.TotalMS-cell) > 1.0 {
			t.Errorf("%s dist=%d: traced total %.3f ms vs unbroken cell %.3f ms (>1ms apart)",
				br.Action, br.Distance, br.TotalMS, cell)
		}
		if br.Distance > 0 && br.NetworkMS <= 0 {
			t.Errorf("%s dist=%d: remote op attributes no network time", br.Action, br.Distance)
		}
		if br.Distance > 0 && br.DispatchMS <= br.NetworkMS {
			t.Errorf("%s dist=%d: dispatch (%.1f) should dominate network (%.1f) on a LAN",
				br.Action, br.Distance, br.DispatchMS, br.NetworkMS)
		}
	}
}

func TestRemoteCreateWarmReproduces177(t *testing.T) {
	measured, paper, err := RemoteCreateWarm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-paper)/paper > 0.05 {
		t.Fatalf("warm remote create %.1f ms vs paper %.0f", measured, paper)
	}
}

func TestTable3ReproducesShape(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone in topology complexity.
	for i := 1; i < 4; i++ {
		if rows[i].MeasuredMS <= rows[i-1].MeasuredMS {
			t.Errorf("topology %d (%.1f) should cost more than %d (%.1f)",
				i+1, rows[i].MeasuredMS, i, rows[i-1].MeasuredMS)
		}
	}
	// T1 close to the paper's 205 ms.
	if math.Abs(rows[0].MeasuredMS-205)/205 > 0.05 {
		t.Errorf("T1 = %.1f ms, paper 205", rows[0].MeasuredMS)
	}
	// The star is only slightly costlier than a single link...
	if rows[1].MeasuredMS > rows[0].MeasuredMS*1.35 {
		t.Errorf("star (%.1f) should be close to single link (%.1f)",
			rows[1].MeasuredMS, rows[0].MeasuredMS)
	}
	// ... while the chain costs roughly twice (paper: 461/205 = 2.25).
	ratio := rows[2].MeasuredMS / rows[0].MeasuredMS
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("chain/single ratio = %.2f, paper has 2.25", ratio)
	}
}

func TestFigure2CreateCostsMoreThanFind(t *testing.T) {
	res, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.CreateMS <= res.FindMS {
		t.Fatalf("ab initio create (%.1f) should exceed find (%.1f)", res.CreateMS, res.FindMS)
	}
	if res.CreateMS < 13 {
		t.Fatalf("create = %.1f ms, should include inetd+pmd processing", res.CreateMS)
	}
}

func TestOverheadNumbers(t *testing.T) {
	o := RunOverhead()
	if o.UntracedCheckNS > 10_000 {
		t.Fatalf("untraced check %.0f ns is not negligible", o.UntracedCheckNS)
	}
	if o.TracedDeliveryMS < 5 || o.TracedDeliveryMS > 8 {
		t.Fatalf("zero-load delivery %.1f ms, paper's low-load figure is 7.2", o.TracedDeliveryMS)
	}
}

func TestAblationHandlerReuse(t *testing.T) {
	reuseMS, forkMS, reuseForks, noReuseForks, err := AblationHandlerReuse()
	if err != nil {
		t.Fatal(err)
	}
	if forkMS <= reuseMS {
		t.Fatalf("fork-per-request (%.1f ms) should be slower than reuse (%.1f ms)", forkMS, reuseMS)
	}
	if noReuseForks <= reuseForks {
		t.Fatalf("forks: reuse=%d noReuse=%d", reuseForks, noReuseForks)
	}
}

func TestAblationCircuitVsDatagramAuth(t *testing.T) {
	circuitMS, datagramMS, err := AblationCircuitVsDatagramAuth()
	if err != nil {
		t.Fatal(err)
	}
	if datagramMS <= circuitMS {
		t.Fatalf("per-message auth (%.1f ms) should be slower than circuits (%.1f ms)",
			datagramMS, circuitMS)
	}
}

func TestAblationOnDemandVsFullMesh(t *testing.T) {
	onDemand, fullMesh, err := AblationOnDemandVsFullMesh(6)
	if err != nil {
		t.Fatal(err)
	}
	if onDemand >= fullMesh {
		t.Fatalf("on-demand circuits (%d) should be fewer than a full mesh (%d)",
			onDemand, fullMesh)
	}
}

func TestAblationDedupWindow(t *testing.T) {
	points, err := AblationDedupWindow([]time.Duration{
		time.Millisecond, time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	tiny, generous := points[0], points[1]
	if generous.DuplicateRecs != 0 {
		t.Fatalf("a generous window should suppress duplicates, got %d", generous.DuplicateRecs)
	}
	if generous.Suppressed == 0 {
		t.Fatal("the triangle should produce at least one suppressed duplicate")
	}
	if tiny.DuplicateRecs == 0 {
		t.Fatalf("a 1ms window should leak duplicate records on a cycle (suppressed=%d)",
			tiny.Suppressed)
	}
}

func TestAblationRelayVsDirect(t *testing.T) {
	relayFirst, directFirst, relaySteady, directSteady, err := AblationRelayVsDirect()
	if err != nil {
		t.Fatal(err)
	}
	// The first op is cheaper when relayed: no LPM query, dial and
	// hello for a new circuit.
	if relayFirst >= directFirst {
		t.Fatalf("first op: relay %.1f ms should beat direct-with-setup %.1f ms",
			relayFirst, directFirst)
	}
	// In steady state the dedicated circuit wins: one store-and-forward
	// round instead of two.
	if directSteady >= relaySteady {
		t.Fatalf("steady state: direct %.1f ms should beat relay %.1f ms",
			directSteady, relaySteady)
	}
}
