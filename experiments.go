package ppm

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/calib"
	"ppm/internal/lpm"
	"ppm/internal/proc"
	"ppm/internal/profile"
	"ppm/internal/wire"
)

// This file is the reproduction harness for the paper's evaluation
// (Section 6): one function per table or figure, each returning the
// measured rows next to the values the paper reports. The functions are
// exercised by cmd/experiments and by the benchmarks in bench_test.go;
// EXPERIMENTS.md records a full paper-vs-measured comparison.

// ---------------------------------------------------------------------
// Table 1: 112-byte kernel-to-LPM message delivery time vs load.
// ---------------------------------------------------------------------

// Table1Row is one cell of the paper's Table 1.
type Table1Row struct {
	Host       HostType
	LoadBucket string  // e.g. "0<la<=1"
	LoadAvg    float64 // measured mean load average during the run
	MeasuredMS float64 // mean delivery latency, virtual ms
	PaperMS    float64 // the paper's value (0 = N/A in the paper)
}

// table1Paper holds the published cells (0 = N/A).
var table1Paper = map[HostType][4]float64{
	VAX780: {7.2, 9.8, 13.6, 0},
	VAX750: {7.2, 9.6, 12.8, 18.9},
	SunII:  {8.31, 14.13, 22.0, 42.7},
}

// table1Buckets names the load-average buckets.
var table1Buckets = [4]string{"0<la<=1", "1<la<=2", "2<la<=3", "3<la<=4"}

// RunTable1 regenerates Table 1: for each host type and load bucket it
// boots a single host, drives background load until the load average
// sits mid-bucket, then measures the delivery latency of real kernel
// event messages to the LPM.
func RunTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, ht := range []HostType{VAX780, VAX750, SunII} {
		for bucket := 0; bucket < 4; bucket++ {
			paper := table1Paper[ht][bucket]
			if paper == 0 && ht == VAX780 {
				continue // the paper's VAX 780 column has no 3-4 cell
			}
			row, err := table1Cell(ht, bucket)
			if err != nil {
				return nil, err
			}
			row.PaperMS = paper
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func table1Cell(ht HostType, bucket int) (Table1Row, error) {
	c, err := NewCluster(ClusterConfig{Hosts: []HostSpec{{Name: "m", Type: ht}}})
	if err != nil {
		return Table1Row{}, err
	}
	c.AddUser("u")
	// n half-duty CPU hogs put the load average near n/2: 1, 3, 5 and 7
	// hogs land mid-bucket (0.5, 1.5, 2.5, 3.5).
	hogs := bucket*2 + 1
	if err := c.SpawnBackgroundLoad("m", "u", hogs, 1, 2); err != nil {
		return Table1Row{}, err
	}
	if err := c.Advance(40 * time.Second); err != nil {
		return Table1Row{}, err
	}
	sess, err := c.Attach("u", "m")
	if err != nil {
		return Table1Row{}, err
	}
	target, err := sess.Run("m", "probe")
	if err != nil {
		return Table1Row{}, err
	}
	// Measure real kernel->LPM delivery: a watch timestamps arrival, the
	// event carries its generation time.
	var latencies []time.Duration
	remove := sess.OnEvent(&Watch{Kind: proc.EvSignal, Action: func(ev Event) {
		latencies = append(latencies, c.Now().Duration()-ev.At)
	}})
	defer remove()
	k, err := c.Kernel("m")
	if err != nil {
		return Table1Row{}, err
	}
	const samples = 60
	var laSum float64
	for i := 0; i < samples; i++ {
		if err := c.Advance(230 * time.Millisecond); err != nil {
			return Table1Row{}, err
		}
		laSum += k.LoadAvg()
		if err := k.Signal(target.PID, SIGUSR1); err != nil {
			return Table1Row{}, err
		}
	}
	if err := c.Advance(time.Second); err != nil {
		return Table1Row{}, err
	}
	if len(latencies) == 0 {
		return Table1Row{}, fmt.Errorf("table1: no events delivered")
	}
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	mean := sum / time.Duration(len(latencies))
	return Table1Row{
		Host:       ht,
		LoadBucket: table1Buckets[bucket],
		LoadAvg:    laSum / samples,
		MeasuredMS: float64(mean) / float64(time.Millisecond),
	}, nil
}

// ---------------------------------------------------------------------
// Table 2: process creation and control vs topological distance.
// ---------------------------------------------------------------------

// Table2Row is one cell of the paper's Table 2 (plus the Section 8
// remote-creation figure).
type Table2Row struct {
	Action     string // create / stop / terminate
	Distance   int    // hops
	MeasuredMS float64
	PaperMS    float64 // 0 = N/A in the paper
	Msgs       uint64  // wire messages the operation put on the network
}

// wireCounts totals the wire family's message and byte counters — the
// protocol frames every layer encoded so far. Deltas of these around
// an operation are the operation's message cost.
func wireCounts(c *Cluster) (msgs, bytes uint64) {
	snap := c.MetricsSnapshot()
	return snap.CounterSum("wire.msgs."), snap.CounterSum("wire.bytes.")
}

// RunTable2 regenerates Table 2 on a three-host line: a --net1-- gw
// --net2-- c, giving distances 0, 1 and 2. Creation times exclude the
// tool round trip (two tool legs), matching the paper's definition of
// process creation time; control times are tool-to-tool, as measured
// by the paper's snapshot tool.
func RunTable2() ([]Table2Row, error) {
	c, err := NewCluster(ClusterConfig{
		Hosts: []HostSpec{{Name: "a"}, {Name: "gw"}, {Name: "c"}},
		Segments: map[string][]string{
			"net1": {"a", "gw"},
			"net2": {"gw", "c"},
		},
	})
	if err != nil {
		return nil, err
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		return nil, err
	}
	// Warm the circuits (the paper's creation time explicitly excludes
	// LPM creation and connection establishment).
	if _, err := sess.Run("gw", "warm"); err != nil {
		return nil, err
	}
	if _, err := sess.Run("c", "warm"); err != nil {
		return nil, err
	}
	if err := c.Advance(time.Second); err != nil {
		return nil, err
	}

	toolLegs := 22.0 // ms, subtracted from creation rows only
	var rows []Table2Row
	hostAt := map[int]string{0: "a", 1: "gw", 2: "c"}
	paperStop := map[int]float64{0: 30, 1: 199, 2: 210}
	paperCreate := map[int]float64{0: 77, 1: 0, 2: 0} // one/two hops N/A in Table 2

	for dist := 0; dist <= 2; dist++ {
		host := hostAt[dist]
		var id GPID
		before, _ := wireCounts(c)
		d, err := sess.Elapsed(func() error {
			var rerr error
			id, rerr = sess.Run(host, "job")
			return rerr
		})
		if err != nil {
			return nil, err
		}
		after, _ := wireCounts(c)
		rows = append(rows, Table2Row{
			Action: "create", Distance: dist,
			MeasuredMS: float64(d)/float64(time.Millisecond) - toolLegs,
			PaperMS:    paperCreate[dist],
			Msgs:       after - before,
		})
		if err := c.Advance(time.Second); err != nil { // let async exec settle
			return nil, err
		}
		before, _ = wireCounts(c)
		d, err = sess.Elapsed(func() error { return sess.Stop(id) })
		if err != nil {
			return nil, err
		}
		after, _ = wireCounts(c)
		rows = append(rows, Table2Row{
			Action: "stop", Distance: dist,
			MeasuredMS: float64(d) / float64(time.Millisecond),
			PaperMS:    paperStop[dist],
			Msgs:       after - before,
		})
		before, _ = wireCounts(c)
		d, err = sess.Elapsed(func() error { return sess.Kill(id) })
		if err != nil {
			return nil, err
		}
		after, _ = wireCounts(c)
		rows = append(rows, Table2Row{
			Action: "terminate", Distance: dist,
			MeasuredMS: float64(d) / float64(time.Millisecond),
			PaperMS:    paperStop[dist], // paper: same as stop
			Msgs:       after - before,
		})
	}
	return rows, nil
}

// Table2BreakdownRow decomposes one Table 2 cell using the causal
// tracer: the same traced operation yields the unbroken total (the
// root span, tool to tool) and the share of it spent in per-hop
// network transit, endpoint/control dispatch, and kernel->LPM event
// delivery. OtherMS is the residual — the tool legs, minus whatever
// kernel delivery overlapped with the reply path — so the four
// columns sum to the total by construction.
type Table2BreakdownRow struct {
	Action     string
	Distance   int
	TotalMS    float64 // root span duration (for create: minus the tool legs, as in Table 2)
	NetworkMS  float64 // net.* spans: per-hop wire transit
	DispatchMS float64 // dispatch.* spans: endpoint, control and pmd handling
	KernelMS   float64 // kernel.event.* spans: kernel->LPM delivery
	OtherMS    float64 // residual (tool legs less overlapped kernel delivery)
}

// traceBreakdown classifies the spans of one assembled trace by name
// prefix and returns the per-category totals in virtual milliseconds.
// Structural spans (lpm.request.*, circuit.establish.*, pmd.query.*)
// are windows over other spans and are deliberately not counted — the
// network time under a pmd query is already in its net.* children.
func traceBreakdown(c *Cluster, id uint64) (total, network, dispatch, kernel float64) {
	for _, sp := range c.Tracer().SpansOf(id) {
		d := float64(sp.End-sp.Start) / float64(time.Millisecond)
		switch {
		case strings.HasPrefix(sp.Name, "op."):
			total += d
		case strings.HasPrefix(sp.Name, "net."):
			network += d
		case strings.HasPrefix(sp.Name, "dispatch."):
			dispatch += d
		case strings.HasPrefix(sp.Name, "kernel."):
			kernel += d
		}
	}
	return total, network, dispatch, kernel
}

// RunTable2Breakdown regenerates Table 2 on the same warm three-host
// line as RunTable2, but runs every operation under tracing and
// decomposes each cell from the assembled trace tree of that single
// traced run.
func RunTable2Breakdown() ([]Table2BreakdownRow, error) {
	c, err := NewCluster(ClusterConfig{
		Hosts: []HostSpec{{Name: "a"}, {Name: "gw"}, {Name: "c"}},
		Segments: map[string][]string{
			"net1": {"a", "gw"},
			"net2": {"gw", "c"},
		},
	})
	if err != nil {
		return nil, err
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		return nil, err
	}
	if _, err := sess.Run("gw", "warm"); err != nil {
		return nil, err
	}
	if _, err := sess.Run("c", "warm"); err != nil {
		return nil, err
	}
	if err := c.Advance(time.Second); err != nil {
		return nil, err
	}

	const toolLegs = 22.0 // ms, subtracted from creation rows only (as in Table 2)
	hostAt := map[int]string{0: "a", 1: "gw", 2: "c"}
	var rows []Table2BreakdownRow
	cell := func(action string, dist int, deduct float64, op func() error) error {
		id, err := c.Trace(op)
		if err != nil {
			return err
		}
		total, network, dispatch, kernel := traceBreakdown(c, id)
		total -= deduct
		rows = append(rows, Table2BreakdownRow{
			Action: action, Distance: dist,
			TotalMS: total, NetworkMS: network, DispatchMS: dispatch, KernelMS: kernel,
			OtherMS: total - network - dispatch - kernel,
		})
		return nil
	}
	for dist := 0; dist <= 2; dist++ {
		host := hostAt[dist]
		var id GPID
		if err := cell("create", dist, toolLegs, func() error {
			var rerr error
			id, rerr = sess.Run(host, "job")
			return rerr
		}); err != nil {
			return nil, err
		}
		if err := c.Advance(time.Second); err != nil { // let async exec settle
			return nil, err
		}
		if err := cell("stop", dist, 0, func() error { return sess.Stop(id) }); err != nil {
			return nil, err
		}
		if err := cell("terminate", dist, 0, func() error { return sess.Kill(id) }); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RemoteCreateWarm measures the Section 8 figure: remote process
// creation once a connection between sibling managers exists (the paper
// reports 177 ms under light load).
func RemoteCreateWarm() (measuredMS, paperMS float64, err error) {
	c, err := NewCluster(ClusterConfig{
		Hosts: []HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		return 0, 0, err
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		return 0, 0, err
	}
	if _, err := sess.Run("b", "warm"); err != nil {
		return 0, 0, err
	}
	if err := c.Advance(time.Second); err != nil {
		return 0, 0, err
	}
	d, err := sess.Elapsed(func() error {
		_, rerr := sess.Run("b", "job")
		return rerr
	})
	if err != nil {
		return 0, 0, err
	}
	return float64(d)/float64(time.Millisecond) - 22, 177, nil
}

// ---------------------------------------------------------------------
// Table 3 / Figure 5: snapshot time over four PPM topologies.
// ---------------------------------------------------------------------

// Table3Row is one column of the paper's Table 3.
type Table3Row struct {
	Topology    int
	Description string
	MeasuredMS  float64
	PaperMS     float64
	Msgs        uint64 // wire messages the snapshot flood exchanged
	Bytes       uint64 // wire bytes of those messages
}

// table3Paper holds the published snapshot times.
var table3Paper = [4]float64{205, 225, 461, 507}

// RunTable3 regenerates Table 3. The paper's Figure 5 is schematic;
// DESIGN.md documents the reconstruction:
//
//	T1: A->B                 one remote host, direct circuit
//	T2: A->B, A->C           star: two remote hosts gathered in parallel
//	T3: A->B->C              chain: C reached only through B
//	T4: A->B->C plus A->D    chain plus an extra leaf
//
// Six user processes run on every remote host, as in the paper.
func RunTable3() ([]Table3Row, error) {
	specs := []struct {
		desc  string
		hosts []string
		build func(c *Cluster, sess *Session) error
	}{
		{
			desc:  "A->B",
			hosts: []string{"A", "B"},
			build: func(c *Cluster, sess *Session) error {
				return spawnSix(sess, "B")
			},
		},
		{
			desc:  "A->B, A->C (star)",
			hosts: []string{"A", "B", "C"},
			build: func(c *Cluster, sess *Session) error {
				if err := spawnSix(sess, "B"); err != nil {
					return err
				}
				return spawnSix(sess, "C")
			},
		},
		{
			desc:  "A->B->C (chain)",
			hosts: []string{"A", "B", "C"},
			build: func(c *Cluster, sess *Session) error {
				if err := spawnSix(sess, "B"); err != nil {
					return err
				}
				sb, err := sess.AttachAt("B")
				if err != nil {
					return err
				}
				return spawnSix(sb, "C")
			},
		},
		{
			desc:  "A->B->{C,D} (chain+leaf)",
			hosts: []string{"A", "B", "C", "D"},
			build: func(c *Cluster, sess *Session) error {
				if err := spawnSix(sess, "B"); err != nil {
					return err
				}
				sb, err := sess.AttachAt("B")
				if err != nil {
					return err
				}
				if err := spawnSix(sb, "C"); err != nil {
					return err
				}
				return spawnSix(sb, "D")
			},
		},
	}
	var rows []Table3Row
	for i, spec := range specs {
		var hs []HostSpec
		for _, h := range spec.hosts {
			hs = append(hs, HostSpec{Name: h})
		}
		c, err := NewCluster(ClusterConfig{Hosts: hs})
		if err != nil {
			return nil, err
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "A")
		if err != nil {
			return nil, err
		}
		if err := spec.build(c, sess); err != nil {
			return nil, err
		}
		if err := c.Advance(2 * time.Second); err != nil {
			return nil, err
		}
		beforeMsgs, beforeBytes := wireCounts(c)
		d, err := sess.Elapsed(func() error {
			snap, serr := sess.Snapshot()
			if serr != nil {
				return serr
			}
			want := 6 * (len(spec.hosts) - 1)
			if len(snap.Procs) != want {
				return fmt.Errorf("topology %d: snapshot has %d procs, want %d",
					i+1, len(snap.Procs), want)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		afterMsgs, afterBytes := wireCounts(c)
		rows = append(rows, Table3Row{
			Topology:    i + 1,
			Description: spec.desc,
			MeasuredMS:  float64(d) / float64(time.Millisecond),
			PaperMS:     table3Paper[i],
			Msgs:        afterMsgs - beforeMsgs,
			Bytes:       afterBytes - beforeBytes,
		})
	}
	return rows, nil
}

func spawnSix(sess *Session, host string) error {
	for i := 0; i < 6; i++ {
		if _, err := sess.Run(host, fmt.Sprintf("p%d", i)); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 2: LPM creation ab initio.
// ---------------------------------------------------------------------

// Figure2Result reports the four-step LPM creation exchange.
type Figure2Result struct {
	CreateMS float64 // ab initio: inetd -> pmd -> create -> accept addr
	FindMS   float64 // second request: existing LPM's address returned
}

// RunFigure2 measures the LPM creation steps of Figure 2.
func RunFigure2() (Figure2Result, error) {
	c, err := NewCluster(ClusterConfig{Hosts: []HostSpec{{Name: "m"}}})
	if err != nil {
		return Figure2Result{}, err
	}
	c.AddUser("u")
	start := c.Now()
	if _, err := c.Attach("u", "m"); err != nil {
		return Figure2Result{}, err
	}
	create := c.Now().Sub(start)
	start = c.Now()
	if _, err := c.Attach("u", "m"); err != nil {
		return Figure2Result{}, err
	}
	find := c.Now().Sub(start)
	return Figure2Result{
		CreateMS: float64(create) / float64(time.Millisecond),
		FindMS:   float64(find) / float64(time.Millisecond),
	}, nil
}

// ---------------------------------------------------------------------
// Section 6: overhead for users not requiring the PPM.
// ---------------------------------------------------------------------

// OverheadResult compares the per-syscall cost with and without
// tracing.
type OverheadResult struct {
	UntracedCheckNS  float64 // the compare-to-zero flag test
	TracedDeliveryMS float64
}

// RunOverhead reports the Section 6 overhead numbers.
func RunOverhead() OverheadResult {
	return OverheadResult{
		UntracedCheckNS:  float64(calib.UntracedSyscallCheck) / float64(time.Nanosecond),
		TracedDeliveryMS: float64(calib.ModelVAX780.KernelMsgDelivery(0)) / float64(time.Millisecond),
	}
}

// ---------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md §6).
// ---------------------------------------------------------------------

// AblationHandlerReuse compares remote-operation latency and fork
// counts with the paper's handler reuse versus fork-per-request.
func AblationHandlerReuse() (reuseMS, forkMS float64, reuseForks, noReuseForks int64, err error) {
	run := func(cfg lpm.Config) (float64, int64, error) {
		c, cerr := NewCluster(ClusterConfig{
			Hosts: []HostSpec{{Name: "a"}, {Name: "b"}},
			LPM:   cfg,
		})
		if cerr != nil {
			return 0, 0, cerr
		}
		c.AddUser("u")
		sess, cerr := c.Attach("u", "a")
		if cerr != nil {
			return 0, 0, cerr
		}
		id, cerr := sess.Run("b", "job")
		if cerr != nil {
			return 0, 0, cerr
		}
		if cerr := c.Advance(time.Second); cerr != nil {
			return 0, 0, cerr
		}
		var total time.Duration
		const ops = 10
		for i := 0; i < ops; i++ {
			d, derr := sess.Elapsed(func() error { return sess.Stop(id) })
			if derr != nil {
				return 0, 0, derr
			}
			total += d
			d, derr = sess.Elapsed(func() error { return sess.Foreground(id) })
			if derr != nil {
				return 0, 0, derr
			}
			total += d
		}
		return float64(total) / float64(2*ops) / float64(time.Millisecond),
			sess.Manager().Stats.HandlerForks, nil
	}
	reuseMS, reuseForks, err = run(lpm.Config{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	forkMS, noReuseForks, err = run(lpm.Config{NoHandlerReuse: true})
	return reuseMS, forkMS, reuseForks, noReuseForks, err
}

// AblationCircuitVsDatagramAuth compares authenticate-once circuits
// with a per-message authentication scheme (the datagram alternative
// the paper weighs for scalability).
func AblationCircuitVsDatagramAuth() (circuitMS, datagramMS float64, err error) {
	run := func(cfg lpm.Config) (float64, error) {
		c, cerr := NewCluster(ClusterConfig{
			Hosts: []HostSpec{{Name: "a"}, {Name: "b"}},
			LPM:   cfg,
		})
		if cerr != nil {
			return 0, cerr
		}
		c.AddUser("u")
		sess, cerr := c.Attach("u", "a")
		if cerr != nil {
			return 0, cerr
		}
		id, cerr := sess.Run("b", "job")
		if cerr != nil {
			return 0, cerr
		}
		if cerr := c.Advance(time.Second); cerr != nil {
			return 0, cerr
		}
		var total time.Duration
		const ops = 10
		for i := 0; i < ops; i++ {
			d, derr := sess.Elapsed(func() error { return sess.Stop(id) })
			if derr != nil {
				return 0, derr
			}
			total += d
			d, derr = sess.Elapsed(func() error { return sess.Foreground(id) })
			if derr != nil {
				return 0, derr
			}
			total += d
		}
		return float64(total) / float64(2*ops) / float64(time.Millisecond), nil
	}
	circuitMS, err = run(lpm.Config{})
	if err != nil {
		return 0, 0, err
	}
	datagramMS, err = run(lpm.Config{PerMessageAuth: true})
	return circuitMS, datagramMS, err
}

// AblationOnDemandVsFullMesh compares network message counts when
// circuits are created on demand (the paper's design) versus
// pre-established between every pair of hosts.
func AblationOnDemandVsFullMesh(hosts int) (onDemandConns, fullMeshConns int64, err error) {
	if hosts < 3 {
		hosts = 6
	}
	build := func(preconnect bool) (int64, error) {
		var hs []HostSpec
		for i := 0; i < hosts; i++ {
			hs = append(hs, HostSpec{Name: fmt.Sprintf("h%d", i)})
		}
		c, cerr := NewCluster(ClusterConfig{Hosts: hs})
		if cerr != nil {
			return 0, cerr
		}
		c.AddUser("u")
		sess, cerr := c.Attach("u", "h0")
		if cerr != nil {
			return 0, cerr
		}
		if preconnect {
			// Pre-establish a full mesh: every LPM pings every host.
			for i := 1; i < hosts; i++ {
				if _, cerr := sess.Run(hs[i].Name, "noop"); cerr != nil {
					return 0, cerr
				}
			}
			for i := 1; i < hosts; i++ {
				si, serr := sess.AttachAt(hs[i].Name)
				if serr != nil {
					return 0, serr
				}
				for j := 1; j < hosts; j++ {
					if i == j {
						continue
					}
					done := false
					si.Manager().Ping(hs[j].Name, func(_ wire.Pong, _ error) { done = true })
					if aerr := c.await(func() bool { return done }); aerr != nil {
						return 0, aerr
					}
				}
			}
		} else {
			// The actual workload only touches two hosts.
			if _, cerr := sess.Run(hs[1].Name, "noop"); cerr != nil {
				return 0, cerr
			}
			if _, cerr := sess.Run(hs[2].Name, "noop"); cerr != nil {
				return 0, cerr
			}
		}
		if cerr := c.Advance(time.Second); cerr != nil {
			return 0, cerr
		}
		if _, cerr := sess.Snapshot(); cerr != nil {
			return 0, cerr
		}
		return c.Network().Stats().ConnsOpened, nil
	}
	onDemandConns, err = build(false)
	if err != nil {
		return 0, 0, err
	}
	fullMeshConns, err = build(true)
	return onDemandConns, fullMeshConns, err
}

// AblationDedupWindow sweeps the broadcast dedup window on a cyclic
// circuit graph and reports how many duplicate snapshot records leak
// when the window is shorter than the flood's propagation time (the
// paper: "the appropriate time window ... is a configuration parameter
// whose optimum value will be derived from experience").
type DedupWindowPoint struct {
	Window        time.Duration
	DuplicateRecs int
	Suppressed    int64
}

// AblationDedupWindow runs one snapshot per window size on a triangle
// of circuits.
func AblationDedupWindow(windows []time.Duration) ([]DedupWindowPoint, error) {
	var points []DedupWindowPoint
	for _, wdw := range windows {
		cfg := lpm.Config{DedupWindow: wdw}
		c, err := NewCluster(ClusterConfig{
			Hosts: []HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
			LPM:   cfg,
		})
		if err != nil {
			return nil, err
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "a")
		if err != nil {
			return nil, err
		}
		// Triangle: a-b, a-c, b-c.
		if _, err := sess.Run("b", "pb"); err != nil {
			return nil, err
		}
		if _, err := sess.Run("c", "pc"); err != nil {
			return nil, err
		}
		sb, err := sess.AttachAt("b")
		if err != nil {
			return nil, err
		}
		if _, err := sb.Run("c", "pc2"); err != nil {
			return nil, err
		}
		if err := c.Advance(time.Second); err != nil {
			return nil, err
		}
		snap, err := sess.Snapshot()
		if err != nil {
			return nil, err
		}
		seen := map[GPID]int{}
		dups := 0
		for _, p := range snap.Procs {
			seen[p.ID]++
			if seen[p.ID] > 1 {
				dups++
			}
		}
		var suppressed int64
		for _, h := range []string{"a", "b", "c"} {
			if m, ok := c.ManagerOn(h, "u"); ok {
				suppressed += m.Stats.FloodDuplicates
			}
		}
		points = append(points, DedupWindowPoint{
			Window: wdw, DuplicateRecs: dups, Suppressed: suppressed,
		})
	}
	return points, nil
}

// ---------------------------------------------------------------------
// Formatting helpers for cmd/experiments.
// ---------------------------------------------------------------------

// FormatTable1 renders Table 1 rows as the paper lays them out.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: 112-byte kernel->LPM message delivery time (ms)\n")
	fmt.Fprintf(&b, "%-10s %-14s %8s %10s %8s\n", "load", "host", "la", "measured", "paper")
	for _, r := range rows {
		paper := "N/A"
		if r.PaperMS > 0 {
			paper = fmt.Sprintf("%.2f", r.PaperMS)
		}
		fmt.Fprintf(&b, "%-10s %-14s %8.2f %10.2f %8s\n",
			r.LoadBucket, r.Host, r.LoadAvg, r.MeasuredMS, paper)
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: elapsed time of creation/termination events (ms)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %6s\n", "action", "distance", "measured", "paper", "msgs")
	for _, r := range rows {
		paper := "N/A"
		if r.PaperMS > 0 {
			paper = fmt.Sprintf("%.0f", r.PaperMS)
		}
		fmt.Fprintf(&b, "%-10s %10d %10.1f %8s %6d\n",
			r.Action, r.Distance, r.MeasuredMS, paper, r.Msgs)
	}
	return b.String()
}

// FormatTable2Breakdown renders the traced decomposition of Table 2,
// closing with the measured cost of the second hop — the paper's
// "adds only ~5%" observation, attributed to its source.
func FormatTable2Breakdown(rows []Table2BreakdownRow) string {
	var b strings.Builder
	b.WriteString("Table 2 breakdown: traced decomposition of each cell (virtual ms)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %9s %7s %7s\n",
		"action", "distance", "total", "network", "dispatch", "kernel", "other")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8.1f %8.1f %9.1f %7.1f %7.1f\n",
			r.Action, r.Distance, r.TotalMS, r.NetworkMS, r.DispatchMS, r.KernelMS, r.OtherMS)
	}
	var stop1, stop2 *Table2BreakdownRow
	for i := range rows {
		if rows[i].Action == "stop" && rows[i].Distance == 1 {
			stop1 = &rows[i]
		}
		if rows[i].Action == "stop" && rows[i].Distance == 2 {
			stop2 = &rows[i]
		}
	}
	if stop1 != nil && stop2 != nil && stop1.TotalMS > 0 {
		extra := stop2.TotalMS - stop1.TotalMS
		netExtra := stop2.NetworkMS - stop1.NetworkMS
		fmt.Fprintf(&b, "second hop: +%.1f ms (+%.1f%%), of which %.1f ms is extra network transit\n",
			extra, extra/stop1.TotalMS*100, netExtra)
	}
	return b.String()
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: snapshot gathering time over four PPM topologies (ms)\n")
	fmt.Fprintf(&b, "%-4s %-28s %10s %8s %6s %7s\n", "top", "circuits", "measured", "paper", "msgs", "bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-28s %10.1f %8.0f %6d %7d\n",
			r.Topology, r.Description, r.MeasuredMS, r.PaperMS, r.Msgs, r.Bytes)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Message-count experiments (enabled by the metrics subsystem).
// ---------------------------------------------------------------------

// FanoutRow is one point of the broadcast fan-out experiment: the
// message cost of one distributed snapshot over a star of n hosts.
type FanoutRow struct {
	Hosts      int
	SnapshotMS float64
	Msgs       uint64 // wire messages the snapshot exchanged
	Bytes      uint64 // wire bytes of those messages
	Forwards   uint64 // LPMs that forwarded the flood
	DedupHits  uint64 // duplicate broadcasts suppressed by the stamp window
}

// RunBroadcastFanout measures how the flood-based snapshot scales with
// cluster size: for each size it builds a star of circuits (every
// remote LPM is a sibling of the home LPM), runs one process per
// remote host, then counts the wire messages one snapshot costs. The
// counts grow linearly with the host count on a star; on cyclic
// graphs the dedup column shows the suppressed retransmissions.
func RunBroadcastFanout(sizes []int) ([]FanoutRow, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 12}
	}
	var rows []FanoutRow
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("fanout: need at least 2 hosts, got %d", n)
		}
		var hs []HostSpec
		for i := 0; i < n; i++ {
			hs = append(hs, HostSpec{Name: fmt.Sprintf("h%d", i)})
		}
		c, err := NewCluster(ClusterConfig{Hosts: hs})
		if err != nil {
			return nil, err
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "h0")
		if err != nil {
			return nil, err
		}
		for i := 1; i < n; i++ {
			if _, err := sess.Run(hs[i].Name, "job"); err != nil {
				return nil, err
			}
		}
		if err := c.Advance(2 * time.Second); err != nil {
			return nil, err
		}
		beforeMsgs, beforeBytes := wireCounts(c)
		before := c.MetricsSnapshot()
		d, err := sess.Elapsed(func() error {
			_, serr := sess.Snapshot()
			return serr
		})
		if err != nil {
			return nil, err
		}
		afterMsgs, afterBytes := wireCounts(c)
		after := c.MetricsSnapshot()
		rows = append(rows, FanoutRow{
			Hosts:      n,
			SnapshotMS: float64(d) / float64(time.Millisecond),
			Msgs:       afterMsgs - beforeMsgs,
			Bytes:      afterBytes - beforeBytes,
			Forwards:   after.Counter("lpm.flood.forwarded") - before.Counter("lpm.flood.forwarded"),
			DedupHits:  after.Counter("lpm.flood.dedup_hits") - before.Counter("lpm.flood.dedup_hits"),
		})
	}
	return rows, nil
}

// FormatFanout renders the broadcast fan-out table.
func FormatFanout(rows []FanoutRow) string {
	var b strings.Builder
	b.WriteString("Broadcast fan-out: one snapshot flood vs cluster size\n")
	fmt.Fprintf(&b, "%-6s %12s %6s %8s %9s %6s\n",
		"hosts", "snapshot ms", "msgs", "bytes", "forwards", "dedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12.1f %6d %8d %9d %6d\n",
			r.Hosts, r.SnapshotMS, r.Msgs, r.Bytes, r.Forwards, r.DedupHits)
	}
	return b.String()
}

// RecoveryCostResult is the message bill of one crash recovery: a CCS
// host crash, detection by the survivors, probing, and the election
// plus announcement of a new CCS (the paper's Section 5 machinery).
type RecoveryCostResult struct {
	Msgs          uint64  // wire messages exchanged during recovery
	Bytes         uint64  // wire bytes of those messages
	Probes        uint64  // pmd probes issued by recovery managers
	Announcements uint64  // CCS announcements sent to siblings
	SiblingsLost  uint64  // broken sibling circuits that triggered recovery
	ElapsedMS     float64 // virtual time from crash to the new CCS being agreed
}

// RunRecoveryCost crashes the CCS of a three-host computation and
// counts the messages the survivors spend recovering.
func RunRecoveryCost() (RecoveryCostResult, error) {
	c, err := NewCluster(ClusterConfig{
		Hosts: []HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	if err != nil {
		return RecoveryCostResult{}, err
	}
	c.AddUser("u")
	c.SetRecoveryList("u", "a", "b", "c")
	sess, err := c.Attach("u", "a")
	if err != nil {
		return RecoveryCostResult{}, err
	}
	if _, err := sess.Run("b", "jb"); err != nil {
		return RecoveryCostResult{}, err
	}
	if _, err := sess.Run("c", "jc"); err != nil {
		return RecoveryCostResult{}, err
	}
	if err := c.Advance(2 * time.Second); err != nil {
		return RecoveryCostResult{}, err
	}
	beforeMsgs, beforeBytes := wireCounts(c)
	before := c.MetricsSnapshot()
	start := c.Now()
	if err := c.Crash("a"); err != nil {
		return RecoveryCostResult{}, err
	}
	// Run until both survivors have agreed on a CCS other than the
	// crashed host, then let the machinery go quiet.
	recovered := func() bool {
		for _, h := range []string{"b", "c"} {
			m, ok := c.ManagerOn(h, "u")
			if !ok {
				return false
			}
			if ccs := m.Recovery().CCS(); ccs == "" || ccs == "a" {
				return false
			}
		}
		return true
	}
	deadline := c.Now().Add(5 * time.Minute)
	for !recovered() && c.Now().Before(deadline) {
		if err := c.Advance(time.Second); err != nil {
			return RecoveryCostResult{}, err
		}
	}
	if !recovered() {
		return RecoveryCostResult{}, fmt.Errorf("recovery cost: survivors never agreed on a new CCS")
	}
	elapsed := c.Now().Sub(start)
	if err := c.Advance(30 * time.Second); err != nil {
		return RecoveryCostResult{}, err
	}
	afterMsgs, afterBytes := wireCounts(c)
	after := c.MetricsSnapshot()
	return RecoveryCostResult{
		Msgs:          afterMsgs - beforeMsgs,
		Bytes:         afterBytes - beforeBytes,
		Probes:        after.Counter("lpm.recovery.probes") - before.Counter("lpm.recovery.probes"),
		Announcements: after.Counter("lpm.recovery.ccs_announcements") - before.Counter("lpm.recovery.ccs_announcements"),
		SiblingsLost:  after.Counter("lpm.recovery.siblings_lost") - before.Counter("lpm.recovery.siblings_lost"),
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
	}, nil
}

// FormatRecoveryCost renders the recovery message bill.
func FormatRecoveryCost(r RecoveryCostResult) string {
	var b strings.Builder
	b.WriteString("Bytes per recovery: CCS crash on a three-host PPM\n")
	fmt.Fprintf(&b, "%-22s %8d\n", "wire messages", r.Msgs)
	fmt.Fprintf(&b, "%-22s %8d\n", "wire bytes", r.Bytes)
	fmt.Fprintf(&b, "%-22s %8d\n", "pmd probes", r.Probes)
	fmt.Fprintf(&b, "%-22s %8d\n", "CCS announcements", r.Announcements)
	fmt.Fprintf(&b, "%-22s %8d\n", "sibling circuits lost", r.SiblingsLost)
	fmt.Fprintf(&b, "%-22s %8.0f\n", "elapsed virtual ms", r.ElapsedMS)
	return b.String()
}

// AblationRelayVsDirect assesses the message-routing policies of §7:
// for a one-shot operation on a topologically distant host, compare (a)
// relaying along a route learned from broadcast replies against (b)
// opening a dedicated circuit, including the circuit's establishment
// cost, and report the steady-state per-op cost of each.
func AblationRelayVsDirect() (relayFirstMS, directFirstMS, relaySteadyMS, directSteadyMS float64, err error) {
	build := func(useRelay bool) (*Cluster, *Session, GPID, error) {
		c, cerr := NewCluster(ClusterConfig{
			Hosts: []HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
			LPM:   lpm.Config{UseRelay: useRelay},
		})
		if cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		c.AddUser("u")
		sess, cerr := c.Attach("u", "a")
		if cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		// Chain circuits a-b, b-c; a learns the route to c by snapshot.
		if _, cerr := sess.Run("b", "pb"); cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		sb, cerr := sess.AttachAt("b")
		if cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		target, cerr := sb.Run("c", "pc")
		if cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		if cerr := c.Advance(time.Second); cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		if _, cerr := sess.Snapshot(); cerr != nil {
			return nil, nil, GPID{}, cerr
		}
		return c, sess, target, nil
	}
	measure := func(useRelay bool) (first, steady float64, err error) {
		c, sess, target, err := build(useRelay)
		if err != nil {
			return 0, 0, err
		}
		d, err := sess.Elapsed(func() error { return sess.Stop(target) })
		if err != nil {
			return 0, 0, err
		}
		first = float64(d) / float64(time.Millisecond)
		if err := c.Advance(time.Second); err != nil {
			return 0, 0, err
		}
		var total time.Duration
		const ops = 6
		for i := 0; i < ops; i++ {
			d, err := sess.Elapsed(func() error { return sess.Foreground(target) })
			if err != nil {
				return 0, 0, err
			}
			total += d
			d, err = sess.Elapsed(func() error { return sess.Stop(target) })
			if err != nil {
				return 0, 0, err
			}
			total += d
		}
		steady = float64(total) / float64(2*ops) / float64(time.Millisecond)
		return first, steady, nil
	}
	relayFirstMS, relaySteadyMS, err = measure(true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	directFirstMS, directSteadyMS, err = measure(false)
	return relayFirstMS, directFirstMS, relaySteadyMS, directSteadyMS, err
}

// ---------------------------------------------------------------------
// Latency attribution: profiling the second-hop overhead (PR 9).
// ---------------------------------------------------------------------

// LatencyAttributionRow is one operation at one gateway distance with
// its full profile-phase decomposition. Unlike the Table 2 breakdown's
// prefix sums, these phases come from internal/profile's conservation
// sweep: they sum exactly to the end-to-end time, with overlap resolved
// instant by instant, so the second-hop delta can be read off per phase
// with nothing double-counted.
type LatencyAttributionRow struct {
	Action         string
	Distance       int
	TotalMS        float64
	NetworkMS      float64 // request-direction wire transit
	ReplyMS        float64 // reply-direction wire transit
	DispatchMS     float64 // endpoint/control/pmd handler occupancy
	BackoffMS      float64 // retry backoff waits (zero on a healthy line)
	KernelMS       float64 // kernel execution and event delivery
	UnattributedMS float64 // conservation remainder
}

// RunLatencyAttribution reruns the warm three-host line of Table 2
// (a --net1-- gw --net2-- c) with create/stop/terminate at distances 0,
// 1 and 2, and attributes each operation with the virtual-time profiler.
// The delta between the distance-2 and distance-1 rows machine-explains
// the paper's claim that the second hop is cheap: the formatter shows
// which phases the extra milliseconds land in.
func RunLatencyAttribution() ([]LatencyAttributionRow, error) {
	c, err := NewCluster(ClusterConfig{
		Hosts: []HostSpec{{Name: "a"}, {Name: "gw"}, {Name: "c"}},
		Segments: map[string][]string{
			"net1": {"a", "gw"},
			"net2": {"gw", "c"},
		},
	})
	if err != nil {
		return nil, err
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		return nil, err
	}
	if _, err := sess.Run("gw", "warm"); err != nil {
		return nil, err
	}
	if _, err := sess.Run("c", "warm"); err != nil {
		return nil, err
	}
	if err := c.Advance(time.Second); err != nil {
		return nil, err
	}

	hostAt := map[int]string{0: "a", 1: "gw", 2: "c"}
	type cellID struct {
		action   string
		distance int
		trace    uint64
	}
	var cells []cellID
	cell := func(action string, dist int, op func() error) error {
		id, err := c.Trace(op)
		if err != nil {
			return err
		}
		cells = append(cells, cellID{action, dist, id})
		return nil
	}
	for dist := 0; dist <= 2; dist++ {
		host := hostAt[dist]
		var id GPID
		if err := cell("create", dist, func() error {
			var rerr error
			id, rerr = sess.Run(host, "job")
			return rerr
		}); err != nil {
			return nil, err
		}
		if err := c.Advance(time.Second); err != nil { // let async exec settle
			return nil, err
		}
		if err := cell("stop", dist, func() error { return sess.Stop(id) }); err != nil {
			return nil, err
		}
		if err := cell("terminate", dist, func() error { return sess.Kill(id) }); err != nil {
			return nil, err
		}
	}

	prof := c.Profile()
	byTrace := make(map[uint64]profile.Request, len(prof.Requests))
	for _, r := range prof.Requests {
		byTrace[r.Trace] = r
	}
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rows := make([]LatencyAttributionRow, 0, len(cells))
	for _, cl := range cells {
		r, ok := byTrace[cl.trace]
		if !ok {
			return nil, fmt.Errorf("latency attribution: trace %d (%s d%d) not profiled",
				cl.trace, cl.action, cl.distance)
		}
		if !r.Conserved() {
			return nil, fmt.Errorf("latency attribution: trace %d (%s d%d) violates conservation",
				cl.trace, cl.action, cl.distance)
		}
		rows = append(rows, LatencyAttributionRow{
			Action: cl.action, Distance: cl.distance,
			TotalMS:        msOf(r.Total()),
			NetworkMS:      msOf(r.Phases[profile.PhaseNetwork]),
			ReplyMS:        msOf(r.Phases[profile.PhaseReply]),
			DispatchMS:     msOf(r.Phases[profile.PhaseDispatch]),
			BackoffMS:      msOf(r.Phases[profile.PhaseBackoff]),
			KernelMS:       msOf(r.Phases[profile.PhaseKernel]),
			UnattributedMS: msOf(r.Phases[profile.PhaseUnattributed]),
		})
	}
	return rows, nil
}

// FormatLatencyAttribution renders the attribution rows and closes with
// the per-phase second-hop delta for each action: where the extra
// milliseconds of gateway crossing actually go.
func FormatLatencyAttribution(rows []LatencyAttributionRow) string {
	var b strings.Builder
	b.WriteString("Latency attribution: profile-phase decomposition per op and distance (virtual ms)\n")
	fmt.Fprintf(&b, "%-10s %8s %7s %8s %6s %9s %8s %7s %7s\n",
		"action", "distance", "total", "network", "reply", "dispatch", "backoff",
		"kernel", "unattr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %7.1f %8.1f %6.1f %9.1f %8.1f %7.1f %7.1f\n",
			r.Action, r.Distance, r.TotalMS, r.NetworkMS, r.ReplyMS,
			r.DispatchMS, r.BackoffMS, r.KernelMS, r.UnattributedMS)
	}
	at := func(action string, dist int) *LatencyAttributionRow {
		for i := range rows {
			if rows[i].Action == action && rows[i].Distance == dist {
				return &rows[i]
			}
		}
		return nil
	}
	b.WriteString("second hop (distance 2 minus distance 1), per phase:\n")
	for _, action := range []string{"create", "stop", "terminate"} {
		r1, r2 := at(action, 1), at(action, 2)
		if r1 == nil || r2 == nil || r1.TotalMS <= 0 {
			continue
		}
		extra := r2.TotalMS - r1.TotalMS
		fmt.Fprintf(&b, "  %-10s +%5.1f ms (+%4.1f%%): network %+.1f, reply %+.1f, dispatch %+.1f, kernel %+.1f\n",
			action, extra, extra/r1.TotalMS*100,
			r2.NetworkMS-r1.NetworkMS, r2.ReplyMS-r1.ReplyMS,
			r2.DispatchMS-r1.DispatchMS, r2.KernelMS-r1.KernelMS)
	}
	return b.String()
}
