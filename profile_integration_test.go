package ppm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ppm"
	"ppm/internal/profile"
	"ppm/internal/trace"
)

// buildFloodCluster builds a 24-host installation with one worker per
// remote host (a star of circuits out of h01) and runs a traced
// snapshot flood from the origin. It returns the cluster and the
// flood's trace ID.
func buildFloodCluster(t *testing.T) (*ppm.Cluster, uint64) {
	t.Helper()
	const hosts = 24
	specs := make([]ppm.HostSpec, hosts)
	for i := range specs {
		specs[i] = ppm.HostSpec{Name: fmt.Sprintf("h%02d", i+1)}
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: specs})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "h01")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("h01", "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= hosts; i++ {
		if _, err := sess.RunChild(fmt.Sprintf("h%02d", i), "worker", root); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	// One traced op: the 24-host snapshot flood. The trace buffer must
	// hold the whole fan-out, or attribution loses spans.
	c.Tracer().SetMaxSpans(1 << 16)
	traceID, err := c.Trace(func() error {
		_, serr := sess.Snapshot()
		return serr
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	return c, traceID
}

// TestFloodCriticalPath24Hosts is the acceptance fixture for the
// critical-path extractor: on a 24-host star flood the known longest
// dependent chain runs through the last leg of the fan-out — the
// origin's sends queue in host order, so the echo from the
// highest-numbered host is the one that gates completion. The expected
// leg is recomputed here directly from the raw span table (latest-ending
// lpm.request child of the op root), independent of the extractor.
func TestFloodCriticalPath24Hosts(t *testing.T) {
	c, traceID := buildFloodCluster(t)
	prof := c.Profile()
	path := prof.CriticalPath(traceID)
	if len(path) == 0 {
		t.Fatal("no critical path for the flood trace")
	}
	if path[0].Name != "op.snapshot" || path[0].Depth != 0 {
		t.Fatalf("path root = %s (depth %d), want op.snapshot at depth 0",
			path[0].Name, path[0].Depth)
	}

	// Hand-check the binding leg from the span table: among the root's
	// lpm.request children, the latest-ending one (ties cannot occur in
	// a serial fan-out).
	spans := c.Tracer().Spans()
	var rootSpan trace.SpanData
	for _, s := range spans {
		if s.Trace == traceID && s.Parent == 0 && s.Name == "op.snapshot" {
			rootSpan = s
		}
	}
	if rootSpan.ID == 0 {
		t.Fatal("flood trace has no op.snapshot root span")
	}
	var wantLeg trace.SpanData
	legs := 0
	for _, s := range spans {
		if s.Trace != traceID || s.Parent != rootSpan.ID ||
			!strings.HasPrefix(s.Name, "lpm.request.") {
			continue
		}
		legs++
		if s.End > wantLeg.End {
			wantLeg = s
		}
	}
	if legs != 23 {
		t.Fatalf("flood fanned out %d request legs, want 23", legs)
	}
	if wantLeg.Name != "lpm.request.h24" {
		t.Fatalf("latest-ending leg is %s, want lpm.request.h24 (fan-out is host-ordered)",
			wantLeg.Name)
	}

	// The extractor must route the chain through exactly that leg, and
	// within it through the remote host's flood work.
	legHop := -1
	for i, h := range path {
		if strings.HasPrefix(h.Name, "lpm.request.") && h.Depth == 1 {
			if h.Span != wantLeg.ID {
				t.Errorf("path runs through %s (span %d), want %s (span %d)",
					h.Name, h.Span, wantLeg.Name, wantLeg.ID)
			}
			legHop = i
		}
	}
	if legHop < 0 {
		t.Fatal("path never descends into a request leg")
	}
	foundWork := false
	for _, h := range path[legHop:] {
		if h.Name == "exec.flood_work" && h.Host == "h24" {
			foundWork = true
		}
	}
	if !foundWork {
		t.Errorf("path misses h24's exec.flood_work; hops: %+v", path)
	}

	// Structural invariants of any path: non-negative slack, hops
	// time-ordered within each nesting level, children inside parents.
	for i, h := range path {
		if h.Slack < 0 {
			t.Errorf("hop %d (%s) has negative slack %v", i, h.Name, h.Slack)
		}
		if h.End < h.Start {
			t.Errorf("hop %d (%s) ends before it starts", i, h.Name)
		}
		for j := i + 1; j < len(path); j++ {
			if path[j].Depth <= h.Depth {
				if path[j].Depth == h.Depth && path[j].Start < h.End {
					t.Errorf("sibling hops %d/%d overlap: %s ends %v, %s starts %v",
						i, j, h.Name, h.End, path[j].Name, path[j].Start)
				}
				break
			}
			// Deeper hop: must nest inside h's window.
			if path[j].Start < h.Start || path[j].End > h.End {
				t.Errorf("hop %d (%s) escapes its parent hop %d (%s)",
					j, path[j].Name, i, h.Name)
			}
		}
	}
}

// TestFloodConservation24Hosts holds the real 24-host flood to the
// conservation bar: the flood request's phase buckets must sum exactly
// to its end-to-end time, with unattributed at most 5% of the total.
func TestFloodConservation24Hosts(t *testing.T) {
	c, traceID := buildFloodCluster(t)
	prof := c.Profile()
	var req *profile.Request
	for i := range prof.Requests {
		if prof.Requests[i].Trace == traceID {
			req = &prof.Requests[i]
		}
	}
	if req == nil {
		t.Fatal("flood trace missing from the profile")
	}
	if !req.Conserved() {
		t.Fatalf("conservation violated: phases %v, total %v", req.Phases, req.Total())
	}
	unattr := req.Phases[profile.PhaseUnattributed]
	if total := req.Total(); float64(unattr) > 0.05*float64(total) {
		t.Errorf("unattributed %v is over 5%% of total %v", unattr, total)
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Errorf("journal/trace audit found %d violations, first: %+v", len(vs), vs[0])
	}
}
