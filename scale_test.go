package ppm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ppm"
)

// The paper: "The PPM's algorithms were designed to scale well into the
// tens of nodes, but we have yet to stress test our implementation."
// These are that stress test.

// buildWide creates a cluster of n hosts with one process on each,
// started from a session on host h0, and returns the cluster and
// session.
func buildWide(t testing.TB, n int) (*ppm.Cluster, *ppm.Session) {
	t.Helper()
	var hosts []ppm.HostSpec
	for i := 0; i < n; i++ {
		hosts = append(hosts, ppm.HostSpec{Name: fmt.Sprintf("h%02d", i)})
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, err := c.Attach("felipe", "h00")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("h00", "root")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if _, err := sess.RunChild(hosts[i].Name, fmt.Sprintf("w%02d", i), root); err != nil {
			t.Fatalf("create on %s: %v", hosts[i].Name, err)
		}
	}
	if err := c.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c, sess
}

func TestScaleTwentyFourHostsSnapshot(t *testing.T) {
	const n = 24
	c, sess := buildWide(t, n)
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Hosts()); got != n {
		t.Fatalf("snapshot covers %d hosts, want %d", got, n)
	}
	if len(snap.Procs) != n { // root + 23 workers
		t.Fatalf("procs = %d, want %d", len(snap.Procs), n)
	}
	if snap.IsForest() {
		t.Fatal("healthy computation fragmented")
	}
	// The render stays readable: one line per process.
	if lines := strings.Count(snap.Render(), "\n"); lines != n {
		t.Fatalf("render lines = %d", lines)
	}
	_ = c
}

func TestScaleBroadcastControl(t *testing.T) {
	const n = 24
	_, sess := buildWide(t, n)
	stopped, err := sess.StopAll()
	if err != nil {
		t.Fatal(err)
	}
	if stopped != n {
		t.Fatalf("stopped %d, want %d", stopped, n)
	}
	cont, err := sess.ContinueAll()
	if err != nil || cont != n {
		t.Fatalf("continued %d err=%v", cont, err)
	}
}

func TestScaleSnapshotLatencyGrowsGently(t *testing.T) {
	// On a star of circuits the snapshot cost is dominated by the home
	// LPM's serial send/receive processing: linear in hosts, not
	// quadratic.
	latency := func(n int) time.Duration {
		_, sess := buildWide(t, n)
		d, err := sess.Elapsed(func() error {
			_, serr := sess.Snapshot()
			return serr
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	l6 := latency(6)
	l12 := latency(12)
	l24 := latency(24)
	t.Logf("snapshot latency: 6 hosts %v, 12 hosts %v, 24 hosts %v", l6, l12, l24)
	// Roughly linear growth: doubling hosts should not quadruple cost.
	if float64(l12) > 2.6*float64(l6) || float64(l24) > 2.6*float64(l12) {
		t.Fatalf("superlinear snapshot scaling: %v %v %v", l6, l12, l24)
	}
	// A day of margin: 24 hosts still under 3 virtual seconds.
	if l24 > 3*time.Second {
		t.Fatalf("24-host snapshot took %v", l24)
	}
}

func TestScaleFailureDuringBroadcast(t *testing.T) {
	const n = 12
	c, sess := buildWide(t, n)
	// Two hosts die; the snapshot still covers the rest and reports the
	// dead ones as partial.
	if err := c.Crash("h05"); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash("h09"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Partial) != 2 {
		t.Fatalf("partial = %v", snap.Partial)
	}
	if got := len(snap.Hosts()); got != n-2 {
		t.Fatalf("covered %d hosts, want %d", got, n-2)
	}
}

func TestScaleManyUsersIsolated(t *testing.T) {
	// Per-user LPMs: several users on the same hosts never see each
	// other's processes.
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"ana", "bob", "eve", "joe"}
	sessions := make(map[string]*ppm.Session, len(users))
	for _, u := range users {
		c.AddUser(u)
		sess, err := c.Attach(u, "a")
		if err != nil {
			t.Fatal(err)
		}
		sessions[u] = sess
		if _, err := sess.Run("b", "job-"+u); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Advance(time.Second)
	for _, u := range users {
		snap, err := sessions[u].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Procs) != 1 {
			t.Fatalf("%s sees %d procs, want 1", u, len(snap.Procs))
		}
		if snap.Procs[0].User != u {
			t.Fatalf("%s sees %s's process", u, snap.Procs[0].User)
		}
	}
	// Broadcast kill from one user leaves the others untouched.
	n, err := sessions["ana"].KillAll()
	if err != nil || n != 1 {
		t.Fatalf("ana killed %d err=%v", n, err)
	}
	snap, _ := sessions["bob"].Snapshot()
	if snap.Procs[0].State.String() != "running" {
		t.Fatal("bob's process harmed by ana's broadcast")
	}
}
