package ppm_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/proc"
)

// Determinism: identical inputs must produce byte-identical behaviour —
// the property the whole evaluation harness rests on.

// scriptedRun executes a fixed scenario and returns a transcript of
// everything observable.
func scriptedRun(t *testing.T, seed int64) string {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed:  seed,
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b", Type: ppm.SunII}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	if err := c.SpawnBackgroundLoad("b", "u", 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.RunChild("b", "worker", root)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(10 * time.Second)
	d1, err := sess.Elapsed(func() error { return sess.Stop(w) })
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	la, _ := c.LoadAvg("b")
	return fmt.Sprintf("stop=%v now=%v la=%.6f\n%s", d1, c.Now(), la, snap.Render())
}

func TestDeterministicReplay(t *testing.T) {
	a := scriptedRun(t, 42)
	b := scriptedRun(t, 42)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

func TestDifferentSeedsStillCorrect(t *testing.T) {
	// Different seeds shift workload phases (hence load averages), but
	// the logical outcome is identical.
	a := scriptedRun(t, 1)
	b := scriptedRun(t, 99)
	if a == "" || b == "" {
		t.Fatal("empty transcripts")
	}
	// The snapshots (last lines) must agree even if timing details vary.
	tailOf := func(s string) string {
		for i := len(s) - 1; i >= 0; i-- {
			if s[i] == '\n' && i < len(s)-1 {
				return s[i+1:]
			}
		}
		return s
	}
	if tailOf(a) != tailOf(b) {
		t.Fatalf("logical outcome diverged across seeds:\n%q\n%q", tailOf(a), tailOf(b))
	}
}

// Property: any sequence of stop/continue/kill operations applied
// through the PPM leaves the kernel and the snapshot agreeing about
// every process state.
func TestPropertySnapshotAgreesWithKernels(t *testing.T) {
	f := func(ops []byte) bool {
		c, err := ppm.NewCluster(ppm.ClusterConfig{
			Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
		})
		if err != nil {
			return false
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "a")
		if err != nil {
			return false
		}
		var ids []ppm.GPID
		r, err := sess.Run("a", "root")
		if err != nil {
			return false
		}
		ids = append(ids, r)
		w, err := sess.RunChild("b", "w", r)
		if err != nil {
			return false
		}
		ids = append(ids, w)
		if len(ops) > 24 {
			ops = ops[:24]
		}
		for _, b := range ops {
			target := ids[int(b)%len(ids)]
			var cerr error
			switch (b / 3) % 3 {
			case 0:
				cerr = sess.Stop(target)
			case 1:
				cerr = sess.Background(target)
			case 2:
				cerr = sess.Kill(target)
			}
			// Operations on already-exited processes fail; that is fine.
			_ = cerr
		}
		if err := c.Advance(2 * time.Second); err != nil {
			return false
		}
		snap, err := sess.Snapshot()
		if err != nil {
			return false
		}
		for _, id := range ids {
			info, ok := snap.Find(id)
			if !ok {
				return false
			}
			k, err := c.Kernel(id.Host)
			if err != nil {
				return false
			}
			p, err := k.Lookup(id.PID)
			if err != nil {
				return false
			}
			if p.State != info.State {
				return false
			}
			if p.State == proc.Running || p.State == proc.Stopped || p.State == proc.Exited {
				continue
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// journalRun executes the scripted scenario with the flight recorder
// retained in full and returns the cluster for journal inspection.
func journalRun(t *testing.T, seed int64) *ppm.Cluster {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed:            seed,
		Hosts:           []ppm.HostSpec{{Name: "a"}, {Name: "b", Type: ppm.SunII}},
		JournalCapacity: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	if err := c.SpawnBackgroundLoad("b", "u", 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sess.RunChild("b", "worker", root)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(10 * time.Second)
	if err := sess.Stop(w); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestJournalDeterministicReplay: the flight recorder observes every
// instrumented path in scheduler order, so two same-seed runs must
// produce byte-identical journals. The first-divergence differ is the
// failure message: if this ever breaks, the test names the exact record
// where the runs parted.
func TestJournalDeterministicReplay(t *testing.T) {
	a := journalRun(t, 42)
	b := journalRun(t, 42)
	if d := journal.Diff(a.Journal(), b.Journal()); d != nil {
		t.Fatalf("same seed diverged:\n%s", d.Format())
	}
	ra, rb := a.Journal().Render(), b.Journal().Render()
	if ra != rb {
		t.Fatal("journal renders differ although Diff found no divergence")
	}
	if a.Journal().Len() == 0 {
		t.Fatal("scenario produced an empty journal")
	}
}

// TestJournalDiffNamesFirstDivergence: different seeds shift workload
// phases, so the journals differ — and the differ must name the first
// divergent record rather than just reporting inequality.
func TestJournalDiffNamesFirstDivergence(t *testing.T) {
	a := journalRun(t, 1)
	b := journalRun(t, 99)
	d := journal.Diff(a.Journal(), b.Journal())
	if d == nil {
		t.Fatal("different seeds produced identical journals")
	}
	out := d.Format()
	if !strings.Contains(out, "first divergence at record index") {
		t.Fatalf("Diff.Format does not name the divergence:\n%s", out)
	}
	if d.A == nil && d.B == nil {
		t.Fatal("divergence carries neither side's record")
	}
}
