package ppm_test

import (
	"strings"
	"testing"
	"time"

	"ppm"
	"ppm/internal/status"
)

// statusCluster builds a small installation with a coordinator on the
// first host and a worker on every other host, plus enough control
// traffic to populate the per-op latency histograms — the same shape
// cmd/ppmtop scripts.
func statusCluster(t *testing.T, seed int64, hosts ...string) (*ppm.Cluster, *ppm.Session) {
	t.Helper()
	specs := make([]ppm.HostSpec, len(hosts))
	for i, h := range hosts {
		specs[i] = ppm.HostSpec{Name: h}
	}
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Seed:  seed,
		Hosts: specs,
		LPM:   ppm.LPMConfig{Retry: ppm.RetryPolicy{MaxAttempts: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run(hosts[0], "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	var workers []ppm.GPID
	for _, h := range hosts[1:] {
		w, err := sess.RunChild(h, "worker-"+h, root)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if err := sess.Stop(w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.ContinueAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	return c, sess
}

// TestStatusSweepDeterminism: two clusters fed the identical script must
// render byte-identical dashboards — the sweep introduces no
// nondeterminism (no map order, no wall clock, no floats).
func TestStatusSweepDeterminism(t *testing.T) {
	render := func() string {
		c, _ := statusCluster(t, 11, "a", "b", "c", "d")
		rep, err := c.StatusReport("u", "a")
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := render(), render()
	if r1 != r2 {
		t.Fatalf("same seed produced different dashboards:\n--- run1 ---\n%s\n--- run2 ---\n%s", r1, r2)
	}
}

// TestStatusSweepCoverage: a healthy sweep collects exactly one report
// per host, sorted, with the instrumented fields populated.
func TestStatusSweepCoverage(t *testing.T) {
	c, sess := statusCluster(t, 3, "a", "b", "c", "d")
	sw, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Unreachable) != 0 {
		t.Fatalf("healthy cluster has unreachable hosts: %v", sw.Unreachable)
	}
	if len(sw.Reports) != 4 {
		t.Fatalf("want 4 reports, got %d", len(sw.Reports))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		r := sw.Reports[i]
		if r.Host != want {
			t.Fatalf("report %d: host %q, want %q (sorted)", i, r.Host, want)
		}
		if r.ProcsTotal == 0 {
			t.Errorf("host %s: empty process table", r.Host)
		}
		if !r.DaemonUp || !r.NetUp {
			t.Errorf("host %s: daemon/net reported down: %+v", r.Host, r)
		}
	}
	// The origin ran the control traffic, so its per-op latency table
	// must be populated with percentile triples.
	origin := sw.Reports[0]
	if len(origin.OpLatencies) == 0 {
		t.Fatal("origin has no per-op latency percentiles")
	}
	for _, ol := range origin.OpLatencies {
		if ol.Count == 0 || ol.P50 <= 0 || ol.P95 < ol.P50 || ol.P99 < ol.P95 {
			t.Errorf("op %s: implausible percentiles %+v", ol.Op, ol)
		}
	}
	if vs := c.JournalAudit(); len(vs) > 0 {
		t.Fatalf("journal audit: %v", vs)
	}
}

// TestStatusSweepPartition: under a partition the sweep completes with
// partial results — exactly the far half listed unreachable — and after
// heal the next sweep covers every host again.
func TestStatusSweepPartition(t *testing.T) {
	c, sess := statusCluster(t, 5, "a", "b", "c", "d")
	if err := c.Partition([]string{"a", "b"}, []string{"c", "d"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	sw, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sw.Unreachable, ","); got != "c,d" {
		t.Fatalf("unreachable = %q, want %q", got, "c,d")
	}
	if len(sw.Reports) != 2 || sw.Reports[0].Host != "a" || sw.Reports[1].Host != "b" {
		t.Fatalf("partitioned sweep reports: %+v", sw.Reports)
	}
	c.Heal()
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	sw, err = sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Unreachable) != 0 || len(sw.Reports) != 4 {
		t.Fatalf("post-heal sweep: %d reports, unreachable %v", len(sw.Reports), sw.Unreachable)
	}
	if vs := c.JournalAudit(); len(vs) > 0 {
		t.Fatalf("journal audit: %v", vs)
	}
}

// TestStatusSweepCrash: a crashed host shows up in the unreachable list
// — never as a fabricated report — and the journal audit's status
// invariant stays clean across the crash.
func TestStatusSweepCrash(t *testing.T) {
	c, sess := statusCluster(t, 9, "a", "b", "c")
	if err := c.Crash("c"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	sw, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sw.Unreachable, ","); got != "c" {
		t.Fatalf("unreachable = %q, want %q", got, "c")
	}
	if len(sw.Reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(sw.Reports))
	}
	if vs := c.JournalAudit(); len(vs) > 0 {
		t.Fatalf("journal audit: %v", vs)
	}
}

// TestBuildStatusZeroAlloc: once warmed, assembling the local status
// report reuses the caller's buffers entirely — the hot path a periodic
// -watch sweep exercises must not allocate.
func TestBuildStatusZeroAlloc(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts:     []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
		NoJournal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunChild("b", "w", root); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l, ok := c.ManagerOn("a", "u")
	if !ok {
		t.Fatal("no manager LPM on a")
	}
	var r status.Report
	l.BuildStatus(&r) // warm: grow the circuit and latency slices
	if allocs := testing.AllocsPerRun(100, func() { l.BuildStatus(&r) }); allocs != 0 {
		t.Fatalf("BuildStatus allocates %v times per run, want 0", allocs)
	}
}
