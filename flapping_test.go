package ppm_test

import (
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/status"
)

// flapRun drives a three-host computation while the home host's link
// to one worker flaps down and up on a fixed cadence, with the
// adaptive failure detector running on every circuit. User-visible
// operations must succeed across the flaps; the at-most-once layer
// must keep them single-execution.
func flapRun(t *testing.T, seed int64) *ppm.Cluster {
	t.Helper()
	cfg := ppm.ClusterConfig{
		Seed: seed,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		JournalCapacity: 1 << 18,
	}
	cfg.LPM.Linktest = 250 * time.Millisecond
	cfg.LPM.RequestTimeout = 500 * time.Millisecond
	cfg.LPM.Retry = ppm.RetryPolicy{MaxAttempts: 6, BaseBackoff: 500 * time.Millisecond}
	c, err := ppm.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	root, err := sess.Run("a", "root")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := sess.RunChild("b", "wb", root)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sess.RunChild("c", "wc", root)
	if err != nil {
		t.Fatal(err)
	}

	// The a<->b link flaps: 2s up, 1.5s down, three cycles. Circuits
	// crossing a down window sever and must redial; each down window
	// is long enough to outlive a request timeout, so the retry engine
	// (not luck) carries the ops across.
	c.FlapLink("a", "b", 2*time.Second, 1500*time.Millisecond, 3)

	// Ops against the flapping host, issued while the flap schedule
	// runs: a stop early on and a kill straddling later cycles.
	if err := sess.Stop(wb); err != nil {
		t.Fatalf("stop across flapping link: %v", err)
	}
	if err := c.Advance(2200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.Kill(wb); err != nil {
		t.Fatalf("kill across flapping link: %v", err)
	}
	// The unaffected a<->c link keeps working throughout.
	if err := sess.Kill(wc); err != nil {
		t.Fatalf("kill on healthy link: %v", err)
	}
	if _, err := sess.Snapshot(); err != nil {
		t.Fatalf("snapshot during flaps: %v", err)
	}
	if err := c.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFlappingLinkAtMostOnce: ops ride out a flapping link without
// double execution, no in-flight execution markers leak, the flap
// boundaries are journaled, and the full audit (circuit lifecycle
// included) is clean.
func TestFlappingLinkAtMostOnce(t *testing.T) {
	c := flapRun(t, 21)
	snap := c.MetricsSnapshot()
	if snap.Counter("simnet.flap.downs") != 3 || snap.Counter("simnet.flap.ups") != 3 {
		t.Fatalf("flap schedule ran %d down / %d up boundaries, want 3/3",
			snap.Counter("simnet.flap.downs"), snap.Counter("simnet.flap.ups"))
	}
	downs, ups := 0, 0
	for _, r := range c.Journal().Records() {
		switch r.Kind {
		case journal.NetFlapDown:
			downs++
			if journal.Field(r.Detail, "link") != "a|b" {
				t.Fatalf("flap record names link %q", journal.Field(r.Detail, "link"))
			}
		case journal.NetFlapUp:
			ups++
		}
	}
	if downs != 3 || ups != 3 {
		t.Fatalf("journal has %d flap-down / %d flap-up records, want 3/3", downs, ups)
	}
	// Quiesced: nothing in flight anywhere, no leaked execution
	// markers on either side of the flapping link.
	for _, host := range []string{"a", "b", "c"} {
		l, ok := c.ManagerOn(host, "u")
		if !ok {
			continue
		}
		var r status.Report
		l.BuildStatus(&r)
		if r.InflightOps != 0 {
			t.Fatalf("%s leaked %d in-flight op markers after quiesce", host, r.InflightOps)
		}
		if r.PendingReqs != 0 {
			t.Fatalf("%s still has %d pending requests after quiesce", host, r.PendingReqs)
		}
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations under flapping link:\n%s", journal.AuditReport(vs))
	}
}

// TestFlappingLinkDeterministic: the flap schedule, detector ticks and
// retry timers all run on the virtual clock, so two same-seed flapping
// runs must produce byte-identical journals.
func TestFlappingLinkDeterministic(t *testing.T) {
	a := flapRun(t, 77)
	b := flapRun(t, 77)
	if d := journal.Diff(a.Journal(), b.Journal()); d != nil {
		t.Fatalf("same seed diverged under flapping:\n%s", d.Format())
	}
	if a.Journal().Len() == 0 {
		t.Fatal("flapping scenario produced an empty journal")
	}
}

// TestThreeWayPartitionCCSMerge: a three-way partition elects an
// acting CCS in every fragment (each host finds itself first reachable
// on the recovery list); after the heal the duplicate coordinators
// must merge back to the single list-preferred CCS, circuits re-knit,
// and the journal audits clean — including every circuit lifecycle
// crossed by the partition.
func TestThreeWayPartitionCCSMerge(t *testing.T) {
	cfg := ppm.ClusterConfig{
		Seed: 5,
		Hosts: []ppm.HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		JournalCapacity: 1 << 18,
	}
	cfg.LPM.Linktest = 250 * time.Millisecond
	c, err := ppm.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("u")
	c.SetRecoveryList("u", "a", "b", "c")
	sess, err := c.Attach("u", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run("b", "jb"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run("c", "jc"); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Second); err != nil {
		t.Fatal(err)
	}

	// Shatter: every host alone. b and c each walk the list, find the
	// higher-priority hosts unreachable and themselves next: three
	// concurrent coordinators.
	if err := c.Partition([]string{"a"}, []string{"b"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	acting := 0
	for _, host := range []string{"a", "b", "c"} {
		if l, ok := c.ManagerOn(host, "u"); ok && l.Recovery().IsCCS() {
			acting++
		}
	}
	if acting < 2 {
		t.Fatalf("partition produced %d acting CCSs, want concurrent coordinators", acting)
	}

	// Heal. The acting coordinators' higher-priority probes find a
	// again and demote; the installation converges on one CCS.
	c.Heal()
	if err := c.Advance(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	acting = 0
	for _, host := range []string{"a", "b", "c"} {
		l, ok := c.ManagerOn(host, "u")
		if !ok {
			t.Fatalf("%s's LPM gone after heal", host)
		}
		if l.Recovery().IsCCS() {
			acting++
		}
		if got := l.Recovery().CCS(); got != "a" {
			t.Fatalf("%s believes the CCS is %q, want a", host, got)
		}
	}
	if acting != 1 {
		t.Fatalf("%d acting CCSs after heal, want exactly 1", acting)
	}
	// The merged installation still does real work end to end.
	if _, err := sess.Run("c", "post-merge"); err != nil {
		t.Fatalf("post-merge create: %v", err)
	}
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("audit violations across three-way partition:\n%s", journal.AuditReport(vs))
	}
}
