package ppm_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppm"
	"ppm/internal/journal"
	"ppm/internal/proc"
)

func twoHostCluster(t *testing.T) *ppm.Cluster {
	t.Helper()
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	return c
}

// auditClean asserts the flight recorder's invariant audit finds
// nothing; the failure-injection tests run it after recovering so a
// protocol breach hidden by an otherwise-happy outcome still fails.
func auditClean(t *testing.T, c *ppm.Cluster) {
	t.Helper()
	if vs := c.JournalAudit(); len(vs) != 0 {
		t.Fatalf("journal audit violations:\n%s", journal.AuditReport(vs))
	}
}

func TestAttachCreatesLPMOnDemand(t *testing.T) {
	c := twoHostCluster(t)
	sess, err := c.Attach("felipe", "vax1")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Home() != "vax1" || sess.User() != "felipe" {
		t.Fatalf("session: %s@%s", sess.User(), sess.Home())
	}
	if _, ok := c.ManagerOn("vax1", "felipe"); !ok {
		t.Fatal("LPM not created")
	}
	// Re-attach finds the same manager.
	sess2, err := c.Attach("felipe", "vax1")
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Manager() != sess.Manager() {
		t.Fatal("re-attach created a second LPM")
	}
}

func TestAttachUnknownUserOrHost(t *testing.T) {
	c := twoHostCluster(t)
	if _, err := c.Attach("ghost", "vax1"); !errors.Is(err, ppm.ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Attach("felipe", "nowhere"); !errors.Is(err, ppm.ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAndControlAcrossHosts(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	root, err := sess.Run("vax1", "pipeline")
	if err != nil {
		t.Fatal(err)
	}
	worker, err := sess.RunChild("vax2", "worker", root)
	if err != nil {
		t.Fatal(err)
	}
	if worker.Host != "vax2" {
		t.Fatalf("worker on %s", worker.Host)
	}
	if err := sess.Stop(worker); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	info, ok := snap.Find(worker)
	if !ok || info.State != proc.Stopped {
		t.Fatalf("worker info: %+v ok=%v", info, ok)
	}
	if err := sess.Foreground(worker); err != nil {
		t.Fatal(err)
	}
	if err := sess.Kill(worker); err != nil {
		t.Fatal(err)
	}
}

func TestControlErrorType(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	err := sess.Stop(ppm.GPID{Host: "vax2", PID: 4242})
	var ce *ppm.ControlError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if ce.Op != "stop" || ce.Target.PID != 4242 {
		t.Fatalf("control error: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "stop") {
		t.Fatal("error text")
	}
}

func TestSnapshotRenderShowsGenealogy(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	root, _ := sess.Run("vax1", "make")
	_, _ = sess.RunChild("vax2", "cc1", root)
	_, _ = sess.RunChild("vax2", "cc2", root)
	_ = c.Advance(time.Second)
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := snap.Render()
	for _, want := range []string{"make", "cc1", "cc2", "<vax2,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if snap.IsForest() {
		t.Fatalf("should be one tree:\n%s", out)
	}
}

func TestBroadcastStopAll(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	r, _ := sess.Run("vax1", "a")
	_, _ = sess.RunChild("vax2", "b", r)
	_, _ = sess.RunChild("vax2", "c", r)
	n, err := sess.StopAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("stopped %d, want 3", n)
	}
	n, err = sess.ContinueAll()
	if err != nil || n != 3 {
		t.Fatalf("continued %d err=%v", n, err)
	}
	n, err = sess.KillAll()
	if err != nil || n != 3 {
		t.Fatalf("killed %d err=%v", n, err)
	}
}

func TestStatsOfExitedRemoteProcess(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	id, _ := sess.Run("vax2", "job")
	_ = c.Advance(300 * time.Millisecond)
	k, _ := c.Kernel("vax2")
	_ = k.Syscall(id.PID, "read")
	if err := sess.Kill(id); err != nil {
		t.Fatal(err)
	}
	info, err := sess.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != proc.Exited || info.Rusage.Syscalls == 0 {
		t.Fatalf("stats: %+v", info)
	}
}

func TestOpenFilesRemote(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	id, _ := sess.Run("vax2", "job")
	_ = c.Advance(300 * time.Millisecond)
	k, _ := c.Kernel("vax2")
	if _, err := k.OpenFD(id.PID, "/var/log/x"); err != nil {
		t.Fatal(err)
	}
	open, err := sess.OpenFiles(id)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(open, " ")
	if !strings.Contains(joined, "/var/log/x") {
		t.Fatalf("open files: %v", open)
	}
}

func TestHistoryAndWatch(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	fired := 0
	remove := sess.OnEvent(&ppm.Watch{
		Kind:   proc.EvStop,
		Action: func(ppm.Event) { fired++ },
	})
	id, _ := sess.Run("vax1", "job")
	_ = sess.Stop(id)
	_ = c.Advance(time.Second)
	if fired != 1 {
		t.Fatalf("watch fired %d times, want 1", fired)
	}
	remove()
	_ = sess.Foreground(id)
	_ = sess.Stop(id)
	_ = c.Advance(time.Second)
	if fired != 1 {
		t.Fatal("removed watch still firing")
	}
	evs, err := sess.History(ppm.HistoryQuery{Proc: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 2 {
		t.Fatalf("history too short: %d", len(evs))
	}
}

func TestAdoptAndTraceMask(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	k, _ := c.Kernel("vax1")
	p, err := k.Spawn("external", "felipe")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Adopt(p.PID); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetTraceMask(p.PID, ppm.TraceAll); err != nil {
		t.Fatal(err)
	}
	// Syscall events now recorded at the finest granularity.
	_ = k.Syscall(p.PID, "read")
	_ = c.Advance(time.Second)
	evs, _ := sess.History(ppm.HistoryQuery{Kinds: []proc.EventKind{proc.EvSyscall}})
	if len(evs) != 1 {
		t.Fatalf("syscall events = %d, want 1", len(evs))
	}
}

func TestElapsedMeasuresVirtualTime(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	d, err := sess.Elapsed(func() error {
		_, err := sess.Run("vax1", "job")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if d < 95*time.Millisecond || d > 105*time.Millisecond {
		t.Fatalf("local create elapsed %v, want ~99ms", d)
	}
}

func TestCrashAndPartialSnapshot(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	r, _ := sess.Run("vax1", "root")
	_, _ = sess.RunChild("vax2", "doomed", r)
	_ = c.Advance(time.Second)
	if err := c.Crash("vax2"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(5 * time.Second)
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Partial) != 1 || snap.Partial[0] != "vax2" {
		t.Fatalf("partial = %v", snap.Partial)
	}
	if !strings.Contains(snap.Render(), "partial") {
		t.Fatal("render should note the partial snapshot")
	}
	auditClean(t, c)
}

func TestRestartAfterCrash(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	_, _ = sess.Run("vax2", "victim")
	_ = c.Advance(time.Second)
	if err := c.Crash("vax2"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(5 * time.Second)
	if err := c.Restart("vax2"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(time.Second)
	// The restarted host serves fresh work.
	id, err := sess.Run("vax2", "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if id.Host != "vax2" {
		t.Fatal("create on restarted host failed")
	}
	auditClean(t, c)
}

func TestRecoveryListFailover(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	c.SetRecoveryList("felipe", "a", "b", "c")
	sess, err := c.Attach("felipe", "a")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sess.Run("a", "root")
	_, _ = sess.RunChild("b", "wb", r)
	_ = c.Advance(2 * time.Second)
	lb, ok := c.ManagerOn("b", "felipe")
	if !ok {
		t.Fatal("no LPM on b")
	}
	if lb.Recovery().CCS() != "a" {
		t.Fatalf("ccs = %q, want a", lb.Recovery().CCS())
	}
	_ = c.Crash("a")
	_ = c.Advance(2 * time.Minute)
	if !lb.Recovery().IsCCS() {
		t.Fatalf("b should be CCS after a's crash (ccs=%q)", lb.Recovery().CCS())
	}
	auditClean(t, c)
}

func TestMixedHostTypes(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{
			{Name: "vax1", Type: ppm.VAX780},
			{Name: "sun1", Type: ppm.SunII},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sessVAX, _ := c.Attach("felipe", "vax1")
	dVAX, err := sessVAX.Elapsed(func() error {
		_, err := sessVAX.Run("vax1", "job")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	sessSun, err := c.Attach("felipe", "sun1")
	if err != nil {
		t.Fatal(err)
	}
	dSun, err := sessSun.Elapsed(func() error {
		_, err := sessSun.Run("sun1", "job")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if dSun <= dVAX {
		t.Fatalf("Sun II (%v) should be slower than VAX 780 (%v)", dSun, dVAX)
	}
}

func TestBackgroundLoadRaisesLoadAverage(t *testing.T) {
	c := twoHostCluster(t)
	if err := c.SpawnBackgroundLoad("vax1", "felipe", 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(30 * time.Second)
	la, err := c.LoadAvg("vax1")
	if err != nil {
		t.Fatal(err)
	}
	if la < 2.5 {
		t.Fatalf("la = %.2f, want ~3", la)
	}
}

func TestGatewayTopology(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "gw"}, {Name: "b"}},
		Segments: map[string][]string{
			"net1": {"a", "gw"},
			"net2": {"gw", "b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, _ := c.Attach("felipe", "a")
	id, err := sess.Run("b", "far-job") // two hops away
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(time.Second)
	// Two-hop control costs ~210ms (Table 2).
	d, err := sess.Elapsed(func() error { return sess.Stop(id) })
	if err != nil {
		t.Fatal(err)
	}
	if d < 205*time.Millisecond || d > 218*time.Millisecond {
		t.Fatalf("two-hop stop took %v, want ~210ms", d)
	}
}

func TestAttachAtFormsChains(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sa, _ := c.Attach("felipe", "a")
	_, _ = sa.Run("b", "on-b")
	sb, err := sa.AttachAt("b")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = sb.Run("c", "on-c")
	_ = c.Advance(time.Second)
	// a has no direct circuit to c, yet the snapshot covers c.
	for _, h := range sa.Manager().SiblingHosts() {
		if h == "c" {
			t.Fatal("setup: a should not know c directly")
		}
	}
	snap, err := sa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	hosts := snap.Hosts()
	found := false
	for _, h := range hosts {
		if h == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("chain snapshot missed c: %v", hosts)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := ppm.NewCluster(ppm.ClusterConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "a"}},
	}); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestLaunchConfigPlan(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "vax1"}, {Name: "vax2"}, {Name: "sun1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, err := c.Attach("felipe", "vax1")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := sess.Launch(`
computation build
proc coord on vax1 trace all
proc split on vax1 parent coord
proc cc1   on vax2 parent split
proc cc2   on sun1 parent split
watch exit of cc1 do signal coord SIGUSR1
`)
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Close()
	if len(comp.Names()) != 4 {
		t.Fatalf("names = %v", comp.Names())
	}
	_ = c.Advance(time.Second)

	// The genealogy matches the declaration.
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := comp.Lookup("coord")
	split, _ := comp.Lookup("split")
	cc1, _ := comp.Lookup("cc1")
	info, ok := snap.Find(cc1)
	if !ok || info.Parent != split {
		t.Fatalf("cc1 info = %+v ok=%v", info, ok)
	}
	if kids := snap.Children(coord); len(kids) != 1 {
		t.Fatalf("coord children = %d", len(kids))
	}

	// cc1 exiting triggers the declared watch even though cc1 is
	// remote: its exit event lands at vax2's LPM, which forwards it
	// to the home LPM (vax1) over sibling RPC, where the declared
	// watch fires and signals coord.
	k2, _ := c.Kernel("vax2")
	_ = k2.Exit(cc1.PID, 0)
	_ = c.Advance(time.Second)
	notes := comp.Notes()
	if len(notes) == 0 {
		t.Fatal("remote exit never fired the home-declared watch")
	}
	if !strings.Contains(notes[0], "signalled coord") {
		t.Fatalf("unexpected notes: %v", notes)
	}

	// A local process exiting does fire the equivalent local watch.
	comp2, err := sess.Launch(`
proc local on vax1
watch exit of local do note local done
`)
	if err != nil {
		t.Fatal(err)
	}
	defer comp2.Close()
	local, _ := comp2.Lookup("local")
	k1, _ := c.Kernel("vax1")
	_ = k1.Exit(local.PID, 0)
	_ = c.Advance(time.Second)
	notes2 := comp2.Notes()
	if len(notes2) != 1 || !strings.Contains(notes2[0], "local done") {
		t.Fatalf("notes = %v", notes2)
	}
}

func TestLaunchBadPlan(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	if _, err := sess.Launch("proc a on vax1 parent ghost"); err == nil {
		t.Fatal("bad plan accepted")
	}
	if _, err := sess.Launch("proc a on nowhere"); err == nil {
		t.Fatal("plan with unknown host should fail at instantiation")
	}
}

func TestSupervisorRestartsCrashedWorker(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "home"}, {Name: "w1"}, {Name: "w2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, err := c.Attach("felipe", "home")
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess.Run("w1", "worker")
	if err != nil {
		t.Fatal(err)
	}
	sup := sess.NewSupervisor(2 * time.Second)
	sup.Supervise(ppm.SuperviseSpec{
		Name:   "worker",
		Hosts:  []string{"w1", "w2"},
		Policy: ppm.RestartAlways,
	}, id)
	sup.Start()
	defer sup.Stop()
	_ = c.Advance(5 * time.Second)
	if sup.Restarts != 0 {
		t.Fatalf("healthy worker restarted: %v", sup.Events)
	}

	// The worker is killed: the supervisor notices via snapshot and
	// restarts it on the same host.
	k, _ := c.Kernel("w1")
	if err := k.Signal(id.PID, ppm.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(10 * time.Second)
	if sup.Restarts != 1 {
		t.Fatalf("restarts = %d, events=%v", sup.Restarts, sup.Events)
	}
	cur, _ := sup.Current("worker")
	if cur.Host != "w1" || cur == id {
		t.Fatalf("current = %v", cur)
	}

	// The whole host crashes: the supervisor fails over to w2.
	if err := c.Crash("w1"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(30 * time.Second)
	cur, _ = sup.Current("worker")
	if cur.Host != "w2" {
		t.Fatalf("failover landed on %q; events=%v", cur.Host, sup.Events)
	}
	// And the replacement is genuinely alive and adopted.
	k2, _ := c.Kernel("w2")
	p, err := k2.Lookup(cur.PID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Running || !p.Traced {
		t.Fatalf("replacement: %+v", p)
	}
}

func TestCCSNameServerCoordinatesAssignment(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts:         []ppm.HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		CCSNameServer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sa, err := c.Attach("felipe", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Manager().Recovery().IsCCS() {
		t.Fatal("first LPM should be the CCS")
	}
	// A later LPM on another host, with no circuits yet and no
	// .recovery file, learns the CCS from the name server.
	sb, err := c.Attach("felipe", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sb.Manager().Recovery().CCS() != "a" {
		t.Fatalf("b's ccs = %q, want the registered a", sb.Manager().Recovery().CCS())
	}
	// Without any circuit to a, b cannot detect a's failures — the
	// name server only coordinates assignment; failure detection still
	// rides the sibling circuits (tested in
	// TestCCSNameServerWithListFailover).
	sc, err := c.Attach("felipe", "c")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Manager().Recovery().CCS() != "a" {
		t.Fatal("every new LPM should adopt the registered CCS")
	}
}

func TestCCSNameServerWithListFailover(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts:         []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
		CCSNameServer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	c.SetRecoveryList("felipe", "a", "b")
	sa, err := c.Attach("felipe", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Run("b", "job"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(time.Second)
	if err := c.Crash("a"); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(2 * time.Minute)
	lb, ok := c.ManagerOn("b", "felipe")
	if !ok {
		t.Fatal("b's LPM gone")
	}
	if !lb.Recovery().IsCCS() {
		t.Fatalf("b should be CCS (ccs=%q state=%v)", lb.Recovery().CCS(), lb.Recovery().State())
	}
	// The takeover was registered: a fresh LPM learns b immediately.
	sc, err := c.Attach("felipe", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Manager().Recovery().CCS() != "b" {
		t.Fatal("name server registration not updated after failover")
	}
}

func TestComputationSubtreeAndRemoteHistory(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, _ := c.Attach("felipe", "a")
	// Two independent computations.
	build, _ := sess.Run("a", "build")
	_, _ = sess.RunChild("b", "cc", build)
	simRoot, _ := sess.Run("a", "sim")
	_, _ = sess.RunChild("b", "sim-worker", simRoot)
	_ = c.Advance(time.Second)

	comp, err := sess.Computation(build)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Procs) != 2 {
		t.Fatalf("build computation = %d procs:\n%s", len(comp.Procs), comp.Render())
	}
	if _, ok := comp.Find(simRoot); ok {
		t.Fatal("other computation leaked into the subtree")
	}

	// The remote worker's lifecycle lives in b's LPM trace, queryable
	// from a.
	wb, _ := comp.Find(build)
	_ = wb
	var remoteID ppm.GPID
	for _, p := range comp.Procs {
		if p.ID.Host == "b" {
			remoteID = p.ID
		}
	}
	if err := sess.Stop(remoteID); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(time.Second)
	evs, err := sess.HistoryOn("b", ppm.HistoryQuery{Proc: remoteID})
	if err != nil {
		t.Fatal(err)
	}
	foundStop := false
	for _, ev := range evs {
		if ev.Kind == proc.EvStop {
			foundStop = true
		}
	}
	if !foundStop {
		t.Fatalf("remote history missing the stop event: %+v", evs)
	}
	// The home trace does NOT contain it (per-LPM histories).
	local, err := sess.History(ppm.HistoryQuery{Proc: remoteID})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range local {
		if ev.Kind == proc.EvStop {
			t.Fatal("home LPM recorded a remote kernel event")
		}
	}
}

func TestRemoteWatchTriggersCrossHostAction(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, _ := c.Attach("felipe", "a")
	sentinel, _ := sess.Run("b", "sentinel")
	reactor, _ := sess.Run("a", "reactor")
	_ = c.Advance(time.Second)

	// When the sentinel on b exits, stop the reactor on a: the event is
	// observed by b's LPM, the action crosses back to a.
	remove, err := sess.OnEventAt("b", &ppm.Watch{
		Kind: proc.EvExit,
		Proc: sentinel,
	}, ppm.OpStop, 0, reactor)
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := c.Kernel("b")
	if err := kb.Exit(sentinel.PID, 0); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(2 * time.Second)
	ka, _ := c.Kernel("a")
	p, err := ka.Lookup(reactor.PID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Stopped {
		t.Fatalf("reactor state = %v, want stopped by the remote watch", p.State)
	}

	// Removal: further matching events take no action.
	remove()
	_ = c.Advance(time.Second)
	if err := sess.Foreground(reactor); err != nil {
		t.Fatal(err)
	}
	w2, _ := sess.Run("b", "sentinel2")
	_ = c.Advance(time.Second)
	if err := kb.Exit(w2.PID, 0); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(2 * time.Second)
	p, _ = ka.Lookup(reactor.PID)
	if p.State != proc.Running {
		t.Fatal("removed remote watch still firing")
	}
}

func TestRemoteWatchLocalAction(t *testing.T) {
	c, err := ppm.NewCluster(ppm.ClusterConfig{
		Hosts: []ppm.HostSpec{{Name: "a"}, {Name: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("felipe")
	sess, _ := c.Attach("felipe", "a")
	boss, _ := sess.Run("b", "boss")
	minion, _ := sess.RunChild("b", "minion", boss)
	_ = c.Advance(time.Second)

	// When the boss exits, kill the minion — both on b; the action is
	// applied locally by b's LPM.
	if _, err := sess.OnEventAt("b", &ppm.Watch{
		Kind: proc.EvExit,
		Proc: boss,
	}, ppm.OpKill, 0, minion); err != nil {
		t.Fatal(err)
	}
	kb, _ := c.Kernel("b")
	if err := kb.Exit(boss.PID, 0); err != nil {
		t.Fatal(err)
	}
	_ = c.Advance(2 * time.Second)
	p, err := kb.Lookup(minion.PID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Exited {
		t.Fatalf("minion state = %v, want exited", p.State)
	}
}

func TestLocateFindsByNameAcrossHosts(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	_, _ = sess.Run("vax1", "worker")
	_, _ = sess.Run("vax2", "worker")
	_, _ = sess.Run("vax2", "other")
	_ = c.Advance(time.Second)
	ids, err := sess.Locate("worker")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("located %v", ids)
	}
	hosts := map[string]bool{}
	for _, id := range ids {
		hosts[id.Host] = true
	}
	if !hosts["vax1"] || !hosts["vax2"] {
		t.Fatalf("located on %v", hosts)
	}
	none, _ := sess.Locate("ghost")
	if len(none) != 0 {
		t.Fatal("phantom locate")
	}
}

func TestPublicDisplayHelpers(t *testing.T) {
	c := twoHostCluster(t)
	sess, _ := c.Attach("felipe", "vax1")
	id, _ := sess.Run("vax1", "job")
	_ = sess.Stop(id)
	_ = c.Advance(time.Second)
	snap, _ := sess.Snapshot()
	if !strings.Contains(ppm.FormatSnapshotTable(snap), "stopped") {
		t.Fatal("table helper broken")
	}
	info, _ := sess.Stats(id)
	if !strings.Contains(ppm.FormatStats(info), "job") {
		t.Fatal("stats helper broken")
	}
	if !strings.Contains(ppm.FormatStatsTable(snap.Procs), "job") {
		t.Fatal("stats table helper broken")
	}
	evs, _ := sess.History(ppm.HistoryQuery{})
	if !strings.Contains(ppm.FormatTimeline(evs), "stop") {
		t.Fatal("timeline helper broken")
	}
	if out := ppm.FormatIPC(ppm.AnalyzeIPC(evs)); out == "" {
		t.Fatal("ipc helpers broken")
	}
	open, _ := sess.OpenFiles(id)
	if !strings.Contains(ppm.FormatFDs(id, open), "tty") {
		t.Fatal("fd helper broken")
	}
}
