package status

import (
	"strings"
	"testing"
	"time"
)

func sampleReport() Report {
	return Report{
		Host: "h02", At: 5 * time.Second,
		ProcsLive: 3, ProcsTotal: 7, Load100: 123,
		TimersPending: 4,
		DaemonUp:      true, DaemonLPMs: 2,
		NetUp: true, NetConns: 3,
		Circuits: []CircuitStatus{
			{Peer: "h01", State: "open", Age: 3 * time.Second},
			{Peer: "h03", State: "breaking", Age: 500 * time.Millisecond},
		},
		PendingReqs: 1, RetryBackoffs: 2,
		ReplyCache: 5, InflightOps: 1,
		JournalLen: 100, JournalDropped: 7,
		OpLatencies: []OpLatency{
			{Op: "Control", Count: 9, P50: 10 * time.Millisecond,
				P95: 40 * time.Millisecond, P99: 80 * time.Millisecond},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	want := sampleReport()
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != want.Host || got.At != want.At ||
		got.ProcsLive != want.ProcsLive || got.ProcsTotal != want.ProcsTotal ||
		got.Load100 != want.Load100 || got.TimersPending != want.TimersPending ||
		got.DaemonUp != want.DaemonUp || got.DaemonLPMs != want.DaemonLPMs ||
		got.NetUp != want.NetUp || got.NetConns != want.NetConns ||
		got.PendingReqs != want.PendingReqs || got.RetryBackoffs != want.RetryBackoffs ||
		got.ReplyCache != want.ReplyCache || got.InflightOps != want.InflightOps ||
		got.JournalLen != want.JournalLen || got.JournalDropped != want.JournalDropped {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Circuits) != 2 || got.Circuits[0] != want.Circuits[0] ||
		got.Circuits[1] != want.Circuits[1] {
		t.Fatalf("circuits: %+v", got.Circuits)
	}
	if len(got.OpLatencies) != 1 || got.OpLatencies[0] != want.OpLatencies[0] {
		t.Fatalf("op latencies: %+v", got.OpLatencies)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	r := sampleReport()
	b := r.Encode()
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Fatal("truncated report decoded without error")
	}
}

func TestResetRetainsCapacity(t *testing.T) {
	r := sampleReport()
	c0, o0 := cap(r.Circuits), cap(r.OpLatencies)
	r.Reset("h09", time.Second)
	if r.Host != "h09" || r.At != time.Second {
		t.Fatalf("reset header: %+v", r)
	}
	if len(r.Circuits) != 0 || len(r.OpLatencies) != 0 {
		t.Fatalf("reset left entries: %+v", r)
	}
	if cap(r.Circuits) != c0 || cap(r.OpLatencies) != o0 {
		t.Fatalf("reset dropped capacity: %d/%d -> %d/%d",
			c0, o0, cap(r.Circuits), cap(r.OpLatencies))
	}
	if r.ProcsTotal != 0 || r.RetryBackoffs != 0 || r.JournalDropped != 0 || r.DaemonUp {
		t.Fatalf("reset left fields: %+v", r)
	}
}

func TestSweepRenderDeterministic(t *testing.T) {
	mk := func() Sweep {
		b := sampleReport()
		a := Report{Host: "h01", At: 5 * time.Second, DaemonUp: true}
		return Sweep{
			At: 6 * time.Second, Origin: "h01", User: "op",
			Reports:     []Report{b, a}, // deliberately unsorted
			Unreachable: []string{"h05", "h04"},
		}
	}
	s1, s2 := mk(), mk()
	s1.Sort()
	s2.Sort()
	r1, r2 := s1.Render(), s2.Render()
	if r1 != r2 {
		t.Fatalf("renders differ:\n%s\n--\n%s", r1, r2)
	}
	lines := strings.Split(strings.TrimSuffix(r1, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 2 rows + unreachable, got %d lines:\n%s", len(lines), r1)
	}
	if lines[0] != "=== cluster status @ T+6s origin=h01 user=op (2/4 hosts) ===" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "h01 ") {
		t.Fatalf("rows not sorted by host: %q", lines[1])
	}
	if lines[3] != "unreachable: h04,h05" {
		t.Fatalf("unreachable line: %q", lines[3])
	}
	// The load average renders as fixed-point text — no float formatting.
	if !strings.Contains(lines[2], "load=1.23") {
		t.Fatalf("load rendering: %q", lines[2])
	}
	if !strings.Contains(lines[2], "circ=[h01:open/3s h03:breaking/500ms]") {
		t.Fatalf("circuit table: %q", lines[2])
	}
	if !strings.Contains(lines[2], "ops=[Control:n=9/10ms/40ms/80ms]") {
		t.Fatalf("op latencies: %q", lines[2])
	}
}
