// Package status defines the PPM's live-introspection report: a
// structured, deterministic per-host summary of what every layer of the
// installation is doing right now — kernel process table, scheduler
// timer backlog, the LPM's sibling-circuit table with per-circuit state
// and age, the reliability layer's reply-cache / in-flight-marker /
// retry-backoff occupancy, the flight-recorder ring occupancy, and
// per-op latency percentiles. Reports are built by small Status() hooks
// on each layer, gathered cluster-wide by the LPM's status sweep (a
// read-only sibling RPC riding the retry engine), and rendered as a
// dashboard: one sorted row per host, virtual-time-stamped, with an
// explicit unreachable-host list when the cluster is partitioned.
//
// Everything here is deterministic: rows are sorted, durations render
// as duration strings, the load average is carried as a fixed-point
// integer — no floats ever reach the output, so two same-seed sweeps
// are byte-identical.
package status

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/wire"
)

// CircuitStatus is one sibling circuit in a host's circuit table.
type CircuitStatus struct {
	Peer  string
	State string        // circuit lifecycle state ("established", "suspect", ...)
	Age   time.Duration // virtual time since the circuit authenticated
	// Suspicion is the accrual failure detector's current level for the
	// peer (0 = no doubt); nonzero renders as a /sN suffix in the row.
	Suspicion int
}

// OpLatency is the latency envelope of one sibling-RPC op type as seen
// from this host's LPM (request send to response receipt, retries
// included in the last attempt's RTT).
type OpLatency struct {
	Op            string
	Count         uint64
	P50, P95, P99 time.Duration
}

// Report is one host's live status. The slices are owned by the report
// and reused across rebuilds (Reset truncates, builders append), so a
// steady-state local rebuild allocates nothing.
type Report struct {
	Host string
	At   time.Duration // virtual time the report was built

	// kernel
	ProcsLive  int   // user's live (running/stopped) processes
	ProcsTotal int   // user's table entries, exited included
	Load100    int64 // load average x100 (fixed-point, no floats)

	// sim
	TimersPending int // events pending on the host-shared scheduler

	// daemon
	DaemonUp   bool
	DaemonLPMs int // LPM registrations the pmd knows

	// simnet
	NetUp    bool
	NetConns int // open circuit endpoints on the host

	// lpm
	Circuits       []CircuitStatus
	PendingReqs    int // requests awaiting a response
	RetryBackoffs  int // retry timers currently waiting to refire
	ReplyCache     int // at-most-once cached replies held
	InflightOps    int // in-flight execution markers held
	JournalLen     int
	JournalDropped uint64
	OpLatencies    []OpLatency
}

// Reset clears the report for rebuilding, retaining slice capacity.
func (r *Report) Reset(host string, at time.Duration) {
	r.Host, r.At = host, at
	r.ProcsLive, r.ProcsTotal, r.Load100 = 0, 0, 0
	r.TimersPending = 0
	r.DaemonUp, r.DaemonLPMs = false, 0
	r.NetUp, r.NetConns = false, 0
	r.Circuits = r.Circuits[:0]
	r.PendingReqs, r.RetryBackoffs = 0, 0
	r.ReplyCache, r.InflightOps = 0, 0
	r.JournalLen, r.JournalDropped = 0, 0
	r.OpLatencies = r.OpLatencies[:0]
}

// SortCircuits puts the circuit table in peer order (in place).
func (r *Report) SortCircuits() {
	detord.SortBy(r.Circuits, func(c CircuitStatus) string { return c.Peer })
}

// EncodeTo appends the report's wire form to enc.
func (r *Report) EncodeTo(enc *wire.Encoder) {
	enc.String(r.Host)
	enc.Duration(r.At)
	enc.I32(int32(r.ProcsLive))
	enc.I32(int32(r.ProcsTotal))
	enc.I64(r.Load100)
	enc.I32(int32(r.TimersPending))
	enc.Bool(r.DaemonUp)
	enc.I32(int32(r.DaemonLPMs))
	enc.Bool(r.NetUp)
	enc.I32(int32(r.NetConns))
	enc.U16(uint16(len(r.Circuits)))
	for _, c := range r.Circuits {
		enc.String(c.Peer)
		enc.String(c.State)
		enc.Duration(c.Age)
		enc.I32(int32(c.Suspicion))
	}
	enc.I32(int32(r.PendingReqs))
	enc.I32(int32(r.RetryBackoffs))
	enc.I32(int32(r.ReplyCache))
	enc.I32(int32(r.InflightOps))
	enc.I32(int32(r.JournalLen))
	enc.U64(r.JournalDropped)
	enc.U16(uint16(len(r.OpLatencies)))
	for _, o := range r.OpLatencies {
		enc.String(o.Op)
		enc.U64(o.Count)
		enc.Duration(o.P50)
		enc.Duration(o.P95)
		enc.Duration(o.P99)
	}
}

// Encode returns the report's wire form.
func (r *Report) Encode() []byte {
	enc := wire.NewEncoder(128 + 32*len(r.Circuits) + 48*len(r.OpLatencies))
	r.EncodeTo(enc)
	return enc.Bytes()
}

// Decode parses a wire-form report.
func Decode(b []byte) (Report, error) {
	d := wire.NewDecoder(b)
	var r Report
	r.Host = d.String()
	r.At = d.Duration()
	r.ProcsLive = int(d.I32())
	r.ProcsTotal = int(d.I32())
	r.Load100 = d.I64()
	r.TimersPending = int(d.I32())
	r.DaemonUp = d.Bool()
	r.DaemonLPMs = int(d.I32())
	r.NetUp = d.Bool()
	r.NetConns = int(d.I32())
	nc := int(d.U16())
	for i := 0; i < nc && d.Err() == nil; i++ {
		r.Circuits = append(r.Circuits, CircuitStatus{
			Peer: d.String(), State: d.String(), Age: d.Duration(),
			Suspicion: int(d.I32()),
		})
	}
	r.PendingReqs = int(d.I32())
	r.RetryBackoffs = int(d.I32())
	r.ReplyCache = int(d.I32())
	r.InflightOps = int(d.I32())
	r.JournalLen = int(d.I32())
	r.JournalDropped = d.U64()
	no := int(d.U16())
	for i := 0; i < no && d.Err() == nil; i++ {
		r.OpLatencies = append(r.OpLatencies, OpLatency{
			Op: d.String(), Count: d.U64(),
			P50: d.Duration(), P95: d.Duration(), P99: d.Duration(),
		})
	}
	if err := d.Finish(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// Sweep is one cluster-wide status gather: the origin's own report plus
// one per reachable remote host, and the explicit list of hosts that
// could not be reached (sorted). Reports are sorted by host.
type Sweep struct {
	At          time.Duration // virtual time the sweep completed
	Origin      string
	User        string
	Reports     []Report
	Unreachable []string
}

// Sort puts reports in host order and the unreachable list in name
// order (in place).
func (s *Sweep) Sort() {
	detord.SortBy(s.Reports, func(r Report) string { return r.Host })
	detord.Sort(s.Unreachable)
}

// load renders a x100 fixed-point load average without float formatting.
func load(l100 int64) string {
	if l100 < 0 {
		l100 = 0
	}
	return fmt.Sprintf("%d.%02d", l100/100, l100%100)
}

// Row renders the report as one dashboard row (no trailing newline).
func (r *Report) Row() string {
	var b strings.Builder
	r.writeRow(&b)
	return b.String()
}

func (r *Report) writeRow(b *strings.Builder) {
	daemon := "down"
	if r.DaemonUp {
		daemon = "up"
	}
	fmt.Fprintf(b, "%-8s procs=%d/%d load=%s timers=%d daemon=%s/%d conns=%d",
		r.Host, r.ProcsLive, r.ProcsTotal, load(r.Load100),
		r.TimersPending, daemon, r.DaemonLPMs, r.NetConns)
	b.WriteString(" circ=[")
	for i, c := range r.Circuits {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%s:%s/%v", c.Peer, c.State, c.Age)
		if c.Suspicion > 0 {
			fmt.Fprintf(b, "/s%d", c.Suspicion)
		}
	}
	fmt.Fprintf(b, "] pend=%d bkoff=%d cache=%d infl=%d journal=%d/%d",
		r.PendingReqs, r.RetryBackoffs, r.ReplyCache, r.InflightOps,
		r.JournalLen, r.JournalDropped)
	b.WriteString(" ops=[")
	for i, o := range r.OpLatencies {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%s:n=%d/%v/%v/%v", o.Op, o.Count, o.P50, o.P95, o.P99)
	}
	b.WriteString("]")
}

// Render returns the sweep as the operator-facing dashboard: a
// virtual-time-stamped header, one sorted row per collected host, and
// the unreachable list (when any). Byte-identical across same-seed
// runs.
func (s *Sweep) Render() string {
	var b strings.Builder
	total := len(s.Reports) + len(s.Unreachable)
	fmt.Fprintf(&b, "=== cluster status @ T+%v origin=%s user=%s (%d/%d hosts) ===\n",
		s.At, s.Origin, s.User, len(s.Reports), total)
	for i := range s.Reports {
		s.Reports[i].writeRow(&b)
		b.WriteByte('\n')
	}
	if len(s.Unreachable) > 0 {
		fmt.Fprintf(&b, "unreachable: %s\n", strings.Join(s.Unreachable, ","))
	}
	return b.String()
}
