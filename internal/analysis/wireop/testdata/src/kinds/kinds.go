// Package kinds stands in for the journal package's Kind vocabulary in
// the wireop fixtures.
package kinds

type Kind string

const (
	KindPing  Kind = "ping"
	KindEvent Kind = "event"
)
