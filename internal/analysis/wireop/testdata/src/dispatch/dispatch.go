// Package dispatch is the handler layer of the wireop fixture tree: it
// dispatches some of wirefix's ops and references one more.
package dispatch

import "wirefix"

// Serve dispatches MsgPing through a case clause and MsgBadRole
// through a comparison — both count as dispatch sites.
func Serve(t wirefix.MsgType) wirefix.MsgType {
	switch t {
	case wirefix.MsgPing:
		return wirefix.MsgPong
	}
	if t == wirefix.MsgBadRole {
		return wirefix.MsgEvent
	}
	return 0
}
