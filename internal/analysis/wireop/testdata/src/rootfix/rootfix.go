// Package rootfix is the protocol root of the wireop fixture tree. It
// imports only the dispatch layer: the ops information must reach it
// through the accumulated coverage facts, not a direct import.
//
//ppmlint:protocolroot // want `wire op wirefix.MsgLonely \(request role\) has no dispatch case under the protocol root` `wire op wirefix.MsgDrop is never referenced outside its ops package \(orphan protocol surface\)` `wire op wirefix.MsgLonely is never referenced outside its ops package \(orphan protocol surface\)` `wire op wirefix.MsgQuiet is never referenced outside its ops package \(orphan protocol surface\)`
package rootfix

import "dispatch"

// Run exercises the dispatcher.
func Run() { dispatch.Serve(1) }
