// Package wirefix is an ops package fixture: it declares MsgType
// constants and an opSpecs manifest with seeded violations.
package wirefix

import "kinds"

type MsgType uint16

const (
	MsgPing MsgType = iota + 1
	MsgPong
	MsgDrop // want `wire op MsgDrop has no opSpecs manifest row \(missing msgNames/counter/journal-kind entry\)`
	MsgEvent
	MsgLonely
	MsgBadRole
	//ppmlint:allow wireop fixture exercises suppression of a missing row
	MsgQuiet
)

type opRole uint8

const (
	roleRequest opRole = iota + 1
	roleResponse
	roleEvent
)

type opSpec struct {
	name string
	role opRole
	kind kinds.Kind
}

var opSpecs = [...]opSpec{
	MsgPing: {"Ping", roleRequest, kinds.KindPing},
	MsgPong: {"Ping", // want `wire name "Ping" of MsgPong duplicates MsgPing \(their metrics counters would merge\)`
		roleResponse, kinds.KindPing},
	MsgEvent:  {"Event", roleEvent, kinds.KindEvent},
	MsgLonely: {"Lonely", roleRequest, "adhoc"}, // want `opSpecs journal kind for MsgLonely must be a named journal constant, not a literal`
	MsgBadRole: {"BadRole", 2, // want `opSpecs role for MsgBadRole must be a role\* constant`
		kinds.KindPing},
}
