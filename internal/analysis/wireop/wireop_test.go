package wireop_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/wireop"
)

// TestWireop runs the analyzer over the fixture tree kinds → wirefix
// (the ops package, with seeded manifest violations) → dispatch (the
// handler layer) → rootfix (the protocol root), chaining package facts
// between the passes the way vet does. The rootfix expectations prove
// the whole-program half: a request op with no dispatch site and the
// orphaned ops are reported at the //ppmlint:protocolroot directive
// even though rootfix never imports wirefix directly.
func TestWireop(t *testing.T) {
	analyzertest.Run(t, wireop.Analyzer, "rootfix", "kinds", "wirefix", "dispatch")
}
