// Package wireop defines an analyzer that machine-checks the wire
// protocol surface. The wire package declares its ops as Msg*
// constants of a named MsgType and describes each one in the opSpecs
// manifest (trace name → metrics counter pair, dispatch role, journal
// kind). Adding an op by hand is exactly the kind of cross-cutting
// change that rots silently: the constant compiles fine with no
// manifest row, no dispatch case and no journal kind. wireop reports:
//
//   - a Msg* constant with no opSpecs row (so no msgNames entry, no
//     metrics counter, no journal kind);
//   - a manifest row with an empty or duplicate wire name (duplicates
//     would merge two ops' counter accounting);
//   - a role that is not one of the role* constants, or a journal kind
//     given as a literal instead of a named journal constant;
//   - at the package bearing the //ppmlint:protocolroot directive: a
//     request-role op with no dispatch site (case clause or ==/!=
//     comparison) anywhere in the import graph, and a non-event op
//     never referenced outside its ops package (orphan surface).
//
// The whole-program half rides the vet facts mechanism: every package
// exports a coverage fact accumulating its own dispatch sites and op
// references with those of its imports, so by the time the analyzer
// reaches the protocol root the transitive closure is in hand.
// Suppress a finding with //ppmlint:allow wireop <reason> on the line
// above it.
package wireop

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// ProtocolRoot is the directive marking the package where the
// whole-program checks report: a package that (transitively) imports
// every dispatcher of the protocol.
const ProtocolRoot = "//ppmlint:protocolroot"

var Analyzer = &analysis.Analyzer{
	Name:      "wireop",
	Doc:       "check that every wire op has a manifest row and a dispatch site",
	Run:       run,
	FactTypes: []analysis.Fact{new(coverageFact)},
}

// opInfo is one wire op as seen by the whole-program checks.
type opInfo struct {
	ID   string // qualified constant, "pkgpath.MsgFoo"
	Name string // manifest wire name ("" when the row is missing)
	Role string // "request", "response", "event" ("" when missing)
}

// coverageFact accumulates, across the import graph, the protocol
// surface (Ops, from ops packages) and the evidence of its use:
// Handled holds ops appearing in a dispatch position (case clause or
// ==/!= comparison), Used holds ops referenced at all outside their
// ops package. Every package exports the union of its own evidence
// and its direct imports', so the fact at the protocol root covers the
// transitive closure.
type coverageFact struct {
	Ops     []opInfo
	Handled []string
	Used    []string
}

func (*coverageFact) AFact() {}

func (f *coverageFact) String() string {
	return "wireop.coverage(" + strings.Join(f.Used, ",") + ")"
}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	cov := coverageFact{}
	ownConsts := opsConstants(pass.Pkg)
	if len(ownConsts) > 0 {
		cov.Ops = checkManifest(pass, ownConsts, report)
	}

	handled, used := collectEvidence(pass)
	cov.Handled, cov.Used = handled, used

	// Accumulate the imports' coverage. Imports() is sorted by path,
	// so the merge is deterministic.
	for _, imp := range pass.Pkg.Imports() {
		var f coverageFact
		if pass.ImportPackageFact(imp, &f) {
			cov.Ops = append(cov.Ops, f.Ops...)
			cov.Handled = append(cov.Handled, f.Handled...)
			cov.Used = append(cov.Used, f.Used...)
		}
	}
	sortDedup(&cov.Ops)
	cov.Handled = dedupStrings(cov.Handled)
	cov.Used = dedupStrings(cov.Used)
	pass.ExportPackageFact(&cov)

	if pos, ok := rootDirective(pass); ok {
		handledSet := stringSet(cov.Handled)
		usedSet := stringSet(cov.Used)
		for _, op := range cov.Ops {
			if op.Role == "request" && !handledSet[op.ID] {
				report(pos, "wire op %s (request role) has no dispatch case under the protocol root", op.ID)
			}
			if op.Role != "event" && !usedSet[op.ID] {
				report(pos, "wire op %s is never referenced outside its ops package (orphan protocol surface)", op.ID)
			}
		}
	}

	suppress.Apply(pass, diags)
	return nil, nil
}

// opsConstants returns the package's Msg* constants of its named
// MsgType, in declaration-name order, or nil if the package is not an
// ops package.
func opsConstants(pkg *types.Package) []*types.Const {
	scope := pkg.Scope()
	tn, ok := scope.Lookup("MsgType").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	var out []*types.Const
	for _, name := range scope.Names() { // Names() is sorted
		if !strings.HasPrefix(name, "Msg") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Type() == named {
			out = append(out, c)
		}
	}
	return out
}

// checkManifest verifies the opSpecs composite literal against the
// package's op constants and returns the manifest as opInfo rows.
func checkManifest(pass *analysis.Pass, consts []*types.Const, report func(token.Pos, string, ...interface{})) []opInfo {
	rows := make(map[types.Object]*opInfo)
	lit := manifestLiteral(pass)
	var names = make(map[string]string) // wire name → op constant
	if lit != nil {
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			obj := constObj(pass, kv.Key)
			if obj == nil {
				report(kv.Key.Pos(), "opSpecs key must be a Msg* constant of this package")
				continue
			}
			row := &opInfo{ID: qualify(obj)}
			rows[obj] = row
			val, ok := kv.Value.(*ast.CompositeLit)
			if !ok || len(val.Elts) != 3 {
				report(kv.Value.Pos(), "opSpecs row for %s must list name, role and journal kind", obj.Name())
				continue
			}
			checkRow(pass, obj, val, row, names, report)
		}
	}
	out := make([]opInfo, 0, len(consts))
	for _, c := range consts {
		row, ok := rows[c]
		if !ok {
			report(c.Pos(), "wire op %s has no opSpecs manifest row (missing msgNames/counter/journal-kind entry)", c.Name())
			out = append(out, opInfo{ID: qualify(c)})
			continue
		}
		out = append(out, *row)
	}
	// A manifest row keyed by something that is not one of the Msg*
	// constants is an orphan entry.
	known := make(map[types.Object]bool, len(consts))
	for _, c := range consts {
		known[c] = true
	}
	if lit != nil {
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if obj := constObj(pass, kv.Key); obj != nil && !known[obj] {
					report(kv.Key.Pos(), "opSpecs row %s does not correspond to a Msg* constant", obj.Name())
				}
			}
		}
	}
	return out
}

// checkRow validates one manifest row's name, role and journal kind.
func checkRow(pass *analysis.Pass, op types.Object, val *ast.CompositeLit, row *opInfo, names map[string]string, report func(token.Pos, string, ...interface{})) {
	if name, ok := stringLit(val.Elts[0]); !ok || name == "" {
		report(val.Elts[0].Pos(), "opSpecs row for %s needs a non-empty wire name literal", op.Name())
	} else {
		if prev, dup := names[name]; dup {
			report(val.Elts[0].Pos(), "wire name %q of %s duplicates %s (their metrics counters would merge)", name, op.Name(), prev)
		}
		names[name] = op.Name()
		row.Name = name
	}
	role := constObj(pass, val.Elts[1])
	if role == nil || !strings.HasPrefix(role.Name(), "role") {
		report(val.Elts[1].Pos(), "opSpecs role for %s must be a role* constant", op.Name())
	} else {
		row.Role = strings.ToLower(strings.TrimPrefix(role.Name(), "role"))
	}
	if kind := constObj(pass, val.Elts[2]); kind == nil {
		report(val.Elts[2].Pos(), "opSpecs journal kind for %s must be a named journal constant, not a literal", op.Name())
	}
}

// manifestLiteral finds the package-level `var opSpecs = [...]opSpec{...}`
// composite literal.
func manifestLiteral(pass *analysis.Pass) *ast.CompositeLit {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "opSpecs" || len(vs.Values) != 1 {
					continue
				}
				if lit, ok := vs.Values[0].(*ast.CompositeLit); ok {
					return lit
				}
			}
		}
	}
	return nil
}

// collectEvidence walks the package for references to other packages'
// ops constants: any reference counts as Used, and a reference inside
// a case clause or an ==/!= comparison counts as Handled too.
func collectEvidence(pass *analysis.Pass) (handled, used []string) {
	isOpsPkg := make(map[*types.Package]bool)
	isForeignOp := func(e ast.Expr) (types.Object, bool) {
		obj := constObj(pass, e)
		if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg || !strings.HasPrefix(obj.Name(), "Msg") {
			return nil, false
		}
		ops, seen := isOpsPkg[obj.Pkg()]
		if !seen {
			ops = len(opsConstants(obj.Pkg())) > 0
			isOpsPkg[obj.Pkg()] = ops
		}
		if !ops {
			return nil, false
		}
		return obj, true
	}
	mark := func(e ast.Expr, dispatch bool) {
		if obj, ok := isForeignOp(e); ok {
			used = append(used, qualify(obj))
			if dispatch {
				handled = append(handled, qualify(obj))
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					mark(e, true)
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					mark(n.X, true)
					mark(n.Y, true)
				}
			case *ast.Ident:
				mark(n, false)
			case *ast.SelectorExpr:
				mark(n, false)
			}
			return true
		})
	}
	return handled, used
}

// rootDirective reports whether the package carries the
// //ppmlint:protocolroot directive and returns its position.
func rootDirective(pass *analysis.Pass) (token.Pos, bool) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == ProtocolRoot || strings.HasPrefix(c.Text, ProtocolRoot+" ") {
					return c.Pos(), true
				}
			}
		}
	}
	return token.NoPos, false
}

// --- small helpers ---

// constObj resolves e (ident or selector) to the constant it names.
func constObj(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s := lit.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1], true
	}
	return "", false
}

func qualify(obj types.Object) string {
	return obj.Pkg().Path() + "." + obj.Name()
}

func sortDedup(ops *[]opInfo) {
	s := *ops
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	out := s[:0]
	for i, op := range s {
		if i > 0 && op.ID == s[i-1].ID {
			continue
		}
		out = append(out, op)
	}
	*ops = out
}

func dedupStrings(s []string) []string {
	sort.Strings(s)
	out := s[:0]
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func stringSet(s []string) map[string]bool {
	m := make(map[string]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}
