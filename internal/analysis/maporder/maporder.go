// Package maporder defines a ppmlint analyzer that flags iteration
// over a map when the loop body has order-sensitive effects. Go
// randomizes map iteration order per run, so a map-range that appends
// to an outer slice, sends on a channel, emits metrics or trace spans,
// or prints output makes two runs of the same seed diverge — exactly
// the class of bug hand audits kept finding in the flood fan-out and
// teardown paths before this analyzer existed.
//
// Two forms are recognized as deterministic and left alone:
//
//   - iterating a sorted key slice (for _, k := range detord.Keys(m)),
//     which never ranges the map at all; and
//   - the collect-then-sort idiom: a loop whose only effect is
//     appending to local slices, each of which is later passed to a
//     recognized sort (detord.Sort, detord.SortBy, detord.SortBy2,
//     sort.*, slices.Sort*) in the same enclosing block.
//
// Anything else needs an explicit //ppmlint:allow maporder suppression
// on the line above the loop.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// Analyzer is the maporder determinism invariant.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range over a map whose body has order-sensitive effects",
	Run:  run,
}

// sorters maps a package's base name to the functions recognized as
// establishing a deterministic order for their first argument.
var sorters = map[string]map[string]bool{
	"detord": {"Sort": true, "SortBy": true, "SortBy2": true},
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// emissionPkgs are package base names whose calls inside a map-range
// body count as order-sensitive emission: each call appends to a
// deterministic stream (a metric series, a trace span log).
var emissionPkgs = map[string]bool{"metrics": true, "trace": true}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				if d, flagged := check(pass, rs, list[i+1:]); flagged {
					diags = append(diags, d)
				}
			}
			return true
		})
	}
	suppress.Apply(pass, diags)
	return nil, nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv := pass.TypesInfo.TypeOf(rs.X)
	if tv == nil {
		return false
	}
	_, ok := tv.Underlying().(*types.Map)
	return ok
}

// check inspects one map-range for order-sensitive effects. tail is
// the statement list following the loop in its enclosing block, used
// to recognize the collect-then-sort idiom.
func check(pass *analysis.Pass, rs *ast.RangeStmt, tail []ast.Stmt) (analysis.Diagnostic, bool) {
	var (
		collected []*ast.Ident // outer slices the body appends to
		effect    string       // first non-append effect found
	)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "channel send"
		case *ast.CallExpr:
			if kind := emissionKind(pass, n); kind != "" {
				effect = kind
			}
		case *ast.AssignStmt:
			for li, lhs := range n.Lhs {
				if li >= len(n.Rhs) {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					// Appending to a field or element survives the loop but
					// cannot be tracked to a later sort; always an effect.
					if _, sel := lhs.(*ast.SelectorExpr); sel && isAppendCall(pass, n.Rhs[li]) {
						effect = "append to a non-local slice"
					}
					continue
				}
				if !isAppendOf(pass, n.Rhs[li], id) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil &&
					(obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
					collected = append(collected, id)
				}
			}
		}
		return true
	})

	if effect == "" && len(collected) == 0 {
		return analysis.Diagnostic{}, false
	}
	if effect == "" {
		// Append-only loop: fine if every collected slice is sorted
		// before use later in the same block.
		allSorted := true
		for _, id := range collected {
			if !sortedLater(pass, id, tail) {
				allSorted = false
				break
			}
		}
		if allSorted {
			return analysis.Diagnostic{}, false
		}
		effect = "append to " + collected[0].Name + " without a later sort"
	}
	return analysis.Diagnostic{
		Pos: rs.Pos(), End: rs.X.End(),
		Message: "map iteration order is random: " + effect +
			"; range detord.Keys, sort before use, or annotate //ppmlint:allow maporder",
	}, true
}

// isAppendCall reports whether expr is a call of the append builtin.
func isAppendCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isAppendOf reports whether expr is append(id, ...).
func isAppendOf(pass *analysis.Pass, expr ast.Expr, id *ast.Ident) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == id.Name &&
		pass.TypesInfo.ObjectOf(arg) == pass.TypesInfo.ObjectOf(id)
}

// emissionKind classifies a call as order-sensitive emission, returning
// a description or "".
func emissionKind(pass *analysis.Pass, call *ast.CallExpr) string {
	var name *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel
	case *ast.Ident:
		name = fun
	default:
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[name].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	base := pkgBase(fn.Pkg().Path())
	if emissionPkgs[base] {
		return base + " emission (" + base + "." + fn.Name() + ")"
	}
	if base == "fmt" && (strings.HasPrefix(fn.Name(), "Print") ||
		strings.HasPrefix(fn.Name(), "Fprint")) {
		return "output (fmt." + fn.Name() + ")"
	}
	return ""
}

// sortedLater reports whether a recognized sorter is applied to id in
// the statements following the loop.
func sortedLater(pass *analysis.Pass, id *ast.Ident, tail []ast.Stmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	found := false
	for _, st := range tail {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			fns := sorters[pkgBase(fn.Pkg().Path())]
			if fns == nil || !fns[fn.Name()] {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok &&
				pass.TypesInfo.ObjectOf(arg) == obj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
