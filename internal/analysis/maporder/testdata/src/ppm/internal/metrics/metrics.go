// Package metrics is a stand-in for the real ppm/internal/metrics:
// calls into it from a map-range body count as ordered emission.
package metrics

// Inc bumps a counter.
func Inc(name string) {}
