// Package detord is a non-generic stand-in for the real
// ppm/internal/detord, enough for the maporder analyzer to recognize
// the blessed idiom by package name.
package detord

// Keys returns m's keys sorted.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	Sort(out)
	return out
}

// Sort sorts s ascending.
func Sort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SortBy sorts s ascending by key.
func SortBy(s []string, key func(string) string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && key(s[j]) < key(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
