// Package m exercises the maporder analyzer: order-sensitive map
// ranges, the collect-then-sort idiom, the blessed detord forms, and
// suppressions.
package m

import (
	"fmt"
	"sort"

	"ppm/internal/detord"
	"ppm/internal/metrics"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is random: append to out without a later sort`
		out = append(out, k)
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m { // ok: out is sorted before use below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenDetordSort(m map[string]int) []string {
	var out []string
	for k := range m { // ok: detord.Sort establishes the order
		out = append(out, k)
	}
	detord.Sort(out)
	return out
}

func appendThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m { // ok: sort.Slice establishes the order
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func blessedKeys(m map[string]int) {
	for _, k := range detord.Keys(m) { // ok: ranges a sorted slice, not the map
		fmt.Println(k, m[k])
	}
}

func send(m map[string]int, ch chan int) {
	for _, v := range m { // want `map iteration order is random: channel send`
		ch <- v
	}
}

func output(m map[string]int) {
	for k := range m { // want `map iteration order is random: output \(fmt.Println\)`
		fmt.Println(k)
	}
}

func emission(m map[string]int) {
	for k := range m { // want `map iteration order is random: metrics emission \(metrics.Inc\)`
		metrics.Inc(k)
	}
}

type agg struct{ rows []string }

func fieldAppend(m map[string]int, a *agg) {
	for k := range m { // want `map iteration order is random: append to a non-local slice`
		a.rows = append(a.rows, k)
	}
}

func localCollect(m map[string][]int) {
	for _, vs := range m { // ok: tmp does not outlive the iteration
		var tmp []int
		tmp = append(tmp, vs...)
		_ = tmp
	}
}

func pureReads(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: summing is order-insensitive
		total += v
	}
	return total
}

func suppressed(m map[string]int, ch chan int) {
	//ppmlint:allow maporder replies are counted, not ordered
	for _, v := range m { // ok: suppressed
		ch <- v
	}

	//ppmlint:allow maporder // want `unused //ppmlint:allow maporder suppression`
	for _, v := range m { // ok: nothing order-sensitive, so the allowance is stale
		_ = v
	}
}
