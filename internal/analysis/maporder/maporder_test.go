package maporder_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, maporder.Analyzer, "m",
		"ppm/internal/detord", "ppm/internal/metrics")
}
