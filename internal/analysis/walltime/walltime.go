// Package walltime defines a ppmlint analyzer that forbids reading the
// wall clock. Everything inside the simulation must take its notion of
// time from the seeded discrete-event scheduler (internal/sim); a
// single time.Now leaking into a code path makes two runs of the same
// seed diverge and breaks the golden-output CI job.
//
// time.Duration and the time constants remain fine everywhere — only
// the functions that observe or wait on the real clock are flagged.
// The allowlist: internal/sim (which owns virtual time and is the one
// place allowed to talk about real time), the cmd/ entry points (which
// may time their own wall-clock execution for operators), and _test.go
// files.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// forbidden lists the time package functions that observe or wait on
// the real clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the walltime determinism invariant.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads outside internal/sim, cmd/, and tests",
	Run:  run,
}

// allowedPkg reports whether the package may touch the wall clock.
func allowedPkg(path string) bool {
	return path == "ppm/internal/sim" ||
		strings.HasPrefix(path, "ppm/internal/sim/") ||
		strings.HasPrefix(path, "ppm/cmd/")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if allowedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	var diags []analysis.Diagnostic
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if forbidden[fn.Name()] {
				diags = append(diags, analysis.Diagnostic{
					Pos: sel.Pos(), End: sel.End(),
					Message: "wall clock: time." + fn.Name() +
						" is nondeterministic; use the sim scheduler's virtual time",
				})
			}
			return true
		})
	}
	suppress.Apply(pass, diags)
	return nil, nil
}
