// Package sim stands in for the real internal/sim: the one
// non-command package allowed to observe the wall clock.
package sim

import "time"

func RealNow() time.Time { return time.Now() }
