// Command fakecli stands in for the real CLIs, which may time their
// own wall-clock execution for operators.
package main

import "time"

func main() {
	start := time.Now()
	_ = time.Since(start)
}
