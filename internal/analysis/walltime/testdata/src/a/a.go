// Package a exercises the walltime analyzer: flagged clock reads,
// allowed time arithmetic, suppressions, and the unused-suppression
// report.
package a

import (
	"time"

	tt "time"
)

var bootedAt = time.Now() // want `wall clock: time.Now is nondeterministic`

func clocks() {
	time.Sleep(time.Second)          // want `wall clock: time.Sleep is nondeterministic`
	_ = time.Since(time.Time{})      // want `wall clock: time.Since is nondeterministic`
	_ = time.Until(time.Time{})      // want `wall clock: time.Until is nondeterministic`
	<-time.After(time.Second)        // want `wall clock: time.After is nondeterministic`
	_ = time.NewTimer(time.Second)   // want `wall clock: time.NewTimer is nondeterministic`
	_ = tt.Now()                     // want `wall clock: time.Now is nondeterministic`
	_ = time.Duration(42)            // ok: duration arithmetic is not a clock read
	_ = 5 * time.Millisecond         // ok
	_ = time.Unix(0, 0)              // ok: pure conversion
	_ = time.Time{}.Add(time.Second) // ok: method on a value
}

func suppressed() {
	//ppmlint:allow walltime
	_ = time.Now() // ok: suppressed by the line above

	// A suppression consumes exactly one diagnostic, so of the two
	// clock reads below only the first is silenced.
	//ppmlint:allow walltime
	_, _ = time.Now(), time.Now() // want `wall clock: time.Now is nondeterministic`

	//ppmlint:allow walltime stale justification // want `unused //ppmlint:allow walltime suppression`
	_ = time.Unix(1, 0) // ok: nothing here to suppress

	// Suppressions stack: each line of a comment group targets the
	// first code line after the group, so allowances for several
	// analyzers (or several diagnostics) can sit above one statement.
	//ppmlint:allow walltime
	//ppmlint:allow rawgoroutine
	//ppmlint:allow walltime
	_, _ = time.Now(), time.Now() // ok: both reads suppressed
}
