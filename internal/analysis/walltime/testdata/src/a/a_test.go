package a

import "time"

// Test files may read the wall clock (timeouts, benchmarks).
func timeoutHelper() time.Time { return time.Now() }
