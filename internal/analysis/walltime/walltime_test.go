package walltime_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/walltime"
)

func TestFlagsClockReads(t *testing.T) {
	analyzertest.Run(t, walltime.Analyzer, "a")
}

func TestAllowsSimPackage(t *testing.T) {
	analyzertest.Run(t, walltime.Analyzer, "ppm/internal/sim")
}

func TestAllowsCommands(t *testing.T) {
	analyzertest.Run(t, walltime.Analyzer, "ppm/cmd/fakecli")
}
