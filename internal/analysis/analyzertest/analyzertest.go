// Package analyzertest is a small analysistest-style harness for the
// ppmlint analyzers. The upstream analysistest depends on go/packages
// and an external `go list` driver; this harness instead loads a
// testdata package directly with go/parser and go/types, using the
// source importer for stdlib dependencies, so analyzer tests run
// hermetically inside `go test`.
//
// A testdata package lives at testdata/src/<importPath> relative to
// the test. Expected diagnostics are declared in the source under test
// with trailing comments of the form
//
//	code() // want "regexp"
//
// where the quoted Go string is a regular expression that must match a
// diagnostic message reported on that line. A comment may carry
// several expectations: // want "a" "b". Every reported diagnostic
// must be expected and every expectation must be matched.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<importPath>, applies a, and compares the
// diagnostics against the package's // want comments. deps are import
// paths of other testdata packages the target imports; they are loaded
// first, in order.
//
// For an analyzer with no FactTypes the deps are typechecked but not
// analyzed, and do not contribute expectations. A facts-using analyzer
// is instead run over every dep first (in the order given), chaining
// exported facts into the later passes exactly as vet would, and each
// dep's diagnostics are checked against that dep's own // want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, importPath string, deps ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loaded := make(map[string]*types.Package)
	imp := &testImporter{
		local:  loaded,
		source: importer.ForCompiler(fset, "source", nil),
	}
	useFacts := len(a.FactTypes) > 0
	store := newFactStore()

	var got []analysis.Diagnostic
	var checked []*ast.File // files whose want comments are in play
	analyze := func(pkg *types.Package, u *unit) {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      u.files,
			Pkg:        pkg,
			TypesInfo:  u.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   make(map[*analysis.Analyzer]interface{}),
			Report:     func(d analysis.Diagnostic) { got = append(got, d) },
			ReadFile:   os.ReadFile,
		}
		store.wire(pass)
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path(), err)
		}
		checked = append(checked, u.files...)
	}

	for _, dep := range deps {
		pkg, u, err := load(fset, imp, dep)
		if err != nil {
			t.Fatalf("loading dep %s: %v", dep, err)
		}
		loaded[dep] = pkg
		if useFacts {
			analyze(pkg, u)
		}
	}
	pkg, u, err := load(fset, imp, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	analyze(pkg, u)

	wants := expectations(t, fset, checked)
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.at, w.re)
			}
		}
	}
}

type unit struct {
	files []*ast.File
	info  *types.Info
}

// factStore is the in-memory fact channel between the per-package
// passes of a facts-using analyzer. The real pipeline gob-encodes
// facts between vet processes; here the same *analysis.Fact values
// flow by reference, which preserves the semantics the analyzers
// observe (import sees what an earlier export stored).
type factStore struct {
	obj map[types.Object][]analysis.Fact
	pkg map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[types.Object][]analysis.Fact),
		pkg: make(map[*types.Package][]analysis.Fact),
	}
}

// wire installs the store's fact callbacks on pass.
func (s *factStore) wire(pass *analysis.Pass) {
	pass.ImportObjectFact = func(obj types.Object, ptr analysis.Fact) bool {
		return copyFact(s.obj[obj], ptr)
	}
	pass.ExportObjectFact = func(obj types.Object, f analysis.Fact) {
		s.obj[obj] = putFact(s.obj[obj], f)
	}
	pass.ImportPackageFact = func(pkg *types.Package, ptr analysis.Fact) bool {
		return copyFact(s.pkg[pkg], ptr)
	}
	pass.ExportPackageFact = func(f analysis.Fact) {
		s.pkg[pass.Pkg] = putFact(s.pkg[pass.Pkg], f)
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for obj, fs := range s.obj {
			for _, f := range fs {
				out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i].Object.Pos() < out[j].Object.Pos()
		})
		return out
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for pkg, fs := range s.pkg {
			for _, f := range fs {
				out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i].Package.Path() < out[j].Package.Path()
		})
		return out
	}
}

// copyFact finds a stored fact of ptr's concrete type and copies it
// into ptr.
func copyFact(facts []analysis.Fact, ptr analysis.Fact) bool {
	for _, f := range facts {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// putFact stores f, replacing any earlier fact of the same type.
func putFact(facts []analysis.Fact, f analysis.Fact) []analysis.Fact {
	for i, old := range facts {
		if reflect.TypeOf(old) == reflect.TypeOf(f) {
			facts[i] = f
			return facts
		}
	}
	return append(facts, f)
}

// load parses and typechecks testdata/src/<importPath>.
func load(fset *token.FileSet, imp types.Importer, importPath string) (*types.Package, *unit, error) {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, &unit{files: files, info: info}, nil
}

// testImporter resolves sibling testdata packages before falling back
// to the stdlib source importer.
type testImporter struct {
	local  map[string]*types.Package
	source types.Importer
}

func (i *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.local[path]; ok {
		return pkg, nil
	}
	return i.source.Import(path)
}

type want struct {
	at   token.Position
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted expectations out of a // want comment; each
// argument is a double-quoted or backquoted Go string.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectations collects // want comments keyed by "file:line".
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", p, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, s, err)
					}
					out[key] = append(out[key], &want{at: p, re: re})
				}
			}
		}
	}
	return out
}
