// Package analyzertest is a small analysistest-style harness for the
// ppmlint analyzers. The upstream analysistest depends on go/packages
// and an external `go list` driver; this harness instead loads a
// testdata package directly with go/parser and go/types, using the
// source importer for stdlib dependencies, so analyzer tests run
// hermetically inside `go test`.
//
// A testdata package lives at testdata/src/<importPath> relative to
// the test. Expected diagnostics are declared in the source under test
// with trailing comments of the form
//
//	code() // want "regexp"
//
// where the quoted Go string is a regular expression that must match a
// diagnostic message reported on that line. A comment may carry
// several expectations: // want "a" "b". Every reported diagnostic
// must be expected and every expectation must be matched.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<importPath>, applies a, and compares the
// diagnostics against the package's // want comments. deps are import
// paths of other testdata packages the target imports; they are loaded
// first, in order, and do not contribute expectations.
func Run(t *testing.T, a *analysis.Analyzer, importPath string, deps ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loaded := make(map[string]*types.Package)
	imp := &testImporter{
		local:  loaded,
		source: importer.ForCompiler(fset, "source", nil),
	}
	for _, dep := range deps {
		pkg, _, err := load(fset, imp, dep)
		if err != nil {
			t.Fatalf("loading dep %s: %v", dep, err)
		}
		loaded[dep] = pkg
	}
	pkg, unit, err := load(fset, imp, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      unit.files,
		Pkg:        pkg,
		TypesInfo:  unit.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { got = append(got, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := expectations(t, fset, unit.files)
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.at, w.re)
			}
		}
	}
}

type unit struct {
	files []*ast.File
	info  *types.Info
}

// load parses and typechecks testdata/src/<importPath>.
func load(fset *token.FileSet, imp types.Importer, importPath string) (*types.Package, *unit, error) {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, &unit{files: files, info: info}, nil
}

// testImporter resolves sibling testdata packages before falling back
// to the stdlib source importer.
type testImporter struct {
	local  map[string]*types.Package
	source types.Importer
}

func (i *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.local[path]; ok {
		return pkg, nil
	}
	return i.source.Import(path)
}

type want struct {
	at   token.Position
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted expectations out of a // want comment; each
// argument is a double-quoted or backquoted Go string.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectations collects // want comments keyed by "file:line".
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", p, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, s, err)
					}
					out[key] = append(out[key], &want{at: p, re: re})
				}
			}
		}
	}
	return out
}
