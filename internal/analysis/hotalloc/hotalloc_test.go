package hotalloc_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/hotalloc"
)

// TestHotalloc runs the analyzer over the fixture package: every
// forbidden construct inside annotated functions is reported, clean
// and unannotated functions are not, a suppressed cold branch stays
// silent, and a pin-less annotation is itself a finding.
func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "hot")
}
