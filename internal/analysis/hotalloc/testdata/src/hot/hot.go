// Package hot is the hotalloc fixture: annotated functions with every
// forbidden construct, a clean annotated function, a suppressed cold
// branch, and a malformed annotation.
package hot

import "fmt"

type pair struct{ a, b int }

//ppmlint:hotpath pin=TestHotZeroAllocs
func Bad(n int, s string) interface{} {
	fmt.Println(n)               // want `fmt\.Println allocates on the hot path`
	s += "x"                     // want `string concatenation allocates on the hot path`
	t := s + "y"                 // want `string concatenation allocates on the hot path`
	f := func() int { return n } // want `closure capturing n allocates on the hot path`
	b := make([]byte, 8)         // want `un-pooled make allocates on the hot path`
	p := new(int)                // want `new allocates on the hot path`
	q := &pair{a: 1, b: 2}       // want `heap-allocated composite literal on the hot path`
	sl := []int{n}               // want `slice literal allocates on the hot path`
	m := map[string]int{}        // want `map literal allocates on the hot path`
	i := interface{}(n)          // want `conversion to interface type boxes on the hot path`
	_, _, _, _, _, _, _ = t, f, b, p, q, sl, m
	return i
}

// Good stays on the stack: value composite literals, arrays,
// non-capturing literals and constant-folded concatenation are all
// allocation-free.
//
//ppmlint:hotpath pin=TestHotZeroAllocs
func Good(p pair, buf []byte) int {
	const prefix = "a" + "b"
	q := pair{a: p.b, b: p.a}
	var scratch [4]byte
	double := func(x int) int { return x * 2 }
	buf = append(buf, prefix...)
	return q.a + double(len(buf)) + int(scratch[0])
}

// Cold has one justified heap allocation on its slow branch.
//
//ppmlint:hotpath pin=TestHotZeroAllocs
func Cold(n int) *pair {
	if n > 0 {
		//ppmlint:allow hotalloc cold branch: only taken on first use
		return &pair{a: n}
	}
	return nil
}

//ppmlint:hotpath // want `hotpath annotation needs .+ naming its AllocsPerRun test`
func NoPin() {}

// Unannotated functions may allocate freely.
func Unannotated(n int) []int { return []int{n, n} }
