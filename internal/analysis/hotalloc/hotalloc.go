// Package hotalloc defines an analyzer for the repo's zero-allocation
// discipline. A function annotated
//
//	//ppmlint:hotpath pin=<TestName>
//
// in its doc comment declares itself part of a measured hot path: the
// named test pins the path at zero allocations with
// testing.AllocsPerRun (a repo-wide consistency test checks the pin
// exists). Inside an annotated function the analyzer reports the
// known-allocating constructs:
//
//   - calls into package fmt (formatting always allocates);
//   - string concatenation (+ / +=);
//   - func literals capturing enclosing variables (closure headers are
//     heap-allocated);
//   - make, new, and &T{} composite literals (heap allocations unless
//     pooled);
//   - slice and map composite literals;
//   - explicit conversions of concrete values to interface types
//     (boxing).
//
// The analysis is deliberately conservative — escape analysis would
// prove some of these stack-allocated — so genuine cold branches
// inside a hot function carry //ppmlint:allow hotalloc <reason> on the
// line above the construct, keeping every exception visible and
// justified at the call site.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// Directive marks a function as a measured zero-allocation hot path.
const Directive = "//ppmlint:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid known-allocating constructs in //ppmlint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			dir, ok := directive(fd)
			if !ok {
				continue
			}
			if pin(dir.Text) == "" {
				report(dir.Pos(), "hotpath annotation needs pin=<TestName> naming its AllocsPerRun test")
			}
			if fd.Body != nil {
				checkBody(pass, fd, report)
			}
		}
	}
	suppress.Apply(pass, diags)
	return nil, nil
}

// directive returns the //ppmlint:hotpath comment from fd's doc group.
func directive(fd *ast.FuncDecl) (*ast.Comment, bool) {
	if fd.Doc == nil {
		return nil, false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return c, true
		}
	}
	return nil, false
}

// pin extracts the pin=<TestName> argument from a directive comment
// ("" if absent).
func pin(text string) string {
	for _, field := range strings.Fields(text) {
		if name, ok := strings.CutPrefix(field, "pin="); ok {
			return name
		}
	}
	return ""
}

// checkBody reports every known-allocating construct in the annotated
// function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, report)
		case *ast.BinaryExpr:
			// A constant-folded concatenation ("a"+"b") never reaches
			// the allocator.
			if n.Op == token.ADD && isString(pass, n.X) && pass.TypesInfo.Types[n].Value == nil {
				report(n.OpPos, "string concatenation allocates on the hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				report(n.TokPos, "string concatenation allocates on the hot path")
			}
		case *ast.FuncLit:
			if name, ok := captures(pass, fd, n); ok {
				report(n.Pos(), "closure capturing %s allocates on the hot path", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "heap-allocated composite literal on the hot path")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates on the hot path")
				case *types.Map:
					report(n.Pos(), "map literal allocates on the hot path")
				}
			}
		}
		return true
	})
}

// checkCall flags fmt calls, make/new, and explicit interface-boxing
// conversions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("make"):
			report(call.Pos(), "un-pooled make allocates on the hot path")
			return
		case types.Universe.Lookup("new"):
			report(call.Pos(), "new allocates on the hot path")
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s allocates on the hot path", fn.Name())
			return
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !types.IsInterface(tv.Type) {
			return
		}
		if opnd, ok := pass.TypesInfo.Types[ast.Unparen(call.Args[0])]; ok {
			if opnd.Type != nil && !types.IsInterface(opnd.Type) && opnd.Type != types.Typ[types.UntypedNil] {
				report(call.Pos(), "conversion to interface type boxes on the hot path")
			}
		}
	}
}

// captures reports whether lit references a variable declared in the
// enclosing function outside the literal itself — the capture that
// forces a heap-allocated closure — and names the first one found.
func captures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing declaration but
		// outside the literal (package-level vars are not captures).
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name, name != ""
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
