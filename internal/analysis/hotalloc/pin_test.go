package hotalloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot locates the module root (three levels up) and sanity-checks
// it, following the doclint repo-scan idiom.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

// TestHotpathPinsExist is the hotpath↔AllocsPerRun consistency check:
// every //ppmlint:hotpath annotation in the repo must carry a
// pin=<TestName> argument naming a test function, somewhere in the
// repo, that actually measures with testing.AllocsPerRun. An
// annotation is a claim; the pin is its proof, and this test keeps the
// two from drifting apart (an annotation whose pin test was renamed or
// deleted fails here, not silently).
func TestHotpathPinsExist(t *testing.T) {
	root := repoRoot(t)
	type pinSite struct {
		at  string // file:line of the directive
		pin string
	}
	var pins []pinSite
	allocTests := make(map[string]bool) // Test funcs calling AllocsPerRun

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if strings.HasSuffix(path, "_test.go") {
			collectAllocTests(f, allocTests)
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != Directive && !strings.HasPrefix(c.Text, Directive+" ") {
					continue
				}
				p := fset.Position(c.Pos())
				pins = append(pins, pinSite{
					at:  fmt.Sprintf("%s:%d", rel, p.Line),
					pin: pin(c.Text),
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The repo annotates the wire framing, sim scheduling, journal
	// append and status build paths — if the scan finds fewer sites
	// than that, the scan itself (or the annotations) rotted.
	if len(pins) < 8 {
		t.Fatalf("found only %d //ppmlint:hotpath annotations; expected the wire/sim/journal/status paths (8+)", len(pins))
	}
	for _, p := range pins {
		switch {
		case p.pin == "":
			t.Errorf("%s: hotpath annotation without pin=<TestName>", p.at)
		case !allocTests[p.pin]:
			t.Errorf("%s: pin %s does not name a test that calls testing.AllocsPerRun", p.at, p.pin)
		}
	}
}

// collectAllocTests records the file's Test functions whose bodies
// call AllocsPerRun.
func collectAllocTests(f *ast.File, out map[string]bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Test") {
			continue
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "AllocsPerRun" {
				found = true
			}
			return !found
		})
		if found {
			out[fd.Name.Name] = true
		}
	}
}
