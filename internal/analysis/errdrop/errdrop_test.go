package errdrop_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/errdrop"
)

// TestErrdrop: bare calls, blank assignments and deferred drops
// report; exempt callees, bool drops, test files and a suppressed call
// do not.
func TestErrdrop(t *testing.T) {
	analyzertest.Run(t, errdrop.Analyzer, "e")
}

// TestErrdropCmd: inside a cmd/ package the flag-parsing drops are
// exempt while ordinary drops still report.
func TestErrdropCmd(t *testing.T) {
	analyzertest.Run(t, errdrop.Analyzer, "cmd/tool")
}
