// Package errdrop defines an analyzer that reports discarded error
// returns. In a recovery-oriented codebase a silently dropped error is
// a failure the retry engine, the journal and the operator all never
// hear about, so every drop must be either handled, routed, or visibly
// waved through. errdrop reports:
//
//   - a call statement (bare or deferred) whose callee returns an
//     error nobody reads;
//   - an assignment that sends an error-typed result to the blank
//     identifier (`_ = f()`, `v, _ := g()` where the blank slot is the
//     error).
//
// Test files are skipped. Four callee classes are exempt because
// their error contract is vestigial: fmt's Print/Fprint family,
// strings.Builder and bytes.Buffer writers (documented never to fail),
// hash.Hash.Write (same documented guarantee), and package flag calls
// inside cmd/ packages (flag.ExitOnError parsing exits on its own).
// Everything else that is deliberately
// fire-and-forget carries //ppmlint:allow errdrop <reason> on the line
// above, which is the finding turned into documentation.
package errdrop

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "report discarded error returns (`_ =` or bare call)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkCallStmt(pass, n.X, report)
			case *ast.DeferStmt:
				checkCallStmt(pass, n.Call, report)
			case *ast.AssignStmt:
				checkAssign(pass, n, report)
			}
			return true
		})
	}
	suppress.Apply(pass, diags)
	return nil, nil
}

// checkCallStmt flags a call used as a statement whose results include
// an error.
func checkCallStmt(pass *analysis.Pass, x ast.Expr, report func(token.Pos, string, ...interface{})) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	if !returnsError(pass, call) || exempt(pass, call) {
		return
	}
	report(call.Pos(), "error from %s discarded (handle it, or //ppmlint:allow errdrop <why>)", types.ExprString(call.Fun))
}

// checkAssign flags blank-identifier slots receiving an error.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt, report func(token.Pos, string, ...interface{})) {
	// Either n:n assignment, or 1 multi-valued call on the right.
	for i, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var typ types.Type
		var src ast.Expr
		if len(stmt.Rhs) == len(stmt.Lhs) {
			src = stmt.Rhs[i]
			if tv, ok := pass.TypesInfo.Types[src]; ok {
				typ = tv.Type
			}
		} else if len(stmt.Rhs) == 1 {
			src = stmt.Rhs[0]
			if tv, ok := pass.TypesInfo.Types[src]; ok {
				if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
					typ = tuple.At(i).Type()
				}
			}
		}
		if typ == nil || !isErrorType(typ) {
			continue
		}
		if call, ok := ast.Unparen(src).(*ast.CallExpr); ok && exempt(pass, call) {
			continue
		}
		report(id.Pos(), "error assigned to _ (handle it, or //ppmlint:allow errdrop <why>)")
	}
}

// returnsError reports whether any result of call is an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exempt reports whether the callee's error contract is vestigial.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		// hash.Hash.Write is documented to never return an error; the
		// HMAC auth and stamping paths call it constantly.
		if fun.Sel.Name == "Write" {
			if tv, ok := pass.TypesInfo.Types[fun.X]; ok {
				if named := recvNamed(tv.Type); named != nil && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "hash" {
					return true
				}
			}
		}
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	case "flag":
		// cmd/ tools parse flags under ExitOnError; the returned error
		// is unreachable.
		return inCmd(pass.Pkg.Path())
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch named := recvNamed(sig.Recv().Type()); {
		case named == nil:
		case named.Obj().Pkg() == nil:
		case named.Obj().Pkg().Path() == "strings" && named.Obj().Name() == "Builder":
			return true
		case named.Obj().Pkg().Path() == "bytes" && named.Obj().Name() == "Buffer":
			return true
		}
	}
	return false
}

func recvNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// inCmd reports whether pkgPath is a command package.
func inCmd(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "cmd/") || strings.Contains(pkgPath, "/cmd/")
}
