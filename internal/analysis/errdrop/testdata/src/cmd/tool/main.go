// Command tool is the errdrop cmd-package fixture: package flag calls
// are exempt here (ExitOnError parsing exits on its own), everything
// else still reports.
package main

import (
	"errors"
	"flag"
)

func fail() error { return errors.New("x") }

func parse(fs *flag.FlagSet, args []string) {
	fs.Parse(args)
	_ = fs.Parse(args)
	fail() // want `error from fail discarded`
}

func main() {
	parse(flag.NewFlagSet("tool", flag.ExitOnError), nil)
}
