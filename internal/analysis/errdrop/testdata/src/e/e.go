// Package e is the errdrop fixture: dropped errors in every shape,
// exempt callees, and a suppressed fire-and-forget call.
package e

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

func fail() error         { return errors.New("x") }
func pair() (int, error)  { return 0, nil }
func value() int          { return 1 }
func lookup() (int, bool) { return 0, false }

// Drops collects the finding shapes.
func Drops() {
	fail()         // want `error from fail discarded \(handle it, or //ppmlint:allow errdrop <why>\)`
	_ = fail()     // want `error assigned to _ \(handle it, or //ppmlint:allow errdrop <why>\)`
	_, _ = pair()  // want `error assigned to _`
	n, _ := pair() // want `error assigned to _`
	_ = n
	defer fail()    // want `error from fail discarded`
	value()         // no error result: fine
	_, _ = lookup() // bool, not error: fine
	//ppmlint:allow errdrop fire-and-forget by design
	fail()
}

// Exempt callees: fmt's print family, strings.Builder and bytes.Buffer
// writers, and hash.Hash.Write (documented to never return an error).
func Exempt(w *strings.Builder, b *bytes.Buffer) {
	fmt.Println("ok")
	fmt.Fprintf(w, "x")
	w.WriteString("x")
	b.WriteByte('x')
	_, _ = fmt.Fprintln(b, "y")
	h := sha256.New()
	h.Write([]byte("x"))
	_, _ = h.Write([]byte("y"))
}
