package e

// Test files are outside errdrop's jurisdiction: a dropped error in a
// test fails the test's own assertions, not the lint.
func inTest() {
	fail()
	_ = fail()
}
