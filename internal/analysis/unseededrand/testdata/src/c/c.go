// Package c exercises the unseededrand analyzer.
package c

import (
	crand "crypto/rand"
	"math/rand"
)

func draws() {
	_ = rand.Intn(10)                  // want `global math/rand source: rand.Intn is unseeded`
	_ = rand.Int()                     // want `global math/rand source: rand.Int is unseeded`
	_ = rand.Float64()                 // want `global math/rand source: rand.Float64 is unseeded`
	rand.Shuffle(0, func(int, int) {}) // want `global math/rand source: rand.Shuffle is unseeded`

	_, _ = crand.Read(make([]byte, 8)) // want `crypto/rand is entropy`

	// Explicitly seeded generators are the blessed form anywhere.
	r := rand.New(rand.NewSource(7)) // ok: seeded constructor
	_ = r.Intn(10)                   // ok: method on a caller-built generator
	_ = r.Perm(4)                    // ok

	//ppmlint:allow unseededrand
	_ = rand.Uint64() // ok: suppressed

	//ppmlint:allow unseededrand // want `unused //ppmlint:allow unseededrand suppression`
	_ = r.Uint64() // ok: nothing to suppress on this line
}
