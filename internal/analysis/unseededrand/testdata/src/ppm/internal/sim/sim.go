// Package sim stands in for the real internal/sim, which owns the
// blessed seeded source and may use math/rand freely.
package sim

import "math/rand"

func Jitter() float64 { return rand.Float64() }
