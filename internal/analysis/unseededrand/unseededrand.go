// Package unseededrand defines a ppmlint analyzer that forbids
// nondeterministic randomness. The simulation draws every random
// number from internal/sim's per-run seeded *rand.Rand, so a given
// seed replays exactly. Two things break that:
//
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...),
//     which Go seeds randomly at process start, and
//   - crypto/rand, which is entropy by definition.
//
// Constructing an explicitly seeded generator (rand.New,
// rand.NewSource, rand.NewZipf) is allowed anywhere: the seed is in
// the caller's hands, which is exactly the invariant. internal/sim is
// exempt wholesale as the owner of the blessed source.
package unseededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// seededConstructors are the math/rand package-level functions that
// build an explicitly seeded generator rather than using the global
// source.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer is the unseededrand determinism invariant.
var Analyzer = &analysis.Analyzer{
	Name: "unseededrand",
	Doc:  "forbid the global math/rand source and crypto/rand outside internal/sim",
	Run:  run,
}

func allowedPkg(path string) bool {
	return path == "ppm/internal/sim" || strings.HasPrefix(path, "ppm/internal/sim/")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if allowedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	var diags []analysis.Diagnostic
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch path := obj.Pkg().Path(); {
			case path == "crypto/rand":
				diags = append(diags, analysis.Diagnostic{
					Pos: sel.Pos(), End: sel.End(),
					Message: "crypto/rand is entropy; draw from the sim scheduler's seeded source",
				})
			case path == "math/rand" || path == "math/rand/v2":
				fn, ok := obj.(*types.Func)
				// Methods (fn.Type().(*types.Signature).Recv() != nil) run on
				// a generator the caller built, so only package-level
				// functions — the global source — are flagged.
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if !seededConstructors[fn.Name()] {
					diags = append(diags, analysis.Diagnostic{
						Pos: sel.Pos(), End: sel.End(),
						Message: "global math/rand source: rand." + fn.Name() +
							" is unseeded; use the sim scheduler's seeded *rand.Rand",
					})
				}
			}
			return true
		})
	}
	suppress.Apply(pass, diags)
	return nil, nil
}
