package unseededrand_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/unseededrand"
)

func TestFlagsUnseededSources(t *testing.T) {
	analyzertest.Run(t, unseededrand.Analyzer, "c")
}

func TestAllowsSimPackage(t *testing.T) {
	analyzertest.Run(t, unseededrand.Analyzer, "ppm/internal/sim")
}
