// Package suppress implements the ppmlint suppression-comment protocol
// shared by every analyzer in internal/analysis.
//
// A comment of the form
//
//	//ppmlint:allow <analyzer>
//
// on its own line silences exactly one diagnostic that the named
// analyzer would report on the immediately following source line. A
// suppression that silences nothing is itself reported, so stale
// allowances cannot accumulate as the code they excused changes.
package suppress

import (
	"go/token"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment marker that introduces a suppression.
const Prefix = "//ppmlint:allow "

// Apply filters diags through the //ppmlint:allow comments found in the
// pass's files, reporting the diagnostics that survive and flagging any
// suppression that consumed nothing. Analyzers should buffer their
// diagnostics and hand them to Apply instead of calling pass.Report
// directly. diags must belong to files of the pass.
func Apply(pass *analysis.Pass, diags []analysis.Diagnostic) {
	name := pass.Analyzer.Name

	type suppression struct {
		pos  token.Pos
		file string
		line int
		used bool
	}
	var supps []suppression
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			// A suppression applies to the first line after its whole
			// comment group, so several //ppmlint:allow lines can stack
			// above one statement that trips multiple analyzers.
			end := pass.Fset.Position(cg.End())
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, Prefix)
				if !ok {
					continue
				}
				// The directive names exactly one analyzer; anything after
				// the name is free-form justification.
				target, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if target != name {
					continue
				}
				supps = append(supps, suppression{
					pos: c.Pos(), file: end.Filename, line: end.Line,
				})
			}
		}
	}

	for _, d := range diags {
		p := pass.Fset.Position(d.Pos)
		suppressed := false
		for i := range supps {
			s := &supps[i]
			if !s.used && s.file == p.Filename && s.line+1 == p.Line {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			pass.Report(d)
		}
	}

	for _, s := range supps {
		if !s.used {
			// Name the line the allowance covered so a stale suppression
			// is findable without grepping: the code it excused is at
			// file:line+1.
			pass.Reportf(s.pos, "unused //ppmlint:allow %s suppression (no %s finding at %s:%d)",
				name, name, filepath.Base(s.file), s.line+1)
		}
	}
}
