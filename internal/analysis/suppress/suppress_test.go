package suppress

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const testSrc = `package p

func f() {
	//ppmlint:allow demo stale excuse
	clean()
}

func clean() {}
`

// testPass parses testSrc and returns a pass for an analyzer named
// "demo" plus the sink its reports land in.
func testPass(t *testing.T) (*analysis.Pass, *[]analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", testSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := new([]analysis.Diagnostic)
	pass := &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: "demo"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d analysis.Diagnostic) { *got = append(*got, d) },
	}
	return pass, got
}

// lineStart returns a Pos on the given 1-based line of the pass's file.
func lineStart(pass *analysis.Pass, line int) token.Pos {
	return pass.Fset.File(pass.Files[0].Pos()).LineStart(line)
}

// TestUnusedAllowanceNamesCoveredLine: the unused-suppression report
// must say which file:line the allowance covered, not just the
// analyzer name — that line is where the stale comment sits.
func TestUnusedAllowanceNamesCoveredLine(t *testing.T) {
	pass, got := testPass(t)
	Apply(pass, nil)
	if len(*got) != 1 {
		t.Fatalf("got %d diagnostics, want 1 unused-suppression report", len(*got))
	}
	want := "unused //ppmlint:allow demo suppression (no demo finding at demo.go:5)"
	if (*got)[0].Message != want {
		t.Fatalf("unused-suppression message:\n got %q\nwant %q", (*got)[0].Message, want)
	}
}

// TestSuppressionConsumesExactlyOne: one allowance silences one
// diagnostic on the covered line; a second diagnostic on the same line
// still surfaces, and the consumed allowance is not reported unused.
func TestSuppressionConsumesExactlyOne(t *testing.T) {
	pass, got := testPass(t)
	at := lineStart(pass, 5)
	Apply(pass, []analysis.Diagnostic{
		{Pos: at, Message: "first finding"},
		{Pos: at, Message: "second finding"},
	})
	if len(*got) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed second finding: %+v", len(*got), *got)
	}
	if (*got)[0].Message != "second finding" {
		t.Fatalf("surviving diagnostic = %q, want %q", (*got)[0].Message, "second finding")
	}
}
