package journalkind_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/journalkind"
)

// TestJournalkind runs the analyzer over the fixture tree journal (the
// vocabulary, with an unregistered constant and an ad-hoc registry
// entry) → user (append sites, legal and ad-hoc) → jroot (the protocol
// root, where the dead-kind finding lands via the accumulated facts).
func TestJournalkind(t *testing.T) {
	analyzertest.Run(t, journalkind.Analyzer, "jroot", "journal", "user")
}
