// Package user appends to the fixture journal: through constants
// (legal), literals and constant conversions (findings), a dynamic
// value (legal), and a suppressed drop-in.
package user

import "journal"

// Emit exercises every append shape.
func Emit(j *journal.Journal, dyn string) {
	j.Append(journal.KindA, "h", "ok")
	j.AppendCtx(journal.KindB, "h", "ok", 1, 2)
	j.Append("adhoc", "h", "bad")               // want `ad-hoc journal kind literal at Append site; declare a Kind constant in journal`
	j.Append(journal.Kind("adhoc"), "h", "bad") // want `ad-hoc journal kind conversion at Append site; declare a Kind constant in journal` `ad-hoc journal kind Kind\("adhoc"\); use a registered Kind constant`
	j.AppendCtx("adhoc", "h", "bad", 1, 2)      // want `ad-hoc journal kind literal at AppendCtx site; declare a Kind constant in journal`
	j.Append(journal.Kind(dyn), "h", "dynamic ok")
	//ppmlint:allow journalkind fixture exercises suppression
	j.Append("quiet", "h", "excused")
}

// minted is an ad-hoc kind outside any append site — still a finding.
var minted = journal.Kind("minted") // want `ad-hoc journal kind Kind\("minted"\); use a registered Kind constant`

// batch holds kind prefixes for a filter: composite-literal elements
// convert implicitly and stay legal (filters match kind families).
var batch = []journal.Kind{"a", "b"}
