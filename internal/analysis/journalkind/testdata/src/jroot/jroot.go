// Package jroot is the protocol root of the journalkind fixture tree:
// the dead-kind check reports here, fed by the facts accumulated
// through the user package.
//
//ppmlint:protocolroot // want `journal kind journal.KindDead is registered but never appended under the protocol root \(dead kind\)`
package jroot

import "user"

// Run exercises the appenders.
var Run = user.Emit
