// Package journal is a fixture journal package: a string Kind type, a
// kinds registration list with seeded violations, and the append
// surface.
package journal

type Kind string

const (
	KindA Kind = "a"
	KindB Kind = "b"
	KindC Kind = "c" // want `journal kind KindC is not registered in the kinds list`
	// KindDead is registered but nothing outside this package ever
	// appends it — the protocol root reports it dead.
	KindDead Kind = "dead"
)

var kinds = []Kind{
	KindA, KindB, KindDead,
	"adhoc", // want `kinds list entry must be a named Kind constant of this package`
}

// Journal is the fixture's flight recorder.
type Journal struct{}

// Append mirrors the real journal's append surface.
func (j *Journal) Append(kind Kind, host, detail string) {}

// AppendCtx mirrors the explicit-context append.
func (j *Journal) AppendCtx(kind Kind, host, detail string, trace, span uint64) {}
