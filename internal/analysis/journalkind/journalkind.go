// Package journalkind defines an analyzer that keeps the flight
// recorder's vocabulary closed. Journal record kinds must be declared
// as Kind constants in the journal package and registered in its
// canonical kinds list; append sites everywhere else must name their
// kind through those constants. An ad-hoc string at an append site
// would produce records the audits, filters and golden-journal diffs
// don't know, and a registered kind nothing appends is dead weight the
// audits silently stop covering. journalkind reports:
//
//   - in the journal package: a Kind constant missing from the kinds
//     registration list, and a kinds entry that is not a named Kind
//     constant;
//   - everywhere: an Append/AppendCtx call whose kind argument is a
//     string literal or a Kind conversion of a constant expression
//     (dynamic Kind values — filters parsed from a CLI — stay legal),
//     and any Kind("literal") conversion outside the journal package;
//   - at the //ppmlint:protocolroot package: a registered kind never
//     referenced outside the journal package anywhere in the import
//     graph (dead kind).
//
// Like wireop, the whole-program half accumulates a package fact
// through the import graph. Suppress a finding with
// //ppmlint:allow journalkind <reason> on the line above it.
package journalkind

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// ProtocolRoot mirrors wireop's directive: the package where the
// whole-program dead-kind check reports.
const ProtocolRoot = "//ppmlint:protocolroot"

var Analyzer = &analysis.Analyzer{
	Name:      "journalkind",
	Doc:       "check journal record kinds are registered constants, never ad-hoc strings",
	Run:       run,
	FactTypes: []analysis.Fact{new(kindsFact)},
}

// kindsFact accumulates the journal vocabulary (Registered, qualified
// constant names exported by journal packages) and the evidence of its
// use (Used, kind constants referenced outside their journal package)
// across the import graph.
type kindsFact struct {
	Registered []string
	Used       []string
}

func (*kindsFact) AFact() {}

func (f *kindsFact) String() string {
	return "journalkind(" + strings.Join(f.Registered, ",") + ")"
}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	fact := kindsFact{}
	if kindType := journalKindType(pass.Pkg); kindType != nil {
		fact.Registered = checkRegistration(pass, kindType, report)
	}
	fact.Used = checkUses(pass, report)

	for _, imp := range pass.Pkg.Imports() {
		var f kindsFact
		if pass.ImportPackageFact(imp, &f) {
			fact.Registered = append(fact.Registered, f.Registered...)
			fact.Used = append(fact.Used, f.Used...)
		}
	}
	fact.Registered = dedup(fact.Registered)
	fact.Used = dedup(fact.Used)
	pass.ExportPackageFact(&fact)

	if pos, ok := rootDirective(pass); ok {
		used := make(map[string]bool, len(fact.Used))
		for _, u := range fact.Used {
			used[u] = true
		}
		for _, k := range fact.Registered {
			if !used[k] {
				report(pos, "journal kind %s is registered but never appended under the protocol root (dead kind)", k)
			}
		}
	}

	suppress.Apply(pass, diags)
	return nil, nil
}

// journalKindType returns the package's named Kind type if the package
// is a journal package (package named journal declaring a string Kind),
// nil otherwise.
func journalKindType(pkg *types.Package) *types.Named {
	if pkg.Name() != "journal" {
		return nil
	}
	tn, ok := pkg.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return nil
	}
	return named
}

// checkRegistration verifies, inside the journal package, that every
// Kind constant appears in the canonical kinds list and every list
// entry is a named constant. It returns the registered vocabulary.
func checkRegistration(pass *analysis.Pass, kindType *types.Named, report func(token.Pos, string, ...interface{})) []string {
	registered := make(map[types.Object]bool)
	var out []string
	if lit := kindsLiteral(pass); lit != nil {
		for _, elt := range lit.Elts {
			obj := constOf(pass, elt)
			if obj == nil || obj.Type() != kindType {
				report(elt.Pos(), "kinds list entry must be a named Kind constant of this package")
				continue
			}
			registered[obj] = true
			out = append(out, qualify(obj))
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != kindType {
			continue
		}
		if !registered[c] {
			report(c.Pos(), "journal kind %s is not registered in the kinds list", c.Name())
		}
	}
	return out
}

// kindsLiteral finds the package-level `var kinds = []Kind{...}`.
func kindsLiteral(pass *analysis.Pass) *ast.CompositeLit {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "kinds" || len(vs.Values) != 1 {
					continue
				}
				if lit, ok := vs.Values[0].(*ast.CompositeLit); ok {
					return lit
				}
			}
		}
	}
	return nil
}

// checkUses walks the package for ad-hoc kinds at append sites and
// Kind conversions, and collects which journal constants it references.
func checkUses(pass *analysis.Pass, report func(token.Pos, string, ...interface{})) []string {
	var used []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := appendCallee(pass, n); fn != nil && len(n.Args) > 0 {
					checkKindArg(pass, fn, n.Args[0], report)
				}
				checkConversion(pass, n, report)
			case *ast.Ident:
				if obj := foreignKindConst(pass, n); obj != nil {
					used = append(used, qualify(obj))
				}
			}
			return true
		})
	}
	return used
}

// appendCallee returns the *types.Func if call is a Journal.Append or
// Journal.AppendCtx method call on a journal package's Journal type.
func appendCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if fn.Name() != "Append" && fn.Name() != "AppendCtx" {
		return nil
	}
	if journalKindType(fn.Pkg()) == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return fn
}

// checkKindArg flags an append whose kind argument is an ad-hoc
// string: a literal, or a conversion of a constant expression. A
// non-constant expression (a variable, a parameter, a parsed filter)
// passes — the dynamic value is somebody else's to validate.
func checkKindArg(pass *analysis.Pass, fn *types.Func, arg ast.Expr, report func(token.Pos, string, ...interface{})) {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		report(arg.Pos(), "ad-hoc journal kind literal at %s site; declare a Kind constant in %s", fn.Name(), fn.Pkg().Path())
		return
	}
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			if opnd, ok := pass.TypesInfo.Types[ast.Unparen(conv.Args[0])]; ok && opnd.Value != nil {
				report(arg.Pos(), "ad-hoc journal kind conversion at %s site; declare a Kind constant in %s", fn.Name(), fn.Pkg().Path())
			}
		}
	}
}

// checkConversion flags Kind("literal") conversions outside the journal
// package: minting a kind the registry never heard of.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
		return
	}
	if journalKindType(named.Obj().Pkg()) != named {
		return
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		report(call.Pos(), "ad-hoc journal kind %s(%s); use a registered Kind constant", named.Obj().Name(), lit.Value)
	}
}

// foreignKindConst resolves id to a Kind constant declared in another
// package's journal package, nil otherwise.
func foreignKindConst(pass *analysis.Pass, id *ast.Ident) types.Object {
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg() == pass.Pkg {
		return nil
	}
	named, ok := c.Type().(*types.Named)
	if !ok || journalKindType(c.Pkg()) != named {
		return nil
	}
	return c
}

func rootDirective(pass *analysis.Pass) (token.Pos, bool) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == ProtocolRoot || strings.HasPrefix(c.Text, ProtocolRoot+" ") {
					return c.Pos(), true
				}
			}
		}
	}
	return token.NoPos, false
}

// constOf resolves e (ident or selector) to the constant it names.
func constOf(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

func qualify(obj types.Object) string {
	return obj.Pkg().Path() + "." + obj.Name()
}

func dedup(s []string) []string {
	sort.Strings(s)
	out := s[:0]
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
