// Package rawgoroutine defines a ppmlint analyzer that forbids `go`
// statements outside tests. The simulation is single-threaded by
// design: all concurrency is modeled as events on the seeded
// discrete-event scheduler, so every interleaving is replayable. A raw
// goroutine reintroduces the Go runtime's scheduler — and with it
// nondeterministic ordering — into a system whose whole value is that
// two runs of the same seed are byte-identical.
package rawgoroutine

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ppm/internal/analysis/suppress"
)

// Analyzer is the rawgoroutine determinism invariant.
var Analyzer = &analysis.Analyzer{
	Name: "rawgoroutine",
	Doc:  "forbid go statements in non-test code; model concurrency on the sim scheduler",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var diags []analysis.Diagnostic
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				diags = append(diags, analysis.Diagnostic{
					Pos: g.Pos(), End: g.Call.End(),
					Message: "raw goroutine: concurrency must be modeled as events on the sim scheduler",
				})
			}
			return true
		})
	}
	suppress.Apply(pass, diags)
	return nil, nil
}
