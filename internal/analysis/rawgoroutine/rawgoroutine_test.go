package rawgoroutine_test

import (
	"testing"

	"ppm/internal/analysis/analyzertest"
	"ppm/internal/analysis/rawgoroutine"
)

func TestFlagsGoStatements(t *testing.T) {
	analyzertest.Run(t, rawgoroutine.Analyzer, "b")
}
