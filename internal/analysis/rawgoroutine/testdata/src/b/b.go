// Package b exercises the rawgoroutine analyzer.
package b

func work() {}

func spawns() {
	go work() // want `raw goroutine: concurrency must be modeled as events on the sim scheduler`

	go func() { // want `raw goroutine: concurrency must be modeled as events on the sim scheduler`
		work()
	}()

	defer work() // ok: defer is synchronous

	//ppmlint:allow rawgoroutine bridging to a real OS process
	go work() // ok: suppressed

	//ppmlint:allow rawgoroutine // want `unused //ppmlint:allow rawgoroutine suppression`
	work() // ok: not a go statement, so the allowance above is stale
}
