package b

// Test files may spawn goroutines (timeout watchdogs, parallel test
// drivers).
func spawnInTest() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
