// Package resilient layers management of resilient computations on top
// of the PPM's basic mechanism, exactly as the paper's Section 5
// anticipates: "were we managing resilient computations, control would
// have to be carefully transferred to another host. This can be
// achieved with robust protocols implemented on top of our basic
// mechanism."
//
// The Supervisor periodically gathers the distributed snapshot (the
// on-demand philosophy: no standing per-event traffic), compares it
// with the set of supervised processes, and restarts exited ones
// according to their policies — on the same host when it lives, or
// failing over along the spec's host list when it does not.
package resilient

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/proc"
)

// Supervisor errors.
var (
	ErrGaveUp  = errors.New("resilient: restart budget exhausted")
	ErrStopped = errors.New("resilient: supervisor stopped")
)

// Policy says when a supervised process is restarted.
type Policy int

// Restart policies.
const (
	// Never: track only; never restart.
	Never Policy = iota + 1
	// OnFailure: restart when the process exited with a nonzero code
	// or was killed by a signal.
	OnFailure
	// Always: restart on any exit.
	Always
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Never:
		return "never"
	case OnFailure:
		return "on-failure"
	case Always:
		return "always"
	default:
		return "unknown"
	}
}

// Spec describes one supervised process.
type Spec struct {
	Name string
	// Hosts is the placement list in priority order: restarts go to
	// the first host that accepts the creation (control "carefully
	// transferred to another host" when the preferred one is down).
	Hosts  []string
	Parent proc.GPID
	Policy Policy
	// MaxRestarts bounds restart attempts (0 = unlimited).
	MaxRestarts int
}

// Env is the slice of PPM machinery the supervisor drives; the LPM's
// asynchronous subroutine interface satisfies it directly.
type Env interface {
	Snapshot(cb func(proc.Snapshot, error))
	Create(host, name string, parent proc.GPID, cb func(proc.GPID, error))
}

// Clock schedules the polling; the simulation scheduler satisfies it.
type Clock interface {
	After(d time.Duration, fn func()) CancelableTimer
}

// CancelableTimer is the handle Clock returns.
type CancelableTimer interface {
	Cancel() bool
}

// entry is the runtime state of one supervised process.
type entry struct {
	spec     Spec
	current  proc.GPID
	restarts int
	gaveUp   bool
}

// Supervisor restarts supervised processes according to their
// policies.
type Supervisor struct {
	env      Env
	clock    Clock
	interval time.Duration

	entries []*entry
	timer   CancelableTimer
	polling bool
	stopped bool

	// Restarts counts successful restarts; Events logs decisions.
	Restarts int
	Events   []string
}

// New creates a supervisor polling at the given interval (default 5s of
// virtual time).
func New(env Env, clock Clock, interval time.Duration) *Supervisor {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Supervisor{env: env, clock: clock, interval: interval}
}

// Supervise registers a process that already runs as id.
func (s *Supervisor) Supervise(spec Spec, id proc.GPID) {
	s.entries = append(s.entries, &entry{spec: spec, current: id})
}

// Current returns the present identity of a supervised process.
func (s *Supervisor) Current(name string) (proc.GPID, bool) {
	for _, e := range s.entries {
		if e.spec.Name == name {
			return e.current, true
		}
	}
	return proc.GPID{}, false
}

// GaveUp reports whether the named process exhausted its restart
// budget.
func (s *Supervisor) GaveUp(name string) bool {
	for _, e := range s.entries {
		if e.spec.Name == name {
			return e.gaveUp
		}
	}
	return false
}

// Start begins the polling loop.
func (s *Supervisor) Start() {
	if s.stopped || s.timer != nil {
		return
	}
	s.schedule()
}

// Stop halts polling.
func (s *Supervisor) Stop() {
	s.stopped = true
	if s.timer != nil {
		s.timer.Cancel()
		s.timer = nil
	}
}

func (s *Supervisor) schedule() {
	if s.stopped {
		return
	}
	s.timer = s.clock.After(s.interval, s.poll)
}

func (s *Supervisor) note(format string, args ...any) {
	s.Events = append(s.Events, fmt.Sprintf(format, args...))
}

// poll takes a snapshot and reconciles every supervised entry.
func (s *Supervisor) poll() {
	if s.stopped || s.polling {
		s.schedule()
		return
	}
	s.polling = true
	s.env.Snapshot(func(snap proc.Snapshot, err error) {
		s.polling = false
		defer s.schedule()
		if s.stopped {
			return
		}
		if err != nil {
			s.note("snapshot failed: %v", err)
			return
		}
		partial := make(map[string]bool, len(snap.Partial))
		for _, h := range snap.Partial {
			partial[h] = true
		}
		for _, e := range s.entries {
			s.reconcile(e, snap, partial)
		}
	})
}

func (s *Supervisor) reconcile(e *entry, snap proc.Snapshot, partial map[string]bool) {
	if e.gaveUp || e.spec.Policy == Never {
		return
	}
	info, found := snap.Find(e.current)
	hostDown := partial[e.current.Host]
	switch {
	case found && (info.State == proc.Running || info.State == proc.Stopped):
		return // healthy
	case found && info.State == proc.Exited:
		failed := info.ExitCode != 0
		if e.spec.Policy == OnFailure && !failed {
			s.note("%s exited cleanly; policy on-failure leaves it", e.spec.Name)
			e.spec.Policy = Never // terminal: clean exit ends supervision
			return
		}
	case !found && hostDown:
		// The host is unreachable: the process is presumed lost; fail
		// over to the next host on the list.
	case !found:
		// No record anywhere: treat as lost.
	}
	s.restart(e, partial)
}

// restart tries the spec's hosts in priority order, skipping hosts the
// snapshot reported unreachable. Every restart cycle counts against the
// budget whether or not a host accepts — otherwise a computation whose
// hosts are all down would be retried forever instead of giving up.
func (s *Supervisor) restart(e *entry, partial map[string]bool) {
	if e.spec.MaxRestarts > 0 && e.restarts >= e.spec.MaxRestarts {
		e.gaveUp = true
		s.note("%s: gave up after %d restart attempts (%v)", e.spec.Name, e.restarts, ErrGaveUp)
		return
	}
	e.restarts++
	hosts := e.spec.Hosts
	if len(hosts) == 0 {
		hosts = []string{e.current.Host}
	}
	s.tryHosts(e, hosts, 0, partial)
}

func (s *Supervisor) tryHosts(e *entry, hosts []string, i int, partial map[string]bool) {
	if i >= len(hosts) {
		s.note("%s: no host accepted the restart", e.spec.Name)
		return
	}
	host := hosts[i]
	if partial[host] {
		s.tryHosts(e, hosts, i+1, partial)
		return
	}
	s.env.Create(host, e.spec.Name, e.spec.Parent, func(id proc.GPID, err error) {
		if s.stopped {
			return
		}
		if err != nil {
			s.note("%s: restart on %s failed: %v", e.spec.Name, host, err)
			s.tryHosts(e, hosts, i+1, partial)
			return
		}
		e.current = id
		s.Restarts++
		s.note("%s restarted as %s (restart %d)", e.spec.Name, id, e.restarts)
	})
}
