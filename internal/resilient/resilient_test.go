package resilient

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppm/internal/proc"
	"ppm/internal/sim"
)

// fakeEnv scripts a world of processes for the supervisor to watch.
type fakeEnv struct {
	sched   *sim.Scheduler
	procs   map[proc.GPID]proc.Info
	partial []string
	nextPID proc.PID
	// downHosts reject creations.
	downHosts map[string]bool
	creates   []string
	snapErr   error
}

func newFakeEnv(s *sim.Scheduler) *fakeEnv {
	return &fakeEnv{
		sched:     s,
		procs:     make(map[proc.GPID]proc.Info),
		downHosts: make(map[string]bool),
		nextPID:   100,
	}
}

func (f *fakeEnv) addRunning(host string) proc.GPID {
	f.nextPID++
	id := proc.GPID{Host: host, PID: f.nextPID}
	f.procs[id] = proc.Info{ID: id, State: proc.Running}
	return id
}

func (f *fakeEnv) exit(id proc.GPID, code int) {
	info := f.procs[id]
	info.State = proc.Exited
	info.ExitCode = code
	f.procs[id] = info
}

func (f *fakeEnv) Snapshot(cb func(proc.Snapshot, error)) {
	f.sched.After(10*time.Millisecond, func() {
		if f.snapErr != nil {
			cb(proc.Snapshot{}, f.snapErr)
			return
		}
		var infos []proc.Info
		//ppmlint:allow maporder — proc.Merge sorts infos before use
		for _, p := range f.procs {
			infos = append(infos, p)
		}
		snap := proc.Merge(f.sched.Now().Duration(), infos)
		snap.Partial = append([]string(nil), f.partial...)
		cb(snap, nil)
	})
}

func (f *fakeEnv) Create(host, name string, parent proc.GPID, cb func(proc.GPID, error)) {
	f.sched.After(10*time.Millisecond, func() {
		f.creates = append(f.creates, name+"@"+host)
		if f.downHosts[host] {
			cb(proc.GPID{}, errors.New("host down"))
			return
		}
		cb(f.addRunning(host), nil)
	})
}

// simClock adapts the scheduler to the Clock interface.
type simClock struct{ s *sim.Scheduler }

func (c simClock) After(d time.Duration, fn func()) CancelableTimer {
	return c.s.After(d, fn)
}

func setup(t *testing.T) (*sim.Scheduler, *fakeEnv, *Supervisor) {
	t.Helper()
	s := sim.NewScheduler(1)
	env := newFakeEnv(s)
	sup := New(env, simClock{s}, time.Second)
	return s, env, sup
}

func run(t *testing.T, s *sim.Scheduler, d time.Duration) {
	t.Helper()
	if err := s.RunFor(d); err != nil {
		t.Fatal(err)
	}
}

func TestHealthyProcessLeftAlone(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always}, id)
	sup.Start()
	run(t, s, 10*time.Second)
	if sup.Restarts != 0 {
		t.Fatalf("restarts = %d", sup.Restarts)
	}
	cur, _ := sup.Current("w")
	if cur != id {
		t.Fatal("identity changed")
	}
}

func TestAlwaysRestartsCleanExit(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always}, id)
	sup.Start()
	run(t, s, 2*time.Second)
	env.exit(id, 0)
	run(t, s, 3*time.Second)
	if sup.Restarts != 1 {
		t.Fatalf("restarts = %d, events=%v", sup.Restarts, sup.Events)
	}
	cur, _ := sup.Current("w")
	if cur == id || cur.Host != "a" {
		t.Fatalf("current = %v", cur)
	}
	if env.procs[cur].State != proc.Running {
		t.Fatal("replacement not running")
	}
}

func TestOnFailureIgnoresCleanExit(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: OnFailure}, id)
	sup.Start()
	env.exit(id, 0)
	run(t, s, 5*time.Second)
	if sup.Restarts != 0 {
		t.Fatalf("clean exit restarted: %v", sup.Events)
	}
	// And supervision ends: a later poll does not restart either.
	run(t, s, 5*time.Second)
	if sup.Restarts != 0 {
		t.Fatal("restarted after terminal clean exit")
	}
}

func TestOnFailureRestartsFailure(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: OnFailure}, id)
	sup.Start()
	env.exit(id, 137)
	run(t, s, 3*time.Second)
	if sup.Restarts != 1 {
		t.Fatalf("restarts = %d", sup.Restarts)
	}
}

func TestNeverPolicyTracksOnly(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Never}, id)
	sup.Start()
	env.exit(id, 1)
	run(t, s, 5*time.Second)
	if sup.Restarts != 0 {
		t.Fatal("never policy restarted")
	}
}

func TestMaxRestartsGivesUp(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always, MaxRestarts: 2}, id)
	sup.Start()
	for i := 0; i < 4; i++ {
		run(t, s, 2*time.Second)
		if cur, ok := sup.Current("w"); ok {
			env.exit(cur, 1)
		}
		run(t, s, 2*time.Second)
	}
	if sup.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", sup.Restarts)
	}
	if !sup.GaveUp("w") {
		t.Fatal("should have given up")
	}
	found := false
	for _, e := range sup.Events {
		if strings.Contains(e, "gave up") {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %v", sup.Events)
	}
}

func TestFailoverToNextHost(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Hosts: []string{"a", "b"}, Policy: Always}, id)
	sup.Start()
	run(t, s, 2*time.Second)
	// Host a dies: its process vanishes from snapshots and creations
	// there fail.
	delete(env.procs, id)
	env.partial = []string{"a"}
	env.downHosts["a"] = true
	run(t, s, 3*time.Second)
	cur, _ := sup.Current("w")
	if cur.Host != "b" {
		t.Fatalf("failover landed on %q, events=%v", cur.Host, sup.Events)
	}
	// The unreachable host was skipped without a creation attempt.
	for _, c := range env.creates {
		if c == "w@a" {
			t.Fatal("tried the partial host")
		}
	}
}

func TestFailoverWhenCreateFails(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Hosts: []string{"a", "b"}, Policy: Always}, id)
	sup.Start()
	env.exit(id, 1)
	env.downHosts["a"] = true // a answers snapshots but refuses creation
	run(t, s, 3*time.Second)
	cur, _ := sup.Current("w")
	if cur.Host != "b" {
		t.Fatalf("failover landed on %q, events=%v", cur.Host, sup.Events)
	}
}

func TestLostWithoutPartialRestartsInPlace(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always}, id)
	sup.Start()
	delete(env.procs, id) // record vanished entirely
	run(t, s, 3*time.Second)
	if sup.Restarts != 1 {
		t.Fatalf("restarts = %d", sup.Restarts)
	}
}

func TestSnapshotErrorLoggedAndRetried(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always}, id)
	sup.Start()
	env.snapErr = errors.New("flood failed")
	run(t, s, 3*time.Second)
	if len(sup.Events) == 0 {
		t.Fatal("snapshot failure not logged")
	}
	env.snapErr = nil
	env.exit(id, 1)
	run(t, s, 3*time.Second)
	if sup.Restarts != 1 {
		t.Fatal("did not recover after snapshot errors")
	}
}

func TestStopHaltsPolling(t *testing.T) {
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Policy: Always}, id)
	sup.Start()
	run(t, s, 2*time.Second)
	sup.Stop()
	env.exit(id, 1)
	run(t, s, 10*time.Second)
	if sup.Restarts != 0 {
		t.Fatal("restarted after Stop")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Never.String() != "never" || OnFailure.String() != "on-failure" ||
		Always.String() != "always" || Policy(0).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

func TestAllHostsDownEventuallyGivesUp(t *testing.T) {
	// Regression: the restart budget used to count only successful
	// restarts, so a spec whose hosts all reject creation was retried
	// forever. Attempts count now, and the supervisor reaches ErrGaveUp.
	s, env, sup := setup(t)
	id := env.addRunning("a")
	sup.Supervise(Spec{Name: "w", Hosts: []string{"a", "b"}, Policy: Always, MaxRestarts: 3}, id)
	sup.Start()
	env.exit(id, 1)
	env.downHosts["a"] = true
	env.downHosts["b"] = true
	run(t, s, time.Minute)
	if !sup.GaveUp("w") {
		t.Fatalf("supervisor never gave up: restarts=%d events=%v", sup.Restarts, sup.Events)
	}
	if sup.Restarts != 0 {
		t.Fatalf("successful restarts = %d, want 0", sup.Restarts)
	}
	found := false
	for _, e := range sup.Events {
		if strings.Contains(e, ErrGaveUp.Error()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("ErrGaveUp never surfaced: %v", sup.Events)
	}
	// And it stays given up: no further creation attempts.
	n := len(env.creates)
	run(t, s, time.Minute)
	if len(env.creates) != n {
		t.Fatal("kept retrying after giving up")
	}
}
