package history

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ppm/internal/proc"
)

func ev(at time.Duration, kind proc.EventKind, pid proc.PID) proc.Event {
	return proc.Event{At: at, Kind: kind, Proc: proc.GPID{Host: "h", PID: pid}}
}

func TestAppendAndSelectAll(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		s.Append(ev(time.Duration(i)*time.Second, proc.EvFork, proc.PID(i)))
	}
	got := s.Select(Query{})
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestSelectFilters(t *testing.T) {
	s := NewStore(0)
	s.Append(ev(1*time.Second, proc.EvFork, 1))
	s.Append(ev(2*time.Second, proc.EvExit, 1))
	s.Append(ev(3*time.Second, proc.EvFork, 2))
	s.Append(ev(4*time.Second, proc.EvStop, 2))

	byProc := s.Select(Query{Proc: proc.GPID{Host: "h", PID: 1}})
	if len(byProc) != 2 {
		t.Fatalf("byProc = %d", len(byProc))
	}
	byKind := s.Select(Query{Kinds: []proc.EventKind{proc.EvFork}})
	if len(byKind) != 2 {
		t.Fatalf("byKind = %d", len(byKind))
	}
	since := s.Select(Query{Since: 3 * time.Second})
	if len(since) != 2 {
		t.Fatalf("since = %d", len(since))
	}
	limited := s.Select(Query{Limit: 1})
	if len(limited) != 1 || limited[0].At != time.Second {
		t.Fatalf("limited = %+v", limited)
	}
	combo := s.Select(Query{Proc: proc.GPID{Host: "h", PID: 2}, Kinds: []proc.EventKind{proc.EvStop}})
	if len(combo) != 1 || combo[0].Kind != proc.EvStop {
		t.Fatalf("combo = %+v", combo)
	}
}

func TestSelectMatchesChildField(t *testing.T) {
	s := NewStore(0)
	s.Append(proc.Event{
		At: time.Second, Kind: proc.EvFork,
		Proc:  proc.GPID{Host: "h", PID: 1},
		Child: proc.GPID{Host: "h", PID: 2},
	})
	got := s.Select(Query{Proc: proc.GPID{Host: "h", PID: 2}})
	if len(got) != 1 {
		t.Fatal("fork event should match by child too")
	}
}

func TestCapacityEviction(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Append(ev(time.Duration(i)*time.Second, proc.EvSyscall, 1))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
	got := s.Select(Query{})
	if got[0].At != 2*time.Second {
		t.Fatalf("oldest retained = %v, want T+2s", got[0].At)
	}
}

func TestExitRecordsSurviveEviction(t *testing.T) {
	s := NewStore(2)
	id := proc.GPID{Host: "h", PID: 9}
	s.RecordExit(proc.Info{ID: id, Name: "job", State: proc.Exited,
		Rusage: proc.Rusage{CPUTime: time.Minute}})
	for i := 0; i < 10; i++ {
		s.Append(ev(time.Duration(i), proc.EvSyscall, 1))
	}
	info, ok := s.ExitedInfo(id)
	if !ok || info.Rusage.CPUTime != time.Minute {
		t.Fatalf("exit record lost: %+v ok=%v", info, ok)
	}
	if _, ok := s.ExitedInfo(proc.GPID{Host: "h", PID: 1}); ok {
		t.Fatal("phantom exit record")
	}
}

func TestWatchFiresOnMatch(t *testing.T) {
	s := NewStore(0)
	var fired []proc.Event
	w := &Watch{
		Proc:   proc.GPID{Host: "h", PID: 7},
		Kind:   proc.EvExit,
		Action: func(e proc.Event) { fired = append(fired, e) },
	}
	id := s.AddWatch(w)
	s.Append(ev(1*time.Second, proc.EvExit, 8)) // wrong proc
	s.Append(ev(2*time.Second, proc.EvFork, 7)) // wrong kind
	s.Append(ev(3*time.Second, proc.EvExit, 7)) // match
	if len(fired) != 1 || w.Hits() != 1 {
		t.Fatalf("fired = %d hits = %d", len(fired), w.Hits())
	}
	s.RemoveWatch(id)
	s.Append(ev(4*time.Second, proc.EvExit, 7))
	if len(fired) != 1 {
		t.Fatal("removed watch fired")
	}
}

func TestWatchSignalFilter(t *testing.T) {
	s := NewStore(0)
	n := 0
	s.AddWatch(&Watch{Kind: proc.EvSignal, Signal: proc.SIGUSR1, Action: func(proc.Event) { n++ }})
	e := ev(1, proc.EvSignal, 1)
	e.Signal = proc.SIGUSR2
	s.Append(e)
	e.Signal = proc.SIGUSR1
	s.Append(e)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestWatchAnyProcess(t *testing.T) {
	s := NewStore(0)
	n := 0
	s.AddWatch(&Watch{Kind: proc.EvStop, Action: func(proc.Event) { n++ }})
	s.Append(ev(1, proc.EvStop, 1))
	s.Append(ev(2, proc.EvStop, 99))
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestReduce(t *testing.T) {
	s := NewStore(0)
	s.Append(ev(1*time.Second, proc.EvFork, 1))
	s.Append(ev(2*time.Second, proc.EvFork, 2))
	s.Append(ev(5*time.Second, proc.EvExit, 1))
	s.RecordExit(proc.Info{ID: proc.GPID{Host: "h", PID: 1}})
	r := s.Reduce()
	if r.Total != 3 || r.ByKind[proc.EvFork] != 2 || r.ByKind[proc.EvExit] != 1 {
		t.Fatalf("reduce: %+v", r)
	}
	if r.FirstAt != time.Second || r.LastAt != 5*time.Second {
		t.Fatalf("window: %v..%v", r.FirstAt, r.LastAt)
	}
	if r.ExitRecs != 1 {
		t.Fatalf("exitRecs = %d", r.ExitRecs)
	}
	out := r.Format()
	for _, want := range []string{"3 retained", "fork", "exit", "1 exit records"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	r := NewStore(0).Reduce()
	if r.Total != 0 {
		t.Fatal("empty store should reduce to zero")
	}
	if strings.Contains(r.Format(), "window") {
		t.Fatal("empty reduction should not print a window")
	}
}

func TestEventsOldestFirstAfterWraparound(t *testing.T) {
	s := NewStore(4)
	// 4+3 appends wrap the ring so the oldest slot is in the middle of
	// the backing array; Events must still come back oldest first.
	for i := 0; i < 7; i++ {
		s.Append(ev(time.Duration(i)*time.Second, proc.EvSyscall, proc.PID(i)))
	}
	got := s.Events()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := time.Duration(3+i) * time.Second; e.At != want {
			t.Fatalf("Events()[%d].At = %v, want %v", i, e.At, want)
		}
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	s := NewStore(2)
	s.Append(ev(1*time.Second, proc.EvFork, 1))
	got := s.Events()
	got[0].At = 99 * time.Second
	if s.Events()[0].At != time.Second {
		t.Fatal("Events() exposed the ring's backing storage")
	}
}

func TestEventsEmpty(t *testing.T) {
	if got := NewStore(0).Events(); len(got) != 0 {
		t.Fatalf("empty store Events() = %d events", len(got))
	}
}

// Property: with capacity c, after n appends the store holds
// min(n, c) events and they are the most recent ones.
func TestPropertyEvictionKeepsNewest(t *testing.T) {
	f := func(n uint8, c uint8) bool {
		capacity := int(c%32) + 1
		s := NewStore(capacity)
		total := int(n)
		for i := 0; i < total; i++ {
			s.Append(ev(time.Duration(i)*time.Millisecond, proc.EvSyscall, 1))
		}
		want := total
		if want > capacity {
			want = capacity
		}
		got := s.Select(Query{})
		if len(got) != want {
			return false
		}
		for i, e := range got {
			expect := time.Duration(total-want+i) * time.Millisecond
			if e.At != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
