// Package history implements the LPM's historical information store:
// the event traces the kernel delivers for adopted processes are
// preserved here at a user-settable granularity, queried by the data
// reduction and display tools, and summarized for exited-process
// resource statistics. The paper emphasizes that history-dependent
// events let users trigger process state changes; the Watch mechanism
// provides exactly that hook.
package history

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/proc"
)

// Store preserves process events for one user on one host. A bounded
// capacity keeps the store's memory proportional to the service
// requested: when full, the oldest events are dropped (coarse summaries
// are kept separately and never dropped).
type Store struct {
	capacity int
	// ring is a circular buffer, allocated on first append: start
	// indexes the oldest retained event and count is how many are
	// retained. Eviction at capacity overwrites the oldest slot in
	// O(1) instead of shifting the whole slice per append.
	ring    []proc.Event
	start   int
	count   int
	dropped int64

	// summaries of exited processes, preserved beyond event eviction.
	exited map[proc.GPID]proc.Info

	// watches are history-dependent triggers.
	watches map[int]*Watch
	nextID  int
}

// DefaultCapacity bounds the number of retained events.
const DefaultCapacity = 4096

// NewStore creates a store with the given event capacity (0 means
// DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		exited:   make(map[proc.GPID]proc.Info),
		watches:  make(map[int]*Watch),
	}
}

// Append records an event, evicting the oldest if at capacity, then
// fires any matching watches.
func (s *Store) Append(ev proc.Event) {
	if s.ring == nil {
		s.ring = make([]proc.Event, s.capacity)
	}
	if s.count == s.capacity {
		// Full: the slot holding the oldest event receives the newest
		// and the window advances.
		s.ring[s.start] = ev
		s.start = (s.start + 1) % s.capacity
		s.dropped++
	} else {
		s.ring[(s.start+s.count)%s.capacity] = ev
		s.count++
	}
	for _, w := range s.watches {
		if w.matches(ev) {
			w.hits++
			if w.Action != nil {
				w.Action(ev)
			}
		}
	}
}

// at returns the i-th retained event, oldest first.
func (s *Store) at(i int) proc.Event {
	return s.ring[(s.start+i)%s.capacity]
}

// Events returns the retained events, oldest first.
func (s *Store) Events() []proc.Event {
	out := make([]proc.Event, s.count)
	for i := range out {
		out[i] = s.at(i)
	}
	return out
}

// RecordExit preserves the final resource-consumption record of an
// exited process; these survive event eviction.
func (s *Store) RecordExit(info proc.Info) {
	s.exited[info.ID] = info
}

// ExitedInfo returns the preserved record of an exited process.
func (s *Store) ExitedInfo(id proc.GPID) (proc.Info, bool) {
	info, ok := s.exited[id]
	return info, ok
}

// Dropped returns how many events have been evicted.
func (s *Store) Dropped() int64 { return s.dropped }

// Len returns the number of retained events.
func (s *Store) Len() int { return s.count }

// Query selects retained events. Zero-valued fields match everything.
type Query struct {
	Proc  proc.GPID // match this process (zero = all)
	Kinds []proc.EventKind
	Since time.Duration // events at or after this instant
	Limit int           // 0 = unlimited
}

// Select returns the matching events in time order.
func (s *Store) Select(q Query) []proc.Event {
	kindOK := func(k proc.EventKind) bool {
		if len(q.Kinds) == 0 {
			return true
		}
		for _, want := range q.Kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	var out []proc.Event
	for i := 0; i < s.count; i++ {
		ev := s.at(i)
		if !q.Proc.IsZero() && ev.Proc != q.Proc && ev.Child != q.Proc {
			continue
		}
		if ev.At < q.Since || !kindOK(ev.Kind) {
			continue
		}
		out = append(out, ev)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Watch is a history-dependent trigger: when an event matching the
// filter arrives, the action runs. This is the mechanism behind the
// paper's "event driven user defined actions".
type Watch struct {
	Proc   proc.GPID // zero = any process
	Kind   proc.EventKind
	Signal proc.Signal // for EvSignal: match this signal (0 = any)
	Action func(proc.Event)

	hits int64
}

// Hits returns how many times the watch has fired.
func (w *Watch) Hits() int64 { return w.hits }

func (w *Watch) matches(ev proc.Event) bool {
	if w.Kind != 0 && ev.Kind != w.Kind {
		return false
	}
	if !w.Proc.IsZero() && ev.Proc != w.Proc && ev.Child != w.Proc {
		return false
	}
	if w.Signal != 0 && ev.Signal != w.Signal {
		return false
	}
	return true
}

// AddWatch installs a watch and returns its id.
func (s *Store) AddWatch(w *Watch) int {
	s.nextID++
	s.watches[s.nextID] = w
	return s.nextID
}

// RemoveWatch uninstalls a watch.
func (s *Store) RemoveWatch(id int) { delete(s.watches, id) }

// Reduction is a summary of retained history, the kind of data the
// paper's reduction tools compute before display.
type Reduction struct {
	Total    int64
	ByKind   map[proc.EventKind]int64
	ByProc   map[proc.GPID]int64
	FirstAt  time.Duration
	LastAt   time.Duration
	Dropped  int64
	ExitRecs int
}

// Reduce summarizes the retained events.
func (s *Store) Reduce() Reduction {
	r := Reduction{
		ByKind:   make(map[proc.EventKind]int64),
		ByProc:   make(map[proc.GPID]int64),
		Dropped:  s.dropped,
		ExitRecs: len(s.exited),
	}
	for i := 0; i < s.count; i++ {
		ev := s.at(i)
		r.Total++
		r.ByKind[ev.Kind]++
		r.ByProc[ev.Proc]++
		if i == 0 {
			r.FirstAt = ev.At
		}
		r.LastAt = ev.At
	}
	return r
}

// Format renders the reduction as a small report.
func (r Reduction) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d retained (%d dropped), %d exit records\n",
		r.Total, r.Dropped, r.ExitRecs)
	if r.Total > 0 {
		fmt.Fprintf(&b, "window: %v .. %v\n", r.FirstAt, r.LastAt)
	}
	for _, k := range detord.Keys(r.ByKind) {
		fmt.Fprintf(&b, "  %-8s %d\n", k, r.ByKind[k])
	}
	return b.String()
}
