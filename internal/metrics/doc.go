// Package metrics is the observability layer of the simulated PPM
// installation: a zero-dependency, deterministic registry of counters,
// gauges and latency histograms shared by every layer of the stack
// (simnet, wire, kernel, daemon, lpm).
//
// # Determinism
//
// The registry records no wall-clock time. Its only notion of "now" is
// the function handed to New, which the Cluster wires to the
// discrete-event scheduler's virtual clock (package sim). Because the
// whole simulation is single-goroutine and event-ordered, two runs with
// the same seed and the same inputs produce byte-identical Snapshot and
// Report output — the property determinism_test.go asserts. For the
// same reason the registry needs (and has) no locks: all mutation
// happens on the one simulation goroutine.
//
// # Naming
//
// Metric names are dotted paths whose first component is the family —
// the subsystem that owns the metric: "simnet.datagram.sent",
// "wire.msgs.Control", "lpm.flood.originated", "daemon.queries",
// "kernel.events.fork". Snapshot groups metrics by family and sorts
// both families and metrics lexicographically, so output order never
// depends on map iteration.
//
// # Nil safety
//
// A nil *Registry is a valid no-op sink: Counter/Gauge/Histogram return
// nil handles and every handle method tolerates a nil receiver. Code
// under test (or any component constructed without a Cluster) can
// therefore be instrumented unconditionally, with zero configuration
// and near-zero cost when metrics are off.
//
// # Paper anchor
//
// The paper's Section 7 plans "data gathering tools, data reduction
// tools and data representation tools" for assessing the PPM; this
// package is the data-gathering substrate for the system itself, the
// counterpart of the per-process tracing in package history. DESIGN.md
// ("Metrics and the paper") maps each metric family to the paper
// section it measures.
package metrics
