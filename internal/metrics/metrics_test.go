package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New(nil)
	c := r.Counter("wire.msgs.Hello")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("wire.msgs.Hello") != c {
		t.Fatalf("second lookup returned a different counter")
	}
}

func TestCounterSaturates(t *testing.T) {
	r := New(nil)
	c := r.Counter("x")
	c.Add(math.MaxUint64 - 1)
	c.Add(10)
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("counter = %d, want saturation at MaxUint64", got)
	}
	c.Inc()
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("counter wrapped after saturation: %d", got)
	}
}

func TestGauge(t *testing.T) {
	r := New(nil)
	g := r.Gauge("lpm.siblings.open")
	g.Add(3)
	g.Add(-5)
	if got := g.Value(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestGaugeHighWatermark(t *testing.T) {
	r := New(nil)
	g := r.Gauge("lpm.inflight")
	if got := g.High(); got != 0 {
		t.Fatalf("fresh gauge hi = %d, want 0", got)
	}
	g.Add(3)
	g.Add(4) // peak: 7
	g.Add(-6)
	g.Set(5)
	if got, hi := g.Value(), g.High(); got != 5 || hi != 7 {
		t.Fatalf("gauge = %d hi = %d, want 5 and 7", got, hi)
	}
	g.Set(9)
	if got := g.High(); got != 9 {
		t.Fatalf("hi after Set(9) = %d, want 9", got)
	}
	g.Set(-3)
	if got := g.High(); got != 9 {
		t.Fatalf("hi dropped to %d after lowering the level", got)
	}
	snap := r.Snapshot()
	f, _ := snap.Family("lpm")
	if len(f.Gauges) != 1 || f.Gauges[0].High != 9 || f.Gauges[0].Value != -3 {
		t.Fatalf("gauge point = %+v, want value=-3 high=9", f.Gauges)
	}
}

// TestQuantileExact pins the interpolation arithmetic on a known input
// sequence: 10 observations spread over three buckets. With count=10,
// p50 is rank 5, p95 rank 10, p99 rank 10.
func TestQuantileExact(t *testing.T) {
	h := NewHistogram()
	// 4 observations in the (2ms, 5ms] bucket, 4 in (10ms, 20ms],
	// 2 in (50ms, 100ms].
	for i := 0; i < 4; i++ {
		h.Observe(4 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		h.Observe(15 * time.Millisecond)
	}
	h.Observe(60 * time.Millisecond)
	h.Observe(80 * time.Millisecond)

	// rank 5 is the 1st of 4 in (10ms, 20ms]: 10ms + 10ms*1/4 = 12.5ms.
	if got := h.Quantile(0.50); got != 12500*time.Microsecond {
		t.Fatalf("p50 = %v, want 12.5ms", got)
	}
	// rank ceil(0.95*10)=10 is the 2nd of 2 in (50ms, 100ms]:
	// 50ms + 50ms*2/2 = 100ms, clamped to max = 80ms.
	if got := h.Quantile(0.95); got != 80*time.Millisecond {
		t.Fatalf("p95 = %v, want 80ms (clamped to max)", got)
	}
	// rank ceil(0.99*10)=10, same bucket and clamp.
	if got := h.Quantile(0.99); got != 80*time.Millisecond {
		t.Fatalf("p99 = %v, want 80ms", got)
	}
	// rank ceil(0.25*10)=3 is the 3rd of 4 in (2ms, 5ms]:
	// 2ms + 3ms*3/4 = 4.25ms.
	if got := h.Quantile(0.25); got != 4250*time.Microsecond {
		t.Fatalf("p25 = %v, want 4.25ms", got)
	}
	// rank ceil(0.70*10)=7 is the 3rd of 4 in (10ms, 20ms]:
	// 10ms + 10ms*3/4 = 17.5ms.
	if got := h.Quantile(0.70); got != 17500*time.Microsecond {
		t.Fatalf("p70 = %v, want 17.5ms", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(7 * time.Millisecond)
	// One observation: every quantile is that observation (min==max clamp).
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Fatalf("single-observation q=%v = %v, want 7ms", q, got)
		}
	}
	// Overflow-bucket ranks report the exact max.
	h2 := NewHistogram()
	h2.Observe(time.Millisecond)
	h2.Observe(time.Hour)
	if got := h2.Quantile(0.99); got != time.Hour {
		t.Fatalf("overflow quantile = %v, want 1h", got)
	}
	if got := h2.Quantile(0.50); got != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", got)
	}
}

// TestHistogramPointQuantile verifies the snapshot-side estimator
// agrees with the live histogram.
func TestHistogramPointQuantile(t *testing.T) {
	r := New(nil)
	h := r.Histogram("lpm.request_rtt")
	for _, d := range []time.Duration{
		4 * time.Millisecond, 4 * time.Millisecond, 15 * time.Millisecond,
		15 * time.Millisecond, 15 * time.Millisecond, 60 * time.Millisecond,
	} {
		h.Observe(d)
	}
	f, _ := r.Snapshot().Family("lpm")
	hp := f.Histograms[0]
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.99} {
		if live, snap := h.Quantile(q), hp.Quantile(q); live != snap {
			t.Fatalf("q=%v: live %v != snapshot %v", q, live, snap)
		}
	}
	if hp.Quantile(0.99) != 60*time.Millisecond {
		t.Fatalf("p99 = %v, want 60ms", hp.Quantile(0.99))
	}
}

// TestReportColumns pins the report's gauge and histogram line formats:
// gauges carry their high-watermark, histograms their p50/p95/p99
// columns, all rendered as durations (never floats).
func TestReportColumns(t *testing.T) {
	r := New(nil)
	g := r.Gauge("lpm.siblings.open")
	g.Add(4)
	g.Add(-1)
	h := r.Histogram("lpm.request_rtt")
	for i := 0; i < 4; i++ {
		h.Observe(4 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		h.Observe(15 * time.Millisecond)
	}
	h.Observe(60 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	rep := r.Report()
	if !strings.Contains(rep, "3 (gauge, hi=4)") {
		t.Fatalf("gauge line missing high-watermark:\n%s", rep)
	}
	if !strings.Contains(rep, "p50=12.5ms p95=80ms p99=80ms") {
		t.Fatalf("histogram line missing percentile columns:\n%s", rep)
	}
	if strings.Contains(rep, "e+") || strings.Contains(rep, "0.0") {
		t.Fatalf("report leaked float formatting:\n%s", rep)
	}
}

func TestHistogram(t *testing.T) {
	r := New(nil)
	h := r.Histogram("lpm.request_rtt")
	h.Observe(500 * time.Microsecond) // first bucket (<= 1ms)
	h.Observe(45 * time.Millisecond)  // <= 50ms bucket
	h.Observe(time.Hour)              // +Inf bucket
	h.Observe(-time.Second)           // clamped to 0, first bucket

	snap := r.Snapshot()
	f, ok := snap.Family("lpm")
	if !ok || len(f.Histograms) != 1 {
		t.Fatalf("missing lpm histogram family: %+v", snap)
	}
	hp := f.Histograms[0]
	if hp.Count != 4 {
		t.Fatalf("count = %d, want 4", hp.Count)
	}
	if hp.Min != 0 {
		t.Fatalf("min = %v, want 0 (negative clamped)", hp.Min)
	}
	if hp.Max != time.Hour {
		t.Fatalf("max = %v, want 1h", hp.Max)
	}
	if want := 500*time.Microsecond + 45*time.Millisecond + time.Hour; hp.Sum != want {
		t.Fatalf("sum = %v, want %v", hp.Sum, want)
	}
	if got := hp.Buckets[0].Count; got != 2 {
		t.Fatalf("first bucket = %d, want 2", got)
	}
	last := hp.Buckets[len(hp.Buckets)-1]
	if last.Le != InfBound || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v, want Le=InfBound count=1", last)
	}
	var total uint64
	for _, bp := range hp.Buckets {
		total += bp.Count
	}
	if total != hp.Count {
		t.Fatalf("bucket counts total %d, want %d", total, hp.Count)
	}
}

func TestEmptySnapshot(t *testing.T) {
	var at time.Duration = 90 * time.Second
	r := New(func() time.Duration { return at })
	snap := r.Snapshot()
	if snap.At != 90*time.Second {
		t.Fatalf("At = %v, want 90s", snap.At)
	}
	if len(snap.Families) != 0 {
		t.Fatalf("empty registry has families: %+v", snap.Families)
	}
	rep := snap.Report()
	if !strings.Contains(rep, "no metrics recorded") {
		t.Fatalf("empty report missing placeholder:\n%s", rep)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(1)
	r.Gauge("b").Add(-1)
	r.Histogram("c").Observe(time.Second)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 ||
		r.Histogram("c").Count() != 0 || r.Histogram("c").Sum() != 0 {
		t.Fatalf("nil registry recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Families) != 0 || snap.At != 0 {
		t.Fatalf("nil registry snapshot not zero: %+v", snap)
	}
	if !strings.Contains(r.Report(), "no metrics") {
		t.Fatalf("nil registry report unexpected: %q", r.Report())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(names []string) string {
		r := New(nil)
		for i, n := range names {
			r.Counter(n).Add(uint64(i + 1))
		}
		r.Gauge("simnet.partitioned_hosts").Set(2)
		r.Histogram("simnet.transit").Observe(30 * time.Millisecond)
		return r.Report()
	}
	// Same contents inserted in different orders must render identically.
	a := build([]string{"wire.msgs.Hello", "simnet.datagram.sent", "lpm.exits", "daemon.queries"})
	b := build([]string{"daemon.queries", "lpm.exits", "simnet.datagram.sent", "wire.msgs.Hello"})
	_ = b
	// Values differ (insertion index is the value), so compare structure only.
	r1 := New(nil)
	r2 := New(nil)
	for _, n := range []string{"b.two", "a.one", "c.three"} {
		r1.Counter(n).Inc()
	}
	for _, n := range []string{"c.three", "a.one", "b.two"} {
		r2.Counter(n).Inc()
	}
	if r1.Report() != r2.Report() {
		t.Fatalf("insertion order leaked into report:\n%s\nvs\n%s", r1.Report(), r2.Report())
	}
	if !strings.Contains(a, "[daemon]") || !strings.Contains(a, "[wire]") {
		t.Fatalf("family headers missing:\n%s", a)
	}
	idx := func(s, sub string) int { return strings.Index(s, sub) }
	if !(idx(a, "[daemon]") < idx(a, "[lpm]") && idx(a, "[lpm]") < idx(a, "[simnet]") &&
		idx(a, "[simnet]") < idx(a, "[wire]")) {
		t.Fatalf("families not sorted:\n%s", a)
	}
}

func TestSnapshotLookupsAndSums(t *testing.T) {
	r := New(nil)
	r.Counter("wire.msgs.Hello").Add(3)
	r.Counter("wire.msgs.Control").Add(4)
	r.Counter("wire.bytes.Hello").Add(90)
	r.Gauge("lpm.siblings.open").Set(2)
	snap := r.Snapshot()
	if got := snap.Counter("wire.msgs.Hello"); got != 3 {
		t.Fatalf("Counter lookup = %d, want 3", got)
	}
	if got := snap.Counter("wire.msgs.absent"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	if got := snap.Gauge("lpm.siblings.open"); got != 2 {
		t.Fatalf("Gauge lookup = %d, want 2", got)
	}
	if got := snap.CounterSum("wire.msgs."); got != 7 {
		t.Fatalf("CounterSum(wire.msgs.) = %d, want 7", got)
	}
	if got := snap.CounterSum("wire."); got != 97 {
		t.Fatalf("CounterSum(wire.) = %d, want 97", got)
	}
}

// TestSingleGoroutineUse documents the concurrency contract: the
// registry is mutated only from the simulation goroutine, so plain
// field access (no atomics, no locks) is correct. The test just
// exercises a realistic single-goroutine mixed workload.
func TestSingleGoroutineUse(t *testing.T) {
	now := time.Duration(0)
	r := New(func() time.Duration { return now })
	for i := 0; i < 1000; i++ {
		now += time.Millisecond
		r.Counter("simnet.datagram.sent").Inc()
		r.Histogram("simnet.transit").Observe(now % (80 * time.Millisecond))
		if i%10 == 0 {
			r.Gauge("lpm.siblings.open").Add(1)
		}
	}
	snap := r.Snapshot()
	if snap.At != time.Second {
		t.Fatalf("At = %v, want 1s", snap.At)
	}
	if got := snap.Counter("simnet.datagram.sent"); got != 1000 {
		t.Fatalf("counter = %d, want 1000", got)
	}
	f, _ := snap.Family("simnet")
	if len(f.Histograms) != 1 || f.Histograms[0].Count != 1000 {
		t.Fatalf("histogram count wrong: %+v", f.Histograms)
	}
}
