package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"ppm/internal/detord"
)

// Registry holds every metric of one simulated installation. Create one
// per Cluster with New; share it by pointer. The zero of everything is
// useful: a nil *Registry hands out nil handles whose methods no-op, so
// instrumented code never checks whether metrics are wired.
type Registry struct {
	now        func() time.Duration
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry whose snapshots are stamped with the
// virtual time reported by now. A nil now stamps snapshots with zero.
// The caller is expected to pass a closure over the simulation
// scheduler's clock — never the wall clock — so that identical runs
// produce identical snapshots.
func New(now func() time.Duration) *Registry {
	return &Registry{
		now:        now,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the counter registered under
// name. Names are dotted paths; the first component is the family the
// metric is reported under.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the latency histogram
// registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{buckets: make([]uint64, len(bucketBounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// A Counter is a monotonically non-decreasing count. Add saturates at
// the maximum uint64 instead of wrapping, so a runaway increment can
// never make a counter appear to reset.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, saturating at math.MaxUint64.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	if c.v > math.MaxUint64-n {
		c.v = math.MaxUint64
		return
	}
	c.v += n
}

// Value reports the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// A Gauge is an instantaneous signed level (open circuits, live
// processes). Unlike a Counter it can go down. Alongside the level it
// remembers the highest level ever held (the high-watermark), so a
// report taken after a burst still shows how high the burst reached.
type Gauge struct {
	v  int64
	hi int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.hi {
		g.hi = v
	}
}

// Add moves the level by d (negative d lowers it).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v += d
	if g.v > g.hi {
		g.hi = g.v
	}
}

// Value reports the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// High reports the highest level the gauge has ever held (0 on a nil
// gauge, and never below 0: the watermark starts at the initial level).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi
}

// bucketBounds are the inclusive upper edges of the histogram buckets,
// a 1-2-5 ladder from 1ms to 5s; observations above the last bound land
// in a final +Inf bucket. The ladder brackets the latencies the
// calibrated 1986 cost model produces (kernel IPC legs ~10ms, LAN RPCs
// tens to hundreds of ms, recovery sweeps seconds).
var bucketBounds = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
}

// A Histogram accumulates durations into fixed exponential buckets and
// tracks count, sum, min and max. Negative observations are clamped to
// zero (they can only arise from a bug in the caller's clock math, and
// must not corrupt the sum).
type Histogram struct {
	count    uint64
	sum      time.Duration
	min, max time.Duration
	buckets  []uint64
}

// NewHistogram returns a standalone histogram not owned by any
// registry, for callers that keep per-object latency series (e.g. the
// LPM's per-op RTT tracking) and surface them through their own
// reports.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, len(bucketBounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	i := sort.Search(len(bucketBounds), func(i int) bool { return bucketBounds[i] >= d })
	h.buckets[i]++
}

// Count reports how many durations have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// durations by linear interpolation within the containing bucket,
// clamped to the exact [min, max] envelope: a rank in the overflow
// bucket reports max, q <= 0 reports min, q >= 1 reports max, and an
// empty (or nil) histogram reports 0. The estimate is deterministic —
// it depends only on the bucket counts — and is rendered as a duration,
// never as a float.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := quantileRank(q, h.count)
	var cum uint64
	var lower time.Duration
	for i, n := range h.buckets {
		if cum+n >= rank {
			if i == len(bucketBounds) { // overflow bucket
				return h.max
			}
			return clampQuantile(interpolate(lower, bucketBounds[i], rank-cum, n), h.min, h.max)
		}
		cum += n
		if i < len(bucketBounds) {
			lower = bucketBounds[i]
		}
	}
	return h.max
}

// quantileRank converts a quantile into a 1-based observation rank.
func quantileRank(q float64, count uint64) uint64 {
	rank := uint64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	return rank
}

// interpolate places observation pos of n (1-based) linearly within the
// (lower, upper] bucket.
func interpolate(lower, upper time.Duration, pos, n uint64) time.Duration {
	if n == 0 {
		return upper
	}
	return lower + time.Duration(uint64(upper-lower)*pos/n)
}

func clampQuantile(d, min, max time.Duration) time.Duration {
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// --- snapshots ---

// InfBound marks the upper edge of the overflow bucket in a snapshot.
const InfBound = time.Duration(math.MaxInt64)

// CounterPoint is one counter's value at snapshot time.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge's level at snapshot time.
type GaugePoint struct {
	Name  string
	Value int64
	High  int64
}

// BucketPoint is one histogram bucket: the count of observations at or
// below Le. The final bucket has Le == InfBound.
type BucketPoint struct {
	Le    time.Duration
	Count uint64
}

// HistogramPoint is one histogram's state at snapshot time.
type HistogramPoint struct {
	Name     string
	Count    uint64
	Sum      time.Duration
	Min, Max time.Duration
	Buckets  []BucketPoint
}

// Quantile estimates the q-quantile from the snapshotted buckets, with
// the same interpolation and clamping rules as Histogram.Quantile.
func (p HistogramPoint) Quantile(q float64) time.Duration {
	if p.Count == 0 {
		return 0
	}
	if q <= 0 {
		return p.Min
	}
	if q >= 1 {
		return p.Max
	}
	rank := quantileRank(q, p.Count)
	var cum uint64
	var lower time.Duration
	for _, b := range p.Buckets {
		if cum+b.Count >= rank {
			if b.Le == InfBound {
				return p.Max
			}
			return clampQuantile(interpolate(lower, b.Le, rank-cum, b.Count), p.Min, p.Max)
		}
		cum += b.Count
		if b.Le != InfBound {
			lower = b.Le
		}
	}
	return p.Max
}

// Family groups the metrics sharing a name's first dotted component.
type Family struct {
	Name       string
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
}

// Snapshot is a copy of the whole registry at one instant of virtual
// time, grouped by family and sorted lexicographically at every level,
// so equal registries always render equal snapshots.
type Snapshot struct {
	At       time.Duration
	Families []Family
}

func familyOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Snapshot copies the registry. A nil registry yields the zero
// Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if r.now != nil {
		s.At = r.now()
	}
	fams := make(map[string]*Family)
	family := func(name string) *Family {
		fn := familyOf(name)
		f, ok := fams[fn]
		if !ok {
			f = &Family{Name: fn}
			fams[fn] = f
		}
		return f
	}
	// Iterate every metric map in sorted-name order so each family's
	// point slices are born sorted and families append in name order.
	for _, name := range detord.Keys(r.counters) {
		f := family(name)
		f.Counters = append(f.Counters, CounterPoint{Name: name, Value: r.counters[name].v})
	}
	for _, name := range detord.Keys(r.gauges) {
		f := family(name)
		g := r.gauges[name]
		f.Gauges = append(f.Gauges, GaugePoint{Name: name, Value: g.v, High: g.hi})
	}
	for _, name := range detord.Keys(r.histograms) {
		h := r.histograms[name]
		hp := HistogramPoint{
			Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		}
		for i, n := range h.buckets {
			le := InfBound
			if i < len(bucketBounds) {
				le = bucketBounds[i]
			}
			hp.Buckets = append(hp.Buckets, BucketPoint{Le: le, Count: n})
		}
		f := family(name)
		f.Histograms = append(f.Histograms, hp)
	}
	for _, fn := range detord.Keys(fams) {
		s.Families = append(s.Families, *fams[fn])
	}
	return s
}

// Family finds a family by name.
func (s Snapshot) Family(name string) (Family, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Counter looks a counter up by full name (0 if absent).
func (s Snapshot) Counter(name string) uint64 {
	f, ok := s.Family(familyOf(name))
	if !ok {
		return 0
	}
	for _, c := range f.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge looks a gauge up by full name (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	f, ok := s.Family(familyOf(name))
	if !ok {
		return 0
	}
	for _, g := range f.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// CounterSum totals every counter whose name starts with prefix — e.g.
// CounterSum("wire.msgs.") is the count of all encoded wire messages.
func (s Snapshot) CounterSum(prefix string) uint64 {
	var total uint64
	for _, f := range s.Families {
		for _, c := range f.Counters {
			if strings.HasPrefix(c.Name, prefix) {
				total += c.Value
			}
		}
	}
	return total
}

// Report renders the snapshot as the operator-facing text block used by
// `ppmtrace --metrics` and the Cluster's MetricsReport. Counters and
// gauges print one per line under their family header; gauges are
// tagged; histograms print their count/sum/min/max summary. The output
// is deterministic: it depends only on the registry's contents and the
// virtual timestamp.
func (s Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== metrics @ T+%v ===\n", s.At)
	if len(s.Families) == 0 {
		b.WriteString("(no metrics recorded)\n")
		return b.String()
	}
	for _, f := range s.Families {
		fmt.Fprintf(&b, "[%s]\n", f.Name)
		for _, c := range f.Counters {
			fmt.Fprintf(&b, "  %-42s %d\n", c.Name, c.Value)
		}
		for _, g := range f.Gauges {
			fmt.Fprintf(&b, "  %-42s %d (gauge, hi=%d)\n", g.Name, g.Value, g.High)
		}
		for _, h := range f.Histograms {
			fmt.Fprintf(&b, "  %-42s count=%d sum=%v min=%v max=%v p50=%v p95=%v p99=%v\n",
				h.Name, h.Count, h.Sum, h.Min, h.Max,
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	return b.String()
}

// Report is shorthand for r.Snapshot().Report().
func (r *Registry) Report() string { return r.Snapshot().Report() }
