package wire

import (
	"fmt"
	"strconv"
	"time"

	"ppm/internal/calib"
	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/proc"
)

// MsgType identifies a protocol message.
type MsgType uint16

// Protocol message types.
const (
	// pmd protocol — the Figure 2 creation steps.
	MsgLPMQuery MsgType = iota + 1
	MsgLPMQueryResp

	// Sibling channel establishment (Figure 3).
	MsgHello
	MsgHelloResp

	// Requests between tools and LPMs / between sibling LPMs.
	MsgCreateProc
	MsgCreateAck
	MsgControl
	MsgControlResp
	MsgSnapshotReq
	MsgSnapshotResp
	MsgStatsReq
	MsgStatsResp
	MsgHistoryReq
	MsgHistoryResp
	MsgFDReq
	MsgFDResp

	// Graph-covering broadcast envelope and replies.
	MsgBroadcast
	MsgBroadcastResp

	// Kernel-to-LPM event message (112 bytes).
	MsgKernelEvent

	// Liveness and recovery.
	MsgPing
	MsgPong
	MsgCCSUpdate

	// Failure reply.
	MsgError

	// Relay: a request forwarded through intermediate LPMs along a
	// route learned from broadcast replies (paper §4: "this allows
	// quick routing of messages affecting processes in topologically
	// distant hosts").
	MsgRelay
	MsgRelayResp

	// Remote history-dependent triggers: "history dependent events can
	// be set by users to trigger process state changes".
	MsgWatch
	MsgWatchResp

	// Live introspection: a status sweep collects one per-host report
	// from every reachable sibling. The op is read-only, so it rides
	// the retry engine without an at-most-once op id — re-execution is
	// free.
	MsgStatusReq
	MsgStatusResp

	// Adaptive failure detection: a linktest frame is a periodic
	// heartbeat the circuit layer exchanges so the accrual detector
	// has a steady inter-arrival stream even on an idle circuit.
	MsgLinkTest
	MsgLinkTestResp

	// Exit forwarding: a remote kernel's LPM notifies the home LPM of
	// a watched process's exit so home-declared watches fire. The op
	// is at-most-once (it appends to the home history store).
	MsgProcExit
	MsgProcExitResp
)

// opRole classifies a wire op for the protocol-surface analyzer
// (internal/analysis/wireop). Requests must have a dispatch site
// somewhere under the protocol root; responses must be referenced by a
// requester; events are pushed through side channels (the kernel's
// event sink) rather than dispatched, so they are exempt from the
// dispatch check.
type opRole uint8

const (
	roleRequest opRole = iota + 1
	roleResponse
	roleEvent
)

// opSpec is one row of the protocol-surface manifest: the op's trace
// name (which also derives its metrics counter pair), its dispatch
// role, and the journal kind under which its effect is recorded.
type opSpec struct {
	name string
	role opRole
	kind journal.Kind
}

// opSpecs is the protocol-surface manifest, indexed by the op's
// ordinal. msgNames and msgCounterNames are derived from it, so one
// row per op is the single point a new message type must touch.
// ppmlint's wireop analyzer machine-checks the manifest: every Msg*
// constant needs a row, names must be unique (each derives a distinct
// counter pair), kinds must be named journal constants, and every
// request-role op must be dispatched somewhere under the protocol
// root. Ops whose effect has no dedicated flight-recorder kind
// (read-only queries, liveness probes) record under the generic
// journal.WireDecode their frames already land in.
var opSpecs = [...]opSpec{
	MsgLPMQuery:      {"LPMQuery", roleRequest, journal.DaemonQuery},
	MsgLPMQueryResp:  {"LPMQueryResp", roleResponse, journal.DaemonQuery},
	MsgHello:         {"Hello", roleRequest, journal.LPMSiblingAuth},
	MsgHelloResp:     {"HelloResp", roleResponse, journal.LPMSiblingOpen},
	MsgCreateProc:    {"CreateProc", roleRequest, journal.LPMAdopt},
	MsgCreateAck:     {"CreateAck", roleResponse, journal.LPMAdopt},
	MsgControl:       {"Control", roleRequest, journal.LPMControl},
	MsgControlResp:   {"ControlResp", roleResponse, journal.LPMControl},
	MsgSnapshotReq:   {"SnapshotReq", roleRequest, journal.SnapshotTaken},
	MsgSnapshotResp:  {"SnapshotResp", roleResponse, journal.SnapshotTaken},
	MsgStatsReq:      {"StatsReq", roleRequest, journal.WireDecode},
	MsgStatsResp:     {"StatsResp", roleResponse, journal.WireDecode},
	MsgHistoryReq:    {"HistoryReq", roleRequest, journal.WireDecode},
	MsgHistoryResp:   {"HistoryResp", roleResponse, journal.WireDecode},
	MsgFDReq:         {"FDReq", roleRequest, journal.WireDecode},
	MsgFDResp:        {"FDResp", roleResponse, journal.WireDecode},
	MsgBroadcast:     {"Broadcast", roleRequest, journal.LPMFloodApply},
	MsgBroadcastResp: {"BroadcastResp", roleResponse, journal.LPMFloodDone},
	MsgKernelEvent:   {"KernelEvent", roleEvent, journal.KernelEvent},
	MsgPing:          {"Ping", roleRequest, journal.WireDecode},
	MsgPong:          {"Pong", roleResponse, journal.WireDecode},
	MsgCCSUpdate:     {"CCSUpdate", roleRequest, journal.WireDecode},
	MsgError:         {"Error", roleResponse, journal.WireDecode},
	MsgRelay:         {"Relay", roleRequest, journal.LPMRelayForward},
	MsgRelayResp:     {"RelayResp", roleResponse, journal.LPMRelayForward},
	MsgWatch:         {"Watch", roleRequest, journal.WireDecode},
	MsgWatchResp:     {"WatchResp", roleResponse, journal.WireDecode},
	MsgStatusReq:     {"StatusReq", roleRequest, journal.StatusRequest},
	MsgStatusResp:    {"StatusResp", roleResponse, journal.StatusReport},
	MsgLinkTest:      {"LinkTest", roleRequest, journal.WireDecode},
	MsgLinkTestResp:  {"LinkTestResp", roleResponse, journal.WireDecode},
	MsgProcExit:      {"ProcExit", roleRequest, journal.LPMExitForward},
	MsgProcExitResp:  {"ProcExitResp", roleResponse, journal.LPMExitForward},
}

// msgNames maps each message type to its trace name, derived from the
// manifest. A fixed table instead of a map keeps String — called per
// encoded frame by the metrics accounting — off the allocator.
var msgNames = func() (t [len(opSpecs)]string) {
	for i, s := range opSpecs {
		t[i] = s.name
	}
	return t
}()

// OpJournalKind returns the flight-recorder kind under which t's
// effect is recorded — the manifest column that lets journal audits
// correlate a wire op with the records it should have produced. Ops
// outside the manifest map to the generic journal.WireDecode.
func OpJournalKind(t MsgType) journal.Kind {
	if int(t) < len(opSpecs) && opSpecs[t].kind != "" {
		return opSpecs[t].kind
	}
	return journal.WireDecode
}

// msgCounterNames precomputes the per-type metric counter names so the
// per-frame accounting in EncodeCounted performs no string
// concatenation.
var msgCounterNames = func() (t [len(msgNames)]struct{ msgs, bytes string }) {
	for i, n := range msgNames {
		if n != "" {
			t[i] = struct{ msgs, bytes string }{"wire.msgs." + n, "wire.bytes." + n}
		}
	}
	return t
}()

// String returns the message type name for traces.
//
//ppmlint:hotpath pin=TestMsgTypeStringTable
func (t MsgType) String() string {
	if int(t) < len(msgNames) && msgNames[t] != "" {
		return msgNames[t]
	}
	//ppmlint:allow hotalloc cold fallback: only ops outside the manifest reach the formatter
	return fmt.Sprintf("MsgType(%d)", uint16(t))
}

// Envelope frames every message: type, a request id correlating
// responses with requests, and the encoded payload. TraceID/SpanID are
// the optional causal-trace context (internal/trace) propagated across
// machine boundaries; zero means the message is not part of a trace.
type Envelope struct {
	Type  MsgType
	ReqID uint64
	Body  []byte

	// OpID is the operation identity for at-most-once delivery: it
	// stays stable across retransmissions of the same logical request
	// while ReqID changes per attempt, so the receiver can recognize a
	// re-execution and replay its cached reply. Zero means the message
	// carries no at-most-once semantics. Encoded as an optional trailer
	// like the trace context.
	OpID uint64

	// Trace context trailer. Only encoded when TraceID != 0, so
	// untraced traffic keeps its exact pre-tracing frame size.
	TraceID uint64
	SpanID  uint64
}

// SetTrace stamps the envelope with a trace context given as raw IDs
// (the caller holds a trace.Context; wire stays decoupled from it).
func (ev *Envelope) SetTrace(traceID, spanID uint64) {
	ev.TraceID, ev.SpanID = traceID, spanID
}

// Trailer flags on an envelope frame. Trailers are optional typed
// extensions after the body: a flag byte naming the trailer followed by
// its fixed-size payload. Decoders that predate a trailer still parse
// the frame because Finish permits trailing bytes.
const (
	// traceFlag marks a trace-context trailer (two u64s).
	traceFlag = 1
	// opFlag marks an operation-identity trailer (one u64).
	opFlag = 2
)

// EncodeTo serializes the envelope into e and returns the encoded
// frame (e's buffer). The operation identity, when present, is
// appended as a 9-byte trailer and the trace context as a 17-byte
// trailer, in that fixed order so identical envelopes produce
// identical frames. With a reused (or pooled) encoder this is the
// zero-allocation framing path; the returned slice is owned by e.
//
//ppmlint:hotpath pin=TestEncodeOpLessFrameZeroAllocs
func (ev Envelope) EncodeTo(e *Encoder) []byte {
	e.U16(uint16(ev.Type))
	e.U64(ev.ReqID)
	e.Bytes32(ev.Body)
	if ev.OpID != 0 {
		e.U8(opFlag)
		e.U64(ev.OpID)
	}
	if ev.TraceID != 0 {
		e.U8(traceFlag)
		e.U64(ev.TraceID)
		e.U64(ev.SpanID)
	}
	return e.Bytes()
}

// EncodedSize returns the exact frame size EncodeTo will produce.
func (ev Envelope) EncodedSize() int {
	size := 14 + len(ev.Body)
	if ev.OpID != 0 {
		size += 9
	}
	if ev.TraceID != 0 {
		size += 17
	}
	return size
}

// Encode serializes the envelope into a fresh buffer the caller owns.
func (ev Envelope) Encode() []byte {
	e := Encoder{buf: make([]byte, 0, ev.EncodedSize())}
	return ev.EncodeTo(&e)
}

// count records one encoded frame in reg's wire family — one message
// and size bytes under the envelope's type name ("wire.msgs.Hello",
// "wire.bytes.Hello", ...).
func (ev Envelope) count(reg *metrics.Registry, size int) {
	if reg == nil {
		return
	}
	if i := int(ev.Type); i < len(msgCounterNames) && msgCounterNames[i].msgs != "" {
		reg.Counter(msgCounterNames[i].msgs).Inc()
		reg.Counter(msgCounterNames[i].bytes).Add(uint64(size))
		return
	}
	name := ev.Type.String()
	reg.Counter("wire.msgs." + name).Inc()
	reg.Counter("wire.bytes." + name).Add(uint64(size))
}

// EncodeCounted serializes the envelope and records it in reg's wire
// family. Protocol send paths use this so every encoded frame is
// accounted for exactly once, at the moment it is produced; a nil
// registry makes it equivalent to Encode.
func (ev Envelope) EncodeCounted(reg *metrics.Registry) []byte {
	b := ev.Encode()
	ev.count(reg, len(b))
	return b
}

// sizeDetail renders "<Type> <n>B" without fmt, for the per-frame
// journal records.
func sizeDetail(t MsgType, n int) string {
	var sz [20]byte
	return t.String() + " " + string(strconv.AppendInt(sz[:0], int64(n), 10)) + "B"
}

// EncodeLogged is EncodeCounted plus a flight-recorder record: the
// frame lands in the journal under wire.encode, tagged with the
// envelope kind, frame size and the envelope's own trace context, on
// the host producing it. A nil journal makes it EncodeCounted.
func (ev Envelope) EncodeLogged(reg *metrics.Registry, jr *journal.Journal, host string) []byte {
	b := ev.EncodeCounted(reg)
	if jr.Enabled() {
		jr.AppendCtx(journal.WireEncode, host, sizeDetail(ev.Type, len(b)), ev.TraceID, ev.SpanID)
	}
	return b
}

// EncodeLoggedTo is EncodeLogged into a caller-supplied encoder: the
// metered, journaled framing path without the per-frame buffer
// allocation. The returned frame is owned by e (see EncodeTo); with a
// pooled encoder it is valid only until PutEncoder.
func (ev Envelope) EncodeLoggedTo(e *Encoder, reg *metrics.Registry, jr *journal.Journal, host string) []byte {
	b := ev.EncodeTo(e)
	ev.count(reg, len(b))
	if jr.Enabled() {
		jr.AppendCtx(journal.WireEncode, host, sizeDetail(ev.Type, len(b)), ev.TraceID, ev.SpanID)
	}
	return b
}

// DecodeEnvelope parses a framed message. Trailers (operation identity,
// trace context) are read when present; zero padding after the body
// (fixed-size frames) stops the trailer scan and decodes as "none".
// The returned Body is a copy the caller owns.
func DecodeEnvelope(b []byte) (Envelope, error) {
	ev, err := DecodeEnvelopeBorrow(b)
	if err == nil && ev.Body != nil {
		ev.Body = append([]byte(nil), ev.Body...)
	}
	return ev, err
}

// DecodeEnvelopeBorrow is DecodeEnvelope without the body copy: the
// returned Body aliases b and is only valid while b is. It is the
// zero-allocation parse for consumers that fully decode the body
// before returning control (the typed Decode* functions copy every
// field they extract); a handler that defers work referencing the body
// must use DecodeEnvelope.
//
//ppmlint:hotpath pin=TestDecodeOpLessFrameZeroAllocs
func DecodeEnvelopeBorrow(b []byte) (Envelope, error) {
	d := Decoder{buf: b}
	var ev Envelope
	ev.Type = MsgType(d.U16())
	ev.ReqID = d.U64()
	ev.Body = d.Bytes32Borrow()
trailers:
	for d.Remaining() >= 9 {
		switch d.U8() {
		case opFlag:
			ev.OpID = d.U64()
		case traceFlag:
			if d.Remaining() < 16 {
				break trailers
			}
			ev.TraceID = d.U64()
			ev.SpanID = d.U64()
		default:
			break trailers // padding, or a trailer from the future
		}
	}
	if err := d.Finish(); err != nil {
		return Envelope{}, err
	}
	return ev, nil
}

// DecodeEnvelopeLogged is DecodeEnvelope plus a flight-recorder record
// on the receiving host: successfully parsed frames land in the journal
// under wire.decode with the envelope kind and the decoded trace
// context. A nil journal makes it DecodeEnvelope.
func DecodeEnvelopeLogged(b []byte, jr *journal.Journal, host string) (Envelope, error) {
	ev, err := DecodeEnvelope(b)
	if err == nil && jr.Enabled() {
		jr.AppendCtx(journal.WireDecode, host, sizeDetail(ev.Type, len(b)), ev.TraceID, ev.SpanID)
	}
	return ev, err
}

// --- shared field helpers ---

func putGPID(e *Encoder, g proc.GPID) {
	e.String(g.Host)
	e.I32(int32(g.PID))
}

func getGPID(d *Decoder) proc.GPID {
	return proc.GPID{Host: d.String(), PID: proc.PID(d.I32())}
}

func putRusage(e *Encoder, r proc.Rusage) {
	e.Duration(r.CPUTime)
	e.I64(r.Syscalls)
	e.I64(r.MsgsSent)
	e.I64(r.MsgsRecv)
	e.I64(r.MaxRSSKB)
}

func getRusage(d *Decoder) proc.Rusage {
	return proc.Rusage{
		CPUTime:  d.Duration(),
		Syscalls: d.I64(),
		MsgsSent: d.I64(),
		MsgsRecv: d.I64(),
		MaxRSSKB: d.I64(),
	}
}

func putInfo(e *Encoder, p proc.Info) {
	putGPID(e, p.ID)
	putGPID(e, p.Parent)
	e.String(p.Name)
	e.String(p.User)
	e.U8(uint8(p.State))
	putRusage(e, p.Rusage)
	e.I32(int32(p.ExitCode))
	e.Duration(p.StartedAt)
	e.Duration(p.ExitedAt)
}

func getInfo(d *Decoder) proc.Info {
	return proc.Info{
		ID:        getGPID(d),
		Parent:    getGPID(d),
		Name:      d.String(),
		User:      d.String(),
		State:     proc.State(d.U8()),
		Rusage:    getRusage(d),
		ExitCode:  int(d.I32()),
		StartedAt: d.Duration(),
		ExitedAt:  d.Duration(),
	}
}

// --- pmd protocol (Figure 2) ---

// LPMQuery asks the pmd for the user's LPM accept address, creating the
// LPM if none exists on the host.
type LPMQuery struct {
	User string
	// Token authenticates the requesting user to the pmd.
	Token []byte
}

// Encode serializes the query.
func (m LPMQuery) Encode() []byte {
	e := NewEncoder(32)
	e.String(m.User)
	e.Bytes32(m.Token)
	return e.Bytes()
}

// DecodeLPMQuery parses an LPMQuery body.
func DecodeLPMQuery(b []byte) (LPMQuery, error) {
	d := NewDecoder(b)
	m := LPMQuery{User: d.String(), Token: d.Bytes32()}
	return m, d.Finish()
}

// LPMQueryResp returns the accept address (step 4 of Figure 2).
type LPMQueryResp struct {
	OK         bool
	Reason     string
	AcceptHost string
	AcceptPort uint16
	Created    bool // true if the LPM was created by this request
}

// Encode serializes the response.
func (m LPMQueryResp) Encode() []byte {
	e := NewEncoder(32)
	e.Bool(m.OK)
	e.String(m.Reason)
	e.String(m.AcceptHost)
	e.U16(m.AcceptPort)
	e.Bool(m.Created)
	return e.Bytes()
}

// DecodeLPMQueryResp parses an LPMQueryResp body.
func DecodeLPMQueryResp(b []byte) (LPMQueryResp, error) {
	d := NewDecoder(b)
	m := LPMQueryResp{
		OK:         d.Bool(),
		Reason:     d.String(),
		AcceptHost: d.String(),
		AcceptPort: d.U16(),
		Created:    d.Bool(),
	}
	return m, d.Finish()
}

// --- sibling channel (Figure 3) ---

// Hello authenticates a new sibling circuit. The token is minted by the
// connecting LPM with the user's key; the stamp prevents replay.
type Hello struct {
	User     string
	FromHost string
	Token    []byte
	Stamp    Stamp
	// CCSHost/CCSPort propagate the crash coordinator site address to
	// newly connected siblings (paper §5: "upon creation of a sibling
	// LPM, the network address of the CCS is passed along").
	CCSHost string
	CCSPort uint16
	// Inc is the dialing LPM's incarnation id. Operation identities
	// (Envelope.OpID) are scoped to one LPM instance; exchanging the
	// incarnation at channel creation lets the acceptor key its
	// at-most-once state so a restarted LPM — whose op counter restarts
	// from zero — never hits its predecessor's cached replies.
	Inc uint64
}

// Encode serializes the hello.
func (m Hello) Encode() []byte {
	e := NewEncoder(64)
	e.String(m.User)
	e.String(m.FromHost)
	e.Bytes32(m.Token)
	m.Stamp.encode(e)
	e.String(m.CCSHost)
	e.U16(m.CCSPort)
	e.U64(m.Inc)
	return e.Bytes()
}

// DecodeHello parses a Hello body.
func DecodeHello(b []byte) (Hello, error) {
	d := NewDecoder(b)
	m := Hello{User: d.String(), FromHost: d.String(), Token: d.Bytes32()}
	m.Stamp = decodeStamp(d)
	m.CCSHost = d.String()
	m.CCSPort = d.U16()
	m.Inc = d.U64()
	return m, d.Finish()
}

// HelloResp accepts or rejects the circuit.
type HelloResp struct {
	OK     bool
	Reason string
	// Inc is the accepting LPM's incarnation id (see Hello.Inc):
	// requests flow both ways over one circuit, so each end needs the
	// other's incarnation.
	Inc uint64
}

// Encode serializes the response.
func (m HelloResp) Encode() []byte {
	e := NewEncoder(16)
	e.Bool(m.OK)
	e.String(m.Reason)
	e.U64(m.Inc)
	return e.Bytes()
}

// DecodeHelloResp parses a HelloResp body.
func DecodeHelloResp(b []byte) (HelloResp, error) {
	d := NewDecoder(b)
	m := HelloResp{OK: d.Bool(), Reason: d.String()}
	m.Inc = d.U64()
	return m, d.Finish()
}

// --- process creation ---

// CreateProc asks an LPM to create (fork+exec) a process on its host
// and adopt it, with the given logical parent.
type CreateProc struct {
	User   string
	Name   string
	Parent proc.GPID
	// Foreground requests that the process start in the foreground
	// process group of the user's session on that host.
	Foreground bool
}

// Encode serializes the request.
func (m CreateProc) Encode() []byte {
	e := NewEncoder(48)
	e.String(m.User)
	e.String(m.Name)
	putGPID(e, m.Parent)
	e.Bool(m.Foreground)
	return e.Bytes()
}

// DecodeCreateProc parses a CreateProc body.
func DecodeCreateProc(b []byte) (CreateProc, error) {
	d := NewDecoder(b)
	m := CreateProc{User: d.String(), Name: d.String(), Parent: getGPID(d), Foreground: d.Bool()}
	return m, d.Finish()
}

// CreateAck is the lightweight acknowledgement sent right after
// fork+adopt succeed (exec continues asynchronously; its completion
// arrives as a kernel event).
type CreateAck struct {
	OK     bool
	Reason string
	ID     proc.GPID
}

// Encode serializes the ack.
func (m CreateAck) Encode() []byte {
	e := NewEncoder(32)
	e.Bool(m.OK)
	e.String(m.Reason)
	putGPID(e, m.ID)
	return e.Bytes()
}

// DecodeCreateAck parses a CreateAck body.
func DecodeCreateAck(b []byte) (CreateAck, error) {
	d := NewDecoder(b)
	m := CreateAck{OK: d.Bool(), Reason: d.String(), ID: getGPID(d)}
	return m, d.Finish()
}

// --- process control ---

// ControlOp is a built-in process-control function of the snapshot tool
// (paper §4: stop a process, execute it in the foreground, execute it
// in the background, kill it) plus arbitrary signal delivery.
type ControlOp uint8

// Control operations.
const (
	OpStop ControlOp = iota + 1
	OpForeground
	OpBackground
	OpKill
	OpSignal
)

// String names the operation.
func (o ControlOp) String() string {
	switch o {
	case OpStop:
		return "stop"
	case OpForeground:
		return "fg"
	case OpBackground:
		return "bg"
	case OpKill:
		return "kill"
	case OpSignal:
		return "signal"
	default:
		return fmt.Sprintf("op#%d", uint8(o))
	}
}

// Control requests a state change on one process anywhere in the
// network.
type Control struct {
	User   string
	Target proc.GPID
	Op     ControlOp
	Signal proc.Signal // for OpSignal
}

// Encode serializes the request.
func (m Control) Encode() []byte {
	e := NewEncoder(32)
	e.String(m.User)
	putGPID(e, m.Target)
	e.U8(uint8(m.Op))
	e.I32(int32(m.Signal))
	return e.Bytes()
}

// DecodeControl parses a Control body.
func DecodeControl(b []byte) (Control, error) {
	d := NewDecoder(b)
	m := Control{User: d.String(), Target: getGPID(d), Op: ControlOp(d.U8()), Signal: proc.Signal(d.I32())}
	return m, d.Finish()
}

// ControlResp reports the outcome and the process's new state.
type ControlResp struct {
	OK     bool
	Reason string
	State  proc.State
}

// Encode serializes the response.
func (m ControlResp) Encode() []byte {
	e := NewEncoder(16)
	e.Bool(m.OK)
	e.String(m.Reason)
	e.U8(uint8(m.State))
	return e.Bytes()
}

// DecodeControlResp parses a ControlResp body.
func DecodeControlResp(b []byte) (ControlResp, error) {
	d := NewDecoder(b)
	m := ControlResp{OK: d.Bool(), Reason: d.String(), State: proc.State(d.U8())}
	return m, d.Finish()
}

// --- snapshot ---

// SnapshotReq asks an LPM for information about the user's processes on
// its host (and, via the PPM infrastructure, on hosts it leads to).
type SnapshotReq struct {
	User string
	// Forward requests that the receiving LPM also gather from the
	// siblings reachable through it (used on chain topologies).
	Forward bool
}

// Encode serializes the request.
func (m SnapshotReq) Encode() []byte {
	e := NewEncoder(16)
	e.String(m.User)
	e.Bool(m.Forward)
	return e.Bytes()
}

// DecodeSnapshotReq parses a SnapshotReq body.
func DecodeSnapshotReq(b []byte) (SnapshotReq, error) {
	d := NewDecoder(b)
	m := SnapshotReq{User: d.String(), Forward: d.Bool()}
	return m, d.Finish()
}

// SnapshotResp carries per-process information fragments.
type SnapshotResp struct {
	OK      bool
	Reason  string
	Procs   []proc.Info
	Partial []string // hosts whose information is missing
}

// Encode serializes the response.
func (m SnapshotResp) Encode() []byte {
	e := NewEncoder(64 + 96*len(m.Procs))
	e.Bool(m.OK)
	e.String(m.Reason)
	e.U16(uint16(len(m.Procs)))
	for _, p := range m.Procs {
		putInfo(e, p)
	}
	e.StringSlice(m.Partial)
	return e.Bytes()
}

// DecodeSnapshotResp parses a SnapshotResp body.
func DecodeSnapshotResp(b []byte) (SnapshotResp, error) {
	d := NewDecoder(b)
	m := SnapshotResp{OK: d.Bool(), Reason: d.String()}
	n := int(d.U16())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Procs = append(m.Procs, getInfo(d))
	}
	m.Partial = d.StringSlice()
	return m, d.Finish()
}

// --- exited-process statistics ---

// StatsReq asks for the preserved resource-consumption record of a
// process (typically exited).
type StatsReq struct {
	User   string
	Target proc.GPID
}

// Encode serializes the request.
func (m StatsReq) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.User)
	putGPID(e, m.Target)
	return e.Bytes()
}

// DecodeStatsReq parses a StatsReq body.
func DecodeStatsReq(b []byte) (StatsReq, error) {
	d := NewDecoder(b)
	m := StatsReq{User: d.String(), Target: getGPID(d)}
	return m, d.Finish()
}

// StatsResp returns the record.
type StatsResp struct {
	OK     bool
	Reason string
	Info   proc.Info
}

// Encode serializes the response.
func (m StatsResp) Encode() []byte {
	e := NewEncoder(128)
	e.Bool(m.OK)
	e.String(m.Reason)
	putInfo(e, m.Info)
	return e.Bytes()
}

// DecodeStatsResp parses a StatsResp body.
func DecodeStatsResp(b []byte) (StatsResp, error) {
	d := NewDecoder(b)
	m := StatsResp{OK: d.Bool(), Reason: d.String(), Info: getInfo(d)}
	return m, d.Finish()
}

// --- history ---

// HistoryReq queries the LPM's preserved event trace.
type HistoryReq struct {
	User  string
	Proc  proc.GPID // zero GPID = all processes
	Kinds []uint8   // empty = all kinds
	Since time.Duration
	Limit uint16
}

// Encode serializes the request.
func (m HistoryReq) Encode() []byte {
	e := NewEncoder(48)
	e.String(m.User)
	putGPID(e, m.Proc)
	e.U16(uint16(len(m.Kinds)))
	for _, k := range m.Kinds {
		e.U8(k)
	}
	e.Duration(m.Since)
	e.U16(m.Limit)
	return e.Bytes()
}

// DecodeHistoryReq parses a HistoryReq body.
func DecodeHistoryReq(b []byte) (HistoryReq, error) {
	d := NewDecoder(b)
	m := HistoryReq{User: d.String(), Proc: getGPID(d)}
	n := int(d.U16())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Kinds = append(m.Kinds, d.U8())
	}
	m.Since = d.Duration()
	m.Limit = d.U16()
	return m, d.Finish()
}

// HistoryResp returns matching events.
type HistoryResp struct {
	OK     bool
	Reason string
	Events []proc.Event
}

// Encode serializes the response.
func (m HistoryResp) Encode() []byte {
	e := NewEncoder(32 + 64*len(m.Events))
	e.Bool(m.OK)
	e.String(m.Reason)
	e.U16(uint16(len(m.Events)))
	for _, ev := range m.Events {
		putEvent(e, ev)
	}
	return e.Bytes()
}

// DecodeHistoryResp parses a HistoryResp body.
func DecodeHistoryResp(b []byte) (HistoryResp, error) {
	d := NewDecoder(b)
	m := HistoryResp{OK: d.Bool(), Reason: d.String()}
	n := int(d.U16())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Events = append(m.Events, getEvent(d))
	}
	return m, d.Finish()
}

// --- open-descriptor display (a §7 future-work tool, implemented) ---

// FDReq asks for the open descriptors of a process.
type FDReq struct {
	User   string
	Target proc.GPID
}

// Encode serializes the request.
func (m FDReq) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.User)
	putGPID(e, m.Target)
	return e.Bytes()
}

// DecodeFDReq parses an FDReq body.
func DecodeFDReq(b []byte) (FDReq, error) {
	d := NewDecoder(b)
	m := FDReq{User: d.String(), Target: getGPID(d)}
	return m, d.Finish()
}

// FDResp lists open descriptors as "fd:path" strings.
type FDResp struct {
	OK     bool
	Reason string
	Open   []string
}

// Encode serializes the response.
func (m FDResp) Encode() []byte {
	e := NewEncoder(32)
	e.Bool(m.OK)
	e.String(m.Reason)
	e.StringSlice(m.Open)
	return e.Bytes()
}

// DecodeFDResp parses an FDResp body.
func DecodeFDResp(b []byte) (FDResp, error) {
	d := NewDecoder(b)
	m := FDResp{OK: d.Bool(), Reason: d.String(), Open: d.StringSlice()}
	return m, d.Finish()
}

// --- broadcast (graph covering, §4) ---

// Broadcast is the flooding envelope for requests that must reach all
// sibling LPMs over the low-connectivity circuit graph. Dedup is by the
// signed stamp (origin host + origin time + sequence); the route
// accumulates the hosts traversed so replies can be source-routed back.
type Broadcast struct {
	Stamp Stamp
	Seq   uint64
	Route []string
	Inner []byte // the encoded inner envelope
}

// Encode serializes the broadcast envelope.
func (m Broadcast) Encode() []byte {
	e := NewEncoder(96 + len(m.Inner))
	m.Stamp.encode(e)
	e.U64(m.Seq)
	e.StringSlice(m.Route)
	e.Bytes32(m.Inner)
	return e.Bytes()
}

// DecodeBroadcast parses a Broadcast body.
func DecodeBroadcast(b []byte) (Broadcast, error) {
	d := NewDecoder(b)
	m := Broadcast{Stamp: decodeStamp(d), Seq: d.U64(), Route: d.StringSlice(), Inner: d.Bytes32()}
	return m, d.Finish()
}

// BroadcastResp carries a reply back along the recorded route.
type BroadcastResp struct {
	Seq   uint64
	From  string
	Route []string // remaining route back to the originator
	Inner []byte
}

// Encode serializes the broadcast reply.
func (m BroadcastResp) Encode() []byte {
	e := NewEncoder(64 + len(m.Inner))
	e.U64(m.Seq)
	e.String(m.From)
	e.StringSlice(m.Route)
	e.Bytes32(m.Inner)
	return e.Bytes()
}

// DecodeBroadcastResp parses a BroadcastResp body.
func DecodeBroadcastResp(b []byte) (BroadcastResp, error) {
	d := NewDecoder(b)
	m := BroadcastResp{Seq: d.U64(), From: d.String(), Route: d.StringSlice(), Inner: d.Bytes32()}
	return m, d.Finish()
}

// --- kernel event message (112 bytes) ---

func putEvent(e *Encoder, ev proc.Event) {
	e.Duration(ev.At)
	e.U8(uint8(ev.Kind))
	putGPID(e, ev.Proc)
	putGPID(e, ev.Child)
	e.I32(int32(ev.Signal))
	e.String(ev.Detail)
	putRusage(e, ev.Rusage)
}

func getEvent(d *Decoder) proc.Event {
	return proc.Event{
		At:     d.Duration(),
		Kind:   proc.EventKind(d.U8()),
		Proc:   getGPID(d),
		Child:  getGPID(d),
		Signal: proc.Signal(d.I32()),
		Detail: d.String(),
		Rusage: getRusage(d),
	}
}

// EncodeKernelEvent produces the fixed-size 112-byte kernel-to-LPM
// event message of the paper's Table 1. Long host names or details are
// truncated to keep the size fixed.
func EncodeKernelEvent(ev proc.Event) []byte {
	if len(ev.Detail) > 16 {
		ev.Detail = ev.Detail[:16]
	}
	if len(ev.Proc.Host) > 14 {
		ev.Proc.Host = ev.Proc.Host[:14]
	}
	if len(ev.Child.Host) > 14 {
		ev.Child.Host = ev.Child.Host[:14]
	}
	e := NewEncoder(calib.KernelMsgBytes)
	putEvent(e, ev)
	e.Pad(calib.KernelMsgBytes)
	b := e.Bytes()
	if len(b) > calib.KernelMsgBytes {
		b = b[:calib.KernelMsgBytes]
	}
	return b
}

// DecodeKernelEvent parses a kernel event message.
func DecodeKernelEvent(b []byte) (proc.Event, error) {
	d := NewDecoder(b)
	ev := getEvent(d)
	if err := d.Finish(); err != nil {
		return proc.Event{}, err
	}
	return ev, nil
}

// --- liveness / recovery ---

// Ping probes a sibling or a candidate CCS.
type Ping struct {
	FromHost string
	User     string
}

// Encode serializes the ping.
func (m Ping) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.FromHost)
	e.String(m.User)
	return e.Bytes()
}

// DecodePing parses a Ping body.
func DecodePing(b []byte) (Ping, error) {
	d := NewDecoder(b)
	m := Ping{FromHost: d.String(), User: d.String()}
	return m, d.Finish()
}

// Pong answers a ping, reporting the responder's current CCS.
type Pong struct {
	FromHost string
	CCSHost  string
	CCSPort  uint16
	IsCCS    bool
}

// Encode serializes the pong.
func (m Pong) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.FromHost)
	e.String(m.CCSHost)
	e.U16(m.CCSPort)
	e.Bool(m.IsCCS)
	return e.Bytes()
}

// DecodePong parses a Pong body.
func DecodePong(b []byte) (Pong, error) {
	d := NewDecoder(b)
	m := Pong{FromHost: d.String(), CCSHost: d.String(), CCSPort: d.U16(), IsCCS: d.Bool()}
	return m, d.Finish()
}

// --- live introspection ---

// StatusReq asks a sibling LPM for its host's live status report. The
// sweep id names the origin's gather for journal correlation; the op is
// read-only and carries no at-most-once identity.
type StatusReq struct {
	User  string
	Sweep string
}

// Encode serializes the request.
func (m StatusReq) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.User)
	e.String(m.Sweep)
	return e.Bytes()
}

// DecodeStatusReq parses a StatusReq body.
func DecodeStatusReq(b []byte) (StatusReq, error) {
	d := NewDecoder(b)
	m := StatusReq{User: d.String(), Sweep: d.String()}
	return m, d.Finish()
}

// StatusResp carries one host's status report, pre-encoded by
// internal/status (the wire layer stays ignorant of the report schema).
type StatusResp struct {
	OK     bool
	Reason string
	Report []byte
}

// Encode serializes the response.
func (m StatusResp) Encode() []byte {
	e := NewEncoder(16 + len(m.Report))
	e.Bool(m.OK)
	e.String(m.Reason)
	e.Bytes32(m.Report)
	return e.Bytes()
}

// DecodeStatusResp parses a StatusResp body.
func DecodeStatusResp(b []byte) (StatusResp, error) {
	d := NewDecoder(b)
	m := StatusResp{OK: d.Bool(), Reason: d.String(), Report: d.Bytes32()}
	return m, d.Finish()
}

// CCSUpdate announces a new crash coordinator site to a sibling.
type CCSUpdate struct {
	CCSHost string
	CCSPort uint16
}

// Encode serializes the update.
func (m CCSUpdate) Encode() []byte {
	e := NewEncoder(16)
	e.String(m.CCSHost)
	e.U16(m.CCSPort)
	return e.Bytes()
}

// DecodeCCSUpdate parses a CCSUpdate body.
func DecodeCCSUpdate(b []byte) (CCSUpdate, error) {
	d := NewDecoder(b)
	m := CCSUpdate{CCSHost: d.String(), CCSPort: d.U16()}
	return m, d.Finish()
}

// --- error reply ---

// ErrorResp is the generic failure reply the dispatcher returns when a
// handler reports that a remote request cannot be completed.
type ErrorResp struct {
	Reason string
}

// Encode serializes the failure reply.
func (m ErrorResp) Encode() []byte {
	e := NewEncoder(16)
	e.String(m.Reason)
	return e.Bytes()
}

// DecodeErrorResp parses an ErrorResp body.
func DecodeErrorResp(b []byte) (ErrorResp, error) {
	d := NewDecoder(b)
	m := ErrorResp{Reason: d.String()}
	return m, d.Finish()
}

// --- flood aggregation ---

// FloodResult is the aggregate a node returns to its broadcast parent
// in the graph-covering echo: snapshot fragments and/or control counts
// collected from the subtree it covered, plus the hosts it failed to
// reach. A duplicate arrival (cycle in the circuit graph) is answered
// with Dup set and no data.
type FloodResult struct {
	OK      bool
	Dup     bool
	Count   int32 // processes affected by a control-all flood
	Procs   []proc.Info
	Partial []string
	// Hosts lists every host whose LPM contributed to this aggregate,
	// so the originator can tell covered hosts from silent ones.
	Hosts []string
	// Routes[i] is the circuit path from the originator to Hosts[i],
	// hosts separated by '/'. The originator learns relay routes to
	// topologically distant hosts from these.
	Routes []string
}

// Encode serializes the flood result.
func (m FloodResult) Encode() []byte {
	e := NewEncoder(32 + 96*len(m.Procs))
	e.Bool(m.OK)
	e.Bool(m.Dup)
	e.I32(m.Count)
	e.U16(uint16(len(m.Procs)))
	for _, p := range m.Procs {
		putInfo(e, p)
	}
	e.StringSlice(m.Partial)
	e.StringSlice(m.Hosts)
	e.StringSlice(m.Routes)
	return e.Bytes()
}

// DecodeFloodResult parses a FloodResult body.
func DecodeFloodResult(b []byte) (FloodResult, error) {
	d := NewDecoder(b)
	m := FloodResult{OK: d.Bool(), Dup: d.Bool(), Count: d.I32()}
	n := int(d.U16())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Procs = append(m.Procs, getInfo(d))
	}
	m.Partial = d.StringSlice()
	m.Hosts = d.StringSlice()
	m.Routes = d.StringSlice()
	return m, d.Finish()
}

// --- relay routing ---

// Relay carries a request toward Dest through intermediate LPMs along
// a known route. Each intermediary pops itself off Path and forwards;
// the destination processes Inner and the response travels back the
// same circuits.
type Relay struct {
	User string
	Dest string
	// Path is the remaining route (excluding the current host),
	// ending with Dest.
	Path  []string
	Inner []byte // encoded inner request envelope
}

// Encode serializes the relay request.
func (m Relay) Encode() []byte {
	e := NewEncoder(64 + len(m.Inner))
	e.String(m.User)
	e.String(m.Dest)
	e.StringSlice(m.Path)
	e.Bytes32(m.Inner)
	return e.Bytes()
}

// DecodeRelay parses a Relay body.
func DecodeRelay(b []byte) (Relay, error) {
	d := NewDecoder(b)
	m := Relay{User: d.String(), Dest: d.String(), Path: d.StringSlice(), Inner: d.Bytes32()}
	return m, d.Finish()
}

// RelayResp carries the destination's response back to the origin.
type RelayResp struct {
	OK     bool
	Reason string
	Inner  []byte // encoded inner response envelope
}

// Encode serializes the relay response.
func (m RelayResp) Encode() []byte {
	e := NewEncoder(32 + len(m.Inner))
	e.Bool(m.OK)
	e.String(m.Reason)
	e.Bytes32(m.Inner)
	return e.Bytes()
}

// DecodeRelayResp parses a RelayResp body.
func DecodeRelayResp(b []byte) (RelayResp, error) {
	d := NewDecoder(b)
	m := RelayResp{OK: d.Bool(), Reason: d.String(), Inner: d.Bytes32()}
	return m, d.Finish()
}

// --- remote history-dependent triggers ---

// WatchReq installs (or removes) an event trigger on a remote LPM: when
// a matching kernel event arrives there, the named control action is
// applied to the target process (which may itself live on yet another
// host).
type WatchReq struct {
	User string
	// Remove uninstalls the watch with ID instead of installing one.
	Remove bool
	ID     int32

	// Filter (install only).
	Kind   uint8       // proc.EventKind
	Signal proc.Signal // for signal events, 0 = any
	Proc   proc.GPID   // zero = any process

	// Action (install only).
	Op        ControlOp
	ActionSig proc.Signal
	Target    proc.GPID
}

// Encode serializes the watch request.
func (m WatchReq) Encode() []byte {
	e := NewEncoder(64)
	e.String(m.User)
	e.Bool(m.Remove)
	e.I32(m.ID)
	e.U8(m.Kind)
	e.I32(int32(m.Signal))
	putGPID(e, m.Proc)
	e.U8(uint8(m.Op))
	e.I32(int32(m.ActionSig))
	putGPID(e, m.Target)
	return e.Bytes()
}

// DecodeWatchReq parses a WatchReq body.
func DecodeWatchReq(b []byte) (WatchReq, error) {
	d := NewDecoder(b)
	m := WatchReq{
		User:   d.String(),
		Remove: d.Bool(),
		ID:     d.I32(),
		Kind:   d.U8(),
		Signal: proc.Signal(d.I32()),
		Proc:   getGPID(d),
		Op:     ControlOp(d.U8()),
	}
	m.ActionSig = proc.Signal(d.I32())
	m.Target = getGPID(d)
	return m, d.Finish()
}

// WatchResp acknowledges a watch installation or removal.
type WatchResp struct {
	OK     bool
	Reason string
	ID     int32
}

// Encode serializes the response.
func (m WatchResp) Encode() []byte {
	e := NewEncoder(16)
	e.Bool(m.OK)
	e.String(m.Reason)
	e.I32(m.ID)
	return e.Bytes()
}

// DecodeWatchResp parses a WatchResp body.
func DecodeWatchResp(b []byte) (WatchResp, error) {
	d := NewDecoder(b)
	m := WatchResp{OK: d.Bool(), Reason: d.String(), ID: d.I32()}
	return m, d.Finish()
}

// --- adaptive failure detection ---

// LinkTest is the periodic heartbeat frame the circuit layer sends so
// the accrual failure detector sees a steady inter-arrival stream even
// on an otherwise idle circuit. Seq increments per circuit.
type LinkTest struct {
	FromHost string
	Seq      uint64
}

// Encode serializes the linktest frame.
func (m LinkTest) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.FromHost)
	e.U64(m.Seq)
	return e.Bytes()
}

// DecodeLinkTest parses a LinkTest body.
func DecodeLinkTest(b []byte) (LinkTest, error) {
	d := NewDecoder(b)
	m := LinkTest{FromHost: d.String(), Seq: d.U64()}
	return m, d.Finish()
}

// LinkTestResp echoes a linktest; its arrival is itself a detector
// sample for the requesting side.
type LinkTestResp struct {
	FromHost string
	Seq      uint64
}

// Encode serializes the linktest reply.
func (m LinkTestResp) Encode() []byte {
	e := NewEncoder(24)
	e.String(m.FromHost)
	e.U64(m.Seq)
	return e.Bytes()
}

// DecodeLinkTestResp parses a LinkTestResp body.
func DecodeLinkTestResp(b []byte) (LinkTestResp, error) {
	d := NewDecoder(b)
	m := LinkTestResp{FromHost: d.String(), Seq: d.U64()}
	return m, d.Finish()
}

// --- exit forwarding (remote watches) ---

// ProcExit carries a watched process's exit event from the kernel that
// observed it to the process's home LPM, so watches declared at home
// fire. Event is the raw kernel exit event; Info is the final process
// record (for the home history store's exit index).
type ProcExit struct {
	User  string
	Event proc.Event
	Info  proc.Info
}

// Encode serializes the exit notification.
func (m ProcExit) Encode() []byte {
	e := NewEncoder(192)
	e.String(m.User)
	putEvent(e, m.Event)
	putInfo(e, m.Info)
	return e.Bytes()
}

// DecodeProcExit parses a ProcExit body.
func DecodeProcExit(b []byte) (ProcExit, error) {
	d := NewDecoder(b)
	m := ProcExit{User: d.String(), Event: getEvent(d), Info: getInfo(d)}
	return m, d.Finish()
}

// ProcExitResp acknowledges an exit notification.
type ProcExitResp struct {
	OK     bool
	Reason string
}

// Encode serializes the response.
func (m ProcExitResp) Encode() []byte {
	e := NewEncoder(16)
	e.Bool(m.OK)
	e.String(m.Reason)
	return e.Bytes()
}

// DecodeProcExitResp parses a ProcExitResp body.
func DecodeProcExitResp(b []byte) (ProcExitResp, error) {
	d := NewDecoder(b)
	m := ProcExitResp{OK: d.Bool(), Reason: d.String()}
	return m, d.Finish()
}
