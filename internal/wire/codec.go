// Package wire defines the PPM's on-the-wire protocol: a compact binary
// codec, the message types exchanged between tools, LPMs, the kernel
// and the process manager daemons, and the signed timestamps used to
// deduplicate broadcast requests.
//
// The encoding is deliberately explicit (fixed-width integers, length-
// prefixed strings) so that message sizes are deterministic; the
// simulated network charges transmission time by the encoded size, and
// the paper's kernel event messages are exactly 112 bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Encoding errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrInvalid     = errors.New("wire: invalid encoding")
)

// Encoder builds a binary message. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Reset empties the encoder, retaining the backing buffer so a
// long-lived encoder reaches a steady state where encoding allocates
// nothing. Bytes returned before the Reset are invalidated by it.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// encPool recycles encoders for the framing hot path. The ownership
// rule (see DESIGN.md "Hot paths & allocation discipline"): a frame
// produced by a pooled encoder is valid only until PutEncoder; callers
// must finish handing it to the network — which copies on send —
// before releasing the encoder.
var encPool = sync.Pool{
	New: func() any { return NewEncoder(256) },
}

// GetEncoder returns a reset encoder from the pool.
func GetEncoder() *Encoder {
	e, ok := encPool.Get().(*Encoder)
	if !ok {
		return NewEncoder(256)
	}
	e.Reset()
	return e
}

// PutEncoder returns an encoder to the pool, invalidating every byte
// slice previously returned by its Bytes.
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	encPool.Put(e)
}

// Bytes returns the encoded buffer. The caller must not modify it while
// continuing to use the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian 16-bit integer.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// U32 appends a big-endian 32-bit integer.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a big-endian 64-bit integer.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I32 appends a big-endian signed 32-bit integer.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a big-endian signed 64-bit integer.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends an IEEE-754 double.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Duration appends a time.Duration as a signed 64-bit nanosecond count.
func (e *Encoder) Duration(d time.Duration) { e.I64(int64(d)) }

// String appends a length-prefixed UTF-8 string (u16 length).
func (e *Encoder) String(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.U16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes32 appends a length-prefixed byte slice (u32 length).
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// StringSlice appends a u16-counted slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	if len(ss) > math.MaxUint16 {
		ss = ss[:math.MaxUint16]
	}
	e.U16(uint16(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Pad appends zero bytes until the buffer reaches size. It is used to
// give kernel event messages their fixed 112-byte size. If the buffer
// already exceeds size, Pad does nothing and PadOverflow reports it.
func (e *Encoder) Pad(size int) {
	for len(e.buf) < size {
		e.buf = append(e.buf, 0)
	}
}

// Decoder reads a binary message produced by Encoder. Errors are
// sticky: after the first failure all reads return zero values and Err
// reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian 16-bit integer.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian 32-bit integer.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian 64-bit integer.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 reads a big-endian signed 32-bit integer.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads a big-endian signed 64-bit integer.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean byte; any nonzero value is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// F64 reads an IEEE-754 double.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Duration reads a nanosecond duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.I64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes32 reads a u32-length-prefixed byte slice (copied).
func (d *Decoder) Bytes32() []byte {
	b := d.Bytes32Borrow()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Bytes32Borrow reads a u32-length-prefixed byte slice without
// copying: the result aliases the decoder's input buffer and is only
// valid while that buffer is. Callers that hand the slice to deferred
// work must use Bytes32 instead.
func (d *Decoder) Bytes32Borrow() []byte {
	n := int(d.U32())
	if n > d.Remaining() {
		d.err = ErrShortBuffer
		return nil
	}
	return d.take(n)
}

// StringSlice reads a u16-counted slice of strings.
func (d *Decoder) StringSlice() []string {
	n := int(d.U16())
	if n == 0 {
		return nil
	}
	if n > d.Remaining() { // each string needs at least its 2-byte length
		d.err = ErrShortBuffer
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Skip discards n bytes (used to skip padding).
func (d *Decoder) Skip(n int) { d.take(n) }

// Finish returns an error if decoding failed earlier. Trailing bytes
// are permitted (padding).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return fmt.Errorf("decode: %w", d.err)
	}
	return nil
}
