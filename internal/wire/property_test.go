package wire

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ppm/internal/proc"
)

// Property round trips with randomized contents for every message
// carrying interesting structure.

func clampStr(s string) string {
	if len(s) > 200 {
		return s[:200]
	}
	return s
}

func TestPropertyControlRoundTrip(t *testing.T) {
	f := func(user, host string, pid int32, op uint8, sig int32) bool {
		m := Control{
			User:   clampStr(user),
			Target: proc.GPID{Host: clampStr(host), PID: proc.PID(pid)},
			Op:     ControlOp(op),
			Signal: proc.Signal(sig),
		}
		got, err := DecodeControl(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySnapshotRespRoundTrip(t *testing.T) {
	f := func(names []string, pids []int16, states []uint8, partial []string) bool {
		n := len(names)
		if len(pids) < n {
			n = len(pids)
		}
		if len(states) < n {
			n = len(states)
		}
		if n > 20 {
			n = 20
		}
		m := SnapshotResp{OK: true}
		for i := 0; i < n; i++ {
			m.Procs = append(m.Procs, proc.Info{
				ID:    proc.GPID{Host: "h", PID: proc.PID(pids[i])},
				Name:  clampStr(names[i]),
				State: proc.State(states[i]),
			})
		}
		for i, p := range partial {
			if i >= 5 {
				break
			}
			m.Partial = append(m.Partial, clampStr(p))
		}
		got, err := DecodeSnapshotResp(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBroadcastRoundTrip(t *testing.T) {
	f := func(origin string, at int64, seq uint64, route []string, inner []byte) bool {
		stamp := NewStamp([]byte("k"), clampStr(origin), time.Duration(at), seq)
		var rt []string
		for i, r := range route {
			if i >= 8 {
				break
			}
			rt = append(rt, clampStr(r))
		}
		m := Broadcast{Stamp: stamp, Seq: seq, Route: rt, Inner: inner}
		got, err := DecodeBroadcast(m.Encode())
		if err != nil {
			return false
		}
		if !got.Stamp.Verify([]byte("k")) {
			return false
		}
		return reflect.DeepEqual(got, m) ||
			(len(m.Inner) == 0 && len(got.Inner) == 0 && got.Seq == m.Seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHistoryRespRoundTrip(t *testing.T) {
	f := func(kinds []uint8, ats []int32, details []string) bool {
		n := len(kinds)
		if len(ats) < n {
			n = len(ats)
		}
		if len(details) < n {
			n = len(details)
		}
		if n > 16 {
			n = 16
		}
		m := HistoryResp{OK: true}
		for i := 0; i < n; i++ {
			m.Events = append(m.Events, proc.Event{
				At:     time.Duration(ats[i]),
				Kind:   proc.EventKind(kinds[i]),
				Proc:   proc.GPID{Host: "h", PID: 1},
				Detail: clampStr(details[i]),
			})
		}
		got, err := DecodeHistoryResp(m.Encode())
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnvelopeNeverPanicsOnMutation(t *testing.T) {
	// Flip bytes of a valid encoding; decoding must never panic and
	// must either fail or produce a structurally valid envelope.
	f := func(idx uint16, val byte) bool {
		env := Envelope{Type: MsgControl, ReqID: 7,
			Body: Control{User: "u", Target: proc.GPID{Host: "h", PID: 1}}.Encode()}
		b := env.Encode()
		b[int(idx)%len(b)] ^= val
		got, err := DecodeEnvelope(b)
		if err != nil {
			return true
		}
		_, _ = DecodeControl(got.Body) // must not panic either
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKernelEventAlwaysFixedSize(t *testing.T) {
	f := func(host, detail string, pid int32, kind uint8, at int64) bool {
		ev := proc.Event{
			At:     time.Duration(at),
			Kind:   proc.EventKind(kind),
			Proc:   proc.GPID{Host: clampStr(host), PID: proc.PID(pid)},
			Detail: clampStr(detail),
		}
		return len(EncodeKernelEvent(ev)) == 112
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
