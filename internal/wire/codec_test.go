package wire

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(0)
	e.U8(7)
	e.U16(300)
	e.U32(70000)
	e.U64(1 << 40)
	e.I32(-5)
	e.I64(-1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.25)
	e.Duration(42 * time.Millisecond)
	e.String("hello")
	e.Bytes32([]byte{1, 2, 3})
	e.StringSlice([]string{"a", "bb"})

	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || d.U16() != 300 || d.U32() != 70000 || d.U64() != 1<<40 {
		t.Fatal("unsigned round trip failed")
	}
	if d.I32() != -5 || d.I64() != -1<<40 {
		t.Fatal("signed round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if d.F64() != 3.25 {
		t.Fatal("float round trip failed")
	}
	if d.Duration() != 42*time.Millisecond {
		t.Fatal("duration round trip failed")
	}
	if d.String() != "hello" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(d.Bytes32(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
	ss := d.StringSlice()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "bb" {
		t.Fatal("string slice round trip failed")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestDecoderShortBufferSticky(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	_ = d.U32() // needs 4 bytes
	if d.Err() == nil {
		t.Fatal("expected short-buffer error")
	}
	// Sticky: further reads return zero values and keep the error.
	if d.U8() != 0 || d.String() != "" || d.Bytes32() != nil {
		t.Fatal("post-error reads should return zero values")
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should report the error")
	}
}

func TestDecoderStringLengthBeyondBuffer(t *testing.T) {
	e := NewEncoder(0)
	e.U16(100) // claims 100 bytes follow
	d := NewDecoder(e.Bytes())
	if d.String() != "" || d.Err() == nil {
		t.Fatal("oversized string length should fail")
	}
}

func TestDecoderBytes32HugeLengthRejected(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1 << 30)
	d := NewDecoder(e.Bytes())
	if d.Bytes32() != nil || d.Err() == nil {
		t.Fatal("huge claimed length must not allocate or succeed")
	}
}

func TestDecoderStringSliceHugeCountRejected(t *testing.T) {
	e := NewEncoder(0)
	e.U16(65535)
	d := NewDecoder(e.Bytes())
	if d.StringSlice() != nil || d.Err() == nil {
		t.Fatal("huge claimed count must fail cleanly")
	}
}

func TestPadReachesFixedSize(t *testing.T) {
	e := NewEncoder(0)
	e.String("x")
	e.Pad(112)
	if e.Len() != 112 {
		t.Fatalf("len = %d, want 112", e.Len())
	}
	// Pad never truncates.
	e.Pad(50)
	if e.Len() != 112 {
		t.Fatal("Pad should not shrink the buffer")
	}
}

func TestSkipPadding(t *testing.T) {
	e := NewEncoder(0)
	e.U8(9)
	e.Pad(10)
	d := NewDecoder(e.Bytes())
	if d.U8() != 9 {
		t.Fatal("value wrong")
	}
	d.Skip(9)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatal("skip did not consume padding")
	}
}

func TestBytes32ReturnsCopy(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte{1, 2, 3})
	raw := e.Bytes()
	d := NewDecoder(raw)
	got := d.Bytes32()
	raw[4] = 99 // mutate the underlying buffer
	if got[0] != 1 {
		t.Fatal("Bytes32 must copy out of the shared buffer")
	}
}

func TestStringTruncatedAtU16Max(t *testing.T) {
	long := make([]byte, 70000)
	for i := range long {
		long[i] = 'a'
	}
	e := NewEncoder(0)
	e.String(string(long))
	d := NewDecoder(e.Bytes())
	s := d.String()
	if len(s) != 65535 {
		t.Fatalf("len = %d, want 65535", len(s))
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of (string, u64, bool) triples round-trips.
func TestPropertyTripleRoundTrip(t *testing.T) {
	f := func(ss []string, vs []uint64, bs []bool) bool {
		n := len(ss)
		if len(vs) < n {
			n = len(vs)
		}
		if len(bs) < n {
			n = len(bs)
		}
		e := NewEncoder(0)
		for i := 0; i < n; i++ {
			s := ss[i]
			if len(s) > 1000 {
				s = s[:1000]
			}
			e.String(s)
			e.U64(vs[i])
			e.Bool(bs[i])
		}
		d := NewDecoder(e.Bytes())
		for i := 0; i < n; i++ {
			s := ss[i]
			if len(s) > 1000 {
				s = s[:1000]
			}
			if d.String() != s || d.U64() != vs[i] || d.Bool() != bs[i] {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestPropertyDecoderRobustToGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		_ = d.String()
		_ = d.U64()
		_ = d.Bytes32()
		_ = d.StringSlice()
		_ = d.Duration()
		return true // reaching here (no panic) is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
