package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"time"
)

// Stamp is the paper's "signed timestamp in which the name of the
// originating host appears": it identifies a broadcast (or an
// authentication exchange) uniquely and unforgeably, so old broadcast
// requests can be recognized and not retransmitted within the retention
// window.
type Stamp struct {
	Origin string        // originating host name
	At     time.Duration // virtual time at the origin
	Seq    uint64        // per-origin sequence number
	Sig    []byte        // HMAC-SHA256 over (origin, at, seq) with the user key
}

// stampDigest computes the signature input.
func stampDigest(origin string, at time.Duration, seq uint64) []byte {
	e := NewEncoder(32)
	e.String(origin)
	e.Duration(at)
	e.U64(seq)
	return e.Bytes()
}

// NewStamp mints a signed stamp with the user's key.
func NewStamp(key []byte, origin string, at time.Duration, seq uint64) Stamp {
	mac := hmac.New(sha256.New, key)
	mac.Write(stampDigest(origin, at, seq))
	return Stamp{Origin: origin, At: at, Seq: seq, Sig: mac.Sum(nil)}
}

// Verify checks the stamp's signature with the user's key.
func (s Stamp) Verify(key []byte) bool {
	mac := hmac.New(sha256.New, key)
	mac.Write(stampDigest(s.Origin, s.At, s.Seq))
	return hmac.Equal(mac.Sum(nil), s.Sig)
}

// Key returns the dedup identity of the stamp (everything except the
// signature).
func (s Stamp) Key() string {
	return string(stampDigest(s.Origin, s.At, s.Seq))
}

func (s Stamp) encode(e *Encoder) {
	e.String(s.Origin)
	e.Duration(s.At)
	e.U64(s.Seq)
	e.Bytes32(s.Sig)
}

func decodeStamp(d *Decoder) Stamp {
	return Stamp{Origin: d.String(), At: d.Duration(), Seq: d.U64(), Sig: d.Bytes32()}
}
