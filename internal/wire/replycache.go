package wire

import "fmt"

// DefaultReplyCacheCapacity bounds a ReplyCache when the caller passes
// no explicit capacity. Replies are small (control acks, broadcast
// echoes), so a few hundred cover every plausible retransmit window.
const DefaultReplyCacheCapacity = 256

// CachedReply is one retained reply: the message type and encoded body
// the first execution of an at-most-once operation produced.
type CachedReply struct {
	Type MsgType
	Body []byte
}

// ReplyCache retains executed operations' replies keyed by their
// operation identity, so a retransmitted request (same origin, same
// OpID, a fresh ReqID) is answered from the cache instead of being
// re-executed. Eviction is FIFO in insertion order, which under the
// single-threaded simulation is also virtual-time order — the cache
// behaves identically on every same-seed run.
type ReplyCache struct {
	capacity int
	entries  map[string]CachedReply
	order    []string // insertion order; order[head:] are live
	head     int
}

// NewReplyCache creates a cache bounded to capacity entries (<= 0 means
// DefaultReplyCacheCapacity).
func NewReplyCache(capacity int) *ReplyCache {
	if capacity <= 0 {
		capacity = DefaultReplyCacheCapacity
	}
	return &ReplyCache{
		capacity: capacity,
		entries:  make(map[string]CachedReply),
	}
}

// OpKey names one operation for caching and journaling: the origin host
// plus the origin-assigned operation id.
func OpKey(origin string, op uint64) string {
	return fmt.Sprintf("%s#%d", origin, op)
}

// Get returns the cached reply for an operation key, if present.
func (c *ReplyCache) Get(key string) (CachedReply, bool) {
	r, ok := c.entries[key]
	return r, ok
}

// Put stores a reply under an operation key, evicting the oldest entry
// when the cache is full. Re-putting an existing key overwrites in
// place without extending the order queue.
func (c *ReplyCache) Put(key string, t MsgType, body []byte) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = CachedReply{Type: t, Body: body}
		return
	}
	if len(c.entries) >= c.capacity {
		oldest := c.order[c.head]
		c.head++
		delete(c.entries, oldest)
		// Reclaim the drained prefix once it dominates the slice, so the
		// queue's footprint stays proportional to the live entries.
		if c.head > len(c.order)/2 {
			c.order = append([]string(nil), c.order[c.head:]...)
			c.head = 0
		}
	}
	c.entries[key] = CachedReply{Type: t, Body: body}
	c.order = append(c.order, key)
}

// Len returns the number of cached replies.
func (c *ReplyCache) Len() int { return len(c.entries) }
