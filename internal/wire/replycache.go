package wire

import (
	"fmt"
	"strings"
	"time"
)

// DefaultReplyCacheWindow bounds retention when the caller passes no
// explicit window. A retransmission of an operation can only arrive
// while its sender's retry loop is alive — at most MaxAttempts request
// timeouts plus the capped backoffs between them — so a couple of
// minutes of virtual time covers every plausible retry policy.
const DefaultReplyCacheWindow = 2 * time.Minute

// CachedReply is one retained reply: the message type and encoded body
// the first execution of an at-most-once operation produced.
type CachedReply struct {
	Type MsgType
	Body []byte
}

// ReplyCache retains executed operations' replies keyed by their
// operation identity, so a retransmitted request (same origin, same
// OpID, a fresh ReqID) is answered from the cache instead of being
// re-executed. Eviction is by virtual-time age, not entry count: an
// entry is dropped once it has outlived the window, beyond which no
// retransmission of its operation can still arrive. A count bound
// would let a burst of concurrent operations evict an entry while its
// sender could still retransmit, silently re-executing a
// non-idempotent request. Under the single-threaded simulation
// insertion order is virtual-time order, so eviction inspects exactly
// the expired entries and the cache behaves identically on every
// same-seed run.
type ReplyCache struct {
	window  time.Duration
	entries map[string]CachedReply
	order   []replyEntry // insertion order; order[head:] are live
	head    int
}

// replyEntry is one slot of the age-eviction queue.
type replyEntry struct {
	key string
	at  time.Duration // virtual insertion time
}

// NewReplyCache creates a cache retaining entries for the given window
// of virtual time (<= 0 means DefaultReplyCacheWindow).
func NewReplyCache(window time.Duration) *ReplyCache {
	if window <= 0 {
		window = DefaultReplyCacheWindow
	}
	return &ReplyCache{
		window:  window,
		entries: make(map[string]CachedReply),
	}
}

// OpKey names one operation for caching and journaling: the origin
// host, the origin LPM's incarnation, and the origin-assigned
// operation id. The incarnation keeps a restarted or recreated LPM —
// whose op counter restarts from zero — from colliding with its
// predecessor's operations, so a stale cache entry can never answer a
// fresh request.
func OpKey(origin string, inc, op uint64) string {
	return fmt.Sprintf("%s#%d#%d", origin, inc, op)
}

// OpPrefix is the common prefix of every OpKey minted by one LPM
// incarnation, for purging a dead incarnation's entries wholesale.
func OpPrefix(origin string, inc uint64) string {
	return fmt.Sprintf("%s#%d#", origin, inc)
}

// Get returns the cached reply for an operation key, if present.
func (c *ReplyCache) Get(key string) (CachedReply, bool) {
	r, ok := c.entries[key]
	return r, ok
}

// Put stores a reply under an operation key at virtual time now,
// evicting entries that have outlived the window. Re-putting an
// existing key overwrites in place without extending the order queue.
func (c *ReplyCache) Put(key string, t MsgType, body []byte, now time.Duration) {
	c.evict(now)
	if _, ok := c.entries[key]; ok {
		c.entries[key] = CachedReply{Type: t, Body: body}
		return
	}
	c.entries[key] = CachedReply{Type: t, Body: body}
	c.order = append(c.order, replyEntry{key: key, at: now})
}

// evict drops entries older than the window. The queue is insertion
// ordered, which is also virtual-time order, so only expired entries
// (plus one) are inspected.
func (c *ReplyCache) evict(now time.Duration) {
	for c.head < len(c.order) {
		e := c.order[c.head]
		if now-e.at <= c.window {
			break
		}
		c.head++
		delete(c.entries, e.key)
	}
	// Reclaim the drained prefix once it dominates the slice, so the
	// queue's footprint stays proportional to the live entries.
	if c.head > len(c.order)/2 {
		c.order = append([]replyEntry(nil), c.order[c.head:]...)
		c.head = 0
	}
}

// PurgePrefix drops every entry whose key begins with prefix (all
// operations of one dead LPM incarnation, per OpPrefix) and reports
// how many were dropped. The surviving queue keeps its order.
func (c *ReplyCache) PurgePrefix(prefix string) int {
	live := c.order[c.head:]
	kept := make([]replyEntry, 0, len(live))
	n := 0
	for _, e := range live {
		if strings.HasPrefix(e.key, prefix) {
			delete(c.entries, e.key)
			n++
			continue
		}
		kept = append(kept, e)
	}
	c.order, c.head = kept, 0
	return n
}

// Len returns the number of cached replies.
func (c *ReplyCache) Len() int { return len(c.entries) }
