package wire

import "testing"

// TestEnvelopeTraceTrailerRoundTrip: envelopes with a trace context
// carry it in the optional trailer and get it back on decode.
func TestEnvelopeTraceTrailerRoundTrip(t *testing.T) {
	ev := Envelope{Type: MsgControl, ReqID: 42, Body: []byte("body")}
	ev.SetTrace(7, 13)
	out, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 7 || out.SpanID != 13 {
		t.Fatalf("trace context lost: got (%d, %d), want (7, 13)", out.TraceID, out.SpanID)
	}
	if out.Type != ev.Type || out.ReqID != ev.ReqID || string(out.Body) != "body" {
		t.Fatalf("payload corrupted by trailer: %+v", out)
	}
}

// TestEnvelopeUntracedUnchanged: without a trace context the encoding
// must be byte-identical to the pre-trailer format — untraced runs put
// zero extra bytes on the wire.
func TestEnvelopeUntracedUnchanged(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 9, Body: []byte("xyz")}
	b := ev.Encode()
	if want := 14 + len(ev.Body); len(b) != want {
		t.Fatalf("untraced envelope is %d bytes, want %d", len(b), want)
	}
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0 || out.SpanID != 0 {
		t.Fatalf("untraced envelope decoded with a trace context: %+v", out)
	}
}

// TestEnvelopeZeroPaddingIsNotATrace: trailing zero bytes (padded
// frames) must not be misread as a trace trailer.
func TestEnvelopeZeroPaddingIsNotATrace(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 1, Body: []byte("p")}
	b := append(ev.Encode(), make([]byte, 32)...)
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0 || out.SpanID != 0 {
		t.Fatalf("zero padding decoded as a trace context: %+v", out)
	}
}
