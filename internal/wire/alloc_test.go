package wire

import (
	"bytes"
	"testing"
)

// opLessEnvelope is the frame shape of the overwhelming majority of
// simulated traffic: no op-identity trailer, no trace trailer.
func opLessEnvelope() Envelope {
	return Envelope{
		Type:  MsgControl,
		ReqID: 42,
		Body:  []byte("u\x00\x04host\x00\x00\x00\x07\x01\x00\x00\x00\x00"),
	}
}

// TestEncodeOpLessFrameZeroAllocs pins the PERFORMANCE.md contract:
// encoding an op-less envelope through a reused encoder touches the
// allocator zero times once the buffer is warm. A regression here means
// a per-message allocation crept back into the framing hot path.
func TestEncodeOpLessFrameZeroAllocs(t *testing.T) {
	ev := opLessEnvelope()
	enc := NewEncoder(ev.EncodedSize())
	allocs := testing.AllocsPerRun(200, func() {
		enc.Reset()
		ev.EncodeTo(enc)
	})
	if allocs != 0 {
		t.Fatalf("encode of op-less frame: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeOpLessFrameZeroAllocs pins the decode side: borrowing the
// body instead of copying it makes parsing allocation-free.
func TestDecodeOpLessFrameZeroAllocs(t *testing.T) {
	frame := opLessEnvelope().Encode()
	allocs := testing.AllocsPerRun(200, func() {
		ev, err := DecodeEnvelopeBorrow(frame)
		if err != nil || ev.Type != MsgControl {
			t.Fatal("bad decode")
		}
	})
	if allocs != 0 {
		t.Fatalf("borrow-decode of op-less frame: %.1f allocs/op, want 0", allocs)
	}
}

// TestRoundTripOpLessFrameZeroAllocs pins the full encode→decode hot
// path at zero allocations per frame.
func TestRoundTripOpLessFrameZeroAllocs(t *testing.T) {
	ev := opLessEnvelope()
	enc := NewEncoder(ev.EncodedSize())
	allocs := testing.AllocsPerRun(200, func() {
		enc.Reset()
		frame := ev.EncodeTo(enc)
		got, err := DecodeEnvelopeBorrow(frame)
		if err != nil || got.ReqID != ev.ReqID {
			t.Fatal("bad round trip")
		}
	})
	if allocs != 0 {
		t.Fatalf("round trip of op-less frame: %.1f allocs/op, want 0", allocs)
	}
}

// TestEncodeToMatchesEncode proves the reusable-encoder path and the
// allocating path produce byte-identical frames, trailers included.
func TestEncodeToMatchesEncode(t *testing.T) {
	cases := []Envelope{
		opLessEnvelope(),
		{Type: MsgSnapshotReq, ReqID: 7, Body: []byte("abc"), OpID: 99},
		{Type: MsgPing, ReqID: 1, Body: nil, TraceID: 5, SpanID: 6},
		{Type: MsgBroadcast, ReqID: 3, Body: []byte{1, 2, 3}, OpID: 4, TraceID: 8, SpanID: 9},
	}
	enc := NewEncoder(0)
	for _, ev := range cases {
		enc.Reset()
		got := ev.EncodeTo(enc)
		want := ev.Encode()
		if !bytes.Equal(got, want) {
			t.Errorf("%v: EncodeTo %x != Encode %x", ev.Type, got, want)
		}
		if len(want) != ev.EncodedSize() {
			t.Errorf("%v: EncodedSize %d, frame is %d bytes", ev.Type, ev.EncodedSize(), len(want))
		}
	}
}

// TestDecodeBorrowMatchesDecode proves the borrowing parse agrees with
// the copying parse and that the borrowed body aliases the input.
func TestDecodeBorrowMatchesDecode(t *testing.T) {
	ev := Envelope{Type: MsgControl, ReqID: 11, Body: []byte("payload"), OpID: 3, TraceID: 1, SpanID: 2}
	frame := ev.Encode()
	copied, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatal(err)
	}
	borrowed, err := DecodeEnvelopeBorrow(frame)
	if err != nil {
		t.Fatal(err)
	}
	if copied.Type != borrowed.Type || copied.ReqID != borrowed.ReqID ||
		copied.OpID != borrowed.OpID || copied.TraceID != borrowed.TraceID ||
		copied.SpanID != borrowed.SpanID || !bytes.Equal(copied.Body, borrowed.Body) {
		t.Fatalf("borrow decode %+v != copy decode %+v", borrowed, copied)
	}
	// Mutating the frame must show through the borrowed body (alias)
	// but not the copied one.
	frame[15]++
	if bytes.Equal(copied.Body, borrowed.Body) {
		t.Fatal("borrowed body does not alias the input frame")
	}
}

// TestPooledEncoderReuse exercises the Get/Put cycle: frames produced
// across reuses are correct and the pool never hands out an encoder
// with stale bytes.
func TestPooledEncoderReuse(t *testing.T) {
	for i := 0; i < 64; i++ {
		enc := GetEncoder()
		if enc.Len() != 0 {
			t.Fatalf("pooled encoder arrived dirty: %d bytes", enc.Len())
		}
		ev := Envelope{Type: MsgPing, ReqID: uint64(i), Body: []byte{byte(i)}}
		frame := ev.EncodeTo(enc)
		got, err := DecodeEnvelopeBorrow(frame)
		if err != nil || got.ReqID != uint64(i) || got.Body[0] != byte(i) {
			t.Fatalf("reuse %d: decode mismatch (%v, %v)", i, got, err)
		}
		PutEncoder(enc)
	}
	PutEncoder(nil) // must not panic
}

// TestMsgTypeStringTable pins the table-based String against every
// known type plus the out-of-range fallback.
func TestMsgTypeStringTable(t *testing.T) {
	if MsgHello.String() != "Hello" || MsgWatchResp.String() != "WatchResp" {
		t.Fatalf("known names wrong: %q %q", MsgHello.String(), MsgWatchResp.String())
	}
	if MsgType(0).String() != "MsgType(0)" {
		t.Fatalf("zero type: %q", MsgType(0).String())
	}
	if MsgType(999).String() != "MsgType(999)" {
		t.Fatalf("unknown type: %q", MsgType(999).String())
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = MsgControl.String()
	})
	if allocs != 0 {
		t.Fatalf("MsgType.String: %.1f allocs/op, want 0", allocs)
	}
}
