package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ppm/internal/calib"
	"ppm/internal/proc"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	ev := Envelope{Type: MsgControl, ReqID: 42, Body: []byte("payload")}
	got, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgControl || got.ReqID != 42 || string(got.Body) != "payload" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEnvelopeGarbage(t *testing.T) {
	if _, err := DecodeEnvelope([]byte{1, 2}); err == nil {
		t.Fatal("expected error on truncated envelope")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgControl.String() != "Control" || MsgKernelEvent.String() != "KernelEvent" {
		t.Fatal("known names wrong")
	}
	if MsgType(999).String() != "MsgType(999)" {
		t.Fatal("unknown formatting wrong")
	}
}

func TestControlOpStrings(t *testing.T) {
	want := map[ControlOp]string{
		OpStop: "stop", OpForeground: "fg", OpBackground: "bg",
		OpKill: "kill", OpSignal: "signal", ControlOp(9): "op#9",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d: %q != %q", op, op.String(), s)
		}
	}
}

func sampleInfo() proc.Info {
	return proc.Info{
		ID:     proc.GPID{Host: "vax1", PID: 17},
		Parent: proc.GPID{Host: "vax2", PID: 3},
		Name:   "compute",
		User:   "felipe",
		State:  proc.Stopped,
		Rusage: proc.Rusage{
			CPUTime: 3 * time.Second, Syscalls: 120, MsgsSent: 5, MsgsRecv: 7, MaxRSSKB: 640,
		},
		ExitCode:  0,
		StartedAt: time.Second,
		ExitedAt:  0,
	}
}

func TestAllMessageRoundTrips(t *testing.T) {
	stamp := NewStamp([]byte("k"), "vax1", time.Second, 9)
	cases := []struct {
		name   string
		msg    any
		decode func([]byte) (any, error)
		encode func() []byte
	}{
		{
			name: "LPMQuery",
			msg:  LPMQuery{User: "felipe", Token: []byte{1, 2}},
			encode: func() []byte {
				return LPMQuery{User: "felipe", Token: []byte{1, 2}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeLPMQuery(b) },
		},
		{
			name: "LPMQueryResp",
			msg:  LPMQueryResp{OK: true, AcceptHost: "vax1", AcceptPort: 2001, Created: true},
			encode: func() []byte {
				return LPMQueryResp{OK: true, AcceptHost: "vax1", AcceptPort: 2001, Created: true}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeLPMQueryResp(b) },
		},
		{
			name: "Hello",
			msg:  Hello{User: "felipe", FromHost: "vax2", Token: []byte{9}, Stamp: stamp, CCSHost: "vax1", CCSPort: 2001},
			encode: func() []byte {
				return Hello{User: "felipe", FromHost: "vax2", Token: []byte{9}, Stamp: stamp, CCSHost: "vax1", CCSPort: 2001}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeHello(b) },
		},
		{
			name:   "HelloResp",
			msg:    HelloResp{OK: false, Reason: "bad token"},
			encode: func() []byte { return HelloResp{OK: false, Reason: "bad token"}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeHelloResp(b) },
		},
		{
			name: "CreateProc",
			msg:  CreateProc{User: "felipe", Name: "worker", Parent: proc.GPID{Host: "vax1", PID: 4}, Foreground: true},
			encode: func() []byte {
				return CreateProc{User: "felipe", Name: "worker", Parent: proc.GPID{Host: "vax1", PID: 4}, Foreground: true}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeCreateProc(b) },
		},
		{
			name: "CreateAck",
			msg:  CreateAck{OK: true, ID: proc.GPID{Host: "vax2", PID: 31}},
			encode: func() []byte {
				return CreateAck{OK: true, ID: proc.GPID{Host: "vax2", PID: 31}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeCreateAck(b) },
		},
		{
			name: "Control",
			msg:  Control{User: "felipe", Target: proc.GPID{Host: "vax2", PID: 31}, Op: OpSignal, Signal: proc.SIGUSR1},
			encode: func() []byte {
				return Control{User: "felipe", Target: proc.GPID{Host: "vax2", PID: 31}, Op: OpSignal, Signal: proc.SIGUSR1}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeControl(b) },
		},
		{
			name:   "ControlResp",
			msg:    ControlResp{OK: true, State: proc.Stopped},
			encode: func() []byte { return ControlResp{OK: true, State: proc.Stopped}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeControlResp(b) },
		},
		{
			name:   "SnapshotReq",
			msg:    SnapshotReq{User: "felipe", Forward: true},
			encode: func() []byte { return SnapshotReq{User: "felipe", Forward: true}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeSnapshotReq(b) },
		},
		{
			name: "SnapshotResp",
			msg:  SnapshotResp{OK: true, Procs: []proc.Info{sampleInfo()}, Partial: []string{"sun3"}},
			encode: func() []byte {
				return SnapshotResp{OK: true, Procs: []proc.Info{sampleInfo()}, Partial: []string{"sun3"}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeSnapshotResp(b) },
		},
		{
			name: "StatsReq",
			msg:  StatsReq{User: "felipe", Target: proc.GPID{Host: "vax1", PID: 17}},
			encode: func() []byte {
				return StatsReq{User: "felipe", Target: proc.GPID{Host: "vax1", PID: 17}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeStatsReq(b) },
		},
		{
			name:   "StatsResp",
			msg:    StatsResp{OK: true, Info: sampleInfo()},
			encode: func() []byte { return StatsResp{OK: true, Info: sampleInfo()}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeStatsResp(b) },
		},
		{
			name: "HistoryReq",
			msg:  HistoryReq{User: "felipe", Proc: proc.GPID{Host: "vax1", PID: 17}, Kinds: []uint8{1, 3}, Since: time.Second, Limit: 10},
			encode: func() []byte {
				return HistoryReq{User: "felipe", Proc: proc.GPID{Host: "vax1", PID: 17}, Kinds: []uint8{1, 3}, Since: time.Second, Limit: 10}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeHistoryReq(b) },
		},
		{
			name: "HistoryResp",
			msg: HistoryResp{OK: true, Events: []proc.Event{
				{At: time.Second, Kind: proc.EvFork, Proc: proc.GPID{Host: "vax1", PID: 1}, Child: proc.GPID{Host: "vax1", PID: 2}},
			}},
			encode: func() []byte {
				return HistoryResp{OK: true, Events: []proc.Event{
					{At: time.Second, Kind: proc.EvFork, Proc: proc.GPID{Host: "vax1", PID: 1}, Child: proc.GPID{Host: "vax1", PID: 2}},
				}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeHistoryResp(b) },
		},
		{
			name: "FDReq",
			msg:  FDReq{User: "felipe", Target: proc.GPID{Host: "vax1", PID: 17}},
			encode: func() []byte {
				return FDReq{User: "felipe", Target: proc.GPID{Host: "vax1", PID: 17}}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeFDReq(b) },
		},
		{
			name:   "FDResp",
			msg:    FDResp{OK: true, Open: []string{"0:/dev/tty", "3:/tmp/data"}},
			encode: func() []byte { return FDResp{OK: true, Open: []string{"0:/dev/tty", "3:/tmp/data"}}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeFDResp(b) },
		},
		{
			name: "Broadcast",
			msg:  Broadcast{Stamp: stamp, Seq: 7, Route: []string{"vax1", "vax2"}, Inner: []byte("req")},
			encode: func() []byte {
				return Broadcast{Stamp: stamp, Seq: 7, Route: []string{"vax1", "vax2"}, Inner: []byte("req")}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeBroadcast(b) },
		},
		{
			name: "BroadcastResp",
			msg:  BroadcastResp{Seq: 7, From: "sun3", Route: []string{"vax2", "vax1"}, Inner: []byte("resp")},
			encode: func() []byte {
				return BroadcastResp{Seq: 7, From: "sun3", Route: []string{"vax2", "vax1"}, Inner: []byte("resp")}.Encode()
			},
			decode: func(b []byte) (any, error) { return DecodeBroadcastResp(b) },
		},
		{
			name:   "Ping",
			msg:    Ping{FromHost: "vax2", User: "felipe"},
			encode: func() []byte { return Ping{FromHost: "vax2", User: "felipe"}.Encode() },
			decode: func(b []byte) (any, error) { return DecodePing(b) },
		},
		{
			name:   "Pong",
			msg:    Pong{FromHost: "vax1", CCSHost: "vax1", CCSPort: 2001, IsCCS: true},
			encode: func() []byte { return Pong{FromHost: "vax1", CCSHost: "vax1", CCSPort: 2001, IsCCS: true}.Encode() },
			decode: func(b []byte) (any, error) { return DecodePong(b) },
		},
		{
			name:   "CCSUpdate",
			msg:    CCSUpdate{CCSHost: "vax9", CCSPort: 2100},
			encode: func() []byte { return CCSUpdate{CCSHost: "vax9", CCSPort: 2100}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeCCSUpdate(b) },
		},
		{
			name:   "ErrorResp",
			msg:    ErrorResp{Reason: "no such process"},
			encode: func() []byte { return ErrorResp{Reason: "no such process"}.Encode() },
			decode: func(b []byte) (any, error) { return DecodeErrorResp(b) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.decode(tc.encode())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.msg)
			}
			// Every decoder must reject a truncated body.
			enc := tc.encode()
			if len(enc) > 0 {
				if _, err := tc.decode(enc[:len(enc)/2]); err == nil {
					// Some very small messages may decode a prefix validly
					// (e.g. a lone bool); only flag clearly structured ones.
					if len(enc) > 8 {
						t.Fatalf("truncated decode should fail (len %d)", len(enc))
					}
				}
			}
		})
	}
}

func TestKernelEventIsExactly112Bytes(t *testing.T) {
	evs := []proc.Event{
		{},
		{At: time.Second, Kind: proc.EvFork, Proc: proc.GPID{Host: "vax1", PID: 1}, Child: proc.GPID{Host: "vax1", PID: 2}},
		{Kind: proc.EvExit, Proc: proc.GPID{Host: "a-very-long-host-name-indeed", PID: 12345},
			Detail: "a detail string that is far too long to fit", Rusage: proc.Rusage{CPUTime: time.Hour}},
	}
	for i, ev := range evs {
		b := EncodeKernelEvent(ev)
		if len(b) != calib.KernelMsgBytes {
			t.Fatalf("case %d: len = %d, want %d", i, len(b), calib.KernelMsgBytes)
		}
	}
}

func TestKernelEventRoundTrip(t *testing.T) {
	ev := proc.Event{
		At:     1500 * time.Millisecond,
		Kind:   proc.EvExit,
		Proc:   proc.GPID{Host: "vax1", PID: 9},
		Signal: proc.SIGTERM,
		Rusage: proc.Rusage{CPUTime: 2 * time.Second, Syscalls: 44},
	}
	got, err := DecodeKernelEvent(EncodeKernelEvent(ev))
	if err != nil {
		t.Fatal(err)
	}
	if got.At != ev.At || got.Kind != ev.Kind || got.Proc != ev.Proc ||
		got.Signal != ev.Signal || got.Rusage.Syscalls != 44 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestKernelEventTruncatesLongFields(t *testing.T) {
	ev := proc.Event{
		Kind:   proc.EvExec,
		Proc:   proc.GPID{Host: "host-name-that-is-way-over-fourteen-bytes", PID: 1},
		Detail: "this detail exceeds sixteen bytes easily",
	}
	got, err := DecodeKernelEvent(EncodeKernelEvent(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Proc.Host) > 14 || len(got.Detail) > 16 {
		t.Fatalf("fields not truncated: %+v", got)
	}
}

func TestStampVerify(t *testing.T) {
	key := []byte("user-secret")
	s := NewStamp(key, "vax1", time.Second, 3)
	if !s.Verify(key) {
		t.Fatal("valid stamp rejected")
	}
	if s.Verify([]byte("other-key")) {
		t.Fatal("stamp verified under wrong key")
	}
	forged := s
	forged.Origin = "evil"
	if forged.Verify(key) {
		t.Fatal("forged origin accepted")
	}
}

func TestStampKeyUniqueAndStable(t *testing.T) {
	key := []byte("k")
	a := NewStamp(key, "vax1", time.Second, 1)
	b := NewStamp(key, "vax1", time.Second, 2)
	c := NewStamp(key, "vax2", time.Second, 1)
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Fatal("stamp keys should differ across seq and origin")
	}
	if a.Key() != NewStamp(key, "vax1", time.Second, 1).Key() {
		t.Fatal("stamp key should be deterministic")
	}
}

func TestStampEncodePreservesSignature(t *testing.T) {
	key := []byte("k")
	s := NewStamp(key, "vax1", 5*time.Second, 8)
	e := NewEncoder(0)
	s.encode(e)
	d := NewDecoder(e.Bytes())
	got := decodeStamp(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if !got.Verify(key) {
		t.Fatal("decoded stamp failed verification")
	}
	if !bytes.Equal(got.Sig, s.Sig) {
		t.Fatal("signature corrupted")
	}
}

func TestFloodResultRoundTrip(t *testing.T) {
	m := FloodResult{OK: true, Count: 7, Procs: []proc.Info{sampleInfo()}, Partial: []string{"sun3"}}
	got, err := DecodeFloodResult(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	dup := FloodResult{Dup: true}
	got2, err := DecodeFloodResult(dup.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Dup || got2.OK {
		t.Fatalf("dup round trip: %+v", got2)
	}
}

func TestRelayRoundTrip(t *testing.T) {
	m := Relay{User: "felipe", Dest: "sun3", Path: []string{"vax2", "sun3"}, Inner: []byte("req")}
	got, err := DecodeRelay(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v", got)
	}
	r := RelayResp{OK: true, Inner: []byte("resp")}
	got2, err := DecodeRelayResp(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, r) {
		t.Fatalf("round trip: %+v", got2)
	}
}

func TestFloodResultRoutesRoundTrip(t *testing.T) {
	m := FloodResult{OK: true, Hosts: []string{"b", "c"}, Routes: []string{"a/b", "a/b/c"}}
	got, err := DecodeFloodResult(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestWatchReqRoundTrip(t *testing.T) {
	m := WatchReq{
		User: "felipe", Kind: 3, Signal: proc.SIGUSR1,
		Proc: proc.GPID{Host: "b", PID: 9},
		Op:   OpKill, ActionSig: proc.SIGTERM,
		Target: proc.GPID{Host: "a", PID: 4},
	}
	got, err := DecodeWatchReq(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v", got)
	}
	rm := WatchReq{User: "felipe", Remove: true, ID: 7}
	got2, err := DecodeWatchReq(rm.Encode())
	if err != nil || !got2.Remove || got2.ID != 7 {
		t.Fatalf("remove round trip: %+v err=%v", got2, err)
	}
	resp := WatchResp{OK: true, ID: 42}
	got3, err := DecodeWatchResp(resp.Encode())
	if err != nil || !reflect.DeepEqual(got3, resp) {
		t.Fatalf("resp round trip: %+v err=%v", got3, err)
	}
}
