package wire

import (
	"testing"

	"ppm/internal/journal"
)

// TestOpSpecsManifestTotal: every protocol op has a manifest row with a
// unique trace name (names derive the per-op counter pair, so a
// duplicate would merge two ops' accounting), a valid dispatch role,
// and a registered journal kind. The ordinal space is contiguous from
// 1, so a constant added without a row shows up as an empty row here —
// the same hole ppmlint's wireop analyzer reports statically.
func TestOpSpecsManifestTotal(t *testing.T) {
	seen := make(map[string]MsgType)
	for i := 1; i < len(opSpecs); i++ {
		op := MsgType(i)
		s := opSpecs[op]
		if s.name == "" {
			t.Errorf("op ordinal %d has no opSpecs row", i)
			continue
		}
		if prev, dup := seen[s.name]; dup {
			t.Errorf("op %d shares wire name %q (and its counter pair) with op %d", i, s.name, prev)
		}
		seen[s.name] = op
		if s.role != roleRequest && s.role != roleResponse && s.role != roleEvent {
			t.Errorf("%s: invalid role %d", s.name, s.role)
		}
		if !journal.ValidKind(s.kind) {
			t.Errorf("%s: journal kind %q is not a registered kind", s.name, s.kind)
		}
		if op.String() != s.name {
			t.Errorf("MsgType(%d).String() = %q, want manifest name %q", i, op.String(), s.name)
		}
	}
}

// TestMsgCounterNamesDerived: the precomputed counter pair for every
// manifest row matches the name-derived convention the fallback path
// in count uses.
func TestMsgCounterNamesDerived(t *testing.T) {
	for i := 1; i < len(opSpecs); i++ {
		if opSpecs[i].name == "" {
			continue
		}
		want := "wire.msgs." + opSpecs[i].name
		if msgCounterNames[i].msgs != want {
			t.Errorf("op %d: counter %q, want %q", i, msgCounterNames[i].msgs, want)
		}
	}
}

// TestOpJournalKind: the manifest's journal column resolves for known
// ops and degrades to the generic wire.decode kind for unknown ones.
func TestOpJournalKind(t *testing.T) {
	if got := OpJournalKind(MsgCreateProc); got != journal.LPMAdopt {
		t.Errorf("OpJournalKind(MsgCreateProc) = %q, want %q", got, journal.LPMAdopt)
	}
	if got := OpJournalKind(MsgStatusReq); got != journal.StatusRequest {
		t.Errorf("OpJournalKind(MsgStatusReq) = %q, want %q", got, journal.StatusRequest)
	}
	if got := OpJournalKind(MsgType(999)); got != journal.WireDecode {
		t.Errorf("OpJournalKind(unknown) = %q, want %q", got, journal.WireDecode)
	}
}
