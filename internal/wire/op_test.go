package wire

import "testing"

// TestEnvelopeOpIDTrailerRoundTrip: the operation identity rides the
// optional trailer and comes back on decode, alongside the trace
// context when both are present.
func TestEnvelopeOpIDTrailerRoundTrip(t *testing.T) {
	ev := Envelope{Type: MsgControl, ReqID: 42, Body: []byte("body"), OpID: 99}
	out, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 99 {
		t.Fatalf("op id lost: got %d, want 99", out.OpID)
	}
	if out.Type != ev.Type || out.ReqID != ev.ReqID || string(out.Body) != "body" {
		t.Fatalf("payload corrupted by trailer: %+v", out)
	}

	ev.SetTrace(7, 13)
	out, err = DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 99 || out.TraceID != 7 || out.SpanID != 13 {
		t.Fatalf("combined trailers lost: %+v", out)
	}
}

// TestEnvelopeWithoutOpIDUnchanged: without an operation identity the
// frame is byte-identical to the pre-trailer format, and retransmitting
// the same op under a new ReqID changes only the ReqID field.
func TestEnvelopeWithoutOpIDUnchanged(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 9, Body: []byte("xyz")}
	b := ev.Encode()
	if want := 14 + len(ev.Body); len(b) != want {
		t.Fatalf("op-less envelope is %d bytes, want %d", len(b), want)
	}
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 0 {
		t.Fatalf("op-less envelope decoded with op id %d", out.OpID)
	}
}

// TestEnvelopeZeroPaddingIsNotAnOp: trailing zero bytes must not be
// misread as an operation-identity trailer.
func TestEnvelopeZeroPaddingIsNotAnOp(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 1, Body: []byte("p")}
	b := append(ev.Encode(), make([]byte, 32)...)
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 0 {
		t.Fatalf("zero padding decoded as op id %d", out.OpID)
	}
}

// TestReplyCachePutGet: cached replies come back under their op key;
// unknown keys miss.
func TestReplyCachePutGet(t *testing.T) {
	c := NewReplyCache(4)
	key := OpKey("vax1", 7)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key, MsgControlResp, []byte("resp"))
	r, ok := c.Get(key)
	if !ok || r.Type != MsgControlResp || string(r.Body) != "resp" {
		t.Fatalf("get = %+v ok=%v", r, ok)
	}
	if _, ok := c.Get(OpKey("vax2", 7)); ok {
		t.Fatal("same op from another origin must be a distinct key")
	}
}

// TestReplyCacheEvictsOldestFirst: the cache is a FIFO bounded by its
// capacity; re-putting an existing key overwrites in place.
func TestReplyCacheEvictsOldestFirst(t *testing.T) {
	c := NewReplyCache(2)
	c.Put(OpKey("h", 1), MsgPong, []byte("1"))
	c.Put(OpKey("h", 2), MsgPong, []byte("2"))
	c.Put(OpKey("h", 1), MsgPong, []byte("1b")) // overwrite, no growth
	if c.Len() != 2 {
		t.Fatalf("len = %d after overwrite", c.Len())
	}
	c.Put(OpKey("h", 3), MsgPong, []byte("3")) // evicts op 1, the oldest
	if _, ok := c.Get(OpKey("h", 1)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, op := range []uint64{2, 3} {
		if _, ok := c.Get(OpKey("h", op)); !ok {
			t.Fatalf("op %d evicted out of order", op)
		}
	}
}

// TestReplyCacheDefaultCapacity: a non-positive capacity falls back to
// the default and the cache stays bounded under churn.
func TestReplyCacheDefaultCapacity(t *testing.T) {
	c := NewReplyCache(0)
	for op := uint64(1); op <= 3*DefaultReplyCacheCapacity; op++ {
		c.Put(OpKey("h", op), MsgPong, nil)
	}
	if c.Len() != DefaultReplyCacheCapacity {
		t.Fatalf("len = %d, want %d", c.Len(), DefaultReplyCacheCapacity)
	}
}
