package wire

import (
	"testing"
	"time"
)

// TestEnvelopeOpIDTrailerRoundTrip: the operation identity rides the
// optional trailer and comes back on decode, alongside the trace
// context when both are present.
func TestEnvelopeOpIDTrailerRoundTrip(t *testing.T) {
	ev := Envelope{Type: MsgControl, ReqID: 42, Body: []byte("body"), OpID: 99}
	out, err := DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 99 {
		t.Fatalf("op id lost: got %d, want 99", out.OpID)
	}
	if out.Type != ev.Type || out.ReqID != ev.ReqID || string(out.Body) != "body" {
		t.Fatalf("payload corrupted by trailer: %+v", out)
	}

	ev.SetTrace(7, 13)
	out, err = DecodeEnvelope(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 99 || out.TraceID != 7 || out.SpanID != 13 {
		t.Fatalf("combined trailers lost: %+v", out)
	}
}

// TestEnvelopeWithoutOpIDUnchanged: without an operation identity the
// frame is byte-identical to the pre-trailer format, and retransmitting
// the same op under a new ReqID changes only the ReqID field.
func TestEnvelopeWithoutOpIDUnchanged(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 9, Body: []byte("xyz")}
	b := ev.Encode()
	if want := 14 + len(ev.Body); len(b) != want {
		t.Fatalf("op-less envelope is %d bytes, want %d", len(b), want)
	}
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 0 {
		t.Fatalf("op-less envelope decoded with op id %d", out.OpID)
	}
}

// TestEnvelopeZeroPaddingIsNotAnOp: trailing zero bytes must not be
// misread as an operation-identity trailer.
func TestEnvelopeZeroPaddingIsNotAnOp(t *testing.T) {
	ev := Envelope{Type: MsgPing, ReqID: 1, Body: []byte("p")}
	b := append(ev.Encode(), make([]byte, 32)...)
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.OpID != 0 {
		t.Fatalf("zero padding decoded as op id %d", out.OpID)
	}
}

// TestReplyCachePutGet: cached replies come back under their op key;
// unknown keys miss, and both the origin and the incarnation
// distinguish keys.
func TestReplyCachePutGet(t *testing.T) {
	c := NewReplyCache(time.Minute)
	key := OpKey("vax1", 30, 7)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key, MsgControlResp, []byte("resp"), 0)
	r, ok := c.Get(key)
	if !ok || r.Type != MsgControlResp || string(r.Body) != "resp" {
		t.Fatalf("get = %+v ok=%v", r, ok)
	}
	if _, ok := c.Get(OpKey("vax2", 30, 7)); ok {
		t.Fatal("same op from another origin must be a distinct key")
	}
	if _, ok := c.Get(OpKey("vax1", 31, 7)); ok {
		t.Fatal("same op from another incarnation must be a distinct key")
	}
}

// TestReplyCacheEvictsByAge: entries older than the window are evicted
// on the next insertion; entries still inside it survive any amount of
// churn (a count bound would let a burst evict a replayable entry).
// Re-putting an existing key overwrites in place.
func TestReplyCacheEvictsByAge(t *testing.T) {
	c := NewReplyCache(time.Minute)
	c.Put(OpKey("h", 1, 1), MsgPong, []byte("1"), 0)
	c.Put(OpKey("h", 1, 2), MsgPong, []byte("2"), 30*time.Second)
	c.Put(OpKey("h", 1, 1), MsgPong, []byte("1b"), 40*time.Second) // overwrite, no growth
	if c.Len() != 2 {
		t.Fatalf("len = %d after overwrite", c.Len())
	}
	// At t=70s op 1 (inserted at t=0) has outlived the window; op 2 has
	// not.
	c.Put(OpKey("h", 1, 3), MsgPong, []byte("3"), 70*time.Second)
	if _, ok := c.Get(OpKey("h", 1, 1)); ok {
		t.Fatal("expired entry survived eviction")
	}
	for _, op := range []uint64{2, 3} {
		if _, ok := c.Get(OpKey("h", 1, op)); !ok {
			t.Fatalf("op %d evicted while still in the window", op)
		}
	}
}

// TestReplyCacheWindowBoundsChurn: a non-positive window falls back to
// the default, and steady traffic keeps only the live window resident.
func TestReplyCacheWindowBoundsChurn(t *testing.T) {
	c := NewReplyCache(0)
	step := time.Second
	for op := uint64(1); op <= 1000; op++ {
		c.Put(OpKey("h", 1, op), MsgPong, nil, time.Duration(op)*step)
	}
	want := int(DefaultReplyCacheWindow/step) + 1 // entries within the window
	if c.Len() != want {
		t.Fatalf("len = %d, want %d (one window of traffic)", c.Len(), want)
	}
}

// TestReplyCachePurgePrefix: purging one incarnation's prefix removes
// exactly its entries and leaves other incarnations and origins alone.
func TestReplyCachePurgePrefix(t *testing.T) {
	c := NewReplyCache(time.Minute)
	c.Put(OpKey("a", 1, 1), MsgPong, nil, 0)
	c.Put(OpKey("a", 1, 2), MsgPong, nil, 0)
	c.Put(OpKey("a", 2, 1), MsgPong, nil, 0)
	c.Put(OpKey("b", 1, 1), MsgPong, nil, 0)
	if n := c.PurgePrefix(OpPrefix("a", 1)); n != 2 {
		t.Fatalf("purged %d entries, want 2", n)
	}
	if _, ok := c.Get(OpKey("a", 1, 1)); ok {
		t.Fatal("purged entry still present")
	}
	for _, key := range []string{OpKey("a", 2, 1), OpKey("b", 1, 1)} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("unrelated entry %s purged", key)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d after purge, want 2", c.Len())
	}
}
