// Package perf defines the benchmark result format shared by the
// ppmbench harness and its regression comparator: a schema-versioned
// JSON report (BENCH_<n>.json at the repository root) holding one
// record per curated micro-benchmark, and a comparison that classifies
// each benchmark's drift between two reports.
//
// The package is deliberately clock-free and filesystem-free — it only
// encodes, parses and compares — so it can be used from tests and from
// the determinism-linted tree alike. Reading the wall clock and
// walking the repository happen in cmd/ppmbench.
//
// Comparison policy (PERFORMANCE.md "Reading a regression"):
//
//   - allocs/op is deterministic for a fixed toolchain, so any
//     increase is a regression at threshold zero — no noise margin.
//   - ns/op is wall-clock noisy; drift beyond a percentage threshold
//     of the old value counts as a regression, improvement otherwise.
//   - a benchmark present in the baseline but missing from the new
//     report is always a regression (the suite silently shrank).
package perf

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Schema is the report format identifier. Bump the suffix when the
// field set changes incompatibly; Parse rejects any other value so a
// stale comparator never misreads a newer report.
const Schema = "ppmbench/v1"

// Result is one benchmark's measurement.
type Result struct {
	// Name is the benchmark's stable identifier ("wire/encode", ...).
	Name string `json:"name"`
	// Iterations is the number of iterations the harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is allocated bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra carries benchmark-specific metrics, e.g. "msgs/sec": the
	// virtual-traffic message rate per wall-clock second for the
	// end-to-end scenarios.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is one BENCH_<n>.json: the full suite run at one commit.
type Report struct {
	// SchemaVersion must equal Schema.
	SchemaVersion string `json:"schema"`
	// Seq is the report's sequence number n in BENCH_<n>.json.
	Seq int `json:"seq"`
	// Commit optionally records the git revision measured.
	Commit string `json:"commit,omitempty"`
	// Note optionally records why this report was taken.
	Note string `json:"note,omitempty"`
	// Benchmarks holds one Result per suite entry, in suite order.
	Benchmarks []Result `json:"benchmarks"`
}

// Encode renders the report as indented JSON with a trailing newline,
// the canonical on-disk form.
func (r *Report) Encode() ([]byte, error) {
	if r.SchemaVersion == "" {
		r.SchemaVersion = Schema
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a report and validates its schema version. A report
// written by an incompatible harness fails here rather than comparing
// garbage.
func Parse(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: bad report: %w", err)
	}
	if r.SchemaVersion != Schema {
		return nil, fmt.Errorf("perf: schema %q, want %q", r.SchemaVersion, Schema)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: report has no benchmarks")
	}
	seen := make(map[string]bool, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("perf: benchmark with empty name")
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("perf: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
	return &r, nil
}

// Verdict classifies one benchmark's drift.
type Verdict int

// The verdicts, from best to worst.
const (
	Improved Verdict = iota
	Unchanged
	New     // present only in the new report
	Missing // present only in the baseline: always a regression
	Slower  // ns/op drifted past the threshold
	MoreAllocs
)

func (v Verdict) String() string {
	switch v {
	case Improved:
		return "improved"
	case Unchanged:
		return "ok"
	case New:
		return "new"
	case Missing:
		return "MISSING"
	case Slower:
		return "SLOWER"
	case MoreAllocs:
		return "MORE ALLOCS"
	}
	return "?"
}

// Regression reports whether the verdict should fail a strict compare.
func (v Verdict) Regression() bool {
	return v == Missing || v == Slower || v == MoreAllocs
}

// Delta is one benchmark's comparison row.
type Delta struct {
	Name    string
	Old     Result
	NewR    Result
	NsPct   float64 // (new-old)/old * 100; 0 when old ns/op is 0
	Verdict Verdict
}

// Comparison is the outcome of comparing a new report to a baseline.
type Comparison struct {
	// Deltas holds one row per benchmark name in either report,
	// sorted by name.
	Deltas []Delta
	// Threshold is the ns/op drift percentage applied.
	Threshold float64
}

// Regressions counts rows whose verdict is a regression.
func (c Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Verdict.Regression() {
			n++
		}
	}
	return n
}

// Compare classifies every benchmark of the new report against the
// baseline. thresholdPct bounds acceptable ns/op growth (e.g. 25 means
// +25% is tolerated); allocs/op tolerates no growth at all.
func Compare(old, new *Report, thresholdPct float64) Comparison {
	oldBy := make(map[string]Result, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Result, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newBy[b.Name] = b
	}
	names := make([]string, 0, len(oldBy)+len(newBy))
	for n := range oldBy {
		names = append(names, n)
	}
	for n := range newBy {
		if _, dup := oldBy[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	c := Comparison{Threshold: thresholdPct}
	for _, name := range names {
		o, haveOld := oldBy[name]
		nw, haveNew := newBy[name]
		d := Delta{Name: name, Old: o, NewR: nw}
		switch {
		case !haveNew:
			d.Verdict = Missing
		case !haveOld:
			d.Verdict = New
		default:
			if o.NsPerOp > 0 {
				d.NsPct = (nw.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			}
			switch {
			case nw.AllocsPerOp > o.AllocsPerOp:
				d.Verdict = MoreAllocs
			case d.NsPct > thresholdPct:
				d.Verdict = Slower
			case nw.AllocsPerOp < o.AllocsPerOp || d.NsPct < -thresholdPct:
				d.Verdict = Improved
			default:
				d.Verdict = Unchanged
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// Format renders the comparison as an aligned text table, one row per
// benchmark, with a trailing summary line.
func (c Comparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %14s %8s %14s %s\n",
		"benchmark", "old ns/op", "new ns/op", "ns ±%", "allocs/op", "verdict")
	for _, d := range c.Deltas {
		oldNs, newNs, pct, allocs := "-", "-", "-", "-"
		if d.Verdict != New {
			oldNs = formatNs(d.Old.NsPerOp)
		}
		if d.Verdict != Missing {
			newNs = formatNs(d.NewR.NsPerOp)
		}
		if d.Verdict != New && d.Verdict != Missing {
			pct = fmt.Sprintf("%+.1f", d.NsPct)
			allocs = fmt.Sprintf("%d -> %d", d.Old.AllocsPerOp, d.NewR.AllocsPerOp)
		}
		fmt.Fprintf(&b, "%-24s %14s %14s %8s %14s %s\n",
			d.Name, oldNs, newNs, pct, allocs, d.Verdict)
	}
	fmt.Fprintf(&b, "%d benchmarks, %d regressions (ns/op threshold %+.0f%%, allocs/op threshold 0)\n",
		len(c.Deltas), c.Regressions(), c.Threshold)
	return b.String()
}

func formatNs(ns float64) string {
	if ns >= 100 {
		return strconv.FormatFloat(ns, 'f', 0, 64)
	}
	return strconv.FormatFloat(ns, 'f', 2, 64)
}

// NextSeq returns the sequence number the next report should carry,
// given the BENCH_<n>.json basenames already present (unparsable names
// are ignored). An empty history yields 1.
func NextSeq(names []string) int {
	max := 0
	for _, n := range names {
		var seq int
		if _, err := fmt.Sscanf(n, "BENCH_%d.json", &seq); err == nil && seq > max {
			max = seq
		}
	}
	return max + 1
}
