package perf

import (
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		SchemaVersion: Schema,
		Seq:           1,
		Benchmarks: []Result{
			{Name: "wire/encode", Iterations: 1000, NsPerOp: 50, BytesPerOp: 0, AllocsPerOp: 0},
			{Name: "sim/step", Iterations: 500, NsPerOp: 120, BytesPerOp: 16, AllocsPerOp: 1,
				Extra: map[string]float64{"events/sec": 8e6}},
		},
	}
}

// TestReportRoundTrip pins emit -> parse: the canonical on-disk form
// decodes back to the same report.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("encoded report must end in a newline")
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != Schema || got.Seq != 1 || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if got.Benchmarks[1].Extra["events/sec"] != 8e6 {
		t.Fatalf("extra metric lost: %+v", got.Benchmarks[1])
	}
}

// TestEncodeStampsSchema proves Encode fills in the schema version so a
// harness cannot emit an unversioned report by accident.
func TestEncodeStampsSchema(t *testing.T) {
	r := &Report{Seq: 3, Benchmarks: []Result{{Name: "x"}}}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("encoded report does not parse: %v", err)
	}
}

func TestParseRejectsSchemaMismatch(t *testing.T) {
	cases := map[string]string{
		"future version": `{"schema":"ppmbench/v2","benchmarks":[{"name":"a"}]}`,
		"missing schema": `{"benchmarks":[{"name":"a"}]}`,
		"not json":       `ns/op 123`,
		"empty suite":    `{"schema":"ppmbench/v1","benchmarks":[]}`,
		"unnamed bench":  `{"schema":"ppmbench/v1","benchmarks":[{"ns_per_op":1}]}`,
		"duplicate name": `{"schema":"ppmbench/v1","benchmarks":[{"name":"a"},{"name":"a"}]}`,
	}
	for label, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse accepted %q", label, data)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	old := &Report{SchemaVersion: Schema, Benchmarks: []Result{
		{Name: "same", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "faster", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "slower", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "allocs", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "gone", NsPerOp: 100, AllocsPerOp: 2},
	}}
	nw := &Report{SchemaVersion: Schema, Benchmarks: []Result{
		{Name: "same", NsPerOp: 104, AllocsPerOp: 2},
		{Name: "faster", NsPerOp: 40, AllocsPerOp: 2},
		{Name: "slower", NsPerOp: 160, AllocsPerOp: 2},
		{Name: "allocs", NsPerOp: 100, AllocsPerOp: 3},
		{Name: "fresh", NsPerOp: 10, AllocsPerOp: 0},
	}}
	c := Compare(old, nw, 25)
	want := map[string]Verdict{
		"allocs": MoreAllocs,
		"faster": Improved,
		"fresh":  New,
		"gone":   Missing,
		"same":   Unchanged,
		"slower": Slower,
	}
	if len(c.Deltas) != len(want) {
		t.Fatalf("deltas = %d, want %d", len(c.Deltas), len(want))
	}
	for _, d := range c.Deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s: verdict %v, want %v", d.Name, d.Verdict, want[d.Name])
		}
	}
	if got := c.Regressions(); got != 3 {
		t.Fatalf("regressions = %d, want 3 (allocs, gone, slower)", got)
	}
	// Rows are sorted by name for a stable table.
	for i := 1; i < len(c.Deltas); i++ {
		if c.Deltas[i-1].Name >= c.Deltas[i].Name {
			t.Fatalf("deltas not sorted: %q before %q", c.Deltas[i-1].Name, c.Deltas[i].Name)
		}
	}
}

// TestCompareAllocsAreStrict pins the policy: a one-alloc increase is a
// regression even when ns/op improved and the threshold is generous.
func TestCompareAllocsAreStrict(t *testing.T) {
	old := &Report{Benchmarks: []Result{{Name: "b", NsPerOp: 100, AllocsPerOp: 0}}}
	nw := &Report{Benchmarks: []Result{{Name: "b", NsPerOp: 10, AllocsPerOp: 1}}}
	c := Compare(old, nw, 1000)
	if c.Deltas[0].Verdict != MoreAllocs || c.Regressions() != 1 {
		t.Fatalf("want MoreAllocs regression, got %+v", c.Deltas[0])
	}
}

// TestCompareMissingBenchmark pins that a silently shrunken suite fails
// the compare: losing a benchmark is a regression, not a skip.
func TestCompareMissingBenchmark(t *testing.T) {
	old := &Report{Benchmarks: []Result{
		{Name: "kept", NsPerOp: 10},
		{Name: "dropped", NsPerOp: 10},
	}}
	nw := &Report{Benchmarks: []Result{{Name: "kept", NsPerOp: 10}}}
	c := Compare(old, nw, 25)
	if c.Regressions() != 1 {
		t.Fatalf("regressions = %d, want 1", c.Regressions())
	}
	for _, d := range c.Deltas {
		if d.Name == "dropped" && d.Verdict != Missing {
			t.Fatalf("dropped: verdict %v, want Missing", d.Verdict)
		}
	}
}

func TestFormatMentionsEveryRow(t *testing.T) {
	old := &Report{Benchmarks: []Result{{Name: "a", NsPerOp: 100, AllocsPerOp: 1}}}
	nw := &Report{Benchmarks: []Result{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "b", NsPerOp: 5, AllocsPerOp: 0},
	}}
	out := Compare(old, nw, 25).Format()
	for _, want := range []string{"a", "b", "2 benchmarks", "0 regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestNextSeq(t *testing.T) {
	cases := []struct {
		names []string
		want  int
	}{
		{nil, 1},
		{[]string{"BENCH_1.json"}, 2},
		{[]string{"BENCH_2.json", "BENCH_1.json", "BENCH_9.json"}, 10},
		{[]string{"BENCH_x.json", "notes.txt"}, 1},
	}
	for _, c := range cases {
		if got := NextSeq(c.names); got != c.want {
			t.Errorf("NextSeq(%v) = %d, want %d", c.names, got, c.want)
		}
	}
}
