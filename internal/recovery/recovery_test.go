package recovery

import (
	"testing"
	"time"

	"ppm/internal/sim"
)

// fakeEnv scripts the environment: which hosts are reachable, and what
// the manager did.
type fakeEnv struct {
	sched     *sim.Scheduler
	host      string
	reachable map[string]bool
	siblings  bool

	probes     []string
	connects   []string
	announced  []string
	redials    []string
	terminated bool
}

func (f *fakeEnv) HostName() string { return f.host }

func (f *fakeEnv) After(d time.Duration, fn func()) sim.Timer {
	return f.sched.After(d, fn)
}

func (f *fakeEnv) ProbeHost(host string, cb func(bool)) {
	f.probes = append(f.probes, host)
	ok := f.reachable[host]
	f.sched.After(10*time.Millisecond, func() { cb(ok) })
}

func (f *fakeEnv) ConnectCCS(host string, cb func(bool)) {
	f.connects = append(f.connects, host)
	ok := f.reachable[host]
	f.sched.After(10*time.Millisecond, func() { cb(ok) })
}

func (f *fakeEnv) AnnounceCCS(host string) { f.announced = append(f.announced, host) }
func (f *fakeEnv) TerminateAll()           { f.terminated = true }
func (f *fakeEnv) HaveSiblings() bool      { return f.siblings }

func (f *fakeEnv) RedialSibling(host string, cb func(bool)) {
	f.redials = append(f.redials, host)
	ok := f.reachable[host]
	f.sched.After(10*time.Millisecond, func() { cb(ok) })
}

func newFake(host string, reachable ...string) *fakeEnv {
	f := &fakeEnv{
		sched:     sim.NewScheduler(1),
		host:      host,
		reachable: make(map[string]bool),
	}
	for _, h := range reachable {
		f.reachable[h] = true
	}
	return f
}

func run(t *testing.T, f *fakeEnv, d time.Duration) {
	t.Helper()
	if err := f.sched.RunFor(d); err != nil {
		t.Fatal(err)
	}
}

func TestInitialSetCCS(t *testing.T) {
	f := newFake("vax2")
	m := New(f, Config{List: []string{"vax1", "vax2"}})
	m.SetCCS("vax1")
	if m.CCS() != "vax1" || m.State() != Normal || m.IsCCS() {
		t.Fatalf("ccs=%q state=%v isccs=%v", m.CCS(), m.State(), m.IsCCS())
	}
}

func TestLostCCSFailsOverToNextOnList(t *testing.T) {
	f := newFake("vax3", "vax2") // vax1 (old CCS) dead, vax2 alive
	m := New(f, Config{List: []string{"vax1", "vax2", "vax3"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.CCS() != "vax2" || m.State() != Normal {
		t.Fatalf("ccs=%q state=%v", m.CCS(), m.State())
	}
	// The walk probed vax1 first (priority order), then vax2.
	if len(f.probes) < 2 || f.probes[0] != "vax1" || f.probes[1] != "vax2" {
		t.Fatalf("probes = %v", f.probes)
	}
	if len(f.announced) != 1 || f.announced[0] != "vax2" {
		t.Fatalf("announced = %v", f.announced)
	}
}

func TestSelfOnListBecomesCCS(t *testing.T) {
	f := newFake("vax2") // nothing reachable
	m := New(f, Config{List: []string{"vax1", "vax2", "vax3"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if !m.IsCCS() {
		t.Fatalf("should have become CCS: ccs=%q state=%v", m.CCS(), m.State())
	}
	// And as a non-top CCS it must probe vax1 at low frequency.
	run(t, f, time.Minute)
	found := false
	for _, p := range f.probes {
		if p == "vax1" {
			found = true
		}
	}
	if !found {
		t.Fatal("non-top CCS never probed the higher-priority host")
	}
}

func TestPartitionRejoinDemotesCCS(t *testing.T) {
	f := newFake("vax2")
	m := New(f, Config{List: []string{"vax1", "vax2"}, ProbeEvery: 10 * time.Second})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1") // partition: vax1 unreachable
	run(t, f, time.Second)
	if !m.IsCCS() {
		t.Fatal("setup: vax2 should be acting CCS")
	}
	// Heal the partition: vax1 reachable again.
	f.reachable["vax1"] = true
	run(t, f, 30*time.Second)
	if m.CCS() != "vax1" {
		t.Fatalf("after heal ccs=%q, want vax1", m.CCS())
	}
	if m.IsCCS() {
		t.Fatal("vax2 should have demoted itself")
	}
	// Announcement of the restored CCS went out.
	last := f.announced[len(f.announced)-1]
	if last != "vax1" {
		t.Fatalf("announced = %v", f.announced)
	}
}

func TestIsolationTimeToDie(t *testing.T) {
	f := newFake("vax3") // nothing reachable, self not on list
	m := New(f, Config{
		List:       []string{"vax1", "vax2"},
		TimeToDie:  time.Minute,
		RetryEvery: 20 * time.Second,
	})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.State() != Isolated {
		t.Fatalf("state = %v, want isolated", m.State())
	}
	run(t, f, 2*time.Minute)
	if !f.terminated || !m.Terminated {
		t.Fatal("time-to-die never fired")
	}
}

func TestIsolationRescuedByRetry(t *testing.T) {
	f := newFake("vax3")
	m := New(f, Config{
		List:       []string{"vax1", "vax2"},
		TimeToDie:  5 * time.Minute,
		RetryEvery: 10 * time.Second,
	})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.State() != Isolated {
		t.Fatal("setup: not isolated")
	}
	// vax2 comes back before time-to-die.
	f.reachable["vax2"] = true
	run(t, f, 30*time.Second)
	if m.State() != Normal || m.CCS() != "vax2" {
		t.Fatalf("state=%v ccs=%q", m.State(), m.CCS())
	}
	run(t, f, 10*time.Minute)
	if f.terminated {
		t.Fatal("time-to-die fired after rescue")
	}
}

func TestIsolationRescuedByContact(t *testing.T) {
	f := newFake("vax3")
	m := New(f, Config{List: []string{"vax1"}, TimeToDie: time.Minute})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.State() != Isolated {
		t.Fatal("setup: not isolated")
	}
	// A request arrives from an LPM in contact with a valid CCS.
	m.OnContact("vax5")
	if m.State() != Normal || m.CCS() != "vax5" {
		t.Fatalf("state=%v ccs=%q", m.State(), m.CCS())
	}
	run(t, f, 10*time.Minute)
	if f.terminated {
		t.Fatal("time-to-die fired after contact rescue")
	}
}

func TestOnContactDoesNotOverrideNormal(t *testing.T) {
	f := newFake("vax2")
	m := New(f, Config{List: []string{"vax1"}})
	m.SetCCS("vax1")
	m.OnContact("vax9")
	if m.CCS() != "vax1" {
		t.Fatal("contact overrode a healthy CCS")
	}
}

func TestOnContactFillsUnknownCCS(t *testing.T) {
	f := newFake("vax2")
	m := New(f, Config{})
	m.OnContact("vax1")
	if m.CCS() != "vax1" {
		t.Fatal("contact should fill an unknown CCS")
	}
}

func TestLossOfNonCCSSiblingChecksCCS(t *testing.T) {
	f := newFake("vax2", "vax1")
	m := New(f, Config{List: []string{"vax1"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax9") // some other sibling died
	run(t, f, time.Second)
	if m.State() != Normal || m.CCS() != "vax1" {
		t.Fatalf("state=%v ccs=%q", m.State(), m.CCS())
	}
	if len(f.connects) == 0 || f.connects[0] != "vax1" {
		t.Fatalf("should have confirmed the CCS circuit: %v", f.connects)
	}
}

func TestCCSIgnoresSiblingLoss(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{List: []string{"vax1"}})
	m.SetCCS("vax1") // we are the CCS
	m.OnSiblingLost("vax2")
	run(t, f, time.Second)
	if m.State() != Normal || !m.IsCCS() {
		t.Fatalf("CCS should stay put: state=%v", m.State())
	}
	if len(f.probes) != 0 {
		t.Fatal("CCS should not walk the recovery list on sibling loss")
	}
}

func TestStopHaltsEverything(t *testing.T) {
	f := newFake("vax3")
	m := New(f, Config{List: []string{"vax1"}, TimeToDie: time.Minute})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	m.Stop()
	run(t, f, 10*time.Minute)
	if f.terminated {
		t.Fatal("stopped manager still terminated processes")
	}
}

func TestTopOfListCCSDoesNotProbe(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{List: []string{"vax1", "vax2"}, ProbeEvery: 5 * time.Second})
	m.SetCCS("vax1")
	run(t, f, time.Minute)
	if len(f.probes) != 0 {
		t.Fatalf("top-of-list CCS probed: %v", f.probes)
	}
}

func TestStateStrings(t *testing.T) {
	if Normal.String() != "normal" || Seeking.String() != "seeking" ||
		Isolated.String() != "isolated" || State(0).String() != "unknown" {
		t.Fatal("state names wrong")
	}
}

func TestEmptyListIsolatesImmediately(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{TimeToDie: time.Minute})
	// Empty list and we are "top of list" by definition, but with no
	// CCS set a loss walks an empty list and isolates.
	m.ccs = "vax9"
	m.OnSiblingLost("vax9")
	run(t, f, time.Second)
	if m.State() != Isolated {
		t.Fatalf("state = %v", m.State())
	}
}

// fakeLocator scripts a name server.
type fakeLocator struct {
	ccs        map[string]string
	down       bool
	registered []string
	queries    int
}

func (f *fakeLocator) LocateCCS(user string, cb func(string, bool)) {
	f.queries++
	if f.down {
		cb("", false)
		return
	}
	h, ok := f.ccs[user]
	cb(h, ok)
}

func (f *fakeLocator) RegisterCCS(user, host string) {
	if f.ccs == nil {
		f.ccs = map[string]string{}
	}
	f.ccs[user] = host
	f.registered = append(f.registered, user+"@"+host)
}

func TestLocatorDrivesRecovery(t *testing.T) {
	f := newFake("vax3", "vax7") // vax7 reachable but NOT on any list
	loc := &fakeLocator{ccs: map[string]string{"felipe": "vax7"}}
	m := New(f, Config{User: "felipe", Locator: loc, List: []string{"vax1"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.CCS() != "vax7" {
		t.Fatalf("ccs = %q, want the name server's answer vax7", m.CCS())
	}
	if loc.queries == 0 {
		t.Fatal("name server never consulted")
	}
}

func TestLocatorDownFallsBackToList(t *testing.T) {
	f := newFake("vax3", "vax2")
	loc := &fakeLocator{down: true}
	m := New(f, Config{User: "felipe", Locator: loc, List: []string{"vax1", "vax2"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.CCS() != "vax2" {
		t.Fatalf("ccs = %q, want list fallback vax2", m.CCS())
	}
}

func TestLocatorAnswerUnreachableFallsBack(t *testing.T) {
	f := newFake("vax3", "vax2") // vax7 (the stale registration) is down
	loc := &fakeLocator{ccs: map[string]string{"felipe": "vax7"}}
	m := New(f, Config{User: "felipe", Locator: loc, List: []string{"vax1", "vax2"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.CCS() != "vax2" {
		t.Fatalf("ccs = %q, want fallback past the stale registration", m.CCS())
	}
}

func TestLocatorAnswerIsSelf(t *testing.T) {
	f := newFake("vax3")
	loc := &fakeLocator{ccs: map[string]string{"felipe": "vax3"}}
	m := New(f, Config{User: "felipe", Locator: loc})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if !m.IsCCS() {
		t.Fatalf("should have become CCS per the name server; ccs=%q", m.CCS())
	}
}

func TestBecomingCCSRegistersWithLocator(t *testing.T) {
	f := newFake("vax2")
	loc := &fakeLocator{}
	m := New(f, Config{User: "felipe", Locator: loc, List: []string{"vax1", "vax2"}})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1") // vax1 dead, locator empty -> list -> self
	run(t, f, time.Second)
	if !m.IsCCS() {
		t.Fatalf("setup: ccs=%q", m.CCS())
	}
	if len(loc.registered) == 0 || loc.registered[len(loc.registered)-1] != "felipe@vax2" {
		t.Fatalf("registered = %v", loc.registered)
	}
}

func TestStoppedManagerIgnoresAllInputs(t *testing.T) {
	f := newFake("vax2", "vax1")
	m := New(f, Config{List: []string{"vax1"}})
	m.SetCCS("vax1")
	m.Stop()
	m.SetCCS("vax9")
	if m.CCS() != "vax1" {
		t.Fatal("SetCCS after Stop applied")
	}
	m.OnSiblingLost("vax1")
	m.OnContact("vax9")
	run(t, f, time.Minute)
	if len(f.probes)+len(f.connects) != 0 {
		t.Fatal("stopped manager acted")
	}
}

func TestSeekSkipsUnreachableLocatorAndConnectFailure(t *testing.T) {
	// Probe succeeds but ConnectCCS fails (circuit refused): the walk
	// moves on to the next candidate.
	f := newFake("vax3")
	f.reachable["vax1"] = true // probe ok...
	probeOnly := true
	// Make ConnectCCS to vax1 fail while probe succeeds by toggling
	// reachability between the two calls.
	origConnect := f.connects
	_ = origConnect
	m := New(f, Config{List: []string{"vax1", "vax3"}})
	m.SetCCS("vax1")
	// Intercept: after the probe fires, drop reachability so the
	// connect fails.
	f.sched.After(5*time.Millisecond, func() {
		if probeOnly {
			f.reachable["vax1"] = false
		}
	})
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	// vax1 connect failed; vax3 (self) is next: become CCS.
	if !m.IsCCS() {
		t.Fatalf("ccs=%q state=%v", m.CCS(), m.State())
	}
}

func TestIsolatedReseekWhileStillIsolatedReschedules(t *testing.T) {
	f := newFake("vax3")
	m := New(f, Config{
		List:       []string{"vax1"},
		TimeToDie:  time.Hour,
		RetryEvery: 10 * time.Second,
	})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if m.State() != Isolated {
		t.Fatal("setup")
	}
	// Several retry cycles, all failing: still isolated, still probing.
	run(t, f, time.Minute)
	if m.State() != Isolated {
		t.Fatalf("state = %v", m.State())
	}
	if len(f.probes) < 3 {
		t.Fatalf("probes = %d, want repeated retries", len(f.probes))
	}
}

func TestProbeHigherSkipsUnreachableThenRetries(t *testing.T) {
	f := newFake("vax3")
	m := New(f, Config{
		List:       []string{"vax1", "vax2", "vax3"},
		ProbeEvery: 10 * time.Second,
	})
	m.SetCCS("vax3") // acting CCS, two higher-priority hosts both down
	run(t, f, time.Minute)
	// Both vax1 and vax2 probed repeatedly.
	saw1, saw2 := 0, 0
	for _, p := range f.probes {
		switch p {
		case "vax1":
			saw1++
		case "vax2":
			saw2++
		}
	}
	if saw1 < 2 || saw2 < 2 {
		t.Fatalf("probes: vax1=%d vax2=%d (%v)", saw1, saw2, f.probes)
	}
	// vax2 comes up: demote to it even though vax1 stays down.
	f.reachable["vax2"] = true
	run(t, f, 30*time.Second)
	if m.CCS() != "vax2" {
		t.Fatalf("ccs = %q, want vax2", m.CCS())
	}
}

func TestRedialLoopReknitsLostSibling(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{RedialEvery: 10 * time.Second})
	m.SetCCS("vax1") // self is CCS: the loss triggers no seek, only redial
	m.OnSiblingLost("vax2")
	if got := m.LostSiblings(); len(got) != 1 || got[0] != "vax2" {
		t.Fatalf("lost = %v", got)
	}
	// First pass: still unreachable; the host stays in the loop.
	run(t, f, 15*time.Second)
	if len(f.redials) == 0 {
		t.Fatal("redial loop never fired")
	}
	if len(m.LostSiblings()) != 1 {
		t.Fatal("unreachable host dropped from the loop")
	}
	// Heal: the next pass brings the circuit back and the loop drains.
	f.reachable["vax2"] = true
	run(t, f, 30*time.Second)
	if got := m.LostSiblings(); len(got) != 0 {
		t.Fatalf("lost = %v after heal", got)
	}
	n := len(f.redials)
	run(t, f, time.Minute)
	if len(f.redials) != n {
		t.Fatalf("redial loop still firing with nothing lost: %v", f.redials)
	}
}

func TestRedialWalksAllLostHostsInOrder(t *testing.T) {
	f := newFake("vax1", "vax3", "vax4")
	m := New(f, Config{RedialEvery: 10 * time.Second})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax4")
	m.OnSiblingLost("vax3")
	run(t, f, 15*time.Second)
	// One pass, deterministic (sorted) order regardless of loss order.
	if len(f.redials) < 2 || f.redials[0] != "vax3" || f.redials[1] != "vax4" {
		t.Fatalf("redials = %v", f.redials)
	}
	if len(m.LostSiblings()) != 0 {
		t.Fatalf("lost = %v, both hosts were reachable", m.LostSiblings())
	}
}

func TestRedialSkipsHostThatDialedBack(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{RedialEvery: 10 * time.Second})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax2")
	m.OnSiblingUp("vax2") // the peer re-dialed us before the timer fired
	run(t, f, time.Minute)
	if len(f.redials) != 0 {
		t.Fatalf("redialed a host whose circuit is already up: %v", f.redials)
	}
}

func TestRedialRunsWhileSeeking(t *testing.T) {
	// Losing the CCS starts a seek; the lost host must still enter the
	// redial loop so the circuit re-knits after the heal, not only the
	// CCS role.
	f := newFake("vax2")
	m := New(f, Config{List: []string{"vax1", "vax2"}, RedialEvery: 10 * time.Second})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax1")
	run(t, f, time.Second)
	if !m.IsCCS() {
		t.Fatal("setup: vax2 should be acting CCS")
	}
	if got := m.LostSiblings(); len(got) != 1 || got[0] != "vax1" {
		t.Fatalf("lost = %v", got)
	}
	f.reachable["vax1"] = true
	run(t, f, 30*time.Second)
	if len(m.LostSiblings()) != 0 {
		t.Fatalf("lost = %v after heal", m.LostSiblings())
	}
}

func TestStopCancelsRedial(t *testing.T) {
	f := newFake("vax1")
	m := New(f, Config{RedialEvery: 10 * time.Second})
	m.SetCCS("vax1")
	m.OnSiblingLost("vax2")
	m.Stop()
	run(t, f, time.Minute)
	if len(f.redials) != 0 {
		t.Fatalf("redial fired after Stop: %v", f.redials)
	}
}
