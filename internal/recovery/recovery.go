// Package recovery implements the PPM's crash recovery machinery of the
// paper's Section 5: the crash coordinator site (CCS), the per-user
// .recovery priority list of home machines, the time-to-die interval
// that eventually shuts down isolated LPMs, and the low-frequency
// probing that lets partitioned CCSs rejoin when higher-priority hosts
// come back.
//
// The Manager is a pure state machine driven through a small Env
// interface; the LPM implements Env. This keeps the recovery policy
// testable in isolation with a scripted environment.
package recovery

import (
	"time"

	"ppm/internal/detord"
	"ppm/internal/sim"
)

// State of the recovery machine.
type State int

// Recovery states.
const (
	// Normal: in contact with a known CCS (or being the CCS).
	Normal State = iota + 1
	// Seeking: lost the CCS, walking the recovery list.
	Seeking
	// Isolated: nobody reachable; time-to-die counting down.
	Isolated
)

// String names the state.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Seeking:
		return "seeking"
	case Isolated:
		return "isolated"
	default:
		return "unknown"
	}
}

// Env is what the recovery machine needs from its LPM.
type Env interface {
	// HostName is the local host.
	HostName() string
	// After schedules fn on the shared scheduler.
	After(d time.Duration, fn func()) sim.Timer
	// ProbeHost checks (asynchronously) whether an LPM for the user can
	// be reached — and created on demand — on host.
	ProbeHost(host string, cb func(ok bool))
	// ConnectCCS establishes a sibling circuit to the LPM on host so it
	// can serve as our CCS.
	ConnectCCS(host string, cb func(ok bool))
	// AnnounceCCS tells connected siblings about a CCS change.
	AnnounceCCS(host string)
	// TerminateAll is the time-to-die action: kill all the user's local
	// processes and exit the LPM.
	TerminateAll()
	// HaveSiblings reports whether any sibling circuit is up (the CCS
	// time-to-live freeze condition).
	HaveSiblings() bool
	// RedialSibling re-establishes the sibling circuit to a previously
	// lost host (after a partition heals), reporting whether a circuit
	// is up afterwards.
	RedialSibling(host string, cb func(ok bool))
}

// Locator asks a network name server for the user's current CCS — the
// paper's alternative to .recovery files: "the existence of name
// servers in the network could be used to aid in crash recovery. LPMs
// would query the name server for a CCS."
type Locator interface {
	// LocateCCS reports the registered CCS host for the user, or
	// ok=false when none is registered or the name server is
	// unreachable.
	LocateCCS(user string, cb func(host string, ok bool))
	// RegisterCCS records a new CCS with the name server.
	RegisterCCS(user, host string)
}

// Config tunes the recovery machine.
type Config struct {
	// List is the .recovery file: hosts in decreasing priority order on
	// which the CCS should reside.
	List []string
	// Locator, when set, is consulted before the list: a name-server
	// driven recovery strategy. CCS changes are registered back.
	Locator Locator
	// User identifies this PPM to the locator.
	User string
	// TimeToDie is how long an isolated LPM waits before terminating
	// the user's local processes and exiting.
	TimeToDie time.Duration
	// ProbeEvery is the low-frequency interval at which a
	// lower-priority CCS probes higher-priority hosts.
	ProbeEvery time.Duration
	// RetryEvery is how often an isolated LPM retries the recovery
	// list.
	RetryEvery time.Duration
	// RedialEvery is how often lost sibling circuits are redialed, so a
	// healed partition re-knits the circuit graph instead of only
	// reseeking the CCS.
	RedialEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.TimeToDie == 0 {
		c.TimeToDie = 5 * time.Minute
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 30 * time.Second
	}
	if c.RetryEvery == 0 {
		c.RetryEvery = 15 * time.Second
	}
	if c.RedialEvery == 0 {
		c.RedialEvery = 10 * time.Second
	}
	return c
}

// Manager is the per-LPM recovery state machine.
type Manager struct {
	env Env
	cfg Config

	state    State
	ccs      string // current CCS host ("" = none known)
	seekPos  int
	dieTimer sim.Timer
	probeTmr sim.Timer
	retryTmr sim.Timer
	stopped  bool

	// lost tracks hosts whose sibling circuit broke and has not come
	// back; the redial loop walks them until each circuit is up again.
	lost      map[string]bool
	redialTmr sim.Timer

	// Terminated reports whether time-to-die fired.
	Terminated bool
	// Transitions counts state changes, for tests.
	Transitions int
}

// New creates a recovery manager in the Normal state with no known CCS.
func New(env Env, cfg Config) *Manager {
	return &Manager{env: env, cfg: cfg.withDefaults(), state: Normal}
}

// State returns the current state.
func (m *Manager) State() State { return m.state }

// CCS returns the host currently believed to be the crash coordinator
// site.
func (m *Manager) CCS() string { return m.ccs }

// IsCCS reports whether this LPM is the CCS.
func (m *Manager) IsCCS() bool { return m.ccs == m.env.HostName() }

// Stop halts all recovery activity (LPM exiting normally).
func (m *Manager) Stop() {
	m.stopped = true
	m.cancelTimers()
}

func (m *Manager) cancelTimers() {
	m.dieTimer.Cancel()
	m.probeTmr.Cancel()
	m.retryTmr.Cancel()
	m.redialTmr.Cancel()
}

func (m *Manager) setState(s State) {
	if m.state != s {
		m.state = s
		m.Transitions++
	}
}

// SetCCS installs a CCS (initial default assignment, a propagated
// address from a sibling Hello, or a CCSUpdate). It returns to Normal
// operation and cancels any countdown.
func (m *Manager) SetCCS(host string) {
	if m.stopped {
		return
	}
	m.ccs = host
	m.dieTimer.Cancel()
	m.retryTmr.Cancel()
	m.setState(Normal)
	if m.cfg.Locator != nil && m.IsCCS() {
		m.cfg.Locator.RegisterCCS(m.cfg.User, host)
	}
	// A CCS that is not the top-priority host keeps probing the hosts
	// higher on the list, at low frequency, to rejoin them.
	if m.IsCCS() && !m.topOfList() {
		m.scheduleProbe()
	} else {
		m.probeTmr.Cancel()
	}
}

func (m *Manager) topOfList() bool {
	return len(m.cfg.List) == 0 || m.cfg.List[0] == m.env.HostName()
}

// OnSiblingLost is called when a sibling circuit breaks. Per the paper,
// the LPM then tries to establish a connection with the known CCS; if
// that fails it walks the recovery list. Independently of the CCS
// logic, the lost host enters the redial loop so the circuit comes
// back once the failure (a crash, a partition) heals.
func (m *Manager) OnSiblingLost(host string) {
	if m.stopped {
		return
	}
	if m.lost == nil {
		m.lost = make(map[string]bool)
	}
	m.lost[host] = true
	m.scheduleRedial()
	if m.state != Normal {
		return
	}
	if m.IsCCS() {
		// The CCS itself just notes the loss; its time-to-live freezes
		// while siblings remain, handled by the LPM's TTL logic.
		return
	}
	if m.ccs == "" || host == m.ccs {
		m.startSeek()
		return
	}
	// CCS believed alive: confirm the circuit to it.
	m.env.ConnectCCS(m.ccs, func(ok bool) {
		if m.stopped {
			return
		}
		if !ok {
			m.startSeek()
		}
	})
}

// OnContact is called when a message arrives from a sibling that is in
// contact with a valid CCS; it rescues an isolated LPM ("a LPM not in
// contact with a CCS resumes the normal mode of operation if ... it
// gets a communication request from a LPM in contact with a valid
// CCS").
func (m *Manager) OnContact(theirCCS string) {
	if m.stopped || theirCCS == "" {
		return
	}
	if m.state != Normal {
		m.SetCCS(theirCCS)
		return
	}
	if m.ccs == "" {
		m.SetCCS(theirCCS)
	}
}

// OnSiblingUp clears the redial bookkeeping for a host whose circuit
// is live again — redialed by us, or dialed afresh by the peer.
func (m *Manager) OnSiblingUp(host string) {
	delete(m.lost, host)
}

// LostSiblings returns the hosts currently in the redial loop, in
// deterministic order (for tests).
func (m *Manager) LostSiblings() []string {
	return detord.Keys(m.lost)
}

// scheduleRedial arms the redial timer if it is not already running.
func (m *Manager) scheduleRedial() {
	if !m.redialTmr.Fired() {
		return
	}
	m.redialTmr = m.env.After(m.cfg.RedialEvery, m.redialTick)
}

func (m *Manager) redialTick() {
	if m.stopped || len(m.lost) == 0 {
		return
	}
	m.redialWalk(detord.Keys(m.lost), 0)
}

// redialWalk tries each lost host in order, one at a time; hosts still
// lost afterwards get another pass a RedialEvery later.
func (m *Manager) redialWalk(hosts []string, i int) {
	if m.stopped {
		return
	}
	if i >= len(hosts) {
		if len(m.lost) > 0 {
			m.scheduleRedial()
		}
		return
	}
	h := hosts[i]
	if !m.lost[h] {
		m.redialWalk(hosts, i+1)
		return
	}
	m.env.RedialSibling(h, func(ok bool) {
		if m.stopped {
			return
		}
		if ok {
			delete(m.lost, h)
		}
		m.redialWalk(hosts, i+1)
	})
}

// startSeek consults the name server (when configured), then walks the
// .recovery list in decreasing priority order.
func (m *Manager) startSeek() {
	m.setState(Seeking)
	m.seekPos = 0
	if m.cfg.Locator == nil {
		m.seekNext()
		return
	}
	m.cfg.Locator.LocateCCS(m.cfg.User, func(host string, ok bool) {
		if m.stopped || m.state != Seeking {
			return
		}
		if !ok || host == "" {
			m.seekNext()
			return
		}
		if host == m.env.HostName() {
			m.SetCCS(host)
			m.env.AnnounceCCS(host)
			return
		}
		m.env.ProbeHost(host, func(ok bool) {
			if m.stopped || m.state != Seeking {
				return
			}
			if !ok {
				m.seekNext()
				return
			}
			m.env.ConnectCCS(host, func(ok bool) {
				if m.stopped || m.state != Seeking {
					return
				}
				if !ok {
					m.seekNext()
					return
				}
				m.SetCCS(host)
				m.env.AnnounceCCS(host)
			})
		})
	})
}

func (m *Manager) seekNext() {
	if m.stopped || m.state != Seeking {
		return
	}
	if m.seekPos >= len(m.cfg.List) {
		m.becomeIsolated()
		return
	}
	candidate := m.cfg.List[m.seekPos]
	m.seekPos++
	if candidate == m.env.HostName() {
		// The list says the CCS should reside here: take over.
		m.SetCCS(candidate)
		m.env.AnnounceCCS(candidate)
		return
	}
	m.env.ProbeHost(candidate, func(ok bool) {
		if m.stopped || m.state != Seeking {
			return
		}
		if !ok {
			m.seekNext()
			return
		}
		m.env.ConnectCCS(candidate, func(ok bool) {
			if m.stopped || m.state != Seeking {
				return
			}
			if !ok {
				m.seekNext()
				return
			}
			m.SetCCS(candidate)
			m.env.AnnounceCCS(candidate)
		})
	})
}

// becomeIsolated starts the time-to-die countdown and periodic
// re-seeking.
func (m *Manager) becomeIsolated() {
	m.setState(Isolated)
	if m.dieTimer.Fired() {
		m.dieTimer = m.env.After(m.cfg.TimeToDie, func() {
			if m.stopped || m.state != Isolated {
				return
			}
			m.Terminated = true
			m.env.TerminateAll()
		})
	}
	m.retryTmr = m.env.After(m.cfg.RetryEvery, func() {
		if m.stopped || m.state != Isolated {
			return
		}
		m.startSeek()
	})
}

// scheduleProbe sets up the low-frequency probing of higher-priority
// hosts by a CCS that is not at the top of the list.
func (m *Manager) scheduleProbe() {
	m.probeTmr.Cancel()
	m.probeTmr = m.env.After(m.cfg.ProbeEvery, func() { m.probeHigher(0) })
}

func (m *Manager) probeHigher(i int) {
	if m.stopped || !m.IsCCS() {
		return
	}
	// Hosts strictly above us in the list.
	var higher []string
	for _, h := range m.cfg.List {
		if h == m.env.HostName() {
			break
		}
		higher = append(higher, h)
	}
	if i >= len(higher) {
		m.scheduleProbe() // none answered; probe again later
		return
	}
	candidate := higher[i]
	m.env.ProbeHost(candidate, func(ok bool) {
		if m.stopped || !m.IsCCS() {
			return
		}
		if !ok {
			m.probeHigher(i + 1)
			return
		}
		// "Whenever such host comes up, they connect to it": demote
		// ourselves and adopt the higher-priority CCS.
		m.env.ConnectCCS(candidate, func(ok bool) {
			if m.stopped {
				return
			}
			if !ok {
				m.probeHigher(i + 1)
				return
			}
			m.SetCCS(candidate)
			m.env.AnnounceCCS(candidate)
		})
	})
}
