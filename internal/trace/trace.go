// Package trace is the causal-tracing subsystem: spans with
// virtual-time start/end instants, deterministic IDs, and parent links
// that cross machine boundaries by riding inside wire envelopes.
//
// The paper's Section 7 promises "selectable-granularity event tracing"
// feeding data-reduction and display tools. Where internal/metrics
// (PR 1) answers "how many, how often" with installation-wide
// aggregates, this package answers "where did the time of THIS
// operation go": every instrumented layer opens a span against the
// context it was handed, the contexts are serialized into the optional
// trailer of wire.Envelope, and the cluster-side buffer reassembles the
// spans of one client operation into a single cross-host tree.
//
// Determinism mirrors the metrics registry: IDs come from per-tracer
// counters (no randomness, no wall clock), spans are recorded in
// creation order, and tree children are ordered by (start, ID), so two
// identically seeded runs render byte-identical reports.
//
// Tracing is opt-in per operation. A disabled tracer hands out nil
// *Span handles and invalid Contexts; every method is safe on a nil
// receiver and a nil handle, so instrumented code never branches on
// whether tracing is on. Untraced traffic pays exactly one flag
// comparison and zero extra wire bytes.
package trace

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
)

// Context names a position in a trace: the trace it belongs to and the
// span that is the parent of whatever happens next. The zero Context is
// "not traced"; it is what crosses machine boundaries inside envelopes.
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a real trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// SpanData is one recorded span. End == Start until the span is ended.
// Ends counts EndAt calls, so post-hoc analysis (journal.AuditWithSpans,
// internal/profile) can tell a zero-length span (Ends == 1) from one
// left open on an error path (Ends == 0) or double-closed (Ends > 1).
type SpanData struct {
	ID     uint64
	Trace  uint64
	Parent uint64 // 0 for a trace root
	Host   string
	Name   string
	Start  time.Duration // virtual time since the simulation epoch
	End    time.Duration
	Ends   int
}

// Closed reports whether the span was ended exactly once.
func (s SpanData) Closed() bool { return s.Ends == 1 }

// DefaultMaxSpans bounds the span buffer. One Table 2 cell is a few
// dozen spans; the cap only matters if an operation loops wildly.
const DefaultMaxSpans = 4096

// Tracer owns the span buffer of one cluster. All hosts of a simulated
// cluster share one Tracer (the simulation is single-goroutine), which
// is what lets a "distributed" trace assemble without a collection
// protocol: the buffer plays the role of the per-host trace files that
// the paper's data-reduction tools would gather.
type Tracer struct {
	now       func() time.Duration
	enabled   bool
	nextTrace uint64
	nextSpan  uint64
	spans     []SpanData
	active    Context
	maxSpans  int
	dropped   uint64
}

// New returns a Tracer that reads virtual time from now. The tracer
// starts disabled.
func New(now func() time.Duration) *Tracer {
	return &Tracer{now: now, maxSpans: DefaultMaxSpans}
}

// Enable turns span recording on. Safe on nil.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled = true
	}
}

// Disable turns span recording off and clears the active context.
// Spans already recorded stay in the buffer. Safe on nil.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled = false
		t.active = Context{}
	}
}

// Enabled reports whether StartTrace will record. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetMaxSpans changes the span-buffer cap.
func (t *Tracer) SetMaxSpans(n int) {
	if t != nil && n > 0 {
		t.maxSpans = n
	}
}

// Span is a handle to an open span. A nil *Span is a valid no-op
// handle: End does nothing and Context returns the invalid Context, so
// instrumentation downstream of a disabled tracer no-ops transitively.
type Span struct {
	t   *Tracer
	idx int
	ctx Context
}

// Context returns the context that children of this span should use.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// End closes the span at the current virtual time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.now())
}

// EndAt closes the span at an explicit instant (used when the closing
// time is computed rather than observed, e.g. per-hop transit spans).
func (s *Span) EndAt(at time.Duration) {
	if s == nil {
		return
	}
	s.t.spans[s.idx].End = at
	s.t.spans[s.idx].Ends++
}

// StartTrace opens a new trace rooted at a fresh span on host. It
// returns nil when the tracer is nil or disabled — the root handle's
// invalid Context then silences all downstream instrumentation.
func (t *Tracer) StartTrace(host, name string) *Span {
	if t == nil || !t.enabled {
		return nil
	}
	t.nextTrace++
	return t.record(t.nextTrace, 0, host, name, t.now())
}

// StartSpan opens a child span under parent. It returns nil when the
// parent context is invalid, which is how untraced paths stay free.
func (t *Tracer) StartSpan(host, name string, parent Context) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.record(parent.Trace, parent.Span, host, name, t.now())
}

// StartSpanAt is StartSpan with an explicit start instant.
func (t *Tracer) StartSpanAt(host, name string, parent Context, start time.Duration) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.record(parent.Trace, parent.Span, host, name, start)
}

// AddSpan records a fully-formed span whose start and end are both
// already known (per-hop network transit, whose schedule is computed at
// send time).
func (t *Tracer) AddSpan(host, name string, parent Context, start, end time.Duration) {
	if t == nil || !parent.Valid() {
		return
	}
	if sp := t.record(parent.Trace, parent.Span, host, name, start); sp != nil {
		sp.EndAt(end)
	}
}

func (t *Tracer) record(traceID, parent uint64, host, name string, start time.Duration) *Span {
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.nextSpan++
	id := t.nextSpan
	t.spans = append(t.spans, SpanData{
		ID: id, Trace: traceID, Parent: parent,
		Host: host, Name: name, Start: start, End: start,
	})
	return &Span{t: t, idx: len(t.spans) - 1, ctx: Context{Trace: traceID, Span: id}}
}

// Exchange installs ctx as the active context and returns the previous
// one. The active context is how layers that cannot be handed a
// Context parameter (the kernel's event emission, reached through
// syscall-shaped interfaces) discover the operation in progress: the
// instrumented caller wraps the kernel-op region in
// Exchange(ctx)/Exchange(old). Single-goroutine simulation makes this
// safe; it is the moral equivalent of a per-process trace flag.
func (t *Tracer) Exchange(ctx Context) Context {
	if t == nil {
		return Context{}
	}
	old := t.active
	t.active = ctx
	return old
}

// Active returns the current active context. Safe on nil.
func (t *Tracer) Active() Context {
	if t == nil {
		return Context{}
	}
	return t.active
}

// LastTrace returns the ID of the most recently started trace (0 if
// none).
func (t *Tracer) LastTrace() uint64 {
	if t == nil {
		return 0
	}
	return t.nextTrace
}

// Dropped returns how many spans were discarded to the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Spans returns a copy of the buffer in creation order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// SpansOf returns the spans of one trace in creation order.
func (t *Tracer) SpansOf(traceID uint64) []SpanData {
	if t == nil {
		return nil
	}
	var out []SpanData
	for _, s := range t.spans {
		if s.Trace == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Reset discards all recorded spans and the drop counter. ID counters
// keep counting so contexts from before a Reset can never collide with
// new spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.spans = nil
	t.dropped = 0
	t.active = Context{}
}

// ---------------------------------------------------------------------
// Tree assembly and rendering.
// ---------------------------------------------------------------------

// Report renders one trace as a waterfall: each line is a span with its
// start and end in virtual milliseconds relative to the trace root,
// indented by tree depth. Children are ordered by (Start, ID), so the
// rendering is deterministic. Spans whose parent was dropped (buffer
// cap) render as extra roots rather than disappearing.
func (t *Tracer) Report(traceID uint64) string {
	spans := t.SpansOf(traceID)
	if len(spans) == 0 {
		return fmt.Sprintf("trace %d: no spans\n", traceID)
	}
	present := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	children := make(map[uint64][]SpanData)
	var roots []SpanData
	hosts := make(map[string]bool)
	for _, s := range spans {
		hosts[s.Host] = true
		if s.Parent == 0 || !present[s.Parent] {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStartID := func(ss []SpanData) {
		detord.SortBy2(ss,
			func(s SpanData) time.Duration { return s.Start },
			func(s SpanData) uint64 { return s.ID })
	}
	byStartID(roots)
	for _, ss := range children {
		byStartID(ss)
	}
	base := roots[0].Start
	var b strings.Builder
	fmt.Fprintf(&b, "=== trace %d: %s (%d spans, %d hosts) ===\n",
		traceID, roots[0].Name, len(spans), len(hosts))
	fmt.Fprintf(&b, "%10s %10s  %-8s %s\n", "start ms", "end ms", "host", "span")
	ms := func(d time.Duration) float64 { return float64(d-base) / float64(time.Millisecond) }
	var walk func(s SpanData, depth int)
	walk = func(s SpanData, depth int) {
		fmt.Fprintf(&b, "%10.3f %10.3f  %-8s %s%s\n",
			ms(s.Start), ms(s.End), s.Host, strings.Repeat("  ", depth), s.Name)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if t != nil && t.dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped at buffer cap)\n", t.dropped)
	}
	return b.String()
}

// ReportAll renders every recorded trace in ID order.
func (t *Tracer) ReportAll() string {
	if t == nil || len(t.spans) == 0 {
		return "no traces recorded\n"
	}
	seen := make(map[uint64]bool)
	var ids []uint64
	for _, s := range t.spans {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			ids = append(ids, s.Trace)
		}
	}
	detord.Sort(ids)
	var b strings.Builder
	for _, id := range ids {
		b.WriteString(t.Report(id))
	}
	return b.String()
}
