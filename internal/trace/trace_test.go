package trace

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable virtual clock for tests.
type fakeClock struct{ at time.Duration }

func (c *fakeClock) now() time.Duration { return c.at }

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Enable()
	tr.Disable()
	if sp := tr.StartTrace("h", "op"); sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	if sp := tr.StartSpan("h", "x", Context{Trace: 1, Span: 1}); sp != nil {
		t.Fatal("nil tracer handed out a child span")
	}
	tr.AddSpan("h", "x", Context{Trace: 1}, 0, 0)
	if got := tr.Exchange(Context{Trace: 9}); got.Valid() {
		t.Fatal("nil tracer returned a valid active context")
	}
	if tr.Active().Valid() {
		t.Fatal("nil tracer has an active context")
	}
	if tr.Spans() != nil || tr.SpansOf(1) != nil {
		t.Fatal("nil tracer returned spans")
	}
	tr.Reset()

	var sp *Span
	sp.End()
	sp.EndAt(time.Second)
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	if sp := tr.StartTrace("h", "op"); sp != nil {
		t.Fatal("disabled tracer started a trace")
	}
	// A child against the invalid context must also be nil.
	if sp := tr.StartSpan("h", "x", Context{}); sp != nil {
		t.Fatal("invalid parent context produced a span")
	}
	if len(tr.Spans()) != 0 {
		t.Fatalf("spans recorded while disabled: %v", tr.Spans())
	}
}

func TestTreeAssemblyAndIDs(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.Enable()

	root := tr.StartTrace("a", "op.stop")
	clk.at = 2 * time.Millisecond
	child1 := tr.StartSpan("a", "dispatch.endpoint", root.Context())
	clk.at = 3 * time.Millisecond
	child1.End()
	clk.at = 4 * time.Millisecond
	child2 := tr.StartSpan("b", "lpm.request", root.Context())
	grand := tr.StartSpan("b", "kernel.event.stop", child2.Context())
	clk.at = 9 * time.Millisecond
	grand.End()
	child2.End()
	clk.at = 10 * time.Millisecond
	root.End()

	spans := tr.SpansOf(1)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].ID != 1 || spans[1].ID != 2 || spans[2].ID != 3 || spans[3].ID != 4 {
		t.Fatalf("span IDs not sequential: %+v", spans)
	}
	if spans[3].Parent != spans[2].ID {
		t.Fatalf("grandchild parent = %d, want %d", spans[3].Parent, spans[2].ID)
	}
	if tr.LastTrace() != 1 {
		t.Fatalf("LastTrace = %d, want 1", tr.LastTrace())
	}

	rep := tr.Report(1)
	for _, want := range []string{
		"=== trace 1: op.stop (4 spans, 2 hosts) ===",
		"op.stop",
		"  dispatch.endpoint",
		"    kernel.event.stop",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportDeterministicOrdering(t *testing.T) {
	build := func() string {
		clk := &fakeClock{}
		tr := New(clk.now)
		tr.Enable()
		root := tr.StartTrace("a", "op")
		// Two children starting at the same instant: order must fall
		// back to span ID.
		c2 := tr.StartSpan("b", "second", root.Context())
		c1 := tr.StartSpan("a", "first", root.Context())
		clk.at = time.Millisecond
		c1.End()
		c2.End()
		root.End()
		return tr.Report(1)
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
	// Same start instant: the earlier-created span renders first.
	if strings.Index(a, "second") > strings.Index(a, "first") {
		t.Fatalf("same-start children not ordered by ID:\n%s", a)
	}
}

func TestMaxSpansDropsAndCounts(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.Enable()
	tr.SetMaxSpans(2)
	root := tr.StartTrace("a", "op")
	tr.StartSpan("a", "kept", root.Context())
	if sp := tr.StartSpan("a", "dropped", root.Context()); sp != nil {
		t.Fatal("span recorded past the cap")
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	if !strings.Contains(tr.Report(1), "1 spans dropped") {
		t.Fatalf("report does not mention drops:\n%s", tr.Report(1))
	}
	tr.Reset()
	if tr.Dropped() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

func TestExchangeActiveContext(t *testing.T) {
	tr := New(func() time.Duration { return 0 })
	tr.Enable()
	root := tr.StartTrace("a", "op")
	old := tr.Exchange(root.Context())
	if old.Valid() {
		t.Fatal("initial active context should be invalid")
	}
	if tr.Active() != root.Context() {
		t.Fatal("Exchange did not install the context")
	}
	tr.Exchange(old)
	if tr.Active().Valid() {
		t.Fatal("Exchange did not restore the old context")
	}
	// Disable clears any active context left behind.
	tr.Exchange(root.Context())
	tr.Disable()
	if tr.Active().Valid() {
		t.Fatal("Disable left an active context")
	}
}

func TestAddSpanExplicitWindow(t *testing.T) {
	tr := New(func() time.Duration { return 0 })
	tr.Enable()
	root := tr.StartTrace("a", "op")
	tr.AddSpan("gw", "net.hop", root.Context(), 5*time.Millisecond, 8*time.Millisecond)
	spans := tr.SpansOf(1)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	hop := spans[1]
	if hop.Start != 5*time.Millisecond || hop.End != 8*time.Millisecond {
		t.Fatalf("hop window = [%v, %v]", hop.Start, hop.End)
	}
	if hop.Host != "gw" {
		t.Fatalf("hop host = %q, want gw", hop.Host)
	}
}
