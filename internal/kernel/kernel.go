// Package kernel simulates the per-host enhanced 4.3BSD kernel the PPM
// depends on: a process table with fork/exec/exit and signals, the
// extended ptrace "adoption" call that gives the LPM write access to a
// process's control block, per-process trace flags that make the kernel
// emit event messages to the LPM, a CPU with a run-queue-derived load
// average, and the load-dependent kernel-to-LPM message delivery whose
// cost the paper's Table 1 measures.
//
// The kernel is a passive object driven by the shared discrete-event
// scheduler; it performs no I/O and spawns no goroutines.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ppm/internal/calib"
	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/proc"
	"ppm/internal/sim"
	"ppm/internal/trace"
)

// Kernel errors.
var (
	ErrNoSuchProcess = errors.New("kernel: no such process")
	ErrPermission    = errors.New("kernel: operation not permitted")
	ErrDead          = errors.New("kernel: process not alive")
	ErrHostDown      = errors.New("kernel: host down")
)

// TraceMask selects which event classes the kernel reports for an
// adopted process; the granularity is user-settable, which is what lets
// a debugger use the PPM.
type TraceMask uint32

// Trace mask bits.
const (
	TraceLifecycle TraceMask = 1 << iota // fork, exec, exit
	TraceSignals                         // stop, cont, signal delivery
	TraceSyscalls                        // every system call (finest)
	TraceIPC                             // message send/receive
	TraceFiles                           // open/close

	// TraceDefault is what adoption installs: lifecycle + signals.
	TraceDefault = TraceLifecycle | TraceSignals
	// TraceAll enables everything.
	TraceAll = TraceLifecycle | TraceSignals | TraceSyscalls | TraceIPC | TraceFiles
)

// Process is one entry in the simulated process table.
type Process struct {
	PID      proc.PID
	Name     string
	User     string
	PPID     proc.PID  // local parent (0 for host-root processes)
	Parent   proc.GPID // logical parent, possibly on another host
	State    proc.State
	ExitCode int
	Rusage   proc.Rusage
	Started  sim.Time
	ExitedAt sim.Time

	Traced     bool
	Mask       TraceMask
	Foreground bool

	fds     map[int]string
	nextFD  int
	dutyNum int // workload duty cycle numerator (0 = not a workload)
	dutyDen int
	running bool // workload currently in its CPU-bound phase
}

// Memory model constants: a modest 1986 process image, growing with
// activity up to a working-set cap.
const (
	baseImageKB = 64
	maxImageKB  = 1024
)

// growRSS grows the process's resident size by kb, capped; MaxRSSKB
// records the high-water mark.
func (p *Process) growRSS(kb int64) {
	rss := p.Rusage.MaxRSSKB + kb
	if rss > maxImageKB {
		rss = maxImageKB
	}
	p.Rusage.MaxRSSKB = rss
}

// OpenFDs returns the process's open descriptors as "fd:path" strings,
// sorted by descriptor number.
func (p *Process) OpenFDs() []string {
	fds := detord.Keys(p.fds)
	out := make([]string, 0, len(fds))
	for _, fd := range fds {
		out = append(out, fmt.Sprintf("%d:%s", fd, p.fds[fd]))
	}
	return out
}

// Host is one simulated machine: kernel state plus a CPU.
type Host struct {
	name  string
	model calib.CPUModel
	sched *sim.Scheduler

	up      bool
	procs   map[proc.PID]*Process
	nextPID proc.PID

	// CPU executor: serializes modelled CPU demands.
	busyUntil sim.Time

	// Load average machinery: the estimator decays exponentially toward
	// the instantaneous run-queue length. Instead of periodic sampling
	// we integrate the decay analytically, updating the base value only
	// when the run queue changes — exact and event-free.
	runq   int
	laBase float64
	laFrom sim.Time

	// Per-user kernel->LPM event sinks (the LPM kernel socket).
	sinks map[string]func(proc.Event)

	// Counters for the overhead benchmarks.
	UntracedChecks int64
	KernelMsgs     int64

	// Installation-wide metrics registry (nil unless SetMetrics ran).
	metrics *metrics.Registry

	// Cluster-wide causal tracer (nil unless SetTracer ran).
	tracer *trace.Tracer

	// Cluster-wide flight recorder (nil unless SetJournal ran).
	journal *journal.Journal
}

// loadTau is the smoothing constant of the load-average estimator (the
// paper's la is "a time-averaged cpu run queue length"; BSD used a
// one-minute constant, we use a shorter one so experiments converge in
// seconds of virtual time).
const loadTau = 5 * time.Second

// NewHost creates a host of the given machine type.
func NewHost(sched *sim.Scheduler, name string, model calib.CPUModel) *Host {
	h := &Host{
		name:    name,
		model:   model,
		sched:   sched,
		up:      true,
		procs:   make(map[proc.PID]*Process),
		nextPID: 1,
		sinks:   make(map[string]func(proc.Event)),
	}
	h.laFrom = sched.Now()
	return h
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// SetMetrics installs the installation-wide metrics registry (the
// kernel family: process lifecycle counts and the event-message
// delivery histogram). A nil registry disables metrics.
func (h *Host) SetMetrics(reg *metrics.Registry) { h.metrics = reg }

// SetTracer installs the cluster-wide causal tracer. Kernel event
// emission attaches delivery spans to whatever operation context is
// active at emit time. A nil tracer disables tracing.
func (h *Host) SetTracer(t *trace.Tracer) { h.tracer = t }

// SetJournal installs the cluster's flight recorder: process lifecycle
// (spawn/fork/exit) and delivered trace events land in it. A nil
// journal disables recording.
func (h *Host) SetJournal(j *journal.Journal) { h.journal = j }

// Model returns the host's CPU model.
func (h *Host) Model() calib.CPUModel { return h.model }

// Up reports whether the host is running.
func (h *Host) Up() bool { return h.up }

// --- load average ---

// setRunnable moves a workload process on or off the run queue,
// folding the elapsed interval into the load-average base first.
func (h *Host) setRunnable(p *Process, r bool) {
	if p.running == r {
		return
	}
	h.laBase = h.LoadAvg()
	h.laFrom = h.sched.Now()
	p.running = r
	if r {
		h.runq++
	} else {
		h.runq--
	}
}

// LoadAvg returns the current time-averaged run-queue length: the
// estimator decays exponentially from its base value toward the
// instantaneous run-queue length.
func (h *Host) LoadAvg() float64 {
	dt := h.sched.Now().Sub(h.laFrom)
	if dt <= 0 {
		return h.laBase
	}
	decay := math.Exp(-float64(dt) / float64(loadTau))
	n := float64(h.runq)
	return n + (h.laBase-n)*decay
}

// --- CPU executor ---

// ExecCPU charges a CPU demand (expressed as reference-machine cost at
// zero load) to the host's CPU and runs fn when it completes. Demands
// are serialized: the host has one CPU.
func (h *Host) ExecCPU(cost time.Duration, fn func()) {
	if !h.up {
		return
	}
	scaled := h.model.Scale(cost, h.LoadAvg())
	start := h.sched.Now()
	if h.busyUntil.After(start) {
		start = h.busyUntil
	}
	h.busyUntil = start.Add(scaled)
	h.sched.At(h.busyUntil, func() {
		if h.up && fn != nil {
			fn()
		}
	})
}

// CPUIdleAt returns when the CPU will next be idle.
func (h *Host) CPUIdleAt() sim.Time {
	if h.busyUntil.After(h.sched.Now()) {
		return h.busyUntil
	}
	return h.sched.Now()
}

// --- process lifecycle ---

func (h *Host) get(pid proc.PID) (*Process, error) {
	p, ok := h.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %s pid %d", ErrNoSuchProcess, h.name, pid)
	}
	return p, nil
}

// Spawn creates a host-root process (no local parent): login shells,
// daemons, and the LPM itself enter the table this way.
func (h *Host) Spawn(name, user string) (*Process, error) {
	if !h.up {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	p := &Process{
		PID:     h.nextPID,
		Name:    name,
		User:    user,
		State:   proc.Running,
		Started: h.sched.Now(),
		Rusage:  proc.Rusage{MaxRSSKB: baseImageKB},
		fds:     map[int]string{0: "/dev/tty", 1: "/dev/tty", 2: "/dev/tty"},
		nextFD:  3,
	}
	h.nextPID++
	h.procs[p.PID] = p
	h.metrics.Counter("kernel.spawns").Inc()
	h.journal.Append(journal.KernelSpawn, h.name,
		fmt.Sprintf("pid=%d name=%s user=%s", p.PID, name, user))
	return p, nil
}

// Fork creates a child of parent. The child inherits the user, the
// trace flags (as 4.3BSD inherits them across fork for traced
// processes) and the descriptor table. A fork event is reported if the
// parent is traced.
func (h *Host) Fork(parentPID proc.PID, name string) (*Process, error) {
	if !h.up {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.name)
	}
	parent, err := h.get(parentPID)
	if err != nil {
		return nil, err
	}
	if parent.State != proc.Running && parent.State != proc.Stopped {
		return nil, fmt.Errorf("%w: fork from pid %d", ErrDead, parentPID)
	}
	child := &Process{
		PID:     h.nextPID,
		Name:    name,
		User:    parent.User,
		PPID:    parent.PID,
		Parent:  proc.GPID{Host: h.name, PID: parent.PID},
		State:   proc.Running,
		Started: h.sched.Now(),
		Traced:  parent.Traced,
		Mask:    parent.Mask,
		Rusage:  proc.Rusage{MaxRSSKB: parent.Rusage.MaxRSSKB},
		fds:     make(map[int]string, len(parent.fds)),
		nextFD:  parent.nextFD,
	}
	for fd, path := range parent.fds {
		child.fds[fd] = path
	}
	h.nextPID++
	h.procs[child.PID] = child
	h.metrics.Counter("kernel.forks").Inc()
	h.journal.Append(journal.KernelFork, h.name,
		fmt.Sprintf("parent=%d child=%d name=%s", parent.PID, child.PID, name))
	parent.Rusage.Syscalls++
	h.emit(parent, proc.Event{
		Kind:  proc.EvFork,
		Proc:  proc.GPID{Host: h.name, PID: parent.PID},
		Child: proc.GPID{Host: h.name, PID: child.PID},
	}, TraceLifecycle)
	return child, nil
}

// SetLogicalParent overrides a process's logical parent, used when the
// true creator lives on another host (remote process creation).
func (h *Host) SetLogicalParent(pid proc.PID, parent proc.GPID) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	p.Parent = parent
	// A zero parent detaches the process into a root; record it the way
	// snapshots render root parents so the audit can compare directly.
	ps := "-"
	if !parent.IsZero() {
		ps = parent.String()
	}
	h.journal.Append(journal.KernelSetParent, h.name,
		fmt.Sprintf("pid=%d parent=%s", pid, ps))
	return nil
}

// Exec overlays the process image with a new program name and reports
// an exec event when traced.
func (h *Host) Exec(pid proc.PID, name string) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.State == proc.Exited || p.State == proc.Dead {
		return fmt.Errorf("%w: exec pid %d", ErrDead, pid)
	}
	p.Name = name
	p.Rusage.Syscalls++
	h.emit(p, proc.Event{
		Kind:   proc.EvExec,
		Proc:   proc.GPID{Host: h.name, PID: pid},
		Detail: name,
	}, TraceLifecycle)
	return nil
}

// Exit terminates a process voluntarily. The table entry is retained in
// the Exited state (the LPM preserves exit information while children
// are alive and marks the process exited in snapshots); Reap discards
// it.
func (h *Host) Exit(pid proc.PID, code int) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.State == proc.Exited || p.State == proc.Dead {
		return fmt.Errorf("%w: exit pid %d", ErrDead, pid)
	}
	p.State = proc.Exited
	p.ExitCode = code
	p.ExitedAt = h.sched.Now()
	h.metrics.Counter("kernel.exits").Inc()
	h.journal.Append(journal.KernelExit, h.name,
		fmt.Sprintf("pid=%d code=%d", pid, code))
	h.setRunnable(p, false)
	h.emit(p, proc.Event{
		Kind:   proc.EvExit,
		Proc:   proc.GPID{Host: h.name, PID: pid},
		Rusage: p.Rusage,
	}, TraceLifecycle)
	return nil
}

// Reap removes an exited process from the table.
func (h *Host) Reap(pid proc.PID) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.State != proc.Exited {
		return fmt.Errorf("%w: reap of live pid %d", ErrPermission, pid)
	}
	delete(h.procs, pid)
	return nil
}

// Signal delivers a software interrupt. Default dispositions: SIGSTOP
// stops, SIGCONT resumes, SIGKILL/SIGTERM/SIGINT terminate, user
// signals are recorded (and traced) but otherwise ignored.
func (h *Host) Signal(pid proc.PID, sig proc.Signal) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.State == proc.Exited || p.State == proc.Dead {
		return fmt.Errorf("%w: signal %v to pid %d", ErrDead, sig, pid)
	}
	switch sig {
	case proc.SIGSTOP:
		if p.State != proc.Stopped {
			p.State = proc.Stopped
			h.setRunnable(p, false)
			h.emit(p, proc.Event{
				Kind: proc.EvStop, Proc: proc.GPID{Host: h.name, PID: pid}, Signal: sig,
			}, TraceSignals)
		}
	case proc.SIGCONT:
		if p.State == proc.Stopped {
			p.State = proc.Running
			h.emit(p, proc.Event{
				Kind: proc.EvCont, Proc: proc.GPID{Host: h.name, PID: pid}, Signal: sig,
			}, TraceSignals)
		}
	case proc.SIGKILL, proc.SIGTERM, proc.SIGINT:
		p.State = proc.Exited
		p.ExitCode = 128 + int(sig)
		p.ExitedAt = h.sched.Now()
		h.metrics.Counter("kernel.exits").Inc()
		h.journal.Append(journal.KernelExit, h.name,
			fmt.Sprintf("pid=%d code=%d sig=%v", pid, p.ExitCode, sig))
		h.setRunnable(p, false)
		h.emit(p, proc.Event{
			Kind: proc.EvExit, Proc: proc.GPID{Host: h.name, PID: pid},
			Signal: sig, Rusage: p.Rusage,
		}, TraceLifecycle)
	default:
		h.emit(p, proc.Event{
			Kind: proc.EvSignal, Proc: proc.GPID{Host: h.name, PID: pid}, Signal: sig,
		}, TraceSignals)
	}
	return nil
}

// Adopt is the extended ptrace call: it gives the requesting user's LPM
// write access to the process control block and installs the default
// trace flags. Adoption fails if the process belongs to a different
// user, as in the paper.
func (h *Host) Adopt(pid proc.PID, user string) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.User != user {
		return fmt.Errorf("%w: %s cannot adopt %s's pid %d", ErrPermission, user, p.User, pid)
	}
	if p.State == proc.Exited || p.State == proc.Dead {
		return fmt.Errorf("%w: adopt pid %d", ErrDead, pid)
	}
	p.Traced = true
	if p.Mask == 0 {
		p.Mask = TraceDefault
	}
	return nil
}

// SetTraceMask adjusts the event granularity for an adopted process.
func (h *Host) SetTraceMask(pid proc.PID, user string, mask TraceMask) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.User != user {
		return fmt.Errorf("%w: %s cannot trace %s's pid %d", ErrPermission, user, p.User, pid)
	}
	if !p.Traced {
		return fmt.Errorf("%w: pid %d not adopted", ErrPermission, pid)
	}
	p.Mask = mask
	return nil
}

// SetForeground moves a process between the foreground and background.
// At most one process per user occupies the foreground on a host (the
// terminal's foreground process group): raising one demotes the
// previous occupant to the background.
func (h *Host) SetForeground(pid proc.PID, fg bool) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if fg {
		for _, q := range h.procs {
			if q.User == p.User && q.Foreground && q.PID != pid {
				q.Foreground = false
			}
		}
	}
	p.Foreground = fg
	return nil
}

// Foreground returns the user's current foreground process on this
// host, if any.
func (h *Host) Foreground(user string) (*Process, bool) {
	for _, p := range h.procs {
		if p.User == user && p.Foreground &&
			(p.State == proc.Running || p.State == proc.Stopped) {
			return p, true
		}
	}
	return nil, false
}

// --- system calls and accounting ---

// Syscall accounts one system call by the process. For untraced
// processes the only PPM overhead is comparing a flag to zero; the
// UntracedChecks counter lets the benchmarks observe this. Traced
// processes with TraceSyscalls report an event.
func (h *Host) Syscall(pid proc.PID, name string) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	if p.State != proc.Running {
		return fmt.Errorf("%w: syscall from pid %d", ErrDead, pid)
	}
	p.Rusage.Syscalls++
	p.Rusage.CPUTime += 50 * time.Microsecond
	p.growRSS(4)
	if !p.Traced {
		h.UntracedChecks++ // the ~40-line function is never entered
		return nil
	}
	h.emit(p, proc.Event{
		Kind: proc.EvSyscall, Proc: proc.GPID{Host: h.name, PID: pid}, Detail: name,
	}, TraceSyscalls)
	return nil
}

// OpenFD opens a descriptor on a path.
func (h *Host) OpenFD(pid proc.PID, path string) (int, error) {
	p, err := h.get(pid)
	if err != nil {
		return 0, err
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = path
	p.Rusage.Syscalls++
	p.growRSS(8)
	h.emit(p, proc.Event{
		Kind: proc.EvOpen, Proc: proc.GPID{Host: h.name, PID: pid}, Detail: path,
	}, TraceFiles)
	return fd, nil
}

// CloseFD closes a descriptor.
func (h *Host) CloseFD(pid proc.PID, fd int) error {
	p, err := h.get(pid)
	if err != nil {
		return err
	}
	path, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("%w: pid %d fd %d", ErrNoSuchProcess, pid, fd)
	}
	delete(p.fds, fd)
	p.Rusage.Syscalls++
	h.emit(p, proc.Event{
		Kind: proc.EvClose, Proc: proc.GPID{Host: h.name, PID: pid}, Detail: path,
	}, TraceFiles)
	return nil
}

// AccountIPC records message traffic for a process (feeds the IPC
// tracing tool).
func (h *Host) AccountIPC(pid proc.PID, sent, recv int64, detail string) {
	p, err := h.get(pid)
	if err != nil {
		return
	}
	p.Rusage.MsgsSent += sent
	p.Rusage.MsgsRecv += recv
	h.emit(p, proc.Event{
		Kind: proc.EvIPC, Proc: proc.GPID{Host: h.name, PID: pid}, Detail: detail,
	}, TraceIPC)
}

// --- workload (background load generation) ---

// SpawnWorkload creates a CPU-bound background process with the given
// duty cycle (runNum/runDen of the time runnable). These drive the load
// average for the Table 1 experiment.
func (h *Host) SpawnWorkload(name, user string, dutyNum, dutyDen int) (*Process, error) {
	if dutyDen <= 0 || dutyNum < 0 || dutyNum > dutyDen {
		return nil, fmt.Errorf("%w: bad duty cycle %d/%d", ErrPermission, dutyNum, dutyDen)
	}
	p, err := h.Spawn(name, user)
	if err != nil {
		return nil, err
	}
	p.dutyNum = dutyNum
	p.dutyDen = dutyDen
	// Random phase so multiple workloads do not run in lockstep.
	phase := time.Duration(h.sched.Rand().Int63n(int64(workloadPeriod)))
	h.sched.After(phase, func() { h.workloadTick(p.PID) })
	return p, nil
}

// workloadPeriod is the on+off cycle length of a workload process.
const workloadPeriod = 80 * time.Millisecond

func (h *Host) workloadTick(pid proc.PID) {
	if !h.up {
		return
	}
	p, ok := h.procs[pid]
	if !ok || p.State == proc.Exited || p.State == proc.Dead {
		return
	}
	if p.State == proc.Stopped {
		h.setRunnable(p, false)
		h.sched.After(workloadPeriod, func() { h.workloadTick(pid) })
		return
	}
	on := time.Duration(int64(workloadPeriod) * int64(p.dutyNum) / int64(p.dutyDen))
	off := workloadPeriod - on
	h.setRunnable(p, on > 0)
	if p.running {
		p.Rusage.CPUTime += on
	}
	h.sched.After(on, func() {
		q, ok := h.procs[pid]
		if !ok {
			return
		}
		if off > 0 {
			h.setRunnable(q, false)
		}
		h.sched.After(off, func() { h.workloadTick(pid) })
	})
}

// --- kernel -> LPM event messages ---

// SetEventSink installs the per-user kernel socket: events for that
// user's traced processes are delivered to fn with the load-dependent
// Table 1 latency.
func (h *Host) SetEventSink(user string, fn func(proc.Event)) {
	if fn == nil {
		delete(h.sinks, user)
		return
	}
	h.sinks[user] = fn
}

// emit delivers an event for p if the process is traced, the mask
// includes the event class (class 0 means "never deliver") and a sink
// exists. Delivery pays the modelled kernel-to-LPM message time.
func (h *Host) emit(p *Process, ev proc.Event, class TraceMask) {
	if !p.Traced || class == 0 || p.Mask&class == 0 {
		return
	}
	sink, ok := h.sinks[p.User]
	if !ok {
		return
	}
	ev.At = h.sched.Now().Duration()
	h.KernelMsgs++
	h.metrics.Counter("kernel.events." + ev.Kind.String()).Inc()
	h.journal.Append(journal.KernelEvent, h.name,
		fmt.Sprintf("%s proc=%s", ev.Kind, ev.Proc))
	delay := h.model.KernelMsgDelivery(h.LoadAvg())
	h.metrics.Histogram("kernel.delivery").Observe(delay)
	// Attribute the 112-byte message's delivery window to the operation
	// whose kernel action produced it (the caller wraps that region in
	// Tracer.Exchange).
	if ctx := h.tracer.Active(); ctx.Valid() {
		h.tracer.AddSpan(h.name, "kernel.event."+ev.Kind.String(), ctx,
			ev.At, ev.At+delay)
	}
	h.sched.After(delay, func() {
		if h.up {
			sink(ev)
		}
	})
}

// MeasureDelivery returns the modelled delivery latency at the current
// load; the Table 1 harness reads this alongside real event streams.
func (h *Host) MeasureDelivery() time.Duration {
	return h.model.KernelMsgDelivery(h.LoadAvg())
}

// --- queries ---

// Lookup returns the process table entry.
func (h *Host) Lookup(pid proc.PID) (*Process, error) { return h.get(pid) }

// ProcessesOf returns snapshot records for every table entry belonging
// to user, sorted by pid.
func (h *Host) ProcessesOf(user string) []proc.Info {
	var out []proc.Info
	for _, p := range h.procs {
		if p.User != user {
			continue
		}
		out = append(out, h.infoOf(p))
	}
	detord.SortBy(out, func(i proc.Info) proc.PID { return i.ID.PID })
	return out
}

func (h *Host) infoOf(p *Process) proc.Info {
	return proc.Info{
		ID:        proc.GPID{Host: h.name, PID: p.PID},
		Parent:    p.Parent,
		Name:      p.Name,
		User:      p.User,
		State:     p.State,
		Rusage:    p.Rusage,
		ExitCode:  p.ExitCode,
		StartedAt: p.Started.Duration(),
		ExitedAt:  p.ExitedAt.Duration(),
	}
}

// Info returns the snapshot record of one process.
func (h *Host) Info(pid proc.PID) (proc.Info, error) {
	p, err := h.get(pid)
	if err != nil {
		return proc.Info{}, err
	}
	return h.infoOf(p), nil
}

// LiveCount returns the number of live (running or stopped) processes
// of user — the quantity the LPM's time-to-live logic watches.
func (h *Host) LiveCount(user string) int {
	n := 0
	for _, p := range h.procs {
		if p.User == user && (p.State == proc.Running || p.State == proc.Stopped) {
			n++
		}
	}
	return n
}

// Status is the kernel's live-introspection hook: the user's live and
// total process-table entry counts plus the load average as a x100
// fixed-point integer (status reports carry no floats). It allocates
// nothing.
func (h *Host) Status(user string) (live, total int, load100 int64) {
	for _, p := range h.procs {
		if p.User != user {
			continue
		}
		total++
		if p.State == proc.Running || p.State == proc.Stopped {
			live++
		}
	}
	return live, total, int64(h.LoadAvg() * 100)
}

// KillAll terminates every live process of user (the time-to-die
// action: "exit after having terminated all of the user's processes in
// that host").
func (h *Host) KillAll(user string) int {
	n := 0
	// Iterate in pid order: each kill emits events and journal records,
	// so the walk must be deterministic.
	for _, pid := range detord.Keys(h.procs) {
		p := h.procs[pid]
		if p.User == user && (p.State == proc.Running || p.State == proc.Stopped) {
			//ppmlint:allow errdrop the state guard above makes SIGKILL infallible here
			_ = h.Signal(pid, proc.SIGKILL)
			n++
		}
	}
	return n
}

// --- host failure ---

// Crash kills the host: all processes vanish without events, the event
// sinks are gone, the load sampler stops.
func (h *Host) Crash() {
	if !h.up {
		return
	}
	h.up = false
	h.procs = make(map[proc.PID]*Process)
	h.sinks = make(map[string]func(proc.Event))
	h.runq = 0
	h.laBase = 0
	h.laFrom = h.sched.Now()
	h.busyUntil = 0
}

// Restart boots the host with an empty process table.
func (h *Host) Restart() {
	if h.up {
		return
	}
	h.up = true
	h.runq = 0
	h.laBase = 0
	h.laFrom = h.sched.Now()
}
