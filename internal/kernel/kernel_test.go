package kernel

import (
	"errors"
	"testing"
	"time"

	"ppm/internal/calib"
	"ppm/internal/proc"
	"ppm/internal/sim"
)

func newHost(t *testing.T) (*sim.Scheduler, *Host) {
	t.Helper()
	s := sim.NewScheduler(1)
	return s, NewHost(s, "vax1", calib.ModelVAX780)
}

func TestSpawnAndLookup(t *testing.T) {
	_, h := newHost(t)
	p, err := h.Spawn("sh", "felipe")
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1 || p.State != proc.Running || p.User != "felipe" {
		t.Fatalf("spawned %+v", p)
	}
	got, err := h.Lookup(p.PID)
	if err != nil || got != p {
		t.Fatal("lookup failed")
	}
	if _, err := h.Lookup(999); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestForkInheritsUserTraceAndFDs(t *testing.T) {
	_, h := newHost(t)
	parent, _ := h.Spawn("sh", "felipe")
	if err := h.Adopt(parent.PID, "felipe"); err != nil {
		t.Fatal(err)
	}
	fd, err := h.OpenFD(parent.PID, "/tmp/x")
	if err != nil {
		t.Fatal(err)
	}
	child, err := h.Fork(parent.PID, "worker")
	if err != nil {
		t.Fatal(err)
	}
	if child.User != "felipe" || !child.Traced || child.Mask != TraceDefault {
		t.Fatalf("child did not inherit: %+v", child)
	}
	if child.PPID != parent.PID || child.Parent != (proc.GPID{Host: "vax1", PID: parent.PID}) {
		t.Fatalf("parentage wrong: %+v", child)
	}
	found := false
	for _, s := range child.OpenFDs() {
		if s == "3:/tmp/x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("child fds = %v, want inherited fd %d", child.OpenFDs(), fd)
	}
}

func TestForkFromDeadFails(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("sh", "felipe")
	_ = h.Exit(p.PID, 0)
	if _, err := h.Fork(p.PID, "x"); !errors.Is(err, ErrDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestExitRetainsRecordUntilReap(t *testing.T) {
	s, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Exit(p.PID, 3); err != nil {
		t.Fatal(err)
	}
	got, err := h.Lookup(p.PID)
	if err != nil {
		t.Fatal("exited process should remain visible")
	}
	if got.State != proc.Exited || got.ExitCode != 3 || got.ExitedAt != sim.Time(time.Second) {
		t.Fatalf("exit record: %+v", got)
	}
	if err := h.Exit(p.PID, 0); !errors.Is(err, ErrDead) {
		t.Fatal("double exit should fail")
	}
	if err := h.Reap(p.PID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lookup(p.PID); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatal("reaped process still visible")
	}
}

func TestReapLiveProcessRejected(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := h.Reap(p.PID); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
}

func TestSignalSemantics(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := h.Signal(p.PID, proc.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Stopped {
		t.Fatalf("state = %v, want stopped", p.State)
	}
	if err := h.Signal(p.PID, proc.SIGCONT); err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Running {
		t.Fatalf("state = %v, want running", p.State)
	}
	if err := h.Signal(p.PID, proc.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Running {
		t.Fatal("user signal should not change state")
	}
	if err := h.Signal(p.PID, proc.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if p.State != proc.Exited || p.ExitCode != 128+int(proc.SIGKILL) {
		t.Fatalf("killed: %+v", p)
	}
	if err := h.Signal(p.PID, proc.SIGCONT); !errors.Is(err, ErrDead) {
		t.Fatal("signal to exited process should fail")
	}
}

func TestAdoptPermissions(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := h.Adopt(p.PID, "mallory"); !errors.Is(err, ErrPermission) {
		t.Fatalf("cross-user adoption: %v", err)
	}
	if err := h.Adopt(p.PID, "felipe"); err != nil {
		t.Fatal(err)
	}
	if !p.Traced || p.Mask != TraceDefault {
		t.Fatalf("adoption flags: %+v", p)
	}
}

func TestAdoptExitedFails(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	_ = h.Exit(p.PID, 0)
	if err := h.Adopt(p.PID, "felipe"); !errors.Is(err, ErrDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetTraceMask(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := h.SetTraceMask(p.PID, "felipe", TraceAll); !errors.Is(err, ErrPermission) {
		t.Fatal("mask on unadopted process should fail")
	}
	_ = h.Adopt(p.PID, "felipe")
	if err := h.SetTraceMask(p.PID, "mallory", TraceAll); !errors.Is(err, ErrPermission) {
		t.Fatal("cross-user mask should fail")
	}
	if err := h.SetTraceMask(p.PID, "felipe", TraceAll); err != nil {
		t.Fatal(err)
	}
	if p.Mask != TraceAll {
		t.Fatal("mask not applied")
	}
}

func collectEvents(h *Host, user string) *[]proc.Event {
	var evs []proc.Event
	h.SetEventSink(user, func(ev proc.Event) { evs = append(evs, ev) })
	return &evs
}

func TestEventsDeliveredForTracedOnly(t *testing.T) {
	s, h := newHost(t)
	evs := collectEvents(h, "felipe")
	traced, _ := h.Spawn("traced", "felipe")
	plain, _ := h.Spawn("plain", "felipe")
	_ = h.Adopt(traced.PID, "felipe")
	_, _ = h.Fork(traced.PID, "child")
	_, _ = h.Fork(plain.PID, "child") // untraced: no event
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if len(*evs) != 1 || (*evs)[0].Kind != proc.EvFork {
		t.Fatalf("events = %+v, want one fork", *evs)
	}
	if (*evs)[0].Proc != (proc.GPID{Host: "vax1", PID: traced.PID}) {
		t.Fatal("event for wrong process")
	}
}

func TestEventGranularityMask(t *testing.T) {
	s, h := newHost(t)
	evs := collectEvents(h, "felipe")
	p, _ := h.Spawn("job", "felipe")
	_ = h.Adopt(p.PID, "felipe")
	// Default mask excludes syscalls and files.
	_ = h.Syscall(p.PID, "read")
	_, _ = h.OpenFD(p.PID, "/tmp/x")
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if len(*evs) != 0 {
		t.Fatalf("default mask leaked events: %+v", *evs)
	}
	// Full granularity reports both.
	_ = h.SetTraceMask(p.PID, "felipe", TraceAll)
	_ = h.Syscall(p.PID, "read")
	_, _ = h.OpenFD(p.PID, "/tmp/y")
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if len(*evs) != 2 {
		t.Fatalf("TraceAll events = %+v", *evs)
	}
}

func TestEventDeliveryLatencyAtZeroLoad(t *testing.T) {
	s, h := newHost(t)
	var deliveredAt sim.Time
	h.SetEventSink("felipe", func(proc.Event) { deliveredAt = s.Now() })
	p, _ := h.Spawn("job", "felipe")
	_ = h.Adopt(p.PID, "felipe")
	sentAt := s.Now()
	_ = h.Signal(p.PID, proc.SIGSTOP)
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	lat := deliveredAt.Sub(sentAt)
	// Zero load: MsgBase of the VAX 780 (about 6.1 ms).
	if lat < 5*time.Millisecond || lat > 8*time.Millisecond {
		t.Fatalf("zero-load delivery = %v, want ~6.1ms", lat)
	}
}

func TestUntracedSyscallCountsCheckOnly(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	for i := 0; i < 10; i++ {
		_ = h.Syscall(p.PID, "read")
	}
	if h.UntracedChecks != 10 {
		t.Fatalf("checks = %d, want 10", h.UntracedChecks)
	}
	if h.KernelMsgs != 0 {
		t.Fatal("untraced syscalls sent kernel messages")
	}
}

func TestLoadAverageConvergesToWorkload(t *testing.T) {
	s, h := newHost(t)
	// Three always-on workloads: run queue is 3.
	for i := 0; i < 3; i++ {
		if _, err := h.SpawnWorkload("hog", "felipe", 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	la := h.LoadAvg()
	if la < 2.6 || la > 3.2 {
		t.Fatalf("la = %.2f, want ~3", la)
	}
}

func TestDutyCycledWorkloadHalvesLoad(t *testing.T) {
	s, h := newHost(t)
	for i := 0; i < 3; i++ {
		if _, err := h.SpawnWorkload("hog", "felipe", 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	la := h.LoadAvg()
	if la < 1.0 || la > 2.0 {
		t.Fatalf("la = %.2f, want ~1.5", la)
	}
}

func TestWorkloadBadDutyRejected(t *testing.T) {
	_, h := newHost(t)
	if _, err := h.SpawnWorkload("hog", "u", 2, 1); err == nil {
		t.Fatal("duty > 1 accepted")
	}
	if _, err := h.SpawnWorkload("hog", "u", 1, 0); err == nil {
		t.Fatal("zero denominator accepted")
	}
}

func TestStoppedWorkloadLeavesRunQueue(t *testing.T) {
	s, h := newHost(t)
	p, _ := h.SpawnWorkload("hog", "felipe", 1, 1)
	if err := s.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.LoadAvg() < 0.8 {
		t.Fatalf("la = %.2f before stop", h.LoadAvg())
	}
	_ = h.Signal(p.PID, proc.SIGSTOP)
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.LoadAvg() > 0.2 {
		t.Fatalf("la = %.2f after stop, want ~0", h.LoadAvg())
	}
}

func TestDeliveryLatencyGrowsWithLoad(t *testing.T) {
	s, h := newHost(t)
	idle := h.MeasureDelivery()
	for i := 0; i < 5; i++ {
		_, _ = h.SpawnWorkload("hog", "felipe", 1, 1)
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	loaded := h.MeasureDelivery()
	if loaded <= idle {
		t.Fatalf("delivery idle=%v loaded=%v, want growth", idle, loaded)
	}
}

func TestExecCPUSerializes(t *testing.T) {
	s, h := newHost(t)
	var doneA, doneB sim.Time
	h.ExecCPU(10*time.Millisecond, func() { doneA = s.Now() })
	h.ExecCPU(10*time.Millisecond, func() { doneB = s.Now() })
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if doneA != sim.Time(10*time.Millisecond) {
		t.Fatalf("A done at %v", doneA)
	}
	if doneB != sim.Time(20*time.Millisecond) {
		t.Fatalf("B done at %v, want serialized 20ms", doneB)
	}
}

func TestExecCPUSlowerOnSun(t *testing.T) {
	s := sim.NewScheduler(1)
	vax := NewHost(s, "vax", calib.ModelVAX780)
	sun := NewHost(s, "sun", calib.ModelSunII)
	var vaxDone, sunDone sim.Time
	vax.ExecCPU(10*time.Millisecond, func() { vaxDone = s.Now() })
	sun.ExecCPU(10*time.Millisecond, func() { sunDone = s.Now() })
	if err := s.RunUntilIdle(10000); err != nil {
		t.Fatal(err)
	}
	if sunDone <= vaxDone {
		t.Fatalf("sun=%v vax=%v, Sun II should be slower", sunDone, vaxDone)
	}
}

func TestProcessesOfSortedAndFiltered(t *testing.T) {
	_, h := newHost(t)
	_, _ = h.Spawn("a", "felipe")
	_, _ = h.Spawn("x", "other")
	_, _ = h.Spawn("b", "felipe")
	got := h.ProcessesOf("felipe")
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("got %+v", got)
	}
	for _, p := range got {
		if p.User != "felipe" {
			t.Fatal("foreign process leaked")
		}
	}
}

func TestLiveCountAndKillAll(t *testing.T) {
	_, h := newHost(t)
	a, _ := h.Spawn("a", "felipe")
	_, _ = h.Spawn("b", "felipe")
	_, _ = h.Spawn("x", "other")
	_ = h.Signal(a.PID, proc.SIGSTOP) // stopped still counts as live
	if n := h.LiveCount("felipe"); n != 2 {
		t.Fatalf("live = %d, want 2", n)
	}
	if n := h.KillAll("felipe"); n != 2 {
		t.Fatalf("killed = %d, want 2", n)
	}
	if n := h.LiveCount("felipe"); n != 0 {
		t.Fatalf("live after KillAll = %d", n)
	}
	if n := h.LiveCount("other"); n != 1 {
		t.Fatal("KillAll must not touch other users")
	}
}

func TestCrashDropsEverythingSilently(t *testing.T) {
	s, h := newHost(t)
	evs := collectEvents(h, "felipe")
	p, _ := h.Spawn("job", "felipe")
	_ = h.Adopt(p.PID, "felipe")
	h.Crash()
	if h.Up() {
		t.Fatal("host should be down")
	}
	if _, err := h.Lookup(p.PID); err == nil {
		t.Fatal("process survived crash")
	}
	if _, err := h.Spawn("x", "felipe"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("spawn on dead host: %v", err)
	}
	if err := s.RunUntilIdle(100000); err != nil {
		t.Fatal(err)
	}
	if len(*evs) != 0 {
		t.Fatal("crash emitted events")
	}
}

func TestRestartBootsClean(t *testing.T) {
	s, h := newHost(t)
	_, _ = h.Spawn("job", "felipe")
	h.Crash()
	h.Restart()
	if !h.Up() {
		t.Fatal("host should be up")
	}
	p, err := h.Spawn("fresh", "felipe")
	if err != nil {
		t.Fatal(err)
	}
	if p.PID == 1 {
		// PIDs continue; either behaviour is fine, but the table must
		// contain only the fresh process.
		t.Log("pid counter restarted")
	}
	if n := len(h.ProcessesOf("felipe")); n != 1 {
		t.Fatalf("process table after restart: %d entries", n)
	}
	// Load sampling resumes.
	_, _ = h.SpawnWorkload("hog", "felipe", 1, 1)
	if err := s.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.LoadAvg() < 0.5 {
		t.Fatalf("load sampler did not resume: la=%.2f", h.LoadAvg())
	}
}

func TestExecRename(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("sh", "felipe")
	if err := h.Exec(p.PID, "a.out"); err != nil {
		t.Fatal(err)
	}
	if p.Name != "a.out" {
		t.Fatalf("name = %q", p.Name)
	}
	_ = h.Exit(p.PID, 0)
	if err := h.Exec(p.PID, "b.out"); !errors.Is(err, ErrDead) {
		t.Fatal("exec on exited process should fail")
	}
}

func TestFDLifecycle(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("sh", "felipe")
	fd, err := h.OpenFD(p.PID, "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CloseFD(p.PID, fd); err != nil {
		t.Fatal(err)
	}
	if err := h.CloseFD(p.PID, fd); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestAccountIPC(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("sh", "felipe")
	h.AccountIPC(p.PID, 2, 3, "circuit")
	if p.Rusage.MsgsSent != 2 || p.Rusage.MsgsRecv != 3 {
		t.Fatalf("rusage = %+v", p.Rusage)
	}
	h.AccountIPC(999, 1, 1, "nobody") // silently ignored
}

func TestSetLogicalParent(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("remote-child", "felipe")
	want := proc.GPID{Host: "othervax", PID: 7}
	if err := h.SetLogicalParent(p.PID, want); err != nil {
		t.Fatal(err)
	}
	if p.Parent != want {
		t.Fatalf("parent = %v", p.Parent)
	}
	info, _ := h.Info(p.PID)
	if info.Parent != want {
		t.Fatal("info does not reflect logical parent")
	}
}

func TestSetForeground(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if err := h.SetForeground(p.PID, true); err != nil {
		t.Fatal(err)
	}
	if !p.Foreground {
		t.Fatal("not foreground")
	}
}

func TestForegroundGroupSingleOccupant(t *testing.T) {
	_, h := newHost(t)
	a, _ := h.Spawn("a", "felipe")
	b, _ := h.Spawn("b", "felipe")
	x, _ := h.Spawn("x", "other")
	if err := h.SetForeground(a.PID, true); err != nil {
		t.Fatal(err)
	}
	if err := h.SetForeground(x.PID, true); err != nil {
		t.Fatal(err)
	}
	// Raising b demotes a, but not the other user's foreground process.
	if err := h.SetForeground(b.PID, true); err != nil {
		t.Fatal(err)
	}
	if a.Foreground {
		t.Fatal("a should have been demoted")
	}
	if !b.Foreground || !x.Foreground {
		t.Fatal("b and x should be foreground")
	}
	fg, ok := h.Foreground("felipe")
	if !ok || fg.PID != b.PID {
		t.Fatalf("Foreground = %+v ok=%v", fg, ok)
	}
	_ = h.Signal(b.PID, proc.SIGKILL)
	if _, ok := h.Foreground("felipe"); ok {
		t.Fatal("dead process still reported foreground")
	}
}

func TestRSSModelGrowsAndCaps(t *testing.T) {
	_, h := newHost(t)
	p, _ := h.Spawn("job", "felipe")
	if p.Rusage.MaxRSSKB != 64 {
		t.Fatalf("base image = %d KB", p.Rusage.MaxRSSKB)
	}
	child, _ := h.Fork(p.PID, "kid")
	if child.Rusage.MaxRSSKB != 64 {
		t.Fatal("fork should copy the parent image size")
	}
	_, _ = h.OpenFD(p.PID, "/f")
	if p.Rusage.MaxRSSKB != 72 {
		t.Fatalf("rss after open = %d", p.Rusage.MaxRSSKB)
	}
	for i := 0; i < 10000; i++ {
		_ = h.Syscall(p.PID, "brk")
	}
	if p.Rusage.MaxRSSKB != 1024 {
		t.Fatalf("rss should cap at 1024, got %d", p.Rusage.MaxRSSKB)
	}
}
