package kernel

import (
	"testing"
	"testing/quick"
	"time"

	"ppm/internal/calib"
	"ppm/internal/proc"
	"ppm/internal/sim"
)

// Property tests over random process-lifecycle action sequences.

type lifecycleOp byte

const (
	opSpawn lifecycleOp = iota
	opFork
	opStop
	opCont
	opKill
	opExit
	opReap
	opAdopt
	nLifecycleOps
)

// TestPropertyProcessTableInvariants applies a random action sequence
// and checks global invariants after every step:
//   - every live child's parent record exists or the child became a root
//   - state transitions are legal (no running-after-exit)
//   - PIDs never repeat
//   - LiveCount equals a direct count
func TestPropertyProcessTableInvariants(t *testing.T) {
	f := func(ops []byte) bool {
		s := sim.NewScheduler(1)
		h := NewHost(s, "m", calib.ModelVAX780)
		var pids []proc.PID
		seen := map[proc.PID]bool{}
		for _, b := range ops {
			op := lifecycleOp(b) % nLifecycleOps
			pick := func() proc.PID {
				if len(pids) == 0 {
					return 0
				}
				return pids[int(b/7)%len(pids)]
			}
			switch op {
			case opSpawn:
				p, err := h.Spawn("p", "u")
				if err != nil {
					return false
				}
				if seen[p.PID] {
					return false // PID reuse
				}
				seen[p.PID] = true
				pids = append(pids, p.PID)
			case opFork:
				if pid := pick(); pid != 0 {
					if child, err := h.Fork(pid, "c"); err == nil {
						if seen[child.PID] {
							return false
						}
						seen[child.PID] = true
						pids = append(pids, child.PID)
					}
				}
			case opStop:
				if pid := pick(); pid != 0 {
					_ = h.Signal(pid, proc.SIGSTOP)
				}
			case opCont:
				if pid := pick(); pid != 0 {
					_ = h.Signal(pid, proc.SIGCONT)
				}
			case opKill:
				if pid := pick(); pid != 0 {
					_ = h.Signal(pid, proc.SIGKILL)
				}
			case opExit:
				if pid := pick(); pid != 0 {
					_ = h.Exit(pid, int(b))
				}
			case opReap:
				if pid := pick(); pid != 0 {
					_ = h.Reap(pid)
				}
			case opAdopt:
				if pid := pick(); pid != 0 {
					_ = h.Adopt(pid, "u")
				}
			}
			// Invariants.
			live := 0
			for _, info := range h.ProcessesOf("u") {
				p, err := h.Lookup(info.ID.PID)
				if err != nil {
					return false
				}
				switch p.State {
				case proc.Running, proc.Stopped:
					live++
				case proc.Exited:
					if p.ExitedAt < p.Started {
						return false
					}
				default:
					return false
				}
				// A local parent, if recorded, must have existed.
				if p.PPID != 0 && !seen[p.PPID] {
					return false
				}
			}
			if h.LiveCount("u") != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the load average always lies between 0 and the number of
// workload processes, and converges monotonically toward the active
// count when nothing changes.
func TestPropertyLoadAverageBounds(t *testing.T) {
	f := func(nHogs uint8, minutes uint8) bool {
		s := sim.NewScheduler(3)
		h := NewHost(s, "m", calib.ModelVAX780)
		n := int(nHogs%6) + 1
		for i := 0; i < n; i++ {
			if _, err := h.SpawnWorkload("hog", "u", 1, 1); err != nil {
				return false
			}
		}
		steps := int(minutes%8) + 1
		prev := -1.0
		for i := 0; i < steps; i++ {
			if err := s.RunFor(10 * time.Second); err != nil {
				return false
			}
			la := h.LoadAvg()
			if la < 0 || la > float64(n)+0.01 {
				return false
			}
			if la+1e-9 < prev {
				return false // must be non-decreasing toward n
			}
			prev = la
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: rusage counters never decrease.
func TestPropertyRusageMonotone(t *testing.T) {
	f := func(ops []byte) bool {
		s := sim.NewScheduler(1)
		h := NewHost(s, "m", calib.ModelVAX780)
		p, err := h.Spawn("p", "u")
		if err != nil {
			return false
		}
		var last proc.Rusage
		for _, b := range ops {
			switch b % 4 {
			case 0:
				_ = h.Syscall(p.PID, "x")
			case 1:
				_, _ = h.OpenFD(p.PID, "/f")
			case 2:
				h.AccountIPC(p.PID, 1, 0, "m")
			case 3:
				h.AccountIPC(p.PID, 0, 1, "m")
			}
			r := p.Rusage
			if r.Syscalls < last.Syscalls || r.CPUTime < last.CPUTime ||
				r.MsgsSent < last.MsgsSent || r.MsgsRecv < last.MsgsRecv {
				return false
			}
			last = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
