package config

import (
	"fmt"

	"ppm/internal/history"
	"ppm/internal/kernel"
	"ppm/internal/proc"
)

// Runner is the slice of the PPM subroutine interface a plan needs;
// the public Session type satisfies it.
type Runner interface {
	Home() string
	RunChild(host, name string, parent proc.GPID) (proc.GPID, error)
	SetTraceMask(pid proc.PID, mask kernel.TraceMask) error
	Signal(target proc.GPID, sig proc.Signal) error
	Stop(target proc.GPID) error
	Kill(target proc.GPID) error
	OnEvent(w *history.Watch) (remove func())
}

// Instance is a running instantiation of a plan: the name-to-identity
// map, the installed watches, and the notes its actions produced.
type Instance struct {
	plan    *Plan
	byName  map[string]proc.GPID
	notes   []string
	removes []func()
}

// Instantiate creates the plan's processes in declaration order and
// installs its watches on the runner's home LPM.
func (p *Plan) Instantiate(r Runner) (*Instance, error) {
	inst := &Instance{plan: p, byName: make(map[string]proc.GPID, len(p.Procs))}
	for _, d := range p.Procs {
		parent := proc.GPID{}
		if d.Parent != "" {
			parent = inst.byName[d.Parent]
		}
		id, err := r.RunChild(d.Host, d.Name, parent)
		if err != nil {
			return nil, fmt.Errorf("config: create %s on %s: %w", d.Name, d.Host, err)
		}
		inst.byName[d.Name] = id
		if d.Trace != 0 {
			if d.Host == r.Home() {
				if err := r.SetTraceMask(id.PID, d.Trace); err != nil {
					return nil, fmt.Errorf("config: trace %s: %w", d.Name, err)
				}
			} else {
				// Trace masks are set through the local kernel; remote
				// granularity stays at the adoption default.
				inst.note("trace levels for %s left at default (process is on %s)", d.Name, d.Host)
			}
		}
	}
	for _, w := range p.Watches {
		w := w
		hw := &history.Watch{Kind: w.Event, Signal: w.Signal}
		if w.Target != "*" {
			hw.Proc = inst.byName[w.Target]
		}
		hw.Action = func(ev proc.Event) { inst.act(r, w.Action, ev) }
		inst.removes = append(inst.removes, r.OnEvent(hw))
	}
	return inst, nil
}

// act executes one watch action.
func (inst *Instance) act(r Runner, a ActionDecl, ev proc.Event) {
	switch a.Kind {
	case ActSignal:
		if err := r.Signal(inst.byName[a.Target], a.Signal); err != nil {
			inst.note("action signal %s %v failed: %v", a.Target, a.Signal, err)
		} else {
			inst.note("signalled %s with %v after %v of %s", a.Target, a.Signal, ev.Kind, ev.Proc)
		}
	case ActKill:
		if err := r.Kill(inst.byName[a.Target]); err != nil {
			inst.note("action kill %s failed: %v", a.Target, err)
		} else {
			inst.note("killed %s after %v of %s", a.Target, ev.Kind, ev.Proc)
		}
	case ActStop:
		if err := r.Stop(inst.byName[a.Target]); err != nil {
			inst.note("action stop %s failed: %v", a.Target, err)
		} else {
			inst.note("stopped %s after %v of %s", a.Target, ev.Kind, ev.Proc)
		}
	case ActNote:
		inst.note("%s (on %v of %s)", a.Text, ev.Kind, ev.Proc)
	}
}

func (inst *Instance) note(format string, args ...any) {
	inst.notes = append(inst.notes, fmt.Sprintf(format, args...))
}

// Lookup returns the network identity of a declared process.
func (inst *Instance) Lookup(name string) (proc.GPID, bool) {
	id, ok := inst.byName[name]
	return id, ok
}

// Names returns the declared process names in declaration order.
func (inst *Instance) Names() []string {
	out := make([]string, 0, len(inst.plan.Procs))
	for _, d := range inst.plan.Procs {
		out = append(out, d.Name)
	}
	return out
}

// Notes returns the log of watch actions taken so far.
func (inst *Instance) Notes() []string {
	return append([]string(nil), inst.notes...)
}

// Close removes the instance's watches (the processes live on; the PPM
// outlives its tools).
func (inst *Instance) Close() {
	for _, rm := range inst.removes {
		rm()
	}
	inst.removes = nil
}
