package config

import (
	"errors"
	"strings"
	"testing"

	"ppm/internal/history"
	"ppm/internal/kernel"
	"ppm/internal/proc"
)

const sample = `
# a distributed build
computation build
recovery vax1 vax2

proc coord  on vax1 trace all
proc split  on vax1 parent coord
proc cc1    on vax2 parent split
proc cc2    on sun1 parent split fg
proc linker on vax1 parent coord trace lifecycle,signals

watch exit of cc1 do signal coord SIGUSR1
watch signal:SIGUSR2 of * do note unexpected interrupt
watch stop of linker do kill cc2
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "build" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Recovery) != 2 || p.Recovery[0] != "vax1" {
		t.Fatalf("recovery = %v", p.Recovery)
	}
	if len(p.Procs) != 5 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	coord := p.Procs[0]
	if coord.Name != "coord" || coord.Host != "vax1" || coord.Trace != kernel.TraceAll {
		t.Fatalf("coord = %+v", coord)
	}
	cc2 := p.Procs[3]
	if !cc2.Foreground || cc2.Parent != "split" || cc2.Host != "sun1" {
		t.Fatalf("cc2 = %+v", cc2)
	}
	linker := p.Procs[4]
	if linker.Trace != kernel.TraceLifecycle|kernel.TraceSignals {
		t.Fatalf("linker trace = %v", linker.Trace)
	}
	if len(p.Watches) != 3 {
		t.Fatalf("watches = %d", len(p.Watches))
	}
	w0 := p.Watches[0]
	if w0.Event != proc.EvExit || w0.Target != "cc1" ||
		w0.Action.Kind != ActSignal || w0.Action.Signal != proc.SIGUSR1 {
		t.Fatalf("watch0 = %+v", w0)
	}
	w1 := p.Watches[1]
	if w1.Event != proc.EvSignal || w1.Signal != proc.SIGUSR2 || w1.Target != "*" ||
		w1.Action.Kind != ActNote || w1.Action.Text != "unexpected interrupt" {
		t.Fatalf("watch1 = %+v", w1)
	}
	hosts := p.Hosts()
	want := []string{"sun1", "vax1", "vax2"}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v", hosts)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want error
	}{
		{"empty", "", ErrSyntax},
		{"unknown directive", "frobnicate x", ErrSyntax},
		{"proc missing on", "proc a vax1", ErrSyntax},
		{"duplicate proc", "proc a on h\nproc a on h", ErrDuplicate},
		{"undeclared parent", "proc a on h parent ghost", ErrUnknown},
		{"forward parent", "proc a on h parent b\nproc b on h", ErrUnknown},
		{"bad trace level", "proc a on h trace everything", ErrSyntax},
		{"watch undeclared target", "proc a on h\nwatch exit of ghost do kill a", ErrUnknown},
		{"watch undeclared action target", "proc a on h\nwatch exit of a do kill ghost", ErrUnknown},
		{"watch bad event", "proc a on h\nwatch melt of a do kill a", ErrSyntax},
		{"watch bad signal event", "proc a on h\nwatch signal:SIGWHAT of a do kill a", ErrSyntax},
		{"watch bad action", "proc a on h\nwatch exit of a do dance", ErrSyntax},
		{"watch bad action signal", "proc a on h\nwatch exit of a do signal a SIGWHAT", ErrSyntax},
		{"computation no name", "computation", ErrSyntax},
		{"recovery empty", "recovery", ErrSyntax},
		{"proc bad option", "proc a on h wibble", ErrSyntax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	p, err := Parse("# header\n\nproc a on h # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Procs) != 1 || p.Procs[0].Name != "a" {
		t.Fatalf("procs = %+v", p.Procs)
	}
}

// fakeRunner records the calls a plan makes.
type fakeRunner struct {
	home    string
	nextPID proc.PID
	created []ProcDecl
	parents map[string]proc.GPID
	traced  map[proc.PID]kernel.TraceMask
	watches []*history.Watch
	signals []string
	killed  []proc.GPID
	stopped []proc.GPID
	failOn  string
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{
		home:    "vax1",
		parents: make(map[string]proc.GPID),
		traced:  make(map[proc.PID]kernel.TraceMask),
	}
}

func (f *fakeRunner) Home() string { return f.home }

func (f *fakeRunner) RunChild(host, name string, parent proc.GPID) (proc.GPID, error) {
	if name == f.failOn {
		return proc.GPID{}, errors.New("boom")
	}
	f.nextPID++
	f.created = append(f.created, ProcDecl{Name: name, Host: host})
	f.parents[name] = parent
	return proc.GPID{Host: host, PID: f.nextPID}, nil
}

func (f *fakeRunner) SetTraceMask(pid proc.PID, mask kernel.TraceMask) error {
	f.traced[pid] = mask
	return nil
}

func (f *fakeRunner) Signal(target proc.GPID, sig proc.Signal) error {
	f.signals = append(f.signals, target.String()+":"+sig.String())
	return nil
}

func (f *fakeRunner) Stop(target proc.GPID) error {
	f.stopped = append(f.stopped, target)
	return nil
}

func (f *fakeRunner) Kill(target proc.GPID) error {
	f.killed = append(f.killed, target)
	return nil
}

func (f *fakeRunner) OnEvent(w *history.Watch) func() {
	f.watches = append(f.watches, w)
	idx := len(f.watches) - 1
	return func() { f.watches[idx] = nil }
}

func (f *fakeRunner) fire(ev proc.Event) {
	for _, w := range f.watches {
		if w == nil {
			continue
		}
		if w.Kind != 0 && ev.Kind != w.Kind {
			continue
		}
		if !w.Proc.IsZero() && ev.Proc != w.Proc && ev.Child != w.Proc {
			continue
		}
		if w.Signal != 0 && ev.Signal != w.Signal {
			continue
		}
		w.Action(ev)
	}
}

func TestInstantiate(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	r := newFakeRunner()
	inst, err := p.Instantiate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.created) != 5 {
		t.Fatalf("created = %d", len(r.created))
	}
	// Declaration order and genealogy.
	coord, _ := inst.Lookup("coord")
	split, _ := inst.Lookup("split")
	if r.parents["split"] != coord || r.parents["cc1"] != split {
		t.Fatalf("parents = %+v", r.parents)
	}
	// Local trace masks applied, remote ones noted.
	if r.traced[coord.PID] != kernel.TraceAll {
		t.Fatalf("coord trace = %v", r.traced[coord.PID])
	}
	names := inst.Names()
	if len(names) != 5 || names[0] != "coord" {
		t.Fatalf("names = %v", names)
	}
	if _, ok := inst.Lookup("ghost"); ok {
		t.Fatal("phantom lookup")
	}
	if len(r.watches) != 3 {
		t.Fatalf("watches = %d", len(r.watches))
	}
}

func TestInstantiateWatchActions(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	r := newFakeRunner()
	inst, err := p.Instantiate(r)
	if err != nil {
		t.Fatal(err)
	}
	cc1, _ := inst.Lookup("cc1")
	coord, _ := inst.Lookup("coord")
	cc2, _ := inst.Lookup("cc2")
	linker, _ := inst.Lookup("linker")

	// cc1 exits -> coord gets SIGUSR1.
	r.fire(proc.Event{Kind: proc.EvExit, Proc: cc1})
	if len(r.signals) != 1 || r.signals[0] != coord.String()+":SIGUSR1" {
		t.Fatalf("signals = %v", r.signals)
	}
	// Any SIGUSR2 -> note.
	r.fire(proc.Event{Kind: proc.EvSignal, Proc: coord, Signal: proc.SIGUSR2})
	found := false
	for _, n := range inst.Notes() {
		if strings.Contains(n, "unexpected interrupt") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes = %v", inst.Notes())
	}
	// linker stops -> cc2 killed.
	r.fire(proc.Event{Kind: proc.EvStop, Proc: linker})
	if len(r.killed) != 1 || r.killed[0] != cc2 {
		t.Fatalf("killed = %v", r.killed)
	}
	// Close removes the watches.
	inst.Close()
	r.fire(proc.Event{Kind: proc.EvExit, Proc: cc1})
	if len(r.signals) != 1 {
		t.Fatal("watch fired after Close")
	}
}

func TestInstantiateRemoteTraceNoted(t *testing.T) {
	p, err := Parse("proc w on vax9 trace all\n")
	if err != nil {
		t.Fatal(err)
	}
	r := newFakeRunner() // home vax1
	inst, err := p.Instantiate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.traced) != 0 {
		t.Fatal("remote trace mask should not have been applied locally")
	}
	if len(inst.Notes()) != 1 || !strings.Contains(inst.Notes()[0], "vax9") {
		t.Fatalf("notes = %v", inst.Notes())
	}
}

func TestInstantiateCreateFailure(t *testing.T) {
	p, err := Parse("proc a on h\nproc b on h\n")
	if err != nil {
		t.Fatal(err)
	}
	r := newFakeRunner()
	r.failOn = "b"
	if _, err := p.Instantiate(r); err == nil {
		t.Fatal("expected create failure to propagate")
	}
}
