// Package config implements a small configuration language for
// distributed computations. The paper notes that "the PPM does not
// currently support a configuration language; it provides access to
// its facilities through subroutine calls" — this package supplies the
// missing layer, in the spirit of the configuration languages it cites
// (DPL-82, Kramer & Magee's dynamic configuration): a declarative
// description of processes, their placement, their genealogy, tracing
// granularity and event-driven actions, compiled onto the PPM's
// subroutine interface.
//
// Grammar (line oriented; '#' starts a comment):
//
//	computation NAME
//	recovery HOST...
//	proc NAME on HOST [parent NAME] [fg] [trace LEVEL[,LEVEL...]]
//	watch EVENT of (NAME|*) do ACTION
//
//	EVENT  := exit | stop | cont | fork | exec | signal:SIGNAME
//	LEVEL  := lifecycle | signals | syscalls | ipc | files | all | default
//	ACTION := signal NAME SIGNAME | kill NAME | stop NAME | note TEXT
//
// Processes are instantiated in declaration order; a parent must be
// declared before its children. Watches observe the home LPM's kernel
// events (events for processes on remote hosts are recorded by the
// remote LPMs, as in the paper).
package config

import (
	"errors"
	"fmt"
	"strings"

	"ppm/internal/detord"
	"ppm/internal/kernel"
	"ppm/internal/proc"
)

// Parse errors.
var (
	ErrSyntax    = errors.New("config: syntax error")
	ErrUnknown   = errors.New("config: unknown name")
	ErrDuplicate = errors.New("config: duplicate name")
)

// ProcDecl is one declared process.
type ProcDecl struct {
	Name       string
	Host       string
	Parent     string // "" = root
	Foreground bool
	Trace      kernel.TraceMask // 0 = leave the adoption default
}

// EventKindSignal marks a watch on a specific signal.
type WatchDecl struct {
	Event  proc.EventKind
	Signal proc.Signal // for signal:NAME events
	Target string      // process name or "*"
	Action ActionDecl
}

// ActionKind enumerates watch actions.
type ActionKind int

// Watch actions.
const (
	ActSignal ActionKind = iota + 1
	ActKill
	ActStop
	ActNote
)

// ActionDecl is what a watch does when it fires.
type ActionDecl struct {
	Kind   ActionKind
	Target string      // process name for signal/kill/stop
	Signal proc.Signal // for ActSignal
	Text   string      // for ActNote
}

// Plan is a parsed computation description.
type Plan struct {
	Name     string
	Recovery []string
	Procs    []ProcDecl
	Watches  []WatchDecl
}

// signalNames maps the names accepted in configs.
var signalNames = map[string]proc.Signal{
	"SIGINT": proc.SIGINT, "SIGKILL": proc.SIGKILL, "SIGTERM": proc.SIGTERM,
	"SIGSTOP": proc.SIGSTOP, "SIGCONT": proc.SIGCONT,
	"SIGUSR1": proc.SIGUSR1, "SIGUSR2": proc.SIGUSR2,
}

// eventNames maps watchable event names.
var eventNames = map[string]proc.EventKind{
	"exit": proc.EvExit, "stop": proc.EvStop, "cont": proc.EvCont,
	"fork": proc.EvFork, "exec": proc.EvExec,
}

// traceNames maps granularity levels.
var traceNames = map[string]kernel.TraceMask{
	"lifecycle": kernel.TraceLifecycle,
	"signals":   kernel.TraceSignals,
	"syscalls":  kernel.TraceSyscalls,
	"ipc":       kernel.TraceIPC,
	"files":     kernel.TraceFiles,
	"all":       kernel.TraceAll,
	"default":   kernel.TraceDefault,
}

// Parse reads a computation description.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	declared := map[string]bool{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%w: line %d: %s", ErrSyntax, lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "computation":
			if len(fields) != 2 {
				return nil, fail("computation NAME")
			}
			p.Name = fields[1]

		case "recovery":
			if len(fields) < 2 {
				return nil, fail("recovery HOST...")
			}
			p.Recovery = append(p.Recovery, fields[1:]...)

		case "proc":
			decl, err := parseProc(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo+1, err)
			}
			if declared[decl.Name] {
				return nil, fmt.Errorf("%w: line %d: proc %q", ErrDuplicate, lineNo+1, decl.Name)
			}
			if decl.Parent != "" && !declared[decl.Parent] {
				return nil, fmt.Errorf("%w: line %d: parent %q not declared", ErrUnknown, lineNo+1, decl.Parent)
			}
			declared[decl.Name] = true
			p.Procs = append(p.Procs, decl)

		case "watch":
			decl, err := parseWatch(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo+1, err)
			}
			if decl.Target != "*" && !declared[decl.Target] {
				return nil, fmt.Errorf("%w: line %d: watch target %q not declared", ErrUnknown, lineNo+1, decl.Target)
			}
			if decl.Action.Target != "" && !declared[decl.Action.Target] {
				return nil, fmt.Errorf("%w: line %d: action target %q not declared", ErrUnknown, lineNo+1, decl.Action.Target)
			}
			p.Watches = append(p.Watches, decl)

		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if len(p.Procs) == 0 {
		return nil, fmt.Errorf("%w: no processes declared", ErrSyntax)
	}
	return p, nil
}

// parseProc parses: NAME on HOST [parent NAME] [fg] [trace L[,L...]]
func parseProc(fields []string) (ProcDecl, error) {
	if len(fields) < 3 || fields[1] != "on" {
		return ProcDecl{}, errors.New("proc NAME on HOST ...")
	}
	decl := ProcDecl{Name: fields[0], Host: fields[2]}
	i := 3
	for i < len(fields) {
		switch fields[i] {
		case "parent":
			if i+1 >= len(fields) {
				return ProcDecl{}, errors.New("parent needs a name")
			}
			decl.Parent = fields[i+1]
			i += 2
		case "fg":
			decl.Foreground = true
			i++
		case "trace":
			if i+1 >= len(fields) {
				return ProcDecl{}, errors.New("trace needs levels")
			}
			for _, lvl := range strings.Split(fields[i+1], ",") {
				mask, ok := traceNames[lvl]
				if !ok {
					return ProcDecl{}, fmt.Errorf("unknown trace level %q", lvl)
				}
				decl.Trace |= mask
			}
			i += 2
		default:
			return ProcDecl{}, fmt.Errorf("unknown proc option %q", fields[i])
		}
	}
	return decl, nil
}

// parseWatch parses: EVENT of (NAME|*) do ACTION...
func parseWatch(fields []string) (WatchDecl, error) {
	if len(fields) < 5 || fields[1] != "of" || fields[3] != "do" {
		return WatchDecl{}, errors.New("watch EVENT of NAME do ACTION")
	}
	var decl WatchDecl
	evName := fields[0]
	if sigName, ok := strings.CutPrefix(evName, "signal:"); ok {
		sig, ok := signalNames[sigName]
		if !ok {
			return WatchDecl{}, fmt.Errorf("unknown signal %q", sigName)
		}
		decl.Event = proc.EvSignal
		decl.Signal = sig
	} else {
		kind, ok := eventNames[evName]
		if !ok {
			return WatchDecl{}, fmt.Errorf("unknown event %q", evName)
		}
		decl.Event = kind
	}
	decl.Target = fields[2]
	action := fields[4:]
	switch action[0] {
	case "signal":
		if len(action) != 3 {
			return WatchDecl{}, errors.New("do signal NAME SIGNAME")
		}
		sig, ok := signalNames[action[2]]
		if !ok {
			return WatchDecl{}, fmt.Errorf("unknown signal %q", action[2])
		}
		decl.Action = ActionDecl{Kind: ActSignal, Target: action[1], Signal: sig}
	case "kill":
		if len(action) != 2 {
			return WatchDecl{}, errors.New("do kill NAME")
		}
		decl.Action = ActionDecl{Kind: ActKill, Target: action[1]}
	case "stop":
		if len(action) != 2 {
			return WatchDecl{}, errors.New("do stop NAME")
		}
		decl.Action = ActionDecl{Kind: ActStop, Target: action[1]}
	case "note":
		decl.Action = ActionDecl{Kind: ActNote, Text: strings.Join(action[1:], " ")}
	default:
		return WatchDecl{}, fmt.Errorf("unknown action %q", action[0])
	}
	return decl, nil
}

// Hosts returns the sorted set of hosts the plan places processes on.
func (p *Plan) Hosts() []string {
	set := map[string]bool{}
	for _, d := range p.Procs {
		set[d.Host] = true
	}
	return detord.Keys(set)
}
