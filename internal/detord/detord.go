// Package detord provides the repo's one blessed idiom for
// deterministic iteration and ordering.
//
// Go map iteration order is deliberately randomized, so any loop over a
// map whose body has order-sensitive effects (appends, sends, metric or
// trace emission, output formatting) is a determinism bug: two runs of
// the same seeded simulation would diverge. The golden-output CI job and
// every snapshot test depend on byte-identical runs, so ordered
// iteration must go through a single recognizable helper rather than
// ad-hoc collect-and-sort snippets scattered per package.
//
// The maporder analyzer (internal/analysis/maporder) knows this package:
// ranging over detord.Keys(m) is ordered by construction, and a
// collect-append loop whose slice is later passed to detord.Sort or
// detord.SortBy is treated as the sorted-before-use idiom.
package detord

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m in ascending order. It is the canonical
// way to iterate a map deterministically:
//
//	for _, k := range detord.Keys(m) {
//		use(k, m[k])
//	}
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Sort sorts a slice of ordered elements ascending, in place.
func Sort[S ~[]E, E cmp.Ordered](s S) {
	slices.Sort(s)
}

// SortBy sorts s in place, ascending by key(e). The sort is stable, so
// elements with equal keys keep their input order; callers that need a
// total order should use SortBy2 or include a tie-breaking component in
// the key.
func SortBy[S ~[]E, E any, K cmp.Ordered](s S, key func(E) K) {
	slices.SortStableFunc(s, func(a, b E) int {
		return cmp.Compare(key(a), key(b))
	})
}

// SortBy2 sorts s in place, ascending by key1(e) and then, for equal
// primary keys, by key2(e). The sort is stable.
func SortBy2[S ~[]E, E any, K1 cmp.Ordered, K2 cmp.Ordered](s S, key1 func(E) K1, key2 func(E) K2) {
	slices.SortStableFunc(s, func(a, b E) int {
		if c := cmp.Compare(key1(a), key1(b)); c != 0 {
			return c
		}
		return cmp.Compare(key2(a), key2(b))
	})
}
