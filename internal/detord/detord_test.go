package detord

import (
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[string]int{"c": 3, "a": 1, "b": 2}
	if got, want := Keys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if got := Keys(map[int]string(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
	// Named map types work through the ~map constraint.
	type registry map[int]string
	if got, want := Keys(registry{9: "x", 4: "y"}), []int{4, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys(named) = %v, want %v", got, want)
	}
}

func TestKeysDeterministic(t *testing.T) {
	m := map[string]bool{}
	for _, k := range []string{"h3", "h1", "h9", "h2", "h5"} {
		m[k] = true
	}
	first := Keys(m)
	for i := 0; i < 20; i++ {
		if got := Keys(m); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: Keys = %v, want %v", i, got, first)
		}
	}
}

func TestSort(t *testing.T) {
	s := []int{5, 1, 4}
	Sort(s)
	if want := []int{1, 4, 5}; !reflect.DeepEqual(s, want) {
		t.Fatalf("Sort = %v, want %v", s, want)
	}
}

func TestSortBy(t *testing.T) {
	type rec struct {
		name string
		n    int
	}
	s := []rec{{"b", 1}, {"a", 2}, {"c", 0}}
	SortBy(s, func(r rec) string { return r.name })
	if s[0].name != "a" || s[1].name != "b" || s[2].name != "c" {
		t.Fatalf("SortBy = %v", s)
	}
	// Stability: equal keys keep input order.
	s = []rec{{"x", 1}, {"x", 2}, {"a", 3}}
	SortBy(s, func(r rec) string { return r.name })
	if s[1].n != 1 || s[2].n != 2 {
		t.Fatalf("SortBy not stable: %v", s)
	}
}

func TestSortBy2(t *testing.T) {
	type id struct {
		host string
		pid  int
	}
	s := []id{{"b", 1}, {"a", 9}, {"a", 2}, {"b", 0}}
	SortBy2(s,
		func(i id) string { return i.host },
		func(i id) int { return i.pid })
	want := []id{{"a", 2}, {"a", 9}, {"b", 0}, {"b", 1}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("SortBy2 = %v, want %v", s, want)
	}
}
