// Package detect implements an adaptive, accrual-style failure
// detector for sibling circuits, in the spirit of the DIR Net's
// detection layer ("The DIR Net: A Distributed System for Detection,
// Isolation, and Recovery"): instead of declaring a peer dead after a
// fixed timeout, each endpoint keeps a smoothed estimate of the
// peer's message inter-arrival time and derives an integer suspicion
// level from how far the current silence has outrun that estimate.
//
// The estimator is Jacobson/Karels (the TCP RTT filter): a smoothed
// mean plus a mean-deviation term, all integer arithmetic on
// time.Duration, so two same-seed runs produce bit-identical
// suspicion trajectories. The suspicion level is
//
//	suspicion = elapsed_silence / (srtt + 4*rttvar)
//
// capped and floored, so a link whose traffic is merely slow (large
// but steady inter-arrivals) never looks suspect, while a link whose
// traffic stops cold accrues suspicion within a few expected
// inter-arrival periods — far faster than a fixed worst-case timeout
// when the link is normally chatty.
package detect

import "time"

// Config bounds the detector's estimate.
type Config struct {
	// Floor is the minimum detection threshold; silence shorter than
	// Floor never registers suspicion regardless of how short the
	// estimated inter-arrival is. Zero means 100ms.
	Floor time.Duration
	// Bootstrap is the threshold used before the first inter-arrival
	// sample exists. Zero means 2s.
	Bootstrap time.Duration
	// Cap is the maximum suspicion level Suspicion reports. Zero
	// means 16.
	Cap int
}

func (c Config) withDefaults() Config {
	if c.Floor == 0 {
		c.Floor = 100 * time.Millisecond
	}
	if c.Bootstrap == 0 {
		c.Bootstrap = 2 * time.Second
	}
	if c.Cap == 0 {
		c.Cap = 16
	}
	return c
}

// Detector tracks one peer's message inter-arrival history. The zero
// value is not ready; construct with New or call Reset before use.
// Detector is a value type embedded in its owner — no allocation per
// peer, no pointers for the GC to chase.
type Detector struct {
	cfg     Config
	last    time.Duration // virtual-clock instant of the last arrival
	srtt    time.Duration // smoothed inter-arrival estimate
	rttvar  time.Duration // smoothed mean deviation
	samples uint64
}

// New returns a detector configured by cfg whose observation window
// starts at now (a virtual-clock reading).
func New(cfg Config, now time.Duration) Detector {
	d := Detector{cfg: cfg.withDefaults()}
	d.Reset(now)
	return d
}

// Reset clears the inter-arrival history and restarts the observation
// window at now. Call on circuit (re-)establishment: history from a
// previous circuit incarnation says nothing about the new one.
func (d *Detector) Reset(now time.Duration) {
	d.last = now
	d.srtt = 0
	d.rttvar = 0
	d.samples = 0
}

// Observe records a message arrival at virtual-clock instant now and
// folds the inter-arrival gap into the smoothed estimate using the
// Jacobson/Karels integer filter (gain 1/8 on the mean, 1/4 on the
// deviation).
//
//ppmlint:hotpath pin=TestDetectorStepZeroAllocs
func (d *Detector) Observe(now time.Duration) {
	s := now - d.last
	if s < 0 {
		s = 0
	}
	d.last = now
	if d.samples == 0 {
		d.srtt = s
		d.rttvar = s / 2
	} else {
		diff := s - d.srtt
		if diff < 0 {
			diff = -diff
		}
		d.rttvar += (diff - d.rttvar) / 4
		d.srtt += (s - d.srtt) / 8
	}
	d.samples++
}

// Threshold returns the current detection threshold: the silence
// duration corresponding to one unit of suspicion. Before any sample
// exists it is the bootstrap value; it is never below the floor.
func (d *Detector) Threshold() time.Duration {
	if d.samples == 0 {
		return d.cfg.Bootstrap
	}
	t := d.srtt + 4*d.rttvar
	if t < d.cfg.Floor {
		t = d.cfg.Floor
	}
	return t
}

// Suspicion returns the integer suspicion level at virtual-clock
// instant now: how many detection thresholds the current silence has
// lasted, capped at Config.Cap. Zero means the peer looks healthy.
//
//ppmlint:hotpath pin=TestDetectorStepZeroAllocs
func (d *Detector) Suspicion(now time.Duration) int {
	elapsed := now - d.last
	if elapsed <= 0 {
		return 0
	}
	t := d.Threshold()
	if t <= 0 {
		return d.cfg.Cap
	}
	level := int(elapsed / t)
	if level > d.cfg.Cap {
		level = d.cfg.Cap
	}
	return level
}

// Samples returns how many inter-arrival samples the estimate rests
// on.
func (d *Detector) Samples() uint64 { return d.samples }

// Estimate returns the current smoothed inter-arrival and deviation
// estimates, for introspection and tests.
func (d *Detector) Estimate() (srtt, rttvar time.Duration) { return d.srtt, d.rttvar }
