package detect

import (
	"testing"
	"time"
)

// TestDetectorStepZeroAllocs pins the detector hot path — one Observe
// plus one Suspicion query — at zero allocations. The detector steps
// once per delivered sibling message, so an allocation here would be
// a per-message heap cost across the whole cluster.
func TestDetectorStepZeroAllocs(t *testing.T) {
	d := New(Config{}, 0)
	now := time.Duration(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 100 * time.Millisecond
		d.Observe(now)
		_ = d.Suspicion(now + 50*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("detector step allocates: %v allocs/op", allocs)
	}
}

func TestDetectorAdaptsEstimate(t *testing.T) {
	d := New(Config{}, 0)
	now := time.Duration(0)
	for i := 0; i < 64; i++ {
		now += 200 * time.Millisecond
		d.Observe(now)
	}
	srtt, rttvar := d.Estimate()
	if srtt < 150*time.Millisecond || srtt > 250*time.Millisecond {
		t.Fatalf("srtt did not converge to ~200ms: %v", srtt)
	}
	if rttvar > 50*time.Millisecond {
		t.Fatalf("rttvar did not decay on a steady stream: %v", rttvar)
	}
	// Threshold tracks the stream: a few inter-arrival periods, not
	// a worst-case constant.
	if th := d.Threshold(); th > time.Second {
		t.Fatalf("threshold too loose for a 200ms stream: %v", th)
	}
}

// TestDetectorBeatsFixedTimeout is the acceptance test for adaptivity:
// under jittery ~100ms heartbeats, silence is detected (suspicion
// reaches the LPM's default suspect level, 2) far sooner than the
// fixed 10s request timeout the retry layer falls back on.
func TestDetectorBeatsFixedTimeout(t *testing.T) {
	const fixedTimeout = 10 * time.Second // lpm.Config.RequestTimeout default
	d := New(Config{}, 0)
	// Deterministic jitter: inter-arrivals cycle 80/100/120/140ms.
	gaps := []time.Duration{80, 100, 120, 140}
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		now += gaps[i%len(gaps)] * time.Millisecond
		d.Observe(now)
	}
	// The stream stops. Find when suspicion first reaches 2.
	var detected time.Duration
	for dt := time.Millisecond; dt < fixedTimeout; dt += time.Millisecond {
		if d.Suspicion(now+dt) >= 2 {
			detected = dt
			break
		}
	}
	if detected == 0 {
		t.Fatalf("silence never reached suspicion 2 within the fixed timeout")
	}
	if detected > fixedTimeout/4 {
		t.Fatalf("adaptive detection (%v) not meaningfully faster than fixed timeout (%v)", detected, fixedTimeout)
	}
	t.Logf("suspicion 2 after %v of silence vs %v fixed timeout", detected, fixedTimeout)
}

// TestDetectorNoFalseSuspicionOnSlowLink is the other half of the
// acceptance pair: a healthy link whose traffic is merely slow —
// steady 900ms inter-arrivals — must never cross the suspect level at
// any instant before the next arrival.
func TestDetectorNoFalseSuspicionOnSlowLink(t *testing.T) {
	d := New(Config{}, 0)
	now := time.Duration(0)
	const gap = 900 * time.Millisecond
	for i := 0; i < 50; i++ {
		// Probe every pre-arrival instant at 10ms resolution.
		if i > 2 { // allow the estimate to seed first
			for dt := time.Duration(0); dt < gap; dt += 10 * time.Millisecond {
				if s := d.Suspicion(now + dt); s >= 2 {
					t.Fatalf("false suspicion %d on healthy slow link at arrival %d +%v", s, i, dt)
				}
			}
		}
		now += gap
		d.Observe(now)
	}
}

func TestDetectorBootstrapAndReset(t *testing.T) {
	d := New(Config{Bootstrap: 2 * time.Second}, 0)
	if got := d.Threshold(); got != 2*time.Second {
		t.Fatalf("bootstrap threshold = %v, want 2s", got)
	}
	if s := d.Suspicion(1 * time.Second); s != 0 {
		t.Fatalf("suspicion during bootstrap grace = %d, want 0", s)
	}
	if s := d.Suspicion(5 * time.Second); s == 0 {
		t.Fatalf("bootstrap silence past threshold not suspected")
	}
	d.Observe(5 * time.Second)
	d.Reset(6 * time.Second)
	if d.Samples() != 0 {
		t.Fatalf("Reset kept samples")
	}
	if got := d.Threshold(); got != 2*time.Second {
		t.Fatalf("post-Reset threshold = %v, want bootstrap 2s", got)
	}
}

func TestDetectorSuspicionCap(t *testing.T) {
	d := New(Config{Cap: 4}, 0)
	d.Observe(100 * time.Millisecond)
	d.Observe(200 * time.Millisecond)
	if s := d.Suspicion(time.Hour); s != 4 {
		t.Fatalf("suspicion = %d, want capped at 4", s)
	}
}

func TestDetectorClockSkewTolerated(t *testing.T) {
	d := New(Config{}, time.Second)
	// An arrival stamped before the window start must not poison the
	// estimate with a negative sample.
	d.Observe(500 * time.Millisecond)
	if srtt, _ := d.Estimate(); srtt < 0 {
		t.Fatalf("negative srtt after out-of-order observe: %v", srtt)
	}
	if s := d.Suspicion(600 * time.Millisecond); s < 0 {
		t.Fatalf("negative suspicion: %d", s)
	}
}
