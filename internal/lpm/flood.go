package lpm

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/proc"
	"ppm/internal/sim"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// The graph-covering broadcast of the paper's Section 4. Because the
// on-demand communication topology produces low-connectivity graphs, a
// broadcast request floods over the sibling circuits: each LPM forwards
// the request to every sibling except the one it arrived from, answers
// duplicates without retransmitting them (dedup by the signed stamp,
// retained for the configurable DedupWindow), and echoes an aggregate
// back along the recorded route once all of its children have answered.

// floodState tracks one in-progress flood at one node.
type floodState struct {
	key       string
	awaiting  int
	result    wire.FloodResult
	finished  bool
	localDone bool
	finish    func(wire.FloodResult)
}

// seenEntry is one slot of the stamp-eviction queue.
type seenEntry struct {
	key string
	exp sim.Time
}

// evictSeen drops expired stamps. The queue is ordered by insertion,
// and the dedup window is a constant, so it is also ordered by expiry:
// eviction inspects exactly the expired entries plus one, O(expired)
// per call instead of a full-map scan per broadcast. A key can only
// re-enter l.seen after its queue entry was popped, so a live map
// entry is always the one its sole queue entry describes.
func (l *LPM) evictSeen(now sim.Time) {
	for l.seenHead < len(l.seenQ) {
		e := l.seenQ[l.seenHead]
		if !e.exp.Before(now) {
			break
		}
		l.seenHead++
		delete(l.seen, e.key)
	}
	// Reclaim the drained prefix once it dominates the slice.
	if l.seenHead > len(l.seenQ)/2 {
		l.seenQ = append([]seenEntry(nil), l.seenQ[l.seenHead:]...)
		l.seenHead = 0
	}
}

// markSeen records a stamp in the dedup window and reports whether it
// was already present (a duplicate).
func (l *LPM) markSeen(stamp wire.Stamp) bool {
	now := l.sched.Now()
	l.evictSeen(now)
	key := stamp.Key()
	if _, ok := l.seen[key]; ok {
		return true
	}
	exp := now.Add(l.cfg.DedupWindow)
	l.seen[key] = exp
	l.seenQ = append(l.seenQ, seenEntry{key: key, exp: exp})
	return false
}

// SeenStamps returns the number of live (unexpired) broadcast stamps
// (for the dedup-window ablation).
func (l *LPM) SeenStamps() int {
	l.evictSeen(l.sched.Now())
	return len(l.seen)
}

// localFloodWork performs the inner operation locally and returns the
// fragment plus the CPU demand it costs.
func (l *LPM) localFloodWork(inner wire.Envelope) (wire.FloodResult, time.Duration) {
	switch inner.Type {
	case wire.MsgSnapshotReq:
		infos := l.localInfos()
		return wire.FloodResult{OK: true, Procs: infos}, gatherCost(len(infos))
	case wire.MsgControl:
		req, err := wire.DecodeControl(inner.Body)
		if err != nil || req.User != l.user.Name {
			return wire.FloodResult{OK: false}, 0
		}
		// A zero-target control applies to every live user process on
		// this host (broadcasting, say, a software interrupt to stop
		// execution).
		count := int32(0)
		for _, info := range l.kern.ProcessesOf(l.user.Name) {
			if l.myPids[info.ID.PID] {
				continue
			}
			if info.State != proc.Running && info.State != proc.Stopped {
				continue
			}
			if resp := l.applyControl(info.ID.PID, req.Op, req.Signal); resp.OK {
				count++
			}
		}
		return wire.FloodResult{OK: true, Count: count},
			time.Duration(count) * 2 * time.Millisecond
	default:
		return wire.FloodResult{OK: false}, 0
	}
}

// startFlood originates a broadcast from this LPM and calls cb with the
// aggregated result.
func (l *LPM) startFlood(ctx trace.Context, inner wire.Envelope, cb func(wire.FloodResult)) {
	l.Stats.FloodsOriginated++
	l.metrics.Counter("lpm.flood.originated").Inc()
	l.floodSeq++
	stamp := wire.NewStamp(l.user.Key(), l.Host(), l.sched.Now().Duration(), l.floodSeq)
	l.markSeen(stamp)
	l.journal.AppendCtx(journal.LPMFloodOrigin, l.Host(),
		fmt.Sprintf("user=%s stamp=%s inner=%v", l.user.Name, stampID(stamp), inner.Type),
		ctx.Trace, ctx.Span)
	bc := wire.Broadcast{
		Stamp: stamp,
		Seq:   l.floodSeq,
		Route: []string{l.Host()},
		Inner: inner.Encode(),
	}
	st := &floodState{key: stamp.Key(), finish: func(res wire.FloodResult) {
		l.learnRoutes(res)
		hosts := append([]string(nil), res.Hosts...)
		detord.Sort(hosts)
		partial := append([]string(nil), res.Partial...)
		detord.Sort(partial)
		l.journal.AppendCtx(journal.LPMFloodDone, l.Host(),
			fmt.Sprintf("user=%s stamp=%s hosts=%s partial=%s", l.user.Name, stampID(stamp),
				strings.Join(hosts, ","), strings.Join(partial, ",")),
			ctx.Trace, ctx.Span)
		cb(res)
	}}
	l.runFlood(ctx, st, bc, inner, "")
}

// handleFlood serves a broadcast arriving over a sibling circuit,
// answering through reply. The at-most-once filter upstream makes the
// per-hop echo retryable: a retransmitted leg replays this node's full
// cached echo instead of being answered Dup (which would lose the
// subtree's data).
func (l *LPM) handleFlood(sb *sibling, env wire.Envelope, reply func(wire.MsgType, []byte)) {
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
	bc, err := wire.DecodeBroadcast(env.Body)
	if err != nil {
		reply(wire.MsgBroadcastResp,
			wire.BroadcastResp{Inner: wire.FloodResult{OK: false}.Encode()}.Encode())
		return
	}
	// Verify the signed stamp: the origin's name appears in it and the
	// signature binds it to the user's key.
	if !bc.Stamp.Verify(l.user.Key()) {
		reply(wire.MsgBroadcastResp,
			wire.BroadcastResp{Inner: wire.FloodResult{OK: false}.Encode()}.Encode())
		return
	}
	if l.markSeen(bc.Stamp) {
		// An old broadcast request: answer but do not retransmit.
		l.Stats.FloodDuplicates++
		l.metrics.Counter("lpm.flood.dedup_hits").Inc()
		l.journal.AppendCtx(journal.LPMFloodDup, l.Host(),
			fmt.Sprintf("user=%s stamp=%s", l.user.Name, stampID(bc.Stamp)),
			ctx.Trace, ctx.Span)
		reply(wire.MsgBroadcastResp,
			wire.BroadcastResp{
				Seq: bc.Seq, From: l.Host(), Route: bc.Route,
				Inner: wire.FloodResult{OK: true, Dup: true}.Encode(),
			}.Encode())
		return
	}
	l.Stats.FloodsForwarded++
	l.metrics.Counter("lpm.flood.forwarded").Inc()
	inner, err := wire.DecodeEnvelopeLogged(bc.Inner, l.journal, l.Host())
	if err != nil {
		reply(wire.MsgBroadcastResp,
			wire.BroadcastResp{Inner: wire.FloodResult{OK: false}.Encode()}.Encode())
		return
	}
	fwd := bc
	fwd.Route = append(append([]string(nil), bc.Route...), l.Host())
	st := &floodState{key: bc.Stamp.Key(), finish: func(res wire.FloodResult) {
		reply(wire.MsgBroadcastResp, wire.BroadcastResp{
			Seq: bc.Seq, From: l.Host(), Route: fwd.Route, Inner: res.Encode(),
		}.Encode())
	}}
	l.runFlood(ctx, st, fwd, inner, sb.host)
}

// runFlood performs the local work and forwards to all siblings except
// the parent, completing st when every child answered (or failed).
func (l *LPM) runFlood(ctx trace.Context, st *floodState, bc wire.Broadcast, inner wire.Envelope, parentHost string) {
	children := make([]*sibling, 0, len(l.siblings))
	for h, sb := range l.siblings {
		if h == parentHost || !sb.authed || !sb.conn.Open() {
			continue
		}
		// Do not send the request back to hosts already on the route.
		onRoute := false
		for _, r := range bc.Route {
			if r == h {
				onRoute = true
				break
			}
		}
		if !onRoute {
			children = append(children, sb)
		}
	}
	// Fan out in host order: l.siblings is a map, and the order the
	// requests hit the circuits decides queueing delays downstream.
	detord.SortBy(children, func(sb *sibling) string { return sb.host })
	st.awaiting = len(children)
	var local wire.FloodResult
	var cost time.Duration
	l.withTraceCtx(ctx, func() { local, cost = l.localFloodWork(inner) })
	merge := func(res wire.FloodResult, from string, err error) {
		if err != nil {
			st.result.Partial = append(st.result.Partial, from)
		} else if !res.Dup {
			st.result.Count += res.Count
			st.result.Procs = append(st.result.Procs, res.Procs...)
			st.result.Partial = append(st.result.Partial, res.Partial...)
			st.result.Hosts = append(st.result.Hosts, res.Hosts...)
			st.result.Routes = append(st.result.Routes, res.Routes...)
		}
		st.awaiting--
		l.maybeFinishFlood(st)
	}
	// Each per-hop echo is its own at-most-once operation through the
	// retry engine: a lost request or echo is retransmitted under a
	// stable op id, and the child replays its full cached echo rather
	// than answering Dup for an already-seen stamp.
	for _, child := range children {
		from := child.host
		l.opSeq++
		l.callWithRetry(ctx, from, wire.MsgBroadcast, bc.Encode(), l.opSeq, 1, func(env wire.Envelope, err error) {
			if err != nil {
				merge(wire.FloodResult{}, from, err)
				return
			}
			resp, derr := wire.DecodeBroadcastResp(env.Body)
			if derr != nil {
				merge(wire.FloodResult{}, from, derr)
				return
			}
			res, derr := wire.DecodeFloodResult(resp.Inner)
			if derr != nil {
				merge(wire.FloodResult{}, from, derr)
				return
			}
			merge(res, from, nil)
		})
	}
	l.execSpan(ctx, "exec.flood_work", cost, func() {
		l.journal.AppendCtx(journal.LPMFloodApply, l.Host(),
			fmt.Sprintf("user=%s stamp=%s", l.user.Name, stampID(bc.Stamp)),
			ctx.Trace, ctx.Span)
		st.result.OK = true
		st.result.Count += local.Count
		st.result.Procs = append(st.result.Procs, local.Procs...)
		st.result.Partial = append(st.result.Partial, local.Partial...)
		st.result.Hosts = append(st.result.Hosts, l.Host())
		st.result.Routes = append(st.result.Routes, strings.Join(bc.Route, "/"))
		st.localDone = true
		l.maybeFinishFlood(st)
	})
}

func (l *LPM) maybeFinishFlood(st *floodState) {
	if st.finished || !st.localDone || st.awaiting > 0 {
		return
	}
	st.finished = true
	st.finish(st.result)
}

// --- flood-based public operations ---

// Snapshot gathers the state of the user's distributed computation:
// all known processes with their genealogy across every host reachable
// over the PPM's circuit graph. Unreachable hosts are reported in
// Partial and the resulting genealogy may be a forest.
func (l *LPM) Snapshot(cb func(proc.Snapshot, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(proc.Snapshot{}, ErrExited) })
		return
	}
	inner := wire.Envelope{Type: wire.MsgSnapshotReq,
		Body: wire.SnapshotReq{User: l.user.Name, Forward: true}.Encode()}
	l.toolCall("snapshot", func(ctx trace.Context, done func(func())) {
		l.startFlood(ctx, inner, func(res wire.FloodResult) {
			done(func() {
				snap := proc.Merge(l.sched.Now().Duration(), res.Procs)
				snap.Partial = l.uncovered(res)
				l.journal.AppendCtx(journal.SnapshotTaken, l.Host(),
					snapshotDetail(l.user.Name, snap), ctx.Trace, ctx.Span)
				cb(snap, nil)
			})
		})
	})
}

// snapshotDetail encodes a merged snapshot for the journal in the
// audit's "gpid|parent|state" form, ";"-joined (GPID strings contain
// commas, so the entry separators avoid them).
func snapshotDetail(user string, snap proc.Snapshot) string {
	var sb strings.Builder
	sb.WriteString("user=" + user + " procs=")
	for i, p := range snap.Procs {
		if i > 0 {
			sb.WriteByte(';')
		}
		parent := "-"
		if !p.Parent.IsZero() {
			parent = p.Parent.String()
		}
		sb.WriteString(p.ID.String() + "|" + parent + "|" + p.State.String())
	}
	sb.WriteString(" partial=" + strings.Join(snap.Partial, ","))
	return sb.String()
}

// ControlAll applies a control operation (typically a software
// interrupt) to every live process of the user on every reachable host;
// it returns the number of processes affected.
func (l *LPM) ControlAll(op wire.ControlOp, sig proc.Signal, cb func(int, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(0, ErrExited) })
		return
	}
	req := wire.Control{User: l.user.Name, Op: op, Signal: sig}
	inner := wire.Envelope{Type: wire.MsgControl, Body: req.Encode()}
	l.toolCall("control_all", func(ctx trace.Context, done func(func())) {
		l.startFlood(ctx, inner, func(res wire.FloodResult) {
			done(func() {
				if len(res.Partial) > 0 {
					cb(int(res.Count), fmt.Errorf("%w: no answer from %v", ErrNoSibling, res.Partial))
					return
				}
				cb(int(res.Count), nil)
			})
		})
	})
}

// Ping probes the sibling LPM on host and reports its CCS view. Pings
// ride the retry engine like every other point-to-point operation
// (read-only, so no at-most-once entry is held for them): a ping that
// lands in a transient outage recovers by redial instead of surfacing
// a spurious failure.
func (l *LPM) Ping(host string, cb func(wire.Pong, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(wire.Pong{}, ErrExited) })
		return
	}
	body := wire.Ping{FromHost: l.Host(), User: l.user.Name}.Encode()
	l.toolCall("ping", func(ctx trace.Context, done func(func())) {
		l.opSeq++
		l.callWithRetry(ctx, host, wire.MsgPing, body, l.opSeq, 1, func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(wire.Pong{}, err)
					return
				}
				pong, derr := wire.DecodePong(env.Body)
				cb(pong, derr)
			})
		})
	})
}

// learnRoutes records relay paths to distant hosts from broadcast
// reply routes ("all data returned to the originator of a broadcast
// request includes the message's source-destination route").
func (l *LPM) learnRoutes(res wire.FloodResult) {
	for _, r := range res.Routes {
		hops := strings.Split(r, "/")
		if len(hops) < 2 || hops[0] != l.Host() {
			continue // route to self, or not rooted here
		}
		path := hops[1:]
		dest := path[len(path)-1]
		// Prefer the shortest known route; no attention is paid to
		// finding minimum-hop physical routes, as in the paper.
		if old, ok := l.routes[dest]; !ok || len(path) < len(old) {
			l.routes[dest] = path
		}
		l.knownHosts[dest] = true
	}
}

// KnownRoute returns the learned relay path to host, if any.
func (l *LPM) KnownRoute(host string) ([]string, bool) {
	p, ok := l.routes[host]
	if !ok {
		return nil, false
	}
	return append([]string(nil), p...), true
}

// uncovered merges the flood's explicit failures with known hosts that
// contributed nothing — hosts whose LPM (or whole machine) is gone, the
// situation in which the genealogy snapshot becomes a forest.
func (l *LPM) uncovered(res wire.FloodResult) []string {
	covered := make(map[string]bool, len(res.Hosts))
	for _, h := range res.Hosts {
		covered[h] = true
	}
	missing := make(map[string]bool)
	for _, h := range res.Partial {
		if !covered[h] {
			missing[h] = true
		}
	}
	for h := range l.knownHosts {
		if !covered[h] {
			missing[h] = true
		}
	}
	if len(missing) == 0 {
		return nil
	}
	return detord.Keys(missing)
}

// expireSeenAt is exposed for tests of the dedup window.
func (l *LPM) expireSeenAt() map[string]sim.Time {
	out := make(map[string]sim.Time, len(l.seen))
	for k, v := range l.seen {
		out[k] = v
	}
	return out
}
