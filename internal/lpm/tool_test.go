package lpm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppm/internal/auth"
	"ppm/internal/history"
	"ppm/internal/proc"
	"ppm/internal/wire"
)

// connectTool dials a ToolClient synchronously.
func connectTool(t *testing.T, w *world, u *auth.User, host string) *ToolClient {
	t.Helper()
	var tc *ToolClient
	var cerr error
	done := false
	ConnectTool(w.net, u, host, func(c *ToolClient, err error) { tc, cerr, done = c, err, true })
	w.until(func() bool { return done })
	if cerr != nil {
		t.Fatal(cerr)
	}
	return tc
}

func TestToolCreateControlStats(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()

	var id proc.GPID
	done := false
	tc.Create("job", proc.GPID{}, func(g proc.GPID, err error) {
		if err != nil {
			t.Fatal(err)
		}
		id, done = g, true
	})
	w.until(func() bool { return done })
	if id.Host != "vax1" {
		t.Fatalf("created %v", id)
	}

	done = false
	var resp wire.ControlResp
	tc.Control(id, wire.OpStop, 0, func(r wire.ControlResp, err error) {
		if err != nil {
			t.Fatal(err)
		}
		resp, done = r, true
	})
	w.until(func() bool { return done })
	if !resp.OK || resp.State != proc.Stopped {
		t.Fatalf("control resp: %+v", resp)
	}

	done = false
	var info proc.Info
	tc.Stats(id, func(i proc.Info, err error) {
		if err != nil {
			t.Fatal(err)
		}
		info, done = i, true
	})
	w.until(func() bool { return done })
	if info.State != proc.Stopped || info.Name != "job" {
		t.Fatalf("stats: %+v", info)
	}
}

func TestToolSnapshotFloodsAcrossHosts(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	// Seed a computation via the subroutine interface.
	l := w.attach("vax1", u)
	root := w.create(l, "vax1", "root", proc.GPID{})
	w.create(l, "vax2", "worker", root)
	w.run(time.Second)

	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()
	var snap proc.Snapshot
	done := false
	tc.Snapshot(func(s proc.Snapshot, err error) {
		if err != nil {
			t.Fatal(err)
		}
		snap, done = s, true
	})
	w.until(func() bool { return done })
	if len(snap.Hosts()) != 2 {
		t.Fatalf("tool snapshot hosts = %v", snap.Hosts())
	}
	if !strings.Contains(snap.Render(), "worker") {
		t.Fatalf("snapshot:\n%s", snap.Render())
	}
}

func TestToolBroadcastControl(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	root := w.create(l, "vax1", "root", proc.GPID{})
	w.create(l, "vax2", "worker", root)
	w.run(time.Second)

	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()
	done := false
	tc.Control(proc.GPID{}, wire.OpStop, 0, func(r wire.ControlResp, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			t.Fatalf("broadcast control: %+v", r)
		}
		done = true
	})
	w.until(func() bool { return done })
	p, _ := w.kerns["vax1"].Lookup(root.PID)
	if p.State != proc.Stopped {
		t.Fatal("root not stopped by tool broadcast")
	}
}

func TestToolRemoteControlForwarded(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	id := w.create(l, "vax2", "remote-job", proc.GPID{})
	w.run(time.Second)

	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()
	done := false
	tc.Control(id, wire.OpKill, 0, func(r wire.ControlResp, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK || r.State != proc.Exited {
			t.Fatalf("remote control via tool: %+v", r)
		}
		done = true
	})
	w.until(func() bool { return done })
}

func TestToolHistory(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})
	_, _ = w.control(l, id, wire.OpStop, 0)
	w.run(time.Second)

	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()
	var evs []proc.Event
	done := false
	tc.History(history.Query{Proc: id}, func(e []proc.Event, err error) {
		if err != nil {
			t.Fatal(err)
		}
		evs, done = e, true
	})
	w.until(func() bool { return done })
	if len(evs) == 0 {
		t.Fatal("no history over the tool socket")
	}
}

func TestToolConnectionNotASibling(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	tc := connectTool(t, w, u, "vax1")
	defer tc.Close()
	if len(l.SiblingHosts()) != 0 {
		t.Fatalf("tool connection registered as sibling: %v", l.SiblingHosts())
	}
}

func TestToolCloseFailsPending(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	tc := connectTool(t, w, u, "vax1")
	var gotErr error
	done := false
	tc.Create("job", proc.GPID{}, func(_ proc.GPID, err error) { gotErr, done = err, true })
	tc.Close()
	w.run(5 * time.Second)
	if !done {
		t.Fatal("pending tool call never completed")
	}
	if gotErr == nil {
		t.Fatal("pending call should fail on close")
	}
	// Further calls fail immediately.
	done = false
	tc.Create("x", proc.GPID{}, func(_ proc.GPID, err error) { gotErr, done = err, true })
	w.run(time.Second)
	if !done || !errors.Is(gotErr, ErrToolClosed) {
		t.Fatalf("post-close call: done=%v err=%v", done, gotErr)
	}
}

func TestToolWrongUserRejected(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	mallory := w.user("mallory")
	_ = w.attach("vax1", u) // felipe's LPM exists
	// Mallory's ConnectTool creates *her own* LPM (per-user managers);
	// she cannot reach felipe's. Verify she only sees her own world.
	tc := connectTool(t, w, mallory, "vax1")
	defer tc.Close()
	felipeL := w.lpms["vax1/felipe"]
	w.create(felipeL, "vax1", "secret", proc.GPID{})
	var snap proc.Snapshot
	done := false
	tc.Snapshot(func(s proc.Snapshot, err error) {
		if err != nil {
			t.Fatal(err)
		}
		snap, done = s, true
	})
	w.until(func() bool { return done })
	for _, p := range snap.Procs {
		if p.User == "felipe" {
			t.Fatal("mallory's tool saw felipe's process")
		}
	}
}
