// Package lpm implements the paper's core contribution: the Local
// Process Manager. A PPM is the collection of a user's LPMs across
// hosts; each LPM is created on demand by the host's pmd, adopts the
// user's local processes through the extended ptrace call, receives
// kernel event messages over its kernel socket, serves tools over local
// circuits, maintains authenticated virtual circuits to sibling LPMs,
// acts as the creation server for the user's remote processes, floods
// broadcast requests over the low-connectivity circuit graph, preserves
// historical event information, ages out via a time-to-live interval,
// and participates in CCS-based crash recovery.
//
// Structurally each LPM mirrors the paper's implementation: a main
// dispatcher plus a pool of handler processes that block on remote
// communication; handlers are reused because process creation is
// expensive.
package lpm

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/daemon"
	"ppm/internal/detect"
	"ppm/internal/detord"
	"ppm/internal/history"
	"ppm/internal/journal"
	"ppm/internal/kernel"
	"ppm/internal/metrics"
	"ppm/internal/proc"
	"ppm/internal/recovery"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/status"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// LPM errors.
var (
	ErrExited     = errors.New("lpm: manager has exited")
	ErrTimeout    = errors.New("lpm: request timed out")
	ErrRemote     = errors.New("lpm: remote failure")
	ErrNoSibling  = errors.New("lpm: sibling unavailable")
	ErrBadRequest = errors.New("lpm: bad request")
)

// Config tunes one LPM.
type Config struct {
	// TTL is the time-to-live: how long the LPM lingers on a host with
	// no live user processes and no activity before exiting. The CCS's
	// TTL is frozen while any sibling exists.
	TTL time.Duration
	// RequestTimeout bounds direct sibling requests.
	RequestTimeout time.Duration
	// FloodTimeout bounds one level of the broadcast echo.
	FloodTimeout time.Duration
	// DedupWindow is how long old broadcast stamps are retained so
	// duplicates are not retransmitted (the paper's configuration
	// parameter).
	DedupWindow time.Duration
	// HandlerPool is the number of handler processes pre-forked at
	// creation. Zero disables reuse entirely (fork per request), the
	// configuration the ablation benchmark compares against.
	HandlerPool int
	// NoHandlerReuse forces a fresh handler fork for every blocking
	// request (ablation).
	NoHandlerReuse bool
	// PerMessageAuth charges an authentication check on every sibling
	// message instead of once per channel, modelling the datagram-based
	// alternative the paper weighs against virtual circuits (ablation).
	PerMessageAuth bool
	// UseRelay lets direct requests to hosts without a circuit travel
	// along routes learned from broadcast replies, through intermediate
	// sibling LPMs, instead of opening a new circuit (paper §4: routes
	// recorded on broadcast data "allow quick routing of messages
	// affecting processes in topologically distant hosts").
	UseRelay bool
	// Retry tunes the sibling-RPC reliability layer.
	Retry RetryPolicy
	// Recovery configures the CCS machinery.
	Recovery recovery.Config
	// HistoryCapacity bounds the event store (0 = default).
	HistoryCapacity int

	// Linktest enables the adaptive failure detector: every circuit
	// exchanges a heartbeat frame and evaluates its accrual suspicion
	// level at this period. Zero disables the detector (circuit
	// health is then inferred from request timeouts only, the
	// pre-detector behavior).
	Linktest time.Duration
	// Detector tunes the per-circuit accrual estimator (zero fields
	// take the detect package defaults).
	Detector detect.Config
	// SuspectAfter is the suspicion level at which an Established
	// circuit steps to Suspect. Zero means 2.
	SuspectAfter int
	// CloseAfter is the suspicion level at which the detector closes
	// the circuit as presumed-dead. Zero means 6.
	CloseAfter int
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 10 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.FloodTimeout == 0 {
		c.FloodTimeout = 30 * time.Second
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = time.Minute
	}
	if c.HandlerPool == 0 && !c.NoHandlerReuse {
		c.HandlerPool = 2
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 2
	}
	if c.CloseAfter == 0 {
		c.CloseAfter = 6
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// opWindow is how long the at-most-once dedup state (cached replies,
// in-flight markers) must be retained: a retransmission of an
// operation can only arrive while the sender's retry loop is alive,
// which is bounded by MaxAttempts request timeouts plus a capped
// backoff between each. Sizing retention to the window — instead of
// bounding the cache by entry count — means no burst of concurrent
// operations can evict an entry whose sender may still retransmit.
// Must be called on a Config that already has its defaults.
func (c Config) opWindow() time.Duration {
	t := c.RequestTimeout
	if c.FloodTimeout > t {
		t = c.FloodTimeout
	}
	return time.Duration(c.Retry.MaxAttempts) * (t + c.Retry.Cap)
}

// RetryPolicy tunes the sibling-RPC retry engine. A failed attempt
// (timeout or unreachable sibling) is retransmitted after a capped
// exponential backoff: the first retry waits BaseBackoff, each further
// retry doubles the wait up to Cap. All delays run on the sim
// scheduler, so the schedule is deterministic for a given seed.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of transmissions of one
	// logical operation (1 = no retries). Negative disables retries
	// explicitly; zero means the default of 3.
	MaxAttempts int
	// BaseBackoff is the delay before the first retransmission.
	BaseBackoff time.Duration
	// Cap bounds the exponential growth of the backoff.
	Cap time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 200 * time.Millisecond
	}
	if p.Cap == 0 {
		p.Cap = 5 * time.Second
	}
	return p
}

// backoff returns the delay to wait before transmission number attempt
// (attempt 2 is the first retry): BaseBackoff doubled per further
// attempt, capped at Cap.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= p.Cap {
			return p.Cap
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// Stats counts LPM activity for tests, benchmarks and ablations.
type Stats struct {
	RequestsServed   int64
	RemoteForwards   int64
	HandlerForks     int64
	HandlerReuses    int64
	FloodsOriginated int64
	FloodsForwarded  int64
	FloodDuplicates  int64
	KernelEvents     int64
	RelaysForwarded  int64
	RelaysOriginated int64
}

// sibling is one authenticated circuit to a peer LPM.
type sibling struct {
	host   string
	conn   Conn
	authed bool
	// inc is the peer LPM's incarnation id, exchanged in the Hello;
	// it scopes the peer's operation identities to that LPM instance.
	inc uint64
	// openedAt is when the circuit authenticated, so status reports
	// can show per-circuit age.
	openedAt sim.Time
	// det is the circuit's accrual failure detector; suspicion is the
	// level computed at the last linktest tick (cleared by traffic).
	det       detect.Detector
	suspicion int
	// ltTimer drives the periodic linktest tick; ltSeq numbers the
	// heartbeat frames.
	ltTimer sim.Timer
	ltSeq   uint64
}

// dialState tracks one in-flight circuit establishment: the queued
// callbacks, the establish span (ended exactly once), and whether the
// dial has settled — through its own error paths or through an
// inbound circuit completing it first (cross-dial).
type dialState struct {
	cbs  []func(*sibling, error)
	done bool
	span *trace.Span
}

// pendingReq tracks an outstanding request to a sibling.
type pendingReq struct {
	host    string
	cb      func(wire.Envelope, error)
	timer   sim.Timer
	handler proc.PID     // handler process assigned to block on this request
	sentAt  sim.Time     // registration time, for the request RTT histogram
	op      wire.MsgType // request type, for the per-op RTT histograms
	span    *trace.Span  // handler occupancy, from assignment to response
}

// LPM is one Local Process Manager.
type LPM struct {
	user  *auth.User
	kern  *kernel.Host
	net   *simnet.Network
	sched *sim.Scheduler
	dir   *auth.Directory
	dmns  *daemon.Daemons
	cfg   Config

	accept simnet.Addr
	pid    proc.PID // the dispatcher's own kernel process
	myPids map[proc.PID]bool

	siblings map[string]*sibling
	dialing  map[string]*dialState
	// circuits is the explicit per-peer circuit lifecycle machine;
	// every step is journaled under journal.CircuitTransition.
	circuits map[string]circuitState
	// transport is the connection seam the circuit layer runs over;
	// simnet is the sole implementation today.
	transport Transport
	// knownHosts remembers every host this LPM has ever had a sibling
	// on (or created a process on), so snapshots can report hosts that
	// have become unreachable as partial.
	knownHosts map[string]bool
	// routes are relay paths learned from broadcast replies: for each
	// distant host, the circuit path (excluding this host) leading to
	// it.
	routes map[string][]string

	reqSeq  uint64
	pending map[uint64]*pendingReq
	// retryBackoffs counts retry timers currently waiting out their
	// backoff delay (status-report occupancy).
	retryBackoffs int

	// opSeq assigns operation identities for the retry engine: the op id
	// stays stable across retransmissions of one logical request, while
	// reqSeq advances per transmission. It numbers operations within
	// this LPM incarnation only; the incarnation id in the op key keeps
	// instances apart.
	opSeq uint64
	// replies caches the encoded reply of every executed at-most-once
	// operation, keyed by wire.OpKey(origin, inc, op), so a retransmit
	// is answered from the cache instead of re-executing. Entries are
	// retained for opWindow of virtual time.
	replies *wire.ReplyCache
	// inflightOps marks at-most-once operations currently executing
	// (op key -> registration time), so a retransmit arriving before
	// the first execution finishes is dropped (the sender's next retry
	// finds the cached reply). inflightQ orders the keys by
	// registration for O(expired) eviction of entries whose retransmit
	// window has passed; inflightQ[inflightHead:] are live.
	inflightOps  map[string]time.Duration
	inflightQ    []inflightEntry
	inflightHead int
	// peerIncs remembers the last incarnation seen from each peer host,
	// so a Hello from a new incarnation (the peer LPM restarted) purges
	// the dead incarnation's dedup state.
	peerIncs map[string]uint64
	// opWindow is how long at-most-once dedup state must be retained: a
	// retransmission can only arrive while its sender's retry loop is
	// alive (see Config.opWindow).
	opWindow time.Duration

	idleHandlers []proc.PID

	records map[proc.PID]proc.Info // last known info, incl. exited
	store   *history.Store

	rec *recovery.Manager

	// statusSeq numbers the status sweeps this LPM originates, so the
	// journal (and its audit) can tie each report to its sweep.
	statusSeq uint64
	// rtts accumulates request round-trip latencies per op type for the
	// status report's SLO percentiles.
	rtts map[wire.MsgType]*metrics.Histogram
	// statusScratch is the reusable report the LPM fills when serving a
	// status request (local rebuilds allocate nothing at steady state).
	statusScratch status.Report

	floodSeq uint64
	seen     map[string]sim.Time // stamp key -> expiry
	// seenQ orders the stamp keys by expiry for O(expired) eviction: the
	// dedup window is a constant, so insertion order is expiry order.
	// seenQ[seenHead:] are the live entries.
	seenQ    []seenEntry
	seenHead int

	lastActivity sim.Time
	ttlTimer     sim.Timer
	exited       bool

	// metrics is the installation-wide registry, taken from the
	// network at construction (nil when the network carries none).
	metrics *metrics.Registry
	// tracer is the installation-wide causal tracer, also taken from
	// the network (nil or disabled on untraced runs: every span call
	// below degrades to a no-op).
	tracer *trace.Tracer
	// journal is the installation-wide flight recorder, also taken from
	// the network (nil when journaling is off: appends no-op).
	journal *journal.Journal

	// Stats is exported for tests, benchmarks and ablations.
	Stats Stats
}

// New creates and starts an LPM for user on the host, listening on
// acceptPort. It is normally invoked by the pmd's LPM factory.
func New(kern *kernel.Host, net *simnet.Network, dir *auth.Directory,
	dmns *daemon.Daemons, user *auth.User, acceptPort uint16, cfg Config) (*LPM, error) {
	cfg = cfg.withDefaults()
	l := &LPM{
		user:        user,
		kern:        kern,
		net:         net,
		sched:       net.Scheduler(),
		dir:         dir,
		dmns:        dmns,
		cfg:         cfg,
		accept:      simnet.Addr{Host: kern.Name(), Port: acceptPort},
		myPids:      make(map[proc.PID]bool),
		siblings:    make(map[string]*sibling),
		dialing:     make(map[string]*dialState),
		circuits:    make(map[string]circuitState),
		transport:   simnetTransport{net: net},
		knownHosts:  make(map[string]bool),
		routes:      make(map[string][]string),
		pending:     make(map[uint64]*pendingReq),
		replies:     wire.NewReplyCache(cfg.opWindow()),
		inflightOps: make(map[string]time.Duration),
		peerIncs:    make(map[string]uint64),
		opWindow:    cfg.opWindow(),
		rtts:        make(map[wire.MsgType]*metrics.Histogram),
		records:     make(map[proc.PID]proc.Info),
		store:       history.NewStore(cfg.HistoryCapacity),
		seen:        make(map[string]sim.Time),
		metrics:     net.Metrics(),
		tracer:      net.Tracer(),
		journal:     net.Journal(),
	}
	p, err := kern.Spawn("lpm", user.Name)
	if err != nil {
		return nil, fmt.Errorf("spawn lpm: %w", err)
	}
	l.pid = p.PID
	l.myPids[p.PID] = true
	for i := 0; i < cfg.HandlerPool; i++ {
		h, err := kern.Fork(l.pid, "lpm-handler")
		if err != nil {
			return nil, fmt.Errorf("prefork handler: %w", err)
		}
		l.myPids[h.PID] = true
		l.idleHandlers = append(l.idleHandlers, h.PID)
	}
	if err := l.transport.Listen(l.accept.Host, l.accept.Port, l.acceptConn); err != nil {
		return nil, fmt.Errorf("lpm listen: %w", err)
	}
	kern.SetEventSink(user.Name, l.onKernelEvent)
	l.rec = recovery.New((*recEnv)(l), cfg.Recovery)
	l.lastActivity = l.sched.Now()
	l.armTTL()
	return l, nil
}

// Accept returns the LPM's accept address.
func (l *LPM) Accept() simnet.Addr { return l.accept }

// Host returns the host name the LPM runs on.
func (l *LPM) Host() string { return l.kern.Name() }

// incarnation identifies this LPM instance in operation identities:
// the dispatcher's kernel pid, which the per-host pid counter never
// reuses (it survives crashes). A restarted or recreated LPM — whose
// opSeq restarts from zero — therefore mints op keys disjoint from its
// predecessor's, and surviving peers can never answer its fresh
// operations from a stale reply cache.
func (l *LPM) incarnation() uint64 { return uint64(l.pid) }

// User returns the owning user's name.
func (l *LPM) User() string { return l.user.Name }

// Exited reports whether the LPM has shut down.
func (l *LPM) Exited() bool { return l.exited }

// Recovery exposes the CCS state machine.
func (l *LPM) Recovery() *recovery.Manager { return l.rec }

// History exposes the preserved event store (tool access).
func (l *LPM) History() *history.Store { return l.store }

// SiblingHosts returns the hosts with an authenticated circuit.
func (l *LPM) SiblingHosts() []string {
	var out []string
	for _, h := range detord.Keys(l.siblings) {
		if sb := l.siblings[h]; sb.authed && sb.conn.Open() {
			out = append(out, h)
		}
	}
	return out
}

// touch records activity for the TTL logic.
func (l *LPM) touch() { l.lastActivity = l.sched.Now() }

// chanKey names a sibling circuit "dialer->acceptor" so both endpoints
// journal the same channel identity: the acceptor's end of the circuit
// is its accept address, so whichever side this is, orienting the pair
// away from the accept address yields the dialer-first form.
func (l *LPM) chanKey(conn Conn) string {
	local, remote := conn.LocalAddr(), conn.RemoteAddr()
	if local == l.accept {
		local, remote = remote, local
	}
	return fmt.Sprintf("%s:%d->%s:%d", local.Host, local.Port, remote.Host, remote.Port)
}

// stampID renders a broadcast stamp for journal details. The stamp's
// binary Key() is unprintable; origin, mint time and sequence identify
// it just as uniquely.
func stampID(s wire.Stamp) string {
	return fmt.Sprintf("%s@%v#%d", s.Origin, s.At, s.Seq)
}

// withTraceCtx runs fn with ctx installed as the tracer's active
// context, so kernel events emitted synchronously inside fn (signals,
// forks, execs) attach to the trace. Safe under the single-goroutine
// scheduler; a nil or disabled tracer makes this a plain call.
func (l *LPM) withTraceCtx(ctx trace.Context, fn func()) {
	old := l.tracer.Exchange(ctx)
	fn()
	l.tracer.Exchange(old)
}

// --- time-to-live ---

func (l *LPM) armTTL() {
	if l.exited {
		return
	}
	l.ttlTimer.Cancel()
	l.ttlTimer = l.sched.After(l.cfg.TTL, l.checkTTL)
}

// userLiveProcs counts live user processes excluding the LPM's own
// dispatcher and handlers.
func (l *LPM) userLiveProcs() int {
	n := 0
	for _, p := range l.kern.ProcessesOf(l.user.Name) {
		if l.myPids[p.ID.PID] {
			continue
		}
		if p.State == proc.Running || p.State == proc.Stopped {
			n++
		}
	}
	return n
}

func (l *LPM) checkTTL() {
	if l.exited {
		return
	}
	// The CCS does not decrement its time-to-live while any sibling
	// LPM exists in the networked system.
	if l.rec.IsCCS() && len(l.SiblingHosts()) > 0 {
		l.armTTL()
		return
	}
	idleFor := l.sched.Now().Sub(l.lastActivity)
	if l.userLiveProcs() > 0 || idleFor < l.cfg.TTL {
		l.armTTL()
		return
	}
	l.Exit()
}

// Exit shuts the LPM down: deregisters from the pmd, closes circuits,
// stops recovery, and terminates the dispatcher and handler processes.
func (l *LPM) Exit() {
	if l.exited {
		return
	}
	l.exited = true
	l.metrics.Counter("lpm.exits").Inc()
	l.ttlTimer.Cancel()
	l.rec.Stop()
	l.kern.SetEventSink(l.user.Name, nil)
	l.transport.CloseListen(l.accept.Host, l.accept.Port)
	if l.dmns != nil {
		l.dmns.Unregister(l.user.Name)
	}
	// Tear down in deterministic order: siblings by host, pending
	// requests by id, own processes by pid — each step schedules events.
	hosts := detord.Keys(l.siblings)
	for _, h := range hosts {
		sb := l.siblings[h]
		sb.ltTimer.Cancel()
		l.circuitTransition(h, circuitClosed, "exit", l.chanKey(sb.conn))
		sb.conn.Close()
	}
	l.siblings = make(map[string]*sibling)
	ids := detord.Keys(l.pending)
	for _, id := range ids {
		pr := l.pending[id]
		pr.timer.Cancel()
		cb := pr.cb
		pr.span.End()
		delete(l.pending, id)
		cb(wire.Envelope{}, ErrExited)
	}
	pids := detord.Keys(l.myPids)
	for _, pid := range pids {
		if p, err := l.kern.Lookup(pid); err == nil &&
			(p.State == proc.Running || p.State == proc.Stopped) {
			//ppmlint:allow errdrop teardown: the process was verified live by the Lookup above
			_ = l.kern.Exit(pid, 0)
		}
	}
}

// terminateAll is the time-to-die action: kill the user's local
// processes and exit.
func (l *LPM) terminateAll() {
	for _, p := range l.kern.ProcessesOf(l.user.Name) {
		if l.myPids[p.ID.PID] {
			continue
		}
		if p.State == proc.Running || p.State == proc.Stopped {
			//ppmlint:allow errdrop time-to-die sweep: the state guard makes SIGKILL infallible here
			_ = l.kern.Signal(p.ID.PID, proc.SIGKILL)
		}
	}
	l.Exit()
}

// --- kernel events (the kernel socket) ---

func (l *LPM) onKernelEvent(ev proc.Event) {
	if l.exited {
		return
	}
	l.Stats.KernelEvents++
	l.metrics.Counter("lpm.kernel_events").Inc()
	l.touch()
	l.store.Append(ev)
	switch ev.Kind {
	case proc.EvExit:
		if info, err := l.kern.Info(ev.Proc.PID); err == nil {
			l.records[ev.Proc.PID] = info
			l.store.RecordExit(info)
			l.forwardExit(ev, info)
		}
	case proc.EvFork:
		// Track the new child: it inherited the trace flags.
		if info, err := l.kern.Info(ev.Child.PID); err == nil {
			l.records[ev.Child.PID] = info
		}
	default:
		if info, err := l.kern.Info(ev.Proc.PID); err == nil {
			l.records[ev.Proc.PID] = info
		}
	}
}

// forwardExit notifies a remotely created process's home LPM of its
// exit. The kernel event lands here, at the LPM of the host the
// process ran on — but watches on the process were declared at its
// home LPM (the logical parent's host), whose history store would
// otherwise never see the exit. The notification rides the retry
// engine as an at-most-once operation, so a retransmitted ProcExit
// can never fire home watches twice.
func (l *LPM) forwardExit(ev proc.Event, info proc.Info) {
	home := info.Parent.Host
	if home == "" || home == l.Host() {
		return
	}
	l.metrics.Counter("lpm.exit.forwards").Inc()
	if l.journal.Enabled() {
		l.journal.Append(journal.LPMExitForward, l.Host(),
			fmt.Sprintf("user=%s proc=%s/%d to=%s", l.user.Name, info.ID.Host, info.ID.PID, home))
	}
	body := wire.ProcExit{User: l.user.Name, Event: ev, Info: info}.Encode()
	l.remoteCall(trace.Context{}, home, wire.MsgProcExit, body, func(wire.Envelope, error) {})
}

// --- handler pool ---

// withHandler assigns a handler process to a blocking request, forking
// one if the pool is empty (or reuse is disabled), then calls fn with
// the handler pid.
func (l *LPM) withHandler(fn func(proc.PID)) {
	if !l.cfg.NoHandlerReuse && len(l.idleHandlers) > 0 {
		h := l.idleHandlers[len(l.idleHandlers)-1]
		l.idleHandlers = l.idleHandlers[:len(l.idleHandlers)-1]
		l.Stats.HandlerReuses++
		l.metrics.Counter("lpm.handler.reuses").Inc()
		fn(h)
		return
	}
	l.Stats.HandlerForks++
	l.metrics.Counter("lpm.handler.forks").Inc()
	l.kern.ExecCPU(calib.HandlerFork, func() {
		h, err := l.kern.Fork(l.pid, "lpm-handler")
		if err != nil {
			fn(0)
			return
		}
		l.myPids[h.PID] = true
		fn(h.PID)
	})
}

// releaseHandler returns a handler to the pool (or retires it when
// reuse is disabled).
func (l *LPM) releaseHandler(h proc.PID) {
	if h == 0 {
		return
	}
	if l.cfg.NoHandlerReuse {
		if p, err := l.kern.Lookup(h); err == nil && p.State == proc.Running {
			//ppmlint:allow errdrop handler retirement: the process was verified running on the line above
			_ = l.kern.Exit(h, 0)
		}
		delete(l.myPids, h)
		return
	}
	l.idleHandlers = append(l.idleHandlers, h)
}

// --- recovery Env implementation ---

// recEnv adapts *LPM to recovery.Env without polluting the LPM method
// set.
type recEnv LPM

func (r *recEnv) lpm() *LPM { return (*LPM)(r) }

func (r *recEnv) HostName() string { return r.lpm().Host() }

func (r *recEnv) After(d time.Duration, fn func()) sim.Timer {
	return r.lpm().sched.After(d, fn)
}

func (r *recEnv) ProbeHost(host string, cb func(bool)) {
	l := r.lpm()
	if l.exited {
		cb(false)
		return
	}
	l.metrics.Counter("lpm.recovery.probes").Inc()
	daemon.QueryLPM(l.net, l.Host(), host, l.user, func(resp wire.LPMQueryResp, err error) {
		cb(err == nil && resp.OK)
	})
}

func (r *recEnv) ConnectCCS(host string, cb func(bool)) {
	l := r.lpm()
	if host == l.Host() {
		cb(true)
		return
	}
	l.ensureSibling(trace.Context{}, host, func(sb *sibling, err error) {
		cb(err == nil && sb != nil)
	})
}

func (r *recEnv) AnnounceCCS(host string) {
	l := r.lpm()
	l.metrics.Counter("lpm.recovery.ccs_announcements").Inc()
	body := wire.CCSUpdate{CCSHost: host}.Encode()
	for _, h := range l.SiblingHosts() {
		l.sendOneWay(l.siblings[h], wire.MsgCCSUpdate, body)
	}
}

func (r *recEnv) RedialSibling(host string, cb func(bool)) {
	l := r.lpm()
	if l.exited {
		cb(false)
		return
	}
	if sb, ok := l.siblings[host]; ok && sb.authed && sb.conn.Open() {
		cb(true)
		return
	}
	l.metrics.Counter("lpm.request.redials").Inc()
	l.journal.Append(journal.LPMRedial, l.Host(),
		fmt.Sprintf("user=%s peer=%s reason=recovery", l.user.Name, host))
	l.ensureSibling(trace.Context{}, host, func(sb *sibling, err error) {
		cb(err == nil && sb != nil)
	})
}

func (r *recEnv) TerminateAll() {
	r.lpm().metrics.Counter("lpm.recovery.terminations").Inc()
	r.lpm().terminateAll()
}

func (r *recEnv) HaveSiblings() bool { return len(r.lpm().SiblingHosts()) > 0 }
