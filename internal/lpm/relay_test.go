package lpm

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/proc"
	"ppm/internal/wire"
)

// chainWorld builds circuits a-b and b-c (no a-c), with UseRelay on,
// runs a snapshot so a learns the route to c, and returns the world
// plus the LPMs and a process on c.
func chainWorld(t *testing.T, cfg Config) (*world, *LPM, *LPM, proc.GPID) {
	t.Helper()
	cfg.UseRelay = true
	w := newWorld(t, cfg, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	w.create(la, "a", "pa", proc.GPID{})
	w.create(la, "b", "pb", proc.GPID{})
	lb := w.lpms["b/felipe"]
	target := w.create(lb, "c", "pc", proc.GPID{})
	w.run(500 * time.Millisecond)
	// The snapshot flood teaches a the route a->b->c.
	_ = w.snapshot(la)
	return w, la, lb, target
}

func TestRelayRouteLearnedFromBroadcast(t *testing.T) {
	_, la, _, _ := chainWorld(t, Config{})
	path, ok := la.KnownRoute("c")
	if !ok {
		t.Fatal("route to c not learned")
	}
	if len(path) != 2 || path[0] != "b" || path[1] != "c" {
		t.Fatalf("path = %v, want [b c]", path)
	}
	if _, ok := la.KnownRoute("nowhere"); ok {
		t.Fatal("phantom route")
	}
}

func TestRelayControlAvoidsNewCircuit(t *testing.T) {
	w, la, lb, target := chainWorld(t, Config{})
	for _, h := range la.SiblingHosts() {
		if h == "c" {
			t.Fatal("setup: a must not have a circuit to c")
		}
	}
	resp, err := w.control(la, target, wire.OpStop, 0)
	if err != nil || !resp.OK {
		t.Fatalf("relayed stop: %v %+v", err, resp)
	}
	if resp.State != proc.Stopped {
		t.Fatalf("state = %v", resp.State)
	}
	// Still no direct circuit: the request travelled through b.
	for _, h := range la.SiblingHosts() {
		if h == "c" {
			t.Fatal("relay should not have opened a circuit to c")
		}
	}
	if la.Stats.RelaysOriginated != 1 {
		t.Fatalf("relays originated = %d", la.Stats.RelaysOriginated)
	}
	if lb.Stats.RelaysForwarded != 1 {
		t.Fatalf("relays forwarded at b = %d", lb.Stats.RelaysForwarded)
	}
}

func TestRelayStatsAndFDs(t *testing.T) {
	w, la, _, target := chainWorld(t, Config{})
	if _, err := w.kerns["c"].OpenFD(target.PID, "/tmp/x"); err != nil {
		t.Fatal(err)
	}
	var open []string
	done := false
	la.FDs(target, func(o []string, err error) {
		if err != nil {
			t.Fatal(err)
		}
		open, done = o, true
	})
	w.until(func() bool { return done })
	found := false
	for _, s := range open {
		if strings.Contains(s, "/tmp/x") {
			found = true
		}
	}
	if !found {
		t.Fatalf("relayed fds = %v", open)
	}

	var info proc.Info
	done = false
	la.StatsOf(target, func(i proc.Info, err error) {
		if err != nil {
			t.Fatal(err)
		}
		info, done = i, true
	})
	w.until(func() bool { return done })
	if info.ID != target {
		t.Fatalf("relayed stats: %+v", info)
	}
}

func TestRelayDisabledOpensCircuit(t *testing.T) {
	// Same chain, but UseRelay off: the control op opens a direct a-c
	// circuit.
	w := newWorld(t, Config{}, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	w.create(la, "b", "pb", proc.GPID{})
	lb := w.lpms["b/felipe"]
	target := w.create(lb, "c", "pc", proc.GPID{})
	w.run(500 * time.Millisecond)
	_ = w.snapshot(la)
	resp, err := w.control(la, target, wire.OpStop, 0)
	if err != nil || !resp.OK {
		t.Fatalf("stop: %v %+v", err, resp)
	}
	hasC := false
	for _, h := range la.SiblingHosts() {
		if h == "c" {
			hasC = true
		}
	}
	if !hasC {
		t.Fatal("without relay a direct circuit should have been opened")
	}
}

func TestRelayFallsBackToDirectCircuitWhenIntermediaryDies(t *testing.T) {
	w, la, _, target := chainWorld(t, Config{})
	// b goes down: the relay path's first hop is gone, so the LPM falls
	// back to opening a direct circuit to c.
	_ = w.net.Crash("b")
	w.kerns["b"].Crash()
	w.run(5 * time.Second)
	resp, err := w.control(la, target, wire.OpStop, 0)
	if err != nil || !resp.OK {
		t.Fatalf("fallback stop failed: %v %+v", err, resp)
	}
	hasC := false
	for _, h := range la.SiblingHosts() {
		if h == "c" {
			hasC = true
		}
	}
	if !hasC {
		t.Fatal("fallback should have opened a direct circuit to c")
	}
	if la.Stats.RelaysOriginated != 0 {
		t.Fatal("no relay should have been attempted with the first hop down")
	}
}

func TestRelayDestinationFailureReturnsError(t *testing.T) {
	w, la, _, target := chainWorld(t, Config{})
	// c goes down: the relay reaches b, b cannot reach c, the op fails
	// cleanly rather than hanging.
	_ = w.net.Crash("c")
	w.kerns["c"].Crash()
	w.run(5 * time.Second)
	_, err := w.control(la, target, wire.OpStop, 0)
	if err == nil {
		t.Fatal("relay to a crashed destination should fail")
	}
}

func TestRelayLatencyCheaperThanColdCircuitButDearerThanWarm(t *testing.T) {
	w, la, _, target := chainWorld(t, Config{})
	startRelay := w.sched.Now()
	if _, err := w.control(la, target, wire.OpStop, 0); err != nil {
		t.Fatal(err)
	}
	relayMS := msBetween(startRelay, w.sched.Now())

	// A warm direct circuit (one hop on this LAN) costs 199 ms; the
	// relayed op pays two store-and-forward legs each way instead of
	// one: roughly 368 ms.
	if relayMS < 330 || relayMS > 410 {
		t.Fatalf("relayed stop took %.1f ms, expected ~368", relayMS)
	}
}

func TestRelayedCreateWorks(t *testing.T) {
	w, la, _, _ := chainWorld(t, Config{})
	id := w.create(la, "c", "relayed-job", proc.GPID{})
	if id.Host != "c" {
		t.Fatalf("created on %s", id.Host)
	}
	w.run(time.Second)
	p, err := w.kerns["c"].Lookup(id.PID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Traced || p.Name != "relayed-job" {
		t.Fatalf("relayed create: %+v", p)
	}
	if la.Stats.RelaysOriginated == 0 {
		t.Fatal("create did not use the relay")
	}
}
