package lpm

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/daemon"
	"ppm/internal/detect"
	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/proc"
	"ppm/internal/recovery"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// Compile-time check: the adapter satisfies the recovery environment.
var _ recovery.Env = (*recEnv)(nil)

// --- inbound circuits (the accept socket) ---

// acceptConn receives new circuits on the accept socket. The first
// message must be a Hello: authentication happens once, at channel
// creation, not on every request.
func (l *LPM) acceptConn(conn Conn) {
	if l.exited {
		conn.Close()
		return
	}
	conn.SetHandler(func(b []byte) { l.onFirstMsg(conn, b) })
	conn.SetCloseHandler(func(error) {}) // unauthenticated: nothing to clean
}

func (l *LPM) onFirstMsg(conn Conn, b []byte) {
	env, err := wire.DecodeEnvelopeLogged(b, l.journal, l.Host())
	if err != nil || env.Type != wire.MsgHello {
		conn.Close()
		return
	}
	hello, err := wire.DecodeHello(env.Body)
	if err != nil {
		conn.Close()
		return
	}
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
	esp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", ctx)
	l.kern.ExecCPU(calib.SiblingEndpoint, func() {
		esp.End()
		l.handleHello(conn, env.ReqID, hello, ctx)
	})
}

func (l *LPM) handleHello(conn Conn, reqID uint64, hello wire.Hello, ctx trace.Context) {
	reject := func(reason string) {
		l.metrics.Counter("lpm.siblings.rejected").Inc()
		l.journal.AppendCtx(journal.LPMSiblingReject, l.Host(),
			"from="+hello.FromHost+" reason="+reason, ctx.Trace, ctx.Span)
		body := wire.HelloResp{OK: false, Reason: reason}.Encode()
		env := wire.Envelope{Type: wire.MsgHelloResp, ReqID: reqID, Body: body}
		env.SetTrace(ctx.Trace, ctx.Span)
		//ppmlint:allow errdrop rejection notice is best-effort; the circuit closes right after either way
		_ = l.sendFramed(conn, env, ctx)
		l.sched.After(0, conn.Close)
	}
	if !conn.Open() {
		// The dialer gave up (hello timeout, its host died) while this
		// Hello sat in the CPU queue: the close notification already ran
		// against the pre-auth no-op handler. Registering the corpse
		// would create a zombie circuit — established in the machine,
		// but with a dead conn whose close handler can never fire.
		l.metrics.Counter("lpm.hello.dead_conn").Inc()
		return
	}
	if l.exited {
		reject("lpm exited")
		return
	}
	// A sibling must manage the same user...
	if hello.User != l.user.Name {
		reject("user mismatch")
		return
	}
	// ... present a token minted with the user's key ...
	if err := l.dir.VerifyToken(hello.User, "sibling", hello.Token); err != nil {
		reject(fmt.Sprintf("token: %v", err))
		return
	}
	// ... and a validly signed stamp naming its host.
	if !hello.Stamp.Verify(l.user.Key()) || hello.Stamp.Origin != hello.FromHost {
		reject("bad stamp")
		return
	}
	// The claimed origin must match the circuit's actual remote end
	// (user-level masquerade prevention; host-level masquerade is out
	// of scope, as in the paper).
	if conn.RemoteAddr().Host != hello.FromHost {
		reject("origin mismatch")
		return
	}
	// Simultaneous cross-dial tie-break: when both hosts Hello each
	// other in the same instant, each side would otherwise register
	// the inbound circuit and then have it superseded by its own
	// outbound one — leaving the pair with two live circuits, each
	// host pinning a different one. Deterministic rule: the lower
	// host name's outbound circuit wins, so the lower host rejects
	// the inbound Hello while its own dial is still in flight; the
	// higher host sees the "cross-dial" reason, abandons its outbound
	// attempt, and waits for the winner's Hello to land.
	if ds, ok := l.dialing[hello.FromHost]; ok && !ds.done && l.Host() < hello.FromHost {
		l.metrics.Counter("lpm.crossdial.rejects").Inc()
		reject("cross-dial")
		return
	}
	// Authentication happens exactly once, here, at channel creation;
	// the audit invariant holds the journal to that.
	l.journal.AppendCtx(journal.LPMSiblingAuth, l.Host(),
		fmt.Sprintf("user=%s chan=%s from=%s", hello.User, l.chanKey(conn), hello.FromHost),
		ctx.Trace, ctx.Span)
	body := wire.HelloResp{OK: true, Inc: l.incarnation()}.Encode()
	respEnv := wire.Envelope{Type: wire.MsgHelloResp, ReqID: reqID, Body: body}
	respEnv.SetTrace(ctx.Trace, ctx.Span)
	if hello.FromHost == l.Host() {
		// A local tool connecting to the accept socket (Figure 4's tool
		// sockets), not a sibling.
		conn.SetHandler(func(b []byte) { l.onToolMsg(conn, b) })
		conn.SetCloseHandler(func(error) {})
		//ppmlint:allow errdrop send failure surfaces through the connection close handler, not this return
		_ = l.sendFramedReply(conn, respEnv, ctx)
		return
	}
	l.registerSibling(hello.FromHost, conn, hello.Inc)
	if hello.CCSHost != "" {
		l.rec.OnContact(hello.CCSHost)
	}
	//ppmlint:allow errdrop send failure surfaces through the circuit close handler, not this return
	_ = l.sendFramedReply(conn, respEnv, ctx)
}

// registerSibling installs an authenticated circuit. inc is the peer
// LPM's incarnation from the Hello exchange: when it differs from the
// one previously seen for this host, the peer's LPM was recreated (the
// host restarted, or the LPM exited and a fresh one was spawned) and
// every piece of dedup state scoped to the predecessor — cached
// replies and in-flight markers — is purged. The predecessor's op
// numbering can never be spoken again, so the entries could only ever
// cause a fresh operation to be wrongly answered from a stale cache.
func (l *LPM) registerSibling(host string, conn Conn, inc uint64) {
	if old, ok := l.peerIncs[host]; ok && old != inc {
		prefix := wire.OpPrefix(host, old)
		l.replies.PurgePrefix(prefix)
		for _, k := range detord.Keys(l.inflightOps) {
			if strings.HasPrefix(k, prefix) {
				delete(l.inflightOps, k)
			}
		}
	}
	l.peerIncs[host] = inc
	if old, ok := l.siblings[host]; ok && old.conn != conn && old.conn.Open() {
		// A replacement circuit supersedes a live one: step the
		// machine through Closed first so the pair never shows two
		// Established circuits, then close (the close handler's own
		// transition no-ops).
		l.circuitTransition(host, circuitClosed, "superseded", l.chanKey(old.conn))
		old.conn.Close()
	}
	// An inbound Hello reaches here without passing through the
	// Dialing leg; normalize onto Authenticating before stepping to
	// Established so the journaled walk follows the legal table from
	// whichever state the machine was in.
	if l.circuits[host] != circuitAuthenticating {
		l.circuitTransition(host, circuitAuthenticating, "hello-in", l.chanKey(conn))
	}
	sb := &sibling{host: host, conn: conn, authed: true, inc: inc, openedAt: l.sched.Now()}
	sb.det = detect.New(l.cfg.Detector, l.sched.Now().Duration())
	l.siblings[host] = sb
	l.knownHosts[host] = true
	l.metrics.Counter("lpm.siblings.opened").Inc()
	l.metrics.Gauge("lpm.siblings.open").Add(1)
	role := "client"
	if conn.LocalAddr() == l.accept {
		role = "server"
	}
	l.circuitTransition(host, circuitEstablished, "auth-"+role, l.chanKey(conn))
	l.journal.Append(journal.LPMSiblingOpen, l.Host(),
		fmt.Sprintf("user=%s peer=%s chan=%s role=%s", l.user.Name, host, l.chanKey(conn), role))
	conn.SetHandler(func(b []byte) { l.onSiblingMsg(sb, b) })
	conn.SetCloseHandler(func(err error) { l.onSiblingClosed(sb, err) })
	if l.cfg.Linktest > 0 {
		l.scheduleLinktest(sb)
	}
	// An inbound establishment serves any dial in flight to the same
	// host: the queued callbacks get this circuit instead of waiting
	// for (or cross-dialing against) the outbound attempt.
	l.completeDial(host, sb)
	l.rec.OnSiblingUp(host)
	l.touch()
}

func (l *LPM) onSiblingClosed(sb *sibling, err error) {
	if cur, ok := l.siblings[sb.host]; ok && cur == sb {
		delete(l.siblings, sb.host)
		sb.ltTimer.Cancel()
		reason := "close"
		if err != nil {
			reason = "peer-lost"
		}
		l.circuitTransition(sb.host, circuitClosed, reason, l.chanKey(sb.conn))
		l.metrics.Counter("lpm.siblings.closed").Inc()
		l.metrics.Gauge("lpm.siblings.open").Add(-1)
		l.journal.Append(journal.LPMSiblingClose, l.Host(),
			fmt.Sprintf("user=%s peer=%s chan=%s", l.user.Name, sb.host, l.chanKey(sb.conn)))
	}
	// Fail outstanding requests to that host, oldest first (map order
	// would let error callbacks race each other across identical runs).
	var ids []uint64
	for _, id := range detord.Keys(l.pending) {
		if l.pending[id].host == sb.host {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		pr := l.pending[id]
		pr.timer.Cancel()
		cb := pr.cb
		l.releaseHandler(pr.handler)
		pr.span.End()
		delete(l.pending, id)
		cb(wire.Envelope{}, fmt.Errorf("%w: %s", ErrNoSibling, sb.host))
	}
	if err != nil && !l.exited {
		l.metrics.Counter("lpm.recovery.siblings_lost").Inc()
		l.rec.OnSiblingLost(sb.host)
	}
}

// --- outbound circuits ---

// ensureSibling returns an authenticated circuit to the user's LPM on
// host, creating the remote LPM (via its pmd) and the circuit on
// demand. Concurrent requests for the same host coalesce. The pmd
// query, the dial handshake and the Hello exchange all record spans
// under a "circuit.establish" child of ctx.
func (l *LPM) ensureSibling(ctx trace.Context, host string, cb func(*sibling, error)) {
	if l.exited {
		cb(nil, ErrExited)
		return
	}
	if host == l.Host() {
		cb(nil, fmt.Errorf("%w: self-connection", ErrBadRequest))
		return
	}
	if sb, ok := l.siblings[host]; ok && sb.authed && sb.conn.Open() {
		l.sched.Defer(func() { cb(sb, nil) })
		return
	}
	if ds, ok := l.dialing[host]; ok {
		ds.cbs = append(ds.cbs, cb)
		return
	}
	csp := l.tracer.StartSpan(l.Host(), "circuit.establish."+host, ctx)
	ds := &dialState{cbs: []func(*sibling, error){cb}, span: csp}
	l.dialing[host] = ds
	l.circuitTransition(host, circuitDialing, "dial", "-")
	cctx := csp.Context()
	if !cctx.Valid() {
		cctx = ctx
	}
	// finish settles the dial exactly once — through the error paths
	// here or through completeDial when an inbound circuit (the
	// cross-dial winner's Hello) lands first. Whichever runs first
	// ends the establish span and drains the callback queue; the
	// loser's call no-ops.
	finish := func(sb *sibling, err error) {
		if ds.done {
			return
		}
		ds.done = true
		ds.span.End()
		delete(l.dialing, host)
		if err != nil {
			l.circuitTransition(host, circuitClosed, "dial-failed", "-")
		}
		for _, f := range ds.cbs {
			f(sb, err)
		}
	}
	daemon.QueryLPMCtx(l.net, l.Host(), host, l.user, cctx, func(resp wire.LPMQueryResp, err error) {
		if l.exited {
			finish(nil, ErrExited)
			return
		}
		if err != nil {
			finish(nil, fmt.Errorf("%w: query %s: %v", ErrNoSibling, host, err))
			return
		}
		if !resp.OK {
			finish(nil, fmt.Errorf("%w: pmd on %s: %s", ErrNoSibling, host, resp.Reason))
			return
		}
		to := simnet.Addr{Host: resp.AcceptHost, Port: resp.AcceptPort}
		l.transport.Dial(l.Host(), to, cctx, func(conn Conn, err error) {
			if err != nil {
				finish(nil, fmt.Errorf("%w: dial %s: %v", ErrNoSibling, host, err))
				return
			}
			l.helloTo(cctx, host, conn, finish)
		})
	})
}

// completeDial settles an in-flight dial to host with an already
// registered circuit (the inbound leg of a cross-dial, or a redial
// racing an inbound Hello): the establish span ends and every queued
// callback receives sb.
func (l *LPM) completeDial(host string, sb *sibling) {
	ds, ok := l.dialing[host]
	if !ok || ds.done {
		return
	}
	ds.done = true
	ds.span.End()
	delete(l.dialing, host)
	for _, f := range ds.cbs {
		f(sb, nil)
	}
}

// helloTo authenticates a freshly dialed circuit.
func (l *LPM) helloTo(ctx trace.Context, host string, conn Conn, finish func(*sibling, error)) {
	l.circuitTransition(host, circuitAuthenticating, "hello", l.chanKey(conn))
	l.floodSeq++
	hello := wire.Hello{
		User:     l.user.Name,
		FromHost: l.Host(),
		Token:    auth.MintToken(l.user, "sibling"),
		Stamp:    wire.NewStamp(l.user.Key(), l.Host(), l.sched.Now().Duration(), l.floodSeq),
		CCSHost:  l.rec.CCS(),
		Inc:      l.incarnation(),
	}
	answered := false
	var helloTmr sim.Timer
	settle := func() {
		answered = true
		helloTmr.Cancel()
	}
	conn.SetHandler(func(b []byte) {
		if answered {
			return
		}
		settle()
		env, err := wire.DecodeEnvelopeLogged(b, l.journal, l.Host())
		if err != nil || env.Type != wire.MsgHelloResp {
			conn.Close()
			finish(nil, fmt.Errorf("%w: bad hello reply from %s", ErrNoSibling, host))
			return
		}
		resp, err := wire.DecodeHelloResp(env.Body)
		if err != nil || !resp.OK {
			conn.Close()
			if err == nil && resp.Reason == "cross-dial" {
				// The peer is the lower-named host and is dialing us
				// right now (it only rejects with this reason while
				// its own dial to us is in flight): its Hello is
				// already on the wire and will settle this dial via
				// completeDial. Keep the dial open for it, bounded by
				// a safety timeout in case the winning circuit dies
				// mid-handshake.
				l.metrics.Counter("lpm.crossdial.yields").Inc()
				l.sched.After(l.cfg.RequestTimeout, func() {
					finish(nil, fmt.Errorf("%w: cross-dial yield to %s never completed", ErrNoSibling, host))
				})
				return
			}
			finish(nil, fmt.Errorf("%w: %s rejected hello: %s", ErrNoSibling, host, resp.Reason))
			return
		}
		rsp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", ctx)
		l.kern.ExecCPU(calib.SiblingEndpoint, func() {
			rsp.End()
			if !conn.Open() {
				// Closed while the registration sat in the CPU queue
				// (the close handler already no-opped: answered is set).
				// Registering it would park a dead conn in Established.
				l.metrics.Counter("lpm.hello.dead_conn").Inc()
				finish(nil, fmt.Errorf("%w: circuit to %s closed during hello", ErrNoSibling, host))
				return
			}
			l.registerSibling(host, conn, resp.Inc)
			finish(l.siblings[host], nil)
		})
	})
	conn.SetCloseHandler(func(err error) {
		if !answered {
			settle()
			finish(nil, fmt.Errorf("%w: circuit to %s broke during hello", ErrNoSibling, host))
		}
	})
	// Bound the handshake: a hello whose reply is lost would otherwise
	// park the dial forever (the circuit stays open, so the close
	// handler never fires). Timing out surfaces ErrNoSibling, which the
	// retry engine treats as retryable.
	helloTmr = l.sched.After(l.cfg.RequestTimeout, func() {
		if answered {
			return
		}
		answered = true
		l.metrics.Counter("lpm.hello.timeouts").Inc()
		conn.Close()
		finish(nil, fmt.Errorf("%w: hello to %s timed out", ErrNoSibling, host))
	})
	esp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", ctx)
	l.kern.ExecCPU(calib.SiblingEndpoint, func() {
		esp.End()
		env := wire.Envelope{Type: wire.MsgHello, ReqID: 0, Body: hello.Encode()}
		env.SetTrace(ctx.Trace, ctx.Span)
		//ppmlint:allow errdrop a lost Hello is retried by the redial engine; failure surfaces on circuit close
		_ = l.sendFramed(conn, env, ctx)
	})
}

// sendFramed encodes env through a pooled encoder and hands the frame
// to the circuit. The network copies the frame into its own delivery
// buffer synchronously, so the encoder is released as soon as SendCtx
// returns — the sibling send path allocates no per-message frame.
func (l *LPM) sendFramed(conn Conn, env wire.Envelope, ctx trace.Context) error {
	enc := wire.GetEncoder()
	err := conn.SendCtx(env.EncodeLoggedTo(enc, l.metrics, l.journal, l.Host()), ctx)
	wire.PutEncoder(enc)
	return err
}

// sendFramedReply is sendFramed for the response direction: transit is
// traced as "net.reply.*" spans, so the profiler's reply-transit phase
// sees it (the circuit itself carries no direction information).
func (l *LPM) sendFramedReply(conn Conn, env wire.Envelope, ctx trace.Context) error {
	enc := wire.GetEncoder()
	err := conn.SendReplyCtx(env.EncodeLoggedTo(enc, l.metrics, l.journal, l.Host()), ctx)
	wire.PutEncoder(enc)
	return err
}

// --- message plumbing ---

// isResponse classifies envelope types that answer a pending request.
func isResponse(t wire.MsgType) bool {
	switch t {
	case wire.MsgControlResp, wire.MsgCreateAck, wire.MsgSnapshotResp,
		wire.MsgStatsResp, wire.MsgHistoryResp, wire.MsgFDResp,
		wire.MsgBroadcastResp, wire.MsgPong, wire.MsgRelayResp,
		wire.MsgWatchResp, wire.MsgStatusResp, wire.MsgLinkTestResp,
		wire.MsgProcExitResp, wire.MsgError:
		return true
	default:
		return false
	}
}

// endpointCost returns the CPU demand of processing one circuit message
// at one endpoint. Creation acks are lightweight: the dispatcher sends
// them directly and the blocked handler consumes them.
func endpointCost(t wire.MsgType) time.Duration {
	switch t {
	case wire.MsgCreateAck:
		return calib.AckEndpoint
	case wire.MsgLinkTest, wire.MsgLinkTestResp:
		return calib.HeartbeatEndpoint
	}
	return calib.SiblingEndpoint
}

// onSiblingMsg routes a message arriving on an authenticated circuit.
func (l *LPM) onSiblingMsg(sb *sibling, b []byte) {
	if l.exited {
		return
	}
	env, err := wire.DecodeEnvelopeLogged(b, l.journal, l.Host())
	if err != nil {
		return
	}
	l.touch()
	l.observeArrival(sb)
	cost := endpointCost(env.Type)
	if l.cfg.PerMessageAuth {
		// The datagram-style scheme authenticates every message instead
		// of once per channel.
		cost += calib.AuthCheck
	}
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
	esp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", ctx)
	l.kern.ExecCPU(cost, func() {
		esp.End()
		if l.exited {
			return
		}
		if isResponse(env.Type) {
			l.handleResponse(env)
		} else {
			l.handleRequest(sb, env)
		}
	})
}

// handleResponse completes a pending request.
func (l *LPM) handleResponse(env wire.Envelope) {
	pr, ok := l.pending[env.ReqID]
	if !ok {
		return // late response after timeout; drop
	}
	delete(l.pending, env.ReqID)
	pr.timer.Cancel()
	rtt := l.sched.Now().Sub(pr.sentAt)
	l.metrics.Histogram("lpm.request_rtt").Observe(rtt)
	l.observeOpRTT(pr.op, rtt)
	l.releaseHandler(pr.handler)
	pr.span.End()
	pr.cb(env, nil)
}

// sendRequest transmits a request over the circuit and registers the
// response callback. A handler process is assigned to block on the
// response (the paper's dispatcher/handler split); sending pays the
// per-endpoint protocol cost on this host's CPU. Under a valid ctx
// the whole exchange is covered by an "lpm.request" span (handler
// occupancy), the trace context rides inside the envelope, and the
// send-side protocol cost records a "dispatch.endpoint" span.
//
// A non-zero op rides in the envelope's OpID trailer: it names the
// logical operation across retransmissions so the receiver can dedup
// re-executions (zero disables at-most-once semantics).
func (l *LPM) sendRequest(ctx trace.Context, sb *sibling, t wire.MsgType, body []byte, op uint64, cb func(wire.Envelope, error)) {
	l.Stats.RemoteForwards++
	l.withHandler(func(h proc.PID) {
		if l.exited {
			cb(wire.Envelope{}, ErrExited)
			return
		}
		l.reqSeq++
		id := l.reqSeq
		pr := &pendingReq{host: sb.host, cb: cb, handler: h, sentAt: l.sched.Now(), op: t}
		pr.span = l.tracer.StartSpan(l.Host(), "lpm.request."+sb.host, ctx)
		rctx := pr.span.Context()
		if !rctx.Valid() {
			rctx = ctx
		}
		timeout := l.cfg.RequestTimeout
		if t == wire.MsgBroadcast {
			timeout = l.cfg.FloodTimeout
		}
		pr.timer = l.sched.After(timeout, func() {
			if cur, ok := l.pending[id]; ok && cur == pr {
				delete(l.pending, id)
				l.metrics.Counter("lpm.request.timeouts").Inc()
				l.journal.AppendCtx(journal.LPMTimeout, l.Host(),
					fmt.Sprintf("user=%s peer=%s type=%v op=%d", l.user.Name, sb.host, t, op),
					rctx.Trace, rctx.Span)
				l.releaseHandler(pr.handler)
				pr.span.End()
				pr.cb(wire.Envelope{}, fmt.Errorf("%w: %v to %s", ErrTimeout, t, sb.host))
			}
		})
		l.pending[id] = pr
		esp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", rctx)
		l.kern.ExecCPU(endpointCost(t), func() {
			esp.End()
			if !sb.conn.Open() {
				// The circuit died before the request went out. When it
				// closed before the pending entry was registered, the
				// close handler has already drained l.pending and will
				// never see this entry — fail it now rather than parking
				// the caller for the full timeout.
				if cur, ok := l.pending[id]; ok && cur == pr {
					delete(l.pending, id)
					pr.timer.Cancel()
					l.metrics.Counter("lpm.request.dead_circuit").Inc()
					l.releaseHandler(pr.handler)
					pr.span.End()
					pr.cb(wire.Envelope{}, fmt.Errorf("%w: %s circuit closed", ErrNoSibling, sb.host))
				}
				return
			}
			env := wire.Envelope{Type: t, ReqID: id, Body: body, OpID: op}
			env.SetTrace(rctx.Trace, rctx.Span)
			//ppmlint:allow errdrop request send is at-most-once; a lost frame is the retry engine's job
			_ = l.sendFramed(sb.conn, env, rctx)
			l.kern.AccountIPC(l.pid, 1, 0, t.String())
		})
	})
}

// sendReply answers a request on the circuit it arrived on, echoing
// the request's trace context so the reply's transit is attributed.
func (l *LPM) sendReply(ctx trace.Context, sb *sibling, reqID uint64, t wire.MsgType, body []byte) {
	esp := l.tracer.StartSpan(l.Host(), "dispatch.endpoint", ctx)
	l.kern.ExecCPU(endpointCost(t), func() {
		esp.End()
		if sb.conn.Open() {
			env := wire.Envelope{Type: t, ReqID: reqID, Body: body}
			env.SetTrace(ctx.Trace, ctx.Span)
			//ppmlint:allow errdrop reply send is fire-and-forget; the requester's timeout covers a lost frame
			_ = l.sendFramedReply(sb.conn, env, ctx)
			l.kern.AccountIPC(l.pid, 1, 0, t.String())
		}
	})
}

// sendOneWay transmits a request that expects no response (CCS
// updates).
func (l *LPM) sendOneWay(sb *sibling, t wire.MsgType, body []byte) {
	l.kern.ExecCPU(endpointCost(t), func() {
		if sb.conn.Open() {
			env := wire.Envelope{Type: t, ReqID: 0, Body: body}
			//ppmlint:allow errdrop one-way CCS update by design: no response expected, loss is tolerated
			_ = l.sendFramed(sb.conn, env, trace.Context{})
		}
	})
}
