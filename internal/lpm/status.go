package lpm

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/status"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// The live-introspection layer: every LPM can render a structured
// status.Report of its own host (BuildStatus) and gather one from every
// host in the installation (StatusSweep). The gather is an ordinary
// point-to-point sibling RPC riding the retry engine; it carries no
// operation id because building a report is read-only — a
// retransmission that re-executes just rebuilds the report.

// opRTTTable orders the request types whose round-trip latencies are
// tracked per op. The labels double as registry histogram names
// (precomputed so the response hot path never concatenates strings).
var opRTTTable = []struct {
	t       wire.MsgType
	label   string
	regName string
}{
	{wire.MsgBroadcast, "Broadcast", "lpm.request_rtt.Broadcast"},
	{wire.MsgControl, "Control", "lpm.request_rtt.Control"},
	{wire.MsgCreateProc, "CreateProc", "lpm.request_rtt.CreateProc"},
	{wire.MsgFDReq, "FDReq", "lpm.request_rtt.FDReq"},
	{wire.MsgHistoryReq, "HistoryReq", "lpm.request_rtt.HistoryReq"},
	{wire.MsgPing, "Ping", "lpm.request_rtt.Ping"},
	{wire.MsgRelay, "Relay", "lpm.request_rtt.Relay"},
	{wire.MsgSnapshotReq, "SnapshotReq", "lpm.request_rtt.SnapshotReq"},
	{wire.MsgStatsReq, "StatsReq", "lpm.request_rtt.StatsReq"},
	{wire.MsgStatusReq, "StatusReq", "lpm.request_rtt.StatusReq"},
	{wire.MsgWatch, "Watch", "lpm.request_rtt.Watch"},
}

// opRTTRegName maps a request type to its registry histogram name.
var opRTTRegName = func() map[wire.MsgType]string {
	m := make(map[wire.MsgType]string, len(opRTTTable))
	for _, e := range opRTTTable {
		m[e.t] = e.regName
	}
	return m
}()

// observeOpRTT records one request round trip under its op type: in the
// installation-wide registry (per-op SLO percentiles in MetricsReport)
// and in this LPM's own histogram (per-op percentiles in its status
// report).
func (l *LPM) observeOpRTT(t wire.MsgType, rtt time.Duration) {
	name, ok := opRTTRegName[t]
	if !ok {
		return
	}
	l.metrics.Histogram(name).Observe(rtt)
	h := l.rtts[t]
	if h == nil {
		h = metrics.NewHistogram()
		l.rtts[t] = h
	}
	h.Observe(rtt)
}

// BuildStatus fills r with this host's live status. The report's slices
// are reused across rebuilds, so a steady-state rebuild allocates
// nothing.
//
//ppmlint:hotpath pin=TestBuildStatusZeroAlloc
func (l *LPM) BuildStatus(r *status.Report) {
	now := l.sched.Now()
	r.Reset(l.Host(), now.Duration())
	r.ProcsLive, r.ProcsTotal, r.Load100 = l.kern.Status(l.user.Name)
	r.TimersPending = l.sched.Pending()
	if l.dmns != nil {
		r.DaemonUp, r.DaemonLPMs = l.dmns.Status()
	}
	r.NetUp, r.NetConns = l.net.Status(l.Host())
	circ := r.Circuits
	for _, sb := range l.siblings {
		// The circuit machine is the authoritative state; "breaking"
		// overlays it for the window between a severed link and its
		// detection, which the machine itself cannot see yet.
		st := l.circuits[sb.host].String()
		if sb.conn.Breaking() {
			st = "breaking"
		}
		circ = append(circ, status.CircuitStatus{
			Peer: sb.host, State: st, Age: now.Sub(sb.openedAt),
			Suspicion: sb.suspicion,
		})
	}
	detord.SortBy(circ, func(c status.CircuitStatus) string { return c.Peer })
	r.Circuits = circ
	r.PendingReqs = len(l.pending)
	r.RetryBackoffs = l.retryBackoffs
	r.ReplyCache = l.replies.Len()
	r.InflightOps = len(l.inflightOps)
	r.JournalLen = l.journal.Len()
	r.JournalDropped = l.journal.Dropped()
	ops := r.OpLatencies
	for _, e := range opRTTTable {
		h := l.rtts[e.t]
		if h == nil || h.Count() == 0 {
			continue
		}
		ops = append(ops, status.OpLatency{
			Op:    e.label,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	r.OpLatencies = ops
}

// StatusSweep gathers live status reports from the user's LPMs on the
// given hosts (this host included, served locally) and delivers the
// completed sweep: one report per reachable host plus the sorted list
// of hosts that could not be reached. Remote gathers ride the retry
// engine, so a transient loss is retransmitted before a host is
// declared unreachable; under a partition the sweep still completes
// with the reachable subset.
//
// The sweep is journaled at the origin only — one status.request naming
// the targets, then one status.report per target as it resolves — so
// retransmitted status RPCs never double-journal, and the audit can
// hold every sweep to exactly one report per target.
func (l *LPM) StatusSweep(hosts []string, cb func(status.Sweep, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(status.Sweep{}, ErrExited) })
		return
	}
	l.statusSeq++
	sweepID := fmt.Sprintf("%s#%d", l.Host(), l.statusSeq)
	targets := make([]string, 0, len(hosts))
	dup := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if h == "" || dup[h] {
			continue
		}
		dup[h] = true
		targets = append(targets, h)
	}
	detord.Sort(targets)
	l.metrics.Counter("lpm.status.sweeps").Inc()
	l.toolCall("status", func(ctx trace.Context, done func(func())) {
		l.journal.AppendCtx(journal.StatusRequest, l.Host(),
			fmt.Sprintf("user=%s sweep=%s hosts=%s",
				l.user.Name, sweepID, strings.Join(targets, ",")),
			ctx.Trace, ctx.Span)
		sw := &status.Sweep{Origin: l.Host(), User: l.user.Name}
		record := func(host string, ok bool) {
			l.journal.AppendCtx(journal.StatusReport, l.Host(),
				fmt.Sprintf("user=%s sweep=%s host=%s ok=%t",
					l.user.Name, sweepID, host, ok),
				ctx.Trace, ctx.Span)
		}
		issuing := true
		outstanding := 0
		finish := func() {
			if issuing || outstanding != 0 {
				return
			}
			sw.At = l.sched.Now().Duration()
			sw.Sort()
			done(func() { cb(*sw, nil) })
		}
		for _, host := range targets {
			if host == l.Host() {
				var r status.Report
				l.BuildStatus(&r)
				sw.Reports = append(sw.Reports, r)
				record(host, true)
				continue
			}
			outstanding++
			host := host
			body := wire.StatusReq{User: l.user.Name, Sweep: sweepID}.Encode()
			l.remoteCall(ctx, host, wire.MsgStatusReq, body, func(env wire.Envelope, err error) {
				outstanding--
				if err == nil {
					if resp, derr := wire.DecodeStatusResp(env.Body); derr != nil {
						err = derr
					} else if !resp.OK {
						err = fmt.Errorf("%w: %s", ErrRemote, resp.Reason)
					} else if rep, rerr := status.Decode(resp.Report); rerr != nil {
						err = rerr
					} else {
						sw.Reports = append(sw.Reports, rep)
					}
				}
				if err != nil {
					l.metrics.Counter("lpm.status.unreachable").Inc()
					sw.Unreachable = append(sw.Unreachable, host)
				}
				record(host, err == nil)
				finish()
			})
		}
		issuing = false
		finish()
	})
}
