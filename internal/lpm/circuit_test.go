package lpm

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/journal"
	"ppm/internal/proc"
	"ppm/internal/simnet"
	"ppm/internal/trace"
)

// circuitWorld builds a journaled two-host world; opts stretch
// BreakDetect in the detector tests so the transport's fixed timeout
// cannot be what closes the circuit.
func circuitWorld(t *testing.T, cfg Config, breakDetect time.Duration) (*world, *journal.Journal) {
	t.Helper()
	w := newWorldNet(t, cfg, simnet.Options{BreakDetect: breakDetect}, []string{"vax1", "vax2"})
	j := journal.New(func() time.Duration { return w.sched.Now().Duration() })
	w.net.SetJournal(j)
	return w, j
}

func (w *world) ensure(l *LPM, host string) *sibling {
	w.t.Helper()
	var sb *sibling
	var serr error
	done := false
	l.ensureSibling(trace.Context{}, host, func(s *sibling, err error) {
		sb, serr, done = s, err, true
	})
	w.until(func() bool { return done })
	if serr != nil {
		w.t.Fatalf("ensureSibling(%s): %v", host, serr)
	}
	return sb
}

func auditClean(t *testing.T, j *journal.Journal) {
	t.Helper()
	if vs := journal.Audit(j); len(vs) != 0 {
		t.Fatalf("journal audit:\n%s", journal.AuditReport(vs))
	}
}

// transitions extracts (host, to, reason) tuples of circuit.transition
// records for one observer host.
func transitions(j *journal.Journal, host string) []string {
	var out []string
	for _, r := range j.Records() {
		if r.Kind == journal.CircuitTransition && r.Host == host {
			out = append(out, journal.Field(r.Detail, "to")+"/"+journal.Field(r.Detail, "reason"))
		}
	}
	return out
}

// Simultaneous cross-dial: both hosts dial each other in the same
// tick. The deterministic tie-break (lower host name's outbound wins)
// must leave exactly one established circuit, agreed on by both ends.
func TestCrossDialTieBreakSingleCircuit(t *testing.T) {
	w, j := circuitWorld(t, Config{}, 0)
	u := w.user("felipe", "vax1", "vax2")
	l1 := w.attach("vax1", u)
	l2 := w.attach("vax2", u)

	var sb1, sb2 *sibling
	d1, d2 := false, false
	l1.ensureSibling(trace.Context{}, "vax2", func(s *sibling, err error) {
		if err != nil {
			t.Errorf("vax1 dial: %v", err)
		}
		sb1, d1 = s, true
	})
	l2.ensureSibling(trace.Context{}, "vax1", func(s *sibling, err error) {
		if err != nil {
			t.Errorf("vax2 dial: %v", err)
		}
		sb2, d2 = s, true
	})
	w.until(func() bool { return d1 && d2 })
	if sb1 == nil || sb2 == nil {
		t.Fatal("a dial settled without a sibling")
	}
	// Both ends must have converged on the same single circuit: the
	// chan identity renders identically from either side.
	if k1, k2 := l1.chanKey(sb1.conn), l2.chanKey(sb2.conn); k1 != k2 {
		t.Fatalf("split brain: vax1 uses %s, vax2 uses %s", k1, k2)
	}
	if l1.circuitStateOf("vax2") != circuitEstablished ||
		l2.circuitStateOf("vax1") != circuitEstablished {
		t.Fatalf("states: vax1=%v vax2=%v",
			l1.circuitStateOf("vax2"), l2.circuitStateOf("vax1"))
	}
	// Exactly one distinct channel ever reached Established.
	est := map[string]bool{}
	for _, r := range j.Records() {
		if r.Kind == journal.CircuitTransition &&
			journal.Field(r.Detail, "to") == "established" {
			est[journal.Field(r.Detail, "chan")] = true
		}
	}
	if len(est) != 1 {
		t.Fatalf("established channels = %v, want exactly one", est)
	}
	// The circuit works: a remote create rides the surviving end.
	w.create(l1, "vax2", "job1", proc.GPID{})
	// Nothing later (the loser's safety timer, stray closes) may
	// disturb the settled circuit.
	w.run(30 * time.Second)
	if l1.circuitStateOf("vax2") != circuitEstablished {
		t.Fatalf("circuit decayed to %v", l1.circuitStateOf("vax2"))
	}
	auditClean(t, j)
}

// Silence with the circuit still nominally open (severed replies, huge
// BreakDetect) must drive the detector Established -> Suspect ->
// Closed long before the transport's fixed timeout would act.
func TestDetectorSuspectsThenClosesOnSilence(t *testing.T) {
	w, j := circuitWorld(t, Config{Linktest: 200 * time.Millisecond}, 10*time.Minute)
	u := w.user("felipe", "vax1", "vax2")
	l1 := w.attach("vax1", u)
	w.ensure(l1, "vax2")
	// Warm the estimator: steady heartbeat echoes for a while.
	w.run(3 * time.Second)
	if l1.circuitStateOf("vax2") != circuitEstablished {
		t.Fatalf("warmup state = %v", l1.circuitStateOf("vax2"))
	}
	// Sever the network. The conns survive (BreakDetect = 10 min), so
	// only the accrual detector can notice within the test horizon.
	if err := w.net.Partition([]string{"vax1"}, []string{"vax2"}); err != nil {
		t.Fatal(err)
	}
	w.run(10 * time.Second)
	if got := l1.circuitStateOf("vax2"); got != circuitClosed {
		t.Fatalf("state after 10s of silence = %v, want closed", got)
	}
	// Both detectors race; whichever fires first closes with reason
	// "detector" and its clean close resolves the other end. Either
	// way a suspect step and a detector-reasoned close must exist.
	trs := append(transitions(j, "vax1"), transitions(j, "vax2")...)
	sawSuspect, sawDetectorClose := false, false
	for _, tr := range trs {
		if strings.HasPrefix(tr, "suspect/") {
			sawSuspect = true
		}
		if tr == "closed/detector" {
			sawDetectorClose = true
		}
	}
	if !sawSuspect || !sawDetectorClose {
		t.Fatalf("transitions %v: want a suspect step and a detector-reasoned close", trs)
	}
	auditClean(t, j)
}

// A transient one-way outage (replies lost, requests delivered) must
// raise Suspect, and resumed traffic must resolve it back to
// Established — no close, no flap of the circuit itself.
func TestDetectorSuspectRecoversOnTraffic(t *testing.T) {
	w, j := circuitWorld(t, Config{Linktest: 200 * time.Millisecond}, 10*time.Minute)
	u := w.user("felipe", "vax1", "vax2")
	l1 := w.attach("vax1", u)
	w.ensure(l1, "vax2")
	w.run(3 * time.Second)

	// Half-broken gateway: everything vax2 -> vax1 vanishes.
	w.net.InjectLossDir("vax2", "vax1", 1)
	w.run(700 * time.Millisecond)
	if got := l1.circuitStateOf("vax2"); got != circuitSuspect {
		t.Fatalf("state under one-way loss = %v, want suspect", got)
	}
	// Heal the direction: the next echo is proof of life.
	w.net.InjectLossDir("vax2", "vax1", 0)
	w.run(2 * time.Second)
	if got := l1.circuitStateOf("vax2"); got != circuitEstablished {
		t.Fatalf("state after heal = %v, want established", got)
	}
	trs := transitions(j, "vax1")
	sawRecover := false
	for _, tr := range trs {
		if tr == "established/traffic" {
			sawRecover = true
		}
		if strings.HasPrefix(tr, "closed/") {
			t.Fatalf("circuit closed during a recoverable one-way outage: %v", trs)
		}
	}
	if !sawRecover {
		t.Fatalf("transitions %v: want suspect resolved by traffic", trs)
	}
	auditClean(t, j)
}

// After a detector-initiated close the next use re-dials on demand:
// Closed -> Dialing -> ... -> Established, all legal, audit clean.
func TestDetectorCloseThenRedialOnDemand(t *testing.T) {
	w, j := circuitWorld(t, Config{Linktest: 200 * time.Millisecond}, 10*time.Minute)
	u := w.user("felipe", "vax1", "vax2")
	l1 := w.attach("vax1", u)
	w.ensure(l1, "vax2")
	w.run(2 * time.Second)
	if err := w.net.Partition([]string{"vax1"}, []string{"vax2"}); err != nil {
		t.Fatal(err)
	}
	w.run(10 * time.Second)
	if l1.circuitStateOf("vax2") != circuitClosed {
		t.Fatalf("setup: state = %v, want closed", l1.circuitStateOf("vax2"))
	}
	w.net.Heal()
	w.ensure(l1, "vax2")
	if l1.circuitStateOf("vax2") != circuitEstablished {
		t.Fatalf("redial state = %v", l1.circuitStateOf("vax2"))
	}
	auditClean(t, j)
}
