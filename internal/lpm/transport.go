package lpm

import (
	"ppm/internal/simnet"
	"ppm/internal/trace"
)

// Conn is the circuit endpoint the sibling layer runs over: the exact
// surface of simnet.Conn the LPM uses. Cutting the seam here — below
// the circuit state machine, above the simulated network — is what
// lets a real-TCP backend slot in later: the state machine, the
// failure detector and the retry engine are all written against this
// interface, not against simnet.
type Conn interface {
	LocalAddr() simnet.Addr
	RemoteAddr() simnet.Addr
	Open() bool
	Breaking() bool
	SetHandler(fn func(payload []byte))
	SetCloseHandler(fn func(err error))
	SendCtx(payload []byte, ctx trace.Context) error
	SendReplyCtx(payload []byte, ctx trace.Context) error
	Close()
}

// Transport is the connection factory under the circuit layer:
// listen/accept on one side, dial on the other. Implementations must
// deliver all callbacks on the simulation scheduler.
type Transport interface {
	Listen(host string, port uint16, accept func(Conn)) error
	CloseListen(host string, port uint16)
	Dial(fromHost string, to simnet.Addr, ctx trace.Context, connected func(Conn, error))
}

// Compile-time checks: simnet is the (currently sole) transport
// backend, and its Conn satisfies the circuit-layer surface.
var (
	_ Conn      = (*simnet.Conn)(nil)
	_ Transport = simnetTransport{}
)

// simnetTransport adapts *simnet.Network to the Transport seam. The
// adapter only converts callback signatures; semantics are simnet's.
type simnetTransport struct {
	net *simnet.Network
}

func (t simnetTransport) Listen(host string, port uint16, accept func(Conn)) error {
	return t.net.Listen(host, port, func(c *simnet.Conn) { accept(c) })
}

func (t simnetTransport) CloseListen(host string, port uint16) {
	t.net.CloseListen(host, port)
}

func (t simnetTransport) Dial(fromHost string, to simnet.Addr, ctx trace.Context, connected func(Conn, error)) {
	t.net.DialCtx(fromHost, to, ctx, func(c *simnet.Conn, err error) {
		if err != nil {
			connected(nil, err)
			return
		}
		connected(c, err)
	})
}
