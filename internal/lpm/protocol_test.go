package lpm

import (
	"testing"
	"time"

	"ppm/internal/auth"
	"ppm/internal/proc"
	"ppm/internal/simnet"
	"ppm/internal/wire"
)

// rawSibling establishes a legitimately authenticated circuit to the
// LPM on targetHost, originating from fromHost, and returns the raw
// conn plus a collector of reply envelopes — a harness for feeding the
// dispatcher arbitrary traffic.
func rawSibling(t *testing.T, w *world, u *auth.User, fromHost string,
	target *LPM) (*simnet.Conn, *[]wire.Envelope) {
	t.Helper()
	var conn *simnet.Conn
	replies := &[]wire.Envelope{}
	authed := false
	w.net.Dial(fromHost, target.Accept(), func(c *simnet.Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn = c
		c.SetHandler(func(b []byte) {
			env, derr := wire.DecodeEnvelope(b)
			if derr != nil {
				return
			}
			if env.Type == wire.MsgHelloResp {
				authed = true
				return
			}
			*replies = append(*replies, env)
		})
		hello := wire.Hello{
			User:     u.Name,
			FromHost: fromHost,
			Token:    auth.MintToken(u, "sibling"),
			Stamp:    wire.NewStamp(u.Key(), fromHost, w.sched.Now().Duration(), 99),
		}
		_ = c.Send(wire.Envelope{Type: wire.MsgHello, Body: hello.Encode()}.Encode())
	})
	w.until(func() bool { return authed })
	return conn, replies
}

func protoWorld(t *testing.T) (*world, *auth.User, *LPM) {
	t.Helper()
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	return w, u, l
}

func TestProtocolGarbagePayloadsAnsweredNotCrashed(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)

	// Undecodable bodies for each request type: the dispatcher answers
	// with a failure instead of dying.
	for _, mt := range []wire.MsgType{
		wire.MsgCreateProc, wire.MsgControl, wire.MsgSnapshotReq,
		wire.MsgStatsReq, wire.MsgFDReq, wire.MsgHistoryReq,
		wire.MsgBroadcast, wire.MsgRelay, wire.MsgWatch,
	} {
		_ = conn.Send(wire.Envelope{Type: mt, ReqID: uint64(mt), Body: []byte{0xff}}.Encode())
	}
	w.run(5 * time.Second)
	if len(*replies) != 9 {
		t.Fatalf("replies = %d, want one per garbage request", len(*replies))
	}
	// And the LPM still works.
	id := w.create(l, "vax1", "alive", proc.GPID{})
	if id.PID == 0 {
		t.Fatal("LPM broken after garbage")
	}
}

func TestProtocolWrongUserRequestRejected(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	victim := w.create(l, "vax1", "victim", proc.GPID{})

	// The circuit is felipe's, but the request claims another user.
	req := wire.Control{User: "mallory", Target: victim, Op: wire.OpKill}
	_ = conn.Send(wire.Envelope{Type: wire.MsgControl, ReqID: 7, Body: req.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 {
		t.Fatalf("replies = %d", len(*replies))
	}
	resp, err := wire.DecodeControlResp((*replies)[0].Body)
	if err != nil || resp.OK {
		t.Fatalf("wrong-user control accepted: %+v err=%v", resp, err)
	}
	p, _ := w.kerns["vax1"].Lookup(victim.PID)
	if p.State != proc.Running {
		t.Fatal("victim was harmed")
	}
}

func TestProtocolUnknownTypeGetsError(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	_ = conn.Send(wire.Envelope{Type: wire.MsgType(999), ReqID: 3, Body: nil}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 || (*replies)[0].Type != wire.MsgError {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestProtocolUndecodableFrameIgnored(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	_ = conn.Send([]byte{0x01}) // not even an envelope
	w.run(2 * time.Second)
	if len(*replies) != 0 {
		t.Fatalf("garbage frame produced replies: %+v", replies)
	}
	// Circuit still alive afterwards.
	_ = conn.Send(wire.Envelope{Type: wire.MsgPing, ReqID: 9,
		Body: wire.Ping{FromHost: "vax2", User: u.Name}.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 || (*replies)[0].Type != wire.MsgPong {
		t.Fatalf("ping after garbage failed: %+v", replies)
	}
}

func TestProtocolForgedBroadcastStampRejected(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	inner := wire.Envelope{Type: wire.MsgSnapshotReq,
		Body: wire.SnapshotReq{User: u.Name}.Encode()}
	bc := wire.Broadcast{
		Stamp: wire.NewStamp([]byte("not-the-user-key"), "vax2", 0, 1),
		Seq:   1,
		Route: []string{"vax2"},
		Inner: inner.Encode(),
	}
	_ = conn.Send(wire.Envelope{Type: wire.MsgBroadcast, ReqID: 5, Body: bc.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 {
		t.Fatalf("replies = %d", len(*replies))
	}
	resp, err := wire.DecodeBroadcastResp((*replies)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wire.DecodeFloodResult(resp.Inner)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("forged broadcast stamp accepted")
	}
}

func TestProtocolRelayPathExhausted(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	inner := wire.Envelope{Type: wire.MsgPing,
		Body: wire.Ping{FromHost: "vax2", User: u.Name}.Encode()}
	rel := wire.Relay{User: u.Name, Dest: "elsewhere", Path: nil, Inner: inner.Encode()}
	_ = conn.Send(wire.Envelope{Type: wire.MsgRelay, ReqID: 4, Body: rel.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 {
		t.Fatalf("replies = %d", len(*replies))
	}
	resp, err := wire.DecodeRelayResp((*replies)[0].Body)
	if err != nil || resp.OK {
		t.Fatalf("exhausted relay should fail: %+v err=%v", resp, err)
	}
}

func TestProtocolRelayNestedRelayRefused(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	nested := wire.Relay{User: u.Name, Dest: "vax1", Inner: []byte("x")}
	innerEnv := wire.Envelope{Type: wire.MsgRelay, Body: nested.Encode()}
	rel := wire.Relay{User: u.Name, Dest: "vax1", Inner: innerEnv.Encode()}
	_ = conn.Send(wire.Envelope{Type: wire.MsgRelay, ReqID: 4, Body: rel.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 1 {
		t.Fatalf("replies = %d", len(*replies))
	}
	resp, err := wire.DecodeRelayResp((*replies)[0].Body)
	if err != nil || resp.OK {
		t.Fatalf("nested relay should be refused: %+v err=%v", resp, err)
	}
}

func TestProtocolDuplicateHelloReplacesCircuit(t *testing.T) {
	w, u, l := protoWorld(t)
	conn1, _ := rawSibling(t, w, u, "vax2", l)
	_ = conn1
	// A second authenticated circuit from the same host displaces the
	// first in the sibling table (the LPM keeps the newest).
	conn2, replies2 := rawSibling(t, w, u, "vax2", l)
	if len(l.SiblingHosts()) != 1 {
		t.Fatalf("siblings = %v", l.SiblingHosts())
	}
	_ = conn2.Send(wire.Envelope{Type: wire.MsgPing, ReqID: 1,
		Body: wire.Ping{FromHost: "vax2", User: u.Name}.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies2) != 1 {
		t.Fatal("newest circuit not serving")
	}
}

func TestProtocolCCSUpdateOneWay(t *testing.T) {
	w, u, l := protoWorld(t)
	conn, replies := rawSibling(t, w, u, "vax2", l)
	upd := wire.CCSUpdate{CCSHost: "vax9"}
	_ = conn.Send(wire.Envelope{Type: wire.MsgCCSUpdate, ReqID: 8, Body: upd.Encode()}.Encode())
	w.run(2 * time.Second)
	if len(*replies) != 0 {
		t.Fatalf("CCSUpdate should be one-way, got %+v", replies)
	}
	if l.Recovery().CCS() != "vax9" {
		t.Fatalf("ccs = %q", l.Recovery().CCS())
	}
}
