package lpm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/proc"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// The sibling-RPC reliability layer: retry/redial behavior, the
// at-most-once dedup filter, and the dead-circuit fast-fail path.

// installJournal wires a flight recorder into the world's network so
// LPMs created afterwards journal into it.
func installJournal(w *world) *journal.Journal {
	j := journal.New(func() time.Duration { return w.sched.Now().Duration() })
	w.net.SetJournal(j)
	return j
}

// installMetrics wires a registry into the world's network; newWorld
// leaves it nil (metrics off) like a bare simnet.
func installMetrics(w *world) *metrics.Registry {
	reg := metrics.New(func() time.Duration { return w.sched.Now().Duration() })
	w.net.SetMetrics(reg)
	return reg
}

func countKind(j *journal.Journal, k journal.Kind) int {
	return len(j.Select(journal.Filter{Kinds: []journal.Kind{k}}))
}

// TestDeadCircuitFailsFast is the regression test for the silent-drop
// bug: a request issued against a circuit that closed before the
// pending entry was registered used to park its caller for the full
// RequestTimeout (the close handler had already drained l.pending).
// It must fail with ErrNoSibling as soon as the send path notices the
// dead circuit.
func TestDeadCircuitFailsFast(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	reg := installMetrics(w)
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	w.create(l, "vax2", "warm", proc.GPID{})
	w.run(time.Second)

	sb := l.siblings["vax2"]
	if sb == nil {
		t.Fatal("no warm circuit")
	}
	sb.conn.Close()
	w.run(10 * time.Millisecond) // close handlers run; l.pending drains

	var gotErr error
	done := false
	start := w.sched.Now()
	body := wire.Control{User: "felipe", Op: wire.OpStop}.Encode()
	l.sendRequest(trace.Context{}, sb, wire.MsgControl, body, 0,
		func(_ wire.Envelope, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })

	if !errors.Is(gotErr, ErrNoSibling) {
		t.Fatalf("err = %v, want ErrNoSibling", gotErr)
	}
	// Fail-fast, not a timeout: the default RequestTimeout is 10s.
	if elapsed := msBetween(start, w.sched.Now()); elapsed > 1000 {
		t.Fatalf("dead-circuit request took %.0f ms — parked for the timeout", elapsed)
	}
	if reg.Counter("lpm.request.dead_circuit").Value() == 0 {
		t.Fatal("dead_circuit counter not incremented")
	}
}

// TestDuplicateDeliveryRepliesFromCache: a retransmission (same OpID,
// new ReqID) of an already-executed non-idempotent request is answered
// from the reply cache — one execution, two identical answers.
func TestDuplicateDeliveryRepliesFromCache(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	j := installJournal(w)
	reg := installMetrics(w)
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	w.create(l, "vax2", "warm", proc.GPID{})
	w.run(time.Second)

	sb := l.siblings["vax2"]
	body := wire.CreateProc{User: "felipe", Name: "dup-job"}.Encode()
	var acks []wire.CreateAck
	sendOnce := func() {
		l.sendRequest(trace.Context{}, sb, wire.MsgCreateProc, body, 777,
			func(env wire.Envelope, err error) {
				if err != nil {
					t.Fatal(err)
				}
				a, derr := wire.DecodeCreateAck(env.Body)
				if derr != nil {
					t.Fatal(derr)
				}
				acks = append(acks, a)
			})
	}
	sendOnce()
	w.until(func() bool { return len(acks) == 1 })
	sendOnce() // the "retransmission": same op id, fresh ReqID
	w.until(func() bool { return len(acks) == 2 })

	if !acks[0].OK || !acks[1].OK {
		t.Fatalf("acks = %+v", acks)
	}
	if acks[0].ID != acks[1].ID {
		t.Fatalf("replayed ack names a different process: %v vs %v", acks[0].ID, acks[1].ID)
	}
	// Exactly one dup-job forked on vax2.
	count := 0
	for _, p := range w.kerns["vax2"].ProcessesOf("felipe") {
		if p.Name == "dup-job" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("dup-job executed %d times, want 1", count)
	}
	if got := reg.Counter("lpm.dedup.replays").Value(); got != 1 {
		t.Fatalf("lpm.dedup.replays = %d, want 1", got)
	}
	// The warm create executed under its own op id; count only this
	// operation's records. The receiver scopes the key to the sender's
	// incarnation (its dispatcher pid).
	opKey := fmt.Sprintf("op=%s", wire.OpKey("vax1", l.incarnation(), 777))
	countOp := func(k journal.Kind) int {
		n := 0
		for _, r := range j.Select(journal.Filter{Kinds: []journal.Kind{k}}) {
			if strings.Contains(r.Detail, opKey) {
				n++
			}
		}
		return n
	}
	if n := countOp(journal.LPMOpExec); n != 1 {
		t.Fatalf("journaled executions = %d, want 1", n)
	}
	if n := countOp(journal.LPMOpReplay); n != 1 {
		t.Fatalf("journaled replays = %d, want 1", n)
	}
}

// TestReadOnlyRequestsBypassDedup: idempotent requests carry op ids but
// may re-execute freely — no cache entries, no replay records.
func TestReadOnlyRequestsBypassDedup(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	j := installJournal(w)
	reg := installMetrics(w)
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	id := w.create(l, "vax2", "job", proc.GPID{})
	w.run(time.Second)

	for i := 0; i < 2; i++ {
		done := false
		l.StatsOf(id, func(_ proc.Info, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = true
		})
		w.until(func() bool { return done })
	}
	if n := countKind(j, journal.LPMOpReplay); n != 0 {
		t.Fatalf("read-only request replayed from cache %d times", n)
	}
	if got := reg.Counter("lpm.dedup.replays").Value(); got != 0 {
		t.Fatalf("lpm.dedup.replays = %d, want 0", got)
	}
}

// TestRetryRedialsAfterHeal: a control RPC issued into a partition
// fails its first attempt, backs off, and — once the partition heals —
// redials the sibling via its pmd and succeeds. The user-visible call
// never errors.
func TestRetryRedialsAfterHeal(t *testing.T) {
	cfg := Config{RequestTimeout: 300 * time.Millisecond}
	cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseBackoff: 2 * time.Second}
	w := newWorld(t, cfg, []string{"a", "b"})
	j := installJournal(w)
	reg := installMetrics(w)
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	id := w.create(la, "b", "job", proc.GPID{})
	w.run(time.Second)

	if err := w.net.Partition([]string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	var resp wire.ControlResp
	var gotErr error
	done := false
	la.Control(id, wire.OpStop, 0, func(r wire.ControlResp, err error) { resp, gotErr, done = r, err, true })
	// First attempt times out at 300ms; the retry waits out its 2s
	// backoff. Heal inside that window.
	w.run(time.Second)
	if done {
		t.Fatalf("request settled while partitioned: %v %+v", gotErr, resp)
	}
	w.net.Heal()
	w.until(func() bool { return done })

	if gotErr != nil || !resp.OK {
		t.Fatalf("retried control failed: %v %+v", gotErr, resp)
	}
	if resp.State != proc.Stopped {
		t.Fatalf("state = %v", resp.State)
	}
	if reg.Counter("lpm.request.retries").Value() == 0 {
		t.Fatal("no retries recorded")
	}
	if reg.Counter("lpm.request.redials").Value() == 0 {
		t.Fatal("no redials recorded")
	}
	if countKind(j, journal.LPMRetry) == 0 || countKind(j, journal.LPMRedial) == 0 {
		t.Fatal("retry/redial not journaled")
	}
}

// TestRetryGivesUpAfterMaxAttempts: a partition that never heals
// exhausts the attempt budget and surfaces a retryable error to the
// caller instead of spinning forever.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	cfg := Config{RequestTimeout: 300 * time.Millisecond}
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 500 * time.Millisecond}
	w := newWorld(t, cfg, []string{"a", "b"})
	reg := installMetrics(w)
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	id := w.create(la, "b", "job", proc.GPID{})
	w.run(time.Second)

	if err := w.net.Partition([]string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	done := false
	la.Control(id, wire.OpStop, 0, func(_ wire.ControlResp, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })

	if !errors.Is(gotErr, ErrTimeout) && !errors.Is(gotErr, ErrNoSibling) {
		t.Fatalf("err = %v", gotErr)
	}
	if got := reg.Counter("lpm.request.retries").Value(); got != 1 {
		t.Fatalf("retries = %d, want exactly MaxAttempts-1 = 1", got)
	}
}

// TestRetryDisabled: MaxAttempts < 0 turns the engine off — one
// attempt, no retries, the old fail-fast behavior.
func TestRetryDisabled(t *testing.T) {
	cfg := Config{RequestTimeout: 300 * time.Millisecond}
	cfg.Retry = RetryPolicy{MaxAttempts: -1}
	w := newWorld(t, cfg, []string{"a", "b"})
	reg := installMetrics(w)
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	id := w.create(la, "b", "job", proc.GPID{})
	w.run(time.Second)

	if err := w.net.Partition([]string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	done := false
	la.Control(id, wire.OpStop, 0, func(_ wire.ControlResp, err error) { done = err != nil })
	w.until(func() bool { return done })
	if got := reg.Counter("lpm.request.retries").Value(); got != 0 {
		t.Fatalf("retries = %d with retries disabled", got)
	}
}

// TestFirstTimeoutKeepsSharedCircuit: one timed-out attempt must not
// tear down a circuit that other pending requests share — a first
// timeout may be nothing worse than a lost reply. The retry engine
// closes the circuit only once repeated timeouts implicate the
// transport; here the partition detector, not the retry path, is what
// eventually severs it.
func TestFirstTimeoutKeepsSharedCircuit(t *testing.T) {
	cfg := Config{RequestTimeout: 300 * time.Millisecond}
	cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseBackoff: 5 * time.Second}
	w := newWorld(t, cfg, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	id := w.create(la, "b", "job", proc.GPID{})
	w.run(time.Second)

	sb := la.siblings["b"]
	if sb == nil || !sb.conn.Open() {
		t.Fatal("no warm circuit")
	}
	if err := w.net.Partition([]string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	done := false
	la.Control(id, wire.OpStop, 0, func(_ wire.ControlResp, err error) { gotErr, done = err, true })
	// The first attempt times out at 300ms — before the partition
	// detector's BreakDetect (1s) closes the circuit. The old policy
	// closed the shared circuit right here, failing every other request
	// riding it.
	w.run(600 * time.Millisecond)
	if done {
		t.Fatalf("request settled before any retry: %v", gotErr)
	}
	if !sb.conn.Open() {
		t.Fatal("first timeout tore down the shared sibling circuit")
	}
	w.net.Heal()
	w.until(func() bool { return done })
	if gotErr != nil {
		t.Fatalf("retried control failed: %v", gotErr)
	}
}

// TestInflightMarkersExpireWithWindow: an execution path that never
// replies leaks its in-flight marker only until the origin's retry
// loop has certainly given up; inside that window the marker keeps
// swallowing duplicates.
func TestInflightMarkersExpireWithWindow(t *testing.T) {
	cfg := Config{RequestTimeout: 500 * time.Millisecond, FloodTimeout: 500 * time.Millisecond}
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second, Cap: time.Second}
	w := newWorld(t, cfg, []string{"vax1"})
	u := w.user("felipe", "vax1")
	l := w.attach("vax1", u)
	w.run(time.Second)

	now := w.sched.Now().Duration()
	key := wire.OpKey("vax9", 1, 1)
	l.inflightOps[key] = now
	l.inflightQ = append(l.inflightQ, inflightEntry{key: key, at: now})

	l.evictInflight(now + l.opWindow) // at the window edge a retransmit can still arrive
	if _, ok := l.inflightOps[key]; !ok {
		t.Fatal("marker evicted while a retransmit could still arrive")
	}
	l.evictInflight(now + l.opWindow + 1)
	if _, ok := l.inflightOps[key]; ok {
		t.Fatal("orphaned in-flight marker survived its retransmit window")
	}
	if l.inflightHead != 0 || len(l.inflightQ) != 0 {
		t.Fatalf("eviction queue not compacted: head=%d len=%d", l.inflightHead, len(l.inflightQ))
	}
}

// TestBackoffSchedule: deterministic capped exponential growth.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 200 * time.Millisecond, Cap: time.Second}.withDefaults()
	want := []struct {
		attempt int
		d       time.Duration
	}{
		{2, 200 * time.Millisecond}, // first retry
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second}, // capped
		{9, time.Second},
	}
	for _, c := range want {
		if got := p.backoff(c.attempt); got != c.d {
			t.Fatalf("backoff(%d) = %v, want %v", c.attempt, got, c.d)
		}
	}
}
