package lpm

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/auth"
	"ppm/internal/daemon"
	"ppm/internal/detord"
	"ppm/internal/history"
	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/proc"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// The paper's Figure 4 separates the LPM's communication endpoints into
// the kernel socket, the accept socket, and "possibly multiple sockets
// for communication with sibling LPMs and local tools". The in-process
// methods on *LPM model the subroutine library ("a library of
// subroutines handles most interactions with the PPM"); ToolClient is
// the other access path: a real local circuit to the accept socket
// speaking the wire protocol, the way independently written tools
// connect.

// ErrToolClosed reports use of a closed tool connection.
var ErrToolClosed = errors.New("lpm: tool connection closed")

// ToolClient is a tool-side handle on a circuit to the local LPM.
type ToolClient struct {
	user    *auth.User
	host    string
	sched   *sim.Scheduler
	metrics *metrics.Registry
	journal *journal.Journal
	conn    *simnet.Conn
	reqSeq  uint64
	pending map[uint64]func(wire.Envelope, error)
	closed  bool
}

// ConnectTool locates the user's LPM on host through the pmd (creating
// it on demand), dials its accept socket, authenticates, and hands the
// ready client to cb. Tools connect from the same host; the LPM
// recognizes the local origin and registers a tool socket rather than
// a sibling circuit.
func ConnectTool(net *simnet.Network, user *auth.User, host string,
	cb func(*ToolClient, error)) {
	daemon.QueryLPM(net, host, host, user, func(resp wire.LPMQueryResp, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if !resp.OK {
			cb(nil, fmt.Errorf("lpm: tool connect: %s", resp.Reason))
			return
		}
		to := simnet.Addr{Host: resp.AcceptHost, Port: resp.AcceptPort}
		net.Dial(host, to, func(conn *simnet.Conn, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			t := &ToolClient{
				user:    user,
				host:    host,
				sched:   net.Scheduler(),
				metrics: net.Metrics(),
				journal: net.Journal(),
				conn:    conn,
				pending: make(map[uint64]func(wire.Envelope, error)),
			}
			t.hello(cb)
		})
	})
}

func (t *ToolClient) hello(cb func(*ToolClient, error)) {
	answered := false
	t.conn.SetHandler(func(b []byte) {
		if answered {
			t.onMsg(b)
			return
		}
		answered = true
		env, err := wire.DecodeEnvelopeLogged(b, t.journal, t.host)
		if err != nil || env.Type != wire.MsgHelloResp {
			t.conn.Close()
			cb(nil, errors.New("lpm: tool hello: bad reply"))
			return
		}
		resp, err := wire.DecodeHelloResp(env.Body)
		if err != nil || !resp.OK {
			t.conn.Close()
			cb(nil, fmt.Errorf("lpm: tool hello rejected: %s", resp.Reason))
			return
		}
		t.conn.SetHandler(t.onMsg)
		cb(t, nil)
	})
	t.conn.SetCloseHandler(func(err error) { t.onClosed(err) })
	hello := wire.Hello{
		User:     t.user.Name,
		FromHost: t.host,
		Token:    auth.MintToken(t.user, "sibling"),
		Stamp:    wire.NewStamp(t.user.Key(), t.host, t.sched.Now().Duration(), 1),
	}
	//ppmlint:allow errdrop a lost Hello surfaces as onClosed; the tool reports the dead socket there
	_ = t.sendFramed(wire.Envelope{Type: wire.MsgHello, Body: hello.Encode()})
}

func (t *ToolClient) onClosed(err error) {
	t.closed = true
	if err == nil {
		err = ErrToolClosed
	}
	ids := detord.Keys(t.pending)
	for _, id := range ids {
		cb := t.pending[id]
		delete(t.pending, id)
		cb(wire.Envelope{}, err)
	}
}

func (t *ToolClient) onMsg(b []byte) {
	env, err := wire.DecodeEnvelopeLogged(b, t.journal, t.host)
	if err != nil {
		return
	}
	cb, ok := t.pending[env.ReqID]
	if !ok {
		return
	}
	delete(t.pending, env.ReqID)
	cb(env, nil)
}

// Close shuts the tool connection down.
func (t *ToolClient) Close() {
	if !t.closed {
		t.closed = true
		t.conn.Close()
	}
}

// sendFramed encodes env through a pooled encoder and sends it; the
// network copies the frame on send, so the encoder is released
// immediately and the tool request path allocates no per-message frame.
func (t *ToolClient) sendFramed(env wire.Envelope) error {
	enc := wire.GetEncoder()
	err := t.conn.Send(env.EncodeLoggedTo(enc, t.metrics, t.journal, t.host))
	wire.PutEncoder(enc)
	return err
}

// call sends one request envelope and routes the response to cb.
func (t *ToolClient) call(mt wire.MsgType, body []byte, cb func(wire.Envelope, error)) {
	if t.closed {
		t.sched.Defer(func() { cb(wire.Envelope{}, ErrToolClosed) })
		return
	}
	t.reqSeq++
	id := t.reqSeq
	t.pending[id] = cb
	//ppmlint:allow errdrop a lost request fails the pending callback via onClosed, not this return
	_ = t.sendFramed(wire.Envelope{Type: mt, ReqID: id, Body: body})
}

// Control performs a process-control operation through the wire
// protocol.
func (t *ToolClient) Control(target proc.GPID, op wire.ControlOp, sig proc.Signal,
	cb func(wire.ControlResp, error)) {
	req := wire.Control{User: t.user.Name, Target: target, Op: op, Signal: sig}
	t.call(wire.MsgControl, req.Encode(), func(env wire.Envelope, err error) {
		if err != nil {
			cb(wire.ControlResp{}, err)
			return
		}
		resp, derr := wire.DecodeControlResp(env.Body)
		cb(resp, derr)
	})
}

// Create starts an adopted process on the LPM's host.
func (t *ToolClient) Create(name string, parent proc.GPID, cb func(proc.GPID, error)) {
	req := wire.CreateProc{User: t.user.Name, Name: name, Parent: parent}
	t.call(wire.MsgCreateProc, req.Encode(), func(env wire.Envelope, err error) {
		if err != nil {
			cb(proc.GPID{}, err)
			return
		}
		a, derr := wire.DecodeCreateAck(env.Body)
		if derr != nil {
			cb(proc.GPID{}, derr)
			return
		}
		if !a.OK {
			cb(proc.GPID{}, fmt.Errorf("%w: %s", ErrRemote, a.Reason))
			return
		}
		cb(a.ID, nil)
	})
}

// Snapshot gathers the distributed snapshot (the LPM floods the
// request over its circuit graph on the tool's behalf).
func (t *ToolClient) Snapshot(cb func(proc.Snapshot, error)) {
	req := wire.SnapshotReq{User: t.user.Name, Forward: true}
	t.call(wire.MsgSnapshotReq, req.Encode(), func(env wire.Envelope, err error) {
		if err != nil {
			cb(proc.Snapshot{}, err)
			return
		}
		resp, derr := wire.DecodeSnapshotResp(env.Body)
		if derr != nil {
			cb(proc.Snapshot{}, derr)
			return
		}
		snap := proc.Merge(t.sched.Now().Duration(), resp.Procs)
		snap.Partial = resp.Partial
		cb(snap, nil)
	})
}

// Stats fetches a process's resource-consumption record.
func (t *ToolClient) Stats(target proc.GPID, cb func(proc.Info, error)) {
	req := wire.StatsReq{User: t.user.Name, Target: target}
	t.call(wire.MsgStatsReq, req.Encode(), func(env wire.Envelope, err error) {
		if err != nil {
			cb(proc.Info{}, err)
			return
		}
		resp, derr := wire.DecodeStatsResp(env.Body)
		if derr != nil {
			cb(proc.Info{}, derr)
			return
		}
		if !resp.OK {
			cb(proc.Info{}, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
			return
		}
		cb(resp.Info, nil)
	})
}

// History queries the LPM's preserved event trace.
func (t *ToolClient) History(q history.Query, cb func([]proc.Event, error)) {
	req := wire.HistoryReq{
		User: t.user.Name, Proc: q.Proc,
		Since: q.Since, Limit: uint16(q.Limit),
	}
	for _, k := range q.Kinds {
		req.Kinds = append(req.Kinds, uint8(k))
	}
	t.call(wire.MsgHistoryReq, req.Encode(), func(env wire.Envelope, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		resp, derr := wire.DecodeHistoryResp(env.Body)
		if derr != nil {
			cb(nil, derr)
			return
		}
		cb(resp.Events, nil)
	})
}

// --- LPM-side tool socket handling ---

// onToolMsg serves requests arriving on a registered tool socket. Tool
// requests ride the same wire protocol as sibling requests, but a
// snapshot from a tool triggers the distributed flood (the tool wants
// the whole computation, not one host's fragment).
func (l *LPM) onToolMsg(conn Conn, b []byte) {
	if l.exited {
		return
	}
	env, err := wire.DecodeEnvelopeLogged(b, l.journal, l.Host())
	if err != nil {
		return
	}
	l.touch()
	l.Stats.RequestsServed++
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
	reply := func(mt wire.MsgType, body []byte) {
		l.kern.ExecCPU(toolSocketLeg, func() {
			if conn.Open() {
				renv := wire.Envelope{Type: mt, ReqID: env.ReqID, Body: body}
				renv.SetTrace(ctx.Trace, ctx.Span)
				//ppmlint:allow errdrop tool-socket reply is fire-and-forget; the tool's timeout covers a lost frame
				_ = l.sendFramedReply(conn, renv, ctx)
			}
		})
	}
	l.kern.ExecCPU(toolSocketLeg, func() {
		if l.exited {
			return
		}
		switch env.Type {
		case wire.MsgSnapshotReq:
			req, err := wire.DecodeSnapshotReq(env.Body)
			if err != nil || req.User != l.user.Name {
				reply(wire.MsgSnapshotResp,
					wire.SnapshotResp{OK: false, Reason: "bad snapshot request"}.Encode())
				return
			}
			inner := wire.Envelope{Type: wire.MsgSnapshotReq, Body: env.Body}
			l.startFlood(ctx, inner, func(res wire.FloodResult) {
				reply(wire.MsgSnapshotResp, wire.SnapshotResp{
					OK: true, Procs: res.Procs, Partial: l.uncovered(res),
				}.Encode())
			})
		case wire.MsgControl:
			// A zero-target control from a tool is a broadcast.
			req, derr := wire.DecodeControl(env.Body)
			if derr == nil && req.Target.IsZero() && req.User == l.user.Name {
				inner := wire.Envelope{Type: wire.MsgControl, Body: env.Body}
				l.startFlood(ctx, inner, func(res wire.FloodResult) {
					reply(wire.MsgControlResp,
						wire.ControlResp{OK: true, State: proc.Running}.Encode())
				})
				return
			}
			if derr == nil && req.Target.Host != l.Host() {
				// Tools may target remote processes; the LPM forwards.
				l.remoteCall(ctx, req.Target.Host, wire.MsgControl, env.Body,
					func(renv wire.Envelope, rerr error) {
						if rerr != nil {
							reply(wire.MsgControlResp,
								wire.ControlResp{OK: false, Reason: rerr.Error()}.Encode())
							return
						}
						reply(wire.MsgControlResp, renv.Body)
					})
				return
			}
			l.serveRequest(ctx, env, reply)
		default:
			l.serveRequest(ctx, env, reply)
		}
	})
}

// toolSocketLeg is the per-leg cost of tool-socket traffic (local IPC,
// same as the subroutine-library tool leg).
const toolSocketLeg = 11 * time.Millisecond
