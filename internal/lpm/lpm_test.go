package lpm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/daemon"
	"ppm/internal/history"
	"ppm/internal/kernel"
	"ppm/internal/proc"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/wire"
)

// world wires a full simulated installation: hosts, kernels, daemons
// and on-demand LPMs, exactly as the public facade will.
type world struct {
	t     *testing.T
	sched *sim.Scheduler
	net   *simnet.Network
	kerns map[string]*kernel.Host
	dir   *auth.Directory
	trust *auth.Trust
	dmns  map[string]*daemon.Daemons
	lpms  map[string]*LPM // key: host + "/" + user
	cfg   Config
	port  uint16
}

// newWorld builds hosts on one shared segment unless segments are
// given as "seg:host1,host2" specs.
func newWorld(t *testing.T, cfg Config, hosts []string, segments ...string) *world {
	t.Helper()
	return newWorldNet(t, cfg, simnet.Options{}, hosts, segments...)
}

// newWorldNet is newWorld with explicit network options (the detector
// tests stretch BreakDetect so the transport's own fixed timeout stays
// out of the way).
func newWorldNet(t *testing.T, cfg Config, opts simnet.Options, hosts []string, segments ...string) *world {
	t.Helper()
	w := &world{
		t:     t,
		sched: sim.NewScheduler(1),
		dir:   auth.NewDirectory(),
		trust: auth.NewTrust(),
		kerns: make(map[string]*kernel.Host),
		dmns:  make(map[string]*daemon.Daemons),
		lpms:  make(map[string]*LPM),
		cfg:   cfg,
		port:  2000,
	}
	w.net = simnet.New(w.sched, opts)
	for _, h := range hosts {
		if err := w.net.AddHost(h); err != nil {
			t.Fatal(err)
		}
		w.kerns[h] = kernel.NewHost(w.sched, h, calib.ModelVAX780)
	}
	if len(segments) == 0 {
		if err := w.net.AddSegment("lan", hosts...); err != nil {
			t.Fatal(err)
		}
	} else {
		for _, spec := range segments {
			parts := strings.SplitN(spec, ":", 2)
			members := strings.Split(parts[1], ",")
			if err := w.net.AddSegment(parts[0], members...); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.trust.AllowAll(hosts...)
	for _, h := range hosts {
		h := h
		factory := func(user string) (simnet.Addr, error) {
			w.port++
			u, err := w.dir.Lookup(user)
			if err != nil {
				return simnet.Addr{}, err
			}
			l, err := New(w.kerns[h], w.net, w.dir, w.dmns[h], u, w.port, w.cfg)
			if err != nil {
				return simnet.Addr{}, err
			}
			w.lpms[h+"/"+user] = l
			return l.Accept(), nil
		}
		d, err := daemon.Start(w.kerns[h], w.net, w.dir, w.trust, factory, daemon.Options{})
		if err != nil {
			t.Fatal(err)
		}
		w.dmns[h] = d
	}
	return w
}

func (w *world) user(name string, rhosts ...string) *auth.User {
	u := w.dir.AddUser(name)
	for _, h := range rhosts {
		_ = w.dir.AllowRHost(name, h)
	}
	return u
}

// attach obtains the user's LPM on host via the Figure 2 exchange.
func (w *world) attach(host string, u *auth.User) *LPM {
	w.t.Helper()
	done := false
	var resp wire.LPMQueryResp
	daemon.QueryLPM(w.net, host, host, u, func(r wire.LPMQueryResp, err error) {
		if err != nil {
			w.t.Fatal(err)
		}
		resp, done = r, true
	})
	w.until(func() bool { return done })
	if !resp.OK {
		w.t.Fatalf("attach: %s", resp.Reason)
	}
	l := w.lpms[host+"/"+u.Name]
	if l == nil {
		w.t.Fatal("factory did not record the LPM")
	}
	return l
}

func (w *world) until(cond func() bool) {
	w.t.Helper()
	ok, err := w.sched.RunUntilDone(cond, 5_000_000)
	if err != nil {
		w.t.Fatal(err)
	}
	if !ok {
		w.t.Fatal("condition never satisfied (scheduler idle)")
	}
}

func (w *world) run(d time.Duration) {
	w.t.Helper()
	if err := w.sched.RunFor(d); err != nil {
		w.t.Fatal(err)
	}
}

// create runs l.Create synchronously.
func (w *world) create(l *LPM, host, name string, parent proc.GPID) proc.GPID {
	w.t.Helper()
	var id proc.GPID
	var cerr error
	done := false
	l.Create(host, name, parent, func(g proc.GPID, err error) { id, cerr, done = g, err, true })
	w.until(func() bool { return done })
	if cerr != nil {
		w.t.Fatalf("create %s on %s: %v", name, host, cerr)
	}
	return id
}

func (w *world) control(l *LPM, target proc.GPID, op wire.ControlOp, sig proc.Signal) (wire.ControlResp, error) {
	w.t.Helper()
	var resp wire.ControlResp
	var cerr error
	done := false
	l.Control(target, op, sig, func(r wire.ControlResp, err error) { resp, cerr, done = r, err, true })
	w.until(func() bool { return done })
	return resp, cerr
}

func (w *world) snapshot(l *LPM) proc.Snapshot {
	w.t.Helper()
	var snap proc.Snapshot
	done := false
	l.Snapshot(func(s proc.Snapshot, err error) {
		if err != nil {
			w.t.Fatal(err)
		}
		snap, done = s, true
	})
	w.until(func() bool { return done })
	return snap
}

func msBetween(a, b sim.Time) float64 { return float64(b.Sub(a)) / float64(time.Millisecond) }

// --- creation and timing ---

func TestLocalCreateTiming(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	start := w.sched.Now()
	id := w.create(l, "vax1", "job", proc.GPID{})
	elapsed := msBetween(start, w.sched.Now())
	// Table 2: within-host create is 77 ms at the LPM, plus the two
	// tool legs (22 ms).
	if elapsed < 97 || elapsed > 101 {
		t.Fatalf("local create took %.1f ms, want ~99", elapsed)
	}
	if id.Host != "vax1" {
		t.Fatalf("created on %s", id.Host)
	}
	p, err := w.kerns["vax1"].Lookup(id.PID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Traced || p.Name != "job" || p.User != "felipe" {
		t.Fatalf("created process: %+v", p)
	}
}

func TestRemoteCreateWarmCircuitTiming(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	// First create pays LPM creation + circuit establishment.
	w.create(l, "vax2", "warmup", proc.GPID{})
	// Second create runs over the warm circuit: the paper's 177 ms
	// plus two tool legs.
	start := w.sched.Now()
	id := w.create(l, "vax2", "job", proc.GPID{})
	elapsed := msBetween(start, w.sched.Now())
	if elapsed < 196 || elapsed > 203 {
		t.Fatalf("warm remote create took %.1f ms, want ~199 (177 + tool legs)", elapsed)
	}
	if id.Host != "vax2" {
		t.Fatalf("created on %s", id.Host)
	}
	// The remote process execs asynchronously after the ack.
	w.run(100 * time.Millisecond)
	p, err := w.kerns["vax2"].Lookup(id.PID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "job" || !p.Traced {
		t.Fatalf("remote process: %+v", p)
	}
}

func TestRemoteCreateSetsLogicalParentAcrossHosts(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	root := w.create(l, "vax1", "root", proc.GPID{})
	child := w.create(l, "vax2", "child", root)
	p, err := w.kerns["vax2"].Lookup(child.PID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Parent != root {
		t.Fatalf("logical parent = %v, want %v", p.Parent, root)
	}
}

// --- control ---

func TestLocalControlTiming(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})
	start := w.sched.Now()
	resp, err := w.control(l, id, wire.OpStop, 0)
	elapsed := msBetween(start, w.sched.Now())
	if err != nil || !resp.OK {
		t.Fatalf("stop: %v %+v", err, resp)
	}
	// Table 2: stop within host is 30 ms.
	if elapsed < 29 || elapsed > 32 {
		t.Fatalf("local stop took %.1f ms, want ~30", elapsed)
	}
	if resp.State != proc.Stopped {
		t.Fatalf("state = %v", resp.State)
	}
}

func TestRemoteControlOneHopTiming(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	id := w.create(l, "vax2", "job", proc.GPID{})
	w.run(200 * time.Millisecond) // let the async exec settle
	start := w.sched.Now()
	resp, err := w.control(l, id, wire.OpStop, 0)
	elapsed := msBetween(start, w.sched.Now())
	if err != nil || !resp.OK {
		t.Fatalf("remote stop: %v %+v", err, resp)
	}
	// Table 2: stop at one hop is 199 ms.
	if elapsed < 196 || elapsed > 204 {
		t.Fatalf("one-hop stop took %.1f ms, want ~199", elapsed)
	}
}

func TestRemoteControlTwoHopsTiming(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "gw", "vax3"},
		"seg1:vax1,gw", "seg2:gw,vax3")
	u := w.user("felipe", "vax1", "gw", "vax3")
	l := w.attach("vax1", u)
	id := w.create(l, "vax3", "job", proc.GPID{})
	w.run(200 * time.Millisecond)
	start := w.sched.Now()
	resp, err := w.control(l, id, wire.OpKill, 0)
	elapsed := msBetween(start, w.sched.Now())
	if err != nil || !resp.OK {
		t.Fatalf("two-hop kill: %v %+v", err, resp)
	}
	// Table 2: terminate at two hops is 210 ms.
	if elapsed < 206 || elapsed > 216 {
		t.Fatalf("two-hop terminate took %.1f ms, want ~210", elapsed)
	}
	if resp.State != proc.Exited {
		t.Fatalf("state = %v", resp.State)
	}
}

func TestControlSemanticsFgBgKill(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})

	if resp, _ := w.control(l, id, wire.OpStop, 0); resp.State != proc.Stopped {
		t.Fatalf("stop -> %v", resp.State)
	}
	if resp, _ := w.control(l, id, wire.OpForeground, 0); resp.State != proc.Running {
		t.Fatalf("fg -> %v", resp.State)
	}
	p, _ := w.kerns["vax1"].Lookup(id.PID)
	if !p.Foreground {
		t.Fatal("not foreground")
	}
	if resp, _ := w.control(l, id, wire.OpBackground, 0); resp.State != proc.Running {
		t.Fatalf("bg -> %v", resp.State)
	}
	if p.Foreground {
		t.Fatal("still foreground")
	}
	if resp, _ := w.control(l, id, wire.OpSignal, proc.SIGUSR1); !resp.OK {
		t.Fatal("signal failed")
	}
	if resp, _ := w.control(l, id, wire.OpKill, 0); resp.State != proc.Exited {
		t.Fatalf("kill -> %v", resp.State)
	}
}

func TestControlNoSuchProcess(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	resp, err := w.control(l, proc.GPID{Host: "vax2", PID: 999}, wire.OpStop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Reason, "no such process") {
		t.Fatalf("resp = %+v", resp)
	}
}

// --- adoption ---

func TestAdoptExistingProcess(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	// A process started outside the PPM (login shell child).
	p, err := w.kerns["vax1"].Spawn("preexisting", "felipe")
	if err != nil {
		t.Fatal(err)
	}
	var aerr error
	done := false
	l.Adopt(p.PID, func(err error) { aerr, done = err, true })
	w.until(func() bool { return done })
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !p.Traced {
		t.Fatal("process not traced after adoption")
	}
	// Its descendants are tracked automatically.
	child, _ := w.kerns["vax1"].Fork(p.PID, "descendant")
	w.run(100 * time.Millisecond)
	snap := w.snapshot(l)
	if _, ok := snap.Find(proc.GPID{Host: "vax1", PID: child.PID}); !ok {
		t.Fatalf("descendant missing from snapshot:\n%s", snap.Render())
	}
}

func TestAdoptForeignProcessFails(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	w.user("other")
	l := w.attach("vax1", u)
	p, _ := w.kerns["vax1"].Spawn("theirs", "other")
	var aerr error
	done := false
	l.Adopt(p.PID, func(err error) { aerr, done = err, true })
	w.until(func() bool { return done })
	if !errors.Is(aerr, kernel.ErrPermission) {
		t.Fatalf("err = %v", aerr)
	}
}

// --- snapshots and genealogy ---

func TestSnapshotGenealogyAcrossThreeHosts(t *testing.T) {
	// The paper's Figure 1 scenario: a computation spanning three hosts.
	w := newWorld(t, Config{}, []string{"hostA", "hostB", "hostC"})
	u := w.user("felipe", "hostA", "hostB", "hostC")
	l := w.attach("hostA", u)
	root := w.create(l, "hostA", "shell-job", proc.GPID{})
	b1 := w.create(l, "hostB", "worker-b", root)
	_ = w.create(l, "hostC", "worker-c", root)
	_ = w.create(l, "hostB", "sub-worker", b1)
	w.run(500 * time.Millisecond)

	snap := w.snapshot(l)
	if len(snap.Hosts()) != 3 {
		t.Fatalf("hosts = %v", snap.Hosts())
	}
	kids := snap.Children(root)
	if len(kids) != 2 {
		t.Fatalf("root children = %d:\n%s", len(kids), snap.Render())
	}
	if snap.IsForest() {
		t.Fatalf("healthy computation should be one tree:\n%s", snap.Render())
	}
	render := snap.Render()
	for _, want := range []string{"shell-job", "worker-b", "worker-c", "sub-worker"} {
		if !strings.Contains(render, want) {
			t.Fatalf("render missing %q:\n%s", want, render)
		}
	}
}

func TestSnapshotMarksExited(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	parent := w.create(l, "vax1", "parent", proc.GPID{})
	_ = w.create(l, "vax1", "child", parent)
	// Parent exits; exit info is retained while children are alive and
	// the snapshot marks it exited.
	_ = w.kerns["vax1"].Exit(parent.PID, 0)
	w.run(100 * time.Millisecond)
	snap := w.snapshot(l)
	info, ok := snap.Find(parent)
	if !ok {
		t.Fatalf("exited parent dropped:\n%s", snap.Render())
	}
	if info.State != proc.Exited {
		t.Fatalf("state = %v", info.State)
	}
	if !strings.Contains(snap.Render(), "parent (exited)") {
		t.Fatalf("render does not mark exit:\n%s", snap.Render())
	}
	if snap.IsForest() {
		t.Fatal("child should still hang off the exited parent")
	}
}

func TestSnapshotChainForwarding(t *testing.T) {
	// Circuits: A-B (A created procs on B), B-C (B created procs on C).
	// A's snapshot must reach C through B: the graph-covering flood.
	w := newWorld(t, Config{}, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	w.create(la, "b", "on-b", proc.GPID{})
	lb := w.lpms["b/felipe"]
	if lb == nil {
		t.Fatal("no LPM on b")
	}
	w.create(lb, "c", "on-c", proc.GPID{})
	w.run(500 * time.Millisecond)
	// A has no circuit to C.
	for _, h := range la.SiblingHosts() {
		if h == "c" {
			t.Fatal("test setup: A should not have a direct circuit to C")
		}
	}
	snap := w.snapshot(la)
	hosts := snap.Hosts()
	foundC := false
	for _, h := range hosts {
		if h == "c" {
			foundC = true
		}
	}
	if !foundC {
		t.Fatalf("snapshot did not reach c over the chain: hosts=%v", hosts)
	}
	if len(snap.Partial) != 0 {
		t.Fatalf("partial = %v", snap.Partial)
	}
}

func TestFloodDedupOnCycle(t *testing.T) {
	// Triangle circuits: a-b, b-c, a-c. The flood must visit each host
	// exactly once and answer duplicates without retransmitting.
	w := newWorld(t, Config{}, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	w.create(la, "a", "pa", proc.GPID{})
	w.create(la, "b", "pb", proc.GPID{})
	w.create(la, "c", "pc", proc.GPID{})
	lb := w.lpms["b/felipe"]
	w.create(lb, "c", "pc2", proc.GPID{}) // forms the b-c circuit
	w.run(500 * time.Millisecond)

	snap := w.snapshot(la)
	counts := map[proc.GPID]int{}
	for _, p := range snap.Procs {
		counts[p.ID]++
		if counts[p.ID] > 1 {
			t.Fatalf("process %v duplicated in snapshot", p.ID)
		}
	}
	if len(snap.Hosts()) != 3 {
		t.Fatalf("hosts = %v", snap.Hosts())
	}
	lc := w.lpms["c/felipe"]
	if lb.Stats.FloodDuplicates+lc.Stats.FloodDuplicates == 0 {
		t.Fatal("cycle should have produced at least one deduplicated arrival")
	}
}

func TestSnapshotPartialOnCrashedHost(t *testing.T) {
	w := newWorld(t, Config{}, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	w.create(la, "b", "doomed", proc.GPID{})
	w.run(300 * time.Millisecond)
	_ = w.net.Crash("b")
	w.kerns["b"].Crash()
	w.run(5 * time.Second) // let the circuit break
	snap := w.snapshot(la)
	if len(snap.Partial) == 0 {
		t.Fatalf("crash of b should yield a partial snapshot: %+v", snap)
	}
}

// --- broadcast control ---

func TestControlAllStopsComputationEverywhere(t *testing.T) {
	w := newWorld(t, Config{}, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	root := w.create(la, "a", "root", proc.GPID{})
	w.create(la, "b", "wb", root)
	w.create(la, "c", "wc", root)
	w.run(500 * time.Millisecond)

	var count int
	var cerr error
	done := false
	la.ControlAll(wire.OpStop, 0, func(n int, err error) { count, cerr, done = n, err, true })
	w.until(func() bool { return done })
	if cerr != nil {
		t.Fatal(cerr)
	}
	if count != 3 {
		t.Fatalf("stopped %d processes, want 3", count)
	}
	for _, hk := range []struct {
		host string
		pid  proc.PID
	}{{"a", root.PID}} {
		p, _ := w.kerns[hk.host].Lookup(hk.pid)
		if p.State != proc.Stopped {
			t.Fatalf("%s/%d state = %v", hk.host, hk.pid, p.State)
		}
	}
}

// --- authentication ---

func TestSiblingHelloBadTokenRejected(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	_ = l
	addr := l.Accept()
	// A raw connection presenting a forged token.
	var rejected bool
	w.net.Dial("vax2", addr, func(conn *simnet.Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn.SetHandler(func(b []byte) {
			env, _ := wire.DecodeEnvelope(b)
			resp, _ := wire.DecodeHelloResp(env.Body)
			if !resp.OK {
				rejected = true
			}
		})
		hello := wire.Hello{
			User:     "felipe",
			FromHost: "vax2",
			Token:    []byte("forged"),
			Stamp:    wire.NewStamp([]byte("wrong-key"), "vax2", 0, 1),
		}
		_ = conn.Send(wire.Envelope{Type: wire.MsgHello, Body: hello.Encode()}.Encode())
	})
	w.run(2 * time.Second)
	if !rejected {
		t.Fatal("forged hello accepted")
	}
	if len(l.SiblingHosts()) != 0 {
		t.Fatal("forged circuit registered")
	}
}

func TestSiblingHelloWrongUserRejected(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	mallory := w.user("mallory", "vax1", "vax2")
	l := w.attach("vax1", u)
	addr := l.Accept()
	var rejected bool
	w.net.Dial("vax2", addr, func(conn *simnet.Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn.SetHandler(func(b []byte) {
			env, _ := wire.DecodeEnvelope(b)
			resp, _ := wire.DecodeHelloResp(env.Body)
			if !resp.OK {
				rejected = true
			}
		})
		// Mallory presents her own valid credentials to felipe's LPM.
		hello := wire.Hello{
			User:     "mallory",
			FromHost: "vax2",
			Token:    auth.MintToken(mallory, "sibling"),
			Stamp:    wire.NewStamp(mallory.Key(), "vax2", 0, 1),
		}
		_ = conn.Send(wire.Envelope{Type: wire.MsgHello, Body: hello.Encode()}.Encode())
	})
	w.run(2 * time.Second)
	if !rejected {
		t.Fatal("cross-user hello accepted")
	}
}

// --- TTL and session semantics ---

func TestTTLExpiresIdleLPM(t *testing.T) {
	w := newWorld(t, Config{TTL: 30 * time.Second}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	if l.Exited() {
		t.Fatal("fresh LPM exited")
	}
	w.run(2 * time.Minute)
	if !l.Exited() {
		t.Fatal("idle LPM should have expired")
	}
	if _, ok := w.dmns["vax1"].KnownLPM("felipe"); ok {
		t.Fatal("expired LPM still registered with pmd")
	}
}

func TestTTLFrozenWhileUserProcessesLive(t *testing.T) {
	w := newWorld(t, Config{TTL: 30 * time.Second}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	w.create(l, "vax1", "long-job", proc.GPID{})
	w.run(5 * time.Minute)
	if l.Exited() {
		t.Fatal("LPM with live user processes must not expire")
	}
}

func TestPPMOutlivesLoginSession(t *testing.T) {
	// The user "logs out" (no tool calls) but processes remain; a later
	// attach finds the same LPM with full knowledge of the processes.
	w := newWorld(t, Config{TTL: time.Hour}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "survivor", proc.GPID{})
	w.run(30 * time.Minute) // logged out; the PPM outlives the session
	l2 := w.attach("vax1", u)
	if l2 != l {
		t.Fatal("re-attach should find the existing LPM")
	}
	snap := w.snapshot(l2)
	if _, ok := snap.Find(id); !ok {
		t.Fatal("process knowledge lost across sessions")
	}
}

// --- history, stats, fds ---

func TestHistoryRecordsEvents(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})
	_, _ = w.control(l, id, wire.OpStop, 0)
	_, _ = w.control(l, id, wire.OpForeground, 0)
	_, _ = w.control(l, id, wire.OpKill, 0)
	w.run(time.Second)

	var evs []proc.Event
	done := false
	l.HistoryQuery(history.Query{Proc: id}, func(e []proc.Event, err error) {
		if err != nil {
			t.Fatal(err)
		}
		evs, done = e, true
	})
	w.until(func() bool { return done })
	kinds := map[proc.EventKind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds[proc.EvStop] == 0 || kinds[proc.EvCont] == 0 || kinds[proc.EvExit] == 0 {
		t.Fatalf("history kinds = %v", kinds)
	}
}

func TestExitedProcessStatsPreserved(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})
	_ = w.kerns["vax1"].Syscall(id.PID, "read")
	_ = w.kerns["vax1"].Syscall(id.PID, "write")
	_, _ = w.control(l, id, wire.OpKill, 0)
	w.run(time.Second)

	var info proc.Info
	done := false
	l.StatsOf(id, func(i proc.Info, err error) {
		if err != nil {
			t.Fatal(err)
		}
		info, done = i, true
	})
	w.until(func() bool { return done })
	if info.State != proc.Exited {
		t.Fatalf("state = %v", info.State)
	}
	if info.Rusage.Syscalls < 2 {
		t.Fatalf("rusage lost: %+v", info.Rusage)
	}
}

func TestRemoteFDs(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	id := w.create(l, "vax2", "job", proc.GPID{})
	w.run(200 * time.Millisecond)
	if _, err := w.kerns["vax2"].OpenFD(id.PID, "/tmp/data"); err != nil {
		t.Fatal(err)
	}
	var open []string
	done := false
	l.FDs(id, func(o []string, err error) {
		if err != nil {
			t.Fatal(err)
		}
		open, done = o, true
	})
	w.until(func() bool { return done })
	found := false
	for _, s := range open {
		if strings.Contains(s, "/tmp/data") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fds = %v", open)
	}
}

// --- handler pool ---

func TestHandlerReuse(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	for i := 0; i < 5; i++ {
		w.create(l, "vax2", "job", proc.GPID{})
	}
	if l.Stats.HandlerReuses == 0 {
		t.Fatalf("handlers never reused: %+v", l.Stats)
	}
	if l.Stats.HandlerForks > 2 {
		t.Fatalf("too many handler forks with a warm pool: %+v", l.Stats)
	}
}

func TestNoHandlerReuseForksEveryTime(t *testing.T) {
	w := newWorld(t, Config{NoHandlerReuse: true}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	for i := 0; i < 3; i++ {
		w.create(l, "vax2", "job", proc.GPID{})
	}
	if l.Stats.HandlerReuses != 0 {
		t.Fatal("reuse happened despite NoHandlerReuse")
	}
	if l.Stats.HandlerForks < 3 {
		t.Fatalf("forks = %d, want one per request", l.Stats.HandlerForks)
	}
}

// --- recovery ---

func TestCrashOfCCSFailsOverToRecoveryList(t *testing.T) {
	cfg := Config{}
	cfg.Recovery.List = []string{"a", "b"}
	w := newWorld(t, cfg, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	la.Recovery().SetCCS("a")
	w.create(la, "b", "job", proc.GPID{})
	lb := w.lpms["b/felipe"]
	w.run(time.Second)
	if lb.Recovery().CCS() != "a" {
		t.Fatalf("ccs propagation failed: %q", lb.Recovery().CCS())
	}
	// The CCS host crashes.
	_ = w.net.Crash("a")
	w.kerns["a"].Crash()
	w.run(time.Minute)
	if lb.Recovery().CCS() != "b" || !lb.Recovery().IsCCS() {
		t.Fatalf("b should have become CCS, has %q", lb.Recovery().CCS())
	}
}

func TestIsolatedLPMTimeToDieKillsProcesses(t *testing.T) {
	cfg := Config{}
	cfg.Recovery.List = []string{"a"} // only the (about to die) home host
	cfg.Recovery.TimeToDie = time.Minute
	cfg.Recovery.RetryEvery = 20 * time.Second
	w := newWorld(t, cfg, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	la.Recovery().SetCCS("a")
	id := w.create(la, "b", "victim", proc.GPID{})
	lb := w.lpms["b/felipe"]
	w.run(time.Second)
	_ = w.net.Crash("a")
	w.kerns["a"].Crash()
	w.run(10 * time.Minute)
	if !lb.Exited() {
		t.Fatal("isolated LPM should have exited after time-to-die")
	}
	p, err := w.kerns["b"].Lookup(id.PID)
	if err == nil && (p.State == proc.Running || p.State == proc.Stopped) {
		t.Fatal("time-to-die should have terminated the user's processes")
	}
}

func TestPartitionProducesTwoCCSsThenRejoins(t *testing.T) {
	cfg := Config{}
	cfg.Recovery.List = []string{"a", "b"}
	cfg.Recovery.ProbeEvery = 20 * time.Second
	w := newWorld(t, cfg, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	la.Recovery().SetCCS("a")
	root := w.create(la, "a", "root", proc.GPID{})
	w.create(la, "b", "wb", root)
	w.create(la, "c", "wc", root)
	lb, lc := w.lpms["b/felipe"], w.lpms["c/felipe"]
	w.run(2 * time.Second)

	// Partition: {a} vs {b, c}.
	if err := w.net.Partition([]string{"a"}, []string{"b", "c"}); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Minute)
	if !lb.Recovery().IsCCS() {
		t.Fatalf("b should be the CCS of its partition (ccs=%q state=%v)",
			lb.Recovery().CCS(), lb.Recovery().State())
	}
	if la.Recovery().CCS() != "a" {
		t.Fatal("a should still consider itself CCS")
	}
	_ = lc

	// Heal: b's low-frequency probe finds a and demotes itself.
	w.net.Heal()
	w.run(3 * time.Minute)
	if lb.Recovery().CCS() != "a" {
		t.Fatalf("after heal b's ccs = %q, want a", lb.Recovery().CCS())
	}
	if lb.Recovery().IsCCS() {
		t.Fatal("b should have demoted itself")
	}
}

// --- ping ---

func TestPingReportsCCS(t *testing.T) {
	w := newWorld(t, Config{}, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	la.Recovery().SetCCS("a")
	w.create(la, "b", "job", proc.GPID{})
	w.run(time.Second)
	var pong wire.Pong
	done := false
	la.Ping("b", func(p wire.Pong, err error) {
		if err != nil {
			t.Fatal(err)
		}
		pong, done = p, true
	})
	w.until(func() bool { return done })
	if pong.FromHost != "b" || pong.CCSHost != "a" {
		t.Fatalf("pong = %+v", pong)
	}
}
