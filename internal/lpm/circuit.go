package lpm

import (
	"fmt"

	"ppm/internal/journal"
	"ppm/internal/wire"
)

// circuitState is one state of the explicit sibling-circuit lifecycle
// (modeled on the HSMS connection state machine): every circuit a
// host's LPM tracks to a peer is, at any instant, in exactly one of
// these states, and every step is journaled under
// journal.CircuitTransition so the audit can replay the machine
// against the legal-transition table.
type circuitState uint8

const (
	circuitIdle circuitState = iota
	circuitDialing
	circuitAuthenticating
	circuitEstablished
	circuitSuspect
	circuitClosed
)

// circuitStateNames renders states without allocating; the names are
// the journal vocabulary the audit parses back.
var circuitStateNames = [...]string{
	circuitIdle:           "idle",
	circuitDialing:        "dialing",
	circuitAuthenticating: "authenticating",
	circuitEstablished:    "established",
	circuitSuspect:        "suspect",
	circuitClosed:         "closed",
}

func (s circuitState) String() string {
	if int(s) < len(circuitStateNames) {
		return circuitStateNames[s]
	}
	return "invalid"
}

// circuitTransition steps the per-peer circuit machine to state `to`,
// journaling the edge. A self-transition is a no-op, so call sites
// can drive the machine from every signal (detector ticks, close
// handlers, supersede paths) without guarding against repeats; reason
// and chan tokens must contain no spaces (journal.Field contract).
func (l *LPM) circuitTransition(peer string, to circuitState, reason, chanKey string) {
	from := l.circuits[peer]
	if from == to {
		return
	}
	l.circuits[peer] = to
	l.metrics.Counter("lpm.circuit.transitions").Inc()
	if l.journal.Enabled() {
		l.journal.Append(journal.CircuitTransition, l.Host(),
			fmt.Sprintf("user=%s peer=%s chan=%s from=%s to=%s reason=%s",
				l.user.Name, peer, chanKey, from, to, reason))
	}
}

// circuitStateOf returns the lifecycle state tracked for a peer.
func (l *LPM) circuitStateOf(peer string) circuitState { return l.circuits[peer] }

// --- adaptive failure detection (linktest heartbeats) ---

// scheduleLinktest arms the next detector tick for a circuit. The
// period doubles as both the heartbeat interval and the suspicion
// evaluation cadence.
func (l *LPM) scheduleLinktest(sb *sibling) {
	sb.ltTimer = l.sched.After(l.cfg.Linktest, func() { l.linktestTick(sb) })
}

// linktestTick is one detector step for one circuit: evaluate the
// accrual suspicion level against the configured thresholds, step the
// circuit machine (Established → Suspect → Closed), and send the next
// heartbeat frame. Runs only while this sibling is still the
// registered circuit for its host.
func (l *LPM) linktestTick(sb *sibling) {
	if l.exited {
		return
	}
	if cur, ok := l.siblings[sb.host]; !ok || cur != sb || !sb.conn.Open() {
		return
	}
	now := l.sched.Now().Duration()
	sb.suspicion = sb.det.Suspicion(now)
	l.metrics.Gauge("lpm.detector.suspicion." + sb.host).Set(int64(sb.suspicion))
	if sb.suspicion >= l.cfg.CloseAfter {
		// The silence has outrun the estimate far enough that the peer
		// is presumed gone: close the circuit. The close handler runs
		// the usual teardown (pending-request failure, recovery
		// notification); the transition is journaled first so the
		// audit sees detector-initiated closes as such.
		l.metrics.Counter("lpm.detector.closes").Inc()
		l.circuitTransition(sb.host, circuitClosed, "detector", l.chanKey(sb.conn))
		sb.conn.Close()
		return
	}
	if sb.suspicion >= l.cfg.SuspectAfter && l.circuits[sb.host] == circuitEstablished {
		l.metrics.Counter("lpm.detector.suspects").Inc()
		l.circuitTransition(sb.host, circuitSuspect, fmt.Sprintf("suspicion-%d", sb.suspicion), l.chanKey(sb.conn))
	}
	sb.ltSeq++
	body := wire.LinkTest{FromHost: l.Host(), Seq: sb.ltSeq}.Encode()
	l.sendOneWay(sb, wire.MsgLinkTest, body)
	l.scheduleLinktest(sb)
}

// observeArrival feeds one message arrival into the circuit's failure
// detector and resolves a Suspect circuit back to Established — any
// traffic is proof of life, not just linktest echoes.
func (l *LPM) observeArrival(sb *sibling) {
	sb.det.Observe(l.sched.Now().Duration())
	if sb.suspicion != 0 {
		sb.suspicion = 0
		l.metrics.Gauge("lpm.detector.suspicion." + sb.host).Set(0)
	}
	if l.circuits[sb.host] == circuitSuspect {
		l.circuitTransition(sb.host, circuitEstablished, "traffic", l.chanKey(sb.conn))
	}
}
