package lpm

import (
	"errors"
	"fmt"

	"ppm/internal/journal"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// The sibling-RPC reliability layer. Every point-to-point operation is
// assigned a stable operation id and driven through a retry loop: a
// timed-out or unreachable attempt tears down the suspect circuit,
// waits a deterministic capped exponential backoff on the sim
// scheduler, re-resolves the peer via its pmd (ensureSibling) and
// retransmits under the same op id. The receiving LPM's at-most-once
// filter (handleRequest) makes the retransmission safe for
// non-idempotent operations: a duplicate is answered from the reply
// cache instead of being re-executed.

// retryable reports whether an attempt's failure warrants a
// retransmission: timeouts (the reply may be lost, not the operation)
// and unreachable siblings (the circuit may come back, or a fresh one
// may be dialed). Remote application errors and bad requests are
// answers, not failures.
func retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrNoSibling)
}

// remoteCall delivers a point-to-point request to the user's LPM on
// host and returns the response envelope. With an open circuit (or
// without UseRelay) the request travels directly under the retry
// engine; otherwise, if a relay route through a live sibling is known,
// the request is relayed along it instead of opening a new circuit.
// Relayed requests are a single attempt: the origin cannot prove a
// relayed execution did not happen, so it surfaces the error instead
// of risking a duplicate.
func (l *LPM) remoteCall(ctx trace.Context, host string, t wire.MsgType, body []byte, cb func(wire.Envelope, error)) {
	if _, ok := l.siblings[host]; !ok && l.cfg.UseRelay {
		if path, ok := l.routes[host]; ok && len(path) > 1 {
			if fsb, ok := l.siblings[path[0]]; ok && fsb.authed && fsb.conn.Open() {
				l.relayCall(ctx, host, t, body, path, cb)
				return
			}
		}
	}
	l.opSeq++
	l.callWithRetry(ctx, host, t, body, l.opSeq, 1, cb)
}

// callWithRetry runs transmission number attempt of one logical
// operation and schedules the next attempt on retryable failure.
func (l *LPM) callWithRetry(ctx trace.Context, host string, t wire.MsgType, body []byte,
	op uint64, attempt int, cb func(wire.Envelope, error)) {
	l.directCall(ctx, host, t, body, op, func(env wire.Envelope, err error) {
		if err == nil || !retryable(err) || attempt >= l.cfg.Retry.MaxAttempts || l.exited {
			cb(env, err)
			return
		}
		// Tear down the circuit only when the transport is implicated.
		// On ErrNoSibling it is already gone (the retry will re-resolve
		// via pmd and dial afresh). A first timeout may be nothing more
		// than a lost or slow reply on a healthy circuit shared with
		// other pending requests — Pings, relay forward hops — and
		// closing it would fail every one of them for one slow exchange.
		// Repeated timeouts of the same operation do implicate the
		// circuit; then it is closed so the next attempt redials.
		if errors.Is(err, ErrTimeout) && attempt >= 2 {
			if sb, ok := l.siblings[host]; ok && sb.conn.Open() {
				sb.conn.Close()
			}
		}
		next := attempt + 1
		delay := l.cfg.Retry.backoff(next)
		l.metrics.Counter("lpm.request.retries").Inc()
		l.journal.AppendCtx(journal.LPMRetry, l.Host(),
			fmt.Sprintf("user=%s op=%s type=%v attempt=%d backoff=%v",
				l.user.Name, wire.OpKey(l.Host(), l.incarnation(), op), t, next, delay),
			ctx.Trace, ctx.Span)
		bsp := l.tracer.StartSpan(l.Host(), fmt.Sprintf("lpm.retry.%s", host), ctx)
		l.retryBackoffs++
		l.metrics.Gauge("lpm.retry.backoff_pending").Add(1)
		l.sched.After(delay, func() {
			l.retryBackoffs--
			l.metrics.Gauge("lpm.retry.backoff_pending").Add(-1)
			bsp.End()
			if l.exited {
				cb(wire.Envelope{}, ErrExited)
				return
			}
			if sb, ok := l.siblings[host]; !ok || !sb.authed || !sb.conn.Open() {
				l.metrics.Counter("lpm.request.redials").Inc()
				l.journal.AppendCtx(journal.LPMRedial, l.Host(),
					fmt.Sprintf("user=%s peer=%s reason=retry", l.user.Name, host),
					ctx.Trace, ctx.Span)
			}
			l.callWithRetry(ctx, host, t, body, op, next, cb)
		})
	})
}

// directCall performs one transmission over a direct circuit, dialing
// one on demand.
func (l *LPM) directCall(ctx trace.Context, host string, t wire.MsgType, body []byte,
	op uint64, cb func(wire.Envelope, error)) {
	if sb, ok := l.siblings[host]; ok && sb.authed && sb.conn.Open() {
		l.sendRequest(ctx, sb, t, body, op, cb)
		return
	}
	l.ensureSibling(ctx, host, func(sb *sibling, err error) {
		if err != nil {
			cb(wire.Envelope{}, err)
			return
		}
		l.sendRequest(ctx, sb, t, body, op, cb)
	})
}

// relayCall sends one request along a learned relay route (paper §4
// quick routing), unwrapping the relayed response.
func (l *LPM) relayCall(ctx trace.Context, host string, t wire.MsgType, body []byte,
	path []string, cb func(wire.Envelope, error)) {
	fsb := l.siblings[path[0]]
	l.Stats.RelaysOriginated++
	l.metrics.Counter("lpm.relay.originated").Inc()
	l.journal.AppendCtx(journal.LPMRelayOrigin, l.Host(),
		fmt.Sprintf("user=%s dest=%s via=%s", l.user.Name, host, path[0]),
		ctx.Trace, ctx.Span)
	inner := wire.Envelope{Type: t, Body: body}
	inner.SetTrace(ctx.Trace, ctx.Span)
	rel := wire.Relay{User: l.user.Name, Dest: host, Path: path[1:], Inner: inner.Encode()}
	l.sendRequest(ctx, fsb, wire.MsgRelay, rel.Encode(), 0, func(env wire.Envelope, err error) {
		if err != nil {
			cb(wire.Envelope{}, err)
			return
		}
		resp, derr := wire.DecodeRelayResp(env.Body)
		if derr != nil {
			cb(wire.Envelope{}, derr)
			return
		}
		if !resp.OK {
			cb(wire.Envelope{}, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
			return
		}
		innerResp, derr := wire.DecodeEnvelopeLogged(resp.Inner, l.journal, l.Host())
		if derr != nil {
			cb(wire.Envelope{}, derr)
			return
		}
		cb(innerResp, nil)
	})
}
