package lpm

import (
	"errors"
	"testing"
	"time"

	"ppm/internal/history"
	"ppm/internal/kernel"
	"ppm/internal/proc"
	"ppm/internal/wire"
)

// Edge and failure paths not reached by the main scenario tests.

func TestOpsOnExitedLPMReturnErrExited(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	l.Exit()
	if !l.Exited() {
		t.Fatal("not exited")
	}

	var errs []error
	collect := func(err error) { errs = append(errs, err) }
	l.Adopt(1, collect)
	l.SetTraceMask(1, kernel.TraceAll, collect)
	l.Create("vax1", "x", proc.GPID{}, func(_ proc.GPID, err error) { collect(err) })
	l.Control(proc.GPID{Host: "vax1", PID: 1}, wire.OpStop, 0,
		func(_ wire.ControlResp, err error) { collect(err) })
	l.StatsOf(proc.GPID{Host: "vax1", PID: 1}, func(_ proc.Info, err error) { collect(err) })
	l.FDs(proc.GPID{Host: "vax1", PID: 1}, func(_ []string, err error) { collect(err) })
	l.HistoryQuery(history.Query{}, func(_ []proc.Event, err error) { collect(err) })
	l.Snapshot(func(_ proc.Snapshot, err error) { collect(err) })
	l.ControlAll(wire.OpStop, 0, func(_ int, err error) { collect(err) })
	l.Ping("vax1", func(_ wire.Pong, err error) { collect(err) })
	w.run(time.Second)
	if len(errs) != 10 {
		t.Fatalf("callbacks = %d, want 10", len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, ErrExited) {
			t.Fatalf("err[%d] = %v", i, err)
		}
	}
}

func TestExitIsIdempotentAndKillsOwnProcesses(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	before := len(w.kerns["vax1"].ProcessesOf("felipe"))
	if before == 0 {
		t.Fatal("LPM processes missing")
	}
	l.Exit()
	l.Exit() // idempotent
	live := 0
	for _, p := range w.kerns["vax1"].ProcessesOf("felipe") {
		if p.State == proc.Running || p.State == proc.Stopped {
			live++
		}
	}
	if live != 0 {
		t.Fatalf("LPM dispatcher/handlers still alive: %d", live)
	}
}

func TestExitFailsPendingRequests(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	id := w.create(l, "vax2", "job", proc.GPID{})
	w.run(time.Second)
	var gotErr error
	done := false
	l.Control(id, wire.OpStop, 0, func(_ wire.ControlResp, err error) { gotErr, done = err, true })
	// Exit while the request is in flight (before any scheduler run).
	l.Exit()
	w.run(time.Second)
	if !done {
		t.Fatal("pending callback never ran")
	}
	if !errors.Is(gotErr, ErrExited) && !errors.Is(gotErr, ErrNoSibling) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRequestTimeoutOnSilentPartition(t *testing.T) {
	// A tiny RequestTimeout beats the 1s circuit break detection, so
	// the timeout path (rather than the circuit-loss path) fires.
	w2 := newWorld(t, Config{RequestTimeout: 300 * time.Millisecond}, []string{"a", "b"})
	u := w2.user("felipe", "a", "b")
	la := w2.attach("a", u)
	id := w2.create(la, "b", "job", proc.GPID{})
	w2.run(time.Second)
	if err := w2.net.Partition([]string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	done := false
	la.Control(id, wire.OpStop, 0, func(_ wire.ControlResp, err error) { gotErr, done = err, true })
	w2.until(func() bool { return done })
	if gotErr == nil {
		t.Fatal("partitioned request should fail")
	}
	if !errors.Is(gotErr, ErrTimeout) && !errors.Is(gotErr, ErrNoSibling) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestEnsureSiblingToUnknownHostFails(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	var gotErr error
	done := false
	l.Create("ghost", "x", proc.GPID{}, func(_ proc.GPID, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if !errors.Is(gotErr, ErrNoSibling) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestCreateOnSelfViaEmptyHost(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "", "implicit-local", proc.GPID{})
	if id.Host != "vax1" {
		t.Fatalf("created on %q", id.Host)
	}
}

func TestStatsOfUnknownLocalProcess(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	var gotErr error
	done := false
	l.StatsOf(proc.GPID{Host: "vax1", PID: 4242}, func(_ proc.Info, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if !errors.Is(gotErr, ErrBadRequest) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRemoteStatsOfUnknownProcess(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	w.create(l, "vax2", "warm", proc.GPID{})
	var gotErr error
	done := false
	l.StatsOf(proc.GPID{Host: "vax2", PID: 4242}, func(_ proc.Info, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if !errors.Is(gotErr, ErrRemote) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRemoteFDsOfUnknownProcess(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	w.create(l, "vax2", "warm", proc.GPID{})
	var gotErr error
	done := false
	l.FDs(proc.GPID{Host: "vax2", PID: 4242}, func(_ []string, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if !errors.Is(gotErr, ErrRemote) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestSetTraceMaskViaLPM(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "job", proc.GPID{})
	var gotErr error
	done := false
	l.SetTraceMask(id.PID, kernel.TraceAll, func(err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	p, _ := w.kerns["vax1"].Lookup(id.PID)
	if p.Mask != kernel.TraceAll {
		t.Fatal("mask not applied")
	}
}

func TestWatchViaLPM(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	fired := 0
	id := l.AddWatch(&history.Watch{Kind: proc.EvStop, Action: func(proc.Event) { fired++ }})
	pid := w.create(l, "vax1", "job", proc.GPID{})
	_, _ = w.control(l, pid, wire.OpStop, 0)
	w.run(time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	l.RemoveWatch(id)
	_, _ = w.control(l, pid, wire.OpForeground, 0)
	_, _ = w.control(l, pid, wire.OpStop, 0)
	w.run(time.Second)
	if fired != 1 {
		t.Fatal("fired after removal")
	}
}

func TestAccessors(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	if l.User() != "felipe" {
		t.Fatalf("User = %q", l.User())
	}
	if l.History() == nil {
		t.Fatal("History nil")
	}
	if l.SeenStamps() != 0 {
		t.Fatal("fresh LPM has seen stamps")
	}
}

func TestDedupWindowExpiresStamps(t *testing.T) {
	w := newWorld(t, Config{DedupWindow: 2 * time.Second}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	w.create(l, "vax2", "job", proc.GPID{})
	w.run(time.Second)
	_ = w.snapshot(l)
	l2 := w.lpms["vax2/felipe"]
	if l2.SeenStamps() == 0 {
		t.Fatal("no stamps retained after a flood")
	}
	exp := l2.expireSeenAt()
	if len(exp) == 0 {
		t.Fatal("expiry table empty")
	}
	// After the window passes and another flood arrives, old stamps
	// are evicted lazily.
	w.run(5 * time.Second)
	_ = w.snapshot(l)
	w.run(time.Second)
	if l2.SeenStamps() > 1 {
		t.Fatalf("expired stamps not evicted: %d retained", l2.SeenStamps())
	}
}

func TestTTLCCSFreezeWithSiblings(t *testing.T) {
	w := newWorld(t, Config{TTL: 30 * time.Second}, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	la.Recovery().SetCCS("a")
	// A long-lived process on b keeps b's LPM alive; a has no local
	// user processes and goes idle, yet as the CCS with a live sibling
	// its time-to-live is frozen.
	id := w.create(la, "b", "long-job", proc.GPID{})
	w.run(10 * time.Minute)
	if la.Exited() {
		t.Fatal("CCS expired despite live sibling circuit")
	}
	lb := w.lpms["b/felipe"]
	if lb.Exited() {
		t.Fatal("LPM with a live user process expired")
	}
	// The job ends; b's LPM expires, unfreezing the CCS, which then
	// expires too.
	_, _ = w.control(la, id, wire.OpKill, 0)
	w.run(30 * time.Minute)
	if !lb.Exited() {
		t.Fatal("idle non-CCS LPM should have expired")
	}
	w.run(30 * time.Minute)
	if !la.Exited() {
		t.Fatal("CCS should expire once its siblings are gone")
	}
}

func TestHelloToNonListeningPortRefused(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	// Corrupt the pmd's registration so ensureSibling dials a dead port.
	l2 := w.attach("vax2", u)
	l2.Exit() // closes the accept listener but stays registered? no: Exit unregisters.
	// Re-register a bogus address to simulate stale pmd information.
	// (The daemon API lacks a direct setter; exercise via a fresh query
	// that creates a new LPM instead.)
	var gotErr error
	done := false
	l.Create("vax2", "x", proc.GPID{}, func(_ proc.GPID, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	// A fresh LPM was created on demand, so this actually succeeds —
	// the on-demand property.
	if gotErr != nil {
		t.Fatalf("on-demand recreation failed: %v", gotErr)
	}
}

func TestSnapshotLocalOnlyWhenNoSiblings(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	w.create(l, "vax1", "only", proc.GPID{})
	snap := w.snapshot(l)
	if len(snap.Procs) != 1 || snap.Procs[0].Name != "only" {
		t.Fatalf("snapshot = %+v", snap.Procs)
	}
	if len(snap.Partial) != 0 {
		t.Fatalf("partial = %v", snap.Partial)
	}
}

func TestPingUnknownHostFails(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	var gotErr error
	done := false
	l.Ping("ghost", func(_ wire.Pong, err error) { gotErr, done = err, true })
	w.until(func() bool { return done })
	if gotErr == nil {
		t.Fatal("ping to unknown host should fail")
	}
}

func TestControlAllWithNoSiblings(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	w.create(l, "vax1", "a", proc.GPID{})
	w.create(l, "vax1", "b", proc.GPID{})
	var count int
	done := false
	l.ControlAll(wire.OpStop, 0, func(n int, err error) {
		if err != nil {
			t.Fatal(err)
		}
		count, done = n, true
	})
	w.until(func() bool { return done })
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestEnsureSiblingCoalescesConcurrentDials(t *testing.T) {
	w := newWorld(t, Config{}, []string{"vax1", "vax2"})
	u := w.user("felipe", "vax1", "vax2")
	l := w.attach("vax1", u)
	// Two creates issued back-to-back before the first circuit exists:
	// the dials coalesce into one LPM query and one circuit.
	done := 0
	for i := 0; i < 2; i++ {
		l.Create("vax2", "job", proc.GPID{}, func(_ proc.GPID, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done++
		})
	}
	w.until(func() bool { return done == 2 })
	if got := w.net.Stats().ConnsOpened; got > 3 {
		// 1 pmd query conn + 1 sibling circuit (+1 slack for the
		// second pmd query if issued before coalescing kicked in).
		t.Fatalf("conns opened = %d, dials did not coalesce", got)
	}
	if len(l.SiblingHosts()) != 1 {
		t.Fatalf("siblings = %v", l.SiblingHosts())
	}
}

func TestHistoryCapacityBoundsLPMStore(t *testing.T) {
	w := newWorld(t, Config{HistoryCapacity: 8}, []string{"vax1"})
	u := w.user("felipe")
	l := w.attach("vax1", u)
	id := w.create(l, "vax1", "chatty", proc.GPID{})
	_ = w.kerns["vax1"].SetTraceMask(id.PID, "felipe", kernel.TraceAll)
	for i := 0; i < 50; i++ {
		_ = w.kerns["vax1"].Syscall(id.PID, "read")
	}
	w.run(5 * time.Second)
	if l.History().Len() > 8 {
		t.Fatalf("store grew past capacity: %d", l.History().Len())
	}
	if l.History().Dropped() == 0 {
		t.Fatal("no drops recorded despite overflow")
	}
}

func TestFloodPartialWhenChildPartitionedMidFlood(t *testing.T) {
	// Short flood timeout so the test converges quickly.
	w := newWorld(t, Config{FloodTimeout: 5 * time.Second}, []string{"a", "b", "c"})
	u := w.user("felipe", "a", "b", "c")
	la := w.attach("a", u)
	w.create(la, "b", "pb", proc.GPID{})
	lb := w.lpms["b/felipe"]
	w.create(lb, "c", "pc", proc.GPID{})
	w.run(time.Second)

	// Partition c away; b's circuit to c will break only after the
	// 1s detection delay, so a flood launched immediately races it.
	if err := w.net.Partition([]string{"a", "b"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	snap := w.snapshot(la)
	found := false
	for _, h := range snap.Partial {
		if h == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("partial = %v, want c reported", snap.Partial)
	}
	// b's fragment still arrived.
	hostCovered := false
	for _, p := range snap.Procs {
		if p.ID.Host == "b" {
			hostCovered = true
		}
	}
	if !hostCovered {
		t.Fatal("b's processes missing")
	}
}

func TestHistoryOfRemoteLPM(t *testing.T) {
	w := newWorld(t, Config{}, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	id := w.create(la, "b", "job", proc.GPID{})
	_, _ = w.control(la, id, wire.OpStop, 0)
	w.run(time.Second)
	var evs []proc.Event
	done := false
	la.HistoryOf("b", history.Query{Proc: id}, func(e []proc.Event, err error) {
		if err != nil {
			t.Fatal(err)
		}
		evs, done = e, true
	})
	w.until(func() bool { return done })
	foundStop := false
	for _, ev := range evs {
		if ev.Kind == proc.EvStop {
			foundStop = true
		}
	}
	if !foundStop {
		t.Fatalf("remote history = %+v", evs)
	}
	// Local host shortcut path.
	done = false
	la.HistoryOf("", history.Query{}, func(e []proc.Event, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.until(func() bool { return done })
	// Exited LPM path.
	la.Exit()
	gotErr := error(nil)
	done = false
	la.HistoryOf("b", history.Query{}, func(_ []proc.Event, err error) { gotErr, done = err, true })
	w.run(time.Second)
	if !done || !errors.Is(gotErr, ErrExited) {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
}

func TestWatchOnDirectAPI(t *testing.T) {
	w := newWorld(t, Config{}, []string{"a", "b"})
	u := w.user("felipe", "a", "b")
	la := w.attach("a", u)
	sentinel := w.create(la, "b", "sentinel", proc.GPID{})
	local := w.create(la, "a", "local", proc.GPID{})
	w.run(time.Second)
	var remove func()
	done := false
	la.WatchOn("b", &history.Watch{Kind: proc.EvExit, Proc: sentinel},
		wire.OpStop, 0, local, func(rm func(), err error) {
			if err != nil {
				t.Fatal(err)
			}
			remove, done = rm, true
		})
	w.until(func() bool { return done })
	_ = w.kerns["b"].Exit(sentinel.PID, 0)
	w.run(2 * time.Second)
	p, _ := w.kerns["a"].Lookup(local.PID)
	if p.State != proc.Stopped {
		t.Fatalf("cross-host watch action failed: %v", p.State)
	}
	remove()
	w.run(time.Second)
}
