package lpm

import (
	"fmt"
	"time"

	"ppm/internal/calib"
	"ppm/internal/detord"
	"ppm/internal/history"
	"ppm/internal/journal"
	"ppm/internal/kernel"
	"ppm/internal/proc"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// Operations exposed to tools. Each call models the tool <-> LPM
// exchange over a local IPC socket: the request pays one tool leg of
// CPU before processing and the reply pays another before the callback
// runs. All callbacks execute on the shared scheduler.

// toolCall wraps an operation in the two tool legs: the request pays
// one leg before op runs, and op must route its completion through the
// provided done function, which pays the reply leg before running the
// continuation. When tracing is enabled a root "op.<name>" span covers
// the whole exchange and its context is handed to op for propagation;
// on untraced runs ctx is invalid and every downstream span call
// no-ops.
func (l *LPM) toolCall(name string, op func(ctx trace.Context, done func(func()))) {
	l.Stats.RequestsServed++
	l.metrics.Counter("lpm.requests_served").Inc()
	l.touch()
	root := l.tracer.StartTrace(l.Host(), "op."+name)
	ctx := root.Context()
	l.execSpan(ctx, "exec.tool_leg", calib.ToolLeg, func() {
		op(ctx, func(fin func()) {
			l.execSpan(ctx, "exec.tool_leg", calib.ToolLeg, func() {
				root.End()
				fin()
			})
		})
	})
}

// execSpan charges cost on this host's CPU under an "exec.*" span, so
// post-hoc attribution sees the kernel work as the profiler's kernel
// phase instead of an unattributed gap. With an invalid ctx the span
// no-ops and only the CPU charge remains. The untraced fast path skips
// the wrapping closure entirely: instrumentation must not tax hot
// paths it is not observing.
func (l *LPM) execSpan(ctx trace.Context, name string, cost time.Duration, fn func()) {
	if !l.tracer.Enabled() {
		l.kern.ExecCPU(cost, fn)
		return
	}
	sp := l.tracer.StartSpan(l.Host(), name, ctx)
	l.kern.ExecCPU(cost, func() {
		sp.End()
		fn()
	})
}

// Adopt asks the LPM to adopt a local process (and thereby its future
// descendants). Adoption may be necessary when the user did not invoke
// the PPM at login time, and is the hook a debugger would use.
func (l *LPM) Adopt(pid proc.PID, cb func(error)) {
	if l.exited {
		l.sched.Defer(func() { cb(ErrExited) })
		return
	}
	l.toolCall("adopt", func(ctx trace.Context, done func(func())) {
		l.execSpan(ctx, "exec.adopt", calib.Adopt, func() {
			var err error
			l.withTraceCtx(ctx, func() { err = l.kern.Adopt(pid, l.user.Name) })
			if err == nil {
				l.metrics.Counter("lpm.adoptions").Inc()
				l.journal.AppendCtx(journal.LPMAdopt, l.Host(),
					fmt.Sprintf("user=%s pid=%d", l.user.Name, pid), ctx.Trace, ctx.Span)
				if info, ierr := l.kern.Info(pid); ierr == nil {
					l.records[pid] = info
				}
			}
			done(func() { cb(err) })
		})
	})
}

// SetTraceMask adjusts event granularity for an adopted process.
func (l *LPM) SetTraceMask(pid proc.PID, mask kernel.TraceMask, cb func(error)) {
	if l.exited {
		l.sched.Defer(func() { cb(ErrExited) })
		return
	}
	l.toolCall("trace_mask", func(ctx trace.Context, done func(func())) {
		err := l.kern.SetTraceMask(pid, l.user.Name, mask)
		done(func() { cb(err) })
	})
}

// AddWatch installs a history-dependent trigger (event driven user
// defined actions).
func (l *LPM) AddWatch(w *history.Watch) int { return l.store.AddWatch(w) }

// RemoveWatch uninstalls a trigger.
func (l *LPM) RemoveWatch(id int) { l.store.RemoveWatch(id) }

// --- process creation ---

// createLocal forks, execs and adopts a process on this host; the
// within-host creation path of Table 2 (77 ms).
func (l *LPM) createLocal(ctx trace.Context, req wire.CreateProc, cb func(wire.CreateAck)) {
	l.execSpan(ctx, "exec.create_dispatch", calib.CreateDispatch, func() {
		l.execSpan(ctx, "exec.fork", calib.Fork, func() {
			var p *kernel.Process
			var err error
			l.withTraceCtx(ctx, func() { p, err = l.kern.Fork(l.pid, req.Name) })
			if err != nil {
				cb(wire.CreateAck{OK: false, Reason: err.Error()})
				return
			}
			delete(l.myPids, p.PID) // it is a user process, not an LPM part
			parent := req.Parent
			if parent.IsZero() {
				parent = proc.GPID{Host: l.Host(), PID: l.pid}
			}
			//ppmlint:allow errdrop genealogy bookkeeping on a process forked just above; only fails if it vanished
			_ = l.kern.SetLogicalParent(p.PID, parent)
			//ppmlint:allow errdrop genealogy bookkeeping on a process forked just above; only fails if it vanished
			_ = l.kern.SetForeground(p.PID, req.Foreground)
			l.execSpan(ctx, "exec.exec", calib.Exec, func() {
				//ppmlint:allow errdrop exec outcome reaches the user through kernel events, not this return
				l.withTraceCtx(ctx, func() { _ = l.kern.Exec(p.PID, req.Name) })
				l.execSpan(ctx, "exec.adopt", calib.Adopt, func() {
					l.withTraceCtx(ctx, func() { err = l.kern.Adopt(p.PID, l.user.Name) })
					if err != nil {
						cb(wire.CreateAck{OK: false, Reason: err.Error()})
						return
					}
					l.metrics.Counter("lpm.adoptions").Inc()
					l.journal.AppendCtx(journal.LPMAdopt, l.Host(),
						fmt.Sprintf("user=%s pid=%d", l.user.Name, p.PID), ctx.Trace, ctx.Span)
					if info, ierr := l.kern.Info(p.PID); ierr == nil {
						l.records[p.PID] = info
					}
					cb(wire.CreateAck{OK: true, ID: proc.GPID{Host: l.Host(), PID: p.PID}})
				})
			})
		})
	})
}

// createForRemote is the creation server path: fork and adopt, ack
// immediately, and let exec complete asynchronously (its completion
// arrives at the requester as a kernel event via this LPM). This is the
// paper's 177 ms remote creation once a circuit exists.
func (l *LPM) createForRemote(ctx trace.Context, req wire.CreateProc, ack func(wire.CreateAck)) {
	l.execSpan(ctx, "exec.fork", calib.Fork, func() {
		var p *kernel.Process
		var err error
		l.withTraceCtx(ctx, func() { p, err = l.kern.Fork(l.pid, req.Name) })
		if err != nil {
			ack(wire.CreateAck{OK: false, Reason: err.Error()})
			return
		}
		delete(l.myPids, p.PID)
		//ppmlint:allow errdrop genealogy bookkeeping on a process forked just above; only fails if it vanished
		_ = l.kern.SetLogicalParent(p.PID, req.Parent)
		//ppmlint:allow errdrop genealogy bookkeeping on a process forked just above; only fails if it vanished
		_ = l.kern.SetForeground(p.PID, req.Foreground)
		l.execSpan(ctx, "exec.adopt", calib.Adopt, func() {
			l.withTraceCtx(ctx, func() { err = l.kern.Adopt(p.PID, l.user.Name) })
			if err != nil {
				ack(wire.CreateAck{OK: false, Reason: err.Error()})
				return
			}
			l.metrics.Counter("lpm.adoptions").Inc()
			l.journal.AppendCtx(journal.LPMAdopt, l.Host(),
				fmt.Sprintf("user=%s pid=%d", l.user.Name, p.PID), ctx.Trace, ctx.Span)
			if info, ierr := l.kern.Info(p.PID); ierr == nil {
				l.records[p.PID] = info
			}
			ack(wire.CreateAck{OK: true, ID: proc.GPID{Host: l.Host(), PID: p.PID}})
			// exec continues after the ack (the span is async relative
			// to its parent, like kernel event delivery).
			l.execSpan(ctx, "exec.exec", calib.Exec, func() {
				//ppmlint:allow errdrop exec outcome reaches the user through kernel events, not this return
				l.withTraceCtx(ctx, func() { _ = l.kern.Exec(p.PID, req.Name) })
			})
		})
	})
}

// Create starts a process with the given name on host (local or
// remote), adopted by the user's PPM, with the given logical parent.
func (l *LPM) Create(host, name string, parent proc.GPID, cb func(proc.GPID, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(proc.GPID{}, ErrExited) })
		return
	}
	req := wire.CreateProc{User: l.user.Name, Name: name, Parent: parent}
	l.toolCall("create", func(ctx trace.Context, done func(func())) {
		if host == l.Host() || host == "" {
			l.createLocal(ctx, req, func(a wire.CreateAck) {
				done(func() {
					if !a.OK {
						cb(proc.GPID{}, fmt.Errorf("%w: %s", ErrRemote, a.Reason))
						return
					}
					cb(a.ID, nil)
				})
			})
			return
		}
		l.remoteCall(ctx, host, wire.MsgCreateProc, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(proc.GPID{}, err)
					return
				}
				a, derr := wire.DecodeCreateAck(env.Body)
				if derr != nil {
					cb(proc.GPID{}, derr)
					return
				}
				if !a.OK {
					cb(proc.GPID{}, fmt.Errorf("%w: %s", ErrRemote, a.Reason))
					return
				}
				cb(a.ID, nil)
			})
		})
	})
}

// --- process control ---

// applyControl performs a control operation on a local process.
func (l *LPM) applyControl(target proc.PID, op wire.ControlOp, sig proc.Signal) wire.ControlResp {
	var err error
	switch op {
	case wire.OpStop:
		err = l.kern.Signal(target, proc.SIGSTOP)
	case wire.OpForeground:
		if err = l.kern.SetForeground(target, true); err == nil {
			err = l.kern.Signal(target, proc.SIGCONT)
		}
	case wire.OpBackground:
		if err = l.kern.SetForeground(target, false); err == nil {
			err = l.kern.Signal(target, proc.SIGCONT)
		}
	case wire.OpKill:
		err = l.kern.Signal(target, proc.SIGKILL)
	case wire.OpSignal:
		err = l.kern.Signal(target, sig)
	default:
		err = fmt.Errorf("%w: op %v", ErrBadRequest, op)
	}
	if err != nil {
		l.journal.Append(journal.LPMControl, l.Host(),
			fmt.Sprintf("op=%v pid=%d ok=false", op, target))
		return wire.ControlResp{OK: false, Reason: err.Error()}
	}
	l.journal.Append(journal.LPMControl, l.Host(),
		fmt.Sprintf("op=%v pid=%d ok=true", op, target))
	info, ierr := l.kern.Info(target)
	if ierr == nil {
		l.records[target] = info
	}
	return wire.ControlResp{OK: true, State: info.State}
}

// Control changes the state of one process anywhere in the network:
// stop, foreground, background, kill, or an arbitrary signal. There are
// no interprocess constraints based on creation dependencies.
func (l *LPM) Control(target proc.GPID, op wire.ControlOp, sig proc.Signal, cb func(wire.ControlResp, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(wire.ControlResp{}, ErrExited) })
		return
	}
	l.toolCall("control", func(ctx trace.Context, done func(func())) {
		if target.Host == l.Host() {
			csp := l.tracer.StartSpan(l.Host(), "dispatch.control", ctx)
			l.kern.ExecCPU(calib.ControlAction, func() {
				csp.End()
				var resp wire.ControlResp
				l.withTraceCtx(ctx, func() { resp = l.applyControl(target.PID, op, sig) })
				done(func() { cb(resp, nil) })
			})
			return
		}
		req := wire.Control{User: l.user.Name, Target: target, Op: op, Signal: sig}
		l.remoteCall(ctx, target.Host, wire.MsgControl, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(wire.ControlResp{}, err)
					return
				}
				resp, derr := wire.DecodeControlResp(env.Body)
				if derr != nil {
					cb(wire.ControlResp{}, derr)
					return
				}
				cb(resp, nil)
			})
		})
	})
}

// --- local information gathering ---

// localInfos returns snapshot records for the user's processes on this
// host, excluding the LPM's own dispatcher and handlers, merged with
// preserved exit records.
func (l *LPM) localInfos() []proc.Info {
	var out []proc.Info
	seen := make(map[proc.PID]bool)
	for _, p := range l.kern.ProcessesOf(l.user.Name) {
		if l.myPids[p.ID.PID] {
			continue
		}
		out = append(out, p)
		seen[p.ID.PID] = true
	}
	// Records the kernel no longer holds (reaped) but the LPM retained,
	// in pid order so the encoded fragment is byte-stable.
	var reaped []proc.PID
	for _, pid := range detord.Keys(l.records) {
		if !seen[pid] && !l.myPids[pid] {
			if _, err := l.kern.Lookup(pid); err != nil {
				reaped = append(reaped, pid)
			}
		}
	}
	for _, pid := range reaped {
		out = append(out, l.records[pid])
	}
	return out
}

// gatherCost is the CPU demand of collecting and encoding snapshot
// information for n local processes.
func gatherCost(n int) time.Duration {
	return time.Duration(n) * calib.GatherPerProc
}

// Stats returns the preserved resource-consumption record of a process
// (typically exited) on any host.
func (l *LPM) StatsOf(target proc.GPID, cb func(proc.Info, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(proc.Info{}, ErrExited) })
		return
	}
	l.toolCall("stats", func(ctx trace.Context, done func(func())) {
		if target.Host == l.Host() {
			info, err := l.localStats(target.PID)
			done(func() { cb(info, err) })
			return
		}
		req := wire.StatsReq{User: l.user.Name, Target: target}
		l.remoteCall(ctx, target.Host, wire.MsgStatsReq, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(proc.Info{}, err)
					return
				}
				resp, derr := wire.DecodeStatsResp(env.Body)
				if derr != nil {
					cb(proc.Info{}, derr)
					return
				}
				if !resp.OK {
					cb(proc.Info{}, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
					return
				}
				cb(resp.Info, nil)
			})
		})
	})
}

func (l *LPM) localStats(pid proc.PID) (proc.Info, error) {
	if info, ok := l.store.ExitedInfo(proc.GPID{Host: l.Host(), PID: pid}); ok {
		return info, nil
	}
	if info, err := l.kern.Info(pid); err == nil {
		return info, nil
	}
	if info, ok := l.records[pid]; ok {
		return info, nil
	}
	return proc.Info{}, fmt.Errorf("%w: no record of pid %d", ErrBadRequest, pid)
}

// FDs returns the open descriptors of a process on any host (one of the
// paper's planned tools, implemented).
func (l *LPM) FDs(target proc.GPID, cb func([]string, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(nil, ErrExited) })
		return
	}
	l.toolCall("fds", func(ctx trace.Context, done func(func())) {
		if target.Host == l.Host() {
			open, err := l.localFDs(target.PID)
			done(func() { cb(open, err) })
			return
		}
		req := wire.FDReq{User: l.user.Name, Target: target}
		l.remoteCall(ctx, target.Host, wire.MsgFDReq, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(nil, err)
					return
				}
				resp, derr := wire.DecodeFDResp(env.Body)
				if derr != nil {
					cb(nil, derr)
					return
				}
				if !resp.OK {
					cb(nil, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
					return
				}
				cb(resp.Open, nil)
			})
		})
	})
}

func (l *LPM) localFDs(pid proc.PID) ([]string, error) {
	p, err := l.kern.Lookup(pid)
	if err != nil {
		return nil, err
	}
	return p.OpenFDs(), nil
}

// HistoryQuery returns preserved events from this LPM's store.
func (l *LPM) HistoryQuery(q history.Query, cb func([]proc.Event, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(nil, ErrExited) })
		return
	}
	l.toolCall("history", func(ctx trace.Context, done func(func())) {
		evs := l.store.Select(q)
		done(func() { cb(evs, nil) })
	})
}

// HistoryOf queries the preserved event trace of the user's LPM on
// another host: events are recorded by the LPM local to each process,
// and remain accessible across the network even for activity that
// happened while the user was logged off.
func (l *LPM) HistoryOf(host string, q history.Query, cb func([]proc.Event, error)) {
	if l.exited {
		l.sched.Defer(func() { cb(nil, ErrExited) })
		return
	}
	if host == l.Host() || host == "" {
		l.HistoryQuery(q, cb)
		return
	}
	req := wire.HistoryReq{
		User: l.user.Name, Proc: q.Proc,
		Since: q.Since, Limit: uint16(q.Limit),
	}
	for _, k := range q.Kinds {
		req.Kinds = append(req.Kinds, uint8(k))
	}
	l.toolCall("history", func(ctx trace.Context, done func(func())) {
		l.remoteCall(ctx, host, wire.MsgHistoryReq, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(nil, err)
					return
				}
				resp, derr := wire.DecodeHistoryResp(env.Body)
				if derr != nil {
					cb(nil, derr)
					return
				}
				if !resp.OK {
					cb(nil, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
					return
				}
				cb(resp.Events, nil)
			})
		})
	})
}

// --- inbound request dispatch ---

// handleRequest serves a request arriving over a sibling circuit. The
// per-endpoint protocol cost has already been charged by onSiblingMsg.
//
// Requests carrying an operation id pass through the at-most-once
// filter first: an already-executed operation is answered from the
// reply cache without re-executing, and a duplicate of an operation
// still in flight is dropped (the sender's next retry finds the cached
// reply).
func (l *LPM) handleRequest(sb *sibling, env wire.Envelope) {
	l.Stats.RequestsServed++
	l.metrics.Counter("lpm.requests_served").Inc()
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}

	if env.Type == wire.MsgCCSUpdate {
		upd, err := wire.DecodeCCSUpdate(env.Body)
		if err == nil && upd.CCSHost != "" {
			l.rec.SetCCS(upd.CCSHost)
		}
		return // One-way: no reply.
	}

	reply := func(t wire.MsgType, body []byte) {
		l.sendReply(ctx, sb, env.ReqID, t, body)
	}
	if env.OpID != 0 && dedupable(env.Type) {
		now := l.sched.Now().Duration()
		l.evictInflight(now)
		// The peer's incarnation scopes its op ids: a restarted origin
		// renumbers from zero under a fresh incarnation, so its fresh
		// operations can never hit a predecessor's cache entries.
		key := wire.OpKey(sb.host, sb.inc, env.OpID)
		if r, ok := l.replies.Get(key); ok {
			// Replay: the operation already executed; answer the
			// retransmit from the cache under the new ReqID.
			l.metrics.Counter("lpm.dedup.replays").Inc()
			l.journal.AppendCtx(journal.LPMOpReplay, l.Host(),
				fmt.Sprintf("user=%s op=%s type=%v", l.user.Name, key, r.Type),
				ctx.Trace, ctx.Span)
			reply(r.Type, r.Body)
			return
		}
		if _, ok := l.inflightOps[key]; ok {
			l.metrics.Counter("lpm.dedup.inflight_drops").Inc()
			return
		}
		l.inflightOps[key] = now
		l.inflightQ = append(l.inflightQ, inflightEntry{key: key, at: now})
		l.journal.AppendCtx(journal.LPMOpExec, l.Host(),
			fmt.Sprintf("user=%s op=%s type=%v", l.user.Name, key, env.Type),
			ctx.Trace, ctx.Span)
		send := reply
		reply = func(t wire.MsgType, body []byte) {
			delete(l.inflightOps, key)
			l.replies.Put(key, t, body, l.sched.Now().Duration())
			send(t, body)
		}
	}

	switch env.Type {
	case wire.MsgBroadcast:
		l.handleFlood(sb, env, reply)

	case wire.MsgRelay:
		l.handleRelay(sb, env, reply)

	default:
		l.serveRequest(ctx, env, reply)
	}
}

// inflightEntry is one slot of the in-flight-op eviction queue.
type inflightEntry struct {
	key string
	at  time.Duration
}

// evictInflight drops in-flight markers whose retransmit window has
// passed: an execution path that never produced a reply would
// otherwise leak its key forever and permanently swallow every
// retransmission of that operation. Entries are only dropped after
// opWindow, when the origin's retry loop has certainly given up, so an
// execution still genuinely in progress keeps its duplicate
// protection for the whole span in which a retransmit can arrive. The
// queue is insertion ordered (= virtual-time ordered), so eviction
// inspects exactly the expired entries plus one.
func (l *LPM) evictInflight(now time.Duration) {
	for l.inflightHead < len(l.inflightQ) {
		e := l.inflightQ[l.inflightHead]
		if now-e.at <= l.opWindow {
			break
		}
		l.inflightHead++
		// The marker may have been removed (reply sent, or origin
		// incarnation purge); only drop the registration this slot
		// describes.
		if at, ok := l.inflightOps[e.key]; ok && at == e.at {
			delete(l.inflightOps, e.key)
		}
	}
	// Reclaim the drained prefix once it dominates the slice.
	if l.inflightHead > len(l.inflightQ)/2 {
		l.inflightQ = append([]inflightEntry(nil), l.inflightQ[l.inflightHead:]...)
		l.inflightHead = 0
	}
}

// dedupable classifies the request types held to at-most-once
// execution. Control operations, process creations, watch
// installations and broadcast echoes are not idempotent: re-executing
// a retransmit would signal twice, fork twice, install two watches, or
// answer Dup for a subtree whose data the first echo already carried.
// Snapshot, stats, FD, history and ping requests are read-only and may
// re-execute freely.
func dedupable(t wire.MsgType) bool {
	switch t {
	case wire.MsgControl, wire.MsgCreateProc, wire.MsgWatch, wire.MsgBroadcast,
		wire.MsgProcExit:
		// ProcExit appends to the home history store and fires watches
		// there; a re-executed retransmit would fire them twice.
		return true
	default:
		return false
	}
}

// serveRequest executes one point-to-point request and produces its
// reply through the given function; the transport (direct circuit or
// relay) is the caller's concern. ctx is the request's trace context,
// under which the serving-side kernel work records spans.
func (l *LPM) serveRequest(ctx trace.Context, env wire.Envelope, reply func(t wire.MsgType, body []byte)) {
	switch env.Type {
	case wire.MsgCreateProc:
		req, err := wire.DecodeCreateProc(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgCreateAck, wire.CreateAck{OK: false, Reason: "bad create request"}.Encode())
			return
		}
		l.createForRemote(ctx, req, func(a wire.CreateAck) {
			reply(wire.MsgCreateAck, a.Encode())
		})

	case wire.MsgControl:
		req, err := wire.DecodeControl(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgControlResp, wire.ControlResp{OK: false, Reason: "bad control request"}.Encode())
			return
		}
		csp := l.tracer.StartSpan(l.Host(), "dispatch.control", ctx)
		l.kern.ExecCPU(calib.ControlAction, func() {
			csp.End()
			var resp wire.ControlResp
			l.withTraceCtx(ctx, func() { resp = l.applyControl(req.Target.PID, req.Op, req.Signal) })
			reply(wire.MsgControlResp, resp.Encode())
		})

	case wire.MsgSnapshotReq:
		req, err := wire.DecodeSnapshotReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgSnapshotResp, wire.SnapshotResp{OK: false, Reason: "bad snapshot request"}.Encode())
			return
		}
		infos := l.localInfos()
		l.execSpan(ctx, "exec.gather", gatherCost(len(infos)), func() {
			reply(wire.MsgSnapshotResp, wire.SnapshotResp{OK: true, Procs: infos}.Encode())
		})

	case wire.MsgStatsReq:
		req, err := wire.DecodeStatsReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgStatsResp, wire.StatsResp{OK: false, Reason: "bad stats request"}.Encode())
			return
		}
		info, serr := l.localStats(req.Target.PID)
		resp := wire.StatsResp{OK: serr == nil, Info: info}
		if serr != nil {
			resp.Reason = serr.Error()
		}
		reply(wire.MsgStatsResp, resp.Encode())

	case wire.MsgFDReq:
		req, err := wire.DecodeFDReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgFDResp, wire.FDResp{OK: false, Reason: "bad fd request"}.Encode())
			return
		}
		open, ferr := l.localFDs(req.Target.PID)
		resp := wire.FDResp{OK: ferr == nil, Open: open}
		if ferr != nil {
			resp.Reason = ferr.Error()
		}
		reply(wire.MsgFDResp, resp.Encode())

	case wire.MsgHistoryReq:
		req, err := wire.DecodeHistoryReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgHistoryResp, wire.HistoryResp{OK: false, Reason: "bad history request"}.Encode())
			return
		}
		q := history.Query{Proc: req.Proc, Since: req.Since, Limit: int(req.Limit)}
		for _, k := range req.Kinds {
			q.Kinds = append(q.Kinds, proc.EventKind(k))
		}
		evs := l.store.Select(q)
		reply(wire.MsgHistoryResp, wire.HistoryResp{OK: true, Events: evs}.Encode())

	case wire.MsgWatch:
		req, err := wire.DecodeWatchReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgWatchResp, wire.WatchResp{OK: false, Reason: "bad watch request"}.Encode())
			return
		}
		if req.Remove {
			l.store.RemoveWatch(int(req.ID))
			reply(wire.MsgWatchResp, wire.WatchResp{OK: true, ID: req.ID}.Encode())
			return
		}
		action := req // capture
		w := &history.Watch{
			Kind:   proc.EventKind(req.Kind),
			Signal: req.Signal,
			Proc:   req.Proc,
			Action: func(proc.Event) { l.runWatchAction(action) },
		}
		id := l.store.AddWatch(w)
		reply(wire.MsgWatchResp, wire.WatchResp{OK: true, ID: int32(id)}.Encode())

	case wire.MsgStatusReq:
		req, err := wire.DecodeStatusReq(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgStatusResp, wire.StatusResp{OK: false, Reason: "bad status request"}.Encode())
			return
		}
		// Read-only: the report is rebuilt on every (re)transmission, so
		// the op needs no at-most-once identity. Encode before charging
		// the gather cost — the scratch report may be reused by the time
		// the CPU callback runs.
		l.BuildStatus(&l.statusScratch)
		report := l.statusScratch.Encode()
		l.execSpan(ctx, "exec.gather", gatherCost(l.statusScratch.ProcsTotal), func() {
			reply(wire.MsgStatusResp, wire.StatusResp{OK: true, Report: report}.Encode())
		})

	case wire.MsgPing:
		pong := wire.Pong{
			FromHost: l.Host(),
			CCSHost:  l.rec.CCS(),
			IsCCS:    l.rec.IsCCS(),
		}
		reply(wire.MsgPong, pong.Encode())

	case wire.MsgLinkTest:
		// Heartbeat for the accrual failure detector. The frame's
		// arrival was already observed by the circuit layer; the echo
		// gives the sender's detector a sample in turn.
		req, err := wire.DecodeLinkTest(env.Body)
		if err != nil {
			reply(wire.MsgError, wire.ErrorResp{Reason: "bad linktest"}.Encode())
			return
		}
		reply(wire.MsgLinkTestResp, wire.LinkTestResp{FromHost: l.Host(), Seq: req.Seq}.Encode())

	case wire.MsgProcExit:
		// A remote kernel's LPM forwarding a watched process's exit
		// home: append the exit event to the home history store (which
		// fires home-declared watches) and index the final record.
		req, err := wire.DecodeProcExit(env.Body)
		if err != nil || req.User != l.user.Name {
			reply(wire.MsgProcExitResp, wire.ProcExitResp{OK: false, Reason: "bad exit notification"}.Encode())
			return
		}
		l.withTraceCtx(ctx, func() { l.store.Append(req.Event) })
		l.store.RecordExit(req.Info)
		reply(wire.MsgProcExitResp, wire.ProcExitResp{OK: true}.Encode())

	default:
		reply(wire.MsgError, wire.ErrorResp{Reason: fmt.Sprintf("unhandled %v", env.Type)}.Encode())
	}
}

// handleRelay forwards a relayed request one hop (or serves it when
// this host is the destination), sending the response back through
// reply on the circuit it arrived on. The per-hop forward is a single
// attempt: relayed operations carry no op id, so a hop cannot prove a
// lost echo did not execute and must surface the error instead of
// risking a duplicate (see DESIGN.md).
func (l *LPM) handleRelay(sb *sibling, env wire.Envelope, reply func(wire.MsgType, []byte)) {
	ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
	fail := func(reason string) {
		reply(wire.MsgRelayResp, wire.RelayResp{OK: false, Reason: reason}.Encode())
	}
	rel, err := wire.DecodeRelay(env.Body)
	if err != nil || rel.User != l.user.Name {
		fail("bad relay request")
		return
	}
	if rel.Dest == l.Host() {
		inner, derr := wire.DecodeEnvelopeLogged(rel.Inner, l.journal, l.Host())
		if derr != nil || inner.Type == wire.MsgRelay || inner.Type == wire.MsgBroadcast {
			fail("bad relayed payload")
			return
		}
		l.serveRequest(ctx, inner, func(t wire.MsgType, body []byte) {
			respEnv := wire.Envelope{Type: t, Body: body}
			reply(wire.MsgRelayResp, wire.RelayResp{OK: true, Inner: respEnv.Encode()}.Encode())
		})
		return
	}
	// Forward along the path.
	if len(rel.Path) == 0 {
		fail("relay path exhausted before destination")
		return
	}
	next := rel.Path[0]
	nsb, ok := l.siblings[next]
	if !ok || !nsb.authed || !nsb.conn.Open() {
		fail(fmt.Sprintf("relay: no circuit to next hop %s", next))
		return
	}
	l.Stats.RelaysForwarded++
	l.metrics.Counter("lpm.relay.forwarded").Inc()
	l.journal.AppendCtx(journal.LPMRelayForward, l.Host(),
		fmt.Sprintf("user=%s dest=%s next=%s", rel.User, rel.Dest, next), ctx.Trace, ctx.Span)
	fwd := wire.Relay{User: rel.User, Dest: rel.Dest, Path: rel.Path[1:], Inner: rel.Inner}
	l.sendRequest(ctx, nsb, wire.MsgRelay, fwd.Encode(), 0, func(resp wire.Envelope, err error) {
		if err != nil {
			fail(fmt.Sprintf("relay via %s: %v", next, err))
			return
		}
		reply(wire.MsgRelayResp, resp.Body)
	})
}

// runWatchAction applies a remotely installed watch's control action:
// locally through the control block, or forwarded when the action's
// target lives on another host — history-dependent events triggering
// process state changes anywhere in the network.
func (l *LPM) runWatchAction(req wire.WatchReq) {
	if l.exited {
		return
	}
	if req.Target.Host == l.Host() {
		l.kern.ExecCPU(calib.ControlAction, func() {
			_ = l.applyControl(req.Target.PID, req.Op, req.ActionSig)
		})
		return
	}
	body := wire.Control{
		User: l.user.Name, Target: req.Target, Op: req.Op, Signal: req.ActionSig,
	}.Encode()
	l.remoteCall(trace.Context{}, req.Target.Host, wire.MsgControl, body, func(wire.Envelope, error) {})
}

// WatchOn installs a history-dependent trigger on the user's LPM on
// another host: when a matching event arrives there, op (with sig) is
// applied to target. The returned remover uninstalls it.
func (l *LPM) WatchOn(host string, w *history.Watch, op wire.ControlOp,
	sig proc.Signal, target proc.GPID, cb func(remove func(), err error)) {
	if l.exited {
		l.sched.Defer(func() { cb(nil, ErrExited) })
		return
	}
	req := wire.WatchReq{
		User:      l.user.Name,
		Kind:      uint8(w.Kind),
		Signal:    w.Signal,
		Proc:      w.Proc,
		Op:        op,
		ActionSig: sig,
		Target:    target,
	}
	l.toolCall("watch", func(ctx trace.Context, done func(func())) {
		l.remoteCall(ctx, host, wire.MsgWatch, req.Encode(), func(env wire.Envelope, err error) {
			done(func() {
				if err != nil {
					cb(nil, err)
					return
				}
				resp, derr := wire.DecodeWatchResp(env.Body)
				if derr != nil {
					cb(nil, derr)
					return
				}
				if !resp.OK {
					cb(nil, fmt.Errorf("%w: %s", ErrRemote, resp.Reason))
					return
				}
				remove := func() {
					rm := wire.WatchReq{User: l.user.Name, Remove: true, ID: resp.ID}
					l.remoteCall(trace.Context{}, host, wire.MsgWatch, rm.Encode(), func(wire.Envelope, error) {})
				}
				cb(remove, nil)
			})
		})
	})
}
