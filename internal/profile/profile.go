// Package profile is the post-hoc virtual-time profiler: it consumes a
// run's trace spans (internal/trace) and journal records
// (internal/journal) and answers the administrator's question the
// paper's Section 7 data-reduction tools exist for — *where did the
// time of this operation go?*
//
// Three products come out of one Build:
//
//   - per-request phase attribution: every instant of an operation's
//     end-to-end window is assigned to exactly one phase — request
//     network transit, reply transit, dispatch queueing, retry
//     backoff, kernel exec — or reported as unattributed. The
//     assignment is a sweep over the window: at each instant the
//     deepest covering classified span wins, so by construction the
//     phases plus the unattributed remainder sum exactly to the
//     request's total (the conservation invariant Request.Conserved
//     checks);
//   - critical-path extraction: for a multi-hop fan-out (flood,
//     snapshot, status sweep) the longest dependent chain of child
//     spans — at every level the child whose completion gated its
//     parent's — with per-hop slack;
//   - aggregation: per-op-type phase tables, a flamegraph-compatible
//     folded-stacks export weighted by span self-time, and per-host
//     busy/queue-depth timelines.
//
// Everything is deterministic: spans are processed in creation order,
// maps are iterated through detord, and ties in the sweep are broken
// by (depth, phase, span ID) — two same-seed runs render byte-identical
// reports.
package profile

import (
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/trace"
)

// Phase is one attribution bucket of the profiler.
type Phase int

// The phases, in tie-break priority order (a lower phase wins when two
// classified spans cover the same instant at equal depth).
const (
	PhaseNetwork  Phase = iota // request/forward transit: net.hop.*, net.loopback
	PhaseReply                 // reply transit: net.reply.*, net.loopback.reply
	PhaseDispatch              // dispatch.*: endpoint, pmd and control dispatch costs
	PhaseBackoff               // lpm.retry.*: retry-engine backoff waits
	PhaseKernel                // exec.* and kernel.*: kernel work and event delivery
	PhaseUnattributed
	numPhases
)

var phaseNames = [numPhases]string{
	"network", "reply", "dispatch", "backoff", "kernel", "unattributed",
}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// classify maps a span name to its phase. Structural spans — the op
// root, handler-occupancy windows (lpm.request.*), circuit
// establishment and the pmd name-server exchange — return ok=false:
// they bound other spans rather than doing work themselves, and any
// instant only they cover is honestly unattributed.
func classify(name string) (Phase, bool) {
	switch {
	case strings.HasPrefix(name, "net.reply.") || name == "net.loopback.reply":
		return PhaseReply, true
	case strings.HasPrefix(name, "net."):
		return PhaseNetwork, true
	case strings.HasPrefix(name, "dispatch."):
		return PhaseDispatch, true
	case strings.HasPrefix(name, "lpm.retry."):
		return PhaseBackoff, true
	case strings.HasPrefix(name, "exec.") || strings.HasPrefix(name, "kernel."):
		return PhaseKernel, true
	}
	return 0, false
}

// Request is the phase attribution of one traced operation.
type Request struct {
	Trace    uint64
	Op       string // root span name, e.g. "op.snapshot"
	Host     string // originating host
	Start    time.Duration
	End      time.Duration
	Phases   [numPhases]time.Duration
	Spans    int // spans recorded under this trace
	Retries  int // lpm.request.retry journal records under this trace
	Timeouts int // lpm.request.timeout journal records under this trace
}

// Total is the request's end-to-end virtual time.
func (r Request) Total() time.Duration { return r.End - r.Start }

// Attributed is the total minus the unattributed remainder.
func (r Request) Attributed() time.Duration {
	return r.Total() - r.Phases[PhaseUnattributed]
}

// Conserved checks the conservation invariant: the phase buckets
// (unattributed included) sum exactly to the end-to-end total.
func (r Request) Conserved() bool {
	var sum time.Duration
	for _, d := range r.Phases {
		sum += d
	}
	return sum == r.Total()
}

// Hop is one element of a critical path. Depth is the hop's tree depth
// under the op root (the report indents by it): consecutive hops at
// equal depth are siblings that gated one another in time; a deeper
// hop explains the interval of the hop above it.
type Hop struct {
	Span  uint64
	Host  string
	Name  string
	Depth int
	Start time.Duration
	End   time.Duration
	// Slack is the idle gap between this hop completing and the next
	// dependent activity starting (the parent's completion, for a
	// final hop): how far the hop could slip without delaying the
	// chain. The root carries zero slack.
	Slack time.Duration
}

// Profile is the analyzed form of one run.
type Profile struct {
	Requests []Request

	spans    []trace.SpanData
	byID     map[uint64]int   // span ID -> index into spans
	children map[uint64][]int // span ID -> child indices, ordered (Start, ID)
	byTrace  map[uint64][]int // trace ID -> span indices, creation order
}

// Build analyzes a run. Both inputs are optional views of the same
// run: spans drive the attribution, records contribute the
// retry/timeout cross-links (a nil records slice just zeroes those).
func Build(spans []trace.SpanData, records []journal.Record) *Profile {
	p := &Profile{
		spans:    spans,
		byID:     make(map[uint64]int, len(spans)),
		children: make(map[uint64][]int),
		byTrace:  make(map[uint64][]int),
	}
	for i, s := range spans {
		p.byID[s.ID] = i
		p.byTrace[s.Trace] = append(p.byTrace[s.Trace], i)
	}
	for i, s := range spans {
		if s.Parent == 0 {
			continue
		}
		if _, ok := p.byID[s.Parent]; ok {
			p.children[s.Parent] = append(p.children[s.Parent], i)
		}
	}
	for _, idxs := range p.children {
		detord.SortBy2(idxs,
			func(i int) time.Duration { return p.spans[i].Start },
			func(i int) uint64 { return p.spans[i].ID })
	}
	retries := make(map[uint64]int)
	timeouts := make(map[uint64]int)
	for _, r := range records {
		if r.Trace == 0 {
			continue
		}
		switch r.Kind {
		case journal.LPMRetry:
			retries[r.Trace]++
		case journal.LPMTimeout:
			timeouts[r.Trace]++
		}
	}
	var sw sweeper
	for i, s := range spans {
		if s.Parent != 0 || !strings.HasPrefix(s.Name, "op.") {
			continue
		}
		req := Request{
			Trace: s.Trace, Op: s.Name, Host: s.Host,
			Start: s.Start, End: s.End,
			Spans:    len(p.byTrace[s.Trace]),
			Retries:  retries[s.Trace],
			Timeouts: timeouts[s.Trace],
		}
		req.Phases = sw.attribute(p, i)
		p.Requests = append(p.Requests, req)
	}
	return p
}

// sweeper carries the scratch state of the attribution sweep, reused
// across requests so per-request analysis settles into zero steady
// allocations.
type sweeper struct {
	cand   []candidate
	bounds []time.Duration
}

// candidate is a classified span clipped to the request window.
type candidate struct {
	start, end time.Duration
	depth      int
	phase      Phase
	id         uint64
}

// attribute assigns every instant of the root span's window to a phase:
// for each elementary interval between span boundaries, the deepest
// covering classified span wins (ties: lower phase, then lower span
// ID); instants covered only by structural spans — or by nothing — are
// unattributed. The buckets sum exactly to the window by construction.
func (sw *sweeper) attribute(p *Profile, rootIdx int) [numPhases]time.Duration {
	var out [numPhases]time.Duration
	root := p.spans[rootIdx]
	lo, hi := root.Start, root.End
	if hi <= lo {
		return out
	}
	sw.cand = sw.cand[:0]
	sw.bounds = sw.bounds[:0]
	sw.bounds = append(sw.bounds, lo, hi)
	// Depth-first walk of the root's subtree, collecting classified
	// spans clipped to the window.
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := p.spans[idx]
		if idx != rootIdx {
			if ph, ok := classify(s.Name); ok {
				cs, ce := s.Start, s.End
				if cs < lo {
					cs = lo
				}
				if ce > hi {
					ce = hi
				}
				if ce > cs {
					sw.cand = append(sw.cand,
						candidate{start: cs, end: ce, depth: depth, phase: ph, id: s.ID})
					sw.bounds = append(sw.bounds, cs, ce)
				}
			}
		}
		for _, c := range p.children[s.ID] {
			walk(c, depth+1)
		}
	}
	walk(rootIdx, 0)
	detord.Sort(sw.bounds)
	prev := sw.bounds[0]
	for _, b := range sw.bounds[1:] {
		if b == prev {
			continue
		}
		// The elementary interval [prev, b): boundaries include every
		// candidate edge, so coverage is all-or-nothing per interval.
		best := -1
		for i, c := range sw.cand {
			if c.start > prev || c.end < b {
				continue
			}
			if best < 0 || deeper(c, sw.cand[best]) {
				best = i
			}
		}
		if best >= 0 {
			out[sw.cand[best].phase] += b - prev
		} else {
			out[PhaseUnattributed] += b - prev
		}
		prev = b
	}
	return out
}

// deeper reports whether candidate a beats candidate b in the sweep:
// greater depth, then lower phase, then lower span ID.
func deeper(a, b candidate) bool {
	if a.depth != b.depth {
		return a.depth > b.depth
	}
	if a.phase != b.phase {
		return a.phase < b.phase
	}
	return a.id < b.id
}

// CriticalPath extracts the longest dependent chain of one trace. At
// every span, the chain is found by walking backward from the span's
// completion: the child whose end gated the cursor is picked, the
// cursor moves to that child's start, and the walk repeats — so a
// fan-out's path runs through the leg that finished last, and serial
// stages (the reply tool leg after the last flood echo) chain onto
// whatever they waited for. Each picked child is then expanded into
// its own sub-chain. A child that outlives the cursor (async kernel
// event delivery, the remote-create exec tail) never gates anything
// and is skipped. Hops come out in time order, depth-annotated.
// Returns nil for an unknown trace or one without an op root.
func (p *Profile) CriticalPath(traceID uint64) []Hop {
	rootIdx := -1
	for _, i := range p.byTrace[traceID] {
		s := p.spans[i]
		if s.Parent == 0 && strings.HasPrefix(s.Name, "op.") {
			rootIdx = i
			break
		}
	}
	if rootIdx < 0 {
		return nil
	}
	var path []Hop
	var picks []int // scratch, reused via slicing inside expand
	var expand func(idx, depth int, slack time.Duration)
	expand = func(idx, depth int, slack time.Duration) {
		s := p.spans[idx]
		path = append(path, Hop{
			Span: s.ID, Host: s.Host, Name: s.Name, Depth: depth,
			Start: s.Start, End: s.End, Slack: slack,
		})
		mark := len(picks)
		cursor := s.End
		for {
			best := -1
			for _, c := range p.children[s.ID] {
				cs := p.spans[c]
				if cs.End > cursor || cs.End <= s.Start {
					continue
				}
				if best < 0 || cs.End > p.spans[best].End ||
					(cs.End == p.spans[best].End && cs.ID < p.spans[best].ID) {
					best = c
				}
			}
			if best < 0 {
				break
			}
			picks = append(picks, best)
			cursor = p.spans[best].Start
			if cursor <= s.Start {
				break
			}
		}
		// picks[mark:] is backward in time; expand forward, each hop's
		// slack being the gap to the next dependent start (or to the
		// parent's completion for the last hop).
		for i := len(picks) - 1; i >= mark; i-- {
			c := picks[i]
			next := s.End
			if i > mark {
				next = p.spans[picks[i-1]].Start
			}
			expand(c, depth+1, next-p.spans[c].End)
		}
		picks = picks[:mark]
	}
	expand(rootIdx, 0, 0)
	return path
}

// selfTime is the span's own interval minus the union of its
// children's intervals (clipped to the span) — the folded-stacks
// weight. scratch is reused for the child-interval merge.
func (p *Profile) selfTime(idx int, scratch *[]candidate) time.Duration {
	s := p.spans[idx]
	total := s.End - s.Start
	if total <= 0 {
		return 0
	}
	kids := p.children[s.ID]
	if len(kids) == 0 {
		return total
	}
	ivs := (*scratch)[:0]
	for _, c := range kids {
		cs, ce := p.spans[c].Start, p.spans[c].End
		if cs < s.Start {
			cs = s.Start
		}
		if ce > s.End {
			ce = s.End
		}
		if ce > cs {
			ivs = append(ivs, candidate{start: cs, end: ce})
		}
	}
	detord.SortBy(ivs, func(c candidate) time.Duration { return c.start })
	var covered time.Duration
	var curEnd time.Duration
	curStart := time.Duration(-1)
	for _, iv := range ivs {
		if curStart < 0 || iv.start > curEnd {
			if curStart >= 0 {
				covered += curEnd - curStart
			}
			curStart, curEnd = iv.start, iv.end
			continue
		}
		if iv.end > curEnd {
			curEnd = iv.end
		}
	}
	if curStart >= 0 {
		covered += curEnd - curStart
	}
	*scratch = ivs
	return total - covered
}
