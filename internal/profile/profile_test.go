package profile

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/journal"
	"ppm/internal/trace"
)

const msec = time.Millisecond

// span builds a closed SpanData for fixture tables.
func span(id, traceID, parent uint64, host, name string, start, end time.Duration) trace.SpanData {
	return trace.SpanData{ID: id, Trace: traceID, Parent: parent,
		Host: host, Name: name, Start: start, End: end, Ends: 1}
}

// TestAttributionConservation hand-checks the sweep on a synthetic
// trace and asserts the conservation invariant: phase buckets sum
// exactly to the root's end-to-end time.
//
// Layout (ms):
//
//	op.stop            [0,100]                     (root, structural)
//	  lpm.request.b    [5,95]                      (structural)
//	    net.hop.b      [5,15]   -> network 10
//	    dispatch.endpoint [15,20] -> dispatch 5
//	    exec.adopt     [20,60]  -> kernel 40
//	    kernel.event.stop [58,65] -> fully shadowed: ties exec on
//	                      [58,60] (both kernel), loses [60,65] to reply
//	    net.reply.a    [60,70]  -> reply 10
//	  lpm.retry.b      [70,90]  -> backoff 20
func TestAttributionConservation(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 7, 0, "a", "op.stop", 0, 100*msec),
		span(2, 7, 1, "a", "lpm.request.b", 5*msec, 95*msec),
		span(3, 7, 2, "a", "net.hop.b", 5*msec, 15*msec),
		span(4, 7, 2, "b", "dispatch.endpoint", 15*msec, 20*msec),
		span(5, 7, 2, "b", "exec.adopt", 20*msec, 60*msec),
		span(6, 7, 2, "b", "kernel.event.stop", 58*msec, 65*msec),
		span(7, 7, 2, "b", "net.reply.a", 60*msec, 70*msec),
		span(8, 7, 1, "a", "lpm.retry.b", 70*msec, 90*msec),
	}
	p := Build(spans, nil)
	if len(p.Requests) != 1 {
		t.Fatalf("got %d requests, want 1", len(p.Requests))
	}
	r := p.Requests[0]
	if !r.Conserved() {
		t.Fatalf("conservation violated: phases %v, total %v", r.Phases, r.Total())
	}
	// Hand-walked expectation: [0,5] unattr, [5,15] network, [15,20]
	// dispatch, [20,60] kernel (exec; the [58,60] overlap with
	// kernel.event ties at equal depth — both kernel anyway), [60,70]
	// reply (on [60,65] phase Reply=1 beats Kernel=4 at equal depth),
	// [70,90] backoff, [90,100] unattr.
	want := [numPhases]time.Duration{
		PhaseNetwork:      10 * msec,
		PhaseReply:        10 * msec,
		PhaseDispatch:     5 * msec,
		PhaseBackoff:      20 * msec,
		PhaseKernel:       40 * msec,
		PhaseUnattributed: 15 * msec,
	}
	if r.Phases != want {
		t.Errorf("phases = %v, want %v", r.Phases, want)
	}
	if r.Total() != 100*msec {
		t.Errorf("total = %v, want 100ms", r.Total())
	}
}

// TestCriticalPathHandChecked pins the longest dependent chain of a
// synthetic fan-out: the chain must descend into the latest-ending
// child at every level, skip async spans that outlive their parent,
// and report per-hop slack against the parent's completion.
func TestCriticalPathHandChecked(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 3, 0, "a", "op.snapshot", 0, 100*msec),
		span(2, 3, 1, "a", "lpm.request.b", 0, 40*msec),
		span(3, 3, 1, "a", "lpm.request.c", 5*msec, 90*msec),
		span(4, 3, 1, "a", "exec.exec", 50*msec, 120*msec), // async: outlives root
		span(5, 3, 3, "c", "dispatch.endpoint", 10*msec, 40*msec),
		span(6, 3, 3, "c", "exec.gather", 20*msec, 85*msec),
	}
	p := Build(spans, nil)
	path := p.CriticalPath(3)
	wantNames := []string{"op.snapshot", "lpm.request.c", "exec.gather"}
	if len(path) != len(wantNames) {
		t.Fatalf("path length %d, want %d (%+v)", len(path), len(wantNames), path)
	}
	for i, want := range wantNames {
		if path[i].Name != want {
			t.Errorf("hop %d = %s, want %s", i, path[i].Name, want)
		}
	}
	wantSlack := []time.Duration{0, 10 * msec, 5 * msec}
	for i, want := range wantSlack {
		if path[i].Slack != want {
			t.Errorf("hop %d slack = %v, want %v", i, path[i].Slack, want)
		}
	}
}

// TestJournalCrossLinks: retry/timeout records under a trace surface
// on its request.
func TestJournalCrossLinks(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 9, 0, "a", "op.ping", 0, 10*msec),
	}
	recs := []journal.Record{
		{Seq: 1, Kind: journal.LPMRetry, Host: "a", Trace: 9, Span: 1},
		{Seq: 2, Kind: journal.LPMRetry, Host: "a", Trace: 9, Span: 1},
		{Seq: 3, Kind: journal.LPMTimeout, Host: "a", Trace: 9, Span: 1},
		{Seq: 4, Kind: journal.LPMRetry, Host: "a", Trace: 8, Span: 0}, // other trace
	}
	p := Build(spans, recs)
	r := p.Requests[0]
	if r.Retries != 2 || r.Timeouts != 1 {
		t.Errorf("cross-links = %d retries / %d timeouts, want 2/1", r.Retries, r.Timeouts)
	}
}

// TestReportDeterminism: two Builds over the same inputs render
// byte-identical output in every mode.
func TestReportDeterminism(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 1, 0, "a", "op.stop", 0, 50*msec),
		span(2, 1, 1, "a", "net.hop.b", 0, 10*msec),
		span(3, 1, 1, "b", "exec.adopt", 10*msec, 30*msec),
		span(4, 2, 0, "b", "op.snapshot", 20*msec, 90*msec),
		span(5, 2, 4, "b", "lpm.request.a", 25*msec, 80*msec),
		span(6, 2, 5, "a", "exec.gather", 30*msec, 70*msec),
	}
	a, b := Build(spans, nil), Build(spans, nil)
	var o Options
	if a.Report(o) != b.Report(o) {
		t.Error("Report not deterministic")
	}
	if a.FoldedStacks(o) != b.FoldedStacks(o) {
		t.Error("FoldedStacks not deterministic")
	}
	if a.CriticalReport(o) != b.CriticalReport(o) {
		t.Error("CriticalReport not deterministic")
	}
	if !strings.Contains(a.Report(o), "op.snapshot") {
		t.Error("report lacks op.snapshot row")
	}
}

// TestFoldedStacksSelfTime: the folded export weights stacks by
// self-time (interval minus children), in microseconds.
func TestFoldedStacksSelfTime(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 1, 0, "a", "op.stop", 0, 50*msec),
		span(2, 1, 1, "a", "net.hop.b", 10*msec, 30*msec),
	}
	p := Build(spans, nil)
	got := p.FoldedStacks(Options{})
	want := "op.stop 30000\nop.stop;net.hop.b 20000\n"
	if got != want {
		t.Errorf("folded stacks:\n%s\nwant:\n%s", got, want)
	}
}

// TestOptionsFilter: -op and -host narrow the request set, accepting
// the op name with or without its "op." prefix.
func TestOptionsFilter(t *testing.T) {
	spans := []trace.SpanData{
		span(1, 1, 0, "a", "op.stop", 0, 50*msec),
		span(2, 2, 0, "b", "op.snapshot", 0, 70*msec),
	}
	p := Build(spans, nil)
	if got := p.Report(Options{Op: "snapshot"}); strings.Contains(got, "op.stop") {
		t.Errorf("op filter leaked op.stop:\n%s", got)
	}
	if got := p.Report(Options{Host: "a"}); strings.Contains(got, "op.snapshot") {
		t.Errorf("host filter leaked op.snapshot:\n%s", got)
	}
	if got := p.Report(Options{Op: "op.snapshot"}); !strings.Contains(got, "op.snapshot") {
		t.Errorf("prefixed op filter dropped its own op:\n%s", got)
	}
}

// TestBuildAllocsPerSpan pins the analyzer's per-span cost: building a
// profile over a large synthetic trace must stay under a small, fixed
// allocation budget per span (the steady state reuses the sweep
// scratch; what remains is the index maps and the request slice).
func TestBuildAllocsPerSpan(t *testing.T) {
	const n = 64 // requests
	var spans []trace.SpanData
	id := uint64(0)
	for i := 0; i < n; i++ {
		base := time.Duration(i) * 100 * msec
		root := id + 1
		spans = append(spans,
			span(root, uint64(i+1), 0, "a", "op.stop", base, base+50*msec),
			span(root+1, uint64(i+1), root, "a", "net.hop.b", base, base+10*msec),
			span(root+2, uint64(i+1), root, "b", "exec.adopt", base+10*msec, base+30*msec),
			span(root+3, uint64(i+1), root, "b", "net.reply.a", base+30*msec, base+40*msec),
		)
		id += 4
	}
	perSpan := testing.AllocsPerRun(10, func() {
		Build(spans, nil)
	}) / float64(len(spans))
	// The pin: index maps, child slices and the request table amortize
	// to ~2 allocations per span; fail loudly if the analyzer regresses
	// past 4.
	if perSpan > 4 {
		t.Errorf("Build allocates %.2f allocs/span, pin is 4", perSpan)
	}
}
