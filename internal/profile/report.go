package profile

import (
	"fmt"
	"strings"
	"time"

	"ppm/internal/detord"
)

// Options select and bound what the rendering methods show. The zero
// value means "everything".
type Options struct {
	// Op keeps only requests of one operation type; both "snapshot"
	// and "op.snapshot" spellings are accepted.
	Op string
	// Host keeps only requests originating on this host.
	Host string
	// Top keeps the N most expensive rows of the per-op table (and the
	// N slowest requests of the critical-path report). 0 means all.
	Top int
}

// matches applies the Op/Host filters to one request.
func (o Options) matches(r Request) bool {
	if o.Op != "" && r.Op != o.Op && r.Op != "op."+o.Op {
		return false
	}
	if o.Host != "" && r.Host != o.Host {
		return false
	}
	return true
}

// opStats is one aggregated per-op-type row.
type opStats struct {
	op       string
	count    int
	total    time.Duration
	phases   [numPhases]time.Duration
	max      time.Duration
	maxTrace uint64
	retries  int
	timeouts int
}

// aggregate folds the filtered requests into per-op rows, ordered by
// total time descending (then name), truncated to o.Top.
func (p *Profile) aggregate(o Options) []*opStats {
	byOp := make(map[string]*opStats)
	for _, r := range p.Requests {
		if !o.matches(r) {
			continue
		}
		st := byOp[r.Op]
		if st == nil {
			st = &opStats{op: r.Op}
			byOp[r.Op] = st
		}
		st.count++
		st.total += r.Total()
		for i, d := range r.Phases {
			st.phases[i] += d
		}
		if r.Total() > st.max || st.count == 1 {
			st.max = r.Total()
			st.maxTrace = r.Trace
		}
		st.retries += r.Retries
		st.timeouts += r.Timeouts
	}
	rows := make([]*opStats, 0, len(byOp))
	for _, op := range detord.Keys(byOp) {
		rows = append(rows, byOp[op])
	}
	detord.SortBy2(rows,
		func(s *opStats) time.Duration { return -s.total },
		func(s *opStats) string { return s.op })
	if o.Top > 0 && len(rows) > o.Top {
		rows = rows[:o.Top]
	}
	return rows
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Report renders the aggregated profile: a per-op-type phase
// attribution table (means over the op's requests) followed by the
// per-host busy/queue timelines. Byte-identical across same-seed runs.
func (p *Profile) Report(o Options) string {
	var b strings.Builder
	rows := p.aggregate(o)
	var total int
	for _, r := range rows {
		total += r.count
	}
	fmt.Fprintf(&b, "=== ppmprof: %d requests, %d op types ===\n", total, len(rows))
	if len(rows) == 0 {
		b.WriteString("no requests match\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %5s %9s %9s %8s %9s %8s %8s %8s %7s %3s %3s\n",
		"op", "count", "mean ms", "network", "reply", "dispatch", "backoff",
		"kernel", "unattr", "unattr%", "rtx", "tmo")
	for _, r := range rows {
		n := time.Duration(r.count)
		mean := r.total / n
		unattr := r.phases[PhaseUnattributed] / n
		pct := 0.0
		if mean > 0 {
			pct = 100 * float64(unattr) / float64(mean)
		}
		fmt.Fprintf(&b, "%-14s %5d %9.3f %9.3f %8.3f %9.3f %8.3f %8.3f %8.3f %6.1f%% %3d %3d\n",
			r.op, r.count, ms(mean),
			ms(r.phases[PhaseNetwork]/n), ms(r.phases[PhaseReply]/n),
			ms(r.phases[PhaseDispatch]/n), ms(r.phases[PhaseBackoff]/n),
			ms(r.phases[PhaseKernel]/n), ms(unattr), pct,
			r.retries, r.timeouts)
	}
	b.WriteString("\n")
	b.WriteString(p.timelines(o))
	return b.String()
}

// timelineBuckets is the fixed horizontal resolution of the per-host
// timelines.
const timelineBuckets = 24

// busyRamp maps a bucket's busy fraction to a glyph (5 levels).
var busyRamp = []byte(" .:=#")

// timelines renders one row per host: a busy bar (fraction of each
// bucket covered by classified work spans attributed to the host) and
// a queue-depth digit strip (peak concurrent open handler windows —
// lpm.request.* spans — originated by the host in the bucket).
func (p *Profile) timelines(o Options) string {
	lo, hi := time.Duration(-1), time.Duration(0)
	keep := make(map[uint64]bool, len(p.Requests))
	for _, r := range p.Requests {
		if !o.matches(r) {
			continue
		}
		keep[r.Trace] = true
		if lo < 0 || r.Start < lo {
			lo = r.Start
		}
		if r.End > hi {
			hi = r.End
		}
	}
	if lo < 0 || hi <= lo {
		return ""
	}
	width := hi - lo
	type lane struct {
		busy  [timelineBuckets]time.Duration
		queue [timelineBuckets]int
	}
	lanes := make(map[string]*lane)
	laneOf := func(host string) *lane {
		l := lanes[host]
		if l == nil {
			l = &lane{}
			lanes[host] = l
		}
		return l
	}
	// overlap adds a span's coverage of each bucket to acc.
	overlap := func(acc *[timelineBuckets]time.Duration, s, e time.Duration) {
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		for i := 0; i < timelineBuckets && s < e; i++ {
			bs := lo + width*time.Duration(i)/timelineBuckets
			be := lo + width*time.Duration(i+1)/timelineBuckets
			cs, ce := s, e
			if cs < bs {
				cs = bs
			}
			if ce > be {
				ce = be
			}
			if ce > cs {
				acc[i] += ce - cs
			}
		}
	}
	for _, s := range p.spans {
		if !keep[s.Trace] || s.End <= s.Start {
			continue
		}
		if _, ok := classify(s.Name); ok {
			overlap(&laneOf(s.Host).busy, s.Start, s.End)
		}
		if strings.HasPrefix(s.Name, "lpm.request.") {
			// Peak concurrency, not coverage: count the span against
			// every bucket it overlaps.
			l := laneOf(s.Host)
			for i := 0; i < timelineBuckets; i++ {
				bs := lo + width*time.Duration(i)/timelineBuckets
				be := lo + width*time.Duration(i+1)/timelineBuckets
				if s.Start < be && s.End > bs {
					l.queue[i]++
				}
			}
		}
	}
	if len(lanes) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-host timelines: window %.3f–%.3f ms, %d buckets (busy ramp \"%s\", queue 0-9+)\n",
		ms(lo), ms(hi), timelineBuckets, string(busyRamp[1:]))
	bucket := width / timelineBuckets
	for _, host := range detord.Keys(lanes) {
		l := lanes[host]
		var busy, queue [timelineBuckets]byte
		for i := 0; i < timelineBuckets; i++ {
			frac := float64(l.busy[i]) / float64(bucket)
			lvl := int(frac * float64(len(busyRamp)-1))
			if frac > 0 && lvl == 0 {
				lvl = 1
			}
			if lvl >= len(busyRamp) {
				lvl = len(busyRamp) - 1
			}
			busy[i] = busyRamp[lvl]
			switch q := l.queue[i]; {
			case q > 9:
				queue[i] = '+'
			default:
				queue[i] = byte('0' + q)
			}
		}
		fmt.Fprintf(&b, "%-8s busy [%s]  queue [%s]\n", host, busy, queue)
	}
	return b.String()
}

// FoldedStacks renders the filtered requests in the flamegraph folded
// format: one "root;child;...;leaf weight" line per distinct stack,
// weighted by span self-time in microseconds, sorted by stack. Feed it
// to flamegraph.pl (or any folded-stacks consumer) unchanged.
func (p *Profile) FoldedStacks(o Options) string {
	weights := make(map[string]time.Duration)
	var scratch []candidate
	var stack []string
	var walk func(idx int)
	walk = func(idx int) {
		s := p.spans[idx]
		stack = append(stack, s.Name)
		if self := p.selfTime(idx, &scratch); self > 0 {
			weights[strings.Join(stack, ";")] += self
		}
		for _, c := range p.children[s.ID] {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, r := range p.Requests {
		if !o.matches(r) {
			continue
		}
		for _, i := range p.byTrace[r.Trace] {
			if p.spans[i].Parent == 0 {
				walk(i)
			}
		}
	}
	var b strings.Builder
	for _, stk := range detord.Keys(weights) {
		fmt.Fprintf(&b, "%s %d\n", stk, weights[stk].Microseconds())
	}
	return b.String()
}

// CriticalReport renders the critical path of the slowest request of
// each op type (subject to the filters): the longest dependent chain
// with per-hop slack. Multi-hop ops — floods, snapshot fan-outs,
// status sweeps — are where the chain is interesting; a point-to-point
// op renders as its short request chain.
func (p *Profile) CriticalReport(o Options) string {
	rows := p.aggregate(o)
	var b strings.Builder
	if len(rows) == 0 {
		return "no requests match\n"
	}
	for _, r := range rows {
		path := p.CriticalPath(r.maxTrace)
		fmt.Fprintf(&b, "critical path of slowest %s: trace %d, %.3f ms end to end, %d hops\n",
			r.op, r.maxTrace, ms(r.max), len(path))
		fmt.Fprintf(&b, "  %-5s %-8s %-28s %10s %10s %9s\n",
			"span", "host", "name", "start ms", "end ms", "slack ms")
		base := time.Duration(0)
		if len(path) > 0 {
			base = path[0].Start
		}
		for _, h := range path {
			name := strings.Repeat("  ", h.Depth) + h.Name
			fmt.Fprintf(&b, "  %-5d %-8s %-28s %10.3f %10.3f %9.3f\n",
				h.Span, h.Host, name, ms(h.Start-base), ms(h.End-base), ms(h.Slack))
		}
	}
	return b.String()
}
