// Package calib holds the calibration constants of the simulated 1986
// computing environment: per-host CPU models for the three machine types
// the paper measures (VAX 11/780, VAX 11/750, Sun II), and the primitive
// costs of the operations that compose the paper's Tables 1-3.
//
// # Model
//
// Table 1 of the paper reports the elapsed time to deliver a 112-byte
// message from the kernel to the LPM as a function of the load average
// la (a time-averaged CPU run-queue length). The dominant component is
// the scheduling wait until the LPM wins the CPU; on the memory- and
// CPU-constrained machines of 1986 this grows superlinearly with the
// run queue. We model it as
//
//	t(host, la) = MsgBase(host) * exp(LoadGamma(host) * la)
//
// with MsgBase and LoadGamma fitted to the paper's Table 1 (see
// EXPERIMENTS.md for the fit residuals). The load average itself is not
// an input: it emerges from simulated background processes sampled and
// exponentially smoothed by the kernel, exactly like the BSD estimator
// the paper cites.
//
// Table 2/3 costs decompose into primitive constants below; each is a
// CPU demand charged to the simulated host (scaled by CPUPower and the
// same load factor) or a network transit charged per physical hop.
package calib

import (
	"math"
	"time"
)

// HostType identifies one of the paper's three machine models.
type HostType int

// The host types measured in the paper's Table 1.
const (
	VAX780 HostType = iota + 1
	VAX750
	SunII
)

// String returns the paper's name for the host type.
func (h HostType) String() string {
	switch h {
	case VAX780:
		return "VAX 11/780"
	case VAX750:
		return "VAX 11/750"
	case SunII:
		return "Sun II"
	default:
		return "unknown host type"
	}
}

// CPUModel captures the performance characteristics of a host type.
type CPUModel struct {
	Type HostType

	// MsgBase is the zero-load kernel-to-LPM 112-byte message delivery
	// time (Table 1 intercept).
	MsgBase time.Duration

	// LoadGamma is the exponential load-sensitivity coefficient of
	// message delivery and all other CPU-bound work on the host.
	LoadGamma float64

	// Power is the relative CPU power used to scale process-execution
	// costs (fork, exec, marshalling); 1.0 is the VAX 11/780.
	Power float64
}

// Models for the three 1986 machine types, fitted to the paper's Table 1.
var (
	ModelVAX780 = CPUModel{Type: VAX780, MsgBase: 6140 * time.Microsecond, LoadGamma: 0.318, Power: 1.00}
	ModelVAX750 = CPUModel{Type: VAX750, MsgBase: 6130 * time.Microsecond, LoadGamma: 0.322, Power: 0.96}
	ModelSunII  = CPUModel{Type: SunII, MsgBase: 6320 * time.Microsecond, LoadGamma: 0.546, Power: 0.80}
)

// Model returns the CPUModel for a host type. Unknown types get the
// VAX 11/780 model, the paper's reference machine.
func Model(t HostType) CPUModel {
	switch t {
	case VAX750:
		return ModelVAX750
	case SunII:
		return ModelSunII
	default:
		return ModelVAX780
	}
}

// LoadFactor returns the multiplicative slowdown of CPU-bound work at
// load average la.
func (m CPUModel) LoadFactor(la float64) float64 {
	if la < 0 {
		la = 0
	}
	return math.Exp(m.LoadGamma * la)
}

// KernelMsgDelivery returns the modelled kernel-to-LPM 112-byte message
// delivery time at load average la (the Table 1 quantity).
func (m CPUModel) KernelMsgDelivery(la float64) time.Duration {
	return time.Duration(float64(m.MsgBase) * m.LoadFactor(la))
}

// Scale returns the elapsed time of a CPU-bound demand with reference
// cost base (defined on a VAX 11/780 at zero load) on this host at load
// average la.
func (m CPUModel) Scale(base time.Duration, la float64) time.Duration {
	p := m.Power
	if p <= 0 {
		p = 1
	}
	return time.Duration(float64(base) / p * m.LoadFactor(la))
}

// Primitive operation costs, expressed as CPU demand on the reference
// machine (VAX 11/780) at zero load. These compose into the paper's
// Table 2 and Table 3 rows; the decomposition is documented in
// EXPERIMENTS.md.
const (
	// ToolLeg is the one-way cost of a tool <-> LPM exchange over a
	// local IPC socket, including the LPM dispatch.
	ToolLeg = 11 * time.Millisecond

	// ControlAction is the kernel-level cost of a process-control
	// operation on an adopted process (extended ptrace stop, continue,
	// or signal delivery).
	ControlAction = 8 * time.Millisecond

	// SiblingEndpoint is the per-endpoint protocol cost of a message on
	// an inter-LPM virtual circuit: marshalling or unmarshalling, TCP
	// processing, and the dispatcher/handler handoff.
	SiblingEndpoint = 39500 * time.Microsecond

	// AckEndpoint is the per-endpoint cost of a lightweight
	// acknowledgement that bypasses handler assignment (sent by the
	// dispatcher, consumed directly by the blocked handler).
	AckEndpoint = 25 * time.Millisecond

	// HeartbeatEndpoint is the per-endpoint cost of a linktest probe or
	// its echo: a fixed-shape 25-byte frame handled entirely by the
	// dispatcher — no marshalling of variable payloads, no handler
	// handoff, no per-message auth. Charging heartbeats the full
	// SiblingEndpoint cost makes sub-second probe intervals overcommit a
	// 1986 CPU outright (4 messages/peer/interval x 39.5 ms), which
	// showed up as an unbounded run-queue on any host with two or more
	// monitored circuits.
	HeartbeatEndpoint = 6 * time.Millisecond

	// Fork, Exec and Adopt are the process-creation primitives. The
	// paper's within-host creation time (77 ms) is
	// CreateDispatch + Fork + Exec + Adopt.
	Fork  = 25 * time.Millisecond
	Exec  = 30 * time.Millisecond
	Adopt = 12 * time.Millisecond

	// CreateDispatch is the LPM-side bookkeeping to act as the process
	// creation server for one request.
	CreateDispatch = 10 * time.Millisecond

	// GatherPerProc is the cost of collecting and encoding snapshot
	// information for one process.
	GatherPerProc = 2333 * time.Microsecond

	// HandlerFork is the cost of creating a new handler process inside
	// the LPM when no idle handler is available (handlers are reused
	// precisely because this is expensive).
	HandlerFork = Fork

	// AuthCheck is the CPU cost of verifying one authentication token.
	// Circuits pay it once per channel (at Hello); the datagram-based
	// alternative the paper weighs would pay it on every message — the
	// tradeoff the circuit-vs-datagram ablation quantifies.
	AuthCheck = 8 * time.Millisecond

	// UntracedSyscallCheck is the overhead added to every system call
	// for processes NOT under PPM management: comparing a variable to
	// zero ("negligible" in the paper).
	UntracedSyscallCheck = 2 * time.Microsecond

	// KernelMsgBytes is the size of a kernel-to-LPM event message.
	KernelMsgBytes = 112
)

// Network constants of the simulated 1986 internetwork.
const (
	// HopTransit is the one-way transit of a message across one
	// physical hop (an Ethernet segment plus gateway store-and-forward).
	HopTransit = 5500 * time.Microsecond

	// EthernetBandwidth is the raw segment bandwidth used to charge
	// per-byte transmission time (10 Mbit/s Ethernet).
	EthernetBandwidthBytesPerSec = 10_000_000 / 8
)

// TransmissionTime returns the serialization delay of size bytes on an
// Ethernet segment.
func TransmissionTime(size int) time.Duration {
	if size <= 0 {
		return 0
	}
	sec := float64(size) / float64(EthernetBandwidthBytesPerSec)
	return time.Duration(sec * float64(time.Second))
}
