package calib

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Table 1 of the paper, bucket midpoints as load averages.
var table1 = []struct {
	model CPUModel
	la    float64
	want  float64 // ms
}{
	{ModelVAX780, 0.5, 7.2},
	{ModelVAX780, 1.5, 9.8},
	{ModelVAX780, 2.5, 13.6},
	{ModelVAX750, 0.5, 7.2},
	{ModelVAX750, 1.5, 9.6},
	{ModelVAX750, 2.5, 12.8},
	{ModelVAX750, 3.5, 18.9},
	{ModelSunII, 0.5, 8.31},
	{ModelSunII, 1.5, 14.13},
	{ModelSunII, 2.5, 22.0},
	{ModelSunII, 3.5, 42.7},
}

func TestKernelMsgDeliveryMatchesTable1Shape(t *testing.T) {
	for _, tc := range table1 {
		got := ms(tc.model.KernelMsgDelivery(tc.la))
		rel := math.Abs(got-tc.want) / tc.want
		if rel > 0.15 {
			t.Errorf("%v la=%.1f: got %.2f ms, paper %.2f ms (%.0f%% off)",
				tc.model.Type, tc.la, got, tc.want, rel*100)
		}
	}
}

func TestDeliveryMonotoneInLoad(t *testing.T) {
	for _, m := range []CPUModel{ModelVAX780, ModelVAX750, ModelSunII} {
		prev := time.Duration(0)
		for la := 0.0; la <= 4.0; la += 0.25 {
			d := m.KernelMsgDelivery(la)
			if d <= prev {
				t.Fatalf("%v: delivery not strictly increasing at la=%.2f", m.Type, la)
			}
			prev = d
		}
	}
}

func TestSunIIMostLoadSensitive(t *testing.T) {
	// The paper's Table 1: at high load the Sun II is by far the worst.
	la := 3.5
	sun := ModelSunII.KernelMsgDelivery(la)
	v750 := ModelVAX750.KernelMsgDelivery(la)
	v780 := ModelVAX780.KernelMsgDelivery(la)
	if sun <= v750 || sun <= v780 {
		t.Fatalf("Sun II (%v) should be slowest at la=%.1f (750=%v 780=%v)", sun, la, v750, v780)
	}
	// And roughly 2x the VAX 750 as in the paper (42.7 vs 18.9).
	ratio := float64(sun) / float64(v750)
	if ratio < 1.6 || ratio > 2.9 {
		t.Fatalf("Sun/VAX750 ratio at la=3.5 = %.2f, paper has 2.26", ratio)
	}
}

func TestWithinHostCreateIs77ms(t *testing.T) {
	total := CreateDispatch + Fork + Exec + Adopt
	if total != 77*time.Millisecond {
		t.Fatalf("create decomposition = %v, want 77ms", total)
	}
}

func TestWithinHostControlIs30ms(t *testing.T) {
	total := ToolLeg + ControlAction + ToolLeg
	if total != 30*time.Millisecond {
		t.Fatalf("stop/terminate decomposition = %v, want 30ms", total)
	}
}

func TestRemoteControlOneHopIs199ms(t *testing.T) {
	oneWay := SiblingEndpoint + HopTransit + SiblingEndpoint
	total := 2*ToolLeg + ControlAction + 2*oneWay
	if total != 199*time.Millisecond {
		t.Fatalf("remote stop decomposition = %v, want 199ms", total)
	}
}

func TestRemoteControlTwoHopsIs210ms(t *testing.T) {
	oneWay := SiblingEndpoint + 2*HopTransit + SiblingEndpoint
	total := 2*ToolLeg + ControlAction + 2*oneWay
	if total != 210*time.Millisecond {
		t.Fatalf("two-hop stop decomposition = %v, want 210ms", total)
	}
}

func TestRemoteCreateIs177ms(t *testing.T) {
	// Request over the circuit, fork+adopt at the remote host, then a
	// lightweight ack (exec completes asynchronously; its completion is
	// reported via a kernel event).
	req := SiblingEndpoint + HopTransit + SiblingEndpoint
	ack := AckEndpoint + HopTransit + AckEndpoint
	total := req + Fork + Adopt + ack
	if total != 177*time.Millisecond {
		t.Fatalf("remote create decomposition = %v, want 177ms", total)
	}
}

func TestScaleLoadAndPower(t *testing.T) {
	base := 10 * time.Millisecond
	if got := ModelVAX780.Scale(base, 0); got != base {
		t.Fatalf("VAX780 zero-load scale = %v, want %v", got, base)
	}
	if got := ModelSunII.Scale(base, 0); got <= base {
		t.Fatalf("Sun II should be slower than the 780 at equal load: %v", got)
	}
	if got := ModelVAX780.Scale(base, 2); got <= base {
		t.Fatal("load should slow CPU-bound work")
	}
}

func TestScaleNegativeLoadClamped(t *testing.T) {
	if got := ModelVAX780.Scale(time.Millisecond, -5); got != time.Millisecond {
		t.Fatalf("negative la should clamp to 0, got %v", got)
	}
}

func TestModelLookup(t *testing.T) {
	for _, ht := range []HostType{VAX780, VAX750, SunII} {
		if Model(ht).Type != ht {
			t.Fatalf("Model(%v) returned wrong type", ht)
		}
	}
	if Model(HostType(99)).Type != VAX780 {
		t.Fatal("unknown type should default to the reference machine")
	}
}

func TestHostTypeString(t *testing.T) {
	cases := map[HostType]string{
		VAX780:       "VAX 11/780",
		VAX750:       "VAX 11/750",
		SunII:        "Sun II",
		HostType(42): "unknown host type",
	}
	for ht, want := range cases {
		if ht.String() != want {
			t.Fatalf("String(%d) = %q, want %q", ht, ht.String(), want)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	if TransmissionTime(0) != 0 || TransmissionTime(-1) != 0 {
		t.Fatal("non-positive sizes should cost nothing")
	}
	// 1250 bytes at 10 Mbit/s = 1 ms.
	if got := TransmissionTime(1250); got != time.Millisecond {
		t.Fatalf("1250B = %v, want 1ms", got)
	}
	if TransmissionTime(KernelMsgBytes) >= time.Millisecond {
		t.Fatal("a 112-byte message should serialize in well under 1ms")
	}
}

// Property: scaling is monotone in both load and demand.
func TestPropertyScaleMonotone(t *testing.T) {
	f := func(baseMicros uint16, la8 uint8) bool {
		base := time.Duration(baseMicros) * time.Microsecond
		la := float64(la8) / 64.0 // 0..4
		m := ModelSunII
		if m.Scale(base, la) > m.Scale(base, la+0.5) {
			return false
		}
		return m.Scale(base, la) <= m.Scale(base+time.Millisecond, la)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
