// Package proc defines the process model shared by the kernel, the LPMs
// and the user tools: network-wide process identities (<host, pid> pairs
// as in the paper), process states, signals, resource usage records and
// genealogy snapshots.
package proc

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ppm/internal/detord"
)

// PID is a per-host process identifier.
type PID int32

// GPID is a network-global process identity: the paper identifies
// processes in the network by <host name, pid>.
type GPID struct {
	Host string `json:"host"`
	PID  PID    `json:"pid"`
}

// String renders the identity as "<host,pid>" exactly like the paper's
// snapshots.
func (g GPID) String() string {
	return "<" + g.Host + "," + strconv.Itoa(int(g.PID)) + ">"
}

// IsZero reports whether the identity is unset.
func (g GPID) IsZero() bool { return g.Host == "" && g.PID == 0 }

// State is the state of a process as tracked by the PPM. The paper's
// snapshot distinguishes running, stopped and dead processes, and marks
// exited processes whose children are still alive.
type State int

// Process states.
const (
	Running State = iota + 1
	Stopped
	Exited // terminated, exit record retained while children are alive
	Dead   // gone: host crashed or record discarded
)

// String returns the snapshot display name of the state.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	case Exited:
		return "exited"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Signal is a software interrupt. The set mirrors the UNIX signals the
// PPM's built-in control functions use.
type Signal int

// Software interrupts understood by the simulated kernel.
const (
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGTERM Signal = 15
	SIGSTOP Signal = 17
	SIGCONT Signal = 19
	SIGUSR1 Signal = 30
	SIGUSR2 Signal = 31
)

// String returns the conventional signal name.
func (s Signal) String() string {
	switch s {
	case SIGINT:
		return "SIGINT"
	case SIGKILL:
		return "SIGKILL"
	case SIGTERM:
		return "SIGTERM"
	case SIGSTOP:
		return "SIGSTOP"
	case SIGCONT:
		return "SIGCONT"
	case SIGUSR1:
		return "SIGUSR1"
	case SIGUSR2:
		return "SIGUSR2"
	default:
		return "SIG" + strconv.Itoa(int(s))
	}
}

// Rusage is the resource consumption record the LPM preserves for
// exited processes (the paper's second built-in tool reports these).
type Rusage struct {
	CPUTime  time.Duration `json:"cpuTimeNanos"`
	Syscalls int64         `json:"syscalls"`
	MsgsSent int64         `json:"msgsSent"`
	MsgsRecv int64         `json:"msgsRecv"`
	MaxRSSKB int64         `json:"maxRssKb"`
}

// Add accumulates other into r.
func (r *Rusage) Add(other Rusage) {
	r.CPUTime += other.CPUTime
	r.Syscalls += other.Syscalls
	r.MsgsSent += other.MsgsSent
	r.MsgsRecv += other.MsgsRecv
	if other.MaxRSSKB > r.MaxRSSKB {
		r.MaxRSSKB = other.MaxRSSKB
	}
}

// Info is everything a snapshot records about one process.
type Info struct {
	ID       GPID   `json:"id"`
	Parent   GPID   `json:"parent"` // logical parent, may be on another host
	Name     string `json:"name"`
	User     string `json:"user"`
	State    State  `json:"state"`
	Rusage   Rusage `json:"rusage"`
	ExitCode int    `json:"exitCode"`
	// StartedAt/ExitedAt are virtual-time offsets from the simulation
	// epoch, in nanoseconds.
	StartedAt time.Duration `json:"startedAtNanos"`
	ExitedAt  time.Duration `json:"exitedAtNanos"`
}

// EventKind classifies the kernel event messages the LPM receives for
// adopted (traced) processes.
type EventKind int

// Kernel event kinds.
const (
	EvFork EventKind = iota + 1
	EvExec
	EvExit
	EvStop
	EvCont
	EvSignal
	EvSyscall // finest granularity; only recorded when requested
	EvIPC     // message send/receive, for the IPC tracing tool
	EvOpen    // file descriptor opened
	EvClose   // file descriptor closed
)

// String returns the event kind's trace name.
func (k EventKind) String() string {
	switch k {
	case EvFork:
		return "fork"
	case EvExec:
		return "exec"
	case EvExit:
		return "exit"
	case EvStop:
		return "stop"
	case EvCont:
		return "cont"
	case EvSignal:
		return "signal"
	case EvSyscall:
		return "syscall"
	case EvIPC:
		return "ipc"
	case EvOpen:
		return "open"
	case EvClose:
		return "close"
	default:
		return "event#" + strconv.Itoa(int(k))
	}
}

// Event is one kernel-generated process event, as delivered to the LPM
// over its kernel socket and preserved in the history store.
type Event struct {
	At     time.Duration `json:"atNanos"` // virtual time since epoch
	Kind   EventKind     `json:"kind"`
	Proc   GPID          `json:"proc"`
	Child  GPID          `json:"child,omitempty"`  // for fork
	Signal Signal        `json:"signal,omitempty"` // for signal/stop
	Detail string        `json:"detail,omitempty"`
	Rusage Rusage        `json:"rusage,omitempty"` // for exit
}

// Snapshot is the paper's "notion of state of a distributed
// computation": the set of known processes with their genealogy,
// possibly spanning several hosts, possibly a forest.
type Snapshot struct {
	TakenAt time.Duration `json:"takenAtNanos"`
	Procs   []Info        `json:"procs"`
	// Partial lists hosts whose information could not be collected
	// (crashed or unreachable); their subtrees appear as detached
	// roots — the tree has become a forest.
	Partial []string `json:"partial,omitempty"`
}

// sortInfos sorts Infos deterministically by host then pid.
func sortInfos(infos []Info) {
	detord.SortBy2(infos,
		func(i Info) string { return i.ID.Host },
		func(i Info) PID { return i.ID.PID })
}

// Merge combines per-host snapshot fragments into one snapshot.
func Merge(takenAt time.Duration, fragments ...[]Info) Snapshot {
	var all []Info
	for _, f := range fragments {
		all = append(all, f...)
	}
	sortInfos(all)
	return Snapshot{TakenAt: takenAt, Procs: all}
}

// Find returns the Info for id, if present.
func (s Snapshot) Find(id GPID) (Info, bool) {
	for _, p := range s.Procs {
		if p.ID == id {
			return p, true
		}
	}
	return Info{}, false
}

// Roots returns the processes whose parent is unknown to the snapshot —
// the roots of the genealogy forest.
func (s Snapshot) Roots() []Info {
	known := make(map[GPID]bool, len(s.Procs))
	for _, p := range s.Procs {
		known[p.ID] = true
	}
	var roots []Info
	for _, p := range s.Procs {
		if p.Parent.IsZero() || !known[p.Parent] {
			roots = append(roots, p)
		}
	}
	sortInfos(roots)
	return roots
}

// Children returns the processes whose logical parent is id.
func (s Snapshot) Children(id GPID) []Info {
	var kids []Info
	for _, p := range s.Procs {
		if p.Parent == id {
			kids = append(kids, p)
		}
	}
	sortInfos(kids)
	return kids
}

// Hosts returns the sorted set of hosts with at least one process in
// the snapshot.
func (s Snapshot) Hosts() []string {
	set := make(map[string]bool)
	for _, p := range s.Procs {
		set[p.ID.Host] = true
	}
	return detord.Keys(set)
}

// IsForest reports whether the snapshot's genealogy has more than one
// root (the paper: "under some failure modes this tree may become a
// forest").
func (s Snapshot) IsForest() bool { return len(s.Roots()) > 1 }

// Subtree returns the snapshot restricted to one computation: the
// processes reachable from root by genealogy. Users "simultaneously
// manage a number of distributed computations"; this carves one out.
func (s Snapshot) Subtree(root GPID) Snapshot {
	keep := make(map[GPID]bool)
	var walk func(id GPID)
	walk = func(id GPID) {
		if keep[id] {
			return
		}
		keep[id] = true
		for _, k := range s.Children(id) {
			walk(k.ID)
		}
	}
	walk(root)
	var procs []Info
	for _, p := range s.Procs {
		if keep[p.ID] {
			procs = append(procs, p)
		}
	}
	sub := Merge(s.TakenAt, procs)
	sub.Partial = append([]string(nil), s.Partial...)
	return sub
}

// Render produces the ASCII genealogy display of the snapshot, the
// paper's Figure 1 style: one tree per root, host boundaries visible in
// every identity (<host,pid>), exited and stopped processes marked.
func (s Snapshot) Render() string {
	var b strings.Builder
	roots := s.Roots()
	for i, r := range roots {
		if i > 0 {
			b.WriteString("\n")
		}
		s.draw(&b, r, "", "")
	}
	if len(s.Partial) > 0 {
		fmt.Fprintf(&b, "\n[partial: no information from %s]\n", strings.Join(s.Partial, ", "))
	}
	return b.String()
}

func (s Snapshot) draw(b *strings.Builder, p Info, selfPrefix, childPrefix string) {
	marker := ""
	switch p.State {
	case Exited:
		marker = " (exited)"
	case Stopped:
		marker = " (stopped)"
	case Dead:
		marker = " (dead)"
	}
	fmt.Fprintf(b, "%s%s %s%s\n", selfPrefix, p.ID, p.Name, marker)
	kids := s.Children(p.ID)
	for i, k := range kids {
		if i == len(kids)-1 {
			s.draw(b, k, childPrefix+"└── ", childPrefix+"    ")
		} else {
			s.draw(b, k, childPrefix+"├── ", childPrefix+"│   ")
		}
	}
}
