package proc

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkSnap() Snapshot {
	// A three-host genealogy in the spirit of Figure 1:
	//   <hostA,10> shell
	//     ├── <hostA,11> compute (exited)
	//     │   └── <hostB,20> worker
	//     └── <hostB,21> monitor (stopped)
	//           └── <hostC,30> leaf
	infos := []Info{
		{ID: GPID{"hostA", 10}, Name: "shell", State: Running},
		{ID: GPID{"hostA", 11}, Parent: GPID{"hostA", 10}, Name: "compute", State: Exited},
		{ID: GPID{"hostB", 20}, Parent: GPID{"hostA", 11}, Name: "worker", State: Running},
		{ID: GPID{"hostB", 21}, Parent: GPID{"hostA", 10}, Name: "monitor", State: Stopped},
		{ID: GPID{"hostC", 30}, Parent: GPID{"hostB", 21}, Name: "leaf", State: Running},
	}
	return Merge(time.Second, infos)
}

func TestGPIDString(t *testing.T) {
	g := GPID{Host: "vax1", PID: 42}
	if g.String() != "<vax1,42>" {
		t.Fatalf("String = %q", g.String())
	}
	if !(GPID{}).IsZero() {
		t.Fatal("zero GPID should report IsZero")
	}
	if g.IsZero() {
		t.Fatal("non-zero GPID reported IsZero")
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Running: "running", Stopped: "stopped", Exited: "exited",
		Dead: "dead", State(0): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestSignalStrings(t *testing.T) {
	if SIGKILL.String() != "SIGKILL" || SIGSTOP.String() != "SIGSTOP" {
		t.Fatal("well-known signal names wrong")
	}
	if Signal(77).String() != "SIG77" {
		t.Fatalf("unknown signal = %q", Signal(77).String())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvFork, EvExec, EvExit, EvStop, EvCont, EvSignal, EvSyscall, EvIPC, EvOpen, EvClose}
	want := []string{"fork", "exec", "exit", "stop", "cont", "signal", "syscall", "ipc", "open", "close"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("%d: got %q want %q", k, k.String(), want[i])
		}
	}
	if EventKind(99).String() != "event#99" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestRusageAdd(t *testing.T) {
	a := Rusage{CPUTime: time.Second, Syscalls: 5, MsgsSent: 2, MsgsRecv: 1, MaxRSSKB: 100}
	b := Rusage{CPUTime: time.Second, Syscalls: 3, MsgsSent: 1, MsgsRecv: 4, MaxRSSKB: 50}
	a.Add(b)
	if a.CPUTime != 2*time.Second || a.Syscalls != 8 || a.MsgsSent != 3 || a.MsgsRecv != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.MaxRSSKB != 100 {
		t.Fatalf("MaxRSS should be max, got %d", a.MaxRSSKB)
	}
	b.Add(Rusage{MaxRSSKB: 200})
	if b.MaxRSSKB != 200 {
		t.Fatal("MaxRSS should take the larger value")
	}
}

func TestSnapshotRootsSingleTree(t *testing.T) {
	s := mkSnap()
	roots := s.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if roots[0].ID != (GPID{"hostA", 10}) {
		t.Fatalf("root = %v", roots[0].ID)
	}
	if s.IsForest() {
		t.Fatal("single tree reported as forest")
	}
}

func TestSnapshotBecomesForestWhenHostLost(t *testing.T) {
	// Drop hostA's processes (host crash): B and C records remain, and
	// the known-parent links break — the tree becomes a forest.
	full := mkSnap()
	var surviving []Info
	for _, p := range full.Procs {
		if p.ID.Host != "hostA" {
			surviving = append(surviving, p)
		}
	}
	s := Merge(2*time.Second, surviving)
	s.Partial = []string{"hostA"}
	roots := s.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (forest)", len(roots))
	}
	if !s.IsForest() {
		t.Fatal("should be a forest")
	}
	if !strings.Contains(s.Render(), "partial: no information from hostA") {
		t.Fatal("render should note the partial snapshot")
	}
}

func TestSnapshotChildrenSorted(t *testing.T) {
	s := mkSnap()
	kids := s.Children(GPID{"hostA", 10})
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if kids[0].ID != (GPID{"hostA", 11}) || kids[1].ID != (GPID{"hostB", 21}) {
		t.Fatalf("children order wrong: %v %v", kids[0].ID, kids[1].ID)
	}
}

func TestSnapshotFind(t *testing.T) {
	s := mkSnap()
	p, ok := s.Find(GPID{"hostB", 20})
	if !ok || p.Name != "worker" {
		t.Fatalf("Find = %+v ok=%v", p, ok)
	}
	if _, ok := s.Find(GPID{"nowhere", 1}); ok {
		t.Fatal("found nonexistent process")
	}
}

func TestSnapshotHosts(t *testing.T) {
	s := mkSnap()
	hosts := s.Hosts()
	want := []string{"hostA", "hostB", "hostC"}
	if len(hosts) != len(want) {
		t.Fatalf("hosts = %v", hosts)
	}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v, want %v", hosts, want)
		}
	}
}

func TestRenderShowsStatesAndSpansHosts(t *testing.T) {
	out := mkSnap().Render()
	for _, want := range []string{
		"<hostA,10> shell",
		"<hostA,11> compute (exited)",
		"<hostB,20> worker",
		"<hostB,21> monitor (stopped)",
		"<hostC,30> leaf",
		"└── ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNesting(t *testing.T) {
	out := mkSnap().Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// The grandchild under the exited process must be indented deeper
	// than its parent.
	var parentIdx, childIdx int
	for i, l := range lines {
		if strings.Contains(l, "compute") {
			parentIdx = i
		}
		if strings.Contains(l, "worker") {
			childIdx = i
		}
	}
	if childIdx != parentIdx+1 {
		t.Fatalf("worker should immediately follow compute:\n%s", out)
	}
	if len(lines[childIdx])-len(strings.TrimLeft(lines[childIdx], "│ └├─")) <=
		len(lines[parentIdx])-len(strings.TrimLeft(lines[parentIdx], "│ └├─")) {
		t.Fatalf("worker not nested deeper than compute:\n%s", out)
	}
}

func TestMergeSortsDeterministically(t *testing.T) {
	a := []Info{{ID: GPID{"b", 2}}, {ID: GPID{"a", 9}}}
	b := []Info{{ID: GPID{"a", 1}}, {ID: GPID{"b", 1}}}
	s := Merge(0, a, b)
	wantOrder := []GPID{{"a", 1}, {"a", 9}, {"b", 1}, {"b", 2}}
	for i, w := range wantOrder {
		if s.Procs[i].ID != w {
			t.Fatalf("order[%d] = %v, want %v", i, s.Procs[i].ID, w)
		}
	}
}

// Property: every process in a snapshot is reachable from some root by
// following Children edges — the forest covers the whole snapshot.
func TestPropertyForestCoversSnapshot(t *testing.T) {
	f := func(edges []uint8) bool {
		// Build a random parent structure over n processes.
		n := len(edges)
		if n == 0 {
			return true
		}
		if n > 24 {
			n = 24
		}
		infos := make([]Info, n)
		for i := 0; i < n; i++ {
			infos[i] = Info{ID: GPID{"h", PID(i + 1)}, Name: "p", State: Running}
			if i > 0 {
				parent := int(edges[i]) % i // earlier process
				infos[i].Parent = GPID{"h", PID(parent + 1)}
			}
		}
		s := Merge(0, infos)
		seen := map[GPID]bool{}
		var walk func(p Info)
		walk = func(p Info) {
			if seen[p.ID] {
				return
			}
			seen[p.ID] = true
			for _, k := range s.Children(p.ID) {
				walk(k)
			}
		}
		for _, r := range s.Roots() {
			walk(r)
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtree(t *testing.T) {
	s := mkSnap()
	// Subtree of the exited compute process: itself + worker on hostB.
	sub := s.Subtree(GPID{"hostA", 11})
	if len(sub.Procs) != 2 {
		t.Fatalf("subtree procs = %+v", sub.Procs)
	}
	if _, ok := sub.Find(GPID{"hostB", 20}); !ok {
		t.Fatal("descendant missing from subtree")
	}
	if _, ok := sub.Find(GPID{"hostA", 10}); ok {
		t.Fatal("ancestor leaked into subtree")
	}
	// Whole-tree subtree equals the snapshot.
	all := s.Subtree(GPID{"hostA", 10})
	if len(all.Procs) != len(s.Procs) {
		t.Fatalf("root subtree = %d procs, want %d", len(all.Procs), len(s.Procs))
	}
	// Unknown root yields an empty subtree.
	if got := s.Subtree(GPID{"nowhere", 1}); len(got.Procs) != 0 {
		t.Fatalf("phantom subtree: %+v", got.Procs)
	}
}
