// Package tools contains the data reduction and data representation
// tools that interface with the PPM (paper §4 and §7): the snapshot
// display with its process-control verbs lives in the proc and ppm
// packages; here are the textual reports the paper lists as built-in or
// planned — exited-process resource-consumption statistics (pstat), the
// open/closed-files display (fdstat), IPC activity tracing and
// analysis (ipctrace), and an event timeline for the historical data
// gathering tool.
package tools

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ppm/internal/detord"
	"ppm/internal/proc"
)

// FormatStats renders the resource-consumption report of one process,
// the paper's second built-in tool.
func FormatStats(info proc.Info) string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s (%s) user=%s state=%s\n",
		info.ID, info.Name, info.User, info.State)
	if info.State == proc.Exited {
		fmt.Fprintf(&b, "  exit code %d after %v\n",
			info.ExitCode, info.ExitedAt-info.StartedAt)
	}
	r := info.Rusage
	fmt.Fprintf(&b, "  cpu time   %v\n", r.CPUTime)
	fmt.Fprintf(&b, "  syscalls   %d\n", r.Syscalls)
	fmt.Fprintf(&b, "  msgs sent  %d\n", r.MsgsSent)
	fmt.Fprintf(&b, "  msgs recv  %d\n", r.MsgsRecv)
	if r.MaxRSSKB > 0 {
		fmt.Fprintf(&b, "  max rss    %d KB\n", r.MaxRSSKB)
	}
	return b.String()
}

// FormatStatsTable renders a multi-process resource summary sorted by
// CPU time, descending.
func FormatStatsTable(infos []proc.Info) string {
	sorted := append([]proc.Info(nil), infos...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rusage.CPUTime != sorted[j].Rusage.CPUTime {
			return sorted[i].Rusage.CPUTime > sorted[j].Rusage.CPUTime
		}
		return sorted[i].ID.String() < sorted[j].ID.String()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-12s %-8s %12s %9s %6s %6s\n",
		"process", "name", "state", "cpu", "syscalls", "sent", "recv")
	for _, p := range sorted {
		fmt.Fprintf(&b, "%-20s %-12s %-8s %12v %9d %6d %6d\n",
			p.ID, p.Name, p.State, p.Rusage.CPUTime, p.Rusage.Syscalls,
			p.Rusage.MsgsSent, p.Rusage.MsgsRecv)
	}
	return b.String()
}

// FormatFDs renders the open-descriptor display of one process (a §7
// planned tool).
func FormatFDs(id proc.GPID, open []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "open descriptors of %s:\n", id)
	if len(open) == 0 {
		b.WriteString("  (none)\n")
		return b.String()
	}
	for _, fd := range open {
		parts := strings.SplitN(fd, ":", 2)
		if len(parts) == 2 {
			fmt.Fprintf(&b, "  %3s  %s\n", parts[0], parts[1])
		} else {
			fmt.Fprintf(&b, "  %s\n", fd)
		}
	}
	return b.String()
}

// IPCStat summarizes message activity for one process, computed from
// EvIPC history events (the §7 IPC tracing and analysis tool).
type IPCStat struct {
	Proc   proc.GPID
	Events int
	First  time.Duration
	Last   time.Duration
}

// AnalyzeIPC reduces a history trace to per-process IPC activity.
func AnalyzeIPC(events []proc.Event) []IPCStat {
	byProc := make(map[proc.GPID]*IPCStat)
	var order []proc.GPID
	for _, ev := range events {
		if ev.Kind != proc.EvIPC {
			continue
		}
		st, ok := byProc[ev.Proc]
		if !ok {
			st = &IPCStat{Proc: ev.Proc, First: ev.At}
			byProc[ev.Proc] = st
			order = append(order, ev.Proc)
		}
		st.Events++
		st.Last = ev.At
	}
	detord.SortBy(order, proc.GPID.String)
	out := make([]IPCStat, 0, len(order))
	for _, id := range order {
		out = append(out, *byProc[id])
	}
	return out
}

// FormatIPC renders the IPC activity analysis.
func FormatIPC(stats []IPCStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %14s %14s %10s\n", "process", "events", "first", "last", "rate/s")
	for _, s := range stats {
		span := (s.Last - s.First).Seconds()
		rate := 0.0
		if span > 0 {
			rate = float64(s.Events-1) / span
		}
		fmt.Fprintf(&b, "%-20s %8d %14v %14v %10.2f\n", s.Proc, s.Events, s.First, s.Last, rate)
	}
	return b.String()
}

// FormatTimeline renders a history trace as one line per event, the
// historical data gathering tool's raw display.
func FormatTimeline(events []proc.Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%12v  %-8s %-18s", ev.At, ev.Kind, ev.Proc)
		switch {
		case ev.Kind == proc.EvFork && !ev.Child.IsZero():
			fmt.Fprintf(&b, " child=%s", ev.Child)
		case ev.Signal != 0:
			fmt.Fprintf(&b, " sig=%s", ev.Signal)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, " %s", ev.Detail)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Histogram buckets event counts over fixed-width time windows, a
// simple data reduction for display tools.
type Histogram struct {
	Width   time.Duration
	Start   time.Duration
	Buckets []int
}

// HistogramOf reduces events into count-per-window buckets.
func HistogramOf(events []proc.Event, width time.Duration) Histogram {
	h := Histogram{Width: width}
	if len(events) == 0 || width <= 0 {
		return h
	}
	h.Start = events[0].At
	for _, ev := range events {
		idx := int((ev.At - h.Start) / width)
		if idx < 0 {
			continue
		}
		for len(h.Buckets) <= idx {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[idx]++
	}
	return h
}

// Format renders the histogram as an ASCII bar chart.
func (h Histogram) Format() string {
	var b strings.Builder
	max := 0
	for _, n := range h.Buckets {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return "(no events)\n"
	}
	const barWidth = 40
	for i, n := range h.Buckets {
		at := h.Start + time.Duration(i)*h.Width
		bar := strings.Repeat("#", n*barWidth/max)
		fmt.Fprintf(&b, "%12v %4d %s\n", at, n, bar)
	}
	return b.String()
}

// FormatSnapshotTable renders a snapshot as a process table: genealogy
// shown by indentation, with state and resource columns — the tabular
// display tool of §7.
func FormatSnapshotTable(s proc.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-8s %12s %9s %8s\n",
		"process", "state", "cpu", "syscalls", "rss(KB)")
	var walk func(p proc.Info, depth int)
	walk = func(p proc.Info, depth int) {
		name := strings.Repeat("  ", depth) + p.ID.String() + " " + p.Name
		if len(name) > 34 {
			name = name[:34]
		}
		fmt.Fprintf(&b, "%-34s %-8s %12v %9d %8d\n",
			name, p.State, p.Rusage.CPUTime, p.Rusage.Syscalls, p.Rusage.MaxRSSKB)
		for _, k := range s.Children(p.ID) {
			walk(k, depth+1)
		}
	}
	for _, r := range s.Roots() {
		walk(r, 0)
	}
	if len(s.Partial) > 0 {
		fmt.Fprintf(&b, "[no information from: %s]\n", strings.Join(s.Partial, ", "))
	}
	return b.String()
}
