package tools

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/proc"
)

func TestFormatStatsRunning(t *testing.T) {
	out := FormatStats(proc.Info{
		ID: proc.GPID{Host: "vax1", PID: 9}, Name: "job", User: "felipe",
		State:  proc.Running,
		Rusage: proc.Rusage{CPUTime: 2 * time.Second, Syscalls: 10, MsgsSent: 3, MsgsRecv: 4},
	})
	for _, want := range []string{"<vax1,9>", "job", "running", "2s", "10", "msgs sent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "exit code") {
		t.Fatal("running process should not show exit info")
	}
	if strings.Contains(out, "max rss") {
		t.Fatal("zero rss should be omitted")
	}
}

func TestFormatStatsExited(t *testing.T) {
	out := FormatStats(proc.Info{
		ID: proc.GPID{Host: "vax1", PID: 9}, Name: "job", State: proc.Exited,
		ExitCode: 3, StartedAt: time.Second, ExitedAt: 5 * time.Second,
		Rusage: proc.Rusage{MaxRSSKB: 128},
	})
	if !strings.Contains(out, "exit code 3 after 4s") {
		t.Fatalf("exit line wrong:\n%s", out)
	}
	if !strings.Contains(out, "128 KB") {
		t.Fatalf("rss missing:\n%s", out)
	}
}

func TestFormatStatsTableSortedByCPU(t *testing.T) {
	out := FormatStatsTable([]proc.Info{
		{ID: proc.GPID{Host: "a", PID: 1}, Name: "small", Rusage: proc.Rusage{CPUTime: time.Second}},
		{ID: proc.GPID{Host: "a", PID: 2}, Name: "big", Rusage: proc.Rusage{CPUTime: time.Minute}},
	})
	if strings.Index(out, "big") > strings.Index(out, "small") {
		t.Fatalf("not sorted by cpu:\n%s", out)
	}
}

func TestFormatFDs(t *testing.T) {
	out := FormatFDs(proc.GPID{Host: "a", PID: 1}, []string{"0:/dev/tty", "3:/tmp/x"})
	if !strings.Contains(out, "  3  /tmp/x") {
		t.Fatalf("fd line wrong:\n%s", out)
	}
	empty := FormatFDs(proc.GPID{Host: "a", PID: 1}, nil)
	if !strings.Contains(empty, "(none)") {
		t.Fatal("empty case wrong")
	}
}

func mkIPC(pid proc.PID, at time.Duration) proc.Event {
	return proc.Event{Kind: proc.EvIPC, Proc: proc.GPID{Host: "a", PID: pid}, At: at}
}

func TestAnalyzeIPC(t *testing.T) {
	events := []proc.Event{
		mkIPC(1, time.Second),
		{Kind: proc.EvFork, Proc: proc.GPID{Host: "a", PID: 1}, At: 2 * time.Second}, // ignored
		mkIPC(1, 3*time.Second),
		mkIPC(2, 4*time.Second),
	}
	stats := AnalyzeIPC(events)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Events != 2 || stats[0].First != time.Second || stats[0].Last != 3*time.Second {
		t.Fatalf("pid1 stat: %+v", stats[0])
	}
	out := FormatIPC(stats)
	if !strings.Contains(out, "<a,1>") || !strings.Contains(out, "<a,2>") {
		t.Fatalf("format:\n%s", out)
	}
	// Rate: 1 inter-arrival over 2s = 0.5/s.
	if !strings.Contains(out, "0.50") {
		t.Fatalf("rate wrong:\n%s", out)
	}
}

func TestFormatTimeline(t *testing.T) {
	events := []proc.Event{
		{At: time.Second, Kind: proc.EvFork, Proc: proc.GPID{Host: "a", PID: 1},
			Child: proc.GPID{Host: "a", PID: 2}},
		{At: 2 * time.Second, Kind: proc.EvSignal, Proc: proc.GPID{Host: "a", PID: 2},
			Signal: proc.SIGUSR1},
		{At: 3 * time.Second, Kind: proc.EvExec, Proc: proc.GPID{Host: "a", PID: 2},
			Detail: "a.out"},
	}
	out := FormatTimeline(events)
	for _, want := range []string{"child=<a,2>", "sig=SIGUSR1", "a.out", "fork", "exec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Fatalf("lines = %d", lines)
	}
}

func TestHistogram(t *testing.T) {
	var events []proc.Event
	for i := 0; i < 10; i++ {
		events = append(events, mkIPC(1, time.Duration(i)*100*time.Millisecond))
	}
	h := HistogramOf(events, 500*time.Millisecond)
	if len(h.Buckets) != 2 || h.Buckets[0] != 5 || h.Buckets[1] != 5 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	out := h.Format()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := HistogramOf(nil, time.Second)
	if len(h.Buckets) != 0 {
		t.Fatal("empty events should yield no buckets")
	}
	if !strings.Contains(h.Format(), "no events") {
		t.Fatal("empty format wrong")
	}
	if got := HistogramOf([]proc.Event{mkIPC(1, 0)}, 0); len(got.Buckets) != 0 {
		t.Fatal("zero width should yield no buckets")
	}
}

func TestFormatSnapshotTable(t *testing.T) {
	snap := proc.Merge(0, []proc.Info{
		{ID: proc.GPID{Host: "a", PID: 1}, Name: "root", State: proc.Running,
			Rusage: proc.Rusage{CPUTime: time.Second, Syscalls: 12, MaxRSSKB: 64}},
		{ID: proc.GPID{Host: "b", PID: 2}, Parent: proc.GPID{Host: "a", PID: 1},
			Name: "kid", State: proc.Stopped},
	})
	snap.Partial = []string{"c"}
	out := FormatSnapshotTable(snap)
	for _, want := range []string{"<a,1> root", "  <b,2> kid", "stopped", "12", "64", "no information from: c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Child indented under parent.
	if strings.Index(out, "<a,1>") > strings.Index(out, "<b,2>") {
		t.Fatalf("order wrong:\n%s", out)
	}
}
