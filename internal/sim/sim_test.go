package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	at := Time(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	s.After(42*time.Millisecond, func() { at = s.Now() })
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if at != Time(42*time.Millisecond) {
		t.Fatalf("event ran at %v, want T+42ms", at)
	}
}

func TestSchedulePastRunsNow(t *testing.T) {
	s := NewScheduler(1)
	if err := s.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var ranAt Time
	s.At(Time(1*time.Millisecond), func() { ranAt = s.Now() })
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if ranAt != Time(10*time.Millisecond) {
		t.Fatalf("past event ran at %v, want now (T+10ms)", ranAt)
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel reported false on pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Fired() {
		t.Fatal("cancelled timer should report no longer pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, func() {})
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire reported true")
	}
	if !tm.Fired() {
		t.Fatal("fired timer should report Fired")
	}
}

func TestCancelOneOfManyAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	at := Time(time.Millisecond)
	var timers []Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, s.At(at, func() { got = append(got, i) }))
	}
	timers[2].Cancel()
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	s.After(5*time.Millisecond, func() { fired = append(fired, "in") })
	s.After(15*time.Millisecond, func() { fired = append(fired, "out") })
	if err := s.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "in" {
		t.Fatalf("fired = %v, want [in]", fired)
	}
	if s.Now() != Time(10*time.Millisecond) {
		t.Fatalf("now = %v, want T+10ms", s.Now())
	}
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("second event never fired: %v", fired)
	}
}

func TestRunUntilExecutesEventExactlyAtDeadline(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(10*time.Millisecond, func() { fired = true })
	if err := s.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at deadline did not fire")
	}
}

func TestRunUntilIdleBudget(t *testing.T) {
	s := NewScheduler(1)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	loop()
	if err := s.RunUntilIdle(100); err == nil {
		t.Fatal("expected budget-exhausted error")
	}
}

func TestRunUntilDone(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { n++ })
	}
	ok, err := s.RunUntilDone(func() bool { return n >= 5 }, 100)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestRunUntilDoneNeverSatisfied(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Millisecond, func() {})
	ok, err := s.RunUntilDone(func() bool { return false }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("done reported satisfied")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(time.Millisecond, func() { fired = true })
	s.Stop()
	if err := s.RunUntilIdle(10); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired {
		t.Fatal("event fired after Stop")
	}
}

func TestDeferRunsAfterQueuedEventsAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []string
	s.Defer(func() {
		got = append(got, "a")
		s.Defer(func() { got = append(got, "c") })
	})
	s.Defer(func() { got = append(got, "b") })
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	want := "abc"
	joined := ""
	for _, g := range got {
		joined += g
	}
	if joined != want {
		t.Fatalf("order = %q, want %q", joined, want)
	}
}

func TestPendingCount(t *testing.T) {
	s := NewScheduler(1)
	t1 := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	t1.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("pending = %d after cancel, want 1", s.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewScheduler(42)
	b := NewScheduler(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Microsecond)
	if tm.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v, want 1.5", tm.Milliseconds())
	}
	if tm.Add(500*time.Microsecond) != Time(2*time.Millisecond) {
		t.Fatal("Add wrong")
	}
	if tm.Sub(Time(time.Millisecond)) != 500*time.Microsecond {
		t.Fatal("Sub wrong")
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After wrong")
	}
	if tm.String() != "T+1.5ms" {
		t.Fatalf("String = %q", tm.String())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock never goes backwards.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(7)
		var fireTimes []Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		if err := s.RunUntilIdle(uint64(len(delays)) + 1); err != nil {
			return false
		}
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling any subset of timers never affects the relative
// order of the survivors.
func TestPropertyCancelPreservesSurvivorOrder(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		s := NewScheduler(11)
		type rec struct {
			id int
			at Time
		}
		var fired []rec
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.After(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, rec{i, s.Now()})
			})
		}
		cancelled := map[int]bool{}
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		if err := s.RunUntilIdle(uint64(len(delays)) + 1); err != nil {
			return false
		}
		for _, r := range fired {
			if cancelled[r.id] {
				return false
			}
		}
		return len(fired) == len(delays)-len(cancelled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepsCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 5 {
		t.Fatalf("steps = %d", s.Steps())
	}
}

func TestRunUntilDoneBudgetExhausted(t *testing.T) {
	s := NewScheduler(1)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	loop()
	ok, err := s.RunUntilDone(func() bool { return false }, 50)
	if ok || err == nil {
		t.Fatalf("ok=%v err=%v, want budget error", ok, err)
	}
}

func TestStopDuringRunUntilDone(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Millisecond, func() { s.Stop() })
	s.After(2*time.Millisecond, func() { t.Fatal("event after Stop ran") })
	ok, err := s.RunUntilDone(func() bool { return false }, 100)
	if ok || err != ErrStopped {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestNilTimerSafe(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Fatal("zero timer cancel reported true")
	}
	if !tm.Fired() {
		t.Fatal("zero timer should report fired/not-pending")
	}
	s := NewScheduler(1)
	empty := s.At(0, nil) // nil fn yields inert timer
	if empty.Cancel() {
		t.Fatal("inert timer cancel reported true")
	}
}

func TestRunUntilNeverPassesDeadline(t *testing.T) {
	s := NewScheduler(1)
	var ranLate bool
	s.After(10*time.Millisecond, func() { ranLate = true })
	if err := s.RunUntil(Time(9 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ranLate {
		t.Fatal("event past the deadline executed")
	}
	if s.Now() != Time(9*time.Millisecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

// TestStaleTimerHandleIsInert pins the generation guard: once an event
// fires and its struct is recycled into a new timer, the old handle
// must neither cancel nor report the new event as its own.
func TestStaleTimerHandleIsInert(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	old := s.After(time.Millisecond, func() { fired++ })
	if err := s.RunUntilIdle(4); err != nil {
		t.Fatal(err)
	}
	if !old.Fired() {
		t.Fatal("timer should report fired after its event ran")
	}
	// The next After reuses the recycled event struct.
	fresh := s.After(time.Millisecond, func() { fired += 10 })
	if old.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if fresh.Fired() {
		t.Fatal("fresh timer reported fired while pending")
	}
	if err := s.RunUntilIdle(4); err != nil {
		t.Fatal(err)
	}
	if fired != 11 {
		t.Fatalf("fired = %d, want 11 (stale cancel must not kill the new event)", fired)
	}
}

// TestCancelledTimerHandleIsInert is the cancel-path twin: a handle
// whose event was cancelled and recycled stays a no-op.
func TestCancelledTimerHandleIsInert(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	old := s.After(time.Millisecond, func() { fired++ })
	if !old.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if old.Cancel() {
		t.Fatal("second cancel should be a no-op")
	}
	fresh := s.After(time.Millisecond, func() { fired += 10 })
	if old.Cancel() {
		t.Fatal("stale handle cancelled the recycled event")
	}
	_ = fresh
	if err := s.RunUntilIdle(4); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

// TestSchedulingSteadyStateZeroAllocs pins the event free list: a
// schedule/fire cycle in the steady state touches the allocator zero
// times (the event struct is recycled, the Timer is a value).
func TestSchedulingSteadyStateZeroAllocs(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	// Warm up: allocate the one event struct and heap slot.
	s.After(time.Microsecond, fn)
	s.Step()
	allocs := testing.AllocsPerRun(200, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire steady state: %.1f allocs/op, want 0", allocs)
	}
}
