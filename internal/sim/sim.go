// Package sim provides the discrete-event simulation core that the rest
// of the repository is built on: a virtual clock, an event scheduler,
// cancellable timers and a deterministic random number source.
//
// Everything in the simulated world (network links, kernels, LPMs,
// daemons) runs as callbacks scheduled on a single *Scheduler. There is
// exactly one goroutine; time advances only when the scheduler pops the
// next event. This makes every test and every experiment in the
// repository fully deterministic: the same seed and the same inputs
// produce byte-identical tables.
//
// The paper itself has no simulator — it measured a live 4.3BSD
// installation (§8's VAX and Sun hosts). This package is the
// substitution that makes the paper's quantitative evaluation
// reproducible: virtual time stands in for the 1986 wall clock, so
// Tables 1–3 regenerate exactly instead of approximately.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured as a duration since the
// simulation epoch (t=0). It deliberately does not use time.Time: the
// simulated world has no calendar, only an ever-increasing clock.
type Time time.Duration

// Common virtual-time units re-exported for readability at call sites.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)
	Hour        = Time(time.Hour)
)

// Duration returns the instant as a time.Duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Milliseconds returns the instant as fractional milliseconds since the
// epoch. Experiment harnesses report table cells in this unit.
func (t Time) Milliseconds() float64 {
	return float64(t) / float64(time.Millisecond)
}

// Add returns the instant d later than t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string {
	return fmt.Sprintf("T+%s", time.Duration(t))
}

// ErrStopped is returned by Run variants when the scheduler has been
// stopped explicitly with Stop.
var ErrStopped = errors.New("sim: scheduler stopped")

// event is a single scheduled callback. Event structs are recycled
// through the scheduler's free list once they fire or are cancelled —
// scheduling is allocation-free in the steady state — so a Timer never
// dereferences one without first checking its generation.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events at the same instant
	fn  func()

	gen   uint64 // bumped on recycle; stale Timer handles check it
	index int    // heap index, maintained by eventHeap; -1 = not queued
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled callback. Cancel prevents the
// callback from running if it has not fired yet. Timer is a value: the
// zero Timer is valid and behaves as already-fired, and handles stay
// safe after their event is recycled (the generation check turns stale
// handles into no-ops).
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint64
}

// Cancel stops the timer. It reports whether the callback was prevented
// from running (false if it already fired or was already cancelled).
func (t Timer) Cancel() bool {
	if t.ev == nil || t.gen != t.ev.gen || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.s.events, t.ev.index)
	t.s.recycle(t.ev)
	return true
}

// Fired reports whether the timer's callback has already run (or been
// cancelled): i.e. it is no longer pending.
func (t Timer) Fired() bool {
	return t.ev == nil || t.gen != t.ev.gen || t.ev.index < 0
}

// Scheduler is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event // recycled event structs, reused by At
	rng     *rand.Rand
	stopped bool
	steps   uint64
}

// NewScheduler returns a scheduler whose clock reads the epoch and whose
// random source is seeded with seed (use a fixed seed for determinism).
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		// #nosec G404 -- deterministic simulation randomness, not crypto.
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far. Useful for
// runaway-loop guards in tests.
func (s *Scheduler) Steps() uint64 { return s.steps }

// recycle returns a fired or cancelled event to the free list. The
// generation bump invalidates every Timer handle still referring to it.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	s.free = append(s.free, ev)
}

// At schedules fn to run at instant at. Scheduling in the past (or at
// the present instant) runs the event at the current time but strictly
// after all previously scheduled events for that time.
//
//ppmlint:hotpath pin=TestSchedulingSteadyStateZeroAllocs
func (s *Scheduler) At(at Time, fn func()) Timer {
	if fn == nil {
		return Timer{}
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn = at, s.seq, fn
	} else {
		//ppmlint:allow hotalloc cold path: free list empty, steady state recycles
		ev = &event{at: at, seq: s.seq, fn: fn}
	}
	heap.Push(&s.events, ev)
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current instant. Negative d is
// treated as zero.
//
//ppmlint:hotpath pin=TestSchedulingSteadyStateZeroAllocs
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Defer schedules fn to run at the current instant, after all events
// already queued for this instant. It is the simulation analogue of
// "go fn()".
func (s *Scheduler) Defer(fn func()) Timer { return s.At(s.now, fn) }

// Stop halts the scheduler: subsequent Run calls return ErrStopped
// without executing further events. Pending events stay queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the single earliest pending event, advancing the clock
// to its instant. It reports whether an event was executed.
// (Cancelled events are removed from the heap eagerly, so every queued
// event is live.)
//
//ppmlint:hotpath pin=TestSchedulingSteadyStateZeroAllocs
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.events).(*event)
	if !ok {
		return false
	}
	s.now = ev.at
	s.steps++
	fn := ev.fn
	s.recycle(ev) // before fn: handles to this event now read as fired
	fn()
	return true
}

// pendingAt returns the instant of the earliest pending event and
// whether one exists.
func (s *Scheduler) pendingAt() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].at, true
}

// RunUntil executes events until the clock would pass deadline, then
// sets the clock to deadline. Events scheduled exactly at the deadline
// are executed.
func (s *Scheduler) RunUntil(deadline Time) error {
	for {
		if s.stopped {
			return ErrStopped
		}
		at, ok := s.pendingAt()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// RunFor advances the clock by d, executing all events in the window.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// RunUntilIdle executes events until none remain. maxSteps guards
// against event loops that reschedule themselves forever; it returns an
// error if the budget is exhausted.
func (s *Scheduler) RunUntilIdle(maxSteps uint64) error {
	for i := uint64(0); ; i++ {
		if s.stopped {
			return ErrStopped
		}
		if i >= maxSteps {
			return fmt.Errorf("sim: RunUntilIdle exceeded %d steps at %v", maxSteps, s.now)
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntilDone executes events until done returns true or no events
// remain. It returns an error if the budget maxSteps is exhausted first,
// and reports whether done was satisfied.
func (s *Scheduler) RunUntilDone(done func() bool, maxSteps uint64) (bool, error) {
	for i := uint64(0); ; i++ {
		if done() {
			return true, nil
		}
		if s.stopped {
			return false, ErrStopped
		}
		if i >= maxSteps {
			return false, fmt.Errorf("sim: RunUntilDone exceeded %d steps at %v", maxSteps, s.now)
		}
		if !s.Step() {
			return false, nil
		}
	}
}

// Pending returns the number of pending (non-cancelled) events.
func (s *Scheduler) Pending() int { return len(s.events) }
