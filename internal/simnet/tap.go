package simnet

import (
	"fmt"
	"sort"
	"strings"

	"ppm/internal/sim"
)

// TapKind classifies network tap events.
type TapKind int

// Tap event kinds.
const (
	TapSend TapKind = iota + 1
	TapDeliver
	TapDrop
	TapConnOpen
	TapConnBreak
)

// String names the kind.
func (k TapKind) String() string {
	switch k {
	case TapSend:
		return "send"
	case TapDeliver:
		return "deliver"
	case TapDrop:
		return "drop"
	case TapConnOpen:
		return "open"
	case TapConnBreak:
		return "break"
	default:
		return "tap?"
	}
}

// TapEvent is one observed network occurrence: the wire-level
// visibility needed to assess message routing (paper §7).
type TapEvent struct {
	At      sim.Time
	Kind    TapKind
	From    Addr
	To      Addr
	Size    int
	Circuit bool
}

// SetTap installs a network observer; nil removes it. The tap sees
// datagram and circuit traffic, drops, circuit openings and breaks.
func (n *Network) SetTap(fn func(TapEvent)) { n.tap = fn }

func (n *Network) emitTap(ev TapEvent) {
	if n.tap != nil {
		ev.At = n.sched.Now()
		n.tap(ev)
	}
}

// TraceCollector accumulates tap events up to a bound.
type TraceCollector struct {
	Events  []TapEvent
	Dropped int // events beyond the bound
	limit   int
}

// Trace installs a bounded collector as the network tap and returns it
// (limit 0 means 4096 events).
func (n *Network) Trace(limit int) *TraceCollector {
	if limit <= 0 {
		limit = 4096
	}
	tc := &TraceCollector{limit: limit}
	n.SetTap(tc.add)
	return tc
}

func (tc *TraceCollector) add(ev TapEvent) {
	if len(tc.Events) >= tc.limit {
		tc.Dropped++
		return
	}
	tc.Events = append(tc.Events, ev)
}

// flowKey aggregates by host pair.
type flowKey struct{ from, to string }

// FlowStat summarizes one directed host-pair flow.
type FlowStat struct {
	From, To string
	Msgs     int
	Bytes    int
	Drops    int
}

// Flows reduces the trace to per-host-pair statistics, sorted by
// descending byte volume.
func (tc *TraceCollector) Flows() []FlowStat {
	agg := map[flowKey]*FlowStat{}
	for _, ev := range tc.Events {
		if ev.Kind != TapSend && ev.Kind != TapDrop {
			continue
		}
		k := flowKey{ev.From.Host, ev.To.Host}
		st, ok := agg[k]
		if !ok {
			st = &FlowStat{From: k.from, To: k.to}
			agg[k] = st
		}
		if ev.Kind == TapDrop {
			st.Drops++
			continue
		}
		st.Msgs++
		st.Bytes += ev.Size
	}
	out := make([]FlowStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Format renders the flow summary.
func (tc *TraceCollector) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %8s %10s %6s\n", "from", "to", "msgs", "bytes", "drops")
	for _, f := range tc.Flows() {
		fmt.Fprintf(&b, "%-10s %-10s %8d %10d %6d\n", f.From, f.To, f.Msgs, f.Bytes, f.Drops)
	}
	if tc.Dropped > 0 {
		fmt.Fprintf(&b, "(trace truncated: %d events beyond the %d-event bound)\n",
			tc.Dropped, tc.limit)
	}
	return b.String()
}
