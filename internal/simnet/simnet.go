// Package simnet simulates the 1986 internetwork the PPM runs on: hosts
// attached to Ethernet segments joined by gateways, datagram delivery,
// and reliable stream circuits (the TCP virtual circuits the paper's
// sibling LPMs communicate over).
//
// Delays are charged per physical hop (segment traversal) plus
// per-byte serialization, using the constants in package calib. The
// network supports the failure modes of the paper's Section 5: host
// crashes, and network partitions that split the internetwork into
// isolated connected components. Circuits crossing a failure break
// visibly after a detection delay, exactly the signal the PPM's crash
// recovery machinery is driven by.
package simnet

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ppm/internal/calib"
	"ppm/internal/detord"
	"ppm/internal/journal"
	"ppm/internal/metrics"
	"ppm/internal/sim"
	"ppm/internal/trace"
)

// Network errors.
var (
	ErrUnknownHost    = errors.New("simnet: unknown host")
	ErrHostDown       = errors.New("simnet: host down")
	ErrUnreachable    = errors.New("simnet: unreachable")
	ErrNoListener     = errors.New("simnet: connection refused")
	ErrConnClosed     = errors.New("simnet: connection closed")
	ErrPeerLost       = errors.New("simnet: peer lost")
	ErrPortInUse      = errors.New("simnet: port in use")
	ErrDuplicateHost  = errors.New("simnet: duplicate host")
	ErrUnknownSegment = errors.New("simnet: unknown segment")
)

// Addr is a network endpoint: a host name and a port.
type Addr struct {
	Host string
	Port uint16
}

// String renders host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Host == "" && a.Port == 0 }

// Options configure a Network.
type Options struct {
	// HopTransit is the one-way per-hop latency. Zero means
	// calib.HopTransit.
	HopTransit time.Duration
	// BreakDetect is how long a circuit endpoint takes to notice that
	// its peer vanished (crash or partition). Zero means 1 second.
	BreakDetect time.Duration
}

func (o Options) withDefaults() Options {
	if o.HopTransit == 0 {
		o.HopTransit = calib.HopTransit
	}
	if o.BreakDetect == 0 {
		o.BreakDetect = time.Second
	}
	return o
}

// Stats counts network activity, used by the ablation benchmarks.
type Stats struct {
	MsgsSent     int64
	BytesSent    int64
	MsgsDropped  int64
	ConnsOpened  int64
	ConnsBroken  int64
	DialAttempts int64
}

// node is one host's network presence.
type node struct {
	name      string
	up        bool
	group     int // partition group; hosts communicate iff equal
	segments  []string
	listeners map[uint16]func(*Conn)
	dgram     map[uint16]func(from Addr, payload []byte)
	nextPort  uint16
	conns     map[*Conn]bool
}

// Network is the simulated internetwork.
type Network struct {
	sched    *sim.Scheduler
	opts     Options
	hosts    map[string]*node
	segments map[string][]string // segment -> member hosts
	hops     map[string]map[string]int
	dirty    bool // routes need recompute
	connSeq  uint64
	stats    Stats
	metrics  *metrics.Registry
	tracer   *trace.Tracer
	journal  *journal.Journal
	tap      func(TapEvent)
	loss     *lossPlan
	dirLoss  map[[2]string]*lossPlan // per-direction loss schedules
	// downPairs are endpoint pairs (normalized lower-name-first)
	// currently blacked out by a link flap.
	downPairs map[[2]string]bool
	bufFree   [][]byte // recycled delivery buffers (single-goroutine sim)
}

// New creates an empty network on the given scheduler.
func New(sched *sim.Scheduler, opts Options) *Network {
	return &Network{
		sched:    sched,
		opts:     opts.withDefaults(),
		hosts:    make(map[string]*node),
		segments: make(map[string][]string),
		dirty:    true,
	}
}

// Scheduler returns the underlying event scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// SetMetrics installs the installation-wide metrics registry. The
// network both feeds it (the simnet family) and carries it for the
// layers above: daemons and LPMs reach the registry through their
// *Network, so instrumenting them needs no constructor changes. A nil
// registry (the default) disables metrics.
func (n *Network) SetMetrics(reg *metrics.Registry) { n.metrics = reg }

// Metrics returns the registry installed with SetMetrics (possibly
// nil; all registry methods tolerate that).
func (n *Network) Metrics() *metrics.Registry { return n.metrics }

// SetTracer installs the cluster-wide causal tracer. Like the metrics
// registry, the network both feeds it (per-hop transit spans) and
// carries it for the layers above, which reach it through their
// *Network. A nil tracer (the default) disables tracing.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// Tracer returns the tracer installed with SetTracer (possibly nil;
// all tracer methods tolerate that).
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// SetJournal installs the cluster's flight recorder. Like the metrics
// registry, the network both feeds it (message motion and failure
// injection) and carries it for the layers above, which reach it
// through their *Network. A nil journal (the default) disables it.
func (n *Network) SetJournal(j *journal.Journal) { n.journal = j }

// Journal returns the journal installed with SetJournal (possibly nil;
// all journal methods tolerate that).
func (n *Network) Journal() *journal.Journal { return n.journal }

// logMsg appends one message-motion record on host (the sender for
// sends, the receiver for deliveries): kind is the record kind
// (send/deliver/drop), transport "datagram" or "circuit", and note an
// optional drop reason.
func (n *Network) logMsg(kind journal.Kind, host, transport string, from, to Addr,
	size int, note string, ctx trace.Context) {
	if n.journal == nil {
		return
	}
	detail := fmt.Sprintf("%s %s->%s %dB", transport, from, to, size)
	if note != "" {
		detail += " " + note
	}
	n.journal.AppendCtx(kind, host, detail, ctx.Trace, ctx.Span)
}

// ResetStats zeroes the activity counters.
func (n *Network) ResetStats() { n.stats = Stats{} }

// AddHost registers a host. Hosts start up.
func (n *Network) AddHost(name string) error {
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateHost, name)
	}
	n.hosts[name] = &node{
		name:      name,
		up:        true,
		listeners: make(map[uint16]func(*Conn)),
		dgram:     make(map[uint16]func(Addr, []byte)),
		nextPort:  10000,
		conns:     make(map[*Conn]bool),
	}
	n.dirty = true
	return nil
}

// AddSegment attaches hosts to a (new or existing) Ethernet segment.
// A host attached to two segments acts as a gateway between them.
func (n *Network) AddSegment(segment string, hostNames ...string) error {
	for _, h := range hostNames {
		nd, ok := n.hosts[h]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownHost, h)
		}
		member := false
		for _, s := range nd.segments {
			if s == segment {
				member = true
			}
		}
		if !member {
			nd.segments = append(nd.segments, segment)
			n.segments[segment] = append(n.segments[segment], h)
		}
	}
	n.dirty = true
	return nil
}

// Hosts returns the sorted host names.
func (n *Network) Hosts() []string {
	return detord.Keys(n.hosts)
}

// computeRoutes runs BFS over the host/segment bipartite graph and
// records the hop count (number of segments traversed) between every
// host pair. Partition groups are not considered here; they gate
// delivery dynamically.
func (n *Network) computeRoutes() {
	n.hops = make(map[string]map[string]int, len(n.hosts))
	for src := range n.hosts {
		dist := map[string]int{src: 0}
		frontier := []string{src}
		for len(frontier) > 0 {
			var next []string
			for _, h := range frontier {
				for _, seg := range n.hosts[h].segments {
					for _, peer := range n.segments[seg] {
						if _, seen := dist[peer]; !seen {
							dist[peer] = dist[h] + 1
							next = append(next, peer)
						}
					}
				}
			}
			frontier = next
		}
		n.hops[src] = dist
	}
	n.dirty = false
}

// Hops returns the physical hop count between two hosts and whether a
// path exists at all (ignoring partitions and host state).
func (n *Network) Hops(a, b string) (int, bool) {
	if n.dirty {
		n.computeRoutes()
	}
	if a == b {
		if _, ok := n.hosts[a]; ok {
			return 0, true
		}
		return 0, false
	}
	m, ok := n.hops[a]
	if !ok {
		return 0, false
	}
	h, ok := m[b]
	return h, ok
}

// Reachable reports whether a message from a can currently be delivered
// to b: both hosts up, a physical path exists, no partition separates
// them, and no link flap currently blacks the pair out.
func (n *Network) Reachable(a, b string) bool {
	na, ok := n.hosts[a]
	if !ok {
		return false
	}
	nb, ok := n.hosts[b]
	if !ok {
		return false
	}
	if !na.up || !nb.up || na.group != nb.group {
		return false
	}
	if n.downPairs[pairKey(a, b)] {
		return false
	}
	_, ok = n.Hops(a, b)
	return ok
}

// pairKey normalizes an unordered host pair (lower name first).
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// sendCounters pairs the precomputed per-transport counter names, so
// the per-message accounting path concatenates no strings.
type sendCounters struct{ sent, bytes string }

var (
	datagramCounters = sendCounters{sent: "simnet.datagram.sent", bytes: "simnet.datagram.bytes"}
	circuitCounters  = sendCounters{sent: "simnet.circuit.sent", bytes: "simnet.circuit.bytes"}
)

// countSend records one message of the given transport in the metrics
// registry, including the segment hops it will cross: <kind>.sent /
// <kind>.bytes count the message once, simnet.hop.crossings /
// simnet.hop.bytes charge it once per physical segment traversed (a
// 2-hop datagram loads two Ethernets).
func (n *Network) countSend(names sendCounters, from, to string, size int) {
	if n.metrics == nil {
		return
	}
	n.metrics.Counter(names.sent).Inc()
	n.metrics.Counter(names.bytes).Add(uint64(size))
	if hops, ok := n.Hops(from, to); ok && hops > 0 {
		n.metrics.Counter("simnet.hop.crossings").Add(uint64(hops))
		n.metrics.Counter("simnet.hop.bytes").Add(uint64(hops * size))
	}
}

// transit computes the one-way delay for size bytes between two hosts.
// Intra-host delivery still pays a small fixed cost (loopback).
func (n *Network) transit(a, b string, size int) time.Duration {
	hops, ok := n.Hops(a, b)
	if !ok {
		return 0
	}
	if hops == 0 {
		return 100 * time.Microsecond // loopback
	}
	return time.Duration(hops)*n.opts.HopTransit +
		time.Duration(hops)*calib.TransmissionTime(size)
}

// Path returns the shortest host path from a to b (both endpoints
// included), ignoring partitions and host state. The BFS expands hosts
// and segment members in their registration order, so the path is the
// same on every run — trace reports that attribute hop spans to the
// hosts along it stay byte-identical.
func (n *Network) Path(a, b string) ([]string, bool) {
	if n.dirty {
		n.computeRoutes()
	}
	if _, ok := n.hosts[a]; !ok {
		return nil, false
	}
	if a == b {
		return []string{a}, true
	}
	prev := map[string]string{a: a}
	frontier := []string{a}
	for len(frontier) > 0 {
		var next []string
		for _, h := range frontier {
			for _, seg := range n.hosts[h].segments {
				for _, peer := range n.segments[seg] {
					if _, seen := prev[peer]; seen {
						continue
					}
					prev[peer] = h
					if peer == b {
						var rev []string
						for cur := b; cur != a; cur = prev[cur] {
							rev = append(rev, cur)
						}
						rev = append(rev, a)
						for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
							rev[i], rev[j] = rev[j], rev[i]
						}
						return rev, true
					}
					next = append(next, peer)
				}
			}
		}
		frontier = next
	}
	return nil, false
}

// traceTransit records the per-hop transit schedule of a payload sent
// now from a to b as spans under ctx: one span per segment crossing,
// attributed to the forwarding host (so a gateway relaying a two-hop
// message shows up in the trace), or a single loopback span for
// intra-host delivery. The schedule mirrors transit()'s arithmetic.
// Reply-direction sends (tagged by the sender via SendReplyCtx) record
// "net.reply.*" spans instead of "net.hop.*", so the profiler can
// split request transit from reply transit — both directions of a
// circuit are otherwise indistinguishable at this layer.
func (n *Network) traceTransit(ctx trace.Context, a, b string, size int, reply bool) {
	if n.tracer == nil || !ctx.Valid() {
		return
	}
	path, ok := n.Path(a, b)
	if !ok {
		return
	}
	now := n.sched.Now().Duration()
	if len(path) == 1 {
		name := "net.loopback"
		if reply {
			name = "net.loopback.reply"
		}
		n.tracer.AddSpan(a, name, ctx, now, now+100*time.Microsecond)
		return
	}
	prefix := "net.hop."
	if reply {
		prefix = "net.reply."
	}
	per := n.opts.HopTransit + calib.TransmissionTime(size)
	for i := 0; i+1 < len(path); i++ {
		start := now + time.Duration(i)*per
		n.tracer.AddSpan(path[i], prefix+path[i+1], ctx, start, start+per)
	}
}

// --- failure injection: message loss ---

// lossPlan drops every Nth inter-host transmission. The schedule is a
// plain counter, not a random draw, so the casualties are the same on
// every same-seed run.
type lossPlan struct {
	every   int
	counter uint64
}

// InjectLoss arranges for every Nth inter-host message to be lost: a
// doomed datagram vanishes silently (UDP), while a doomed circuit
// message severs the circuit — TCP retransmits until the stack gives
// up, so persistent loss surfaces as a broken connection, the visible
// signal the reliability layer's redial path is driven by. Loopback
// traffic is never dropped. every <= 0 disables injection.
func (n *Network) InjectLoss(every int) {
	if every <= 0 {
		n.loss = nil
		return
	}
	n.loss = &lossPlan{every: every}
}

// InjectLossDir arranges for every Nth transmission from -> to (that
// direction only) to be lost, on top of any symmetric plan. Asymmetric
// loss is the signature of a half-broken gateway: replies vanish while
// requests arrive, which is exactly the case an accrual detector must
// distinguish from a dead peer. every <= 0 clears the direction.
func (n *Network) InjectLossDir(from, to string, every int) {
	if n.dirLoss == nil {
		n.dirLoss = make(map[[2]string]*lossPlan)
	}
	if every <= 0 {
		delete(n.dirLoss, [2]string{from, to})
		return
	}
	n.dirLoss[[2]string{from, to}] = &lossPlan{every: every}
}

// loseNow advances the loss schedules and reports whether this
// transmission is an injected casualty. Both the symmetric and the
// directional counter advance on every transmission they observe, so
// the casualty schedule is a pure function of the traffic sequence —
// identical on every same-seed run.
func (n *Network) loseNow(from, to string) bool {
	if from == to {
		return false
	}
	lost := false
	if n.loss != nil {
		n.loss.counter++
		lost = n.loss.counter%uint64(n.loss.every) == 0
	}
	if p, ok := n.dirLoss[[2]string{from, to}]; ok {
		p.counter++
		if p.counter%uint64(p.every) == 0 {
			lost = true
		}
	}
	return lost
}

// --- failure injection: link flapping ---

// FlapLink schedules a deterministic flap of the a<->b endpoint pair:
// after upFor of healthy operation the pair blacks out (both
// directions, like a partition scoped to one pair) for downFor, then
// comes back, repeating for the given number of cycles. Circuits
// between the pair crossing a down window sever with the usual
// break-detection delay; each boundary is journaled (net.flap.down /
// net.flap.up), so the audit sees flaps as reachability epochs.
func (n *Network) FlapLink(a, b string, upFor, downFor time.Duration, cycles int) {
	if n.downPairs == nil {
		n.downPairs = make(map[[2]string]bool)
	}
	key := pairKey(a, b)
	var at time.Duration
	for i := 0; i < cycles; i++ {
		at += upFor
		n.sched.After(at, func() { n.flapDown(key) })
		at += downFor
		n.sched.After(at, func() { n.flapUp(key) })
	}
}

func (n *Network) flapDown(key [2]string) {
	if n.downPairs[key] {
		return
	}
	n.downPairs[key] = true
	n.metrics.Counter("simnet.flap.downs").Inc()
	n.journal.Append(journal.NetFlapDown, "", "link="+key[0]+"|"+key[1])
	n.breakSeveredConns()
}

func (n *Network) flapUp(key [2]string) {
	if !n.downPairs[key] {
		return
	}
	delete(n.downPairs, key)
	n.metrics.Counter("simnet.flap.ups").Inc()
	n.journal.Append(journal.NetFlapUp, "", "link="+key[0]+"|"+key[1])
}

// --- host lifecycle and failures ---

// Up reports whether the host is running.
func (n *Network) Up(host string) bool {
	nd, ok := n.hosts[host]
	return ok && nd.up
}

// Status is the network's live-introspection hook for one host: whether
// it is up and how many open circuit endpoints it holds (closed
// endpoints leave the connection set immediately). It allocates
// nothing.
func (n *Network) Status(host string) (up bool, conns int) {
	nd, ok := n.hosts[host]
	if !ok {
		return false, 0
	}
	return nd.up, len(nd.conns)
}

// Crash takes a host down: its listeners and datagram handlers vanish,
// its circuit endpoints die silently, and remote peers notice after the
// break-detection delay.
func (n *Network) Crash(host string) error {
	nd, ok := n.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if !nd.up {
		return nil
	}
	n.metrics.Counter("simnet.host.crashes").Inc()
	n.journal.Append(journal.NetHostCrash, host, "")
	nd.up = false
	nd.listeners = make(map[uint16]func(*Conn))
	nd.dgram = make(map[uint16]func(Addr, []byte))
	for _, c := range nd.sortedConns() {
		c.dieLocal() // no callbacks: the software on this host is gone
		if peer := c.peer; peer != nil {
			n.breakRemote(peer)
		}
	}
	nd.conns = make(map[*Conn]bool)
	return nil
}

// sortedConns returns the node's circuit endpoints in creation order,
// so that teardown paths iterating the conn set schedule their break
// notifications deterministically.
func (nd *node) sortedConns() []*Conn {
	out := make([]*Conn, 0, len(nd.conns))
	for c := range nd.conns {
		out = append(out, c)
	}
	detord.SortBy(out, func(c *Conn) uint64 { return c.seq })
	return out
}

// Restart brings a crashed host back up with no listeners (system
// daemons must be restarted by the environment).
func (n *Network) Restart(host string) error {
	nd, ok := n.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if !nd.up {
		n.metrics.Counter("simnet.host.restarts").Inc()
		n.journal.Append(journal.NetHostRestart, host, "")
	}
	nd.up = true
	return nil
}

// Partition splits the network: hosts in groups[i] land in partition
// group i+1; hosts not mentioned stay in group 0. Circuits crossing a
// group boundary break after the detection delay.
func (n *Network) Partition(groups ...[]string) error {
	for _, nd := range n.hosts {
		nd.group = 0
	}
	for i, g := range groups {
		for _, h := range g {
			nd, ok := n.hosts[h]
			if !ok {
				return fmt.Errorf("%w: %s", ErrUnknownHost, h)
			}
			nd.group = i + 1
		}
	}
	n.metrics.Counter("simnet.partition.events").Inc()
	if n.journal != nil {
		parts := make([]string, len(groups))
		for i, g := range groups {
			parts[i] = strings.Join(g, ",")
		}
		n.journal.Append(journal.NetPartition, "", "groups="+strings.Join(parts, "|"))
	}
	n.updatePartitionGauge()
	n.breakSeveredConns()
	return nil
}

// Heal removes all partitions.
func (n *Network) Heal() {
	for _, nd := range n.hosts {
		nd.group = 0
	}
	n.metrics.Counter("simnet.partition.heals").Inc()
	n.journal.Append(journal.NetHeal, "", "")
	n.updatePartitionGauge()
}

// updatePartitionGauge tracks how many hosts currently sit outside the
// default partition group.
func (n *Network) updatePartitionGauge() {
	var cut int64
	for _, nd := range n.hosts {
		if nd.group != 0 {
			cut++
		}
	}
	n.metrics.Gauge("simnet.partitioned_hosts").Set(cut)
}

func (n *Network) breakSeveredConns() {
	for _, h := range n.Hosts() {
		for _, c := range n.hosts[h].sortedConns() {
			if c.peer == nil || !c.open {
				continue
			}
			if !n.Reachable(c.local.Host, c.remote.Host) {
				n.breakRemote(c)
			}
		}
	}
}

// breakRemote schedules a broken-circuit notification on conn after the
// break-detection delay.
func (n *Network) breakRemote(c *Conn) {
	if c == nil || !c.open || c.breaking {
		return
	}
	c.breaking = true
	n.sched.After(n.opts.BreakDetect, func() {
		c.closeWith(ErrPeerLost)
	})
	n.stats.ConnsBroken++
	n.metrics.Counter("simnet.circuit.broken").Inc()
	n.emitTap(TapEvent{Kind: TapConnBreak, From: c.local, To: c.remote, Circuit: true})
	n.logMsg(journal.NetCircuitBreak, c.local.Host, "circuit", c.local, c.remote, 0, "", trace.Context{})
}

// copyBuf copies payload into a recycled delivery buffer. The
// simulation runs on one goroutine, so a plain stack is enough; the
// buffer is returned to the pool by putBuf once the receiving handler
// has run. Ownership rule (DESIGN.md "Hot paths & allocation
// discipline"): a delivery payload is valid only for the duration of
// the handler call — handlers that defer work must copy first, which
// the copying envelope decode already does.
func (n *Network) copyBuf(payload []byte) []byte {
	var b []byte
	if ln := len(n.bufFree); ln > 0 {
		b = n.bufFree[ln-1]
		n.bufFree[ln-1] = nil
		n.bufFree = n.bufFree[:ln-1]
	}
	return append(b, payload...)
}

// putBuf returns a delivery buffer to the free list.
func (n *Network) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	n.bufFree = append(n.bufFree, b[:0])
}

// --- datagrams ---

// HandleDatagram installs a datagram handler on host:port.
func (n *Network) HandleDatagram(host string, port uint16, fn func(from Addr, payload []byte)) error {
	nd, ok := n.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if !nd.up {
		return fmt.Errorf("%w: %s", ErrHostDown, host)
	}
	if _, exists := nd.dgram[port]; exists {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, host, port)
	}
	nd.dgram[port] = fn
	return nil
}

// RemoveDatagramHandler uninstalls a datagram handler.
func (n *Network) RemoveDatagramHandler(host string, port uint16) {
	if nd, ok := n.hosts[host]; ok {
		delete(nd.dgram, port)
	}
}

// SendDatagram delivers a datagram with best-effort semantics: silently
// dropped if the destination is unreachable or has no handler, like
// UDP.
func (n *Network) SendDatagram(from, to Addr, payload []byte) {
	n.SendDatagramCtx(from, to, payload, trace.Context{})
}

// SendDatagramCtx is SendDatagram under a trace context; when ctx is
// valid the datagram's per-hop transit is recorded as spans.
func (n *Network) SendDatagramCtx(from, to Addr, payload []byte, ctx trace.Context) {
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(len(payload))
	n.countSend(datagramCounters, from.Host, to.Host, len(payload))
	n.emitTap(TapEvent{Kind: TapSend, From: from, To: to, Size: len(payload)})
	n.logMsg(journal.NetSend, from.Host, "datagram", from, to, len(payload), "", ctx)
	if !n.Reachable(from.Host, to.Host) {
		n.stats.MsgsDropped++
		n.metrics.Counter("simnet.datagram.dropped").Inc()
		n.emitTap(TapEvent{Kind: TapDrop, From: from, To: to, Size: len(payload)})
		n.logMsg(journal.NetDrop, from.Host, "datagram", from, to, len(payload), "unreachable", ctx)
		return
	}
	if n.loseNow(from.Host, to.Host) {
		n.stats.MsgsDropped++
		n.metrics.Counter("simnet.datagram.dropped").Inc()
		n.metrics.Counter("simnet.injected.losses").Inc()
		n.emitTap(TapEvent{Kind: TapDrop, From: from, To: to, Size: len(payload)})
		n.logMsg(journal.NetDrop, from.Host, "datagram", from, to, len(payload), "injected", ctx)
		return
	}
	n.traceTransit(ctx, from.Host, to.Host, len(payload), false)
	delay := n.transit(from.Host, to.Host, len(payload))
	n.metrics.Histogram("simnet.transit").Observe(delay)
	body := n.copyBuf(payload)
	n.sched.After(delay, func() {
		defer n.putBuf(body)
		nd, ok := n.hosts[to.Host]
		if !ok || !nd.up || !n.Reachable(from.Host, to.Host) {
			n.stats.MsgsDropped++
			n.metrics.Counter("simnet.datagram.dropped").Inc()
			n.emitTap(TapEvent{Kind: TapDrop, From: from, To: to, Size: len(body)})
			n.logMsg(journal.NetDrop, to.Host, "datagram", from, to, len(body), "lost", ctx)
			return
		}
		h, ok := nd.dgram[to.Port]
		if !ok {
			n.stats.MsgsDropped++
			n.metrics.Counter("simnet.datagram.dropped").Inc()
			n.emitTap(TapEvent{Kind: TapDrop, From: from, To: to, Size: len(body)})
			n.logMsg(journal.NetDrop, to.Host, "datagram", from, to, len(body), "no-handler", ctx)
			return
		}
		n.emitTap(TapEvent{Kind: TapDeliver, From: from, To: to, Size: len(body)})
		n.logMsg(journal.NetDeliver, to.Host, "datagram", from, to, len(body), "", ctx)
		h(from, body)
	})
}

// --- reliable stream circuits ---

// Conn is one endpoint of a reliable, message-framed virtual circuit.
// Callbacks (message and close handlers) run on the scheduler.
type Conn struct {
	net      *Network
	seq      uint64 // creation order; keeps map-wide teardown deterministic
	local    Addr
	remote   Addr
	peer     *Conn
	open     bool
	breaking bool
	lastRecv sim.Time // enforces FIFO even when sizes vary
	onMsg    func([]byte)
	onClose  func(error)
}

// LocalAddr returns the endpoint's own address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Open reports whether the circuit is usable.
func (c *Conn) Open() bool { return c.open }

// Breaking reports whether the endpoint has been severed and is waiting
// out the break-detection delay before its close handler fires.
func (c *Conn) Breaking() bool { return c.breaking }

// SetHandler installs the message callback.
func (c *Conn) SetHandler(fn func(payload []byte)) { c.onMsg = fn }

// SetCloseHandler installs the close callback; it runs once when the
// circuit closes or breaks.
func (c *Conn) SetCloseHandler(fn func(err error)) { c.onClose = fn }

// Send transmits one framed message to the peer. Delivery is reliable
// and in order while the circuit lives; if the circuit breaks before
// delivery the message is lost and both ends learn of the break.
func (c *Conn) Send(payload []byte) error {
	return c.SendCtx(payload, trace.Context{})
}

// SendCtx is Send under a trace context: when ctx is valid, the
// message's per-hop transit schedule is recorded as spans attributed
// to the hosts it crosses. An invalid ctx makes it identical to Send.
func (c *Conn) SendCtx(payload []byte, ctx trace.Context) error {
	return c.sendCtx(payload, ctx, false)
}

// SendReplyCtx is SendCtx for the response direction of a
// request/reply exchange: transit spans are named "net.reply.*" so
// post-hoc attribution can separate reply transit from request
// transit. Delivery semantics are identical to SendCtx.
func (c *Conn) SendReplyCtx(payload []byte, ctx trace.Context) error {
	return c.sendCtx(payload, ctx, true)
}

func (c *Conn) sendCtx(payload []byte, ctx trace.Context, reply bool) error {
	if !c.open {
		return ErrConnClosed
	}
	n := c.net
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(len(payload))
	n.countSend(circuitCounters, c.local.Host, c.remote.Host, len(payload))
	n.emitTap(TapEvent{Kind: TapSend, From: c.local, To: c.remote, Size: len(payload), Circuit: true})
	n.logMsg(journal.NetSend, c.local.Host, "circuit", c.local, c.remote, len(payload), "", ctx)
	if !n.Reachable(c.local.Host, c.remote.Host) {
		// TCP would retransmit and eventually time out; model that as
		// an eventual break of both endpoints.
		n.stats.MsgsDropped++
		n.metrics.Counter("simnet.circuit.dropped").Inc()
		n.logMsg(journal.NetDrop, c.local.Host, "circuit", c.local, c.remote, len(payload), "severed", ctx)
		n.breakRemote(c)
		n.breakRemote(c.peer)
		return nil
	}
	if n.loseNow(c.local.Host, c.remote.Host) {
		n.stats.MsgsDropped++
		n.metrics.Counter("simnet.circuit.dropped").Inc()
		n.metrics.Counter("simnet.injected.losses").Inc()
		n.emitTap(TapEvent{Kind: TapDrop, From: c.local, To: c.remote, Size: len(payload), Circuit: true})
		n.logMsg(journal.NetDrop, c.local.Host, "circuit", c.local, c.remote, len(payload), "injected", ctx)
		n.breakRemote(c)
		n.breakRemote(c.peer)
		return nil
	}
	n.traceTransit(ctx, c.local.Host, c.remote.Host, len(payload), reply)
	delay := n.transit(c.local.Host, c.remote.Host, len(payload))
	n.metrics.Histogram("simnet.transit").Observe(delay)
	at := n.sched.Now().Add(delay)
	peer := c.peer
	if at.Before(peer.lastRecv) {
		at = peer.lastRecv // FIFO per circuit
	}
	peer.lastRecv = at
	body := n.copyBuf(payload)
	n.sched.At(at, func() {
		defer n.putBuf(body)
		if !peer.open {
			n.stats.MsgsDropped++
			n.metrics.Counter("simnet.circuit.dropped").Inc()
			n.emitTap(TapEvent{Kind: TapDrop, From: c.local, To: c.remote, Size: len(body), Circuit: true})
			n.logMsg(journal.NetDrop, c.remote.Host, "circuit", c.local, c.remote, len(body), "closed", ctx)
			return
		}
		if !n.Reachable(c.local.Host, c.remote.Host) {
			n.stats.MsgsDropped++
			n.metrics.Counter("simnet.circuit.dropped").Inc()
			n.emitTap(TapEvent{Kind: TapDrop, From: c.local, To: c.remote, Size: len(body), Circuit: true})
			n.logMsg(journal.NetDrop, c.remote.Host, "circuit", c.local, c.remote, len(body), "severed", ctx)
			n.breakRemote(c)
			n.breakRemote(peer)
			return
		}
		n.emitTap(TapEvent{Kind: TapDeliver, From: c.local, To: c.remote, Size: len(body), Circuit: true})
		n.logMsg(journal.NetDeliver, c.remote.Host, "circuit", c.local, c.remote, len(body), "", ctx)
		if peer.onMsg != nil {
			peer.onMsg(body)
		}
	})
	return nil
}

// Close shuts the circuit down cleanly; the peer's close handler runs
// after one transit delay with a nil error. The close notification is
// ordered after any data already in flight (TCP delivers data before
// the FIN).
func (c *Conn) Close() {
	if !c.open {
		return
	}
	c.net.metrics.Counter("simnet.circuit.closed").Inc()
	c.net.logMsg(journal.NetCircuitClose, c.local.Host, "circuit", c.local, c.remote, 0, "", trace.Context{})
	c.closeWith(nil)
	peer := c.peer
	if peer != nil && peer.open {
		at := c.net.sched.Now().Add(c.net.transit(c.local.Host, c.remote.Host, 0))
		if at.Before(peer.lastRecv) {
			at = peer.lastRecv
		}
		peer.lastRecv = at
		c.net.sched.At(at, func() { peer.closeWith(nil) })
	}
}

// dieLocal tears the endpoint down without callbacks (host crash).
func (c *Conn) dieLocal() {
	c.open = false
	c.onMsg = nil
	c.onClose = nil
}

func (c *Conn) closeWith(err error) {
	if !c.open {
		return
	}
	c.open = false
	if nd, ok := c.net.hosts[c.local.Host]; ok {
		delete(nd.conns, c)
	}
	if c.onClose != nil {
		cb := c.onClose
		c.onClose = nil
		cb(err)
	}
}

// Listen installs an accept callback on host:port. The callback
// receives the server-side Conn of each new circuit.
func (n *Network) Listen(host string, port uint16, accept func(*Conn)) error {
	nd, ok := n.hosts[host]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	if !nd.up {
		return fmt.Errorf("%w: %s", ErrHostDown, host)
	}
	if _, exists := nd.listeners[port]; exists {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, host, port)
	}
	nd.listeners[port] = accept
	return nil
}

// CloseListen removes a listener; established circuits are unaffected.
func (n *Network) CloseListen(host string, port uint16) {
	if nd, ok := n.hosts[host]; ok {
		delete(nd.listeners, port)
	}
}

// Dial opens a circuit from a host to a listening address. The callback
// runs after the simulated handshake with either an open Conn or an
// error (refused, unreachable, host down).
func (n *Network) Dial(fromHost string, to Addr, cb func(*Conn, error)) {
	n.DialCtx(fromHost, to, trace.Context{}, cb)
}

// DialCtx is Dial under a trace context; when ctx is valid the SYN and
// SYN-ACK legs of the handshake are recorded as per-hop spans.
func (n *Network) DialCtx(fromHost string, to Addr, ctx trace.Context, cb func(*Conn, error)) {
	n.stats.DialAttempts++
	n.metrics.Counter("simnet.dial.attempts").Inc()
	src, ok := n.hosts[fromHost]
	if !ok {
		n.sched.Defer(func() { cb(nil, fmt.Errorf("%w: %s", ErrUnknownHost, fromHost)) })
		return
	}
	if !src.up {
		n.sched.Defer(func() { cb(nil, fmt.Errorf("%w: %s", ErrHostDown, fromHost)) })
		return
	}
	if !n.Reachable(fromHost, to.Host) {
		// A connect() to an unreachable host times out; model with the
		// break-detect delay.
		n.sched.After(n.opts.BreakDetect, func() {
			cb(nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, fromHost, to.Host))
		})
		return
	}
	src.nextPort++
	local := Addr{Host: fromHost, Port: src.nextPort}
	n.traceTransit(ctx, fromHost, to.Host, 64, false) // SYN
	d := n.transit(fromHost, to.Host, 64)
	n.sched.After(d, func() {
		dst, ok := n.hosts[to.Host]
		if !ok || !dst.up || !n.Reachable(fromHost, to.Host) {
			n.sched.After(n.opts.BreakDetect, func() {
				cb(nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, fromHost, to.Host))
			})
			return
		}
		acceptFn, ok := dst.listeners[to.Port]
		if !ok {
			n.sched.After(d, func() { cb(nil, fmt.Errorf("%w: %s", ErrNoListener, to)) })
			return
		}
		n.connSeq += 2
		client := &Conn{net: n, seq: n.connSeq - 1, local: local, remote: to, open: true}
		server := &Conn{net: n, seq: n.connSeq, local: to, remote: local, open: true}
		client.peer = server
		server.peer = client
		src.conns[client] = true
		dst.conns[server] = true
		n.stats.ConnsOpened++
		n.metrics.Counter("simnet.circuit.opened").Inc()
		n.emitTap(TapEvent{Kind: TapConnOpen, From: local, To: to, Circuit: true})
		n.logMsg(journal.NetCircuitOpen, fromHost, "circuit", local, to, 0, "", ctx)
		acceptFn(server)
		n.traceTransit(ctx, to.Host, fromHost, 64, true) // SYN-ACK
		n.sched.After(d, func() {                        // SYN-ACK back to the dialer
			if !client.open {
				cb(nil, ErrConnClosed)
				return
			}
			cb(client, nil)
		})
	})
}
