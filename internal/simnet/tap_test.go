package simnet

import (
	"strings"
	"testing"
)

func TestTapSeesDatagramLifecycle(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(0)
	_ = n.HandleDatagram("b", 1, func(Addr, []byte) {})
	n.SendDatagram(Addr{"a", 9}, Addr{"b", 1}, []byte("hello"))
	n.SendDatagram(Addr{"a", 9}, Addr{"b", 99}, []byte("drop me")) // no handler
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	kinds := map[TapKind]int{}
	for _, ev := range tc.Events {
		kinds[ev.Kind]++
	}
	if kinds[TapSend] != 2 || kinds[TapDeliver] != 1 || kinds[TapDrop] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTapSeesCircuitTraffic(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(0)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	server.SetHandler(func([]byte) {})
	_ = client.Send([]byte("0123456789"))
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	var opened, sent, delivered bool
	for _, ev := range tc.Events {
		switch ev.Kind {
		case TapConnOpen:
			opened = true
		case TapSend:
			if ev.Circuit && ev.Size == 10 {
				sent = true
			}
		case TapDeliver:
			if ev.Circuit && ev.Size == 10 {
				delivered = true
			}
		}
	}
	if !opened || !sent || !delivered {
		t.Fatalf("opened=%v sent=%v delivered=%v", opened, sent, delivered)
	}
}

func TestTapSeesBreaks(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(0)
	_, _ = dial(t, s, n, "a", Addr{"b", 2001})
	_ = n.Crash("b")
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tc.Events {
		if ev.Kind == TapConnBreak {
			found = true
		}
	}
	if !found {
		t.Fatal("no break event")
	}
}

func TestFlowsAggregation(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(0)
	_ = n.HandleDatagram("b", 1, func(Addr, []byte) {})
	_ = n.HandleDatagram("c", 1, func(Addr, []byte) {})
	for i := 0; i < 3; i++ {
		n.SendDatagram(Addr{"a", 9}, Addr{"b", 1}, make([]byte, 100))
	}
	n.SendDatagram(Addr{"a", 9}, Addr{"c", 1}, make([]byte, 50))
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	flows := tc.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	// Sorted by bytes: a->b (300) before a->c (50).
	if flows[0].To != "b" || flows[0].Msgs != 3 || flows[0].Bytes != 300 {
		t.Fatalf("top flow = %+v", flows[0])
	}
	out := tc.Format()
	if !strings.Contains(out, "a") || !strings.Contains(out, "300") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTraceBounded(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(3)
	_ = n.HandleDatagram("b", 1, func(Addr, []byte) {})
	for i := 0; i < 10; i++ {
		n.SendDatagram(Addr{"a", 9}, Addr{"b", 1}, []byte("x"))
	}
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if len(tc.Events) != 3 || tc.Dropped == 0 {
		t.Fatalf("events=%d dropped=%d", len(tc.Events), tc.Dropped)
	}
	if !strings.Contains(tc.Format(), "truncated") {
		t.Fatal("truncation not reported")
	}
}

func TestTapRemoval(t *testing.T) {
	s, n := threeHostChain(t)
	tc := n.Trace(0)
	n.SetTap(nil)
	_ = n.HandleDatagram("b", 1, func(Addr, []byte) {})
	n.SendDatagram(Addr{"a", 9}, Addr{"b", 1}, []byte("x"))
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if len(tc.Events) != 0 {
		t.Fatal("removed tap still collecting")
	}
}

func TestTapKindStrings(t *testing.T) {
	want := map[TapKind]string{
		TapSend: "send", TapDeliver: "deliver", TapDrop: "drop",
		TapConnOpen: "open", TapConnBreak: "break", TapKind(9): "tap?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d: %q", k, k.String())
		}
	}
}
