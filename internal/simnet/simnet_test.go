package simnet

import (
	"errors"
	"testing"
	"time"

	"ppm/internal/sim"
)

// threeHostChain builds A --seg1-- B --seg2-- C: A<->B one hop,
// A<->C two hops with B as the gateway.
func threeHostChain(t *testing.T) (*sim.Scheduler, *Network) {
	t.Helper()
	s := sim.NewScheduler(1)
	n := New(s, Options{})
	for _, h := range []string{"a", "b", "c"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddSegment("seg1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSegment("seg2", "b", "c"); err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestHopsChain(t *testing.T) {
	_, n := threeHostChain(t)
	cases := []struct {
		a, b string
		hops int
	}{
		{"a", "a", 0}, {"a", "b", 1}, {"b", "c", 1}, {"a", "c", 2},
	}
	for _, tc := range cases {
		got, ok := n.Hops(tc.a, tc.b)
		if !ok || got != tc.hops {
			t.Fatalf("Hops(%s,%s) = %d,%v want %d", tc.a, tc.b, got, ok, tc.hops)
		}
	}
}

func TestHopsNoPath(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s, Options{})
	_ = n.AddHost("a")
	_ = n.AddHost("island")
	_ = n.AddSegment("seg1", "a")
	if _, ok := n.Hops("a", "island"); ok {
		t.Fatal("disconnected hosts should have no route")
	}
	if n.Reachable("a", "island") {
		t.Fatal("disconnected hosts reachable")
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s, Options{})
	_ = n.AddHost("a")
	if err := n.AddHost("a"); !errors.Is(err, ErrDuplicateHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestSegmentUnknownHost(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s, Options{})
	if err := n.AddSegment("seg", "ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramDelivery(t *testing.T) {
	s, n := threeHostChain(t)
	var got []byte
	var from Addr
	if err := n.HandleDatagram("b", 100, func(f Addr, p []byte) { from, got = f, p }); err != nil {
		t.Fatal(err)
	}
	n.SendDatagram(Addr{"a", 5}, Addr{"b", 100}, []byte("hi"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi" || from.Host != "a" {
		t.Fatalf("got %q from %v", got, from)
	}
}

func TestDatagramDroppedNoHandler(t *testing.T) {
	s, n := threeHostChain(t)
	n.SendDatagram(Addr{"a", 5}, Addr{"b", 999}, []byte("hi"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if n.Stats().MsgsDropped != 1 {
		t.Fatalf("dropped = %d, want 1", n.Stats().MsgsDropped)
	}
}

func TestDatagramLatencyScalesWithHops(t *testing.T) {
	s, n := threeHostChain(t)
	var oneHopAt, twoHopAt sim.Time
	_ = n.HandleDatagram("b", 1, func(Addr, []byte) { oneHopAt = s.Now() })
	_ = n.HandleDatagram("c", 1, func(Addr, []byte) { twoHopAt = s.Now() })
	n.SendDatagram(Addr{"a", 9}, Addr{"b", 1}, []byte("x"))
	n.SendDatagram(Addr{"a", 9}, Addr{"c", 1}, []byte("x"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if oneHopAt == 0 || twoHopAt == 0 {
		t.Fatal("messages not delivered")
	}
	if twoHopAt < oneHopAt*2-sim.Time(time.Millisecond) {
		t.Fatalf("two-hop latency %v should be ~2x one-hop %v", twoHopAt, oneHopAt)
	}
}

func dial(t *testing.T, s *sim.Scheduler, n *Network, from string, to Addr) (*Conn, *Conn) {
	t.Helper()
	var client, server *Conn
	var dialErr error
	if err := n.Listen(to.Host, to.Port, func(c *Conn) { server = c }); err != nil {
		t.Fatal(err)
	}
	n.Dial(from, to, func(c *Conn, err error) { client, dialErr = c, err })
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	if client == nil || server == nil {
		t.Fatal("handshake incomplete")
	}
	n.CloseListen(to.Host, to.Port)
	return client, server
}

func TestCircuitSendBothWays(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	var atServer, atClient string
	server.SetHandler(func(p []byte) { atServer = string(p) })
	client.SetHandler(func(p []byte) { atClient = string(p) })
	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if atServer != "ping" {
		t.Fatalf("server got %q", atServer)
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if atClient != "pong" {
		t.Fatalf("client got %q", atClient)
	}
}

func TestCircuitFIFOWithMixedSizes(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"c", 2001})
	var got []int
	server.SetHandler(func(p []byte) { got = append(got, len(p)) })
	big := make([]byte, 100000) // serializes slowly
	_ = client.Send(big)
	_ = client.Send([]byte("x")) // small, would overtake without FIFO
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100000 || got[1] != 1 {
		t.Fatalf("order = %v, want [100000 1]", got)
	}
}

func TestDialRefusedNoListener(t *testing.T) {
	s, n := threeHostChain(t)
	var dialErr error
	done := false
	n.Dial("a", Addr{"b", 4444}, func(c *Conn, err error) { dialErr, done = err, true })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !done || !errors.Is(dialErr, ErrNoListener) {
		t.Fatalf("err = %v done=%v", dialErr, done)
	}
}

func TestDialUnknownAndDownHosts(t *testing.T) {
	s, n := threeHostChain(t)
	var err1, err2 error
	n.Dial("ghost", Addr{"b", 1}, func(_ *Conn, err error) { err1 = err })
	_ = n.Crash("a")
	n.Dial("a", Addr{"b", 1}, func(_ *Conn, err error) { err2 = err })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrUnknownHost) {
		t.Fatalf("err1 = %v", err1)
	}
	if !errors.Is(err2, ErrHostDown) {
		t.Fatalf("err2 = %v", err2)
	}
}

func TestDialUnreachableTimesOut(t *testing.T) {
	s, n := threeHostChain(t)
	_ = n.Crash("c")
	var dialErr error
	n.Dial("a", Addr{"c", 1}, func(_ *Conn, err error) { dialErr = err })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, ErrUnreachable) {
		t.Fatalf("err = %v", dialErr)
	}
	// Timeout should take the break-detect delay, not be instant.
	if s.Now() < sim.Time(time.Second) {
		t.Fatalf("timed out too fast: %v", s.Now())
	}
}

func TestCleanCloseNotifiesPeer(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	var closedErr error
	closed := false
	server.SetCloseHandler(func(err error) { closedErr, closed = err, true })
	client.Close()
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !closed || closedErr != nil {
		t.Fatalf("closed=%v err=%v, want clean close", closed, closedErr)
	}
	if client.Open() || server.Open() {
		t.Fatal("both ends should be closed")
	}
	if err := client.Send([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send on closed conn: %v", err)
	}
}

func TestCrashBreaksCircuitRemoteNoticesLater(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	_ = server // stays on b
	var gotErr error
	client.SetCloseHandler(func(err error) { gotErr = err })
	crashAt := s.Now()
	if err := n.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrPeerLost) {
		t.Fatalf("close err = %v, want ErrPeerLost", gotErr)
	}
	if s.Now().Sub(crashAt) < time.Second {
		t.Fatal("break detection should not be instantaneous")
	}
}

func TestCrashedHostCallbacksNeverRun(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	ran := false
	server.SetCloseHandler(func(error) { ran = true })
	server.SetHandler(func([]byte) { ran = true })
	_ = n.Crash("b")
	_ = client.Send([]byte("into the void"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("callbacks on a crashed host must not run")
	}
}

func TestPartitionBreaksCrossCircuits(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"c", 2001})
	var cErr, sErr error
	client.SetCloseHandler(func(err error) { cErr = err })
	server.SetCloseHandler(func(err error) { sErr = err })
	if err := n.Partition([]string{"a"}, []string{"b", "c"}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(cErr, ErrPeerLost) || !errors.Is(sErr, ErrPeerLost) {
		t.Fatalf("cErr=%v sErr=%v", cErr, sErr)
	}
	if n.Reachable("a", "c") {
		t.Fatal("partitioned hosts reachable")
	}
	n.Heal()
	if !n.Reachable("a", "c") {
		t.Fatal("healed hosts unreachable")
	}
}

func TestPartitionSameGroupStillWorks(t *testing.T) {
	s, n := threeHostChain(t)
	if err := n.Partition([]string{"a"}, []string{"b", "c"}); err != nil {
		t.Fatal(err)
	}
	if !n.Reachable("b", "c") {
		t.Fatal("b and c share a partition group")
	}
	var got string
	_ = n.HandleDatagram("c", 7, func(_ Addr, p []byte) { got = string(p) })
	n.SendDatagram(Addr{"b", 1}, Addr{"c", 7}, []byte("ok"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatal("datagram within a partition group dropped")
	}
}

func TestSendAcrossPartitionEventuallyBreaksCircuit(t *testing.T) {
	s, n := threeHostChain(t)
	client, server := dial(t, s, n, "a", Addr{"b", 2001})
	// Partition after establishment but check send-triggered breakage:
	// Heal first so Partition's own sweep is not the trigger.
	_ = n.Partition([]string{"a"}, []string{"b"})
	// The sweep already breaks it; make a fresh pair to test send path.
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	client2, server2 := dial(t, s, n, "a", Addr{"b", 2002})
	_ = client
	_ = server
	var broke bool
	client2.SetCloseHandler(func(err error) { broke = errors.Is(err, ErrPeerLost) })
	_ = server2
	// Emulate a partition that the sweep somehow missed by healing the
	// group bookkeeping trick: crash c (irrelevant) then partition.
	_ = n.Partition([]string{"a"}, []string{"b"})
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("circuit across partition did not break")
	}
}

func TestRestartAfterCrash(t *testing.T) {
	s, n := threeHostChain(t)
	_ = n.Crash("b")
	if n.Up("b") {
		t.Fatal("b should be down")
	}
	if err := n.Restart("b"); err != nil {
		t.Fatal(err)
	}
	if !n.Up("b") {
		t.Fatal("b should be up")
	}
	// Listeners are gone after restart: dialing is refused.
	var dialErr error
	n.Dial("a", Addr{"b", 2001}, func(_ *Conn, err error) { dialErr = err })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, ErrNoListener) {
		t.Fatalf("err = %v, want refused", dialErr)
	}
}

func TestListenPortConflict(t *testing.T) {
	_, n := threeHostChain(t)
	if err := n.Listen("a", 1, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("a", 1, func(*Conn) {}); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s, n := threeHostChain(t)
	client, _ := dial(t, s, n, "a", Addr{"b", 2001})
	_ = client.Send([]byte("12345"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.ConnsOpened != 1 || st.DialAttempts != 1 {
		t.Fatalf("conn stats wrong: %+v", st)
	}
	if st.MsgsSent < 1 || st.BytesSent < 5 {
		t.Fatalf("msg stats wrong: %+v", st)
	}
	n.ResetStats()
	if n.Stats().MsgsSent != 0 {
		t.Fatal("reset did not zero stats")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Host: "vax1", Port: 2001}
	if a.String() != "vax1:2001" {
		t.Fatalf("String = %q", a.String())
	}
	if !(Addr{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	s, n := threeHostChain(t)
	var got string
	_ = n.HandleDatagram("a", 7, func(_ Addr, p []byte) { got = string(p) })
	n.SendDatagram(Addr{"a", 1}, Addr{"a", 7}, []byte("self"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got != "self" {
		t.Fatal("loopback datagram lost")
	}
	if s.Now() > sim.Time(time.Millisecond) {
		t.Fatalf("loopback should be fast, took %v", s.Now())
	}
}

// TestPooledDeliveryBuffersInFlight pins the delivery-buffer pool: with
// several messages in flight at once, each handler sees its own
// payload intact — buffers are only recycled after the handler returns,
// never while another delivery still holds one.
func TestPooledDeliveryBuffersInFlight(t *testing.T) {
	s, n := threeHostChain(t)
	var got []string
	if err := n.HandleDatagram("c", 100, func(_ Addr, p []byte) {
		got = append(got, string(p))
	}); err != nil {
		t.Fatal(err)
	}
	// Same destination, two hops, equal sizes (so transit delays tie
	// and delivery order is send order): all four are in flight at once.
	for _, msg := range []string{"first-pay", "secondpay", "third-pay", "fourthpay"} {
		n.SendDatagram(Addr{"a", 5}, Addr{"c", 100}, []byte(msg))
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"first-pay", "secondpay", "third-pay", "fourthpay"}
	if len(got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPooledBufferReusedAcrossDeliveries proves the pool actually
// recycles: after a delivery completes, the next send reuses the
// returned buffer (same backing array) rather than allocating.
func TestPooledBufferReusedAcrossDeliveries(t *testing.T) {
	s, n := threeHostChain(t)
	var bufs []*byte
	if err := n.HandleDatagram("b", 100, func(_ Addr, p []byte) {
		bufs = append(bufs, &p[:1][0])
	}); err != nil {
		t.Fatal(err)
	}
	n.SendDatagram(Addr{"a", 5}, Addr{"b", 100}, []byte("one"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	n.SendDatagram(Addr{"a", 5}, Addr{"b", 100}, []byte("two"))
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(bufs))
	}
	if bufs[0] != bufs[1] {
		t.Fatal("second delivery did not reuse the pooled buffer")
	}
}

// TestCircuitPooledBuffers runs mixed-size circuit traffic both ways
// and checks content integrity under buffer recycling.
func TestCircuitPooledBuffers(t *testing.T) {
	s, n := threeHostChain(t)
	var server *Conn
	if err := n.Listen("b", 9, func(c *Conn) {
		server = c
		c.SetHandler(func(p []byte) {
			// Echo a copy back; the payload itself dies with this call.
			reply := append([]byte("echo:"), p...)
			if err := c.Send(reply); err != nil {
				t.Errorf("echo send: %v", err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	var echoes []string
	n.Dial("a", Addr{"b", 9}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.SetHandler(func(p []byte) { echoes = append(echoes, string(p)) })
		for _, msg := range []string{"alpha", "bb", "a-much-longer-payload"} {
			if err := c.Send([]byte(msg)); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	})
	if err := s.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	_ = server
	want := []string{"echo:alpha", "echo:bb", "echo:a-much-longer-payload"}
	if len(echoes) != len(want) {
		t.Fatalf("echoes = %v, want %v", echoes, want)
	}
	for i := range want {
		if echoes[i] != want[i] {
			t.Fatalf("echo %d = %q, want %q", i, echoes[i], want[i])
		}
	}
}
