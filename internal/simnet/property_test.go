package simnet

import (
	"fmt"
	"testing"
	"testing/quick"

	"ppm/internal/sim"
)

// Property tests over randomly generated topologies.

// buildRandom creates n hosts and attaches them to segments per the
// spec bytes; returns the network. Segment k gets the hosts whose spec
// byte modulo nSegs equals k, plus host 0 on every segment to keep a
// gateway candidate around (connectivity is still not guaranteed).
func buildRandom(t testing.TB, spec []byte, nSegs int) (*Network, []string) {
	t.Helper()
	s := sim.NewScheduler(1)
	n := New(s, Options{})
	var hosts []string
	for i := range spec {
		h := fmt.Sprintf("h%d", i)
		hosts = append(hosts, h)
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < nSegs; k++ {
		var members []string
		for i, b := range spec {
			if int(b)%nSegs == k {
				members = append(members, hosts[i])
			}
		}
		if len(members) > 0 {
			if err := n.AddSegment(fmt.Sprintf("s%d", k), members...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n, hosts
}

func TestPropertyHopsSymmetric(t *testing.T) {
	f := func(spec []byte) bool {
		if len(spec) == 0 || len(spec) > 12 {
			return true
		}
		n, hosts := buildRandom(t, spec, 3)
		for _, a := range hosts {
			for _, b := range hosts {
				ha, oka := n.Hops(a, b)
				hb, okb := n.Hops(b, a)
				if oka != okb || (oka && ha != hb) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHopsTriangleInequality(t *testing.T) {
	f := func(spec []byte) bool {
		if len(spec) == 0 || len(spec) > 10 {
			return true
		}
		n, hosts := buildRandom(t, spec, 3)
		for _, a := range hosts {
			for _, b := range hosts {
				for _, c := range hosts {
					ab, ok1 := n.Hops(a, b)
					bc, ok2 := n.Hops(b, c)
					ac, ok3 := n.Hops(a, c)
					if ok1 && ok2 {
						// A path a->b->c exists, so a->c must exist and be
						// no longer than the relay.
						if !ok3 || ac > ab+bc {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHopsZeroIFFSelf(t *testing.T) {
	f := func(spec []byte) bool {
		if len(spec) == 0 || len(spec) > 10 {
			return true
		}
		n, hosts := buildRandom(t, spec, 2)
		for _, a := range hosts {
			for _, b := range hosts {
				h, ok := n.Hops(a, b)
				if a == b {
					if !ok || h != 0 {
						return false
					}
				} else if ok && h == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReachabilityRespectsPartitionGroups(t *testing.T) {
	f := func(spec []byte, cut []bool) bool {
		if len(spec) < 2 || len(spec) > 10 {
			return true
		}
		n, hosts := buildRandom(t, spec, 1) // one shared segment: all connected
		var g1, g2 []string
		for i, h := range hosts {
			if i < len(cut) && cut[i] {
				g1 = append(g1, h)
			} else {
				g2 = append(g2, h)
			}
		}
		if err := n.Partition(g1, g2); err != nil {
			return false
		}
		inG1 := make(map[string]bool, len(g1))
		for _, h := range g1 {
			inG1[h] = true
		}
		for _, a := range hosts {
			for _, b := range hosts {
				want := inG1[a] == inG1[b]
				if n.Reachable(a, b) != want {
					return false
				}
			}
		}
		n.Heal()
		for _, a := range hosts {
			for _, b := range hosts {
				if !n.Reachable(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
