// Package daemon implements the two system daemons the PPM's on-demand
// LPM creation relies on (the paper's Figure 2): inetd, which owns the
// well-known port, and pmd, the process manager daemon, which acts as a
// trusted name server for per-user LPMs — verifying that no LPM exists
// for the user on the host, creating one when needed, and returning the
// LPM's accept address.
//
// The paper notes that storing the pmd's table in stable storage would
// allow recovery from daemon-only crashes but was not implemented; here
// it is implemented behind the StableStorage option, with tests showing
// the failure the paper predicts when it is off.
package daemon

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/journal"
	"ppm/internal/kernel"
	"ppm/internal/proc"
	"ppm/internal/simnet"
	"ppm/internal/trace"
	"ppm/internal/wire"
)

// PortInetd is the well-known inetd port on every host.
const PortInetd uint16 = 111

// Daemon errors.
var (
	ErrNotRunning = errors.New("daemon: not running")
	ErrAuth       = errors.New("daemon: authentication failed")
)

// CPU demands of the daemon path (reference machine, zero load).
const (
	inetdForwardCost = 5 * time.Millisecond
	pmdHandleCost    = 8 * time.Millisecond
)

// LPMFactory creates (or restarts) the per-user LPM on this host and
// returns its accept address. The factory is provided by the
// environment wiring the LPM implementation to the daemons.
type LPMFactory func(user string) (simnet.Addr, error)

// Options configure the daemons on one host.
type Options struct {
	// StableStorage keeps the pmd's user->LPM table on (simulated)
	// stable storage so it survives a daemon-only crash. Off by
	// default, as in the paper.
	StableStorage bool
}

// Daemons is the per-host inetd + pmd pair.
type Daemons struct {
	hostName string
	kern     *kernel.Host
	net      *simnet.Network
	dir      *auth.Directory
	trust    *auth.Trust
	factory  LPMFactory
	opts     Options

	running  bool
	inetdPID proc.PID
	pmdPID   proc.PID

	lpms   map[string]simnet.Addr
	stable map[string]simnet.Addr

	// Queries counts pmd lookups, for tests and benchmarks.
	Queries int64
}

// Start boots inetd and pmd on the host and begins accepting LPM
// queries on the well-known port.
func Start(kern *kernel.Host, net *simnet.Network, dir *auth.Directory,
	trust *auth.Trust, factory LPMFactory, opts Options) (*Daemons, error) {
	d := &Daemons{
		hostName: kern.Name(),
		kern:     kern,
		net:      net,
		dir:      dir,
		trust:    trust,
		factory:  factory,
		opts:     opts,
		lpms:     make(map[string]simnet.Addr),
		stable:   make(map[string]simnet.Addr),
	}
	if err := d.boot(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Daemons) boot() error {
	inetd, err := d.kern.Spawn("inetd", "root")
	if err != nil {
		return fmt.Errorf("spawn inetd: %w", err)
	}
	pmd, err := d.kern.Spawn("pmd", "root")
	if err != nil {
		return fmt.Errorf("spawn pmd: %w", err)
	}
	d.inetdPID, d.pmdPID = inetd.PID, pmd.PID
	if err := d.net.Listen(d.hostName, PortInetd, d.accept); err != nil {
		return fmt.Errorf("inetd listen: %w", err)
	}
	d.running = true
	return nil
}

// Running reports whether the daemons are serving.
func (d *Daemons) Running() bool { return d.running }

// accept handles one connection to the well-known port (Figure 2 step
// 1 arrives here; step 2 is the internal handoff to pmd).
func (d *Daemons) accept(conn *simnet.Conn) {
	conn.SetHandler(func(b []byte) {
		env, err := wire.DecodeEnvelopeLogged(b, d.net.Journal(), d.hostName)
		if err != nil {
			conn.Close()
			return
		}
		ctx := trace.Context{Trace: env.TraceID, Span: env.SpanID}
		if env.Type != wire.MsgLPMQuery {
			d.reply(conn, env.ReqID, wire.LPMQueryResp{OK: false, Reason: "inetd: unexpected message"}, ctx, nil)
			return
		}
		q, err := wire.DecodeLPMQuery(env.Body)
		if err != nil {
			d.reply(conn, env.ReqID, wire.LPMQueryResp{OK: false, Reason: "inetd: bad query"}, ctx, nil)
			return
		}
		from := conn.RemoteAddr().Host
		sp := d.net.Tracer().StartSpan(d.hostName, "dispatch.pmd", ctx)
		// Step 2: inetd passes the request to pmd.
		d.kern.ExecCPU(inetdForwardCost, func() {
			d.kern.ExecCPU(pmdHandleCost, func() {
				d.handleQuery(conn, env.ReqID, from, q, ctx, sp)
			})
		})
	})
}

// handleQuery is the pmd: the trusted name server of Figure 2 steps 3-4.
func (d *Daemons) handleQuery(conn *simnet.Conn, reqID uint64, fromHost string,
	q wire.LPMQuery, ctx trace.Context, sp *trace.Span) {
	if !d.running {
		d.reply(conn, reqID, wire.LPMQueryResp{OK: false, Reason: "pmd: not running"}, ctx, sp)
		return
	}
	d.Queries++
	d.net.Metrics().Counter("daemon.queries").Inc()
	d.net.Journal().AppendCtx(journal.DaemonQuery, d.hostName,
		fmt.Sprintf("user=%s from=%s", q.User, fromHost), ctx.Trace, ctx.Span)
	if err := d.authenticate(fromHost, q); err != nil {
		d.net.Metrics().Counter("daemon.auth_failures").Inc()
		d.net.Journal().AppendCtx(journal.DaemonAuthFail, d.hostName,
			fmt.Sprintf("user=%s from=%s", q.User, fromHost), ctx.Trace, ctx.Span)
		d.reply(conn, reqID, wire.LPMQueryResp{OK: false, Reason: err.Error()}, ctx, sp)
		return
	}
	// An existing LPM's address is returned directly.
	if addr, ok := d.lpms[q.User]; ok {
		d.net.Metrics().Counter("daemon.lpm.found").Inc()
		d.net.Journal().AppendCtx(journal.DaemonLPMFound, d.hostName,
			"user="+q.User, ctx.Trace, ctx.Span)
		d.reply(conn, reqID, wire.LPMQueryResp{
			OK: true, AcceptHost: addr.Host, AcceptPort: addr.Port,
		}, ctx, sp)
		return
	}
	// Step 3: pmd creates the LPM — paying the fork before the reply;
	// LPM creation is "somewhat expensive in terms of message exchanges
	// and in local processing".
	d.kern.ExecCPU(calib.Fork, func() {
		addr, err := d.factory(q.User)
		if err != nil {
			d.reply(conn, reqID, wire.LPMQueryResp{OK: false, Reason: fmt.Sprintf("pmd: create LPM: %v", err)}, ctx, sp)
			return
		}
		d.register(q.User, addr)
		d.net.Metrics().Counter("daemon.lpm.created").Inc()
		d.net.Journal().AppendCtx(journal.DaemonLPMCreated, d.hostName,
			"user="+q.User, ctx.Trace, ctx.Span)
		// Step 4: the accept address is returned.
		d.reply(conn, reqID, wire.LPMQueryResp{
			OK: true, AcceptHost: addr.Host, AcceptPort: addr.Port, Created: true,
		}, ctx, sp)
	})
}

func (d *Daemons) authenticate(fromHost string, q wire.LPMQuery) error {
	if err := d.dir.VerifyToken(q.User, "pmd", q.Token); err != nil {
		return fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if fromHost != d.hostName {
		if err := d.trust.Check(d.hostName, fromHost); err != nil {
			return fmt.Errorf("%w: %v", ErrAuth, err)
		}
		if !d.dir.RHostAllowed(q.User, fromHost) {
			return fmt.Errorf("%w: %s has no .rhosts entry for %s", ErrAuth, q.User, fromHost)
		}
	}
	return nil
}

func (d *Daemons) reply(conn *simnet.Conn, reqID uint64, resp wire.LPMQueryResp,
	ctx trace.Context, sp *trace.Span) {
	sp.End()
	env := wire.Envelope{Type: wire.MsgLPMQueryResp, ReqID: reqID, Body: resp.Encode()}
	env.SetTrace(ctx.Trace, ctx.Span)
	enc := wire.GetEncoder()
	//ppmlint:allow errdrop response send is fire-and-forget; a dead client just times out its query
	_ = conn.SendCtx(env.EncodeLoggedTo(enc, d.net.Metrics(), d.net.Journal(), d.hostName), ctx)
	wire.PutEncoder(enc)
}

// register records an LPM, mirroring to stable storage when enabled.
func (d *Daemons) register(user string, addr simnet.Addr) {
	d.lpms[user] = addr
	if d.opts.StableStorage {
		d.stable[user] = addr
	}
}

// Unregister removes an LPM record (called when an LPM's time-to-live
// expires and it exits).
func (d *Daemons) Unregister(user string) {
	delete(d.lpms, user)
	delete(d.stable, user)
}

// KnownLPM returns the registered accept address for a user.
func (d *Daemons) KnownLPM(user string) (simnet.Addr, bool) {
	addr, ok := d.lpms[user]
	return addr, ok
}

// Status is the pmd's live-introspection hook: whether the daemons are
// running and how many LPM registrations the table holds.
func (d *Daemons) Status() (running bool, lpms int) {
	return d.running, len(d.lpms)
}

// CrashDaemon simulates a crash of the pmd alone (not the host, not the
// LPMs). Without stable storage the table is lost and, as the paper
// observes, "the process management mechanism does not operate
// correctly": a subsequent query spawns a duplicate LPM. With stable
// storage the table is reloaded.
func (d *Daemons) CrashDaemon() {
	d.lpms = make(map[string]simnet.Addr)
	if d.opts.StableStorage {
		for u, a := range d.stable {
			d.lpms[u] = a
		}
	}
}

// Stop halts the daemons (host shutdown path).
func (d *Daemons) Stop() {
	if !d.running {
		return
	}
	d.running = false
	d.net.CloseListen(d.hostName, PortInetd)
	if p, err := d.kern.Lookup(d.inetdPID); err == nil && p.State == proc.Running {
		//ppmlint:allow errdrop teardown: the process was verified running on the line above
		_ = d.kern.Exit(d.inetdPID, 0)
	}
	if p, err := d.kern.Lookup(d.pmdPID); err == nil && p.State == proc.Running {
		//ppmlint:allow errdrop teardown: the process was verified running on the line above
		_ = d.kern.Exit(d.pmdPID, 0)
	}
}

// QueryLPM is the client side of the Figure 2 exchange: dial the
// well-known port on a host, send an authenticated query, and deliver
// the accept address to cb. Used both by tools attaching locally and by
// LPMs creating remote siblings.
func QueryLPM(net *simnet.Network, fromHost string, targetHost string,
	user *auth.User, cb func(wire.LPMQueryResp, error)) {
	QueryLPMCtx(net, fromHost, targetHost, user, trace.Context{}, cb)
}

// QueryLPMCtx is QueryLPM under a trace context: the dial handshake,
// the query's transit and the pmd's handling all record spans under a
// "pmd.query" child of ctx.
func QueryLPMCtx(net *simnet.Network, fromHost string, targetHost string,
	user *auth.User, ctx trace.Context, cb func(wire.LPMQueryResp, error)) {
	sp := net.Tracer().StartSpan(fromHost, "pmd.query."+targetHost, ctx)
	qctx := sp.Context()
	if !qctx.Valid() {
		qctx = ctx
	}
	done := func(resp wire.LPMQueryResp, err error) {
		sp.End()
		cb(resp, err)
	}
	to := simnet.Addr{Host: targetHost, Port: PortInetd}
	net.DialCtx(fromHost, to, qctx, func(conn *simnet.Conn, err error) {
		if err != nil {
			done(wire.LPMQueryResp{}, err)
			return
		}
		conn.SetHandler(func(b []byte) {
			env, derr := wire.DecodeEnvelopeLogged(b, net.Journal(), fromHost)
			if derr != nil {
				done(wire.LPMQueryResp{}, derr)
				conn.Close()
				return
			}
			resp, derr := wire.DecodeLPMQueryResp(env.Body)
			conn.Close()
			if derr != nil {
				done(wire.LPMQueryResp{}, derr)
				return
			}
			done(resp, nil)
		})
		conn.SetCloseHandler(func(cerr error) {
			if cerr != nil {
				done(wire.LPMQueryResp{}, cerr)
			}
		})
		q := wire.LPMQuery{User: user.Name, Token: auth.MintToken(user, "pmd")}
		env := wire.Envelope{Type: wire.MsgLPMQuery, ReqID: 1, Body: q.Encode()}
		env.SetTrace(qctx.Trace, qctx.Span)
		enc := wire.GetEncoder()
		//ppmlint:allow errdrop query send is fire-and-forget; a lost frame surfaces as the caller's timeout
		_ = conn.SendCtx(env.EncodeLoggedTo(enc, net.Metrics(), net.Journal(), fromHost), qctx)
		wire.PutEncoder(enc)
	})
}
