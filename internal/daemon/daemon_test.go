package daemon

import (
	"strings"
	"testing"

	"ppm/internal/auth"
	"ppm/internal/calib"
	"ppm/internal/kernel"
	"ppm/internal/sim"
	"ppm/internal/simnet"
	"ppm/internal/wire"
)

type env struct {
	sched *sim.Scheduler
	net   *simnet.Network
	kerns map[string]*kernel.Host
	dir   *auth.Directory
	trust *auth.Trust
	dmns  map[string]*Daemons
	made  []string // factory invocations as "host/user"
}

func newEnv(t *testing.T, opts Options, hosts ...string) *env {
	t.Helper()
	e := &env{
		sched: sim.NewScheduler(1),
		dir:   auth.NewDirectory(),
		trust: auth.NewTrust(),
		kerns: make(map[string]*kernel.Host),
		dmns:  make(map[string]*Daemons),
	}
	e.net = simnet.New(e.sched, simnet.Options{})
	for _, h := range hosts {
		if err := e.net.AddHost(h); err != nil {
			t.Fatal(err)
		}
		e.kerns[h] = kernel.NewHost(e.sched, h, calib.ModelVAX780)
	}
	if err := e.net.AddSegment("lan", hosts...); err != nil {
		t.Fatal(err)
	}
	e.trust.AllowAll(hosts...)
	nextPort := uint16(2000)
	for _, h := range hosts {
		h := h
		factory := func(user string) (simnet.Addr, error) {
			nextPort++
			e.made = append(e.made, h+"/"+user)
			return simnet.Addr{Host: h, Port: nextPort}, nil
		}
		d, err := Start(e.kerns[h], e.net, e.dir, e.trust, factory, opts)
		if err != nil {
			t.Fatal(err)
		}
		e.dmns[h] = d
	}
	return e
}

func (e *env) query(t *testing.T, from, target string, u *auth.User) (wire.LPMQueryResp, error) {
	t.Helper()
	var resp wire.LPMQueryResp
	var qerr error
	done := false
	QueryLPM(e.net, from, target, u, func(r wire.LPMQueryResp, err error) {
		resp, qerr, done = r, err, true
	})
	if _, err := e.sched.RunUntilDone(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("query never completed")
	}
	return resp, qerr
}

func TestFigure2CreateThenFind(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	u := e.dir.AddUser("felipe")

	resp, err := e.query(t, "vax1", "vax1", u)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Created {
		t.Fatalf("first query: %+v", resp)
	}
	if resp.AcceptHost != "vax1" || resp.AcceptPort == 0 {
		t.Fatalf("accept addr: %+v", resp)
	}
	// Second request returns the existing LPM, not a new one.
	resp2, err := e.query(t, "vax1", "vax1", u)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.OK || resp2.Created {
		t.Fatalf("second query should find existing: %+v", resp2)
	}
	if resp2.AcceptPort != resp.AcceptPort {
		t.Fatal("existing LPM address changed")
	}
	if len(e.made) != 1 {
		t.Fatalf("factory ran %d times, want 1", len(e.made))
	}
}

func TestPerUserLPMs(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	a := e.dir.AddUser("ana")
	b := e.dir.AddUser("bob")
	ra, _ := e.query(t, "vax1", "vax1", a)
	rb, _ := e.query(t, "vax1", "vax1", b)
	if !ra.Created || !rb.Created {
		t.Fatal("each user needs an own LPM")
	}
	if ra.AcceptPort == rb.AcceptPort {
		t.Fatal("users share an LPM address")
	}
}

func TestBadTokenRejected(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	e.dir.AddUser("felipe")
	// Mint with a different (unregistered) identity: mallory presents
	// felipe's name with her own key.
	fake := auth.NewDirectory().AddUser("felipe2")
	evil := &authUserShim{name: "felipe", key: fake}
	resp, err := e.query(t, "vax1", "vax1", evil.user())
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("user-level masquerade accepted")
	}
	if !strings.Contains(resp.Reason, "auth") {
		t.Fatalf("reason = %q", resp.Reason)
	}
}

// authUserShim builds a User-like credential with the wrong key by
// abusing a second directory.
type authUserShim struct {
	name string
	key  *auth.User
}

func (s *authUserShim) user() *auth.User {
	// The token will be minted with key.Key() but presented under
	// s.name; VerifyToken must reject it. We go through a throwaway
	// directory so we can only use exported API.
	d := auth.NewDirectory()
	u := d.AddUser(s.name + "-imposter")
	// The returned user has the imposter's key; QueryLPM sends u.Name,
	// so rename via a fresh directory entry that shares the name:
	// simplest is to wrap: we cannot change Name, so instead register
	// the imposter name in the real test directory? Keep it simple —
	// the imposter presents their own name, unknown to the server.
	return u
}

func TestRemoteQueryNeedsRHosts(t *testing.T) {
	e := newEnv(t, Options{}, "vax1", "vax2")
	u := e.dir.AddUser("felipe")
	// No .rhosts entry: remote query denied.
	resp, err := e.query(t, "vax1", "vax2", u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("remote query without .rhosts accepted")
	}
	// With .rhosts it succeeds.
	if err := e.dir.AllowRHost("felipe", "vax1"); err != nil {
		t.Fatal(err)
	}
	resp, err = e.query(t, "vax1", "vax2", u)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Created {
		t.Fatalf("remote query: %+v", resp)
	}
	if resp.AcceptHost != "vax2" {
		t.Fatal("LPM created on wrong host")
	}
}

func TestUntrustedHostRejected(t *testing.T) {
	e := newEnv(t, Options{}, "vax1", "vax2")
	// Rebuild trust: vax2 does not trust vax1.
	e.trust = auth.NewTrust() // note: daemons hold the old pointer
	// Instead, use a fresh env with asymmetric trust.
	e2 := &env{
		sched: sim.NewScheduler(1),
		dir:   auth.NewDirectory(),
		trust: auth.NewTrust(),
		kerns: make(map[string]*kernel.Host),
		dmns:  make(map[string]*Daemons),
	}
	e2.net = simnet.New(e2.sched, simnet.Options{})
	for _, h := range []string{"vax1", "vax2"} {
		_ = e2.net.AddHost(h)
		e2.kerns[h] = kernel.NewHost(e2.sched, h, calib.ModelVAX780)
	}
	_ = e2.net.AddSegment("lan", "vax1", "vax2")
	// Only vax1 trusts vax2, not vice versa.
	e2.trust.Allow("vax1", "vax2")
	for _, h := range []string{"vax1", "vax2"} {
		h := h
		d, err := Start(e2.kerns[h], e2.net, e2.dir, e2.trust,
			func(user string) (simnet.Addr, error) {
				return simnet.Addr{Host: h, Port: 2001}, nil
			}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e2.dmns[h] = d
	}
	u := e2.dir.AddUser("felipe")
	_ = e2.dir.AllowRHost("felipe", "vax1")
	var resp wire.LPMQueryResp
	done := false
	QueryLPM(e2.net, "vax1", "vax2", u, func(r wire.LPMQueryResp, err error) {
		resp, done = r, true
	})
	if _, err := e2.sched.RunUntilDone(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("query from untrusted host accepted")
	}
}

func TestUnknownUserRejected(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	ghostDir := auth.NewDirectory()
	ghost := ghostDir.AddUser("ghost")
	resp, err := e.query(t, "vax1", "vax1", ghost)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unknown user accepted")
	}
}

func TestDaemonCrashLosesTableWithoutStableStorage(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	u := e.dir.AddUser("felipe")
	r1, _ := e.query(t, "vax1", "vax1", u)
	if !r1.Created {
		t.Fatal("setup failed")
	}
	e.dmns["vax1"].CrashDaemon()
	r2, _ := e.query(t, "vax1", "vax1", u)
	if !r2.Created {
		t.Fatal("after daemon crash the pmd should (incorrectly) create a duplicate LPM — the paper's predicted failure")
	}
	if len(e.made) != 2 {
		t.Fatalf("factory ran %d times, want 2 (duplicate)", len(e.made))
	}
}

func TestDaemonCrashRecoversWithStableStorage(t *testing.T) {
	e := newEnv(t, Options{StableStorage: true}, "vax1")
	u := e.dir.AddUser("felipe")
	r1, _ := e.query(t, "vax1", "vax1", u)
	if !r1.Created {
		t.Fatal("setup failed")
	}
	e.dmns["vax1"].CrashDaemon()
	r2, _ := e.query(t, "vax1", "vax1", u)
	if r2.Created {
		t.Fatal("stable storage should preserve the LPM table across a daemon crash")
	}
	if r2.AcceptPort != r1.AcceptPort {
		t.Fatal("recovered address differs")
	}
}

func TestUnregisterAllowsRecreate(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	u := e.dir.AddUser("felipe")
	r1, _ := e.query(t, "vax1", "vax1", u)
	e.dmns["vax1"].Unregister("felipe")
	if _, ok := e.dmns["vax1"].KnownLPM("felipe"); ok {
		t.Fatal("still registered")
	}
	r2, _ := e.query(t, "vax1", "vax1", u)
	if !r1.Created || !r2.Created {
		t.Fatal("re-query after unregister should create a fresh LPM")
	}
}

func TestStopRefusesService(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	u := e.dir.AddUser("felipe")
	e.dmns["vax1"].Stop()
	if e.dmns["vax1"].Running() {
		t.Fatal("still running")
	}
	_, err := e.query(t, "vax1", "vax1", u)
	if err == nil {
		t.Fatal("query to stopped daemons should fail (connection refused)")
	}
}

func TestQueryToCrashedHostFails(t *testing.T) {
	e := newEnv(t, Options{}, "vax1", "vax2")
	u := e.dir.AddUser("felipe")
	_ = e.dir.AllowRHost("felipe", "vax1")
	_ = e.net.Crash("vax2")
	e.kerns["vax2"].Crash()
	_, err := e.query(t, "vax1", "vax2", u)
	if err == nil {
		t.Fatal("query to crashed host should fail")
	}
}

func TestDaemonProcessesAppearInProcessTable(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	infos := e.kerns["vax1"].ProcessesOf("root")
	names := map[string]bool{}
	for _, p := range infos {
		names[p.Name] = true
	}
	if !names["inetd"] || !names["pmd"] {
		t.Fatalf("daemon processes missing: %+v", infos)
	}
}

func TestCreationLatencyIsNontrivial(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	u := e.dir.AddUser("felipe")
	start := e.sched.Now()
	_, _ = e.query(t, "vax1", "vax1", u)
	elapsed := e.sched.Now().Sub(start)
	// Steps 1-4 include inetd + pmd CPU time: at least ~13ms.
	if elapsed < 13*sim.Millisecond.Duration() {
		t.Fatalf("LPM creation took %v, suspiciously fast", elapsed)
	}
}

func TestInetdRejectsUnexpectedMessageType(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	e.dir.AddUser("felipe")
	var resp wire.LPMQueryResp
	done := false
	e.net.Dial("vax1", addrOf("vax1"), func(conn *connAlias, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn.SetHandler(func(b []byte) {
			env, derr := wire.DecodeEnvelope(b)
			if derr != nil {
				t.Fatal(derr)
			}
			r, derr := wire.DecodeLPMQueryResp(env.Body)
			if derr != nil {
				t.Fatal(derr)
			}
			resp, done = r, true
		})
		_ = conn.Send(wire.Envelope{Type: wire.MsgPing, ReqID: 1}.Encode())
	})
	if _, err := e.sched.RunUntilDone(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unexpected message type accepted")
	}
}

func TestInetdClosesOnGarbage(t *testing.T) {
	e := newEnv(t, Options{}, "vax1")
	closed := false
	e.net.Dial("vax1", addrOf("vax1"), func(conn *connAlias, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn.SetCloseHandler(func(error) { closed = true })
		_ = conn.Send([]byte{0xde, 0xad})
	})
	if _, err := e.sched.RunUntilDone(func() bool { return closed }, 100000); err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("garbage connection not closed")
	}
}

func TestFactoryFailureReported(t *testing.T) {
	// A fresh env whose factory errors.
	e := &env{
		sched: sim.NewScheduler(1),
		dir:   auth.NewDirectory(),
		trust: auth.NewTrust(),
		kerns: make(map[string]*kernel.Host),
		dmns:  make(map[string]*Daemons),
	}
	e.net = simnet.New(e.sched, simnet.Options{})
	_ = e.net.AddHost("vax1")
	e.kerns["vax1"] = kernel.NewHost(e.sched, "vax1", calib.ModelVAX780)
	_ = e.net.AddSegment("lan", "vax1")
	e.trust.AllowAll("vax1")
	d, err := Start(e.kerns["vax1"], e.net, e.dir, e.trust,
		func(string) (simnet.Addr, error) { return simnet.Addr{}, ErrNotRunning },
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.dmns["vax1"] = d
	u := e.dir.AddUser("felipe")
	resp, qerr := e.query(t, "vax1", "vax1", u)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if resp.OK {
		t.Fatal("factory failure not reported")
	}
	if !strings.Contains(resp.Reason, "create LPM") {
		t.Fatalf("reason = %q", resp.Reason)
	}
}

// addrOf returns the inetd address of a host.
func addrOf(host string) simnet.Addr { return simnet.Addr{Host: host, Port: PortInetd} }

// connAlias keeps the test import list tidy.
type connAlias = simnet.Conn
