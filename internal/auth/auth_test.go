package auth

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAddUserIdempotent(t *testing.T) {
	d := NewDirectory()
	a := d.AddUser("felipe")
	b := d.AddUser("felipe")
	if a != b {
		t.Fatal("AddUser should return the existing account")
	}
	if !bytes.Equal(a.Key(), b.Key()) {
		t.Fatal("keys differ for same account")
	}
}

func TestLookup(t *testing.T) {
	d := NewDirectory()
	d.AddUser("stuart")
	if _, err := d.Lookup("stuart"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestUsersSorted(t *testing.T) {
	d := NewDirectory()
	d.AddUser("zoe")
	d.AddUser("ana")
	got := d.Users()
	if len(got) != 2 || got[0] != "ana" || got[1] != "zoe" {
		t.Fatalf("Users = %v", got)
	}
}

func TestKeysDifferAcrossUsers(t *testing.T) {
	d := NewDirectory()
	a := d.AddUser("a")
	b := d.AddUser("b")
	if bytes.Equal(a.Key(), b.Key()) {
		t.Fatal("different users share a key")
	}
}

func TestTokenMintVerify(t *testing.T) {
	d := NewDirectory()
	u := d.AddUser("ramon")
	tok := MintToken(u, "pmd")
	if err := d.VerifyToken("ramon", "pmd", tok); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyToken("ramon", "sibling", tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("cross-purpose token accepted: %v", err)
	}
	if err := d.VerifyToken("other", "pmd", tok); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
	d.AddUser("other")
	if err := d.VerifyToken("other", "pmd", tok); !errors.Is(err, ErrBadToken) {
		t.Fatal("user-level masquerade: token for ramon accepted for other")
	}
}

func TestTokenTamperRejected(t *testing.T) {
	d := NewDirectory()
	u := d.AddUser("ramon")
	tok := MintToken(u, "pmd")
	tok[0] ^= 0xff
	if err := d.VerifyToken("ramon", "pmd", tok); !errors.Is(err, ErrBadToken) {
		t.Fatal("tampered token accepted")
	}
}

func TestRHosts(t *testing.T) {
	d := NewDirectory()
	d.AddUser("felipe")
	if d.RHostAllowed("felipe", "vax2") {
		t.Fatal("default should deny")
	}
	if err := d.AllowRHost("felipe", "vax2"); err != nil {
		t.Fatal(err)
	}
	if !d.RHostAllowed("felipe", "vax2") {
		t.Fatal("allowed host denied")
	}
	if d.RHostAllowed("felipe", "vax3") {
		t.Fatal("other host allowed")
	}
	if err := d.AllowRHost("ghost", "vax2"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrustRelation(t *testing.T) {
	tr := NewTrust()
	tr.Allow("a", "b")
	if err := tr.Check("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check("b", "a"); !errors.Is(err, ErrNotTrusted) {
		t.Fatal("trust should be directional")
	}
	if err := tr.Check("a", "a"); err != nil {
		t.Fatal("a host always trusts itself")
	}
}

func TestTrustAllowAll(t *testing.T) {
	tr := NewTrust()
	tr.AllowAll("a", "b", "c")
	for _, x := range []string{"a", "b", "c"} {
		for _, y := range []string{"a", "b", "c"} {
			if err := tr.Check(x, y); err != nil {
				t.Fatalf("Check(%s,%s): %v", x, y, err)
			}
		}
	}
	if err := tr.Check("a", "outsider"); err == nil {
		t.Fatal("outsider trusted")
	}
}

// Property: a token only verifies for the exact (user, purpose) pair it
// was minted for.
func TestPropertyTokenBinding(t *testing.T) {
	d := NewDirectory()
	f := func(user, purpose, otherUser, otherPurpose string) bool {
		if user == "" || purpose == "" {
			return true
		}
		u := d.AddUser(user)
		tok := MintToken(u, purpose)
		if d.VerifyToken(user, purpose, tok) != nil {
			return false
		}
		if otherUser != user {
			d.AddUser(orNonEmpty(otherUser))
			if d.VerifyToken(orNonEmpty(otherUser), purpose, tok) == nil {
				return false
			}
		}
		if otherPurpose != purpose {
			if d.VerifyToken(user, otherPurpose, tok) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func orNonEmpty(s string) string {
	if s == "" {
		return "_"
	}
	return s
}
