// Package auth models the authentication fabric the paper relies on:
// consistent password files across mutually trusting machines, per-user
// secrets, .rhosts-style remote-access flexibility, and the tokens the
// process manager daemons and LPMs use to prevent user-level
// masquerade. Host-level masquerade is (deliberately, as in the paper)
// out of scope.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"

	"ppm/internal/detord"
)

// Authentication errors.
var (
	ErrUnknownUser = errors.New("auth: unknown user")
	ErrBadToken    = errors.New("auth: bad token")
	ErrNotTrusted  = errors.New("auth: host not trusted")
)

// User is one account, assumed consistent across all trusting hosts
// ("it is the responsibility of network system administrators to have
// consistent password files across machines that trust each other").
type User struct {
	Name string
	// key is the user's secret, shared across hosts via the consistent
	// account database; it signs tokens and broadcast stamps.
	key []byte
	// rhosts lists hosts from which remote access is permitted without
	// further proof, mirroring ~/.rhosts.
	rhosts map[string]bool
}

// Key returns the user's signing secret.
func (u *User) Key() []byte { return u.key }

// Directory is the network-wide account database. It is shared by all
// hosts in the administrative domain, as the paper assumes.
type Directory struct {
	users map[string]*User
}

// NewDirectory returns an empty account database.
func NewDirectory() *Directory {
	return &Directory{users: make(map[string]*User)}
}

// AddUser registers an account and derives its secret deterministically
// from the name and the domain salt (good enough for a simulation; a
// real deployment would store random secrets).
func (d *Directory) AddUser(name string) *User {
	if u, ok := d.users[name]; ok {
		return u
	}
	mac := hmac.New(sha256.New, []byte("ppm-domain-salt"))
	mac.Write([]byte(name))
	u := &User{Name: name, key: mac.Sum(nil), rhosts: make(map[string]bool)}
	d.users[name] = u
	return u
}

// Lookup finds an account.
func (d *Directory) Lookup(name string) (*User, error) {
	u, ok := d.users[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	return u, nil
}

// Users returns the sorted account names.
func (d *Directory) Users() []string {
	return detord.Keys(d.users)
}

// AllowRHost adds host to the user's .rhosts, permitting remote access
// from it.
func (d *Directory) AllowRHost(user, host string) error {
	u, ok := d.users[user]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	u.rhosts[host] = true
	return nil
}

// RHostAllowed reports whether the user permits access from host.
func (d *Directory) RHostAllowed(user, host string) bool {
	u, ok := d.users[user]
	return ok && u.rhosts[host]
}

// MintToken produces the credential a user presents to a pmd or a
// sibling LPM: an HMAC over (user, purpose) with the user's secret.
// Because the secret is shared across the trusting hosts, any host can
// verify it — this is what lets the pmd act as a trusted name server
// without system-wide unforgeable tickets.
func MintToken(u *User, purpose string) []byte {
	mac := hmac.New(sha256.New, u.key)
	mac.Write([]byte(u.Name))
	mac.Write([]byte{0})
	mac.Write([]byte(purpose))
	return mac.Sum(nil)
}

// VerifyToken checks a presented token against the account database.
func (d *Directory) VerifyToken(user, purpose string, token []byte) error {
	u, ok := d.users[user]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	if !hmac.Equal(token, MintToken(u, purpose)) {
		return fmt.Errorf("%w: user %s purpose %s", ErrBadToken, user, purpose)
	}
	return nil
}

// Trust is the inter-host trust relation of the administrative domain:
// which hosts share administrative authority. The PPM only spans hosts
// that trust each other.
type Trust struct {
	trusted map[string]map[string]bool
}

// NewTrust returns an empty trust relation.
func NewTrust() *Trust {
	return &Trust{trusted: make(map[string]map[string]bool)}
}

// AllowAll establishes mutual trust among all the named hosts (the
// common case: one administrative domain).
func (t *Trust) AllowAll(hosts ...string) {
	for _, a := range hosts {
		for _, b := range hosts {
			t.Allow(a, b)
		}
	}
}

// Allow records that host a trusts host b.
func (t *Trust) Allow(a, b string) {
	m, ok := t.trusted[a]
	if !ok {
		m = make(map[string]bool)
		t.trusted[a] = m
	}
	m[b] = true
}

// Check returns an error unless host a trusts host b.
func (t *Trust) Check(a, b string) error {
	if a == b {
		return nil
	}
	if m, ok := t.trusted[a]; ok && m[b] {
		return nil
	}
	return fmt.Errorf("%w: %s does not trust %s", ErrNotTrusted, a, b)
}
