package journal

import (
	"strings"
	"testing"
)

// ctRec builds one circuit.transition record in the wire format the
// LPM journals (see lpm.circuitTransition).
func ctRec(seq uint64, host, peer, chanKey, from, to, reason string) Record {
	return Record{Seq: seq, Kind: CircuitTransition, Host: host,
		Detail: "user=u peer=" + peer + " chan=" + chanKey +
			" from=" + from + " to=" + to + " reason=" + reason}
}

func lifecycleViolations(t *testing.T, recs []Record) []Violation {
	t.Helper()
	var out []Violation
	for _, v := range AuditRecords(recs, true) {
		if v.Check == "lifecycle" {
			out = append(out, v)
		}
	}
	return out
}

// A full legal round trip — dial, authenticate, establish, suspect,
// recover, close — audits clean from both endpoints' perspectives.
func TestAuditCircuitLegalLifecycleClean(t *testing.T) {
	ch := "vax1:701->vax2:700"
	recs := []Record{
		ctRec(1, "vax1", "vax2", "-", "idle", "dialing", "dial"),
		ctRec(2, "vax1", "vax2", ch, "dialing", "authenticating", "hello"),
		ctRec(3, "vax2", "vax1", ch, "idle", "authenticating", "hello-in"),
		ctRec(4, "vax1", "vax2", ch, "authenticating", "established", "auth-client"),
		ctRec(5, "vax2", "vax1", ch, "authenticating", "established", "auth-server"),
		ctRec(6, "vax1", "vax2", ch, "established", "suspect", "suspicion-2"),
		ctRec(7, "vax1", "vax2", ch, "suspect", "established", "traffic"),
		ctRec(8, "vax1", "vax2", ch, "established", "closed", "close"),
		ctRec(9, "vax2", "vax1", ch, "established", "closed", "peer-lost"),
	}
	if vs := lifecycleViolations(t, recs); len(vs) != 0 {
		t.Fatalf("clean lifecycle flagged: %v", vs)
	}
}

// An edge outside the legal table — Idle jumping straight to
// Established without dialing or authenticating — must be flagged.
func TestAuditCircuitIllegalEdge(t *testing.T) {
	recs := []Record{
		ctRec(1, "vax1", "vax2", "vax1:701->vax2:700", "idle", "established", "magic"),
	}
	vs := lifecycleViolations(t, recs)
	if len(vs) == 0 {
		t.Fatal("illegal idle->established transition not flagged")
	}
	if !strings.Contains(vs[0].Msg, "illegal transition") {
		t.Fatalf("wrong violation: %v", vs[0])
	}
}

// A record whose declared from-state disagrees with the machine's
// replayed state means a transition was skipped or fabricated.
func TestAuditCircuitContinuityBreak(t *testing.T) {
	recs := []Record{
		ctRec(1, "vax1", "vax2", "-", "idle", "dialing", "dial"),
		// Machine is in dialing, but the record claims established.
		ctRec(2, "vax1", "vax2", "x", "established", "closed", "close"),
	}
	vs := lifecycleViolations(t, recs)
	if len(vs) == 0 {
		t.Fatal("from-state mismatch not flagged")
	}
	if !strings.Contains(vs[0].Msg, "declares from=established") {
		t.Fatalf("wrong violation: %v", vs[0])
	}
}

// Two distinct channels Established between the same host pair at the
// same time is the cross-dial double-circuit bug.
func TestAuditCircuitDoubleEstablished(t *testing.T) {
	chA, chB := "vax1:701->vax2:700", "vax2:702->vax1:700"
	recs := []Record{
		ctRec(1, "vax1", "vax2", chA, "idle", "authenticating", "hello"),
		ctRec(2, "vax1", "vax2", chA, "authenticating", "established", "auth-client"),
		ctRec(3, "vax2", "vax1", chB, "idle", "authenticating", "hello"),
		ctRec(4, "vax2", "vax1", chB, "authenticating", "established", "auth-client"),
	}
	vs := lifecycleViolations(t, recs)
	if len(vs) == 0 {
		t.Fatal("double-established pair not flagged")
	}
	if !strings.Contains(vs[0].Msg, "established circuits at once") {
		t.Fatalf("wrong violation: %v", vs[0])
	}

	// Same two channels, but the first closes before the second
	// establishes (a supersede) — legal, must stay clean.
	recs = []Record{
		ctRec(1, "vax1", "vax2", chA, "idle", "authenticating", "hello"),
		ctRec(2, "vax1", "vax2", chA, "authenticating", "established", "auth-client"),
		ctRec(3, "vax1", "vax2", chA, "established", "closed", "superseded"),
		ctRec(4, "vax1", "vax2", chB, "closed", "authenticating", "hello-in"),
		ctRec(5, "vax1", "vax2", chB, "authenticating", "established", "auth-server"),
		ctRec(6, "vax1", "vax2", chB, "established", "closed", "close"),
	}
	if vs := lifecycleViolations(t, recs); len(vs) != 0 {
		t.Fatalf("supersede sequence flagged: %v", vs)
	}
}

// A machine parked in Suspect at end of stream means the detector
// raised suspicion and then never resolved it either way.
func TestAuditCircuitUnresolvedSuspect(t *testing.T) {
	ch := "vax1:701->vax2:700"
	recs := []Record{
		ctRec(1, "vax1", "vax2", ch, "idle", "authenticating", "hello"),
		ctRec(2, "vax1", "vax2", ch, "authenticating", "established", "auth-client"),
		ctRec(3, "vax1", "vax2", ch, "established", "suspect", "suspicion-2"),
	}
	vs := lifecycleViolations(t, recs)
	if len(vs) == 0 {
		t.Fatal("unresolved Suspect not flagged")
	}
	if !strings.Contains(vs[0].Msg, "Suspect") {
		t.Fatalf("wrong violation: %v", vs[0])
	}
	// An incomplete stream (ring evicted records) must not flag it: the
	// resolution may simply have been evicted... no — the resolution
	// would come *after*, so the check is about quiescence: audits run
	// mid-flight see transient Suspects. Incomplete implies not
	// end-of-run, so the check is skipped.
	for _, v := range AuditRecords(recs, false) {
		if v.Check == "lifecycle" {
			t.Fatalf("incomplete stream flagged transient Suspect: %v", v)
		}
	}
}

// A crash wipes the crashed host's machines: its circuits die without
// close records, and the post-restart lifecycle starts over from Idle.
func TestAuditCircuitCrashResets(t *testing.T) {
	ch := "vax1:701->vax2:700"
	recs := []Record{
		ctRec(1, "vax1", "vax2", ch, "idle", "authenticating", "hello"),
		ctRec(2, "vax1", "vax2", ch, "authenticating", "established", "auth-client"),
		ctRec(3, "vax2", "vax1", ch, "idle", "authenticating", "hello-in"),
		ctRec(4, "vax2", "vax1", ch, "authenticating", "established", "auth-server"),
		{Seq: 5, Kind: NetHostCrash, Host: "vax1", Detail: ""},
		// vax2 sees the break and closes; vax1 restarts from idle
		// without ever journaling a close for the dead circuit.
		ctRec(6, "vax2", "vax1", ch, "established", "closed", "peer-lost"),
		ctRec(7, "vax1", "vax2", "-", "idle", "dialing", "dial"),
		ctRec(8, "vax1", "vax2", ch, "dialing", "authenticating", "hello"),
		ctRec(9, "vax1", "vax2", ch, "authenticating", "established", "auth-client"),
		ctRec(10, "vax1", "vax2", ch, "established", "closed", "exit"),
	}
	if vs := lifecycleViolations(t, recs); len(vs) != 0 {
		t.Fatalf("crash-reset lifecycle flagged: %v", vs)
	}
}
