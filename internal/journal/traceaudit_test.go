package journal

import (
	"strings"
	"testing"
	"time"

	"ppm/internal/trace"
)

func tspan(id, traceID, parent uint64, name string, start, end time.Duration, ends int) trace.SpanData {
	return trace.SpanData{ID: id, Trace: traceID, Parent: parent,
		Host: "a", Name: name, Start: start, End: end, Ends: ends}
}

func violationMsgs(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Msg)
		b.WriteString("\n")
	}
	return b.String()
}

func TestTraceAuditCleanRun(t *testing.T) {
	spans := []trace.SpanData{
		tspan(1, 1, 0, "op.stop", 0, 100, 1),
		tspan(2, 1, 1, "lpm.request.b", 10, 90, 1),
		tspan(3, 1, 2, "kernel.event.stop", 80, 120, 1), // async overrun: fine
	}
	recs := []Record{{Seq: 1, Kind: LPMRetry, Trace: 1, Span: 2}}
	if vs := AuditTraceRecords(recs, spans, true); len(vs) != 0 {
		t.Errorf("clean run flagged:\n%s", violationMsgs(vs))
	}
}

func TestTraceAuditSpanLifecycle(t *testing.T) {
	spans := []trace.SpanData{
		tspan(1, 1, 0, "op.stop", 0, 100, 1),
		tspan(2, 1, 1, "lpm.request.b", 10, 10, 0),     // leaked
		tspan(3, 1, 1, "dispatch.endpoint", 10, 30, 2), // double-closed
	}
	vs := AuditTraceRecords(nil, spans, true)
	msgs := violationMsgs(vs)
	if !strings.Contains(msgs, "never closed") {
		t.Errorf("leaked span not flagged:\n%s", msgs)
	}
	if !strings.Contains(msgs, "closed 2 times") {
		t.Errorf("double close not flagged:\n%s", msgs)
	}
}

func TestTraceAuditNesting(t *testing.T) {
	spans := []trace.SpanData{
		tspan(1, 1, 0, "op.stop", 10, 100, 1),
		tspan(2, 1, 1, "net.hop.b", 5, 20, 1),           // starts before parent
		tspan(3, 1, 1, "dispatch.endpoint", 20, 110, 1), // sync span outliving parent
	}
	vs := AuditTraceRecords(nil, spans, true)
	msgs := violationMsgs(vs)
	if !strings.Contains(msgs, "starts at 5ns before its parent") {
		t.Errorf("early child not flagged:\n%s", msgs)
	}
	if !strings.Contains(msgs, "ends at 110ns after its parent") {
		t.Errorf("overrunning sync child not flagged:\n%s", msgs)
	}
}

func TestTraceAuditCrossLinks(t *testing.T) {
	spans := []trace.SpanData{tspan(1, 1, 0, "op.stop", 0, 100, 1)}
	recs := []Record{{Seq: 7, Kind: LPMRetry, Trace: 1, Span: 99}}
	vs := AuditTraceRecords(recs, spans, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "never recorded") {
		t.Errorf("dangling cross-link not flagged: %v", vs)
	}
	if vs[0].Seq != 7 {
		t.Errorf("violation carries seq %d, want 7", vs[0].Seq)
	}
	// An incomplete stream cannot prove the span missing.
	if vs := AuditTraceRecords(recs, spans, false); len(vs) != 0 {
		t.Errorf("incomplete stream flagged existence:\n%s", violationMsgs(vs))
	}
}
