package journal

import (
	"fmt"
	"strings"
)

// DiffContext is how many records of surrounding context a Divergence
// carries on each side of the first differing record.
const DiffContext = 3

// Divergence describes the earliest point at which two journals differ.
type Divergence struct {
	// Index is the position (into the retained sequences, oldest first)
	// of the first differing record.
	Index int
	// A and B are the differing records; one side is nil when that
	// journal ended before the other.
	A, B *Record
	// ContextA and ContextB are the up-to-DiffContext records preceding
	// the divergence on each side (they agree unless the journals
	// retained different windows).
	ContextA, ContextB []Record
}

// Diff compares two journals record by record and returns the first
// divergence, or nil if the retained streams are identical. Two
// same-seed runs must produce a nil diff; on a determinism failure the
// divergence names the causal event rather than leaving a byte-level
// output diff to stare at.
func Diff(a, b *Journal) *Divergence {
	return DiffRecords(a.Records(), b.Records())
}

// DiffRecords is Diff over already-extracted record slices.
func DiffRecords(a, b []Record) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return divergenceAt(a, b, i)
		}
	}
	if len(a) != len(b) {
		return divergenceAt(a, b, n)
	}
	return nil
}

func divergenceAt(a, b []Record, i int) *Divergence {
	d := &Divergence{Index: i}
	if i < len(a) {
		r := a[i]
		d.A = &r
	}
	if i < len(b) {
		r := b[i]
		d.B = &r
	}
	lo := i - DiffContext
	if lo < 0 {
		lo = 0
	}
	d.ContextA = append([]Record(nil), a[lo:min(i, len(a))]...)
	d.ContextB = append([]Record(nil), b[lo:min(i, len(b))]...)
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Format renders the divergence for a test failure or report: the first
// differing record on each side with its preceding context.
func (d *Divergence) Format() string {
	if d == nil {
		return "journals identical\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "first divergence at record index %d:\n", d.Index)
	side := func(name string, ctx []Record, r *Record) {
		fmt.Fprintf(&sb, "  run %s:\n", name)
		for _, c := range ctx {
			fmt.Fprintf(&sb, "      %s\n", c.String())
		}
		if r != nil {
			fmt.Fprintf(&sb, "    > %s\n", r.String())
		} else {
			fmt.Fprintf(&sb, "    > (journal ends)\n")
		}
	}
	side("A", d.ContextA, d.A)
	side("B", d.ContextB, d.B)
	return sb.String()
}
