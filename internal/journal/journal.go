// Package journal implements the installation's flight recorder: one
// deterministic, bounded stream of typed records appended by every
// layer of the PPM at its existing instrumentation points. Where the
// metrics registry answers "how many" and the tracer answers "how long",
// the journal answers "what happened, in what order": kernel process
// events, pmd lookups, sibling-circuit handshakes, flood broadcasts and
// network-level sends all land in a single creation-ordered record
// stream stamped with virtual time, host, and the active trace span.
//
// Because the simulation is single-threaded and virtual-timed, two runs
// with the same seed produce byte-identical journals; the first record
// at which two journals differ (Diff) therefore names the causal event
// of a determinism failure, and replaying the stream (Audit) checks
// protocol invariants the aggregate counters cannot express.
package journal

import (
	"fmt"
	"strings"
	"time"
)

// Kind identifies the type of a journal record. Kinds are dotted names
// grouped by the layer that appends them.
type Kind string

// The record kinds, one per instrumentation point.
const (
	// simnet: message motion and failure injection.
	NetSend         Kind = "net.send"
	NetDeliver      Kind = "net.deliver"
	NetDrop         Kind = "net.drop"
	NetCircuitOpen  Kind = "net.circuit.open"
	NetCircuitClose Kind = "net.circuit.close"
	NetCircuitBreak Kind = "net.circuit.break"
	NetHostCrash    Kind = "net.host.crash"
	NetHostRestart  Kind = "net.host.restart"
	NetPartition    Kind = "net.partition"
	NetHeal         Kind = "net.heal"

	// simnet link flapping: a deterministic injector taking one
	// endpoint pair down and back up on a schedule. Flap boundaries
	// reshape reachability like partitions do, so the audit treats
	// them as epoch boundaries for flood-coverage purposes.
	NetFlapDown Kind = "net.flap.down"
	NetFlapUp   Kind = "net.flap.up"

	// wire: envelope serialization, tagged with the envelope kind.
	WireEncode Kind = "wire.encode"
	WireDecode Kind = "wire.decode"

	// kernel: process lifecycle and trace-event delivery.
	KernelSpawn     Kind = "kernel.spawn"
	KernelFork      Kind = "kernel.fork"
	KernelExit      Kind = "kernel.exit"
	KernelSetParent Kind = "kernel.setparent"
	KernelEvent     Kind = "kernel.event"

	// daemon: pmd lookups and LPM creation.
	DaemonQuery      Kind = "daemon.query"
	DaemonAuthFail   Kind = "daemon.auth.fail"
	DaemonLPMFound   Kind = "daemon.lpm.found"
	DaemonLPMCreated Kind = "daemon.lpm.created"

	// lpm: adoption, sibling circuits, floods, relays, control ops.
	LPMAdopt         Kind = "lpm.adopt"
	LPMControl       Kind = "lpm.control"
	LPMSiblingAuth   Kind = "lpm.sibling.auth"
	LPMSiblingOpen   Kind = "lpm.sibling.open"
	LPMSiblingClose  Kind = "lpm.sibling.close"
	LPMSiblingReject Kind = "lpm.sibling.reject"
	LPMFloodOrigin   Kind = "lpm.flood.origin"
	LPMFloodApply    Kind = "lpm.flood.apply"
	LPMFloodDup      Kind = "lpm.flood.dup"
	LPMFloodDone     Kind = "lpm.flood.done"
	LPMRelayOrigin   Kind = "lpm.relay.origin"
	LPMRelayForward  Kind = "lpm.relay.forward"

	// lpm reliability: the retry engine and at-most-once dedup.
	// A retry names the operation being retransmitted and the attempt
	// number; a redial records the engine (or recovery) re-establishing
	// a circuit; op.exec marks the first execution of an at-most-once
	// operation and op.replay a cached reply answering a retransmit —
	// the audit holds each op to at most one exec.
	// A timeout records a request whose reply never arrived within the
	// request window — the cross-link that lets the profiler tie an
	// attribution gap (dead air before a retry's backoff span) to the
	// specific expired exchange.
	LPMRetry   Kind = "lpm.request.retry"
	LPMTimeout Kind = "lpm.request.timeout"

	LPMRedial   Kind = "lpm.sibling.redial"
	LPMOpExec   Kind = "lpm.op.exec"
	LPMOpReplay Kind = "lpm.op.replay"

	// circuit lifecycle: every transition of a sibling circuit's
	// explicit state machine (idle → dialing → authenticating →
	// established → suspect → closed), journaled at the host whose
	// machine stepped. The audit replays these against the legal
	// transition table and holds each host pair to at most one
	// Established circuit.
	CircuitTransition Kind = "circuit.transition"

	// lpm exit forwarding: a remote kernel's LPM forwarding a process
	// exit event to the process's home LPM so home-declared watches
	// fire (the remote-watch path).
	LPMExitForward Kind = "lpm.exit.forward"

	// snapshot: a completed distributed snapshot, with its merged
	// process table encoded in the detail (audited against the
	// genealogy reconstructed from the kernel records).
	SnapshotTaken Kind = "snapshot"

	// status: a cluster-wide live-introspection sweep. The request
	// record (at the origin) names the sweep id and its sorted target
	// hosts; one report record follows per target — all appended at the
	// origin, so retransmitted status RPCs (the op is read-only and
	// re-executes freely) never double-journal. The audit holds each
	// sweep to exactly one report per reachable target and ok=false for
	// every unreachable one.
	StatusRequest Kind = "status.request"
	StatusReport  Kind = "status.report"
)

// kinds is the canonical list, in layer order.
var kinds = []Kind{
	NetSend, NetDeliver, NetDrop,
	NetCircuitOpen, NetCircuitClose, NetCircuitBreak,
	NetHostCrash, NetHostRestart, NetPartition, NetHeal,
	NetFlapDown, NetFlapUp,
	WireEncode, WireDecode,
	KernelSpawn, KernelFork, KernelExit, KernelSetParent, KernelEvent,
	DaemonQuery, DaemonAuthFail, DaemonLPMFound, DaemonLPMCreated,
	LPMAdopt, LPMControl,
	LPMSiblingAuth, LPMSiblingOpen, LPMSiblingClose, LPMSiblingReject,
	LPMFloodOrigin, LPMFloodApply, LPMFloodDup, LPMFloodDone,
	LPMRelayOrigin, LPMRelayForward,
	LPMRetry, LPMTimeout, LPMRedial, LPMOpExec, LPMOpReplay,
	CircuitTransition, LPMExitForward,
	SnapshotTaken,
	StatusRequest, StatusReport,
}

// Kinds returns the canonical list of record kinds.
func Kinds() []Kind {
	return append([]Kind(nil), kinds...)
}

// ValidKind reports whether k names a known record kind.
func ValidKind(k Kind) bool {
	for _, known := range kinds {
		if k == known {
			return true
		}
	}
	return false
}

// Record is one flight-recorder entry.
type Record struct {
	Seq    uint64        // creation order, 1-based, never reused
	At     time.Duration // virtual time of the append
	Kind   Kind          // what happened
	Host   string        // where (empty for installation-wide events)
	Trace  uint64        // cross-link to the causal trace tree (0 = none)
	Span   uint64        // the active span at append time (0 = none)
	Detail string        // space-separated key=value fields and tokens
}

// String renders the record as one canonical line. Two journals are
// byte-identical iff their rendered lines are.
func (r Record) String() string {
	s := fmt.Sprintf("#%06d %-12s %-8s %-18s %s",
		r.Seq, "T+"+r.At.String(), hostOrDash(r.Host), string(r.Kind), r.Detail)
	s = strings.TrimRight(s, " ")
	if r.Trace != 0 {
		s += fmt.Sprintf(" [t=%d s=%d]", r.Trace, r.Span)
	}
	return s
}

func hostOrDash(h string) string {
	if h == "" {
		return "-"
	}
	return h
}

// Field extracts the value of a key=value token from a record detail
// string ("" if absent). Details are written by the instrumentation
// sites in a fixed token order, so extraction is deterministic.
func Field(detail, key string) string {
	for _, tok := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(tok, key+"="); ok {
			return v
		}
	}
	return ""
}

// DefaultCapacity bounds the number of retained records. The ring keeps
// roughly the last ~64k events; the total number ever appended is still
// available through Seq/Dropped so consumers can tell when the window
// slid.
const DefaultCapacity = 1 << 16

// Journal is the bounded record stream. The zero of *Journal (nil) is a
// disabled journal: every method no-ops, so instrumented code never
// branches on whether the flight recorder is wired.
//
// The ring-buffer layout follows history.Store: start indexes the
// oldest retained record, eviction at capacity overwrites that slot in
// O(1).
type Journal struct {
	now      func() time.Duration
	span     func() (trace, span uint64)
	capacity int
	ring     []Record
	start    int
	count    int
	seq      uint64 // records ever appended; Seq of the newest record
}

// New creates a journal reading virtual time from now.
func New(now func() time.Duration) *Journal {
	return &Journal{now: now, capacity: DefaultCapacity}
}

// Enabled reports whether the flight recorder is wired at all. Hot
// paths use it to skip building a record's detail string when the
// append would be a no-op anyway.
func (j *Journal) Enabled() bool { return j != nil }

// SetSpanSource installs the tracer cross-link: fn returns the active
// (trace, span) pair, stamped onto records appended without an explicit
// context so journal entries and trace trees reference each other.
func (j *Journal) SetSpanSource(fn func() (trace, span uint64)) {
	if j == nil {
		return
	}
	j.span = fn
}

// SetCapacity resizes the ring bound (only before the first append; 0
// keeps the current capacity).
func (j *Journal) SetCapacity(n int) {
	if j == nil || n <= 0 || j.seq != 0 {
		return
	}
	j.capacity = n
}

// Append records an event, stamping virtual time and the currently
// active trace span.
//
//ppmlint:hotpath pin=TestJournalAppendZeroAllocs
func (j *Journal) Append(kind Kind, host, detail string) {
	if j == nil {
		return
	}
	var tr, sp uint64
	if j.span != nil {
		tr, sp = j.span()
	}
	j.push(kind, host, detail, tr, sp)
}

// AppendCtx records an event under an explicit trace context (the
// envelope's own trailer IDs, or a dial/flood context); zero IDs mean
// the event is causally unattributed.
//
//ppmlint:hotpath pin=TestJournalAppendZeroAllocs
func (j *Journal) AppendCtx(kind Kind, host, detail string, trace, span uint64) {
	if j == nil {
		return
	}
	j.push(kind, host, detail, trace, span)
}

//ppmlint:hotpath pin=TestJournalAppendZeroAllocs
func (j *Journal) push(kind Kind, host, detail string, trace, span uint64) {
	j.seq++
	r := Record{
		Seq: j.seq, At: j.now(), Kind: kind, Host: host,
		Trace: trace, Span: span, Detail: detail,
	}
	if j.count == j.capacity {
		j.ring[j.start] = r
		j.start = (j.start + 1) % j.capacity
		return
	}
	// Until the ring first fills, start stays 0 and the records occupy
	// ring[0:count], so the backing array can grow amortized instead of
	// committing capacity slots up front (short runs stay cheap even
	// with a large bound).
	idx := (j.start + j.count) % j.capacity
	if idx < len(j.ring) {
		j.ring[idx] = r
	} else {
		j.ring = append(j.ring, r)
	}
	j.count++
}

// at returns the i-th retained record, oldest first.
func (j *Journal) at(i int) Record {
	return j.ring[(j.start+i)%j.capacity]
}

// Len returns the number of retained records.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.count
}

// Dropped returns how many records have been evicted from the ring.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.seq - uint64(j.count)
}

// Records returns the retained records, oldest first.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	out := make([]Record, j.count)
	for i := range out {
		out[i] = j.at(i)
	}
	return out
}

// Reset discards all retained records (the sequence counter keeps
// counting, so records from before and after a reset never alias).
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	j.start, j.count = 0, 0
}

// Filter selects records for Select and Report. Zero-valued fields
// match everything; Until of 0 means no upper bound.
type Filter struct {
	Kinds []Kind        // match any of these kinds (empty = all)
	Host  string        // match this host ("" = all)
	Since time.Duration // records at or after this instant
	Until time.Duration // records at or before this instant (0 = unbounded)
}

func (f Filter) match(r Record) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if r.Kind == k || strings.HasPrefix(string(r.Kind), string(k)+".") {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Host != "" && r.Host != f.Host {
		return false
	}
	if r.At < f.Since {
		return false
	}
	if f.Until != 0 && r.At > f.Until {
		return false
	}
	return true
}

// Select returns the retained records matching the filter, oldest
// first.
func (j *Journal) Select(f Filter) []Record {
	if j == nil {
		return nil
	}
	var out []Record
	for i := 0; i < j.count; i++ {
		if r := j.at(i); f.match(r) {
			out = append(out, r)
		}
	}
	return out
}

// Render returns the canonical full-journal text: one line per retained
// record. Byte-identical across same-seed runs.
func (j *Journal) Render() string {
	var b strings.Builder
	for i := 0; i < j.Len(); i++ {
		b.WriteString(j.at(i).String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Report renders the records matching the filter under a summary
// header.
func (j *Journal) Report(f Filter) string {
	if j == nil {
		return "=== journal === (disabled)\n"
	}
	sel := j.Select(f)
	var b strings.Builder
	fmt.Fprintf(&b, "=== journal === (%d shown / %d retained, %d dropped)\n",
		len(sel), j.Len(), j.Dropped())
	for _, r := range sel {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
