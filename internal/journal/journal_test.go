package journal

import (
	"strings"
	"testing"
	"time"
)

func testJournal(capacity int) (*Journal, *time.Duration) {
	now := new(time.Duration)
	j := New(func() time.Duration { return *now })
	j.SetCapacity(capacity)
	return j, now
}

func TestRingEviction(t *testing.T) {
	j, now := testJournal(4)
	for i := 1; i <= 10; i++ {
		*now = time.Duration(i) * time.Second
		j.Append(NetSend, "a", "n=x")
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	recs := j.Records()
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Fatalf("record %d Seq = %d, want %d", i, r.Seq, want)
		}
	}
	if recs[0].At != 7*time.Second {
		t.Fatalf("oldest At = %v, want 7s", recs[0].At)
	}
	j.Reset()
	if j.Len() != 0 || j.Dropped() != 10 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", j.Len(), j.Dropped())
	}
	j.Append(NetSend, "a", "")
	if got := j.Records()[0].Seq; got != 11 {
		t.Fatalf("Seq after reset = %d, want 11 (never reused)", got)
	}
}

func TestNilJournalNoOps(t *testing.T) {
	var j *Journal
	j.Append(NetSend, "a", "x")
	j.AppendCtx(NetSend, "a", "x", 1, 2)
	j.SetSpanSource(func() (uint64, uint64) { return 0, 0 })
	j.SetCapacity(10)
	j.Reset()
	if j.Len() != 0 || j.Dropped() != 0 || j.Records() != nil || j.Select(Filter{}) != nil {
		t.Fatal("nil journal must be empty")
	}
	if got := j.Report(Filter{}); !strings.Contains(got, "disabled") {
		t.Fatalf("nil Report = %q", got)
	}
	if d := Diff(j, j); d != nil {
		t.Fatalf("Diff(nil, nil) = %v", d)
	}
	if vs := Audit(j); vs != nil {
		t.Fatalf("Audit(nil) = %v", vs)
	}
}

func TestSpanSource(t *testing.T) {
	j, _ := testJournal(8)
	j.SetSpanSource(func() (uint64, uint64) { return 7, 9 })
	j.Append(KernelSpawn, "a", "pid=1")
	j.AppendCtx(WireEncode, "a", "Hello 10B", 3, 4)
	recs := j.Records()
	if recs[0].Trace != 7 || recs[0].Span != 9 {
		t.Fatalf("Append stamped %d/%d, want 7/9", recs[0].Trace, recs[0].Span)
	}
	if recs[1].Trace != 3 || recs[1].Span != 4 {
		t.Fatalf("AppendCtx stamped %d/%d, want 3/4", recs[1].Trace, recs[1].Span)
	}
	if s := recs[0].String(); !strings.Contains(s, "[t=7 s=9]") {
		t.Fatalf("String() = %q, want trace suffix", s)
	}
}

func TestFilter(t *testing.T) {
	j, now := testJournal(32)
	*now = 1 * time.Second
	j.Append(NetSend, "a", "")
	j.Append(LPMSiblingOpen, "a", "")
	*now = 2 * time.Second
	j.Append(LPMSiblingClose, "b", "")
	j.Append(SnapshotTaken, "b", "")
	if got := len(j.Select(Filter{Kinds: []Kind{"lpm.sibling"}})); got != 2 {
		t.Fatalf("prefix kind matched %d, want 2", got)
	}
	if got := len(j.Select(Filter{Kinds: []Kind{LPMSiblingOpen}})); got != 1 {
		t.Fatalf("exact kind matched %d, want 1", got)
	}
	if got := len(j.Select(Filter{Host: "b"})); got != 2 {
		t.Fatalf("host matched %d, want 2", got)
	}
	if got := len(j.Select(Filter{Since: 2 * time.Second})); got != 2 {
		t.Fatalf("since matched %d, want 2", got)
	}
	if got := len(j.Select(Filter{Until: 1 * time.Second})); got != 2 {
		t.Fatalf("until matched %d, want 2", got)
	}
	// "snapshot" must not prefix-match "snapshot.something" absent kinds,
	// but must match itself exactly.
	if got := len(j.Select(Filter{Kinds: []Kind{SnapshotTaken}})); got != 1 {
		t.Fatalf("snapshot matched %d, want 1", got)
	}
}

func TestField(t *testing.T) {
	d := "user=alice chan=a:10->b:111 from=a note"
	if got := Field(d, "user"); got != "alice" {
		t.Fatalf("user = %q", got)
	}
	if got := Field(d, "chan"); got != "a:10->b:111" {
		t.Fatalf("chan = %q", got)
	}
	if got := Field(d, "missing"); got != "" {
		t.Fatalf("missing = %q", got)
	}
	// A key must not match as a substring of another key.
	if got := Field("xuser=bob user=eve", "user"); got != "eve" {
		t.Fatalf("user = %q, want eve", got)
	}
}

func TestValidKind(t *testing.T) {
	for _, k := range Kinds() {
		if !ValidKind(k) {
			t.Errorf("canonical kind %q not valid", k)
		}
	}
	if ValidKind("net") || ValidKind("bogus") {
		t.Fatal("prefixes and unknowns must not be exact kinds")
	}
}

func TestDiffIdenticalAndDivergent(t *testing.T) {
	a, anow := testJournal(16)
	b, bnow := testJournal(16)
	for i := 0; i < 5; i++ {
		*anow = time.Duration(i) * time.Millisecond
		*bnow = *anow
		a.Append(NetSend, "h", "n=1")
		b.Append(NetSend, "h", "n=1")
	}
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical journals diverged: %s", d.Format())
	}
	*anow, *bnow = time.Second, time.Second
	a.Append(KernelExit, "h", "pid=3 code=0")
	b.Append(KernelExit, "h", "pid=4 code=0")
	d := Diff(a, b)
	if d == nil {
		t.Fatal("divergent journals reported identical")
	}
	if d.Index != 5 {
		t.Fatalf("Index = %d, want 5", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Detail == d.B.Detail {
		t.Fatalf("divergence records %v / %v", d.A, d.B)
	}
	if len(d.ContextA) != DiffContext {
		t.Fatalf("context length %d, want %d", len(d.ContextA), DiffContext)
	}
	out := d.Format()
	if !strings.Contains(out, "first divergence at record index 5") ||
		!strings.Contains(out, "pid=3") || !strings.Contains(out, "pid=4") {
		t.Fatalf("Format:\n%s", out)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a, _ := testJournal(16)
	b, _ := testJournal(16)
	a.Append(NetSend, "h", "")
	a.Append(NetDeliver, "h", "")
	b.Append(NetSend, "h", "")
	d := Diff(a, b)
	if d == nil || d.Index != 1 || d.A == nil || d.B != nil {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.Format(), "(journal ends)") {
		t.Fatalf("Format:\n%s", d.Format())
	}
}

// --- audit ---

func rec(kind Kind, host, detail string) Record {
	return Record{Kind: kind, Host: host, Detail: detail}
}

func seqed(rs []Record) []Record {
	for i := range rs {
		rs[i].Seq = uint64(i + 1)
	}
	return rs
}

func TestAuditCleanRun(t *testing.T) {
	stream := seqed([]Record{
		rec(KernelSpawn, "a", "pid=1 name=lpm user=u"),
		rec(KernelFork, "a", "parent=1 child=2 name=worker"),
		rec(KernelSetParent, "a", "pid=2 parent=<a,1>"),
		rec(LPMSiblingAuth, "b", "user=u chan=a:10->b:111 from=a"),
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=a:10->b:111 role=server"),
		rec(LPMSiblingOpen, "a", "user=u peer=b chan=a:10->b:111 role=client"),
		rec(LPMFloodOrigin, "a", "user=u stamp=a@1s#1 inner=SnapshotReq"),
		rec(LPMFloodApply, "a", "user=u stamp=a@1s#1"),
		rec(LPMFloodApply, "b", "user=u stamp=a@1s#1"),
		rec(LPMFloodDone, "a", "user=u stamp=a@1s#1 hosts=a,b partial="),
		rec(KernelExit, "a", "pid=2 code=0"),
		rec(SnapshotTaken, "a", "user=u procs=<a,2>|<a,1>|exited partial="),
		rec(LPMSiblingClose, "a", "user=u peer=b chan=a:10->b:111"),
		rec(LPMSiblingClose, "b", "user=u peer=a chan=a:10->b:111"),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("clean run flagged:\n%s", AuditReport(vs))
	}
}

func TestAuditDoubleAuth(t *testing.T) {
	stream := seqed([]Record{
		rec(LPMSiblingAuth, "b", "user=u chan=c1 from=a"),
		rec(LPMSiblingAuth, "b", "user=u chan=c1 from=a"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || vs[0].Check != "circuit" ||
		!strings.Contains(vs[0].Msg, "authenticated 2 times") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
}

func TestAuditOpenBeforeAuth(t *testing.T) {
	stream := seqed([]Record{
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=c1 role=server"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "before authentication") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// A client-side open carries no auth (the server authenticates).
	stream = seqed([]Record{
		rec(LPMSiblingOpen, "a", "user=u peer=b chan=c1 role=client"),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("client open flagged: %s", AuditReport(vs))
	}
	// Incomplete streams skip the check: the auth may be evicted.
	stream = seqed([]Record{
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=c1 role=server"),
	})
	if vs := AuditRecords(stream, false); len(vs) != 0 {
		t.Fatalf("incomplete stream flagged: %s", AuditReport(vs))
	}
}

func TestAuditDoubleApply(t *testing.T) {
	stream := seqed([]Record{
		rec(LPMFloodOrigin, "a", "user=u stamp=s1"),
		rec(LPMFloodApply, "b", "user=u stamp=s1"),
		rec(LPMFloodApply, "b", "user=u stamp=s1"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "dedup failed") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// Double apply is always-sound: it fires even on incomplete streams.
	if vs := AuditRecords(stream, false); len(vs) != 1 {
		t.Fatalf("incomplete stream: %s", AuditReport(vs))
	}
}

func TestAuditFloodCoverage(t *testing.T) {
	// a—b circuit fully open, but the flood from a never reaches b.
	stream := seqed([]Record{
		rec(LPMSiblingAuth, "b", "user=u chan=c1 from=a"),
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=c1 role=server"),
		rec(LPMSiblingOpen, "a", "user=u peer=b chan=c1 role=client"),
		rec(LPMFloodOrigin, "a", "user=u stamp=s1"),
		rec(LPMFloodApply, "a", "user=u stamp=s1"),
		rec(LPMFloodDone, "a", "user=u stamp=s1 hosts=a partial="),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "never reached live sibling b") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// A dedup hit on b counts as reached.
	stream = seqed([]Record{
		rec(LPMSiblingAuth, "b", "user=u chan=c1 from=a"),
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=c1 role=server"),
		rec(LPMSiblingOpen, "a", "user=u peer=b chan=c1 role=client"),
		rec(LPMFloodOrigin, "a", "user=u stamp=s1"),
		rec(LPMFloodApply, "a", "user=u stamp=s1"),
		rec(LPMFloodDup, "b", "user=u stamp=s1"),
		rec(LPMFloodDone, "a", "user=u stamp=s1 hosts=a partial="),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("dup-covered flood flagged: %s", AuditReport(vs))
	}
	// A crash between origin and done changes the epoch: coverage is
	// then unprovable from the journal and the check stands down.
	stream = seqed([]Record{
		rec(LPMSiblingAuth, "b", "user=u chan=c1 from=a"),
		rec(LPMSiblingOpen, "b", "user=u peer=a chan=c1 role=server"),
		rec(LPMSiblingOpen, "a", "user=u peer=b chan=c1 role=client"),
		rec(LPMFloodOrigin, "a", "user=u stamp=s1"),
		rec(LPMFloodApply, "a", "user=u stamp=s1"),
		rec(NetHostCrash, "b", ""),
		rec(LPMFloodDone, "a", "user=u stamp=s1 hosts=a partial="),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("quiescence-violated flood flagged: %s", AuditReport(vs))
	}
}

func TestAuditSnapshotGenealogy(t *testing.T) {
	base := []Record{
		rec(KernelSpawn, "a", "pid=1 name=lpm user=u"),
		rec(KernelFork, "a", "parent=1 child=2 name=w"),
	}
	// Unknown process.
	stream := seqed(append(append([]Record(nil), base...),
		rec(SnapshotTaken, "a", "user=u procs=<a,9>|<a,1>|running partial=")))
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "never created") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// Wrong parent.
	stream = seqed(append(append([]Record(nil), base...),
		rec(SnapshotTaken, "a", "user=u procs=<a,2>|<a,7>|running partial=")))
	vs = AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "journal says <a,1>") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// Exited without an exit record.
	stream = seqed(append(append([]Record(nil), base...),
		rec(SnapshotTaken, "a", "user=u procs=<a,2>|<a,1>|exited partial=")))
	vs = AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "no exit record") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// SetParent overrides the fork parent.
	stream = seqed(append(append([]Record(nil), base...),
		rec(KernelSetParent, "a", "pid=2 parent=<b,5>"),
		rec(SnapshotTaken, "a", "user=u procs=<a,2>|<b,5>|running partial=")))
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("setparent snapshot flagged: %s", AuditReport(vs))
	}
}

func TestAuditTruncation(t *testing.T) {
	var stream []Record
	for i := 0; i < maxViolations+10; i++ {
		stream = append(stream, rec(LPMFloodApply, "b", "user=u stamp=s1"),
			rec(LPMFloodApply, "b", "user=u stamp=s1"))
	}
	vs := AuditRecords(seqed(stream), false)
	if len(vs) != maxViolations+1 {
		t.Fatalf("got %d violations, want %d + truncation marker", len(vs), maxViolations)
	}
	if last := vs[len(vs)-1]; last.Check != "audit" ||
		!strings.Contains(last.Msg, "truncated") {
		t.Fatalf("last violation = %v", last)
	}
}

func TestRenderByteIdentity(t *testing.T) {
	build := func() *Journal {
		j, now := testJournal(8)
		j.SetSpanSource(func() (uint64, uint64) { return 1, 2 })
		*now = 5 * time.Millisecond
		j.Append(NetSend, "a", "datagram a:1->b:2 10B")
		*now = 6 * time.Millisecond
		j.AppendCtx(WireDecode, "b", "Hello 10B", 0, 0)
		return j
	}
	a, b := build().Render(), build().Render()
	if a != b {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "net.send") || !strings.Contains(a, "T+5ms") {
		t.Fatalf("render:\n%s", a)
	}
}

func TestAuditStatusSweepClean(t *testing.T) {
	stream := seqed([]Record{
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,b,c"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=b ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=c ok=false"),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("clean sweep flagged:\n%s", AuditReport(vs))
	}
}

func TestAuditStatusSweepDuplicateReport(t *testing.T) {
	stream := seqed([]Record{
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,b"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=b ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=b ok=true"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || vs[0].Check != "status" ||
		!strings.Contains(vs[0].Msg, "resolved b 2 times") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
}

func TestAuditStatusSweepUntargetedHost(t *testing.T) {
	stream := seqed([]Record{
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,b"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=b ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=d ok=true"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "never targeted") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
}

func TestAuditStatusSweepMissingReport(t *testing.T) {
	stream := seqed([]Record{
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,b,c"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=b ok=true"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || vs[0].Check != "status" ||
		!strings.Contains(vs[0].Msg, "never resolved target c") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// The coverage check needs the full stream: an evicted report record
	// must not read as a missing one.
	if vs := AuditRecords(stream, false); len(vs) != 0 {
		t.Fatalf("incomplete stream flagged: %s", AuditReport(vs))
	}
}

func TestAuditStatusSweepNoRequest(t *testing.T) {
	stream := seqed([]Record{
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "no request record") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// The request may have been evicted from an incomplete stream.
	if vs := AuditRecords(stream, false); len(vs) != 0 {
		t.Fatalf("incomplete stream flagged: %s", AuditReport(vs))
	}
}

func TestAuditStatusSweepCrashedHostReachable(t *testing.T) {
	// c crashed before the sweep started and never restarted: an ok=true
	// report for it cannot exist.
	stream := seqed([]Record{
		rec(NetHostCrash, "c", ""),
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,c"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=c ok=true"),
	})
	vs := AuditRecords(stream, true)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "reports crashed host c reachable") {
		t.Fatalf("violations: %s", AuditReport(vs))
	}
	// A restart mid-sweep legitimizes the report: a fresh LPM answered.
	stream = seqed([]Record{
		rec(NetHostCrash, "c", ""),
		rec(StatusRequest, "a", "user=u sweep=a#1 hosts=a,c"),
		rec(StatusReport, "a", "user=u sweep=a#1 host=a ok=true"),
		rec(NetHostRestart, "c", ""),
		rec(StatusReport, "a", "user=u sweep=a#1 host=c ok=true"),
	})
	if vs := AuditRecords(stream, true); len(vs) != 0 {
		t.Fatalf("restart-covered sweep flagged: %s", AuditReport(vs))
	}
}

// TestJournalAppendZeroAllocs: once the ring is full, appending evicts
// in place — the flight recorder's steady state (the //ppmlint:hotpath
// pin for Append/AppendCtx/push) must stay off the allocator.
func TestJournalAppendZeroAllocs(t *testing.T) {
	j, now := testJournal(64)
	for i := 0; i < 64; i++ {
		j.Append(NetSend, "a", "warm")
	}
	if j.Dropped() != 0 {
		t.Fatalf("warm phase evicted %d records before filling capacity", j.Dropped())
	}
	*now = time.Second
	if allocs := testing.AllocsPerRun(200, func() {
		j.Append(NetDeliver, "a", "steady")
		j.AppendCtx(WireEncode, "a", "steady", 7, 9)
	}); allocs != 0 {
		t.Fatalf("steady-state Append allocates %v times per run, want 0", allocs)
	}
}
