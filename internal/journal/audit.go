package journal

import (
	"fmt"
	"strings"

	"ppm/internal/detord"
)

// Violation is one invariant breach found by Audit.
type Violation struct {
	Seq   uint64 // journal sequence number of the offending record
	Check string // which invariant: "genealogy", "circuit", "lifecycle", "flood", "dedup", "status"
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] record #%d: %s", v.Check, v.Seq, v.Msg)
}

// maxViolations bounds the report: a systemic breach repeats on every
// record and drowning the first causes in thousands of repeats helps
// nobody.
const maxViolations = 64

// Audit replays the journal's record stream and checks the protocol
// invariants the paper states but aggregate counters cannot verify:
//
//   - genealogy: the process tree reconstructed from kernel records
//     (spawn/fork/setparent/exit) agrees with every snapshot taken
//     during the run — each snapshotted process was created, its parent
//     link matches, and an exited entry has an exit record;
//   - circuit lifecycle: sibling channels go open → authenticated →
//     close, with the Hello authentication happening exactly once per
//     channel (the paper: authentication "need happen only once, at
//     the time the circuit is created");
//   - circuit state machine: every circuit.transition record steps the
//     per-(host,peer) machine along a legal edge of the lifecycle
//     (idle → dialing/authenticating → established ⇄ suspect → closed),
//     the declared from-state matches the machine's tracked state, a
//     host pair never holds two Established circuits at once, and —
//     on a complete, quiescent stream — no circuit is left Suspect;
//   - flood dedup: no broadcast is applied twice by the same host, every
//     host a flood reports covering has an apply record, and — when the
//     circuit graph was quiescent for the flood's whole window — every
//     sibling transitively reachable at origin time was reached;
//   - no double execution: an at-most-once operation (stable OpID
//     across retransmits) is executed at most once across the whole
//     installation, and a cached-reply replay refers to an operation
//     that was in fact executed;
//   - status sweep coverage: every status sweep resolves each of its
//     targets exactly once (one status.report record per target host,
//     reachable or not), a report never arrives from a host the sweep
//     did not target, and a host that was crashed for the sweep's whole
//     window is never reported reachable. The coverage check assumes
//     the stream is quiescent: audit after sweeps have completed.
//
// Checks that need records outside the retained ring (creation before
// snapshot, open before close) are skipped when the ring has evicted
// records; the always-sound checks (double auth, double apply) run
// regardless.
func Audit(j *Journal) []Violation {
	return AuditRecords(j.Records(), j.Dropped() == 0)
}

// AuditRecords is Audit over an extracted record slice; complete says
// the slice is the full stream (no ring eviction).
func AuditRecords(records []Record, complete bool) []Violation {
	a := &auditor{
		complete: complete,
		procs:    make(map[string]*auditProc),
		chans:    make(map[string]*auditChan),
		circuits: make(map[string]*auditCircuit),
		estab:    make(map[string]map[string]bool),
		edges:    make(map[string]map[string]*auditEdge),
		floods:   make(map[string]*auditFlood),
		execs:    make(map[string]string),
		sweeps:   make(map[string]*auditSweep),
		down:     make(map[string]bool),
	}
	for _, r := range records {
		if len(a.out) >= maxViolations {
			a.out = append(a.out, Violation{Seq: r.Seq, Check: "audit",
				Msg: "too many violations; audit truncated"})
			break
		}
		a.step(r)
	}
	if a.complete && len(a.out) < maxViolations {
		a.finishSweeps()
		a.finishCircuits()
	}
	return a.out
}

// AuditReport renders violations one per line ("" when clean).
func AuditReport(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

type auditProc struct {
	parent string // GPID string of the logical parent, "-" for roots
	exited bool
}

type auditChan struct {
	auths  int
	opened map[string]bool // hosts that recorded an open on this channel
	closed map[string]bool // hosts that recorded a close
}

// auditEdge is one sibling channel in the per-user circuit graph; it
// carries traffic once both endpoints have registered (live == 2).
type auditEdge struct {
	a, b string
	live int
}

type auditFlood struct {
	origin  string
	epoch   int
	origind bool            // origin record seen
	applies map[string]int  // host -> apply count
	dups    map[string]bool // host -> dedup hit seen
	reach   []string        // hosts reachable at origin time
}

// auditSweep is one status sweep's coverage state: the target set from
// its request record, per-host report counts, and the targets that were
// already crashed when the sweep started (and stayed down), which must
// never be reported reachable.
type auditSweep struct {
	seq       uint64 // the request record, anchoring coverage violations
	targets   map[string]bool
	reports   map[string]int
	downAtReq map[string]bool
}

// auditCircuit is the replayed state machine of one directed circuit
// (observer host -> peer), advanced by circuit.transition records.
type auditCircuit struct {
	state string
	seq   uint64 // the record that put it in this state
}

type auditor struct {
	complete bool
	procs    map[string]*auditProc
	chans    map[string]*auditChan
	circuits map[string]*auditCircuit         // host|peer -> machine state
	estab    map[string]map[string]bool       // user/pair -> established chan keys
	edges    map[string]map[string]*auditEdge // user -> chan -> edge
	floods   map[string]*auditFlood           // stamp -> flood
	execs    map[string]string                // op key -> executing host
	sweeps   map[string]*auditSweep           // user/sweep -> coverage
	down     map[string]bool                  // hosts crashed and not restarted
	epoch    int                              // bumped by any event that changes reachability
	out      []Violation
}

func (a *auditor) fail(r Record, check, format string, args ...any) {
	a.out = append(a.out, Violation{Seq: r.Seq, Check: check,
		Msg: fmt.Sprintf(format, args...)})
}

func (a *auditor) step(r Record) {
	switch r.Kind {
	case KernelSpawn:
		// PIDs are never reused per host (the counter survives crashes),
		// so a spawn always introduces a new identity.
		a.procs[gpid(r.Host, Field(r.Detail, "pid"))] = &auditProc{parent: "-"}
	case KernelFork:
		a.procs[gpid(r.Host, Field(r.Detail, "child"))] =
			&auditProc{parent: gpid(r.Host, Field(r.Detail, "parent"))}
	case KernelSetParent:
		if p, ok := a.procs[gpid(r.Host, Field(r.Detail, "pid"))]; ok {
			p.parent = Field(r.Detail, "parent")
		}
	case KernelExit:
		key := gpid(r.Host, Field(r.Detail, "pid"))
		if p, ok := a.procs[key]; ok {
			p.exited = true
		} else if a.complete {
			a.fail(r, "genealogy", "exit of %s which was never created", key)
		}
	case NetHostCrash:
		a.hostDown(r.Host)
	case NetHostRestart:
		a.epoch++
		delete(a.down, r.Host)
		for _, sw := range a.sweeps {
			delete(sw.downAtReq, r.Host)
		}
	case NetPartition, NetHeal, NetCircuitBreak, NetFlapDown, NetFlapUp:
		a.epoch++
	case SnapshotTaken:
		a.checkSnapshot(r)
	case CircuitTransition:
		a.circuitStep(r)
	case LPMSiblingAuth:
		ch := a.chanState(Field(r.Detail, "chan"))
		ch.auths++
		if ch.auths > 1 {
			a.fail(r, "circuit", "channel %s authenticated %d times (want exactly once)",
				Field(r.Detail, "chan"), ch.auths)
		}
	case LPMSiblingOpen:
		a.siblingOpen(r)
	case LPMSiblingClose:
		a.siblingClose(r)
	case LPMFloodOrigin:
		a.floodOrigin(r)
	case LPMFloodApply:
		fl := a.floodState(Field(r.Detail, "stamp"))
		fl.applies[r.Host]++
		if fl.applies[r.Host] > 1 {
			a.fail(r, "flood", "flood %s applied %d times on %s (dedup failed)",
				Field(r.Detail, "stamp"), fl.applies[r.Host], r.Host)
		}
		if a.complete && !fl.origind {
			a.fail(r, "flood", "apply of flood %s with no origin record",
				Field(r.Detail, "stamp"))
		}
	case LPMFloodDup:
		a.floodState(Field(r.Detail, "stamp")).dups[r.Host] = true
	case LPMFloodDone:
		a.floodDone(r)
	case LPMOpExec:
		op := opIdentity(r)
		if prev, ok := a.execs[op]; ok {
			a.fail(r, "dedup", "op %s executed twice (first on %s, again on %s)",
				op, prev, r.Host)
		}
		a.execs[op] = r.Host
	case LPMOpReplay:
		op := opIdentity(r)
		if _, ok := a.execs[op]; !ok && a.complete {
			a.fail(r, "dedup", "replay of op %s which was never executed", op)
		}
	case StatusRequest:
		a.statusRequest(r)
	case StatusReport:
		a.statusReport(r)
	}
}

// sweepKey qualifies a sweep id by its user: per-user LPMs number their
// sweeps independently.
func sweepKey(r Record) string {
	return Field(r.Detail, "user") + "/" + Field(r.Detail, "sweep")
}

func (a *auditor) statusRequest(r Record) {
	key := sweepKey(r)
	if _, ok := a.sweeps[key]; ok {
		a.fail(r, "status", "sweep %s requested twice", key)
		return
	}
	sw := &auditSweep{
		seq:       r.Seq,
		targets:   make(map[string]bool),
		reports:   make(map[string]int),
		downAtReq: make(map[string]bool),
	}
	if hosts := Field(r.Detail, "hosts"); hosts != "" {
		for _, h := range strings.Split(hosts, ",") {
			sw.targets[h] = true
			if a.down[h] {
				sw.downAtReq[h] = true
			}
		}
	}
	a.sweeps[key] = sw
}

func (a *auditor) statusReport(r Record) {
	key := sweepKey(r)
	sw, ok := a.sweeps[key]
	if !ok {
		if a.complete {
			a.fail(r, "status", "report for sweep %s with no request record", key)
		}
		return
	}
	host := Field(r.Detail, "host")
	if !sw.targets[host] {
		a.fail(r, "status", "sweep %s collected a report from %s, which it never targeted",
			key, host)
		return
	}
	sw.reports[host]++
	if sw.reports[host] > 1 {
		a.fail(r, "status", "sweep %s resolved %s %d times (want exactly once)",
			key, host, sw.reports[host])
	}
	// A host that was already crashed when the sweep started, and never
	// restarted since, cannot have produced a report.
	if Field(r.Detail, "ok") == "true" && sw.downAtReq[host] {
		a.fail(r, "status", "sweep %s reports crashed host %s reachable", key, host)
	}
}

// finishSweeps runs the end-of-stream coverage check: every sweep with
// a request record must have resolved each target exactly once. Only
// meaningful on a complete, quiescent stream.
func (a *auditor) finishSweeps() {
	for _, key := range detord.Keys(a.sweeps) {
		sw := a.sweeps[key]
		for _, h := range detord.Keys(sw.targets) {
			if sw.reports[h] == 0 {
				a.out = append(a.out, Violation{Seq: sw.seq, Check: "status",
					Msg: fmt.Sprintf("sweep %s never resolved target %s (no report record)",
						key, h)})
			}
		}
	}
}

// opIdentity keys an at-most-once operation for the dedup invariant.
// The op field alone is not unique across users: every per-user LPM on
// a host numbers its own operations independently, so the executing
// user qualifies the key (user A's op host#inc#1 and user B's op
// host#inc'#1 must not collide into a false double-execution).
func opIdentity(r Record) string {
	return Field(r.Detail, "user") + "/" + Field(r.Detail, "op")
}

func gpid(host, pid string) string { return "<" + host + "," + pid + ">" }

func (a *auditor) chanState(key string) *auditChan {
	ch, ok := a.chans[key]
	if !ok {
		ch = &auditChan{opened: make(map[string]bool), closed: make(map[string]bool)}
		a.chans[key] = ch
	}
	return ch
}

func (a *auditor) floodState(stamp string) *auditFlood {
	fl, ok := a.floods[stamp]
	if !ok {
		fl = &auditFlood{applies: make(map[string]int), dups: make(map[string]bool)}
		a.floods[stamp] = fl
	}
	return fl
}

// legalCircuitSteps is the lifecycle's legal-edge table (DESIGN.md
// §13); the auditor replays journaled transitions against it.
var legalCircuitSteps = map[string][]string{
	"idle":           {"dialing", "authenticating"},
	"dialing":        {"authenticating", "closed"},
	"authenticating": {"established", "closed"},
	"established":    {"suspect", "closed"},
	"suspect":        {"established", "closed"},
	"closed":         {"dialing", "authenticating"},
}

func legalCircuitStep(from, to string) bool {
	for _, t := range legalCircuitSteps[from] {
		if t == to {
			return true
		}
	}
	return false
}

// pairName names an unordered host pair, lower name first.
func pairName(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// circuitStep replays one circuit.transition record: the edge must be
// in the legal table, the declared from-state must match the machine
// (continuity — only checkable on a complete stream), and stepping a
// pair's circuit to Established while another established channel
// between the same pair is still up is the cross-dial double-circuit
// bug the tie-break exists to prevent.
func (a *auditor) circuitStep(r Record) {
	user, peer := Field(r.Detail, "user"), Field(r.Detail, "peer")
	from, to := Field(r.Detail, "from"), Field(r.Detail, "to")
	key := user + "/" + r.Host + "|" + peer
	c, ok := a.circuits[key]
	if !ok {
		c = &auditCircuit{state: "idle"}
		a.circuits[key] = c
	}
	// Continuity: the record's declared origin must be where the
	// machine actually is. Two sanctioned exceptions: "*" is the
	// post-crash wildcard (the crashed host's LPM may have survived
	// with its old state, or restarted fresh — the first transition
	// after the crash re-synchronizes), and a fresh LPM instance
	// starts from Idle where its predecessor's machine parked in
	// Closed.
	if a.complete && c.state != from && c.state != "*" &&
		!(c.state == "closed" && from == "idle") {
		a.fail(r, "lifecycle", "circuit %s->%s declares from=%s but machine was in %s",
			r.Host, peer, from, c.state)
	}
	if !legalCircuitStep(from, to) {
		a.fail(r, "lifecycle", "circuit %s->%s illegal transition %s -> %s",
			r.Host, peer, from, to)
	}
	c.state, c.seq = to, r.Seq

	ck := Field(r.Detail, "chan")
	pk := user + "/" + pairName(r.Host, peer)
	switch to {
	case "established":
		set := a.estab[pk]
		if set == nil {
			set = make(map[string]bool)
			a.estab[pk] = set
		}
		set[ck] = true
		if len(set) > 1 {
			a.fail(r, "lifecycle", "pair %s holds %d established circuits at once: %s",
				pk, len(set), strings.Join(detord.Keys(set), ","))
		}
	case "closed":
		if ck != "-" {
			delete(a.estab[pk], ck)
		}
	}
}

// finishCircuits runs the end-of-stream liveness check: on a quiescent
// stream every Suspect must have resolved — back to Established by
// traffic, or to Closed by the detector. A machine parked in Suspect
// means a detector that raises suspicion but never acts on it.
func (a *auditor) finishCircuits() {
	for _, key := range detord.Keys(a.circuits) {
		c := a.circuits[key]
		if c.state == "suspect" {
			a.out = append(a.out, Violation{Seq: c.seq, Check: "lifecycle",
				Msg: fmt.Sprintf("circuit %s left in Suspect: suspicion never resolved", key)})
		}
	}
}

// hostDown removes a crashed host from the circuit graph: its channel
// endpoints die silently (no close records will arrive from it).
func (a *auditor) hostDown(host string) {
	a.epoch++
	a.down[host] = true
	for _, k := range detord.Keys(a.circuits) {
		if _, rest, ok := strings.Cut(k, "/"); ok {
			if h, _, ok := strings.Cut(rest, "|"); ok && h == host {
				// Crash leaves the host's machines in an unknown state:
				// its LPM may survive the reboot (old state) or be
				// recreated (idle). The wildcard suspends continuity
				// for exactly one transition per circuit.
				a.circuits[k].state = "*"
			}
		}
	}
	for _, pk := range detord.Keys(a.estab) {
		pair := pk[strings.LastIndex(pk, "/")+1:]
		x, y, _ := strings.Cut(pair, "|")
		if x == host || y == host {
			delete(a.estab, pk)
		}
	}
	for _, user := range detord.Keys(a.edges) {
		for _, ck := range detord.Keys(a.edges[user]) {
			e := a.edges[user][ck]
			if e.a == host || e.b == host {
				delete(a.edges[user], ck)
			}
		}
	}
	for _, ck := range detord.Keys(a.chans) {
		ch := a.chans[ck]
		if ch.opened[host] {
			ch.closed[host] = true // crash closes implicitly
		}
	}
}

func (a *auditor) siblingOpen(r Record) {
	a.epoch++
	key, user, peer := Field(r.Detail, "chan"), Field(r.Detail, "user"), Field(r.Detail, "peer")
	ch := a.chanState(key)
	if ch.opened[r.Host] {
		a.fail(r, "circuit", "channel %s opened twice by %s", key, r.Host)
	}
	ch.opened[r.Host] = true
	if a.complete && Field(r.Detail, "role") == "server" && ch.auths == 0 {
		a.fail(r, "circuit", "channel %s opened by %s before authentication", key, r.Host)
	}
	if a.edges[user] == nil {
		a.edges[user] = make(map[string]*auditEdge)
	}
	e, ok := a.edges[user][key]
	if !ok {
		e = &auditEdge{a: r.Host, b: peer}
		a.edges[user][key] = e
	}
	e.live++
}

func (a *auditor) siblingClose(r Record) {
	a.epoch++
	key, user := Field(r.Detail, "chan"), Field(r.Detail, "user")
	ch := a.chanState(key)
	if a.complete && !ch.opened[r.Host] {
		a.fail(r, "circuit", "channel %s closed by %s without an open record", key, r.Host)
	}
	if ch.closed[r.Host] {
		a.fail(r, "circuit", "channel %s closed twice by %s", key, r.Host)
	}
	ch.closed[r.Host] = true
	if e, ok := a.edges[user][key]; ok {
		e.live--
		if e.live <= 0 {
			delete(a.edges[user], key)
		}
	}
}

func (a *auditor) floodOrigin(r Record) {
	stamp, user := Field(r.Detail, "stamp"), Field(r.Detail, "user")
	fl := a.floodState(stamp)
	if fl.origind {
		a.fail(r, "flood", "flood %s originated twice", stamp)
	}
	fl.origind = true
	fl.origin = r.Host
	fl.epoch = a.epoch
	fl.reach = a.reachable(user, r.Host)
}

// reachable computes the hosts transitively connected to origin over
// fully-established sibling channels of the user, origin included.
func (a *auditor) reachable(user, origin string) []string {
	seen := map[string]bool{origin: true}
	for changed := true; changed; {
		changed = false
		for _, ck := range detord.Keys(a.edges[user]) {
			e := a.edges[user][ck]
			if e.live == 2 && seen[e.a] != seen[e.b] {
				seen[e.a], seen[e.b] = true, true
				changed = true
			}
		}
	}
	return detord.Keys(seen)
}

func (a *auditor) floodDone(r Record) {
	stamp := Field(r.Detail, "stamp")
	fl, ok := a.floods[stamp]
	if !ok || !fl.origind {
		if a.complete {
			a.fail(r, "flood", "flood %s completed with no origin record", stamp)
		}
		return
	}
	if a.complete {
		// Every host the flood reports covering must have applied it.
		if hosts := Field(r.Detail, "hosts"); hosts != "" {
			for _, h := range strings.Split(hosts, ",") {
				if fl.applies[h] == 0 {
					a.fail(r, "flood", "flood %s reports host %s but no apply record", stamp, h)
				}
			}
		}
		// When nothing disturbed the circuit graph during the flood's
		// window, every sibling reachable at origin time must have been
		// reached (applied or recognized the duplicate).
		if fl.epoch == a.epoch {
			for _, h := range fl.reach {
				if fl.applies[h] == 0 && !fl.dups[h] {
					a.fail(r, "flood", "flood %s never reached live sibling %s", stamp, h)
				}
			}
		}
	}
}

// checkSnapshot verifies one snapshot record against the genealogy
// reconstructed from the kernel records so far. Entries are encoded as
// "gpid|parent|state" joined by ";" ("-" for root parents; GPIDs
// contain commas, so the list separators avoid them).
func (a *auditor) checkSnapshot(r Record) {
	if !a.complete {
		return // creation records may have been evicted
	}
	procs := Field(r.Detail, "procs")
	if procs == "" {
		return
	}
	for _, ent := range strings.Split(procs, ";") {
		id, rest, ok := strings.Cut(ent, "|")
		if !ok {
			continue
		}
		parent, state, _ := strings.Cut(rest, "|")
		p, known := a.procs[id]
		if !known {
			a.fail(r, "genealogy", "snapshot lists %s which was never created", id)
			continue
		}
		if p.parent != parent {
			a.fail(r, "genealogy", "snapshot parent of %s is %s, journal says %s",
				id, parent, p.parent)
		}
		if state == "exited" && !p.exited {
			a.fail(r, "genealogy", "snapshot reports %s exited but journal has no exit record", id)
		}
	}
}
