package journal

import (
	"fmt"
	"strings"

	"ppm/internal/trace"
)

// The trace-consistency audit: the journal and the tracer observe the
// same run through different instruments, and when both are complete
// their stories must agree. Three invariants are checked:
//
//   - span lifecycle: every recorded span was closed exactly once.
//     Ends == 0 is a span leaked on some error path; Ends > 1 is a
//     double-close, which silently rewrites the span's end instant and
//     corrupts any attribution built on it;
//   - nesting: a child span never starts before its parent, and starts
//     no later than the parent's close. Child *ends* are also held
//     inside the parent except for the known asynchronous spans —
//     kernel event delivery and the remote-create exec tail — which by
//     design outlive the request window that spawned them;
//   - cross-links: every (trace, span) context a journal record carries
//     names a span that was actually recorded.
//
// Existence checks require both streams to be complete: a journal ring
// that evicted records cannot invalidate the span table, and a tracer
// that dropped spans at its buffer cap cannot invalidate the journal.

// asyncOverrun reports whether a span is allowed to end after its
// parent: kernel event delivery pays its delivery delay after the
// emitting operation has moved on, and createForRemote's exec leg
// deliberately completes after the creation ack is on the wire.
func asyncOverrun(name string) bool {
	return strings.HasPrefix(name, "kernel.event.") || name == "exec.exec"
}

// AuditTraceRecords checks the trace-consistency invariants over an
// extracted record slice and span table; complete says both streams
// are full (no ring eviction, no spans dropped at the tracer's cap).
// Violations found in the span table alone carry Seq 0 — they have no
// offending journal record.
func AuditTraceRecords(records []Record, spans []trace.SpanData, complete bool) []Violation {
	var out []Violation
	fail := func(seq uint64, format string, args ...any) {
		out = append(out, Violation{Seq: seq, Check: "trace",
			Msg: fmt.Sprintf(format, args...)})
	}
	byID := make(map[uint64]trace.SpanData, len(spans))
	for _, s := range spans {
		if len(out) >= maxViolations {
			return out
		}
		if _, dup := byID[s.ID]; dup {
			fail(0, "span %d (%s on %s) recorded twice", s.ID, s.Name, s.Host)
			continue
		}
		byID[s.ID] = s
		switch {
		case s.Ends == 0:
			fail(0, "span %d (%s on %s) opened at %v but never closed",
				s.ID, s.Name, s.Host, s.Start)
		case s.Ends > 1:
			fail(0, "span %d (%s on %s) closed %d times", s.ID, s.Name, s.Host, s.Ends)
		}
		if s.End < s.Start {
			fail(0, "span %d (%s on %s) ends at %v before its start %v",
				s.ID, s.Name, s.Host, s.End, s.Start)
		}
	}
	for _, s := range spans {
		if len(out) >= maxViolations {
			return out
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			if complete {
				fail(0, "span %d (%s on %s) names missing parent span %d",
					s.ID, s.Name, s.Host, s.Parent)
			}
			continue
		}
		if s.Trace != p.Trace {
			fail(0, "span %d (%s) belongs to trace %d but its parent %d belongs to trace %d",
				s.ID, s.Name, s.Trace, p.ID, p.Trace)
		}
		if s.Start < p.Start {
			fail(0, "span %d (%s on %s) starts at %v before its parent %d (%s) at %v",
				s.ID, s.Name, s.Host, s.Start, p.ID, p.Name, p.Start)
		}
		if p.Closed() && s.Start > p.End {
			fail(0, "span %d (%s on %s) starts at %v after its parent %d (%s) closed at %v",
				s.ID, s.Name, s.Host, s.Start, p.ID, p.Name, p.End)
		}
		if p.Closed() && s.End > p.End && !asyncOverrun(s.Name) {
			fail(0, "span %d (%s on %s) ends at %v after its parent %d (%s) closed at %v",
				s.ID, s.Name, s.Host, s.End, p.ID, p.Name, p.End)
		}
	}
	if complete {
		for _, r := range records {
			if len(out) >= maxViolations {
				return out
			}
			if r.Trace == 0 || r.Span == 0 {
				continue
			}
			s, ok := byID[r.Span]
			if !ok {
				fail(r.Seq, "record references span %d which was never recorded", r.Span)
				continue
			}
			if s.Trace != r.Trace {
				fail(r.Seq, "record references span %d under trace %d, but the span belongs to trace %d",
					r.Span, r.Trace, s.Trace)
			}
		}
	}
	return out
}

// AuditWithSpans is Audit extended with the trace-consistency
// invariants, for runs that recorded both streams. spansComplete says
// the span table is full (Tracer.Dropped() == 0); the journal's own
// completeness is read from its ring as in Audit.
func AuditWithSpans(j *Journal, spans []trace.SpanData, spansComplete bool) []Violation {
	out := Audit(j)
	if len(out) >= maxViolations {
		return out
	}
	tv := AuditTraceRecords(j.Records(), spans, j.Dropped() == 0 && spansComplete)
	if room := maxViolations - len(out); len(tv) > room {
		tv = tv[:room]
	}
	return append(out, tv...)
}
