// Package doclint cross-checks the repository documentation against the
// code. Docs rot silently: a flag renamed in cmd/ keeps its old spelling in
// README.md forever unless something fails. This test greps the top-level
// markdown files for documented flags and verifies each one is actually
// registered by some command under cmd/ (or is a well-known go-tool flag).
package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// goToolFlags are flags the docs mention that belong to the go toolchain
// (`go test`, `go vet`), not to any binary under cmd/.
var goToolFlags = map[string]bool{
	"bench":     true,
	"benchmem":  true,
	"benchtime": true, // also registered by ppmbench, but `go test -benchtime` is documented too
	"count":     true,
	"race":      true,
	"run":       true,
	"v":         true,
	"vettool":   true,
}

// docFlagRe matches a flag documented as its own backtick span: `-drops`,
// `--compare`, `-journal-kinds`. Flags quoted inside longer command lines
// (`go test -bench=.`) are deliberately not matched — this lint is about
// flags the prose presents as an interface, not about example invocations.
var docFlagRe = regexp.MustCompile("`--?([a-z][a-z0-9.-]*[a-z0-9])`")

// flagVarMethods maps flag-registration method names to the index of the
// argument holding the flag name.
var flagNameArg = map[string]int{
	"Bool": 0, "Duration": 0, "Float64": 0, "Int": 0, "Int64": 0,
	"String": 0, "Uint": 0, "Uint64": 0, "Func": 0,
	"BoolVar": 1, "DurationVar": 1, "Float64Var": 1, "IntVar": 1,
	"Int64Var": 1, "StringVar": 1, "UintVar": 1, "Uint64Var": 1, "Var": 1,
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// registeredFlags parses every non-test Go file under cmd/ and collects the
// flag names passed to flag.String / fs.StringVar / ... call sites.
func registeredFlags(t *testing.T, root string) map[string][]string {
	t.Helper()
	flags := make(map[string][]string) // name -> commands registering it
	cmdDir := filepath.Join(root, "cmd")
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		t.Fatalf("reading cmd/: %v", err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(cmdDir, e.Name(), "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				idx, ok := flagNameArg[sel.Sel.Name]
				if !ok || len(call.Args) <= idx {
					return true
				}
				lit, ok := call.Args[idx].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || name == "" {
					return true
				}
				flags[name] = append(flags[name], e.Name())
				return true
			})
		}
	}
	return flags
}

// documentedFlags scans the top-level markdown files for backtick-quoted
// flag spans and returns flag name -> "file:line" mentions.
func documentedFlags(t *testing.T, root string) map[string][]string {
	t.Helper()
	docs, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	mentions := make(map[string][]string)
	for _, path := range docs {
		base := filepath.Base(path)
		// ISSUE.md and SNIPPETS.md quote external code and task text, not
		// this repo's interface; they are not subject to the lint.
		if base == "ISSUE.md" || base == "SNIPPETS.md" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range docFlagRe.FindAllStringSubmatch(line, -1) {
				where := base + ":" + strconv.Itoa(i+1)
				mentions[m[1]] = append(mentions[m[1]], where)
			}
		}
	}
	return mentions
}

// TestDocumentedFlagsAreRegistered is the doc lint: every flag the docs
// present as an interface must exist in some command under cmd/.
func TestDocumentedFlagsAreRegistered(t *testing.T) {
	root := repoRoot(t)
	registered := registeredFlags(t, root)
	if len(registered) == 0 {
		t.Fatal("found no flag registrations under cmd/ — parser broken?")
	}
	documented := documentedFlags(t, root)
	if len(documented) == 0 {
		t.Fatal("found no documented flags in *.md — regex broken?")
	}

	var stale []string
	for name, where := range documented {
		if goToolFlags[name] {
			continue
		}
		if _, ok := registered[name]; !ok {
			sort.Strings(where)
			stale = append(stale, name+" (documented at "+strings.Join(where, ", ")+")")
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("documented flag -%s is not registered by any command in cmd/", s)
	}
}

// TestKnownFlagsStayRegistered pins the flags the documentation leans on
// most heavily, so a rename fails loudly here even if the prose mention
// slips past the regex (e.g. gets folded into a command-line example).
func TestKnownFlagsStayRegistered(t *testing.T) {
	root := repoRoot(t)
	registered := registeredFlags(t, root)
	for _, want := range []struct{ flag, cmd string }{
		{"drops", "ppmtrace"},
		{"flap", "ppmtrace"},
		{"status", "ppmtrace"},
		{"journal", "ppmtrace"},
		{"watch", "ppmtop"},
		{"partition", "ppmtop"},
		{"journal-kinds", "ppmtrace"},
		{"journal-host", "ppmtrace"},
		{"compare", "ppmbench"},
		{"threshold", "ppmbench"},
		{"informational", "ppmbench"},
		{"benchtime", "ppmbench"},
		{"supervise", "ppmrun"},
		{"chaos", "ppmrun"},
		{"folded", "ppmprof"},
		{"critical", "ppmprof"},
		{"top", "ppmprof"},
		{"attribution", "experiments"},
	} {
		cmds, ok := registered[want.flag]
		if !ok {
			t.Errorf("flag -%s (documented as part of %s) is no longer registered anywhere", want.flag, want.cmd)
			continue
		}
		found := false
		for _, c := range cmds {
			if c == want.cmd {
				found = true
			}
		}
		if !found {
			t.Errorf("flag -%s moved out of cmd/%s (now in %v); update the docs", want.flag, want.cmd, cmds)
		}
	}
}
