package ppm

import (
	"testing"
	"time"

	"ppm/internal/calib"
	"ppm/internal/kernel"
	"ppm/internal/sim"
)

// One benchmark per table and figure of the paper's evaluation, plus
// the ablations of DESIGN.md §6. Each bench runs the full simulated
// experiment; b.N measures the real cost of simulating it, while the
// reported custom metrics are the virtual-time results that correspond
// to the paper's numbers.

// BenchmarkTable1KernelMessageDelivery regenerates Table 1 (kernel->LPM
// 112-byte message delivery vs load). The reported vms/delivery metrics
// are the virtual milliseconds for the mid-load VAX 780 cell.
func BenchmarkTable1KernelMessageDelivery(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		row, err := table1Cell(VAX780, 1) // the 1<la<=2 bucket
		if err != nil {
			b.Fatal(err)
		}
		last = row.MeasuredMS
	}
	b.ReportMetric(last, "vms/delivery")
	b.ReportMetric(9.8, "paper-vms")
}

// BenchmarkTable1FullSweep regenerates every Table 1 cell (3 host types
// x 4 load buckets).
func BenchmarkTable1FullSweep(b *testing.B) {
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunTable1()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[len(rows)-1].MeasuredMS, "vms/sun-high-load")
		b.ReportMetric(42.7, "paper-vms")
	}
}

// BenchmarkTable2ProcessControl regenerates Table 2 (create, stop,
// terminate at topological distances 0, 1, 2).
func BenchmarkTable2ProcessControl(b *testing.B) {
	var rows []Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunTable2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Action == "stop" && r.Distance == 1 {
			b.ReportMetric(r.MeasuredMS, "vms/one-hop-stop")
		}
	}
	b.ReportMetric(199, "paper-vms")
}

// BenchmarkRemoteCreateWarm regenerates the Section 8 figure: 177 ms
// remote creation over a warm circuit.
func BenchmarkRemoteCreateWarm(b *testing.B) {
	var measured float64
	for i := 0; i < b.N; i++ {
		var err error
		measured, _, err = RemoteCreateWarm()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(measured, "vms/create")
	b.ReportMetric(177, "paper-vms")
}

// BenchmarkTable3SnapshotTopologies regenerates Table 3 / Figure 5:
// snapshot gathering over the four PPM topologies.
func BenchmarkTable3SnapshotTopologies(b *testing.B) {
	var rows []Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunTable3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Topology {
		case 1:
			b.ReportMetric(r.MeasuredMS, "vms/T1")
		case 4:
			b.ReportMetric(r.MeasuredMS, "vms/T4")
		}
	}
}

// BenchmarkFigure2LPMCreation regenerates the Figure 2 exchange: LPM
// creation ab initio versus finding an existing LPM.
func BenchmarkFigure2LPMCreation(b *testing.B) {
	var res Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunFigure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CreateMS, "vms/create")
	b.ReportMetric(res.FindMS, "vms/find")
}

// BenchmarkUntracedSyscallOverhead measures the real cost of the
// untraced-process fast path: the paper's "comparing to zero the value
// of a variable". This is a genuine microbenchmark of the simulated
// kernel's syscall path.
func BenchmarkUntracedSyscallOverhead(b *testing.B) {
	s := sim.NewScheduler(1)
	h := kernel.NewHost(s, "m", calib.ModelVAX780)
	p, err := h.Spawn("job", "u")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Syscall(p.PID, "read"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(calib.UntracedSyscallCheck.Nanoseconds()), "modelled-ns")
}

// BenchmarkTracedSyscallOverhead measures the traced path with full
// granularity, including event generation.
func BenchmarkTracedSyscallOverhead(b *testing.B) {
	s := sim.NewScheduler(1)
	h := kernel.NewHost(s, "m", calib.ModelVAX780)
	p, err := h.Spawn("job", "u")
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	h.SetEventSink("u", func(Event) { delivered++ })
	if err := h.Adopt(p.PID, "u"); err != nil {
		b.Fatal(err)
	}
	if err := h.SetTraceMask(p.PID, "u", kernel.TraceAll); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Syscall(p.PID, "read"); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			if err := s.RunUntilIdle(1 << 20); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := s.RunUntilIdle(1 << 22); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(calib.ModelVAX780.KernelMsgDelivery(0).Microseconds())/1000, "modelled-vms/event")
}

// BenchmarkAblationHandlerReuse compares handler reuse against
// fork-per-request (DESIGN.md ablation 3).
func BenchmarkAblationHandlerReuse(b *testing.B) {
	var reuseMS, forkMS float64
	for i := 0; i < b.N; i++ {
		var err error
		reuseMS, forkMS, _, _, err = AblationHandlerReuse()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(reuseMS, "vms/op-reuse")
	b.ReportMetric(forkMS, "vms/op-fork")
}

// BenchmarkAblationCircuitVsDatagramAuth compares authenticate-once
// circuits with per-message authentication (DESIGN.md ablation 2).
func BenchmarkAblationCircuitVsDatagramAuth(b *testing.B) {
	var circuitMS, datagramMS float64
	for i := 0; i < b.N; i++ {
		var err error
		circuitMS, datagramMS, err = AblationCircuitVsDatagramAuth()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(circuitMS, "vms/op-circuit")
	b.ReportMetric(datagramMS, "vms/op-datagram")
}

// BenchmarkAblationOnDemandVsFullMesh compares circuit counts with
// on-demand versus full-mesh interconnection (DESIGN.md ablation 1).
func BenchmarkAblationOnDemandVsFullMesh(b *testing.B) {
	var onDemand, fullMesh int64
	for i := 0; i < b.N; i++ {
		var err error
		onDemand, fullMesh, err = AblationOnDemandVsFullMesh(6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(onDemand), "conns-on-demand")
	b.ReportMetric(float64(fullMesh), "conns-full-mesh")
}

// BenchmarkAblationDedupWindow sweeps the broadcast dedup window
// (DESIGN.md ablation 4).
func BenchmarkAblationDedupWindow(b *testing.B) {
	var points []DedupWindowPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = AblationDedupWindow([]time.Duration{
			time.Millisecond, time.Second, time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(points) == 3 {
		b.ReportMetric(float64(points[0].DuplicateRecs), "dup-recs-1ms-window")
		b.ReportMetric(float64(points[2].DuplicateRecs), "dup-recs-60s-window")
	}
}

// BenchmarkSimulatorThroughput measures raw events/second of the
// discrete-event core under a PPM workload, to size larger experiments.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{
			Hosts: []HostSpec{{Name: "a"}, {Name: "b"}},
		})
		if err != nil {
			b.Fatal(err)
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "a")
		if err != nil {
			b.Fatal(err)
		}
		id, err := sess.Run("b", "job")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			if err := sess.Stop(id); err != nil {
				b.Fatal(err)
			}
			if err := sess.Foreground(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationRelayVsDirect assesses the §7 message-routing
// policies: relayed requests versus dedicated circuits.
func BenchmarkAblationRelayVsDirect(b *testing.B) {
	var relayFirst, directFirst, relaySteady, directSteady float64
	for i := 0; i < b.N; i++ {
		var err error
		relayFirst, directFirst, relaySteady, directSteady, err = AblationRelayVsDirect()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(relayFirst, "vms/first-relay")
	b.ReportMetric(directFirst, "vms/first-direct")
	b.ReportMetric(relaySteady, "vms/steady-relay")
	b.ReportMetric(directSteady, "vms/steady-direct")
}

// BenchmarkScaleTensOfNodes stress-tests the paper's scalability claim:
// a 24-host snapshot plus broadcast control, reporting virtual-time
// latency.
func BenchmarkScaleTensOfNodes(b *testing.B) {
	var snapMS, snapMsgs float64
	for i := 0; i < b.N; i++ {
		var hosts []HostSpec
		for j := 0; j < 24; j++ {
			hosts = append(hosts, HostSpec{Name: fmtHost(j)})
		}
		c, err := NewCluster(ClusterConfig{Hosts: hosts})
		if err != nil {
			b.Fatal(err)
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "h00")
		if err != nil {
			b.Fatal(err)
		}
		root, err := sess.Run("h00", "root")
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < 24; j++ {
			if _, err := sess.RunChild(fmtHost(j), "w", root); err != nil {
				b.Fatal(err)
			}
		}
		beforeMsgs, _ := wireCounts(c)
		d, err := sess.Elapsed(func() error {
			_, serr := sess.Snapshot()
			return serr
		})
		if err != nil {
			b.Fatal(err)
		}
		afterMsgs, _ := wireCounts(c)
		snapMS = float64(d) / float64(time.Millisecond)
		snapMsgs = float64(afterMsgs - beforeMsgs)
	}
	b.ReportMetric(snapMS, "vms/24-host-snapshot")
	b.ReportMetric(snapMsgs, "msgs/24-host-snapshot")
}

func fmtHost(i int) string {
	return "h" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// BenchmarkSnapshotFanout sweeps snapshot cost versus the number of
// hosts on a star circuit graph, sizing the scalability claim.
func BenchmarkSnapshotFanout(b *testing.B) {
	measure := func(n int) float64 {
		var hosts []HostSpec
		for j := 0; j < n; j++ {
			hosts = append(hosts, HostSpec{Name: fmtHost(j)})
		}
		c, err := NewCluster(ClusterConfig{Hosts: hosts})
		if err != nil {
			b.Fatal(err)
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "h00")
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < n; j++ {
			if _, err := sess.Run(fmtHost(j), "w"); err != nil {
				b.Fatal(err)
			}
		}
		d, err := sess.Elapsed(func() error {
			_, serr := sess.Snapshot()
			return serr
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(d) / float64(time.Millisecond)
	}
	var v3, v6, v12 float64
	for i := 0; i < b.N; i++ {
		v3 = measure(3)
		v6 = measure(6)
		v12 = measure(12)
	}
	b.ReportMetric(v3, "vms/3-hosts")
	b.ReportMetric(v6, "vms/6-hosts")
	b.ReportMetric(v12, "vms/12-hosts")
}

// TestMessageBudgets pins the message economy of the core operations.
// A snapshot flood over an n-host star is one request and one reply per
// sibling circuit — 2(n-1) wire messages, no more; recovery from a CCS
// crash must stay within a small constant bill. A regression that
// multiplies traffic (re-floods, lost dedup, chatty recovery) fails
// here even if latencies stay plausible.
func TestMessageBudgets(t *testing.T) {
	snapshotMsgs := func(n int) uint64 {
		var hosts []HostSpec
		for j := 0; j < n; j++ {
			hosts = append(hosts, HostSpec{Name: fmtHost(j)})
		}
		c, err := NewCluster(ClusterConfig{Hosts: hosts})
		if err != nil {
			t.Fatal(err)
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "h00")
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < n; j++ {
			if _, err := sess.Run(fmtHost(j), "w"); err != nil {
				t.Fatal(err)
			}
		}
		before, _ := wireCounts(c)
		if _, err := sess.Snapshot(); err != nil {
			t.Fatal(err)
		}
		after, _ := wireCounts(c)
		return after - before
	}
	for _, n := range []int{2, 4, 8} {
		want := uint64(2 * (n - 1))
		if got := snapshotMsgs(n); got != want {
			t.Errorf("snapshot over %d-host star: %d wire messages, budget is exactly %d",
				n, got, want)
		}
	}

	rec, err := RunRecoveryCost()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Msgs == 0 {
		t.Error("recovery produced no wire messages")
	}
	// Measured bill is 7 messages / 304 bytes; leave headroom for
	// benign protocol changes but catch order-of-magnitude regressions.
	if rec.Msgs > 20 {
		t.Errorf("recovery cost %d wire messages, budget is 20", rec.Msgs)
	}
	if rec.Bytes > 1000 {
		t.Errorf("recovery cost %d wire bytes, budget is 1000", rec.Bytes)
	}
}

// BenchmarkJournalOverhead measures the real (wall-clock) cost the
// flight recorder adds to a representative two-host scenario: the same
// script run with the journal on (the default) and off (NoJournal), so
// the delta between the sub-benchmarks is the append overhead.
func BenchmarkJournalOverhead(b *testing.B) {
	scenario := func(noJournal bool) error {
		c, err := NewCluster(ClusterConfig{
			Hosts:     []HostSpec{{Name: "a"}, {Name: "b"}},
			NoJournal: noJournal,
		})
		if err != nil {
			return err
		}
		c.AddUser("u")
		sess, err := c.Attach("u", "a")
		if err != nil {
			return err
		}
		root, err := sess.Run("a", "root")
		if err != nil {
			return err
		}
		w, err := sess.RunChild("b", "w", root)
		if err != nil {
			return err
		}
		if _, err := sess.Snapshot(); err != nil {
			return err
		}
		if err := sess.Stop(w); err != nil {
			return err
		}
		return c.Advance(time.Second)
	}
	b.Run("journal=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scenario(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("journal=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scenario(true); err != nil {
				b.Fatal(err)
			}
		}
	})
}
